// deco_cli — run any experiment of the reproduction from the command line.
//
// Examples:
//   deco_cli --method deco --dataset core50 --ipc 10 --segments 20
//   deco_cli --method fifo --dataset cifar100 --ipc 5 --seeds 3
//   deco_cli --method deco --dataset icub1 --dump-buffer /tmp/buf \
//            --save-model /tmp/model.ckpt
//
// `--help` prints the full flag list. All flags have the bench-suite quick
// defaults, so a bare `deco_cli` runs a small DECO experiment on CORe50.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/eval/metrics.h"
#include "deco/eval/runner.h"
#include "deco/nn/checkpoint.h"
#include "deco/tensor/check.h"
#include "deco/tensor/serialize.h"

using namespace deco;

namespace {

struct CliOptions {
  std::string method = "deco";
  std::string dataset = "core50";
  int64_t ipc = 10;
  int64_t segments = 10;
  int64_t segment_size = 32;
  int64_t stc = 32;
  int64_t seeds = 1;
  uint64_t seed = 1;
  int64_t epochs = 10;       // model-update epochs
  int64_t beta = 10;
  float alpha = 0.1f;
  float threshold_m = 0.4f;
  int64_t iterations = 10;   // matching iterations L
  int64_t eval_every = 0;
  int64_t width = 32;
  int64_t depth = 3;
  std::string pooling = "avg";
  std::string dump_buffer;   // directory for PPM dumps of the buffer
  std::string save_model;    // checkpoint path
};

void print_help() {
  std::printf(
      "deco_cli — on-device learning via dataset condensation\n\n"
      "  --method M       deco | random | fifo | selective_bp | kcenter | gss\n"
      "                   | dc | dsa | dm | upper_bound      (default deco)\n"
      "  --dataset D      icub1 | core50 | cifar100 | imagenet10 | cifar10\n"
      "  --ipc N          synthetic/real images per class     (default 10)\n"
      "  --segments N     stream length in segments           (default 10)\n"
      "  --segment-size N samples per segment                 (default 32)\n"
      "  --stc N          temporal correlation strength       (default 32)\n"
      "  --seeds N        repeat with N seeds, report mean±std (default 1)\n"
      "  --seed N         base RNG seed                       (default 1)\n"
      "  --epochs N       model-update epochs (opt_theta)     (default 10)\n"
      "  --beta N         model update interval, segments     (default 10)\n"
      "  --alpha F        feature-discrimination weight       (default 0.1)\n"
      "  --threshold F    majority-voting threshold m         (default 0.4)\n"
      "  --iterations N   matching iterations L               (default 10)\n"
      "  --eval-every N   record a learning-curve point every N segments\n"
      "  --width N        ConvNet width                       (default 32)\n"
      "  --depth N        ConvNet conv blocks                 (default 3)\n"
      "  --pooling P      avg | max                           (default avg)\n"
      "  --dump-buffer DIR  write the final synthetic buffer as PPM images\n"
      "  --save-model PATH  write the final model checkpoint\n");
}

data::DatasetSpec spec_by_name(const std::string& name) {
  if (name == "icub1") return data::icub1_spec();
  if (name == "core50") return data::core50_spec();
  if (name == "cifar100") return data::cifar100_spec();
  if (name == "imagenet10") return data::imagenet10_spec();
  if (name == "cifar10") return data::cifar10_spec();
  DECO_CHECK(false, "unknown dataset '" + name + "'");
  return {};
}

bool parse_args(int argc, char** argv, CliOptions& opt) {
  auto next = [&](int& i) -> const char* {
    DECO_CHECK(i + 1 < argc, std::string("flag ") + argv[i] + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return false;
    else if (a == "--method") opt.method = next(i);
    else if (a == "--dataset") opt.dataset = next(i);
    else if (a == "--ipc") opt.ipc = std::atoll(next(i));
    else if (a == "--segments") opt.segments = std::atoll(next(i));
    else if (a == "--segment-size") opt.segment_size = std::atoll(next(i));
    else if (a == "--stc") opt.stc = std::atoll(next(i));
    else if (a == "--seeds") opt.seeds = std::atoll(next(i));
    else if (a == "--seed") opt.seed = std::strtoull(next(i), nullptr, 10);
    else if (a == "--epochs") opt.epochs = std::atoll(next(i));
    else if (a == "--beta") opt.beta = std::atoll(next(i));
    else if (a == "--alpha") opt.alpha = std::atof(next(i));
    else if (a == "--threshold") opt.threshold_m = std::atof(next(i));
    else if (a == "--iterations") opt.iterations = std::atoll(next(i));
    else if (a == "--eval-every") opt.eval_every = std::atoll(next(i));
    else if (a == "--width") opt.width = std::atoll(next(i));
    else if (a == "--depth") opt.depth = std::atoll(next(i));
    else if (a == "--pooling") opt.pooling = next(i);
    else if (a == "--dump-buffer") opt.dump_buffer = next(i);
    else if (a == "--save-model") opt.save_model = next(i);
    else DECO_CHECK(false, "unknown flag '" + a + "' (see --help)");
  }
  return true;
}

// Dedicated path when artifacts are requested: run one DECO experiment with
// direct access to the learner so we can dump its buffer / model afterwards.
void run_with_artifacts(const CliOptions& opt) {
  const data::DatasetSpec spec = spec_by_name(opt.dataset);
  data::ProceduralImageWorld world(spec, opt.seed * 7919 + 17);
  data::Dataset pretrain = world.make_labeled_set(6, opt.seed + 1);
  data::Dataset test = world.make_test_set(30, opt.seed + 2);

  nn::ConvNetConfig mc;
  mc.in_channels = spec.channels;
  mc.image_h = spec.height;
  mc.image_w = spec.width;
  mc.num_classes = spec.num_classes;
  mc.width = opt.width;
  mc.depth = opt.depth;
  mc.pooling = opt.pooling == "max" ? nn::Pooling::kMax : nn::Pooling::kAvg;

  Rng rng(opt.seed * 0x9E37 + 0xC0FFEE);
  nn::ConvNet model(mc, rng);
  std::vector<int64_t> all(static_cast<size_t>(pretrain.size()));
  for (int64_t i = 0; i < pretrain.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, pretrain.batch(all), pretrain.labels(), 20,
                         1e-3f, 5e-4f, 32, rng);
  std::printf("pretrain accuracy: %.2f%%\n", eval::accuracy(model, test));

  core::DecoConfig cfg;
  cfg.ipc = opt.ipc;
  cfg.beta = opt.beta;
  cfg.model_update_epochs = opt.epochs;
  cfg.threshold_m = opt.threshold_m;
  cfg.condenser.alpha = opt.alpha;
  cfg.condenser.iterations = opt.iterations;
  core::DecoLearner learner(model, cfg, opt.seed + 3);
  learner.init_buffer_from(pretrain);

  data::StreamConfig sc;
  sc.stc = opt.stc;
  sc.segment_size = opt.segment_size;
  sc.total_segments = opt.segments;
  data::TemporalStream stream(world, sc, opt.seed + 4);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);

  std::printf("final accuracy:    %.2f%%  (condense %.1fs)\n",
              eval::accuracy(model, test), learner.condense_seconds());

  if (!opt.dump_buffer.empty()) {
    auto& buf = learner.buffer();
    for (int64_t r = 0; r < buf.size(); ++r) {
      Tensor img = buf.gather({r}).reshaped(
          {spec.channels, spec.height, spec.width});
      const std::string path = opt.dump_buffer + "/class" +
                               std::to_string(buf.label(r)) + "_slot" +
                               std::to_string(r % buf.ipc()) + ".ppm";
      write_ppm(path, img);
    }
    std::printf("wrote %lld synthetic images to %s\n",
                static_cast<long long>(buf.size()), opt.dump_buffer.c_str());
  }
  if (!opt.save_model.empty()) {
    nn::save_checkpoint(opt.save_model, model);
    std::printf("saved model checkpoint to %s\n", opt.save_model.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    if (!parse_args(argc, argv, opt)) {
      print_help();
      return 0;
    }

    if (!opt.dump_buffer.empty() || !opt.save_model.empty()) {
      DECO_CHECK(opt.method == "deco",
                 "--dump-buffer/--save-model require --method deco");
      run_with_artifacts(opt);
      return 0;
    }

    eval::RunConfig cfg;
    cfg.method = opt.method;
    cfg.spec = spec_by_name(opt.dataset);
    cfg.stream.stc = opt.stc;
    cfg.stream.segment_size = opt.segment_size;
    cfg.stream.total_segments = opt.segments;
    cfg.stream.video_mode =
        opt.dataset == "icub1" || opt.dataset == "core50" ||
        opt.dataset == "cifar10";
    cfg.ipc = opt.ipc;
    cfg.deco.beta = opt.beta;
    cfg.deco.model_update_epochs = opt.epochs;
    cfg.deco.threshold_m = opt.threshold_m;
    cfg.deco.condenser.alpha = opt.alpha;
    cfg.deco.condenser.iterations = opt.iterations;
    cfg.baseline.beta = opt.beta;
    cfg.baseline.model_update_epochs = opt.epochs;
    cfg.model_width = opt.width;
    cfg.model_depth = opt.depth;
    cfg.eval_every_segments = opt.eval_every;
    cfg.seed = opt.seed;
    cfg.pretrain_per_class = opt.dataset == "cifar100" ? 10 : 6;

    std::vector<float> finals;
    for (int64_t s = 0; s < opt.seeds; ++s) {
      cfg.seed = opt.seed + static_cast<uint64_t>(s);
      const auto res = eval::run_experiment(cfg);
      std::printf("seed %llu: pretrain %.2f%% -> final %.2f%%  "
                  "(pseudo-label acc %.1f%%, retained %.1f%%, condense %.1fs)\n",
                  static_cast<unsigned long long>(cfg.seed),
                  res.pretrain_accuracy, res.final_accuracy,
                  100.0 * res.pseudo_label_accuracy,
                  100.0 * res.retention_rate, res.condense_seconds);
      for (const auto& pt : res.curve)
        std::printf("  curve: %lld samples -> %.2f%%\n",
                    static_cast<long long>(pt.samples_seen), pt.accuracy);
      finals.push_back(res.final_accuracy);
    }
    if (opt.seeds > 1) {
      const auto agg = eval::aggregate(finals);
      std::printf("final over %lld seeds: %s\n",
                  static_cast<long long>(opt.seeds),
                  eval::format_aggregate(agg).c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
