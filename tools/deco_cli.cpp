// deco_cli — the reproduction's command-line front end.
//
//   deco_cli run     [flags]    single-learner experiment (the classic CLI)
//   deco_cli serve   [flags]    multi-session runtime over one SessionManager
//   deco_cli inspect FILE...    print checkpoint/state headers, no tensor loads
//   deco_cli bench   [flags]    fleet throughput sweep, or (--matrix) the
//                               scenario × method evaluation matrix
//
// Every subcommand accepts `--config FILE` (key=value lines, or *.json) and
// repeated `--set key=value` overrides, routed through runtime::ConfigMap —
// the same loader the benches and examples use. Precedence: --set > --config
// > explicit flags > defaults. `deco_cli <sub> --help` prints the
// subcommand's flags; a leading flag with no subcommand means `run`, so
// pre-subcommand invocations keep working.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "deco/core/learner.h"
#include "deco/core/thread_pool.h"
#include "deco/data/stream.h"
#include "deco/eval/metrics.h"
#include "deco/eval/runner.h"
#include "deco/nn/checkpoint.h"
#include "deco/runtime/config.h"
#include "deco/runtime/fleet.h"
#include "deco/scenario/harness.h"
#include "deco/tensor/check.h"
#include "deco/tensor/serialize.h"

using namespace deco;

namespace {

data::DatasetSpec spec_by_name(const std::string& name) {
  if (name == "icub1") return data::icub1_spec();
  if (name == "core50") return data::core50_spec();
  if (name == "cifar100") return data::cifar100_spec();
  if (name == "imagenet10") return data::imagenet10_spec();
  if (name == "cifar10") return data::cifar10_spec();
  DECO_CHECK(false, "unknown dataset '" + name + "'");
  return {};
}

// Collects --config / --set sources in order; build() materializes them into
// one ConfigMap (file entries first, then overrides — later wins).
struct ConfigSources {
  std::string file;
  std::vector<std::string> sets;

  runtime::ConfigMap build() const {
    runtime::ConfigMap m;
    if (!file.empty()) m = runtime::ConfigMap::from_file(file);
    for (const std::string& kv : sets) m.set_kv(kv);
    return m;
  }
};

const char* next_arg(int argc, char** argv, int& i) {
  DECO_CHECK(i + 1 < argc, std::string("flag ") + argv[i] + " needs a value");
  return argv[++i];
}

// ---- run --------------------------------------------------------------------

struct RunOptions {
  std::string method = "deco";
  std::string dataset = "core50";
  int64_t ipc = 10;
  int64_t segments = 10;
  int64_t segment_size = 32;
  int64_t stc = 32;
  int64_t seeds = 1;
  uint64_t seed = 1;
  int64_t epochs = 10;       // model-update epochs
  int64_t beta = 10;
  float alpha = 0.1f;
  float threshold_m = 0.4f;
  int64_t iterations = 10;   // matching iterations L
  int64_t eval_every = 0;
  int64_t width = 32;
  int64_t depth = 3;
  std::string pooling = "avg";
  std::string dump_buffer;   // directory for PPM dumps of the buffer
  std::string save_model;    // checkpoint path
  ConfigSources config;
};

void print_run_help() {
  std::printf(
      "deco_cli run — single-learner experiment\n\n"
      "  --method M       deco | random | fifo | selective_bp | kcenter | gss\n"
      "                   | dc | dsa | dm | upper_bound      (default deco)\n"
      "  --dataset D      icub1 | core50 | cifar100 | imagenet10 | cifar10\n"
      "  --ipc N          synthetic/real images per class     (default 10)\n"
      "  --segments N     stream length in segments           (default 10)\n"
      "  --segment-size N samples per segment                 (default 32)\n"
      "  --stc N          temporal correlation strength       (default 32)\n"
      "  --seeds N        repeat with N seeds, report mean±std (default 1)\n"
      "  --seed N         base RNG seed                       (default 1)\n"
      "  --epochs N       model-update epochs (opt_theta)     (default 10)\n"
      "  --beta N         model update interval, segments     (default 10)\n"
      "  --alpha F        feature-discrimination weight       (default 0.1)\n"
      "  --threshold F    majority-voting threshold m         (default 0.4)\n"
      "  --iterations N   matching iterations L               (default 10)\n"
      "  --eval-every N   record a learning-curve point every N segments\n"
      "  --width N        ConvNet width                       (default 32)\n"
      "  --depth N        ConvNet conv blocks                 (default 3)\n"
      "  --pooling P      avg | max                           (default avg)\n"
      "  --dump-buffer DIR  write the final synthetic buffer as PPM images\n"
      "  --save-model PATH  write the final model checkpoint\n"
      "  --config FILE    key=value (or .json) config file: deco.*, stream.*\n"
      "  --set key=value  single config override (repeatable)\n");
}

bool parse_run_args(int argc, char** argv, int first, RunOptions& opt) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&] { return next_arg(argc, argv, i); };
    if (a == "--help" || a == "-h") return false;
    else if (a == "--method") opt.method = next();
    else if (a == "--dataset") opt.dataset = next();
    else if (a == "--ipc") opt.ipc = std::atoll(next());
    else if (a == "--segments") opt.segments = std::atoll(next());
    else if (a == "--segment-size") opt.segment_size = std::atoll(next());
    else if (a == "--stc") opt.stc = std::atoll(next());
    else if (a == "--seeds") opt.seeds = std::atoll(next());
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--epochs") opt.epochs = std::atoll(next());
    else if (a == "--beta") opt.beta = std::atoll(next());
    else if (a == "--alpha") opt.alpha = std::atof(next());
    else if (a == "--threshold") opt.threshold_m = std::atof(next());
    else if (a == "--iterations") opt.iterations = std::atoll(next());
    else if (a == "--eval-every") opt.eval_every = std::atoll(next());
    else if (a == "--width") opt.width = std::atoll(next());
    else if (a == "--depth") opt.depth = std::atoll(next());
    else if (a == "--pooling") opt.pooling = next();
    else if (a == "--dump-buffer") opt.dump_buffer = next();
    else if (a == "--save-model") opt.save_model = next();
    else if (a == "--config") opt.config.file = next();
    else if (a == "--set") opt.config.sets.push_back(next());
    else DECO_CHECK(false, "unknown flag '" + a + "' (see deco_cli run --help)");
  }
  return true;
}

// Dedicated path when artifacts are requested: run one DECO experiment with
// direct access to the learner so we can dump its buffer / model afterwards.
void run_with_artifacts(const RunOptions& opt, runtime::ConfigMap& cm) {
  const data::DatasetSpec spec = spec_by_name(opt.dataset);
  data::ProceduralImageWorld world(spec, opt.seed * 7919 + 17);
  data::Dataset pretrain = world.make_labeled_set(6, opt.seed + 1);
  data::Dataset test = world.make_test_set(30, opt.seed + 2);

  nn::ConvNetConfig mc;
  mc.in_channels = spec.channels;
  mc.image_h = spec.height;
  mc.image_w = spec.width;
  mc.num_classes = spec.num_classes;
  mc.width = opt.width;
  mc.depth = opt.depth;
  mc.pooling = opt.pooling == "max" ? nn::Pooling::kMax : nn::Pooling::kAvg;

  Rng rng(opt.seed * 0x9E37 + 0xC0FFEE);
  nn::ConvNet model(mc, rng);
  std::vector<int64_t> all(static_cast<size_t>(pretrain.size()));
  for (int64_t i = 0; i < pretrain.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, pretrain.batch(all), pretrain.labels(), 20,
                         1e-3f, 5e-4f, 32, rng);
  std::printf("pretrain accuracy: %.2f%%\n", eval::accuracy(model, test));

  core::DecoConfig cfg;
  cfg.ipc = opt.ipc;
  cfg.beta = opt.beta;
  cfg.model_update_epochs = opt.epochs;
  cfg.threshold_m = opt.threshold_m;
  cfg.condenser.alpha = opt.alpha;
  cfg.condenser.iterations = opt.iterations;
  data::StreamConfig sc;
  sc.stc = opt.stc;
  sc.segment_size = opt.segment_size;
  sc.total_segments = opt.segments;
  cm.apply(cfg);
  cm.apply(sc);
  cm.check_fully_consumed();

  core::DecoLearner learner(model, cfg, opt.seed + 3);
  learner.init_buffer_from(pretrain);

  data::TemporalStream stream(world, sc, opt.seed + 4);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);

  std::printf("final accuracy:    %.2f%%  (condense %.1fs)\n",
              eval::accuracy(model, test), learner.condense_seconds());

  if (!opt.dump_buffer.empty()) {
    auto& buf = learner.buffer();
    for (int64_t r = 0; r < buf.size(); ++r) {
      Tensor img = buf.gather({r}).reshaped(
          {spec.channels, spec.height, spec.width});
      const std::string path = opt.dump_buffer + "/class" +
                               std::to_string(buf.label(r)) + "_slot" +
                               std::to_string(r % buf.ipc()) + ".ppm";
      write_ppm(path, img);
    }
    std::printf("wrote %lld synthetic images to %s\n",
                static_cast<long long>(buf.size()), opt.dump_buffer.c_str());
  }
  if (!opt.save_model.empty()) {
    nn::save_checkpoint(opt.save_model, model);
    std::printf("saved model checkpoint to %s\n", opt.save_model.c_str());
  }
}

int cmd_run(int argc, char** argv, int first) {
  RunOptions opt;
  if (!parse_run_args(argc, argv, first, opt)) {
    print_run_help();
    return 0;
  }
  runtime::ConfigMap cm = opt.config.build();

  if (!opt.dump_buffer.empty() || !opt.save_model.empty()) {
    DECO_CHECK(opt.method == "deco",
               "--dump-buffer/--save-model require --method deco");
    run_with_artifacts(opt, cm);
    return 0;
  }

  eval::RunConfig cfg;
  cfg.method = opt.method;
  cfg.spec = spec_by_name(opt.dataset);
  cfg.stream.stc = opt.stc;
  cfg.stream.segment_size = opt.segment_size;
  cfg.stream.total_segments = opt.segments;
  cfg.stream.video_mode =
      opt.dataset == "icub1" || opt.dataset == "core50" ||
      opt.dataset == "cifar10";
  cfg.ipc = opt.ipc;
  cfg.deco.beta = opt.beta;
  cfg.deco.model_update_epochs = opt.epochs;
  cfg.deco.threshold_m = opt.threshold_m;
  cfg.deco.condenser.alpha = opt.alpha;
  cfg.deco.condenser.iterations = opt.iterations;
  cfg.baseline.beta = opt.beta;
  cfg.baseline.model_update_epochs = opt.epochs;
  cfg.model_width = opt.width;
  cfg.model_depth = opt.depth;
  cfg.eval_every_segments = opt.eval_every;
  cfg.seed = opt.seed;
  cfg.pretrain_per_class = opt.dataset == "cifar100" ? 10 : 6;
  cm.apply(cfg.deco);
  cm.apply(cfg.stream);
  cm.check_fully_consumed();

  std::vector<float> finals;
  for (int64_t s = 0; s < opt.seeds; ++s) {
    cfg.seed = opt.seed + static_cast<uint64_t>(s);
    const auto res = eval::run_experiment(cfg);
    std::printf("seed %llu: pretrain %.2f%% -> final %.2f%%  "
                "(pseudo-label acc %.1f%%, retained %.1f%%, condense %.1fs)\n",
                static_cast<unsigned long long>(cfg.seed),
                res.pretrain_accuracy, res.final_accuracy,
                100.0 * res.pseudo_label_accuracy,
                100.0 * res.retention_rate, res.condense_seconds);
    for (const auto& pt : res.curve)
      std::printf("  curve: %lld samples -> %.2f%%\n",
                  static_cast<long long>(pt.samples_seen), pt.accuracy);
    finals.push_back(res.final_accuracy);
  }
  if (opt.seeds > 1) {
    const auto agg = eval::aggregate(finals);
    std::printf("final over %lld seeds: %s\n",
                static_cast<long long>(opt.seeds),
                eval::format_aggregate(agg).c_str());
  }
  return 0;
}

// ---- serve ------------------------------------------------------------------

struct ServeOptions {
  int64_t sessions = 4;
  std::string dataset = "core50";
  int64_t segments = 8;
  int64_t segment_size = 16;
  int64_t stc = 16;
  uint64_t seed = 1;
  ConfigSources config;
};

void print_serve_help() {
  std::printf(
      "deco_cli serve — run N learner sessions through the multi-session\n"
      "runtime (bounded ingest queues, deficit-round-robin scheduling over\n"
      "the shared thread pool)\n\n"
      "  --sessions N     concurrent learner sessions        (default 4)\n"
      "  --dataset D      icub1 | core50 | cifar100 | imagenet10 | cifar10\n"
      "  --segments N     stream length per session          (default 8)\n"
      "  --segment-size N samples per segment                (default 16)\n"
      "  --stc N          temporal correlation strength      (default 16)\n"
      "  --seed N         base RNG seed                      (default 1)\n"
      "  --config FILE    key=value (or .json) config file\n"
      "  --set key=value  single override (repeatable)\n\n"
      "config keys: deco.* (learner), stream.* (per-session stream), and\n"
      "runtime.queue_depth | runtime.overflow (block|shed_oldest) |\n"
      "runtime.quantum | runtime.max_deficit | runtime.checkpoint_every |\n"
      "runtime.checkpoint_dir | runtime.quarantine_after |\n"
      "runtime.pool_budget_mb | runtime.keep_reports |\n"
      "runtime.checkpoint_dtype (fp32|fp16|int8)\n"
      "storage keys: deco.cache_dtype (fp32|fp16|int8, condensed cache\n"
      "stored quantized) | deco.checkpoint_dtype | deco.quant_block\n");
}

int cmd_serve(int argc, char** argv, int first) {
  ServeOptions opt;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&] { return next_arg(argc, argv, i); };
    if (a == "--help" || a == "-h") {
      print_serve_help();
      return 0;
    }
    else if (a == "--sessions") opt.sessions = std::atoll(next());
    else if (a == "--dataset") opt.dataset = next();
    else if (a == "--segments") opt.segments = std::atoll(next());
    else if (a == "--segment-size") opt.segment_size = std::atoll(next());
    else if (a == "--stc") opt.stc = std::atoll(next());
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--config") opt.config.file = next();
    else if (a == "--set") opt.config.sets.push_back(next());
    else DECO_CHECK(false,
                    "unknown flag '" + a + "' (see deco_cli serve --help)");
  }

  runtime::FleetConfig fc;
  fc.sessions = opt.sessions;
  fc.spec = spec_by_name(opt.dataset);
  fc.stream.stc = opt.stc;
  fc.stream.segment_size = opt.segment_size;
  fc.stream.total_segments = opt.segments;
  fc.seed = opt.seed;
  // Serve-scale learner defaults: small matcher budget, frequent updates.
  fc.deco.model_update_epochs = 4;
  fc.deco.beta = 4;
  fc.deco.condenser.iterations = 4;

  runtime::ConfigMap cm = opt.config.build();
  cm.apply(fc.deco);
  cm.apply(fc.stream);
  cm.apply(fc.runtime);
  cm.check_fully_consumed();

  runtime::Fleet fleet(fc);
  std::printf("serving %lld sessions (queue depth %lld, %s overflow)...\n",
              static_cast<long long>(fc.sessions),
              static_cast<long long>(fc.runtime.queue_depth),
              runtime::overflow_policy_name(fc.runtime.overflow).c_str());
  const runtime::FleetResult res = fleet.run();

  std::printf("\n%-10s %-12s %9s %7s %6s %9s %11s\n", "session", "state",
              "processed", "failed", "shed", "maxdepth", "checkpoints");
  for (const runtime::SessionStatus& s : res.sessions) {
    std::printf("%-10s %-12s %9lld %7lld %6lld %9lld %11lld\n",
                s.name.c_str(), runtime::session_state_name(s.state).c_str(),
                static_cast<long long>(s.segments_processed),
                static_cast<long long>(s.segments_failed),
                static_cast<long long>(s.queue.shed),
                static_cast<long long>(s.queue.max_depth),
                static_cast<long long>(s.checkpoints_written));
    if (!s.last_error.empty())
      std::printf("           last error: %s\n", s.last_error.c_str());
  }
  std::printf("\n%lld segments in %.2fs  (%.2f segments/s)\n",
              static_cast<long long>(res.segments_processed), res.seconds,
              res.segments_per_second);
  return 0;
}

// ---- inspect ----------------------------------------------------------------

void print_inspect_help() {
  std::printf(
      "deco_cli inspect FILE...  — print the header and per-tensor metadata\n"
      "of DECO binary files without loading any tensor payload:\n"
      "  *.ckpt model checkpoints   (DECOCKPT)\n"
      "  learner state files        (DECOLSAV, save_state output)\n"
      "  single-tensor files        (DECOTNSR, save_tensor output)\n");
}

std::string shape_str(const std::vector<int64_t>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

std::string read_inspect_string(std::istream& is) {
  uint32_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  DECO_CHECK(static_cast<bool>(is) && n < 4096, "inspect: bad string field");
  std::string s(n, '\0');
  is.read(s.data(), n);
  DECO_CHECK(static_cast<bool>(is), "inspect: string truncated");
  return s;
}

template <typename T>
T read_inspect_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DECO_CHECK(static_cast<bool>(is), "inspect: file truncated");
  return v;
}

// Suffix describing a v3 record's storage: dtype, quant block and the
// compression ratio vs f32. Empty for v1/v2 records so legacy files print
// exactly as they always did.
std::string dtype_suffix(const TensorInfo& info) {
  if (info.version < 3) return "";
  std::string s = ", dtype ";
  s += dtype_name(info.dtype);
  if (info.dtype == DType::kQ8)
    s += ", block " + std::to_string(info.block);
  if (info.payload_bytes > 0 && info.numel > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ", %.2fx vs f32",
                  static_cast<double>(info.numel) * 4.0 /
                      static_cast<double>(info.payload_bytes));
    s += buf;
  }
  return s;
}

void inspect_checkpoint(std::istream& is) {
  // DECOCKPT: magic | u32 count | count × (string name, tensor).
  const uint32_t count = read_inspect_pod<uint32_t>(is);
  std::printf("  model checkpoint (DECOCKPT), %u parameters\n", count);
  int64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const std::string name = read_inspect_string(is);
    const TensorInfo info = skip_tensor(is);
    total += info.numel;
    std::printf("    %-28s %-20s %10lld floats (v%u%s)\n", name.c_str(),
                shape_str(info.shape).c_str(),
                static_cast<long long>(info.numel), info.version,
                dtype_suffix(info).c_str());
  }
  std::printf("  total: %lld parameters (%.2f MiB as f32)\n",
              static_cast<long long>(total),
              static_cast<double>(total) * 4.0 / (1 << 20));
}

void inspect_learner_state(std::istream& is, int64_t file_bytes) {
  // DECOLSAV v2: magic | u32 version | i64 segments | rng(4×u64,u8,f64) |
  // u32 count | count × (string, tensor) | buffer tensor | u8 soft
  // [| logits tensor] | string condenser | condenser blob | u32 CRC.
  const uint32_t version = read_inspect_pod<uint32_t>(is);
  DECO_CHECK(version == 2,
             "inspect: unsupported learner-state version " +
                 std::to_string(version));
  const int64_t segments = read_inspect_pod<int64_t>(is);
  for (int i = 0; i < 4; ++i) (void)read_inspect_pod<uint64_t>(is);  // rng
  (void)read_inspect_pod<uint8_t>(is);
  (void)read_inspect_pod<double>(is);
  std::printf("  learner state (DECOLSAV v%u), %lld segments seen\n", version,
              static_cast<long long>(segments));

  const uint32_t count = read_inspect_pod<uint32_t>(is);
  int64_t total = 0;
  std::printf("  %u model parameters:\n", count);
  for (uint32_t i = 0; i < count; ++i) {
    const std::string name = read_inspect_string(is);
    const TensorInfo info = skip_tensor(is);
    total += info.numel;
    std::printf("    %-28s %-20s %10lld floats%s\n", name.c_str(),
                shape_str(info.shape).c_str(),
                static_cast<long long>(info.numel),
                dtype_suffix(info).c_str());
  }
  const TensorInfo buffer = skip_tensor(is);
  std::printf("  synthetic buffer: %s%s\n", shape_str(buffer.shape).c_str(),
              dtype_suffix(buffer).c_str());
  const uint8_t soft = read_inspect_pod<uint8_t>(is);
  if (soft != 0) {
    const TensorInfo logits = skip_tensor(is);
    std::printf("  soft-label logits: %s\n", shape_str(logits.shape).c_str());
  } else {
    std::printf("  soft labels: off\n");
  }
  const std::string condenser = read_inspect_string(is);
  const int64_t condenser_bytes =
      file_bytes - static_cast<int64_t>(is.tellg()) -
      static_cast<int64_t>(sizeof(uint32_t));
  std::printf("  condenser: %s (%lld bytes of state), CRC32 trailer present\n",
              condenser.c_str(), static_cast<long long>(condenser_bytes));
  std::printf("  model total: %lld parameters (%.2f MiB as f32)\n",
              static_cast<long long>(total),
              static_cast<double>(total) * 4.0 / (1 << 20));
}

int cmd_inspect(int argc, char** argv, int first) {
  std::vector<std::string> files;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      print_inspect_help();
      return 0;
    }
    DECO_CHECK(a.rfind("--", 0) != 0,
               "unknown flag '" + a + "' (see deco_cli inspect --help)");
    files.push_back(a);
  }
  if (files.empty()) {
    print_inspect_help();
    return 1;
  }
  for (const std::string& path : files) {
    std::ifstream is(path, std::ios::binary);
    DECO_CHECK(is.is_open(), "inspect: cannot open " + path);
    is.seekg(0, std::ios::end);
    const int64_t file_bytes = static_cast<int64_t>(is.tellg());
    is.seekg(0);
    char magic[8] = {};
    is.read(magic, sizeof(magic));
    DECO_CHECK(static_cast<bool>(is), "inspect: " + path + " is too small");
    std::printf("%s  (%lld bytes)\n", path.c_str(),
                static_cast<long long>(file_bytes));
    if (std::memcmp(magic, "DECOCKPT", 8) == 0) {
      inspect_checkpoint(is);
    } else if (std::memcmp(magic, "DECOLSAV", 8) == 0) {
      inspect_learner_state(is, file_bytes);
    } else if (std::memcmp(magic, "DECOTNSR", 8) == 0) {
      is.seekg(0);  // skip_tensor reads the magic itself
      const TensorInfo info = skip_tensor(is);
      std::printf("  tensor (DECOTNSR v%u): %s, %lld floats, %lld payload "
                  "bytes%s%s\n",
                  info.version, shape_str(info.shape).c_str(),
                  static_cast<long long>(info.numel),
                  static_cast<long long>(info.payload_bytes),
                  dtype_suffix(info).c_str(),
                  info.version >= 2 ? ", CRC32 trailer" : "");
    } else {
      DECO_CHECK(false, "inspect: " + path +
                            " is not a DECO binary file (unknown magic)");
    }
  }
  return 0;
}

// ---- bench ------------------------------------------------------------------

void print_bench_help() {
  std::printf(
      "deco_cli bench — fleet throughput sweep, or the evaluation matrix\n\n"
      "throughput sweep (default):\n"
      "  --sessions LIST  comma-separated counts (default 1,2,4)\n"
      "  --segments N     stream length per session          (default 6)\n"
      "  --seed N         base RNG seed                      (default 1)\n"
      "  --json PATH      also write the sweep as JSON\n"
      "  --config FILE / --set key=value   same keys as serve\n\n"
      "scenario evaluation matrix (--matrix):\n"
      "  --matrix         run scenario x method cells through the harness\n"
      "  --scenarios LIST comma-separated scenario names  (default: all)\n"
      "  --methods LIST   comma-separated method names    (default: all)\n"
      "  --segments N     per-session stream length override\n"
      "  --seed N         cell seed                       (default 1)\n"
      "  --out PATH       report path (default BENCH_scenarios.json)\n");
}

std::vector<std::string> split_names(const std::string& list) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    if (comma > pos) out.push_back(list.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

int cmd_bench_matrix(int argc, char** argv, int first) {
  scenario::HarnessOptions options;
  std::vector<std::string> wanted_scenarios, methods;
  std::string out_path = "BENCH_scenarios.json";
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&] { return next_arg(argc, argv, i); };
    if (a == "--matrix") continue;
    if (a == "--help" || a == "-h") {
      print_bench_help();
      return 0;
    }
    else if (a == "--scenarios") wanted_scenarios = split_names(next());
    else if (a == "--methods") methods = split_names(next());
    else if (a == "--segments") options.segments = std::atoll(next());
    else if (a == "--seed") options.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--out") out_path = next();
    else DECO_CHECK(false, "unknown flag '" + a +
                               "' for bench --matrix (see deco_cli bench "
                               "--help)");
  }

  std::vector<scenario::ScenarioSpec> scenarios;
  if (wanted_scenarios.empty()) {
    scenarios = scenario::builtin_scenarios();
  } else {
    for (const std::string& n : wanted_scenarios)
      scenarios.push_back(scenario::scenario_by_name(n));
  }
  if (methods.empty()) methods = scenario::builtin_methods();

  scenario::MatrixReport report;
  report.seed = options.seed;
  report.threads = core::num_threads();
  std::printf("%-18s %-13s %8s %8s %6s %9s\n", "scenario", "method", "acc",
              "forget", "shed", "seconds");
  for (const scenario::ScenarioSpec& spec : scenarios) {
    for (const std::string& method : methods) {
      scenario::CellResult cell = scenario::run_cell(spec, method, options);
      std::printf("%-18s %-13s %8.2f %8.2f %6lld %9.2f\n",
                  cell.scenario.c_str(), cell.method.c_str(), cell.accuracy,
                  cell.forgetting, static_cast<long long>(cell.segments_shed),
                  cell.wall_seconds);
      std::fflush(stdout);
      report.cells.push_back(std::move(cell));
    }
  }
  scenario::write_matrix_json(report, out_path);
  std::printf("wrote %s (%zu cells)\n", out_path.c_str(),
              report.cells.size());
  return 0;
}

int cmd_bench(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    if (std::string(argv[i]) == "--matrix")
      return cmd_bench_matrix(argc, argv, first);
  }
  std::vector<int64_t> sessions = {1, 2, 4};
  int64_t segments = 6;
  uint64_t seed = 1;
  std::string json_path;
  ConfigSources config;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&] { return next_arg(argc, argv, i); };
    if (a == "--help" || a == "-h") {
      print_bench_help();
      return 0;
    } else if (a == "--sessions") {
      sessions.clear();
      std::string list = next();
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        sessions.push_back(std::atoll(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
      DECO_CHECK(!sessions.empty(), "--sessions needs at least one count");
    }
    else if (a == "--segments") segments = std::atoll(next());
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--json") json_path = next();
    else if (a == "--config") config.file = next();
    else if (a == "--set") config.sets.push_back(next());
    else DECO_CHECK(false,
                    "unknown flag '" + a + "' (see deco_cli bench --help)");
  }

  std::string json = "{\n  \"sweep\": [\n";
  std::printf("%9s %10s %12s %14s\n", "sessions", "segments", "seconds",
              "segments/s");
  for (size_t i = 0; i < sessions.size(); ++i) {
    runtime::FleetConfig fc;
    fc.sessions = sessions[i];
    fc.spec = spec_by_name("core50");
    fc.stream.stc = 16;
    fc.stream.segment_size = 16;
    fc.stream.total_segments = segments;
    fc.seed = seed;
    fc.deco.model_update_epochs = 2;
    fc.deco.beta = 4;
    fc.deco.condenser.iterations = 2;
    runtime::ConfigMap cm = config.build();
    cm.apply(fc.deco);
    cm.apply(fc.stream);
    cm.apply(fc.runtime);
    cm.check_fully_consumed();

    runtime::Fleet fleet(fc);
    const runtime::FleetResult res = fleet.run();
    std::printf("%9lld %10lld %12.3f %14.2f\n",
                static_cast<long long>(sessions[i]),
                static_cast<long long>(res.segments_processed), res.seconds,
                res.segments_per_second);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"sessions\": %lld, \"segments\": %lld, "
                  "\"seconds\": %.4f, \"segments_per_second\": %.3f}%s\n",
                  static_cast<long long>(sessions[i]),
                  static_cast<long long>(res.segments_processed), res.seconds,
                  res.segments_per_second,
                  i + 1 < sessions.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    DECO_CHECK(os.is_open(), "bench: cannot open " + json_path);
    os << json;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---- dispatch ---------------------------------------------------------------

void print_main_help() {
  std::printf(
      "deco_cli — on-device learning via dataset condensation\n\n"
      "  deco_cli run     [flags]   single-learner experiment\n"
      "  deco_cli serve   [flags]   multi-session learner runtime\n"
      "  deco_cli inspect FILE...   checkpoint/state headers, no tensor loads\n"
      "  deco_cli bench   [flags]   throughput sweep; --matrix runs the\n"
      "                             scenario evaluation matrix\n\n"
      "`deco_cli <subcommand> --help` lists that subcommand's flags.\n"
      "Flags with no subcommand run `run` (pre-subcommand compatibility).\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      print_main_help();
      return 0;
    }
    const std::string cmd = argv[1];
    if (cmd == "run") return cmd_run(argc, argv, 2);
    if (cmd == "serve") return cmd_serve(argc, argv, 2);
    if (cmd == "inspect") return cmd_inspect(argc, argv, 2);
    if (cmd == "bench") return cmd_bench(argc, argv, 2);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      const std::string topic = argc > 2 ? argv[2] : "";
      if (topic == "run") print_run_help();
      else if (topic == "serve") print_serve_help();
      else if (topic == "inspect") print_inspect_help();
      else if (topic == "bench") print_bench_help();
      else print_main_help();
      return 0;
    }
    // Legacy spelling: a leading flag means `run`.
    if (cmd.rfind("-", 0) == 0) return cmd_run(argc, argv, 1);
    DECO_CHECK(false, "unknown subcommand '" + cmd + "' (see --help)");
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
