#include "deco/core/workspace.h"

#include <algorithm>
#include <mutex>
#include <new>

#include "deco/tensor/check.h"

namespace deco::core {

namespace {

// Process-wide hot-path allocation counters.
std::atomic<int64_t> g_tensor_heap_allocs{0};
std::atomic<int64_t> g_tensor_heap_bytes{0};
std::atomic<int64_t> g_tensor_pool_hits{0};
std::atomic<int64_t> g_workspace_blocks{0};
std::atomic<int64_t> g_workspace_bytes{0};

// Registry of live arenas so aggregate() can sum their stats. Registration
// happens once per thread (tls construction/destruction), so the mutex is
// never on a hot path.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Workspace*>& registry() {
  static std::vector<Workspace*>* r = new std::vector<Workspace*>();
  return *r;
}

// Per-thread mirror of the allocation counters. The note_* hooks bump both
// the process-wide atomics and this thread-local copy, so callers can
// difference counters that only this thread could have moved (see
// memstats_this_thread in the header).
thread_local MemStatsSnapshot tl_memstats;

constexpr int64_t kMinBlockFloats = 1 << 16;  // 256 KiB
constexpr int64_t kAlignBytes = 64;
constexpr int64_t kAlignFloats = kAlignBytes / static_cast<int64_t>(sizeof(float));

int64_t round_up(int64_t n, int64_t mult) { return (n + mult - 1) / mult * mult; }

}  // namespace

MemStatsSnapshot operator-(const MemStatsSnapshot& a, const MemStatsSnapshot& b) {
  MemStatsSnapshot d;
  d.tensor_heap_allocs = a.tensor_heap_allocs - b.tensor_heap_allocs;
  d.tensor_heap_bytes = a.tensor_heap_bytes - b.tensor_heap_bytes;
  d.tensor_pool_hits = a.tensor_pool_hits - b.tensor_pool_hits;
  d.workspace_blocks = a.workspace_blocks - b.workspace_blocks;
  d.workspace_bytes = a.workspace_bytes - b.workspace_bytes;
  return d;
}

MemStatsSnapshot memstats_this_thread() { return tl_memstats; }

MemStatsSnapshot memstats() {
  MemStatsSnapshot s;
  s.tensor_heap_allocs = g_tensor_heap_allocs.load(std::memory_order_relaxed);
  s.tensor_heap_bytes = g_tensor_heap_bytes.load(std::memory_order_relaxed);
  s.tensor_pool_hits = g_tensor_pool_hits.load(std::memory_order_relaxed);
  s.workspace_blocks = g_workspace_blocks.load(std::memory_order_relaxed);
  s.workspace_bytes = g_workspace_bytes.load(std::memory_order_relaxed);
  return s;
}

void memstats_note_tensor_alloc(int64_t bytes) {
  g_tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_tensor_heap_bytes.fetch_add(bytes, std::memory_order_relaxed);
  ++tl_memstats.tensor_heap_allocs;
  tl_memstats.tensor_heap_bytes += bytes;
}

void memstats_note_tensor_pool_hit() {
  g_tensor_pool_hits.fetch_add(1, std::memory_order_relaxed);
  ++tl_memstats.tensor_pool_hits;
}

void memstats_note_workspace_block(int64_t bytes) {
  g_workspace_blocks.fetch_add(1, std::memory_order_relaxed);
  g_workspace_bytes.fetch_add(bytes, std::memory_order_relaxed);
  ++tl_memstats.workspace_blocks;
  tl_memstats.workspace_bytes += bytes;
}

Workspace::Workspace() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back(this);
}

Workspace::~Workspace() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto& r = registry();
    r.erase(std::remove(r.begin(), r.end(), this), r.end());
  }
  for (Block& b : blocks_)
    ::operator delete(b.data, std::align_val_t(kAlignBytes));
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

Workspace::Scope::Marker Workspace::mark() const {
  Scope::Marker m;
  m.block = cur_;
  m.offset = blocks_.empty() ? 0 : blocks_[cur_].used;
  m.in_use = in_use_;
  return m;
}

void Workspace::release(const Scope::Marker& m) {
  for (size_t b = m.block + 1; b < blocks_.size(); ++b) blocks_[b].used = 0;
  if (!blocks_.empty()) blocks_[m.block].used = m.offset;
  cur_ = m.block;
  in_use_ = m.in_use;
}

float* Workspace::alloc(int64_t n) {
  DECO_CHECK(n >= 0, "Workspace::alloc: negative size");
  const int64_t want = std::max<int64_t>(round_up(n, kAlignFloats), kAlignFloats);

  if (blocks_.empty() || blocks_[cur_].cap - blocks_[cur_].used < want) {
    // Move to the next block if one with room already exists (a previous
    // scope grew the arena); otherwise grow. Blocks are never resized, so
    // pointers handed out earlier in this scope stay valid.
    size_t next = cur_ + (blocks_.empty() ? 0 : 1);
    while (next < blocks_.size() && blocks_[next].cap < want) ++next;
    if (next >= blocks_.size()) {
      const int64_t last_cap = blocks_.empty() ? 0 : blocks_.back().cap;
      const int64_t cap = std::max({want, kMinBlockFloats, 2 * last_cap});
      Block b;
      b.data = static_cast<float*>(::operator new(
          static_cast<size_t>(cap) * sizeof(float), std::align_val_t(kAlignBytes)));
      b.cap = cap;
      blocks_.push_back(b);
      next = blocks_.size() - 1;
      bytes_reserved_.fetch_add(cap * static_cast<int64_t>(sizeof(float)),
                                std::memory_order_relaxed);
      memstats_note_workspace_block(cap * static_cast<int64_t>(sizeof(float)));
    }
    cur_ = next;
  }

  Block& b = blocks_[cur_];
  float* p = b.data + b.used;
  b.used += want;
  in_use_ += want;
  const int64_t in_use_bytes = in_use_ * static_cast<int64_t>(sizeof(float));
  if (in_use_bytes > high_water_.load(std::memory_order_relaxed))
    high_water_.store(in_use_bytes, std::memory_order_relaxed);
  return p;
}

WorkspaceStats Workspace::aggregate() {
  WorkspaceStats s;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Workspace* ws : registry()) {
    ++s.arenas;
    s.bytes_reserved += ws->bytes_reserved_.load(std::memory_order_relaxed);
    s.high_water_bytes += ws->high_water_.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace deco::core
