#include "deco/core/thread_pool.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "deco/core/telemetry.h"
#include "deco/tensor/check.h"

namespace deco::core {

namespace {
// Set while the current thread is executing pool chunks (worker or the
// caller participating in its own run); forces nested regions inline.
thread_local bool tl_in_pool_task = false;

// Pool telemetry: job/chunk throughput plus how long the caller blocks in
// the completion wait after exhausting its own share of chunks (the "my
// workers are still busy" tail). Handles are resolved once; the hot path
// pays relaxed adds only.
telemetry::Counter& jobs_counter() {
  static telemetry::Counter& c = telemetry::counter("pool/jobs");
  return c;
}
telemetry::Counter& chunks_counter() {
  static telemetry::Counter& c = telemetry::counter("pool/chunks");
  return c;
}
telemetry::Histogram& caller_wait_hist() {
  // 1 us .. 1 s in decades.
  static telemetry::Histogram& h = telemetry::histogram(
      "pool/caller_wait_ns",
      {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000,
       1'000'000'000});
  return h;
}
}  // namespace

struct ThreadPool::Impl {
  // Per-job state lives on the heap and is pinned by shared_ptr: a worker
  // that wakes late (after the job it was signalled for has been finished by
  // the other threads and run() has returned) still holds *that* job, whose
  // claim counter is exhausted, so it can neither dereference the caller's
  // dead task function nor steal chunks from a newer job.
  struct Job {
    const std::function<void(int64_t)>* task = nullptr;
    int64_t total_chunks = 0;
    std::atomic<int64_t> next_chunk{0};
    // Guarded by the pool mutex:
    int64_t done_chunks = 0;
    std::exception_ptr first_error;
  };

  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  // One "job" at a time; epoch bumps wake the workers. Both fields are
  // guarded by mu, and workers copy `job` in the same critical section in
  // which they observe the epoch change, so the pair is always consistent.
  std::shared_ptr<Job> job;
  uint64_t epoch = 0;
  bool stop = false;

  // Claims and executes chunks of `j` until none remain; returns how many it
  // ran. Safe on an already-finished job: the first claim overshoots and the
  // loop exits without touching j.task.
  int64_t drain(Job& j) {
    int64_t did = 0;
    for (;;) {
      const int64_t c = j.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= j.total_chunks) break;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (j.first_error) {  // an earlier chunk threw: finish without running
          ++did;
          continue;
        }
      }
      try {
        (*j.task)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!j.first_error) j.first_error = std::current_exception();
      }
      ++did;
    }
    return did;
  }

  void worker_loop() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        j = job;  // copied under mu together with the epoch it belongs to
      }
      // The job may already be finished and cleared from the slot by the
      // time a slow-waking worker gets here; there is nothing left to run.
      if (j == nullptr) continue;
      tl_in_pool_task = true;
      const int64_t did = drain(*j);
      tl_in_pool_task = false;
      {
        std::lock_guard<std::mutex> lk(mu);
        j->done_chunks += did;
        if (j->done_chunks == j->total_chunks) cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl), workers_count_(0) {
  const int extra = threads > 1 ? threads - 1 : 0;
  workers_count_ = extra;
  impl_->workers.reserve(static_cast<size_t>(extra));
  for (int i = 0; i < extra; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    // run() clears the job slot before returning, so a live job here means
    // the pool is being destroyed while parallel work is in flight.
    assert(impl_->job == nullptr && "ThreadPool destroyed with a job in flight");
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::in_worker() { return tl_in_pool_task; }

void ThreadPool::run(int64_t num_chunks,
                     const std::function<void(int64_t)>& task) {
  if (num_chunks <= 0) return;
  jobs_counter().add(1);
  chunks_counter().add(num_chunks);
  // Serial paths: no workers, trivial jobs, or nested invocation. These run
  // the exact same chunks in ascending order, so results cannot depend on
  // which path was taken.
  if (workers_count_ == 0 || num_chunks == 1 || tl_in_pool_task) {
    for (int64_t c = 0; c < num_chunks; ++c) task(c);
    return;
  }

  auto j = std::make_shared<Impl::Job>();
  j->task = &task;
  j->total_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job = j;
    ++impl_->epoch;
  }
  impl_->cv_work.notify_all();

  // The caller participates instead of idling.
  tl_in_pool_task = true;
  const int64_t did = impl_->drain(*j);
  tl_in_pool_task = false;

  std::exception_ptr err;
  {
    const int64_t wait_t0 =
        telemetry::enabled() ? telemetry::detail::now_ns() : 0;
    std::unique_lock<std::mutex> lk(impl_->mu);
    j->done_chunks += did;
    impl_->cv_done.wait(lk, [&] { return j->done_chunks == j->total_chunks; });
    if (wait_t0 != 0)
      caller_wait_hist().observe(telemetry::detail::now_ns() - wait_t0);
    err = j->first_error;
    // Drop the slot's reference so the dangling task pointer inside the job
    // cannot outlive this call via the pool itself; late workers keep their
    // own (exhausted) reference alive independently.
    if (impl_->job == j) impl_->job.reset();
  }
  if (err) std::rethrow_exception(err);
}

namespace {

int env_thread_count() {
  const char* env = std::getenv("DECO_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(env_thread_count());
  return pool;
}

}  // namespace

ThreadPool& global_pool() { return *global_pool_slot(); }

int num_threads() { return global_pool().threads(); }

void set_num_threads(int threads) {
  // Rebuilding the pool destroys the live workers; doing that from inside a
  // pool task (or with a job in flight — caught by the assert in
  // ~ThreadPool) would be a use-after-free. Fail loudly instead.
  DECO_CHECK(!ThreadPool::in_worker(),
             "set_num_threads() called from inside a pool task");
  global_pool_slot() = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

void run_chunks(int64_t num_chunks, const std::function<void(int64_t)>& task) {
  global_pool().run(num_chunks, task);
}

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t g = grain < 1 ? 1 : grain;
  const int64_t chunks = (n + g - 1) / g;
  global_pool().run(chunks, [&](int64_t c) {
    const int64_t b = begin + c * g;
    fn(b, b + g < end ? b + g : end);
  });
}

}  // namespace deco::core
