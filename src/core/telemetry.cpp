#include "deco/core/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "deco/tensor/check.h"

namespace deco::core::telemetry {

namespace detail {

std::atomic<bool> g_enabled{true};

namespace {

// Slot budget per shard. Each counter takes one slot, each span site two,
// each histogram edges+2. Exhaustion is a programming error (metrics are
// registered by code, not by user input) and fails loudly.
constexpr uint32_t kMaxSlots = 1024;
// Per-thread span ring capacity. 24 B/event -> ~192 KiB per tracing thread.
constexpr size_t kRingCap = 8192;
// Events preserved from exited threads (pool rebuilds in tests would
// otherwise grow this without bound). Oldest retired events drop first.
constexpr size_t kRetiredEventCap = 1 << 16;

struct Event {
  const char* name;
  int64_t ts_ns;
  int64_t dur_ns;
  int32_t tid;
  int32_t depth;
};

struct Shard;

// Global mutable state behind one mutex (registration, shard lifecycle,
// snapshot/reset). Leaky singleton: never destroyed, so at-exit exporters and
// late TLS destructors can always use it.
struct Global {
  std::mutex mu;

  // ---- registry (append-only; deques keep handle addresses stable) ----
  uint32_t next_slot = 0;
  std::deque<Counter> counters;
  std::deque<std::string> counter_names;
  std::deque<uint32_t> counter_slots;
  std::unordered_map<std::string, Counter*> counter_by_name;

  std::deque<std::atomic<int64_t>> gauge_cells;
  std::deque<Gauge> gauges;
  std::deque<std::string> gauge_names;
  std::unordered_map<std::string, Gauge*> gauge_by_name;

  std::deque<HistInfo> hist_infos;
  std::deque<Histogram> histograms;
  std::deque<std::string> hist_names;
  std::unordered_map<std::string, Histogram*> hist_by_name;

  std::deque<std::string> interned;  // span-site (and dynamic) name storage
  std::deque<SpanSite> span_sites;
  std::unordered_map<std::string, SpanSite*> span_by_name;

  // ---- shard lifecycle ----
  std::vector<Shard*> shards;         // live per-thread shards
  int64_t retired[kMaxSlots] = {};    // folded totals of exited threads
  std::deque<Event> retired_events;   // ring contents of exited threads
  int64_t dropped_events = 0;         // ring overwrites, process-wide
  int32_t next_tid = 0;

  uint32_t alloc_slots(uint32_t n) {
    DECO_CHECK(next_slot + n <= kMaxSlots,
               "telemetry: metric slot budget exhausted");
    const uint32_t first = next_slot;
    next_slot += n;
    return first;
  }
};

Global& global() {
  static Global* g = new Global();
  return *g;
}

// Per-thread metric shard + span ring. Registered with the global list on
// construction, folded into the retired totals on thread exit.
struct Shard {
  std::atomic<int64_t> slots[kMaxSlots];
  std::vector<Event> ring;  // allocated lazily on the first span
  size_t ring_next = 0;
  int64_t ring_total = 0;   // events ever pushed (>= ring.size())
  std::atomic<int64_t> dropped{0};  // ring overwrites (read by exporters)
  int32_t tid = 0;
  int32_t depth = 0;        // live span nesting depth on this thread

  Shard() {
    for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    tid = g.next_tid++;
    g.shards.push_back(this);
  }

  ~Shard() {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    for (uint32_t i = 0; i < kMaxSlots; ++i)
      g.retired[i] += slots[i].load(std::memory_order_relaxed);
    g.dropped_events += dropped.load(std::memory_order_relaxed);
    const size_t n = std::min(ring.size(), static_cast<size_t>(ring_total));
    for (size_t i = 0; i < n; ++i)
      g.retired_events.push_back(ring[i]);
    while (g.retired_events.size() > kRetiredEventCap) {
      g.retired_events.pop_front();
      ++g.dropped_events;
    }
    g.shards.erase(std::remove(g.shards.begin(), g.shards.end(), this),
                   g.shards.end());
  }

  void push_event(const char* name, int64_t ts, int64_t dur, int32_t d) {
    if (ring.empty()) ring.resize(kRingCap);
    if (ring_total >= static_cast<int64_t>(kRingCap))
      dropped.fetch_add(1, std::memory_order_relaxed);  // overwrites oldest
    ring[ring_next] = Event{name, ts, dur, tid, d};
    ring_next = (ring_next + 1) % kRingCap;
    ++ring_total;
  }
};

Shard& tls_shard() {
  thread_local Shard shard;
  return shard;
}

const std::chrono::steady_clock::time_point g_t0 =
    std::chrono::steady_clock::now();

// Reads the env switches and registers the at-exit exporters. Runs during
// static initialization of this translation unit, i.e. before main.
struct EnvInit {
  EnvInit() {
    if (const char* e = std::getenv("DECO_TELEMETRY");
        e != nullptr &&
        (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
         std::strcmp(e, "false") == 0)) {
      g_enabled.store(false, std::memory_order_relaxed);
    }
    if (std::getenv("DECO_TELEMETRY_JSON") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("DECO_TELEMETRY_JSON");
        if (path != nullptr && *path != '\0') write_aggregate_json(path);
      });
    }
    if (std::getenv("DECO_TELEMETRY_TRACE") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("DECO_TELEMETRY_TRACE");
        if (path != nullptr && *path != '\0') write_chrome_trace(path);
      });
    }
  }
};
EnvInit g_env_init;

// Sums a slot over every live shard plus the retired totals. Caller holds mu.
int64_t merged_slot(Global& g, uint32_t slot) {
  int64_t v = g.retired[slot];
  for (const Shard* s : g.shards)
    v += s->slots[slot].load(std::memory_order_relaxed);
  return v;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        else
          os << c;
    }
  }
}

}  // namespace

void shard_add(uint32_t slot, int64_t delta) {
  tls_shard().slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

void hist_observe(const HistInfo& info, int64_t value) {
  const auto& edges = info.upper_edges;
  uint32_t bucket = 0;
  while (bucket < edges.size() && value > edges[bucket]) ++bucket;
  Shard& s = tls_shard();
  s.slots[info.first_slot + bucket].fetch_add(1, std::memory_order_relaxed);
  s.slots[info.sum_slot].fetch_add(value, std::memory_order_relaxed);
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - g_t0)
      .count();
}

int32_t span_enter() { return tls_shard().depth++; }

}  // namespace detail

using detail::global;
using detail::Global;
using detail::merged_slot;
using detail::Shard;
using detail::tls_shard;

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::string key(name);
  if (auto it = g.counter_by_name.find(key); it != g.counter_by_name.end())
    return *it->second;
  const uint32_t slot = g.alloc_slots(1);
  g.counter_names.push_back(key);
  g.counter_slots.push_back(slot);
  g.counters.emplace_back(slot);
  g.counter_by_name.emplace(key, &g.counters.back());
  return g.counters.back();
}

Gauge& gauge(std::string_view name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::string key(name);
  if (auto it = g.gauge_by_name.find(key); it != g.gauge_by_name.end())
    return *it->second;
  g.gauge_names.push_back(key);
  g.gauge_cells.emplace_back(0);
  g.gauges.emplace_back(&g.gauge_cells.back());
  g.gauge_by_name.emplace(key, &g.gauges.back());
  return g.gauges.back();
}

Histogram& histogram(std::string_view name, std::vector<int64_t> upper_edges) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::string key(name);
  if (auto it = g.hist_by_name.find(key); it != g.hist_by_name.end())
    return *it->second;
  DECO_CHECK(!upper_edges.empty(), "telemetry: histogram needs edges");
  DECO_CHECK(std::is_sorted(upper_edges.begin(), upper_edges.end()),
             "telemetry: histogram edges must ascend");
  detail::HistInfo info;
  info.upper_edges = std::move(upper_edges);
  info.first_slot =
      g.alloc_slots(static_cast<uint32_t>(info.upper_edges.size()) + 2);
  info.sum_slot =
      info.first_slot + static_cast<uint32_t>(info.upper_edges.size()) + 1;
  g.hist_infos.push_back(std::move(info));
  g.hist_names.push_back(key);
  g.histograms.emplace_back(&g.hist_infos.back());
  g.hist_by_name.emplace(key, &g.histograms.back());
  return g.histograms.back();
}

SpanSite& span_site(std::string_view name) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::string key(name);
  if (auto it = g.span_by_name.find(key); it != g.span_by_name.end())
    return *it->second;
  g.interned.push_back(key);
  SpanSite site;
  site.name = g.interned.back().c_str();
  site.count_slot = g.alloc_slots(2);
  site.ns_slot = site.count_slot + 1;
  g.span_sites.push_back(site);
  g.span_by_name.emplace(key, &g.span_sites.back());
  return g.span_sites.back();
}

ScopedSpan::~ScopedSpan() {
  if (site_ == nullptr) return;
  const int64_t dur = detail::now_ns() - start_ns_;
  Shard& s = tls_shard();
  s.depth = depth_;  // unwind to the entry depth (robust to toggles mid-span)
  s.slots[site_->count_slot].fetch_add(1, std::memory_order_relaxed);
  s.slots[site_->ns_slot].fetch_add(dur, std::memory_order_relaxed);
  s.push_event(site_->name, start_ns_, dur, depth_);
}

int64_t Snapshot::counter_value(std::string_view name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const SpanAggregate* Snapshot::span(std::string_view name) const {
  for (const SpanAggregate& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

Snapshot snapshot() {
  Snapshot out;
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);

  out.counters.reserve(g.counters.size());
  for (size_t i = 0; i < g.counter_names.size(); ++i)
    out.counters.push_back(
        {g.counter_names[i], merged_slot(g, g.counter_slots[i])});

  out.gauges.reserve(g.gauges.size());
  {
    size_t i = 0;
    for (const auto& cell : g.gauge_cells) {
      out.gauges.push_back(
          {g.gauge_names[i], cell.load(std::memory_order_relaxed)});
      ++i;
    }
  }

  out.histograms.reserve(g.hist_infos.size());
  {
    size_t i = 0;
    for (const detail::HistInfo& info : g.hist_infos) {
      HistogramValue hv;
      hv.name = g.hist_names[i++];
      hv.upper_edges = info.upper_edges;
      hv.counts.resize(info.upper_edges.size() + 1);
      for (size_t b = 0; b < hv.counts.size(); ++b)
        hv.counts[b] = merged_slot(g, info.first_slot + static_cast<uint32_t>(b));
      hv.sum = merged_slot(g, info.sum_slot);
      out.histograms.push_back(std::move(hv));
    }
  }

  out.spans.reserve(g.span_sites.size());
  for (const SpanSite& site : g.span_sites) {
    SpanAggregate agg;
    agg.name = site.name;
    agg.count = merged_slot(g, site.count_slot);
    agg.total_ns = merged_slot(g, site.ns_slot);
    out.spans.push_back(std::move(agg));
  }

  out.memstats = memstats();
  out.workspace = Workspace::aggregate();
  return out;
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> out;
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (const detail::Event& e : g.retired_events)
    out.push_back({e.name, e.ts_ns, e.dur_ns, e.tid, e.depth});
  for (const Shard* s : g.shards) {
    const size_t n =
        std::min(s->ring.size(), static_cast<size_t>(s->ring_total));
    for (size_t i = 0; i < n; ++i) {
      const detail::Event& e = s->ring[i];
      out.push_back({e.name, e.ts_ns, e.dur_ns, e.tid, e.depth});
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_ns < b.ts_ns;
  });
  return out;
}

int64_t dropped_events() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  int64_t n = g.dropped_events;
  for (const Shard* s : g.shards)
    n += s->dropped.load(std::memory_order_relaxed);
  return n;
}

void reset() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  std::fill(g.retired, g.retired + detail::kMaxSlots, int64_t{0});
  g.retired_events.clear();
  g.dropped_events = 0;
  for (Shard* s : g.shards) {
    for (auto& slot : s->slots) slot.store(0, std::memory_order_relaxed);
    s->ring_next = 0;
    s->ring_total = 0;
    s->dropped.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : g.gauge_cells) cell.store(0, std::memory_order_relaxed);
}

std::string aggregate_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? ", " : "") << "\n    \"";
    detail::json_escape(os, snap.counters[i].name);
    os << "\": " << snap.counters[i].value;
  }
  os << "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? ", " : "") << "\n    \"";
    detail::json_escape(os, snap.gauges[i].name);
    os << "\": " << snap.gauges[i].value;
  }
  os << "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramValue& h = snap.histograms[i];
    os << (i ? ", " : "") << "\n    \"";
    detail::json_escape(os, h.name);
    os << "\": {\"upper_edges\": [";
    for (size_t b = 0; b < h.upper_edges.size(); ++b)
      os << (b ? ", " : "") << h.upper_edges[b];
    os << "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b)
      os << (b ? ", " : "") << h.counts[b];
    os << "], \"sum\": " << h.sum << ", \"count\": " << h.count() << "}";
  }
  os << "\n  },\n  \"spans\": {";
  for (size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanAggregate& s = snap.spans[i];
    os << (i ? ", " : "") << "\n    \"";
    detail::json_escape(os, s.name);
    os << "\": {\"count\": " << s.count << ", \"total_ns\": " << s.total_ns
       << "}";
  }
  os << "\n  },\n  \"memstats\": {"
     << "\"tensor_heap_allocs\": " << snap.memstats.tensor_heap_allocs
     << ", \"tensor_heap_bytes\": " << snap.memstats.tensor_heap_bytes
     << ", \"tensor_pool_hits\": " << snap.memstats.tensor_pool_hits
     << ", \"workspace_blocks\": " << snap.memstats.workspace_blocks
     << ", \"workspace_bytes\": " << snap.memstats.workspace_bytes
     << ", \"hot_allocs\": " << snap.memstats.hot_allocs() << "},\n"
     << "  \"workspace\": {"
     << "\"arenas\": " << snap.workspace.arenas
     << ", \"bytes_reserved\": " << snap.workspace.bytes_reserved
     << ", \"high_water_bytes\": " << snap.workspace.high_water_bytes << "}\n"
     << "}\n";
  return os.str();
}

void write_aggregate_json(const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  DECO_CHECK(os.is_open(), "telemetry: cannot open " + path);
  os << aggregate_json(snapshot());
  os.flush();
  DECO_CHECK(static_cast<bool>(os), "telemetry: write failed: " + path);
}

void write_chrome_trace(const std::string& path) {
  const std::vector<TraceEvent> events = trace_events();
  std::ofstream os(path, std::ios::trunc);
  DECO_CHECK(os.is_open(), "telemetry: cannot open " + path);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i ? ",\n" : "\n") << "  {\"name\": \"";
    detail::json_escape(os, e.name);
    // Chrome trace timestamps are microseconds (double).
    os << "\", \"cat\": \"deco\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(e.ts_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << e.tid
       << ", \"args\": {\"depth\": " << e.depth << "}}";
  }
  os << "\n]}\n";
  os.flush();
  DECO_CHECK(static_cast<bool>(os), "telemetry: write failed: " + path);
}

}  // namespace deco::core::telemetry
