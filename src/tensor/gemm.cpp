// Packed blocked GEMM (GotoBLAS/BLIS structure, scalar-source microkernel).
//
// Layout: A is packed into MR-row strips (strip s holds rows [s*MR, s*MR+MR),
// element (kk, r) at offset kk*MR + r), B into NR-column strips (element
// (kk, c) at kk*NR + c). Edge strips are zero-padded to full width — padding
// only ever lands in output lanes that the masked writeback discards, so
// Inf/NaN semantics of the real elements are untouched. The k dimension is
// never padded.
//
// Compute walks KC-sized k blocks in ascending order; within a block the
// microkernel accumulates k ascending into a local MR×NR register tile, then
// adds the tile into C (or stores it, for the first block of a non-accumulate
// call). Each output element's accumulation order is therefore a pure
// function of (k, KC) — never of the thread count. Parallelism only carves
// ownership: pack strips have disjoint destinations, and each MC×NC output
// tile is written by exactly one task. That satisfies contract shapes (a)
// and (c) in core/thread_pool.h, so results are bitwise identical at any
// DECO_NUM_THREADS.
//
// Both pack panels come from the calling thread's Workspace arena, so a
// steady-state training loop runs this kernel with zero heap traffic.

#include "deco/tensor/gemm.h"

#include <algorithm>

#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "deco/core/workspace.h"

namespace deco::detail {

namespace {

// Register tile. MR*NR accumulators must fit the vector register file:
// 8 rows × 32 columns = 16 AVX-512 (or 32 AVX2) vector accumulators plus a
// broadcast register — comfortably inside 32 zmm / tight but viable in ymm.
constexpr int64_t kMR = 8;
constexpr int64_t kNR = 32;
// Cache blocking. KC sizes one packed B strip (KC*NR floats = 32 KiB) to
// roughly L1; MC*KC (64 KiB) stays well inside L2 alongside it. MC and NC
// are ownership granularity for the parallel split and must be multiples of
// MR / NR respectively.
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 64;
constexpr int64_t kNC = 512;

static_assert(kMC % kMR == 0, "MC must be a multiple of MR");
static_assert(kNC % kNR == 0, "NC must be a multiple of NR");

int64_t div_up(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Strip grain sized so one pack chunk carries ~64k copies (same policy as
// row_grain in ops.cpp): pure function of the shape, never the thread count.
int64_t strip_grain(int64_t work_per_strip) {
  constexpr int64_t kChunkWork = 1 << 16;
  return std::max<int64_t>(1, kChunkWork / std::max<int64_t>(1, work_per_strip));
}

void pack_a(const float* a, int64_t a_rs, int64_t a_cs, int64_t m, int64_t k,
            float* pack) {
  const int64_t strips = div_up(m, kMR);
  core::parallel_for(0, strips, strip_grain(k * kMR),
                     [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      float* dst = pack + s * k * kMR;
      const int64_t i0 = s * kMR;
      const int64_t rows = std::min<int64_t>(kMR, m - i0);
      const float* src0 = a + i0 * a_rs;
      for (int64_t kk = 0; kk < k; ++kk) {
        float* d = dst + kk * kMR;
        const float* src = src0 + kk * a_cs;
        int64_t r = 0;
        for (; r < rows; ++r) d[r] = src[r * a_rs];
        for (; r < kMR; ++r) d[r] = 0.0f;
      }
    }
  });
}

void pack_b(const float* b, int64_t b_rs, int64_t b_cs, int64_t k, int64_t n,
            float* pack) {
  const int64_t strips = div_up(n, kNR);
  core::parallel_for(0, strips, strip_grain(k * kNR),
                     [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      float* dst = pack + s * k * kNR;
      const int64_t j0 = s * kNR;
      const int64_t cols = std::min<int64_t>(kNR, n - j0);
      const float* src0 = b + j0 * b_cs;
      for (int64_t kk = 0; kk < k; ++kk) {
        float* d = dst + kk * kNR;
        const float* src = src0 + kk * b_rs;
        int64_t c = 0;
        for (; c < cols; ++c) d[c] = src[c * b_cs];
        for (; c < kNR; ++c) d[c] = 0.0f;
      }
    }
  });
}

// acc[r][c] += sum over kc of Apack(kk, r) * Bpack(kk, c). The fixed trip
// counts let the compiler unroll r fully and keep the whole tile in vector
// registers; k ascends, which is the accumulation order the determinism
// contract pins down.
void micro_kernel(const float* ap, const float* bp, int64_t kc,
                  float acc[kMR * kNR]) {
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMR;
    const float* brow = bp + kk * kNR;
    for (int64_t r = 0; r < kMR; ++r) {
      const float ar = arow[r];
      for (int64_t c = 0; c < kNR; ++c) acc[r * kNR + c] += ar * brow[c];
    }
  }
}

}  // namespace

void gemm_strided(int64_t m, int64_t n, int64_t k,
                  const float* a, int64_t a_rs, int64_t a_cs,
                  const float* b, int64_t b_rs, int64_t b_cs,
                  float* c, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Empty contraction: the k-block loop below would never write C.
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }

  const int64_t a_strips = div_up(m, kMR);
  const int64_t b_strips = div_up(n, kNR);

  // Throughput accounting (multiply-add = 2 flops) and packing traffic; the
  // span aggregates kernel wall time per phase for the telemetry exports.
  DECO_TRACE_SCOPE("tensor/gemm");
  {
    namespace telem = core::telemetry;
    static telem::Counter& c_calls = telem::counter("gemm/calls");
    static telem::Counter& c_flops = telem::counter("gemm/flops");
    static telem::Counter& c_pack = telem::counter("gemm/pack_bytes");
    c_calls.add(1);
    c_flops.add(2 * m * n * k);
    c_pack.add((a_strips * kMR + b_strips * kNR) * k *
               static_cast<int64_t>(sizeof(float)));
  }

  core::Workspace::Scope scratch;
  float* packA = scratch.alloc_floats(a_strips * kMR * k);
  float* packB = scratch.alloc_floats(b_strips * kNR * k);
  pack_a(a, a_rs, a_cs, m, k, packA);
  pack_b(b, b_rs, b_cs, k, n, packB);

  const int64_t tiles_m = div_up(m, kMC);
  const int64_t tiles_n = div_up(n, kNC);
  core::parallel_for(0, tiles_m * tiles_n, 1, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t ti = t / tiles_n;
      const int64_t tj = t % tiles_n;
      const int64_t i_begin = ti * kMC, i_end = std::min(i_begin + kMC, m);
      const int64_t j_begin = tj * kNC, j_end = std::min(j_begin + kNC, n);
      for (int64_t kc_begin = 0; kc_begin < k; kc_begin += kKC) {
        const int64_t kc = std::min(kKC, k - kc_begin);
        const bool store = kc_begin == 0 && !accumulate;
        for (int64_t jr = j_begin; jr < j_end; jr += kNR) {
          const float* bp = packB + ((jr / kNR) * k + kc_begin) * kNR;
          const int64_t cols = std::min(kNR, j_end - jr);
          for (int64_t ir = i_begin; ir < i_end; ir += kMR) {
            const float* ap = packA + ((ir / kMR) * k + kc_begin) * kMR;
            const int64_t rows = std::min(kMR, i_end - ir);
            alignas(64) float acc[kMR * kNR] = {};
            micro_kernel(ap, bp, kc, acc);
            for (int64_t r = 0; r < rows; ++r) {
              float* crow = c + (ir + r) * n + jr;
              const float* arow = acc + r * kNR;
              if (store) {
                for (int64_t cc = 0; cc < cols; ++cc) crow[cc] = arow[cc];
              } else {
                for (int64_t cc = 0; cc < cols; ++cc) crow[cc] += arow[cc];
              }
            }
          }
        }
      }
    }
  });
}

}  // namespace deco::detail
