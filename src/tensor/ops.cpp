#include "deco/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "deco/core/thread_pool.h"
#include "deco/tensor/check.h"
#include "deco/tensor/gemm.h"

namespace deco {

namespace {
void ensure_shape(Tensor& t, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  if (t.numel() == n) {
    t.reshape(std::move(shape));
  } else {
    t = Tensor(std::move(shape));
  }
}

void check_acc_shape(const Tensor& out, int64_t m, int64_t n, const char* op) {
  DECO_CHECK(out.ndim() == 2 && out.dim(0) == m && out.dim(1) == n,
             std::string(op) + ": accumulator shape " + out.shape_str() +
                 " does not match result");
}

// Rows per parallel chunk, sized so a chunk carries ~64k scalar ops: small
// kernels collapse to one chunk (pure serial, no dispatch overhead), large
// ones split into enough chunks to load every worker. The grain is a pure
// function of the problem shape — never of the thread count — which is what
// keeps chunked reductions bitwise deterministic (see thread_pool.h).
int64_t row_grain(int64_t work_per_row) {
  constexpr int64_t kChunkWork = 1 << 16;
  return std::max<int64_t>(1, kChunkWork / std::max<int64_t>(1, work_per_row));
}
}  // namespace

// The three matmul variants all lower onto detail::gemm_strided, which packs
// the operands and runs the blocked kernel. No zero-skip shortcuts: every
// product is computed, so a 0 in A against an Inf/NaN in B yields NaN as
// IEEE demands (a previous `if (aik == 0) continue` masked exactly the
// non-finite values core::NumericGuard exists to catch).

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul: inputs must be 2-D");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DECO_CHECK(b.dim(0) == k, "matmul: inner dims differ: " + a.shape_str() +
                                " x " + b.shape_str());
  ensure_shape(out, {m, n});
  detail::gemm_strided(m, n, k, a.data(), k, 1, b.data(), n, 1, out.data(),
                       /*accumulate=*/false);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(a, b, out);
  return out;
}

void matmul_acc_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_acc: inputs must be 2-D");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DECO_CHECK(b.dim(0) == k, "matmul_acc: inner dims differ: " + a.shape_str() +
                                " x " + b.shape_str());
  check_acc_shape(out, m, n, "matmul_acc");
  detail::gemm_strided(m, n, k, a.data(), k, 1, b.data(), n, 1, out.data(),
                       /*accumulate=*/true);
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_tn: inputs must be 2-D");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DECO_CHECK(b.dim(0) == k, "matmul_tn: leading dims differ: " + a.shape_str() +
                                " vs " + b.shape_str());
  ensure_shape(out, {m, n});
  detail::gemm_strided(m, n, k, a.data(), 1, m, b.data(), n, 1, out.data(),
                       /*accumulate=*/false);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_tn_into(a, b, out);
  return out;
}

void matmul_tn_acc_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_tn_acc: inputs must be 2-D");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DECO_CHECK(b.dim(0) == k, "matmul_tn_acc: leading dims differ: " +
                                a.shape_str() + " vs " + b.shape_str());
  check_acc_shape(out, m, n, "matmul_tn_acc");
  detail::gemm_strided(m, n, k, a.data(), 1, m, b.data(), n, 1, out.data(),
                       /*accumulate=*/true);
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_nt: inputs must be 2-D");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DECO_CHECK(b.dim(1) == k, "matmul_nt: trailing dims differ: " + a.shape_str() +
                                " vs " + b.shape_str());
  ensure_shape(out, {m, n});
  detail::gemm_strided(m, n, k, a.data(), k, 1, b.data(), 1, k, out.data(),
                       /*accumulate=*/false);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_nt_into(a, b, out);
  return out;
}

void matmul_nt_acc_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_nt_acc: inputs must be 2-D");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DECO_CHECK(b.dim(1) == k, "matmul_nt_acc: trailing dims differ: " +
                                a.shape_str() + " vs " + b.shape_str());
  check_acc_shape(out, m, n, "matmul_nt_acc");
  detail::gemm_strided(m, n, k, a.data(), k, 1, b.data(), 1, k, out.data(),
                       /*accumulate=*/true);
}

void transpose2d_into(const Tensor& in, Tensor& out) {
  DECO_CHECK(in.ndim() == 2, "transpose2d: input must be 2-D");
  const int64_t r = in.dim(0), c = in.dim(1);
  ensure_shape(out, {c, r});
  const float* pi = in.data();
  float* po = out.data();
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) po[j * r + i] = pi[i * c + j];
}

Tensor transpose2d(const Tensor& in) {
  Tensor out;
  transpose2d_into(in, out);
  return out;
}

void im2col_into(const Tensor& input, const Conv2dGeometry& g, Tensor& cols) {
  DECO_CHECK(input.ndim() == 4, "im2col: input must be NCHW");
  const int64_t N = input.dim(0);
  DECO_CHECK(input.dim(1) == g.in_channels && input.dim(2) == g.in_h &&
                 input.dim(3) == g.in_w,
             "im2col: input " + input.shape_str() + " disagrees with geometry");
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t rows = g.col_rows();
  const int64_t cols_per_sample = oh * ow;
  ensure_shape(cols, {rows, N * cols_per_sample});
  const float* pi = input.data();
  float* pc = cols.data();
  const int64_t total_cols = N * cols_per_sample;

  // Each (c, ky, kx) triple owns one disjoint output row of `cols`.
  core::parallel_for(0, rows, row_grain(total_cols), [&](int64_t r0, int64_t r1) {
    for (int64_t row = r0; row < r1; ++row) {
      const int64_t kx = row % g.kernel_w;
      const int64_t ky = (row / g.kernel_w) % g.kernel_h;
      const int64_t c = row / (g.kernel_w * g.kernel_h);
      float* out_row = pc + row * total_cols;
      for (int64_t n = 0; n < N; ++n) {
        const float* img = pi + (n * g.in_channels + c) * g.in_h * g.in_w;
        float* dst = out_row + n * cols_per_sample;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.in_h) {
            std::fill(dst + oy * ow, dst + (oy + 1) * ow, 0.0f);
            continue;
          }
          const float* src_row = img + iy * g.in_w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride + kx - g.padding;
            dst[oy * ow + ox] = (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  });
}

void col2im_into(const Tensor& cols, const Conv2dGeometry& g, Tensor& grad_input) {
  DECO_CHECK(grad_input.ndim() == 4, "col2im: grad_input must be NCHW");
  const int64_t N = grad_input.dim(0);
  DECO_CHECK(grad_input.dim(1) == g.in_channels && grad_input.dim(2) == g.in_h &&
                 grad_input.dim(3) == g.in_w,
             "col2im: grad_input disagrees with geometry");
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t cols_per_sample = oh * ow;
  const int64_t total_cols = N * cols_per_sample;
  DECO_CHECK(cols.ndim() == 2 && cols.dim(0) == g.col_rows() &&
                 cols.dim(1) == total_cols,
             "col2im: cols shape " + cols.shape_str() + " disagrees with geometry");
  grad_input.zero();
  const float* pc = cols.data();
  float* pi = grad_input.data();

  // Kernel taps of one channel overlap in the gradient image, so the split
  // is over disjoint (c, n) planes instead; within a plane the taps run in
  // the serial (ky, kx) order, keeping each pixel's accumulation order — and
  // therefore the float result — identical for every thread count.
  const int64_t plane_work = g.kernel_h * g.kernel_w * cols_per_sample;
  core::parallel_for(
      0, g.in_channels * N, row_grain(plane_work),
      [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          const int64_t c = p / N;
          const int64_t n = p % N;
          float* img = pi + (n * g.in_channels + c) * g.in_h * g.in_w;
          for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
            for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const int64_t row = (c * g.kernel_h + ky) * g.kernel_w + kx;
              const float* src = pc + row * total_cols + n * cols_per_sample;
              for (int64_t oy = 0; oy < oh; ++oy) {
                const int64_t iy = oy * g.stride + ky - g.padding;
                if (iy < 0 || iy >= g.in_h) continue;
                float* dst_row = img + iy * g.in_w;
                for (int64_t ox = 0; ox < ow; ++ox) {
                  const int64_t ix = ox * g.stride + kx - g.padding;
                  if (ix >= 0 && ix < g.in_w) dst_row[ix] += src[oy * ow + ox];
                }
              }
            }
          }
        }
      });
}

void softmax_rows_into(const Tensor& logits, Tensor& probs) {
  DECO_CHECK(logits.ndim() == 2, "softmax_rows: input must be 2-D");
  const int64_t r = logits.dim(0), c = logits.dim(1);
  ensure_shape(probs, {r, c});
  const float* pl = logits.data();
  float* pp = probs.data();
  core::parallel_for(0, r, row_grain(4 * c), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* in = pl + i * c;
      float* out = pp + i * c;
      float mx = in[0];
      for (int64_t j = 1; j < c; ++j) mx = std::max(mx, in[j]);
      double sum = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        out[j] = std::exp(in[j] - mx);
        sum += out[j];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (int64_t j = 0; j < c; ++j) out[j] *= inv;
    }
  });
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out;
  softmax_rows_into(logits, out);
  return out;
}

void log_softmax_rows_into(const Tensor& logits, Tensor& out) {
  DECO_CHECK(logits.ndim() == 2, "log_softmax_rows: input must be 2-D");
  const int64_t r = logits.dim(0), c = logits.dim(1);
  ensure_shape(out, {r, c});
  const float* pl = logits.data();
  float* po = out.data();
  core::parallel_for(0, r, row_grain(4 * c), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* in = pl + i * c;
      float* o = po + i * c;
      float mx = in[0];
      for (int64_t j = 1; j < c; ++j) mx = std::max(mx, in[j]);
      double sum = 0.0;
      for (int64_t j = 0; j < c; ++j)
        sum += std::exp(static_cast<double>(in[j]) - mx);
      const float lse = mx + static_cast<float>(std::log(sum));
      for (int64_t j = 0; j < c; ++j) o[j] = in[j] - lse;
    }
  });
}

std::vector<int64_t> argmax_rows(const Tensor& t) {
  DECO_CHECK(t.ndim() == 2, "argmax_rows: input must be 2-D");
  const int64_t r = t.dim(0), c = t.dim(1);
  std::vector<int64_t> out(static_cast<size_t>(r));
  const float* p = t.data();
  for (int64_t i = 0; i < r; ++i) {
    const float* rowp = p + i * c;
    out[static_cast<size_t>(i)] =
        std::distance(rowp, std::max_element(rowp, rowp + c));
  }
  return out;
}

std::vector<float> max_rows(const Tensor& t) {
  DECO_CHECK(t.ndim() == 2, "max_rows: input must be 2-D");
  const int64_t r = t.dim(0), c = t.dim(1);
  std::vector<float> out(static_cast<size_t>(r));
  const float* p = t.data();
  for (int64_t i = 0; i < r; ++i)
    out[static_cast<size_t>(i)] = *std::max_element(p + i * c, p + (i + 1) * c);
  return out;
}

float cosine_similarity(const Tensor& a, const Tensor& b) {
  const float na = a.norm(), nb = b.norm();
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot(a, b) / (na * nb);
}

void sub_into(const Tensor& a, const Tensor& b, Tensor& out) {
  DECO_CHECK(a.numel() == b.numel(), "sub_into: numel mismatch");
  ensure_shape(out, a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  core::parallel_for(0, a.numel(), 1 << 16, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = pa[i] - pb[i];
  });
}

void copy_into(const Tensor& src, Tensor& dst) {
  ensure_shape(dst, src.shape());
  const float* ps = src.data();
  float* pd = dst.data();
  core::parallel_for(0, src.numel(), 1 << 17, [&](int64_t i0, int64_t i1) {
    std::copy(ps + i0, ps + i1, pd + i0);
  });
}

Tensor row(const Tensor& t, int64_t r) {
  DECO_CHECK(t.ndim() == 2, "row: input must be 2-D");
  DECO_CHECK(r >= 0 && r < t.dim(0), "row: index out of range");
  const int64_t c = t.dim(1);
  Tensor out({c});
  std::copy(t.data() + r * c, t.data() + (r + 1) * c, out.data());
  return out;
}

Tensor stack(const std::vector<Tensor>& items) {
  DECO_CHECK(!items.empty(), "stack: empty input");
  const int64_t per = items.front().numel();
  std::vector<int64_t> shape = items.front().shape();
  for (const Tensor& t : items)
    DECO_CHECK(t.shape() == shape, "stack: shape mismatch");
  shape.insert(shape.begin(), static_cast<int64_t>(items.size()));
  Tensor out(shape);
  float* po = out.data();
  for (size_t i = 0; i < items.size(); ++i)
    std::copy(items[i].data(), items[i].data() + per,
              po + static_cast<int64_t>(i) * per);
  return out;
}

Tensor take(const Tensor& t, const std::vector<int64_t>& indices) {
  DECO_CHECK(t.ndim() >= 1, "take: input must have a leading axis");
  const int64_t lead = t.dim(0);
  int64_t per = 1;
  for (int64_t d = 1; d < t.ndim(); ++d) per *= t.dim(d);
  std::vector<int64_t> shape = t.shape();
  shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(shape);
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    DECO_CHECK(idx >= 0 && idx < lead, "take: index out of range");
    std::copy(t.data() + idx * per, t.data() + (idx + 1) * per,
              po + static_cast<int64_t>(i) * per);
  }
  return out;
}

}  // namespace deco
