#include "deco/tensor/rng.h"

#include <cmath>
#include <numbers>

#include "deco/tensor/check.h"
#include "deco/tensor/tensor.h"

namespace deco {

namespace {
uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t n) {
  DECO_CHECK(n > 0, "uniform_int: n must be positive");
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64.
  return static_cast<int64_t>(next_u64() % static_cast<uint64_t>(n));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::fill_normal(Tensor& t, double mean, double stddev) {
  float* p = t.data();
  for (int64_t i = 0, n = t.numel(); i < n; ++i)
    p[i] = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_uniform(Tensor& t, double lo, double hi) {
  float* p = t.data();
  for (int64_t i = 0, n = t.numel(); i < n; ++i)
    p[i] = static_cast<float>(uniform(lo, hi));
}

void Rng::shuffle(std::vector<int64_t>& v) {
  for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
    const int64_t j = uniform_int(i + 1);
    std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
  }
}

std::vector<int64_t> Rng::sample_without_replacement(int64_t n, int64_t k) {
  DECO_CHECK(k >= 0 && k <= n, "sample_without_replacement: need 0 <= k <= n");
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  // Partial Fisher–Yates: only the first k positions need to be finalized.
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = i + uniform_int(n - i);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const RngState& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  has_cached_normal_ = st.has_cached_normal;
  cached_normal_ = st.cached_normal;
}

}  // namespace deco
