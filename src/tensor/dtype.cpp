#include "deco/tensor/dtype.h"

#include <cmath>
#include <cstring>

#include "deco/tensor/check.h"

namespace deco {

namespace {

/// Largest finite binary16 value. int8 block parameters (scale/zero-point)
/// are clamped here before rounding so decode arithmetic never sees Inf.
constexpr float kF16Max = 65504.0f;

/// Bytes of per-block metadata for kQ8: f16 scale + f16 zero-point.
constexpr int64_t kQ8HeaderBytes = 4;

void put_u16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
uint16_t get_u16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}

/// One int8 block: [f16 scale | f16 zero-point | u8 code per element].
/// Scalar reference — a strict serial loop, so the bytes are identical at
/// any thread count. Non-finite inputs saturate deterministically: NaN maps
/// to the zero-point (code 0), -Inf to code 0, +Inf to code 255.
void encode_q8_block(const float* src, int64_t n, uint8_t* dst) {
  float lo = 0.0f, hi = 0.0f;
  bool any_finite = false;
  for (int64_t i = 0; i < n; ++i) {
    const float v = src[i];
    if (!std::isfinite(v)) continue;
    if (!any_finite) {
      lo = hi = v;
      any_finite = true;
    } else {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  // Clamp the block range to finite f16 territory so the stored parameters
  // (and hence every decoded value) are finite.
  if (lo < -kF16Max) lo = -kF16Max;
  if (lo > kF16Max) lo = kF16Max;
  if (hi < lo) hi = lo;
  if (hi > kF16Max) hi = kF16Max;
  const uint16_t z16 = f32_to_f16(lo);
  const float z = f16_to_f32(z16);
  // Quantize against the f16-rounded parameters the decoder will see, not
  // the exact ones, so encode -> decode is self-consistent.
  uint16_t s16 = f32_to_f16((hi - z) / 255.0f);
  float s = f16_to_f32(s16);
  if (!(s > 0.0f) || !std::isfinite(s)) {
    s16 = 0;
    s = 0.0f;
  }
  put_u16(dst, s16);
  put_u16(dst + 2, z16);
  uint8_t* codes = dst + kQ8HeaderBytes;
  for (int64_t i = 0; i < n; ++i) {
    float v = src[i];
    if (std::isnan(v)) v = z;
    int32_t q = 0;
    if (s > 0.0f) {
      if (v <= z) {
        q = 0;  // covers -Inf
      } else if (v >= z + s * 255.0f) {
        q = 255;  // covers +Inf
      } else {
        q = static_cast<int32_t>(std::floor((v - z) / s + 0.5f));
        if (q < 0) q = 0;
        if (q > 255) q = 255;
      }
    }
    codes[i] = static_cast<uint8_t>(q);
  }
}

void decode_q8_block(const uint8_t* src, int64_t n, float* dst) {
  const float s = f16_to_f32(get_u16(src));
  const float z = f16_to_f32(get_u16(src + 2));
  const uint8_t* codes = src + kQ8HeaderBytes;
  for (int64_t i = 0; i < n; ++i)
    dst[i] = z + s * static_cast<float>(codes[i]);
}

}  // namespace

std::string dtype_name(DType d) {
  switch (d) {
    case DType::kF32: return "fp32";
    case DType::kF16: return "fp16";
    case DType::kQ8: return "int8";
  }
  return "unknown";
}

DType dtype_from_name(const std::string& name) {
  if (name == "fp32" || name == "f32" || name == "float32") return DType::kF32;
  if (name == "fp16" || name == "f16" || name == "float16") return DType::kF16;
  if (name == "int8" || name == "q8") return DType::kQ8;
  DECO_CHECK(false, "unknown dtype '" + name +
                        "' (expected fp32 | fp16 | int8)");
  return DType::kF32;
}

bool dtype_tag_valid(uint8_t tag) {
  return tag <= static_cast<uint8_t>(DType::kQ8);
}

uint16_t f32_to_f16(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t exp32 = (bits >> 23) & 0xFFu;
  uint32_t man = bits & 0x7FFFFFu;
  if (exp32 == 0xFFu) {  // Inf / NaN: keep the class, force a quiet NaN
    return static_cast<uint16_t>(sign | 0x7C00u | (man != 0 ? 0x200u : 0u));
  }
  const int32_t e = static_cast<int32_t>(exp32) - 127 + 15;
  if (e >= 31) return static_cast<uint16_t>(sign | 0x7C00u);  // overflow
  if (e <= 0) {
    // Result is an f16 subnormal (or zero). Below 2^-24 everything rounds
    // to zero — f32 denormal inputs always land here.
    if (e < -10) return sign;
    man |= 0x800000u;  // restore the hidden bit
    const uint32_t shift = static_cast<uint32_t>(14 - e);  // in [14, 24]
    uint32_t half = man >> shift;
    const uint32_t rem = man & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  // Normal range: truncate 13 mantissa bits with round-to-nearest-even.
  // A rounding carry propagates into the exponent (and to Inf) correctly.
  uint16_t h = static_cast<uint16_t>(sign | (static_cast<uint32_t>(e) << 10) |
                                     (man >> 13));
  const uint32_t rem = man & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return h;
}

float f16_to_f32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t man = h & 0x3FFu;
  uint32_t bits;
  if (exp == 31u) {
    bits = sign | 0x7F800000u | (man << 13);  // Inf / NaN (payload kept)
  } else if (exp == 0u) {
    if (man == 0u) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: value = man * 2^-24. Renormalize by shifting the top set
      // bit into the hidden position; k shifts give exponent 2^(-14-k).
      uint32_t k = 0;
      while ((man & 0x400u) == 0u) {
        man <<= 1;
        ++k;
      }
      man &= 0x3FFu;
      bits = sign | ((113u - k) << 23) | (man << 13);
    }
  } else {
    bits = sign | ((exp + 112u) << 23) | (man << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

int64_t dtype_stored_bytes(DType d, int64_t numel, int64_t block) {
  DECO_CHECK(numel >= 0, "dtype_stored_bytes: negative element count");
  switch (d) {
    case DType::kF32:
      return numel * 4;
    case DType::kF16:
      return numel * 2;
    case DType::kQ8: {
      DECO_CHECK(block > 0, "dtype_stored_bytes: int8 block must be positive");
      const int64_t blocks = (numel + block - 1) / block;
      return blocks * kQ8HeaderBytes + numel;
    }
  }
  DECO_CHECK(false, "dtype_stored_bytes: unknown dtype");
  return 0;
}

void dtype_encode(DType d, const float* src, int64_t n, uint8_t* dst,
                  int64_t block) {
  switch (d) {
    case DType::kF32:
      std::memcpy(dst, src, static_cast<size_t>(n) * 4);
      return;
    case DType::kF16: {
      for (int64_t i = 0; i < n; ++i)
        put_u16(dst + i * 2, f32_to_f16(src[i]));
      return;
    }
    case DType::kQ8: {
      DECO_CHECK(block > 0, "dtype_encode: int8 block must be positive");
      const int64_t bpb = kQ8HeaderBytes + block;  // bytes per full block
      for (int64_t b = 0, off = 0; b * block < n; ++b) {
        const int64_t len = std::min<int64_t>(block, n - b * block);
        encode_q8_block(src + b * block, len, dst + off);
        off += (len == block) ? bpb : kQ8HeaderBytes + len;
      }
      return;
    }
  }
  DECO_CHECK(false, "dtype_encode: unknown dtype");
}

void dtype_decode(DType d, const uint8_t* src, int64_t n, float* dst,
                  int64_t block) {
  switch (d) {
    case DType::kF32:
      std::memcpy(dst, src, static_cast<size_t>(n) * 4);
      return;
    case DType::kF16: {
      for (int64_t i = 0; i < n; ++i) dst[i] = f16_to_f32(get_u16(src + i * 2));
      return;
    }
    case DType::kQ8: {
      DECO_CHECK(block > 0, "dtype_decode: int8 block must be positive");
      const int64_t bpb = kQ8HeaderBytes + block;
      for (int64_t b = 0, off = 0; b * block < n; ++b) {
        const int64_t len = std::min<int64_t>(block, n - b * block);
        decode_q8_block(src + off, len, dst + b * block);
        off += (len == block) ? bpb : kQ8HeaderBytes + len;
      }
      return;
    }
  }
  DECO_CHECK(false, "dtype_decode: unknown dtype");
}

QTensor QTensor::encode(const Tensor& t, DType d, int64_t block) {
  QTensor q;
  q.dtype_ = d;
  q.block_ = block;
  q.numel_ = t.numel();
  q.shape_.assign(t.shape().begin(), t.shape().end());
  q.bytes_.resize(static_cast<size_t>(dtype_stored_bytes(d, q.numel_, block)));
  dtype_encode(d, t.data(), q.numel_, q.bytes_.data(), block);
  return q;
}

QTensor QTensor::from_bytes(DType d, int64_t block, std::vector<int64_t> shape,
                            std::vector<uint8_t> bytes) {
  QTensor q;
  q.dtype_ = d;
  q.block_ = block;
  q.numel_ = 1;
  for (int64_t dim : shape) {
    DECO_CHECK(dim >= 0, "QTensor::from_bytes: negative dimension");
    q.numel_ *= dim;
  }
  if (shape.empty()) q.numel_ = 0;
  DECO_CHECK(static_cast<int64_t>(bytes.size()) ==
                 dtype_stored_bytes(d, q.numel_, block),
             "QTensor::from_bytes: byte count does not match geometry");
  q.shape_ = std::move(shape);
  q.bytes_ = std::move(bytes);
  return q;
}

Tensor QTensor::decode() const {
  DECO_CHECK(valid(), "QTensor::decode: empty tensor");
  Tensor t(shape_);
  decode_into(t.data());
  return t;
}

void QTensor::decode_into(float* dst) const {
  DECO_CHECK(valid(), "QTensor::decode_into: empty tensor");
  dtype_decode(dtype_, bytes_.data(), numel_, dst, block_);
}

void QTensor::reencode(const Tensor& t) {
  DECO_CHECK(valid(), "QTensor::reencode: empty tensor");
  DECO_CHECK(t.numel() == numel_, "QTensor::reencode: shape mismatch");
  dtype_encode(dtype_, t.data(), numel_, bytes_.data(), block_);
}

void StoragePolicy::validate() const {
  DECO_CHECK(block >= 4 && block <= 1024,
             "StoragePolicy: quant_block must be in [4, 1024], got " +
                 std::to_string(block));
}

}  // namespace deco
