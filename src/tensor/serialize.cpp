#include "deco/tensor/serialize.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco {

namespace {
constexpr char kMagic[8] = {'D', 'E', 'C', 'O', 'T', 'N', 'S', 'R'};
constexpr uint32_t kVersion = 2;
constexpr uint32_t kLegacyVersion = 1;
constexpr uint32_t kQuantVersion = 3;
/// Total-element cap for read_tensor headers: rejects headers whose dims
/// multiply past 2^31 elements (8 GiB of f32) before any allocation, and
/// makes the numel product itself overflow-proof.
constexpr int64_t kMaxElements = int64_t{1} << 31;

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Reads a POD, optionally folding its raw bytes into a running CRC.
template <typename T>
T read_pod(std::istream& is, uint32_t* crc = nullptr) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DECO_CHECK(static_cast<bool>(is), "tensor stream truncated");
  if (crc != nullptr) *crc = crc32(&v, sizeof(T), *crc);
  return v;
}

/// Parsed v1/v2/v3 record header — everything between the magic and the
/// payload. When `crc` is non-null the header bytes are folded into it
/// (the discipline the CRC trailer covers); skip_tensor passes null.
struct WireHeader {
  uint32_t version = 0;
  DType dtype = DType::kF32;
  int64_t block = 0;       // kQ8 block length; 0 for other dtypes
  std::vector<int64_t> shape;
  int64_t numel = 0;
  int64_t payload_bytes = 0;
  bool checked = false;    // a CRC trailer follows the payload (v2/v3)
};

WireHeader read_header(std::istream& is, const std::string& who,
                       uint32_t* crc) {
  char magic[8];
  is.read(magic, sizeof(magic));
  DECO_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 8) == 0,
             who + ": bad magic (not a DECO tensor stream)");
  WireHeader h;
  h.version = read_pod<uint32_t>(is, crc);
  DECO_CHECK(h.version == kVersion || h.version == kLegacyVersion ||
                 h.version == kQuantVersion,
             who + ": unsupported version " + std::to_string(h.version));
  h.checked = h.version != kLegacyVersion;
  if (h.version == kQuantVersion) {
    const uint8_t tag = read_pod<uint8_t>(is, crc);
    DECO_CHECK(dtype_tag_valid(tag),
               who + ": unknown dtype tag " + std::to_string(tag));
    h.dtype = static_cast<DType>(tag);
    const uint8_t reserved = read_pod<uint8_t>(is, crc);
    DECO_CHECK(reserved == 0, who + ": unsupported header flags");
    h.block = read_pod<uint16_t>(is, crc);
    if (h.dtype == DType::kQ8) {
      DECO_CHECK(h.block >= 1, who + ": int8 record missing block length");
    } else {
      DECO_CHECK(h.block == 0, who + ": non-quantized record carries a block");
    }
  }
  const uint32_t ndim = read_pod<uint32_t>(is, crc);
  DECO_CHECK(ndim <= 8, who + ": implausible rank");
  h.shape.resize(ndim);
  h.numel = 1;
  for (uint32_t d = 0; d < ndim; ++d) {
    h.shape[d] = read_pod<int64_t>(is, crc);
    DECO_CHECK(h.shape[d] >= 0 && h.shape[d] < (int64_t{1} << 32),
               who + ": implausible dimension");
    // Accumulate against the explicit element cap so the product cannot
    // overflow across up to 8 dimensions.
    if (h.shape[d] == 0) {
      h.numel = 0;
    } else {
      DECO_CHECK(h.numel <= kMaxElements / h.shape[d],
                 who + ": header exceeds the element cap");
      h.numel *= h.shape[d];
    }
  }
  if (ndim == 0) h.numel = 0;
  h.payload_bytes = dtype_stored_bytes(
      h.dtype, h.numel, h.dtype == DType::kQ8 ? h.block : 1);
  return h;
}

/// Emits a v3 record: header + already-encoded payload + CRC trailer.
void write_v3(std::ostream& os, DType dtype, int64_t block,
              const std::vector<int64_t>& shape, const uint8_t* payload,
              int64_t payload_bytes) {
  os.write(kMagic, sizeof(kMagic));
  uint32_t crc = 0;
  auto emit = [&](const void* p, size_t n) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    crc = crc32(p, n, crc);
  };
  const uint32_t version = kQuantVersion;
  emit(&version, sizeof(version));
  const uint8_t tag = static_cast<uint8_t>(dtype);
  emit(&tag, sizeof(tag));
  const uint8_t reserved = 0;
  emit(&reserved, sizeof(reserved));
  DECO_CHECK(block >= 0 && block <= 65535,
             "write_tensor: block does not fit the u16 header field");
  const uint16_t block16 = static_cast<uint16_t>(block);
  emit(&block16, sizeof(block16));
  const uint32_t ndim = static_cast<uint32_t>(shape.size());
  emit(&ndim, sizeof(ndim));
  for (int64_t dim : shape) emit(&dim, sizeof(dim));
  emit(payload, static_cast<size_t>(payload_bytes));
  write_pod(os, crc);
  DECO_CHECK(static_cast<bool>(os), "write_tensor: stream write failed");
}
}  // namespace

uint32_t crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    DECO_CHECK(os.is_open(), "atomic_write_file: cannot open " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    DECO_CHECK(static_cast<bool>(os), "atomic_write_file: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    DECO_CHECK(false, "atomic_write_file: rename to " + path + " failed");
  }
}

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, sizeof(kMagic));
  uint32_t crc = 0;
  auto emit = [&](const void* p, size_t n) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    crc = crc32(p, n, crc);
  };
  const uint32_t version = kVersion;
  emit(&version, sizeof(version));
  const uint32_t ndim = static_cast<uint32_t>(t.ndim());
  emit(&ndim, sizeof(ndim));
  for (int64_t d = 0; d < t.ndim(); ++d) {
    const int64_t dim = t.dim(d);
    emit(&dim, sizeof(dim));
  }
  emit(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
  write_pod(os, crc);
  DECO_CHECK(static_cast<bool>(os), "write_tensor: stream write failed");
}

void write_tensor(std::ostream& os, const Tensor& t, DType dtype,
                  int64_t block) {
  if (dtype == DType::kQ8)
    DECO_CHECK(block >= 1 && block <= 65535,
               "write_tensor: int8 block out of range [1, 65535]");
  const int64_t blk = dtype == DType::kQ8 ? block : 1;
  std::vector<uint8_t> payload(
      static_cast<size_t>(dtype_stored_bytes(dtype, t.numel(), blk)));
  dtype_encode(dtype, t.data(), t.numel(), payload.data(), blk);
  write_v3(os, dtype, dtype == DType::kQ8 ? block : 0, t.shape(),
           payload.data(), static_cast<int64_t>(payload.size()));
}

void write_qtensor(std::ostream& os, const QTensor& q) {
  DECO_CHECK(q.valid(), "write_qtensor: empty tensor");
  write_v3(os, q.dtype(), q.dtype() == DType::kQ8 ? q.block() : 0, q.shape(),
           q.data(), q.stored_bytes());
}

Tensor read_tensor(std::istream& is) {
  uint32_t crc = 0;
  const WireHeader h = read_header(is, "read_tensor", &crc);
  if (h.version != kQuantVersion) {
    // v1/v2: raw f32 payload, read straight into the destination tensor.
    Tensor t(h.shape);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(h.numel * sizeof(float)));
    DECO_CHECK(static_cast<bool>(is), "read_tensor: data truncated");
    if (h.checked) {
      crc = crc32(t.data(), static_cast<size_t>(h.numel) * sizeof(float), crc);
      const uint32_t stored = read_pod<uint32_t>(is);
      DECO_CHECK(stored == crc, "read_tensor: CRC mismatch (corrupted data)");
    }
    return t;
  }
  // v3: verify the CRC over the *encoded* payload, then dequantize.
  std::vector<uint8_t> payload(static_cast<size_t>(h.payload_bytes));
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(h.payload_bytes));
  DECO_CHECK(static_cast<bool>(is), "read_tensor: data truncated");
  crc = crc32(payload.data(), payload.size(), crc);
  const uint32_t stored = read_pod<uint32_t>(is);
  DECO_CHECK(stored == crc, "read_tensor: CRC mismatch (corrupted data)");
  Tensor t(h.shape);
  dtype_decode(h.dtype, payload.data(), h.numel, t.data(),
               h.dtype == DType::kQ8 ? h.block : 1);
  return t;
}

QTensor read_qtensor(std::istream& is) {
  uint32_t crc = 0;
  const WireHeader h = read_header(is, "read_qtensor", &crc);
  std::vector<uint8_t> payload(static_cast<size_t>(h.payload_bytes));
  is.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(h.payload_bytes));
  DECO_CHECK(static_cast<bool>(is), "read_qtensor: data truncated");
  if (h.checked) {
    crc = crc32(payload.data(), payload.size(), crc);
    const uint32_t stored = read_pod<uint32_t>(is);
    DECO_CHECK(stored == crc, "read_qtensor: CRC mismatch (corrupted data)");
  }
  return QTensor::from_bytes(
      h.dtype, h.dtype == DType::kQ8 ? h.block : kDefaultQuantBlock, h.shape,
      std::move(payload));
}

TensorInfo skip_tensor(std::istream& is) {
  const WireHeader h = read_header(is, "skip_tensor", nullptr);
  TensorInfo info;
  info.version = h.version;
  info.dtype = h.dtype;
  info.block = h.block;
  info.shape = h.shape;
  info.numel = h.numel;
  info.payload_bytes = h.payload_bytes;
  const int64_t skip =
      info.payload_bytes +
      (h.checked ? static_cast<int64_t>(sizeof(uint32_t)) : 0);
  // seekg past EOF succeeds on file streams (failure surfaces only at the
  // next read), so measure the remaining bytes explicitly.
  const auto cur = is.tellg();
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  DECO_CHECK(static_cast<int64_t>(end - cur) >= skip,
             "skip_tensor: payload truncated");
  is.seekg(cur + static_cast<std::istream::off_type>(skip));
  DECO_CHECK(static_cast<bool>(is), "skip_tensor: seek failed");
  return info;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ostringstream os(std::ios::binary);
  write_tensor(os, t);
  atomic_write_file(path, os.str());
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DECO_CHECK(is.is_open(), "load_tensor: cannot open " + path);
  return read_tensor(is);
}

void write_ppm(const std::string& path, const Tensor& image_chw) {
  DECO_CHECK(image_chw.ndim() == 3, "write_ppm: image must be CHW");
  const int64_t c = image_chw.dim(0), h = image_chw.dim(1), w = image_chw.dim(2);
  DECO_CHECK(c == 1 || c == 3, "write_ppm: 1 or 3 channels required");
  std::ofstream os(path, std::ios::binary);
  DECO_CHECK(os.is_open(), "write_ppm: cannot open " + path);
  os << (c == 3 ? "P6" : "P5") << "\n" << w << " " << h << "\n255\n";
  const float* p = image_chw.data();
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float v = std::clamp(p[(ch * h + y) * w + x], 0.0f, 1.0f);
        const unsigned char byte =
            static_cast<unsigned char>(v * 255.0f + 0.5f);
        os.write(reinterpret_cast<const char*>(&byte), 1);
      }
    }
  }
  DECO_CHECK(static_cast<bool>(os), "write_ppm: stream write failed");
}

}  // namespace deco
