#include "deco/tensor/serialize.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "deco/tensor/check.h"

namespace deco {

namespace {
constexpr char kMagic[8] = {'D', 'E', 'C', 'O', 'T', 'N', 'S', 'R'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DECO_CHECK(static_cast<bool>(is), "tensor stream truncated");
  return v;
}
}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint32_t>(t.ndim()));
  for (int64_t d = 0; d < t.ndim(); ++d) write_pod(os, t.dim(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  DECO_CHECK(static_cast<bool>(os), "write_tensor: stream write failed");
}

Tensor read_tensor(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  DECO_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 8) == 0,
             "read_tensor: bad magic (not a DECO tensor stream)");
  const uint32_t version = read_pod<uint32_t>(is);
  DECO_CHECK(version == kVersion,
             "read_tensor: unsupported version " + std::to_string(version));
  const uint32_t ndim = read_pod<uint32_t>(is);
  DECO_CHECK(ndim <= 8, "read_tensor: implausible rank");
  std::vector<int64_t> shape(ndim);
  int64_t numel = 1;
  for (uint32_t d = 0; d < ndim; ++d) {
    shape[d] = read_pod<int64_t>(is);
    DECO_CHECK(shape[d] >= 0 && shape[d] < (int64_t{1} << 32),
               "read_tensor: implausible dimension");
    numel *= shape[d];
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  DECO_CHECK(static_cast<bool>(is), "read_tensor: data truncated");
  return t;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream os(path, std::ios::binary);
  DECO_CHECK(os.is_open(), "save_tensor: cannot open " + path);
  write_tensor(os, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DECO_CHECK(is.is_open(), "load_tensor: cannot open " + path);
  return read_tensor(is);
}

void write_ppm(const std::string& path, const Tensor& image_chw) {
  DECO_CHECK(image_chw.ndim() == 3, "write_ppm: image must be CHW");
  const int64_t c = image_chw.dim(0), h = image_chw.dim(1), w = image_chw.dim(2);
  DECO_CHECK(c == 1 || c == 3, "write_ppm: 1 or 3 channels required");
  std::ofstream os(path, std::ios::binary);
  DECO_CHECK(os.is_open(), "write_ppm: cannot open " + path);
  os << (c == 3 ? "P6" : "P5") << "\n" << w << " " << h << "\n255\n";
  const float* p = image_chw.data();
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float v = std::clamp(p[(ch * h + y) * w + x], 0.0f, 1.0f);
        const unsigned char byte =
            static_cast<unsigned char>(v * 255.0f + 0.5f);
        os.write(reinterpret_cast<const char*>(&byte), 1);
      }
    }
  }
  DECO_CHECK(static_cast<bool>(os), "write_ppm: stream write failed");
}

}  // namespace deco
