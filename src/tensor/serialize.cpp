#include "deco/tensor/serialize.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco {

namespace {
constexpr char kMagic[8] = {'D', 'E', 'C', 'O', 'T', 'N', 'S', 'R'};
constexpr uint32_t kVersion = 2;
constexpr uint32_t kLegacyVersion = 1;
/// Total-element cap for read_tensor headers: rejects headers whose dims
/// multiply past 2^31 elements (8 GiB of f32) before any allocation, and
/// makes the numel product itself overflow-proof.
constexpr int64_t kMaxElements = int64_t{1} << 31;

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Reads a POD, optionally folding its raw bytes into a running CRC.
template <typename T>
T read_pod(std::istream& is, uint32_t* crc = nullptr) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DECO_CHECK(static_cast<bool>(is), "tensor stream truncated");
  if (crc != nullptr) *crc = crc32(&v, sizeof(T), *crc);
  return v;
}
}  // namespace

uint32_t crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    DECO_CHECK(os.is_open(), "atomic_write_file: cannot open " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    DECO_CHECK(static_cast<bool>(os), "atomic_write_file: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    DECO_CHECK(false, "atomic_write_file: rename to " + path + " failed");
  }
}

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, sizeof(kMagic));
  uint32_t crc = 0;
  auto emit = [&](const void* p, size_t n) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    crc = crc32(p, n, crc);
  };
  const uint32_t version = kVersion;
  emit(&version, sizeof(version));
  const uint32_t ndim = static_cast<uint32_t>(t.ndim());
  emit(&ndim, sizeof(ndim));
  for (int64_t d = 0; d < t.ndim(); ++d) {
    const int64_t dim = t.dim(d);
    emit(&dim, sizeof(dim));
  }
  emit(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
  write_pod(os, crc);
  DECO_CHECK(static_cast<bool>(os), "write_tensor: stream write failed");
}

Tensor read_tensor(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  DECO_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 8) == 0,
             "read_tensor: bad magic (not a DECO tensor stream)");
  uint32_t crc = 0;
  const uint32_t version = read_pod<uint32_t>(is, &crc);
  DECO_CHECK(version == kVersion || version == kLegacyVersion,
             "read_tensor: unsupported version " + std::to_string(version));
  const bool checked = version == kVersion;
  const uint32_t ndim = read_pod<uint32_t>(is, &crc);
  DECO_CHECK(ndim <= 8, "read_tensor: implausible rank");
  std::vector<int64_t> shape(ndim);
  int64_t numel = 1;
  for (uint32_t d = 0; d < ndim; ++d) {
    shape[d] = read_pod<int64_t>(is, &crc);
    DECO_CHECK(shape[d] >= 0 && shape[d] < (int64_t{1} << 32),
               "read_tensor: implausible dimension");
    // Accumulate against the explicit element cap so the product cannot
    // overflow across up to 8 dimensions.
    if (shape[d] == 0) {
      numel = 0;
    } else {
      DECO_CHECK(numel <= kMaxElements / shape[d],
                 "read_tensor: header exceeds the element cap");
      numel *= shape[d];
    }
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  DECO_CHECK(static_cast<bool>(is), "read_tensor: data truncated");
  if (checked) {
    crc = crc32(t.data(), static_cast<size_t>(numel) * sizeof(float), crc);
    const uint32_t stored = read_pod<uint32_t>(is);
    DECO_CHECK(stored == crc, "read_tensor: CRC mismatch (corrupted data)");
  }
  return t;
}

TensorInfo skip_tensor(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  DECO_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 8) == 0,
             "skip_tensor: bad magic (not a DECO tensor stream)");
  TensorInfo info;
  info.version = read_pod<uint32_t>(is);
  DECO_CHECK(info.version == kVersion || info.version == kLegacyVersion,
             "skip_tensor: unsupported version " + std::to_string(info.version));
  const uint32_t ndim = read_pod<uint32_t>(is);
  DECO_CHECK(ndim <= 8, "skip_tensor: implausible rank");
  info.shape.resize(ndim);
  info.numel = 1;
  for (uint32_t d = 0; d < ndim; ++d) {
    info.shape[d] = read_pod<int64_t>(is);
    DECO_CHECK(info.shape[d] >= 0 && info.shape[d] < (int64_t{1} << 32),
               "skip_tensor: implausible dimension");
    if (info.shape[d] == 0) {
      info.numel = 0;
    } else {
      DECO_CHECK(info.numel <= kMaxElements / info.shape[d],
                 "skip_tensor: header exceeds the element cap");
      info.numel *= info.shape[d];
    }
  }
  if (ndim == 0) info.numel = 0;
  info.payload_bytes = info.numel * static_cast<int64_t>(sizeof(float));
  const int64_t skip =
      info.payload_bytes +
      (info.version == kVersion ? static_cast<int64_t>(sizeof(uint32_t)) : 0);
  // seekg past EOF succeeds on file streams (failure surfaces only at the
  // next read), so measure the remaining bytes explicitly.
  const auto cur = is.tellg();
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  DECO_CHECK(static_cast<int64_t>(end - cur) >= skip,
             "skip_tensor: payload truncated");
  is.seekg(cur + static_cast<std::istream::off_type>(skip));
  DECO_CHECK(static_cast<bool>(is), "skip_tensor: seek failed");
  return info;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ostringstream os(std::ios::binary);
  write_tensor(os, t);
  atomic_write_file(path, os.str());
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DECO_CHECK(is.is_open(), "load_tensor: cannot open " + path);
  return read_tensor(is);
}

void write_ppm(const std::string& path, const Tensor& image_chw) {
  DECO_CHECK(image_chw.ndim() == 3, "write_ppm: image must be CHW");
  const int64_t c = image_chw.dim(0), h = image_chw.dim(1), w = image_chw.dim(2);
  DECO_CHECK(c == 1 || c == 3, "write_ppm: 1 or 3 channels required");
  std::ofstream os(path, std::ios::binary);
  DECO_CHECK(os.is_open(), "write_ppm: cannot open " + path);
  os << (c == 3 ? "P6" : "P5") << "\n" << w << " " << h << "\n255\n";
  const float* p = image_chw.data();
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float v = std::clamp(p[(ch * h + y) * w + x], 0.0f, 1.0f);
        const unsigned char byte =
            static_cast<unsigned char>(v * 255.0f + 0.5f);
        os.write(reinterpret_cast<const char*>(&byte), 1);
      }
    }
  }
  DECO_CHECK(static_cast<bool>(os), "write_ppm: stream write failed");
}

}  // namespace deco
