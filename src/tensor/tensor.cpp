#include "deco/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco {

namespace {
int64_t shape_numel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DECO_CHECK(d >= 0, "negative dimension");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_)) {}

Tensor::Tensor(std::initializer_list<int64_t> shape)
    : Tensor(std::vector<int64_t>(shape)) {}

Tensor::Tensor(std::vector<int64_t> shape, const std::vector<float>& values)
    : shape_(std::move(shape)) {
  DECO_CHECK(shape_numel(shape_) == static_cast<int64_t>(values.size()),
             "value count does not match shape " + shape_str());
  data_ = detail::FloatStore(static_cast<int64_t>(values.size()));
  if (!values.empty())
    std::memcpy(data_.data(), values.data(), values.size() * sizeof(float));
}

Tensor Tensor::zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  DECO_CHECK(n >= 0, "arange length must be non-negative");
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  DECO_CHECK(i >= 0 && i < ndim(), "dimension index out of range for " + shape_str());
  return shape_[static_cast<size_t>(i)];
}

Tensor Tensor::reshaped(std::vector<int64_t> shape) const {
  Tensor t = *this;
  t.reshape(std::move(shape));
  return t;
}

void Tensor::reshape(std::vector<int64_t> shape) {
  DECO_CHECK(shape_numel(shape) == numel(),
             "reshape from " + shape_str() + " changes element count");
  shape_ = std::move(shape);
}

float& Tensor::at2(int64_t r, int64_t c) {
  return data_.data()[r * shape_[1] + c];
}
float Tensor::at2(int64_t r, int64_t c) const {
  return data_.data()[r * shape_[1] + c];
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  return data_.data()[((n * C + c) * H + h) * W + w];
}
float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  return data_.data()[((n * C + c) * H + h) * W + w];
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.data(), data_.data() + data_.size(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  DECO_CHECK(numel() == other.numel(),
             "add_: numel mismatch " + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] += src[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  DECO_CHECK(numel() == other.numel(),
             "sub_: numel mismatch " + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] -= src[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  DECO_CHECK(numel() == other.numel(),
             "mul_: numel mismatch " + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] *= src[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  DECO_CHECK(numel() == other.numel(), "add_scaled_: numel mismatch "
                                       + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] += alpha * src[i];
  return *this;
}

Tensor& Tensor::scale_(float alpha) {
  float* p = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) p[i] *= alpha;
  return *this;
}

Tensor& Tensor::add_scalar_(float alpha) {
  float* p = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) p[i] += alpha;
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  float* p = data();
  for (int64_t i = 0, n = numel(); i < n; ++i)
    p[i] = std::min(hi, std::max(lo, p[i]));
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(float alpha) const {
  Tensor out = *this;
  out.scale_(alpha);
  return out;
}

float Tensor::sum() const {
  double acc = 0.0;
  const float* p = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  DECO_CHECK(numel() > 0, "mean of empty tensor");
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  DECO_CHECK(numel() > 0, "min of empty tensor");
  return *std::min_element(data(), data() + numel());
}

float Tensor::max() const {
  DECO_CHECK(numel() > 0, "max of empty tensor");
  return *std::max_element(data(), data() + numel());
}

float Tensor::norm() const { return std::sqrt(squared_norm()); }

float Tensor::squared_norm() const {
  double acc = 0.0;
  const float* p = data();
  for (int64_t i = 0, n = numel(); i < n; ++i)
    acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(acc);
}

int64_t Tensor::argmax() const {
  DECO_CHECK(numel() > 0, "argmax of empty tensor");
  const float* p = data();
  return std::distance(p, std::max_element(p, p + numel()));
}

float Tensor::l1_distance(const Tensor& other) const {
  DECO_CHECK(numel() == other.numel(), "l1_distance: numel mismatch");
  double acc = 0.0;
  const float* pa = data();
  const float* pb = other.data();
  for (int64_t i = 0, n = numel(); i < n; ++i)
    acc += std::abs(static_cast<double>(pa[i]) - pb[i]);
  return static_cast<float>(acc);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float dot(const Tensor& a, const Tensor& b) {
  DECO_CHECK(a.numel() == b.numel(), "dot: numel mismatch");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0, n = a.numel(); i < n; ++i)
    acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

}  // namespace deco
