#include "deco/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco {

namespace {
int64_t shape_numel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DECO_CHECK(d >= 0, "negative dimension");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(std::initializer_list<int64_t> shape)
    : Tensor(std::vector<int64_t>(shape)) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  DECO_CHECK(shape_numel(shape_) == static_cast<int64_t>(data_.size()),
             "value count does not match shape " + shape_str());
}

Tensor Tensor::zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  DECO_CHECK(n >= 0, "arange length must be non-negative");
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  DECO_CHECK(i >= 0 && i < ndim(), "dimension index out of range for " + shape_str());
  return shape_[static_cast<size_t>(i)];
}

Tensor Tensor::reshaped(std::vector<int64_t> shape) const {
  Tensor t = *this;
  t.reshape(std::move(shape));
  return t;
}

void Tensor::reshape(std::vector<int64_t> shape) {
  DECO_CHECK(shape_numel(shape) == numel(),
             "reshape from " + shape_str() + " changes element count");
  shape_ = std::move(shape);
}

float& Tensor::at2(int64_t r, int64_t c) {
  return data_[static_cast<size_t>(r * shape_[1] + c)];
}
float Tensor::at2(int64_t r, int64_t c) const {
  return data_[static_cast<size_t>(r * shape_[1] + c)];
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}
float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  DECO_CHECK(numel() == other.numel(),
             "add_: numel mismatch " + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] += src[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  DECO_CHECK(numel() == other.numel(),
             "sub_: numel mismatch " + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] -= src[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  DECO_CHECK(numel() == other.numel(),
             "mul_: numel mismatch " + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] *= src[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  DECO_CHECK(numel() == other.numel(), "add_scaled_: numel mismatch "
                                       + shape_str() + " vs " + other.shape_str());
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0, n = numel(); i < n; ++i) dst[i] += alpha * src[i];
  return *this;
}

Tensor& Tensor::scale_(float alpha) {
  for (float& v : data_) v *= alpha;
  return *this;
}

Tensor& Tensor::add_scalar_(float alpha) {
  for (float& v : data_) v += alpha;
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (float& v : data_) v = std::min(hi, std::max(lo, v));
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(float alpha) const {
  Tensor out = *this;
  out.scale_(alpha);
  return out;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  DECO_CHECK(numel() > 0, "mean of empty tensor");
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  DECO_CHECK(numel() > 0, "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  DECO_CHECK(numel() > 0, "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::norm() const { return std::sqrt(squared_norm()); }

float Tensor::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

int64_t Tensor::argmax() const {
  DECO_CHECK(numel() > 0, "argmax of empty tensor");
  return std::distance(data_.begin(), std::max_element(data_.begin(), data_.end()));
}

float Tensor::l1_distance(const Tensor& other) const {
  DECO_CHECK(numel() == other.numel(), "l1_distance: numel mismatch");
  double acc = 0.0;
  for (int64_t i = 0, n = numel(); i < n; ++i)
    acc += std::abs(static_cast<double>(data_[i]) - other.data_[i]);
  return static_cast<float>(acc);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float dot(const Tensor& a, const Tensor& b) {
  DECO_CHECK(a.numel() == b.numel(), "dot: numel mismatch");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0, n = a.numel(); i < n; ++i)
    acc += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

}  // namespace deco
