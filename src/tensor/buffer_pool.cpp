#include "deco/tensor/buffer_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "deco/core/workspace.h"
#include "deco/tensor/check.h"

namespace deco::detail {

namespace {

constexpr int64_t kMinBucketFloats = 32;  // 128 B
constexpr int64_t kAlignBytes = 64;
constexpr int kNumBuckets = 40;  // pow2 buckets up to 2^(5+39) floats — plenty

int64_t default_pool_cap_bytes() {
  if (const char* env = std::getenv("DECO_TENSOR_POOL_MB")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) return static_cast<int64_t>(v) * (1 << 20);
  }
  return int64_t{512} << 20;  // 512 MiB
}

// Bucket index for a capacity request: smallest power of two >= n (and
// >= kMinBucketFloats). Index 0 holds kMinBucketFloats.
int bucket_index(int64_t n) {
  int64_t cap = kMinBucketFloats;
  int idx = 0;
  while (cap < n) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

int64_t bucket_capacity(int idx) { return kMinBucketFloats << idx; }

struct Pool {
  std::mutex mutex;
  std::vector<float*> buckets[kNumBuckets];
  int64_t cached_bytes = 0;
  const int64_t cap_bytes = default_pool_cap_bytes();

  // Pops a recycled buffer for bucket `idx`, or nullptr on miss.
  float* pop(int idx) {
    std::lock_guard<std::mutex> lock(mutex);
    auto& list = buckets[idx];
    if (list.empty()) return nullptr;
    float* p = list.back();
    list.pop_back();
    cached_bytes -= bucket_capacity(idx) * static_cast<int64_t>(sizeof(float));
    return p;
  }

  // Returns a buffer to bucket `idx`; deletes it instead when the pool is
  // at its byte cap.
  void push(int idx, float* p) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      const int64_t bytes =
          bucket_capacity(idx) * static_cast<int64_t>(sizeof(float));
      if (cached_bytes + bytes <= cap_bytes) {
        buckets[idx].push_back(p);
        cached_bytes += bytes;
        return;
      }
    }
    ::operator delete(p, std::align_val_t(kAlignBytes));
  }

  void trim() {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto& list : buckets) {
      for (float* p : list) ::operator delete(p, std::align_val_t(kAlignBytes));
      list.clear();
    }
    cached_bytes = 0;
  }
};

// Leaked on purpose: tensors with static storage duration may release their
// buffers during process teardown, after a non-leaked pool would already be
// gone. The pointer stays reachable, so LeakSanitizer is quiet.
Pool& pool() {
  static Pool* p = new Pool();
  return *p;
}

}  // namespace

FloatStore::FloatStore(int64_t n) { acquire(n, /*zero=*/true); }

FloatStore::FloatStore(const FloatStore& other) {
  if (other.size_ == 0) return;
  acquire(other.size_, /*zero=*/false);
  std::memcpy(ptr_, other.ptr_, static_cast<size_t>(size_) * sizeof(float));
}

FloatStore& FloatStore::operator=(const FloatStore& other) {
  if (this == &other) return *this;
  if (other.size_ == 0) {
    release();
    return *this;
  }
  // Reuse the current buffer when its bucket already fits (the common case
  // for per-step reassignment of a recurring shape).
  if (cap_ < other.size_) {
    release();
    acquire(other.size_, /*zero=*/false);
  } else {
    size_ = other.size_;
  }
  std::memcpy(ptr_, other.ptr_, static_cast<size_t>(size_) * sizeof(float));
  return *this;
}

FloatStore::FloatStore(FloatStore&& other) noexcept
    : ptr_(other.ptr_), size_(other.size_), cap_(other.cap_) {
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
}

FloatStore& FloatStore::operator=(FloatStore&& other) noexcept {
  if (this == &other) return *this;
  release();
  ptr_ = other.ptr_;
  size_ = other.size_;
  cap_ = other.cap_;
  other.ptr_ = nullptr;
  other.size_ = 0;
  other.cap_ = 0;
  return *this;
}

FloatStore::~FloatStore() { release(); }

void FloatStore::assign_zero(int64_t n) {
  DECO_CHECK(n >= 0, "FloatStore: negative size");
  if (n == 0) {
    release();
    return;
  }
  if (cap_ < n) {
    release();
    acquire(n, /*zero=*/true);
    return;
  }
  size_ = n;
  std::memset(ptr_, 0, static_cast<size_t>(n) * sizeof(float));
}

void FloatStore::acquire(int64_t n, bool zero) {
  DECO_CHECK(n >= 0, "FloatStore: negative size");
  if (n == 0) return;
  const int idx = bucket_index(n);
  cap_ = bucket_capacity(idx);
  size_ = n;
  ptr_ = pool().pop(idx);
  if (ptr_ != nullptr) {
    core::memstats_note_tensor_pool_hit();
  } else {
    const int64_t bytes = cap_ * static_cast<int64_t>(sizeof(float));
    ptr_ = static_cast<float*>(
        ::operator new(static_cast<size_t>(bytes), std::align_val_t(kAlignBytes)));
    core::memstats_note_tensor_alloc(bytes);
  }
  if (zero) std::memset(ptr_, 0, static_cast<size_t>(n) * sizeof(float));
}

void FloatStore::release() {
  if (ptr_ != nullptr) pool().push(bucket_index(cap_), ptr_);
  ptr_ = nullptr;
  size_ = 0;
  cap_ = 0;
}

void trim_tensor_pool() { pool().trim(); }

int64_t tensor_pool_cached_bytes() {
  std::lock_guard<std::mutex> lock(pool().mutex);
  return pool().cached_bytes;
}

int64_t tensor_pool_cap_bytes() { return pool().cap_bytes; }

}  // namespace deco::detail
