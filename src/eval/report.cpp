#include "deco/eval/report.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco::eval {

MarkdownTable::MarkdownTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DECO_CHECK(!header_.empty(), "MarkdownTable: empty header");
}

void MarkdownTable::add_row(std::vector<std::string> row) {
  DECO_CHECK(row.size() == header_.size(),
             "MarkdownTable: row width does not match header");
  rows_.push_back(std::move(row));
}

void MarkdownTable::print(std::ostream& os) const {
  auto print_row = [&os](const std::vector<std::string>& cells) {
    os << "|";
    for (const auto& c : cells) os << " " << c << " |";
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t i = 0; i < header_.size(); ++i) os << "---|";
  os << "\n";
  for (const auto& r : rows_) print_row(r);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

int64_t env_int(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoll(v, nullptr, 10);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

bool full_scale() { return env_str("DECO_BENCH_SCALE", "quick") == "full"; }

}  // namespace deco::eval
