#include "deco/eval/stats.h"

#include <algorithm>
#include <cmath>

#include "deco/tensor/check.h"

namespace deco::eval {

void RunningStats::add(double value) {
  if (n_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Interval bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                           int64_t resamples, Rng& rng) {
  DECO_CHECK(!values.empty(), "bootstrap_mean_ci: empty sample");
  DECO_CHECK(confidence > 0.0 && confidence < 1.0,
             "bootstrap_mean_ci: confidence must be in (0, 1)");
  DECO_CHECK(resamples >= 10, "bootstrap_mean_ci: need at least 10 resamples");
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  for (int64_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
      acc += values[static_cast<size_t>(rng.uniform_int(n))];
    means.push_back(acc / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto pick = [&](double q) {
    const int64_t idx = std::clamp<int64_t>(
        static_cast<int64_t>(q * static_cast<double>(resamples - 1)), 0,
        resamples - 1);
    return means[static_cast<size_t>(idx)];
  };
  return {pick(alpha), pick(1.0 - alpha)};
}

PairedComparison paired_compare(const std::vector<double>& a,
                                const std::vector<double>& b) {
  DECO_CHECK(a.size() == b.size() && !a.empty(),
             "paired_compare: vectors must be equal-length and non-empty");
  PairedComparison out;
  RunningStats diff;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = b[i] - a[i];
    diff.add(d);
    if (d > 0) ++out.wins;
    else if (d < 0) ++out.losses;
    else ++out.ties;
  }
  out.mean_diff = diff.mean();
  out.stddev_diff = diff.stddev();
  out.sem_diff = diff.sem();
  out.t_statistic = out.sem_diff > 1e-12 ? out.mean_diff / out.sem_diff : 0.0;
  return out;
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + mid);
    m = 0.5 * (m + lower);
  }
  return m;
}

}  // namespace deco::eval
