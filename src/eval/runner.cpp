#include "deco/eval/runner.h"

#include <chrono>
#include <memory>

#include "deco/core/thread_pool.h"
#include "deco/eval/metrics.h"
#include "deco/tensor/check.h"

namespace deco::eval {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<condense::Condenser> make_condenser(const RunConfig& cfg,
                                                    const nn::ConvNetConfig& mc,
                                                    uint64_t seed) {
  if (cfg.method == "deco") {
    return std::make_unique<condense::DecoCondenser>(mc, cfg.deco.condenser,
                                                     seed);
  }
  if (cfg.method == "dc" || cfg.method == "dsa") {
    condense::BilevelConfig bc = cfg.bilevel;
    if (cfg.method == "dsa") {
      bc.dsa_strategy = "flip_shift_scale_rotate_color_cutout";
    } else {
      bc.dsa_strategy.clear();
    }
    return std::make_unique<condense::BilevelCondenser>(mc, bc, seed);
  }
  if (cfg.method == "dm") {
    return std::make_unique<condense::DmCondenser>(mc, condense::DmConfig{}, seed);
  }
  if (cfg.method == "mtt") {
    return std::make_unique<condense::MttCondenser>(mc, condense::MttConfig{},
                                                    seed);
  }
  DECO_CHECK(false, "make_condenser: not a condensation method: " + cfg.method);
  return nullptr;
}
}  // namespace

RunResult run_experiment(const RunConfig& config) {
  const double t_start = now_seconds();

  data::ProceduralImageWorld world(config.spec, config.seed * 7919 + 17);
  data::Dataset pretrain =
      world.make_labeled_set(config.pretrain_per_class, config.seed + 1);
  data::Dataset test = world.make_test_set(config.test_per_class, config.seed + 2);

  nn::ConvNetConfig mc;
  mc.in_channels = config.spec.channels;
  mc.image_h = config.spec.height;
  mc.image_w = config.spec.width;
  mc.num_classes = config.spec.num_classes;
  mc.width = config.model_width;
  mc.depth = config.model_depth;

  Rng rng(config.seed * 0x9E37 + 0xC0FFEE);
  nn::ConvNet model(mc, rng);

  // Pre-deployment training on the small labeled subset (paper: 1–10%).
  {
    std::vector<int64_t> all(static_cast<size_t>(pretrain.size()));
    for (int64_t i = 0; i < pretrain.size(); ++i) all[static_cast<size_t>(i)] = i;
    core::train_classifier(model, pretrain.batch(all), pretrain.labels(),
                           config.pretrain_epochs, config.deco.lr_model,
                           config.deco.weight_decay, config.deco.train_batch,
                           rng);
  }

  RunResult result;
  result.pretrain_accuracy = accuracy(model, test);

  // Build the learner.
  std::unique_ptr<core::OnDeviceLearner> learner;
  core::DecoConfig dc = config.deco;
  dc.ipc = config.ipc;
  baselines::BaselineConfig bc = config.baseline;
  bc.ipc = config.ipc;

  if (config.method == "deco" || config.method == "dc" ||
      config.method == "dsa" || config.method == "dm" ||
      config.method == "mtt") {
    auto condenser = make_condenser(config, mc, config.seed ^ 0xD3C0DE);
    auto deco = std::make_unique<core::DecoLearner>(model, dc, config.seed + 3,
                                                    std::move(condenser));
    deco->init_buffer_from(pretrain);
    learner = std::move(deco);
  } else if (config.method == "upper_bound") {
    auto ub =
        std::make_unique<baselines::UnlimitedLearner>(model, bc, config.seed + 3);
    ub->init_buffer_from(pretrain);
    learner = std::move(ub);
  } else {
    auto strat = baselines::strategy_from_name(config.method);
    auto bl = std::make_unique<baselines::BaselineLearner>(model, strat, bc,
                                                           config.seed + 3);
    bl->init_buffer_from(pretrain);
    learner = std::move(bl);
  }

  // Stream replay, optionally through the sensor-fault injector.
  data::TemporalStream stream(world, config.stream, config.seed + 4);
  std::unique_ptr<data::FaultyStream> faulty;
  if (config.faults.any())
    faulty = std::make_unique<data::FaultyStream>(stream, config.faults,
                                                  config.seed ^ 0xFA017ull);
  auto next_segment = [&](data::Segment& s) {
    return faulty != nullptr ? faulty->next(s) : stream.next(s);
  };
  data::Segment seg;
  int64_t pseudo_correct = 0, pseudo_total = 0, retained_total = 0;
  // The upper bound is an oracle: unlimited memory AND ground-truth labels
  // (the paper defines it as the accuracy achievable with unlimited buffer).
  // Only it receives the labels; every other learner stays unlabeled.
  const bool oracle = config.method == "upper_bound";
  while (next_segment(seg)) {
    core::SegmentReport rep =
        oracle ? learner->observe_labeled_segment(seg.images, seg.true_labels)
               : learner->observe_segment(seg.images);

    for (size_t i = 0; i < rep.pseudo_labels.size(); ++i) {
      if (rep.pseudo_labels[i] == seg.true_labels[i]) ++pseudo_correct;
      ++pseudo_total;
    }
    retained_total += static_cast<int64_t>(rep.retained.size());
    result.frames_quarantined += rep.frames_quarantined;
    result.segments_skipped += rep.segment_skipped;
    result.steps_rolled_back += rep.steps_rolled_back;
    result.batches_skipped += rep.batches_skipped;
    result.grads_clipped += rep.grads_clipped;

    if (config.eval_every_segments > 0 &&
        stream.segments_emitted() % config.eval_every_segments == 0) {
      result.curve.push_back(
          {stream.samples_emitted(), accuracy(learner->model(), test)});
    }
  }

  if (faulty != nullptr) result.faults = faulty->log();
  result.final_accuracy = accuracy(learner->model(), test);
  result.condense_seconds = learner->condense_seconds();
  result.total_seconds = now_seconds() - t_start;
  result.pseudo_label_accuracy =
      pseudo_total > 0
          ? static_cast<double>(pseudo_correct) / static_cast<double>(pseudo_total)
          : 0.0;
  result.retention_rate =
      pseudo_total > 0
          ? static_cast<double>(retained_total) / static_cast<double>(pseudo_total)
          : 0.0;
  return result;
}

std::vector<RunResult> run_seeds(RunConfig config, int64_t seeds) {
  // Each seed is a fully independent experiment, so the repeats fan out over
  // the pool (results land in their own slot, so the order is stable). The
  // kernels inside each experiment detect the nested region and run inline,
  // which keeps the fan-out free of oversubscription.
  std::vector<RunResult> out(static_cast<size_t>(seeds));
  const uint64_t base = config.seed;
  core::parallel_for(0, seeds, 1, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      RunConfig cfg = config;
      cfg.seed = base + static_cast<uint64_t>(s);
      out[static_cast<size_t>(s)] = run_experiment(cfg);
    }
  });
  return out;
}

}  // namespace deco::eval
