#include "deco/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::eval {

float accuracy(nn::ConvNet& model, const data::Dataset& test,
               int64_t batch_size) {
  DECO_CHECK(test.size() > 0, "accuracy: empty test set");
  int64_t correct = 0;
  for (int64_t start = 0; start < test.size(); start += batch_size) {
    const int64_t end = std::min(test.size(), start + batch_size);
    std::vector<int64_t> idx;
    for (int64_t i = start; i < end; ++i) idx.push_back(i);
    Tensor logits = model.forward(test.batch(idx));
    const std::vector<int64_t> pred = argmax_rows(logits);
    for (size_t i = 0; i < idx.size(); ++i)
      if (pred[i] == test.label(idx[i])) ++correct;
  }
  return 100.0f * static_cast<float>(correct) / static_cast<float>(test.size());
}

std::vector<std::vector<int64_t>> confusion_matrix(nn::ConvNet& model,
                                                   const data::Dataset& test,
                                                   int64_t batch_size) {
  const int64_t c = model.config().num_classes;
  std::vector<std::vector<int64_t>> counts(
      static_cast<size_t>(c), std::vector<int64_t>(static_cast<size_t>(c), 0));
  for (int64_t start = 0; start < test.size(); start += batch_size) {
    const int64_t end = std::min(test.size(), start + batch_size);
    std::vector<int64_t> idx;
    for (int64_t i = start; i < end; ++i) idx.push_back(i);
    Tensor logits = model.forward(test.batch(idx));
    const std::vector<int64_t> pred = argmax_rows(logits);
    for (size_t i = 0; i < idx.size(); ++i)
      ++counts[static_cast<size_t>(test.label(idx[i]))]
              [static_cast<size_t>(pred[i])];
  }
  return counts;
}

std::vector<std::vector<Misclassification>> top_misclassifications(
    const std::vector<std::vector<int64_t>>& confusion, int64_t k) {
  const size_t c = confusion.size();
  std::vector<std::vector<Misclassification>> out(c);
  for (size_t t = 0; t < c; ++t) {
    int64_t total_wrong = 0;
    for (size_t p = 0; p < c; ++p)
      if (p != t) total_wrong += confusion[t][p];
    if (total_wrong == 0) continue;
    std::vector<Misclassification> items;
    for (size_t p = 0; p < c; ++p) {
      if (p == t || confusion[t][p] == 0) continue;
      items.push_back({static_cast<int64_t>(p),
                       static_cast<double>(confusion[t][p]) /
                           static_cast<double>(total_wrong)});
    }
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.fraction > b.fraction; });
    if (static_cast<int64_t>(items.size()) > k)
      items.resize(static_cast<size_t>(k));
    out[t] = std::move(items);
  }
  return out;
}

std::vector<float> per_class_accuracy(nn::ConvNet& model,
                                      const data::Dataset& test,
                                      int64_t batch_size) {
  const auto conf = confusion_matrix(model, test, batch_size);
  std::vector<float> out(conf.size(), 0.0f);
  for (size_t c = 0; c < conf.size(); ++c) {
    int64_t total = 0;
    for (int64_t v : conf[c]) total += v;
    if (total > 0)
      out[c] = 100.0f * static_cast<float>(conf[c][c]) /
               static_cast<float>(total);
  }
  return out;
}

void ForgettingTracker::record(const std::vector<float>& per_class) {
  DECO_CHECK(history_.empty() || history_.front().size() == per_class.size(),
             "ForgettingTracker: class count changed between snapshots");
  history_.push_back(per_class);
}

std::vector<float> ForgettingTracker::per_class_forgetting() const {
  if (history_.size() < 2) return {};
  const auto& latest = history_.back();
  std::vector<float> out(latest.size(), 0.0f);
  for (size_t c = 0; c < latest.size(); ++c) {
    float peak = 0.0f;
    for (const auto& snap : history_) peak = std::max(peak, snap[c]);
    out[c] = std::max(0.0f, peak - latest[c]);
  }
  return out;
}

float ForgettingTracker::mean_forgetting() const {
  const auto f = per_class_forgetting();
  if (f.empty()) return 0.0f;
  double sum = 0.0;
  int64_t learned = 0;
  for (size_t c = 0; c < f.size(); ++c) {
    float peak = 0.0f;
    for (const auto& snap : history_) peak = std::max(peak, snap[c]);
    if (peak > 0.0f) {
      sum += f[c];
      ++learned;
    }
  }
  return learned > 0 ? static_cast<float>(sum / learned) : 0.0f;
}

Aggregate aggregate(const std::vector<float>& values) {
  Aggregate a;
  if (values.empty()) return a;
  double sum = 0.0;
  for (float v : values) sum += v;
  a.mean = static_cast<float>(sum / static_cast<double>(values.size()));
  if (values.size() > 1) {
    double sq = 0.0;
    for (float v : values) {
      const double d = v - a.mean;
      sq += d * d;
    }
    a.stddev = static_cast<float>(
        std::sqrt(sq / static_cast<double>(values.size() - 1)));
  }
  return a;
}

std::string format_aggregate(const Aggregate& a, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << a.mean << "±" << a.stddev;
  return os.str();
}

}  // namespace deco::eval
