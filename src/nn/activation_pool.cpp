#include <limits>

#include "deco/core/thread_pool.h"
#include "deco/nn/layers.h"
#include "deco/tensor/check.h"

namespace deco::nn {

// ---- ReLU -------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& input) {
  Tensor out = input;
  if (!mask_.same_shape(input)) mask_ = Tensor(input.shape());
  float* po = out.data();
  float* pm = mask_.data();
  core::parallel_for(0, out.numel(), int64_t{1} << 16,
                     [&](int64_t i0, int64_t i1) {
                       for (int64_t i = i0; i < i1; ++i) {
                         const bool pos = po[i] > 0.0f;
                         pm[i] = pos ? 1.0f : 0.0f;
                         if (!pos) po[i] = 0.0f;
                       }
                     });
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  DECO_CHECK(grad_output.numel() == mask_.numel(),
             "ReLU::backward called without matching forward");
  Tensor grad = grad_output;
  grad.mul_(mask_);
  return grad;
}

// ---- AvgPool2d ---------------------------------------------------------------

Tensor AvgPool2d::forward(const Tensor& input) {
  DECO_CHECK(input.ndim() == 4, "AvgPool2d: input must be NCHW");
  const int64_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
                W = input.dim(3);
  DECO_CHECK(H % kernel_ == 0 && W % kernel_ == 0,
             "AvgPool2d: spatial dims " + input.shape_str() +
                 " not divisible by kernel " + std::to_string(kernel_));
  in_shape_ = input.shape();
  const int64_t oh = H / kernel_, ow = W / kernel_;
  Tensor out({N, C, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* pi = input.data();
  float* po = out.data();
  // Each (n, c) plane is pooled independently: disjoint reads and writes.
  core::parallel_for(0, N * C, 1, [&](int64_t nc0, int64_t nc1) {
    for (int64_t nc = nc0; nc < nc1; ++nc) {
      const float* img = pi + nc * H * W;
      float* dst = po + nc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const float* rowp = img + (oy * kernel_ + ky) * W + ox * kernel_;
            for (int64_t kx = 0; kx < kernel_; ++kx) acc += rowp[kx];
          }
          dst[oy * ow + ox] = static_cast<float>(acc) * inv;
        }
      }
    }
  });
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  DECO_CHECK(!in_shape_.empty(), "AvgPool2d::backward without forward");
  const int64_t N = in_shape_[0], C = in_shape_[1], H = in_shape_[2],
                W = in_shape_[3];
  const int64_t oh = H / kernel_, ow = W / kernel_;
  DECO_CHECK(grad_output.ndim() == 4 && grad_output.dim(2) == oh &&
                 grad_output.dim(3) == ow,
             "AvgPool2d::backward: grad shape mismatch");
  Tensor grad_input(in_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* pg = grad_output.data();
  float* pi = grad_input.data();
  // Pooling windows never straddle planes, so per-plane scatter is disjoint.
  core::parallel_for(0, N * C, 1, [&](int64_t nc0, int64_t nc1) {
    for (int64_t nc = nc0; nc < nc1; ++nc) {
      float* img = pi + nc * H * W;
      const float* src = pg + nc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = src[oy * ow + ox] * inv;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            float* rowp = img + (oy * kernel_ + ky) * W + ox * kernel_;
            for (int64_t kx = 0; kx < kernel_; ++kx) rowp[kx] += g;
          }
        }
      }
    }
  });
  return grad_input;
}

// ---- MaxPool2d ---------------------------------------------------------------

Tensor MaxPool2d::forward(const Tensor& input) {
  DECO_CHECK(input.ndim() == 4, "MaxPool2d: input must be NCHW");
  const int64_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
                W = input.dim(3);
  DECO_CHECK(H % kernel_ == 0 && W % kernel_ == 0,
             "MaxPool2d: spatial dims " + input.shape_str() +
                 " not divisible by kernel " + std::to_string(kernel_));
  in_shape_ = input.shape();
  const int64_t oh = H / kernel_, ow = W / kernel_;
  Tensor out({N, C, oh, ow});
  argmax_.assign(static_cast<size_t>(out.numel()), 0);
  const float* pi = input.data();
  float* po = out.data();
  core::parallel_for(0, N * C, 1, [&](int64_t nc0, int64_t nc1) {
    for (int64_t nc = nc0; nc < nc1; ++nc) {
      const float* img = pi + nc * H * W;
      float* dst = po + nc * oh * ow;
      int64_t* amax = argmax_.data() + nc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = oy * kernel_ + ky;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = ox * kernel_ + kx;
              const float v = img[iy * W + ix];
              if (v > best) {
                best = v;
                best_idx = nc * H * W + iy * W + ix;
              }
            }
          }
          dst[oy * ow + ox] = best;
          amax[oy * ow + ox] = best_idx;
        }
      }
    }
  });
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  DECO_CHECK(!in_shape_.empty(), "MaxPool2d::backward without forward");
  DECO_CHECK(grad_output.numel() == static_cast<int64_t>(argmax_.size()),
             "MaxPool2d::backward: grad shape mismatch");
  Tensor grad_input(in_shape_);
  float* pi = grad_input.data();
  const float* pg = grad_output.data();
  // argmax indices never leave their own (n, c) plane, so scattering one
  // plane's outputs per task touches a disjoint slice of grad_input.
  const int64_t H = in_shape_[2], W = in_shape_[3];
  const int64_t oh = H / kernel_, ow = W / kernel_;
  const int64_t plane_out = oh * ow;
  const int64_t planes = grad_output.numel() / plane_out;
  core::parallel_for(0, planes, 1, [&](int64_t nc0, int64_t nc1) {
    for (int64_t nc = nc0; nc < nc1; ++nc) {
      for (int64_t i = nc * plane_out; i < (nc + 1) * plane_out; ++i)
        pi[argmax_[static_cast<size_t>(i)]] += pg[i];
    }
  });
  return grad_input;
}

// ---- Flatten ------------------------------------------------------------------

Tensor Flatten::forward(const Tensor& input) {
  DECO_CHECK(input.ndim() >= 2, "Flatten: input must have a batch axis");
  in_shape_ = input.shape();
  int64_t per = 1;
  for (int64_t d = 1; d < input.ndim(); ++d) per *= input.dim(d);
  return input.reshaped({input.dim(0), per});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  DECO_CHECK(!in_shape_.empty(), "Flatten::backward without forward");
  return grad_output.reshaped(in_shape_);
}

}  // namespace deco::nn
