#include "deco/nn/sequential.h"

#include "deco/tensor/check.h"

namespace deco::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  DECO_CHECK(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

void Sequential::reinitialize(Rng& rng) {
  for (auto& layer : layers_) layer->reinitialize(rng);
}

}  // namespace deco::nn
