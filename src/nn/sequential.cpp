#include "deco/nn/sequential.h"

#include <string>

#include "deco/core/telemetry.h"
#include "deco/tensor/check.h"

namespace deco::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  DECO_CHECK(layer != nullptr, "Sequential::add: null layer");
  const std::string base =
      "nn/" + std::to_string(layers_.size()) + ":" + layer->name();
  fwd_sites_.push_back(&core::telemetry::span_site(base + "/fwd"));
  bwd_sites_.push_back(&core::telemetry::span_site(base + "/bwd"));
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    core::telemetry::ScopedSpan span(*fwd_sites_[i]);
    x = layers_[i]->forward(x);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    core::telemetry::ScopedSpan span(*bwd_sites_[i]);
    g = layers_[i]->backward(g);
  }
  return g;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

void Sequential::reinitialize(Rng& rng) {
  for (auto& layer : layers_) layer->reinitialize(rng);
}

}  // namespace deco::nn
