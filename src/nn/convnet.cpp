#include "deco/nn/convnet.h"

#include <memory>

#include "deco/core/telemetry.h"
#include "deco/nn/layers.h"
#include "deco/tensor/check.h"

namespace deco::nn {

ConvNet::ConvNet(const ConvNetConfig& config, Rng& rng) : config_(config) {
  DECO_CHECK(config.depth >= 1, "ConvNet: depth must be >= 1");
  int64_t c = config.in_channels;
  int64_t h = config.image_h;
  int64_t w = config.image_w;
  for (int64_t d = 0; d < config.depth; ++d) {
    encoder_.add(std::make_unique<Conv2d>(c, config.width, /*kernel=*/3,
                                          /*stride=*/1, /*padding=*/1, rng));
    encoder_.add(std::make_unique<InstanceNorm2d>(config.width));
    encoder_.add(std::make_unique<ReLU>());
    DECO_CHECK(h % 2 == 0 && w % 2 == 0,
               "ConvNet: image size must halve cleanly at block " +
                   std::to_string(d));
    if (config.pooling == Pooling::kAvg) {
      encoder_.add(std::make_unique<AvgPool2d>(2));
    } else {
      encoder_.add(std::make_unique<MaxPool2d>(2));
    }
    c = config.width;
    h /= 2;
    w /= 2;
  }
  encoder_.add(std::make_unique<Flatten>());
  feature_dim_ = c * h * w;
  head_ = std::make_unique<Linear>(feature_dim_, config.num_classes, rng);
}

Tensor ConvNet::forward(const Tensor& input) {
  DECO_TRACE_SCOPE("nn/forward");
  return head_->forward(encoder_.forward(input));
}

Tensor ConvNet::backward(const Tensor& grad_logits) {
  DECO_TRACE_SCOPE("nn/backward");
  return encoder_.backward(head_->backward(grad_logits));
}

Tensor ConvNet::embed(const Tensor& input) {
  DECO_TRACE_SCOPE("nn/embed");
  return encoder_.forward(input);
}

Tensor ConvNet::backward_from_embedding(const Tensor& grad_embedding) {
  return encoder_.backward(grad_embedding);
}

void ConvNet::collect_params(std::vector<ParamRef>& out) {
  encoder_.collect_params(out);
  head_->collect_params(out);
}

void ConvNet::reinitialize(Rng& rng) {
  encoder_.reinitialize(rng);
  head_->reinitialize(rng);
}

std::unique_ptr<ConvNet> clone_convnet(const ConvNet& src) {
  Rng scratch(0);
  auto dst = std::make_unique<ConvNet>(src.config(), scratch);
  copy_params(const_cast<ConvNet&>(src), *dst);
  return dst;
}

}  // namespace deco::nn
