#include "deco/nn/schedule.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "deco/tensor/check.h"

namespace deco::nn {

CosineSchedule::CosineSchedule(float base_lr, int64_t total_steps, float min_lr)
    : base_lr_(base_lr), min_lr_(min_lr), total_steps_(total_steps) {
  DECO_CHECK(total_steps >= 1, "CosineSchedule: total_steps must be >= 1");
  DECO_CHECK(min_lr <= base_lr, "CosineSchedule: min_lr exceeds base_lr");
}

float CosineSchedule::at(int64_t step) const {
  const int64_t s = std::clamp<int64_t>(step, 0, total_steps_);
  const double progress =
      static_cast<double>(s) / static_cast<double>(total_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return min_lr_ + static_cast<float>(cosine) * (base_lr_ - min_lr_);
}

StepSchedule::StepSchedule(float base_lr, int64_t step_size, float gamma)
    : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {
  DECO_CHECK(step_size >= 1, "StepSchedule: step_size must be >= 1");
  DECO_CHECK(gamma > 0.0f, "StepSchedule: gamma must be positive");
}

float StepSchedule::at(int64_t step) const {
  const int64_t k = std::max<int64_t>(0, step) / step_size_;
  return base_lr_ * static_cast<float>(std::pow(gamma_, static_cast<double>(k)));
}

}  // namespace deco::nn
