#include "deco/nn/loss.h"

#include <cmath>

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::nn {

CrossEntropyResult weighted_cross_entropy(const Tensor& logits,
                                          const std::vector<int64_t>& labels,
                                          const std::vector<float>& weights) {
  DECO_CHECK(logits.ndim() == 2, "weighted_cross_entropy: logits must be 2-D");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  DECO_CHECK(static_cast<int64_t>(labels.size()) == n,
             "weighted_cross_entropy: label count mismatch");
  DECO_CHECK(weights.empty() || static_cast<int64_t>(weights.size()) == n,
             "weighted_cross_entropy: weight count mismatch");

  Tensor logp;
  log_softmax_rows_into(logits, logp);

  CrossEntropyResult res;
  res.grad_logits = Tensor({n, c});
  float* pg = res.grad_logits.data();
  const float* plp = logp.data();
  const float inv_n = 1.0f / static_cast<float>(n);

  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    DECO_CHECK(y >= 0 && y < c, "weighted_cross_entropy: label out of range");
    const float w = weights.empty() ? 1.0f : weights[static_cast<size_t>(i)];
    loss -= static_cast<double>(w) * plp[i * c + y];
    const float scale = w * inv_n;
    for (int64_t j = 0; j < c; ++j) {
      // d/dlogit_j of -w·logp_y = w·(softmax_j - 1{j==y})
      pg[i * c + j] = scale * (std::exp(plp[i * c + j]) - (j == y ? 1.0f : 0.0f));
    }
  }
  res.loss = static_cast<float>(loss) * inv_n;
  return res;
}

ContrastiveResult feature_discrimination_loss(
    const Tensor& embeddings, const std::vector<int64_t>& labels,
    const std::vector<int64_t>& anchor_index,
    const std::vector<int64_t>& negative_class_of_anchor, float temperature) {
  DECO_CHECK(embeddings.ndim() == 2, "feature_discrimination: 2-D embeddings");
  const int64_t m = embeddings.dim(0), d = embeddings.dim(1);
  DECO_CHECK(static_cast<int64_t>(labels.size()) == m,
             "feature_discrimination: label count mismatch");
  DECO_CHECK(anchor_index.size() == negative_class_of_anchor.size(),
             "feature_discrimination: anchor/negative size mismatch");
  DECO_CHECK(temperature > 0.0f, "feature_discrimination: temperature must be > 0");

  // L2-normalize embeddings: z_i = e_i / max(||e_i||, eps). Gradients are
  // accumulated on z first, then mapped back through the normalization.
  constexpr float kEps = 1e-8f;
  Tensor z({m, d});
  std::vector<float> norms(static_cast<size_t>(m));
  {
    const float* pe = embeddings.data();
    float* pz = z.data();
    for (int64_t i = 0; i < m; ++i) {
      double sq = 0.0;
      for (int64_t j = 0; j < d; ++j)
        sq += static_cast<double>(pe[i * d + j]) * pe[i * d + j];
      const float nrm = std::max(static_cast<float>(std::sqrt(sq)), kEps);
      norms[static_cast<size_t>(i)] = nrm;
      const float inv = 1.0f / nrm;
      for (int64_t j = 0; j < d; ++j) pz[i * d + j] = pe[i * d + j] * inv;
    }
  }

  Tensor grad_z({m, d});
  const float* pz = z.data();
  float* pgz = grad_z.data();
  const float inv_tau = 1.0f / temperature;

  // Anchors whose positive or negative set is empty contribute nothing; we
  // average the remaining anchors so the loss scale is independent of how
  // many classes happen to be active in a segment.
  int64_t live_anchors = 0;
  double total = 0.0;

  for (size_t a = 0; a < anchor_index.size(); ++a) {
    const int64_t i = anchor_index[a];
    DECO_CHECK(i >= 0 && i < m, "feature_discrimination: anchor out of range");
    const int64_t yi = labels[static_cast<size_t>(i)];
    const int64_t neg_class = negative_class_of_anchor[a];
    DECO_CHECK(neg_class != yi,
               "feature_discrimination: negative class equals anchor class");

    std::vector<int64_t> pos, neg;
    for (int64_t j = 0; j < m; ++j) {
      if (j != i && labels[static_cast<size_t>(j)] == yi) pos.push_back(j);
      if (labels[static_cast<size_t>(j)] == neg_class) neg.push_back(j);
    }
    if (pos.empty() || neg.empty()) continue;
    ++live_anchors;

    const float* zi = pz + i * d;

    // Negative logsumexp: LSE = log Σ_n exp(z_i·z_n / τ), with softmax
    // coefficients reused for the gradient.
    std::vector<float> neg_sim(neg.size());
    float mx = -1e30f;
    for (size_t k = 0; k < neg.size(); ++k) {
      const float* zn = pz + neg[k] * d;
      double s = 0.0;
      for (int64_t j = 0; j < d; ++j) s += static_cast<double>(zi[j]) * zn[j];
      neg_sim[k] = static_cast<float>(s) * inv_tau;
      mx = std::max(mx, neg_sim[k]);
    }
    double sum_exp = 0.0;
    for (float s : neg_sim) sum_exp += std::exp(static_cast<double>(s) - mx);
    const double lse = mx + std::log(sum_exp);

    const float inv_pos = 1.0f / static_cast<float>(pos.size());

    // Loss for this anchor: Σ_p [ -s_ip/τ + LSE ] / |P|
    double pos_mean_sim = 0.0;
    for (int64_t p : pos) {
      const float* zp = pz + p * d;
      double s = 0.0;
      for (int64_t j = 0; j < d; ++j) s += static_cast<double>(zi[j]) * zp[j];
      pos_mean_sim += s * inv_tau;
      // d/ds_ip = -1/(|P|·τ)  →  grads on z_i and z_p
      const float coef = -inv_pos * inv_tau;
      float* gi = pgz + i * d;
      float* gp = pgz + p * d;
      for (int64_t j = 0; j < d; ++j) {
        gi[j] += coef * zp[j];
        gp[j] += coef * zi[j];
      }
    }
    pos_mean_sim *= inv_pos;
    total += -pos_mean_sim + lse;

    // LSE gradient: softmax over negatives, divided by τ.
    for (size_t k = 0; k < neg.size(); ++k) {
      const float soft =
          static_cast<float>(std::exp(static_cast<double>(neg_sim[k]) - mx) / sum_exp);
      const float coef = soft * inv_tau;
      const float* zn = pz + neg[k] * d;
      float* gi = pgz + i * d;
      float* gn = pgz + neg[k] * d;
      for (int64_t j = 0; j < d; ++j) {
        gi[j] += coef * zn[j];
        gn[j] += coef * zi[j];
      }
    }
  }

  ContrastiveResult res;
  res.grad_embeddings = Tensor({m, d});
  if (live_anchors == 0) {
    res.loss = 0.0f;
    return res;
  }
  const float inv_live = 1.0f / static_cast<float>(live_anchors);
  res.loss = static_cast<float>(total) * inv_live;
  grad_z.scale_(inv_live);

  // Map dL/dz back to dL/de through z = e/||e||:
  //   dL/de = (dL/dz − z·(z ⋅ dL/dz)) / ||e||
  float* pge = res.grad_embeddings.data();
  const float* pgzc = grad_z.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* zi = pz + i * d;
    const float* gz = pgzc + i * d;
    double zdot = 0.0;
    for (int64_t j = 0; j < d; ++j) zdot += static_cast<double>(zi[j]) * gz[j];
    const float inv_nrm = 1.0f / norms[static_cast<size_t>(i)];
    for (int64_t j = 0; j < d; ++j)
      pge[i * d + j] = (gz[j] - zi[j] * static_cast<float>(zdot)) * inv_nrm;
  }
  return res;
}

SoftCrossEntropyResult soft_cross_entropy(const Tensor& logits,
                                          const Tensor& targets,
                                          const std::vector<float>& weights) {
  DECO_CHECK(logits.ndim() == 2, "soft_cross_entropy: logits must be 2-D");
  DECO_CHECK(targets.same_shape(logits),
             "soft_cross_entropy: target shape mismatch " + targets.shape_str());
  const int64_t n = logits.dim(0), c = logits.dim(1);
  DECO_CHECK(weights.empty() || static_cast<int64_t>(weights.size()) == n,
             "soft_cross_entropy: weight count mismatch");

  Tensor logp;
  log_softmax_rows_into(logits, logp);

  SoftCrossEntropyResult res;
  res.grad_logits = Tensor({n, c});
  res.grad_targets = Tensor({n, c});
  const float* plp = logp.data();
  const float* pq = targets.data();
  float* pgl = res.grad_logits.data();
  float* pgt = res.grad_targets.data();
  const float inv_n = 1.0f / static_cast<float>(n);

  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float w = weights.empty() ? 1.0f : weights[static_cast<size_t>(i)];
    const float scale = w * inv_n;
    double qsum = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      loss -= static_cast<double>(w) * pq[i * c + j] * plp[i * c + j];
      qsum += pq[i * c + j];
      pgt[i * c + j] = -scale * plp[i * c + j];
    }
    // d/dz_j of −Σ_k q_k·logp_k = p_j·Σ_k q_k − q_j.
    for (int64_t j = 0; j < c; ++j) {
      pgl[i * c + j] = scale * (std::exp(plp[i * c + j]) *
                                    static_cast<float>(qsum) -
                                pq[i * c + j]);
    }
  }
  res.loss = static_cast<float>(loss) * inv_n;
  return res;
}

MseResult mse_loss(const Tensor& pred, const Tensor& target) {
  DECO_CHECK(pred.numel() == target.numel(), "mse_loss: numel mismatch");
  MseResult res;
  res.grad_pred = Tensor(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = res.grad_pred.data();
  const int64_t n = pred.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float diff = pp[i] - pt[i];
    loss += static_cast<double>(diff) * diff;
    pg[i] = 2.0f * diff * inv_n;
  }
  res.loss = static_cast<float>(loss) * inv_n;
  return res;
}

}  // namespace deco::nn
