#include <cmath>

#include "deco/core/thread_pool.h"
#include "deco/nn/layers.h"
#include "deco/tensor/check.h"

namespace deco::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {
  reinitialize(rng);
}

void Linear::reinitialize(Rng& rng) {
  const double fan_in = static_cast<double>(in_features_);
  rng.fill_normal(weight_, 0.0, std::sqrt(2.0 / fan_in));
  bias_.zero();
}

Tensor Linear::forward(const Tensor& input) {
  DECO_CHECK(input.ndim() == 2 && input.dim(1) == in_features_,
             "Linear: expected [N, " + std::to_string(in_features_) + "], got " +
                 input.shape_str());
  input_ = input;
  // y = x W^T + b
  Tensor out = matmul_nt(input, weight_);
  const int64_t n = out.dim(0);
  float* po = out.data();
  const float* pb = bias_.data();
  core::parallel_for(0, n, 64, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i)
      for (int64_t j = 0; j < out_features_; ++j)
        po[i * out_features_ + j] += pb[j];
  });
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  DECO_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == input_.dim(0) &&
                 grad_output.dim(1) == out_features_,
             "Linear::backward: grad shape mismatch " + grad_output.shape_str());
  // dW += g^T x (folded straight into the accumulator); db += sum over
  // batch ; dx = g W
  matmul_tn_acc_into(grad_output, input_, weight_grad_);
  const int64_t n = grad_output.dim(0);
  const float* pg = grad_output.data();
  float* pbg = bias_grad_.data();
  // Each output feature owns its bias-grad slot; the batch sum per feature
  // keeps the serial order, so the split is bitwise deterministic.
  core::parallel_for(0, out_features_, 16, [&](int64_t j0, int64_t j1) {
    for (int64_t j = j0; j < j1; ++j) {
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i) acc += pg[i * out_features_ + j];
      pbg[j] += static_cast<float>(acc);
    }
  });
  return matmul(grad_output, weight_);
}

void Linear::collect_params(std::vector<ParamRef>& out) {
  out.push_back({"linear.weight", &weight_, &weight_grad_});
  out.push_back({"linear.bias", &bias_, &bias_grad_});
}

}  // namespace deco::nn
