#include "deco/nn/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "deco/tensor/check.h"
#include "deco/tensor/serialize.h"

namespace deco::nn {

namespace {
constexpr char kMagic[8] = {'D', 'E', 'C', 'O', 'C', 'K', 'P', 'T'};

void write_string(std::ostream& os, const std::string& s) {
  const uint32_t n = static_cast<uint32_t>(s.size());
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(s.data(), n);
}

std::string read_string(std::istream& is) {
  uint32_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  DECO_CHECK(static_cast<bool>(is) && n < 4096, "checkpoint: bad string");
  std::string s(n, '\0');
  is.read(s.data(), n);
  DECO_CHECK(static_cast<bool>(is), "checkpoint: string truncated");
  return s;
}
}  // namespace

void save_checkpoint(const std::string& path, Module& model) {
  save_checkpoint(path, model, DType::kF32);
}

void save_checkpoint(const std::string& path, Module& model, DType dtype,
                     int64_t block) {
  // Serialize to memory first, then write atomically: a crash mid-save must
  // never clobber the previous on-disk checkpoint.
  std::ostringstream os(std::ios::binary);
  os.write(kMagic, sizeof(kMagic));
  auto params = model.parameters();
  const uint32_t count = static_cast<uint32_t>(params.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (ParamRef& p : params) {
    write_string(os, p.name);
    // fp32 keeps the legacy v2 record so default checkpoints stay
    // byte-identical; other dtypes emit dtype-tagged v3 records.
    if (dtype == DType::kF32)
      write_tensor(os, *p.value);
    else
      write_tensor(os, *p.value, dtype, block);
  }
  DECO_CHECK(static_cast<bool>(os), "save_checkpoint: serialization failed");
  atomic_write_file(path, os.str());
}

void load_checkpoint(const std::string& path, Module& model) {
  std::ifstream is(path, std::ios::binary);
  DECO_CHECK(is.is_open(), "load_checkpoint: cannot open " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  DECO_CHECK(static_cast<bool>(is) && std::equal(magic, magic + 8, kMagic),
             "load_checkpoint: not a DECO checkpoint");
  uint32_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  DECO_CHECK(static_cast<bool>(is), "load_checkpoint: header truncated");
  auto params = model.parameters();
  DECO_CHECK(count == params.size(),
             "load_checkpoint: parameter count mismatch (file " +
                 std::to_string(count) + ", model " +
                 std::to_string(params.size()) + ")");
  // Stage every tensor and validate the full file before touching the model:
  // a truncated or mismatched checkpoint must not leave the model half-loaded.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (ParamRef& p : params) {
    const std::string name = read_string(is);
    DECO_CHECK(name == p.name, "load_checkpoint: parameter order mismatch: "
                               "expected " + p.name + ", found " + name);
    Tensor t = read_tensor(is);
    DECO_CHECK(t.shape() == p.value->shape(),
               "load_checkpoint: shape mismatch for " + p.name);
    staged.push_back(std::move(t));
  }
  for (size_t i = 0; i < params.size(); ++i)
    *params[i].value = std::move(staged[i]);
}

}  // namespace deco::nn
