#include <cmath>
#include <vector>

#include "deco/core/thread_pool.h"
#include "deco/nn/layers.h"
#include "deco/tensor/check.h"

namespace deco::nn {

InstanceNorm2d::InstanceNorm2d(int64_t channels, float eps)
    : channels_(channels),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      gamma_grad_({channels}),
      beta_grad_({channels}) {
  gamma_.fill(1.0f);
  beta_.zero();
}

void InstanceNorm2d::reinitialize(Rng& rng) {
  (void)rng;  // affine params restart at identity, as in standard norm layers
  gamma_.fill(1.0f);
  beta_.zero();
}

Tensor InstanceNorm2d::forward(const Tensor& input) {
  DECO_CHECK(input.ndim() == 4 && input.dim(1) == channels_,
             "InstanceNorm2d: expected NCHW with " + std::to_string(channels_) +
                 " channels, got " + input.shape_str());
  in_shape_ = input.shape();
  const int64_t N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t M = H * W;
  DECO_CHECK(M > 1, "InstanceNorm2d needs more than one spatial element");

  if (!xhat_.same_shape(input)) xhat_ = Tensor(input.shape());
  if (inv_std_.numel() != N * channels_) inv_std_ = Tensor({N * channels_});

  const float* pi = input.data();
  float* px = xhat_.data();
  float* ps = inv_std_.data();
  Tensor out(input.shape());
  float* po = out.data();
  const float* pg = gamma_.data();
  const float* pb = beta_.data();

  // Every (n, c) plane is normalized independently: disjoint writes, so the
  // batch-parallel split is bitwise deterministic.
  core::parallel_for(0, N * channels_, 1, [&](int64_t nc0, int64_t nc1) {
    for (int64_t nc = nc0; nc < nc1; ++nc) {
      const int64_t c = nc % channels_;
      const float* src = pi + nc * M;
      double mean = 0.0;
      for (int64_t i = 0; i < M; ++i) mean += src[i];
      mean /= static_cast<double>(M);
      double var = 0.0;
      for (int64_t i = 0; i < M; ++i) {
        const double d = src[i] - mean;
        var += d * d;
      }
      var /= static_cast<double>(M);
      const float inv = static_cast<float>(1.0 / std::sqrt(var + eps_));
      ps[nc] = inv;
      float* xh = px + nc * M;
      float* dst = po + nc * M;
      const float g = pg[c], b = pb[c], mu = static_cast<float>(mean);
      for (int64_t i = 0; i < M; ++i) {
        xh[i] = (src[i] - mu) * inv;
        dst[i] = g * xh[i] + b;
      }
    }
  });
  return out;
}

Tensor InstanceNorm2d::backward(const Tensor& grad_output) {
  DECO_CHECK(!in_shape_.empty(), "InstanceNorm2d::backward without forward");
  DECO_CHECK(grad_output.shape() == in_shape_,
             "InstanceNorm2d::backward: grad shape mismatch");
  const int64_t N = in_shape_[0], H = in_shape_[2], W = in_shape_[3];
  const int64_t M = H * W;

  Tensor grad_input(in_shape_);
  const float* pdy = grad_output.data();
  const float* px = xhat_.data();
  const float* ps = inv_std_.data();
  const float* pg = gamma_.data();
  float* pgg = gamma_grad_.data();
  float* pbg = beta_grad_.data();
  float* pdx = grad_input.data();

  // Phase 1 (parallel): per-plane sums and dx — all writes are plane-local.
  // Phase 2 (serial, ascending nc): fold the per-plane sums into the shared
  // γ/β gradients in the fixed serial order, keeping the reduction bitwise
  // identical for every thread count.
  const int64_t planes = N * channels_;
  std::vector<double> plane_sum_dy(static_cast<size_t>(planes));
  std::vector<double> plane_sum_dy_xh(static_cast<size_t>(planes));
  core::parallel_for(0, planes, 1, [&](int64_t nc0, int64_t nc1) {
    for (int64_t nc = nc0; nc < nc1; ++nc) {
      const int64_t c = nc % channels_;
      const float* dy = pdy + nc * M;
      const float* xh = px + nc * M;
      float* dx = pdx + nc * M;
      const float g = pg[c];
      const float inv = ps[nc];

      double sum_dy = 0.0, sum_dy_xh = 0.0;
      for (int64_t i = 0; i < M; ++i) {
        sum_dy += dy[i];
        sum_dy_xh += static_cast<double>(dy[i]) * xh[i];
      }
      plane_sum_dy[static_cast<size_t>(nc)] = sum_dy;
      plane_sum_dy_xh[static_cast<size_t>(nc)] = sum_dy_xh;

      const float mean_dy = static_cast<float>(sum_dy / M);
      const float mean_dy_xh = static_cast<float>(sum_dy_xh / M);
      // dx = γ·inv_std·(dy − mean(dy) − x̂·mean(dy·x̂))
      for (int64_t i = 0; i < M; ++i) {
        dx[i] = g * inv * (dy[i] - mean_dy - xh[i] * mean_dy_xh);
      }
    }
  });
  for (int64_t nc = 0; nc < planes; ++nc) {
    const int64_t c = nc % channels_;
    pbg[c] += static_cast<float>(plane_sum_dy[static_cast<size_t>(nc)]);
    pgg[c] += static_cast<float>(plane_sum_dy_xh[static_cast<size_t>(nc)]);
  }
  return grad_input;
}

void InstanceNorm2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({"norm.gamma", &gamma_, &gamma_grad_});
  out.push_back({"norm.beta", &beta_, &beta_grad_});
}

}  // namespace deco::nn
