#include "deco/nn/optim.h"

#include <cmath>

#include "deco/tensor/check.h"

namespace deco::nn {

SgdMomentum::SgdMomentum(Module& model, float lr, float momentum,
                         float weight_decay)
    : SgdMomentum(model.parameters(), lr, momentum, weight_decay) {}

SgdMomentum::SgdMomentum(std::vector<ParamRef> params, float lr, float momentum,
                         float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    DECO_CHECK(p.value != nullptr && p.grad != nullptr,
               "SgdMomentum: null parameter " + p.name);
    DECO_CHECK(p.value->same_shape(*p.grad),
               "SgdMomentum: value/grad shape mismatch for " + p.name);
    velocity_.emplace_back(p.value->shape());
  }
}

void SgdMomentum::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    float* v = velocity_[i].data();
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    const int64_t n = params_[i].value->numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

void SgdMomentum::zero_grad() {
  for (ParamRef& p : params_) p.grad->zero();
}

void SgdMomentum::reset_state() {
  for (Tensor& v : velocity_) v.zero();
}

Adam::Adam(std::vector<ParamRef> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    DECO_CHECK(p.value != nullptr && p.grad != nullptr, "Adam: null parameter");
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    const int64_t n = params_[i].value->numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (ParamRef& p : params_) p.grad->zero();
}

void Adam::reset_state() {
  for (Tensor& t : m_) t.zero();
  for (Tensor& t : v_) t.zero();
  t_ = 0;
}

}  // namespace deco::nn
