#include <cmath>

#include "deco/core/thread_pool.h"
#include "deco/nn/layers.h"
#include "deco/tensor/check.h"

namespace deco::nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  reinitialize(rng);
}

void Conv2d::reinitialize(Rng& rng) {
  // Kaiming-normal for ReLU networks: std = sqrt(2 / fan_in).
  const double fan_in = static_cast<double>(in_channels_ * kernel_ * kernel_);
  rng.fill_normal(weight_, 0.0, std::sqrt(2.0 / fan_in));
  bias_.zero();
}

Tensor Conv2d::forward(const Tensor& input) {
  DECO_CHECK(input.ndim() == 4 && input.dim(1) == in_channels_,
             "Conv2d: expected NCHW input with " + std::to_string(in_channels_) +
                 " channels, got " + input.shape_str());
  geom_ = Conv2dGeometry{in_channels_, input.dim(2), input.dim(3),
                         kernel_,      kernel_,      stride_,
                         padding_};
  last_batch_ = input.dim(0);
  im2col_into(input, geom_, cols_);

  // out_mat = W [out_ch, rows] x cols [rows, N*oh*ow]
  matmul_into(weight_, cols_, out_mat_);

  const int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const int64_t per_sample = oh * ow;
  Tensor out({last_batch_, out_channels_, oh, ow});
  float* po = out.data();
  const float* pm = out_mat_.data();
  const float* pb = bias_.data();
  const int64_t total_cols = last_batch_ * per_sample;
  // out_mat is [out_ch, N*oh*ow] with sample-major columns; permute to NCHW.
  // Output channels write disjoint planes, so the split is deterministic.
  core::parallel_for(0, out_channels_, 1, [&](int64_t oc0, int64_t oc1) {
    for (int64_t oc = oc0; oc < oc1; ++oc) {
      const float* src = pm + oc * total_cols;
      const float b = pb[oc];
      for (int64_t n = 0; n < last_batch_; ++n) {
        float* dst = po + (n * out_channels_ + oc) * per_sample;
        const float* s = src + n * per_sample;
        for (int64_t i = 0; i < per_sample; ++i) dst[i] = s[i] + b;
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DECO_CHECK(grad_output.ndim() == 4 && grad_output.dim(0) == last_batch_ &&
                 grad_output.dim(1) == out_channels_ && grad_output.dim(2) == oh &&
                 grad_output.dim(3) == ow,
             "Conv2d::backward: grad " + grad_output.shape_str() +
                 " does not match forward output");
  const int64_t per_sample = oh * ow;
  const int64_t total_cols = last_batch_ * per_sample;

  // Permute grad NCHW → [out_ch, N*oh*ow] to mirror the forward GEMM layout.
  if (grad_out_mat_.numel() != out_channels_ * total_cols) {
    grad_out_mat_ = Tensor({out_channels_, total_cols});
  } else {
    grad_out_mat_.reshape({out_channels_, total_cols});
  }
  const float* pg = grad_output.data();
  float* pm = grad_out_mat_.data();
  float* pbg = bias_grad_.data();
  // Per-channel: the permuted row and the bias-grad slot are private to oc,
  // and each channel's batch sum stays in the serial order.
  core::parallel_for(0, out_channels_, 1, [&](int64_t oc0, int64_t oc1) {
    for (int64_t oc = oc0; oc < oc1; ++oc) {
      float* dst = pm + oc * total_cols;
      double bacc = 0.0;
      for (int64_t n = 0; n < last_batch_; ++n) {
        const float* src = pg + (n * out_channels_ + oc) * per_sample;
        float* d = dst + n * per_sample;
        for (int64_t i = 0; i < per_sample; ++i) {
          d[i] = src[i];
          bacc += src[i];
        }
      }
      pbg[oc] += static_cast<float>(bacc);
    }
  });

  // dW += grad_mat [out_ch, cols] x cols^T [cols, rows], folded straight
  // into the accumulator — no dw temporary.
  matmul_nt_acc_into(grad_out_mat_, cols_, weight_grad_);

  // dcols = W^T [rows, out_ch] x grad_mat [out_ch, cols]
  matmul_tn_into(weight_, grad_out_mat_, grad_cols_);

  Tensor grad_input({last_batch_, in_channels_, geom_.in_h, geom_.in_w});
  col2im_into(grad_cols_, geom_, grad_input);
  return grad_input;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
  out.push_back({"conv.weight", &weight_, &weight_grad_});
  out.push_back({"conv.bias", &bias_, &bias_grad_});
}

}  // namespace deco::nn
