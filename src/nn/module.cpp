#include "deco/nn/module.h"

#include "deco/tensor/check.h"

namespace deco::nn {

std::vector<ParamRef> Module::parameters() {
  std::vector<ParamRef> out;
  collect_params(out);
  return out;
}

void Module::zero_grad() {
  for (ParamRef& p : parameters()) p.grad->zero();
}

int64_t Module::num_params() {
  int64_t n = 0;
  for (ParamRef& p : parameters()) n += p.value->numel();
  return n;
}

void copy_params(Module& src, Module& dst) {
  auto a = src.parameters();
  auto b = dst.parameters();
  DECO_CHECK(a.size() == b.size(), "copy_params: parameter count mismatch");
  for (size_t i = 0; i < a.size(); ++i) {
    DECO_CHECK(a[i].value->same_shape(*b[i].value),
               "copy_params: shape mismatch at parameter " + a[i].name);
    std::copy(a[i].value->data(), a[i].value->data() + a[i].value->numel(),
              b[i].value->data());
  }
}

}  // namespace deco::nn
