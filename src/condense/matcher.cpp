#include "deco/condense/matcher.h"

#include "deco/condense/grad_distance.h"
#include "deco/condense/grad_utils.h"
#include "deco/core/telemetry.h"
#include "deco/nn/loss.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::condense {

GradientMatcher::GradientMatcher(nn::Module& model, float fd_scale)
    : model_(model), fd_scale_(fd_scale) {
  DECO_CHECK(fd_scale > 0.0f, "GradientMatcher: fd_scale must be positive");
}

MatchResult GradientMatcher::match(const Tensor& x_syn,
                                   const std::vector<int64_t>& y_syn,
                                   const Tensor& x_real,
                                   const std::vector<int64_t>& y_real,
                                   const std::vector<float>& w_real) {
  return match_impl(x_syn, y_syn, x_real, y_real, w_real, nullptr, nullptr);
}

GradientMatcher::SoftResult GradientMatcher::match_soft(
    const Tensor& x_syn, const Tensor& q_syn, const Tensor& x_real,
    const std::vector<int64_t>& y_real, const std::vector<float>& w_real) {
  DECO_CHECK(x_syn.ndim() == 4 && x_real.ndim() == 4,
             "match_soft: batches must be NCHW");
  DECO_CHECK(q_syn.ndim() == 2 && q_syn.dim(0) == x_syn.dim(0),
             "match_soft: target count mismatch");
  DECO_CHECK(x_real.dim(0) == static_cast<int64_t>(y_real.size()),
             "match_soft: real label count mismatch");

  DECO_TRACE_SCOPE("condense/match");
  {
    static core::telemetry::Counter& c =
        core::telemetry::counter("condense/matcher_passes");
    c.add(1);
  }

  SoftResult res;

  // Pass 1: g_real (hard pseudo-labels with confidence weights, Eq. 4).
  model_.zero_grad();
  {
    Tensor logits = model_.forward(x_real);
    auto ce = nn::weighted_cross_entropy(logits, y_real, w_real);
    res.base.loss_real = ce.loss;
    model_.backward(ce.grad_logits);
  }
  GradVec g_real = clone_grads(model_);

  // Pass 2: g_syn under the soft-target loss.
  model_.zero_grad();
  {
    Tensor logits = model_.forward(x_syn);
    auto ce = nn::soft_cross_entropy(logits, q_syn);
    res.base.loss_syn = ce.loss;
    model_.backward(ce.grad_logits);
  }
  GradVec g_syn = clone_grads(model_);

  GradDistanceResult dist = gradient_distance(g_syn, g_real);
  res.base.distance = dist.value;

  const float dnorm = global_norm(dist.d_syn);
  if (dnorm < 1e-12f) {
    res.base.grad_syn = Tensor(x_syn.shape());
    res.grad_targets = Tensor(q_syn.shape());
    return res;
  }
  const float eps = fd_scale_ / dnorm;

  // Passes 3–4: ∇_X L and ∇_q L at θ±.
  perturb_params(model_, dist.d_syn, eps);
  Tensor gx_plus, gq_plus;
  {
    model_.zero_grad();
    Tensor logits = model_.forward(x_syn);
    auto ce = nn::soft_cross_entropy(logits, q_syn);
    gx_plus = model_.backward(ce.grad_logits);
    gq_plus = std::move(ce.grad_targets);
  }
  perturb_params(model_, dist.d_syn, -2.0f * eps);
  Tensor gx_minus, gq_minus;
  {
    model_.zero_grad();
    Tensor logits = model_.forward(x_syn);
    auto ce = nn::soft_cross_entropy(logits, q_syn);
    gx_minus = model_.backward(ce.grad_logits);
    gq_minus = std::move(ce.grad_targets);
  }
  perturb_params(model_, dist.d_syn, eps);
  model_.zero_grad();

  gx_plus.sub_(gx_minus);
  gx_plus.scale_(1.0f / (2.0f * eps));
  res.base.grad_syn = std::move(gx_plus);

  gq_plus.sub_(gq_minus);
  gq_plus.scale_(1.0f / (2.0f * eps));
  res.grad_targets = std::move(gq_plus);
  return res;
}

MatchResult GradientMatcher::match_augmented(
    const Tensor& x_syn, const std::vector<int64_t>& y_syn, const Tensor& x_real,
    const std::vector<int64_t>& y_real, const std::vector<float>& w_real,
    const augment::SiameseAugment& aug, Rng& rng) {
  const augment::AugmentParams params =
      aug.sample(rng, x_syn.dim(2), x_syn.dim(3));
  return match_impl(x_syn, y_syn, x_real, y_real, w_real, &aug, &params);
}

MatchResult GradientMatcher::match_with_params(
    const Tensor& x_syn, const std::vector<int64_t>& y_syn, const Tensor& x_real,
    const std::vector<int64_t>& y_real, const std::vector<float>& w_real,
    const augment::SiameseAugment& aug, const augment::AugmentParams& params) {
  return match_impl(x_syn, y_syn, x_real, y_real, w_real, &aug, &params);
}

MatchResult GradientMatcher::match_impl(const Tensor& x_syn,
                                        const std::vector<int64_t>& y_syn,
                                        const Tensor& x_real,
                                        const std::vector<int64_t>& y_real,
                                        const std::vector<float>& w_real,
                                        const augment::SiameseAugment* aug,
                                        const augment::AugmentParams* params) {
  DECO_CHECK(x_syn.ndim() == 4 && x_real.ndim() == 4,
             "GradientMatcher: batches must be NCHW");
  DECO_CHECK(x_syn.dim(0) == static_cast<int64_t>(y_syn.size()),
             "GradientMatcher: synthetic label count mismatch");
  DECO_CHECK(x_real.dim(0) == static_cast<int64_t>(y_real.size()),
             "GradientMatcher: real label count mismatch");

  DECO_TRACE_SCOPE("condense/match");
  {
    static core::telemetry::Counter& c =
        core::telemetry::counter("condense/matcher_passes");
    c.add(1);
  }

  // Siamese augmentation: one sampled transform applied to both batches.
  const bool augmented = aug != nullptr && params != nullptr &&
                         params->kind != augment::OpKind::kNone;
  const Tensor& xs = augmented ? aug->forward(x_syn, *params) : x_syn;
  const Tensor& xr = augmented ? aug->forward(x_real, *params) : x_real;

  MatchResult res;

  // Pass 1: g_real = ∇_θ L(X_real) with confidence weights (Eq. 4).
  model_.zero_grad();
  {
    Tensor logits = model_.forward(xr);
    auto ce = nn::weighted_cross_entropy(logits, y_real, w_real);
    res.loss_real = ce.loss;
    model_.backward(ce.grad_logits);
  }
  GradVec g_real = clone_grads(model_);

  // Pass 2: g_syn = ∇_θ L(X_syn), unit weights.
  model_.zero_grad();
  {
    Tensor logits = model_.forward(xs);
    auto ce = nn::weighted_cross_entropy(logits, y_syn);
    res.loss_syn = ce.loss;
    model_.backward(ce.grad_logits);
  }
  GradVec g_syn = clone_grads(model_);

  // Analytic ∇_{g_syn} D (no network pass).
  GradDistanceResult dist = gradient_distance(g_syn, g_real);
  res.distance = dist.value;

  const float dnorm = global_norm(dist.d_syn);
  if (dnorm < 1e-12f) {
    // Gradients already perfectly aligned (or degenerate): nothing to do.
    res.grad_syn = Tensor(x_syn.shape());
    return res;
  }
  const float eps = fd_scale_ / dnorm;

  // Pass 3: ∇_X L at θ⁺ = θ + ε·∇D.
  perturb_params(model_, dist.d_syn, eps);
  Tensor gx_plus;
  {
    model_.zero_grad();
    Tensor logits = model_.forward(xs);
    auto ce = nn::weighted_cross_entropy(logits, y_syn);
    gx_plus = model_.backward(ce.grad_logits);
  }

  // Pass 4: ∇_X L at θ⁻ = θ − ε·∇D.
  perturb_params(model_, dist.d_syn, -2.0f * eps);
  Tensor gx_minus;
  {
    model_.zero_grad();
    Tensor logits = model_.forward(xs);
    auto ce = nn::weighted_cross_entropy(logits, y_syn);
    gx_minus = model_.backward(ce.grad_logits);
  }

  // Restore θ.
  perturb_params(model_, dist.d_syn, eps);
  model_.zero_grad();

  // Central difference: ∇_X D ≈ (∇_X L⁺ − ∇_X L⁻) / (2ε).
  gx_plus.sub_(gx_minus);
  gx_plus.scale_(1.0f / (2.0f * eps));

  // Chain rule through the augmentation back to the raw synthetic pixels.
  res.grad_syn = augmented ? aug->backward(gx_plus, *params) : std::move(gx_plus);
  return res;
}

}  // namespace deco::condense
