#include "deco/condense/grad_distance.h"

#include <cmath>

#include "deco/tensor/check.h"

namespace deco::condense {

namespace {
constexpr double kNormFloor = 1e-6;

// Rows of a parameter tensor for per-output cosine grouping: matrices use
// dim0 as the output axis. 1-D parameters (biases, norm affines) are
// EXCLUDED from the distance, following the reference gradient-matching
// implementation (Zhao et al.'s distance_wb returns 0 for 1-D tensors):
// their gradients are low-dimensional, often near-zero, and the cosine
// derivative 1/‖a‖ blows up on them, destabilizing the matching signal.
// Returns false when the tensor should be skipped.
bool row_geometry(const Tensor& t, int64_t& rows, int64_t& cols) {
  if (t.ndim() < 2) return false;
  rows = t.dim(0);
  cols = t.numel() / t.dim(0);
  return true;
}
}  // namespace

GradDistanceResult gradient_distance(const GradVec& g_syn, const GradVec& g_real) {
  DECO_CHECK(g_syn.size() == g_real.size(),
             "gradient_distance: layer count mismatch");
  GradDistanceResult res;
  res.d_syn.reserve(g_syn.size());
  double total = 0.0;

  for (size_t li = 0; li < g_syn.size(); ++li) {
    const Tensor& a_t = g_syn[li];
    const Tensor& b_t = g_real[li];
    DECO_CHECK(a_t.numel() == b_t.numel(),
               "gradient_distance: tensor size mismatch at layer " +
                   std::to_string(li));
    Tensor d(a_t.shape());
    int64_t rows = 0, cols = 0;
    if (!row_geometry(a_t, rows, cols)) {
      res.d_syn.push_back(std::move(d));  // zero contribution and gradient
      continue;
    }
    const float* a = a_t.data();
    const float* b = b_t.data();
    float* g = d.data();

    for (int64_t r = 0; r < rows; ++r) {
      const float* ar = a + r * cols;
      const float* br = b + r * cols;
      float* gr = g + r * cols;
      double saa = 0.0, sbb = 0.0, sab = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        saa += static_cast<double>(ar[j]) * ar[j];
        sbb += static_cast<double>(br[j]) * br[j];
        sab += static_cast<double>(ar[j]) * br[j];
      }
      const double na = std::sqrt(saa), nb = std::sqrt(sbb);
      if (na < kNormFloor || nb < kNormFloor) continue;  // degenerate row
      total += 1.0 - sab / (na * nb);
      // ∂/∂a of (1 − a·b/(‖a‖‖b‖)) = −b/(‖a‖‖b‖) + (a·b)·a/(‖a‖³‖b‖)
      const double c1 = -1.0 / (na * nb);
      const double c2 = sab / (na * na * na * nb);
      for (int64_t j = 0; j < cols; ++j)
        gr[j] = static_cast<float>(c1 * br[j] + c2 * ar[j]);
    }
    res.d_syn.push_back(std::move(d));
  }
  res.value = static_cast<float>(total);
  return res;
}

float gradient_distance_value(const GradVec& g_syn, const GradVec& g_real) {
  DECO_CHECK(g_syn.size() == g_real.size(),
             "gradient_distance_value: layer count mismatch");
  double total = 0.0;
  for (size_t li = 0; li < g_syn.size(); ++li) {
    int64_t rows = 0, cols = 0;
    if (!row_geometry(g_syn[li], rows, cols)) continue;
    const float* a = g_syn[li].data();
    const float* b = g_real[li].data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* ar = a + r * cols;
      const float* br = b + r * cols;
      double saa = 0.0, sbb = 0.0, sab = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        saa += static_cast<double>(ar[j]) * ar[j];
        sbb += static_cast<double>(br[j]) * br[j];
        sab += static_cast<double>(ar[j]) * br[j];
      }
      const double na = std::sqrt(saa), nb = std::sqrt(sbb);
      if (na < kNormFloor || nb < kNormFloor) continue;
      total += 1.0 - sab / (na * nb);
    }
  }
  return static_cast<float>(total);
}

}  // namespace deco::condense
