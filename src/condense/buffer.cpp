#include "deco/condense/buffer.h"

#include <algorithm>
#include <cmath>

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::condense {

SyntheticBuffer::SyntheticBuffer(int64_t num_classes, int64_t ipc,
                                 int64_t channels, int64_t height, int64_t width)
    : num_classes_(num_classes),
      ipc_(ipc),
      channels_(channels),
      height_(height),
      width_(width),
      images_({num_classes * ipc, channels, height, width}),
      grads_({num_classes * ipc, channels, height, width}) {
  DECO_CHECK(num_classes >= 1 && ipc >= 1, "SyntheticBuffer: bad dimensions");
  labels_.resize(static_cast<size_t>(size()));
  for (int64_t r = 0; r < size(); ++r)
    labels_[static_cast<size_t>(r)] = r / ipc_;
}

void SyntheticBuffer::init_from_dataset(const data::Dataset& labeled, Rng& rng) {
  const int64_t per = channels_ * height_ * width_;
  float* pi = images_.data();
  for (int64_t cls = 0; cls < num_classes_; ++cls) {
    std::vector<int64_t> pool = labeled.indices_of_class(cls);
    for (int64_t k = 0; k < ipc_; ++k) {
      const int64_t row = cls * ipc_ + k;
      float* dst = pi + row * per;
      if (pool.empty()) {
        for (int64_t i = 0; i < per; ++i)
          dst[i] = std::clamp(
              static_cast<float>(rng.normal(0.5, 0.25)), 0.0f, 1.0f);
        continue;
      }
      const int64_t pick =
          pool[static_cast<size_t>(rng.uniform_int(
              static_cast<int64_t>(pool.size())))];
      const Tensor& img = labeled.image(pick);
      DECO_CHECK(img.numel() == per,
                 "SyntheticBuffer: labeled image shape mismatch");
      std::copy(img.data(), img.data() + per, dst);
    }
  }
  grads_.zero();
}

void SyntheticBuffer::init_random(Rng& rng) {
  float* pi = images_.data();
  for (int64_t i = 0, n = images_.numel(); i < n; ++i)
    pi[i] = std::clamp(static_cast<float>(rng.normal(0.5, 0.25)), 0.0f, 1.0f);
  grads_.zero();
}

std::vector<int64_t> SyntheticBuffer::rows_of_class(int64_t cls) const {
  DECO_CHECK(cls >= 0 && cls < num_classes_, "rows_of_class: class range");
  std::vector<int64_t> rows(static_cast<size_t>(ipc_));
  for (int64_t k = 0; k < ipc_; ++k) rows[static_cast<size_t>(k)] = cls * ipc_ + k;
  return rows;
}

std::vector<int64_t> SyntheticBuffer::rows_of_classes(
    const std::vector<int64_t>& classes) const {
  std::vector<int64_t> rows;
  rows.reserve(classes.size() * static_cast<size_t>(ipc_));
  for (int64_t cls : classes) {
    auto r = rows_of_class(cls);
    rows.insert(rows.end(), r.begin(), r.end());
  }
  return rows;
}

Tensor SyntheticBuffer::gather(const std::vector<int64_t>& rows) const {
  DECO_CHECK(!rows.empty(), "SyntheticBuffer::gather: empty selection");
  Tensor out({static_cast<int64_t>(rows.size()), channels_, height_, width_});
  const int64_t per = channels_ * height_ * width_;
  const float* pi = images_.data();
  float* po = out.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    DECO_CHECK(r >= 0 && r < size(), "SyntheticBuffer::gather: row range");
    std::copy(pi + r * per, pi + (r + 1) * per, po + static_cast<int64_t>(i) * per);
  }
  return out;
}

void SyntheticBuffer::scatter_add_grad(const std::vector<int64_t>& rows,
                                       const Tensor& delta, float alpha) {
  const int64_t per = channels_ * height_ * width_;
  DECO_CHECK(delta.numel() == static_cast<int64_t>(rows.size()) * per,
             "SyntheticBuffer::scatter_add_grad: delta shape mismatch");
  const float* pd = delta.data();
  float* pg = grads_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    DECO_CHECK(r >= 0 && r < size(), "scatter_add_grad: row range");
    float* dst = pg + r * per;
    const float* src = pd + static_cast<int64_t>(i) * per;
    for (int64_t j = 0; j < per; ++j) dst[j] += alpha * src[j];
  }
}

void SyntheticBuffer::scatter_images(const std::vector<int64_t>& rows,
                                     const Tensor& values) {
  const int64_t per = channels_ * height_ * width_;
  DECO_CHECK(values.numel() == static_cast<int64_t>(rows.size()) * per,
             "SyntheticBuffer::scatter_images: value shape mismatch");
  const float* pv = values.data();
  float* pi = images_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    DECO_CHECK(r >= 0 && r < size(), "scatter_images: row range");
    std::copy(pv + static_cast<int64_t>(i) * per,
              pv + static_cast<int64_t>(i + 1) * per, pi + r * per);
  }
}

std::vector<int64_t> SyntheticBuffer::gather_labels(
    const std::vector<int64_t>& rows) const {
  std::vector<int64_t> out;
  out.reserve(rows.size());
  for (int64_t r : rows) {
    DECO_CHECK(r >= 0 && r < size(), "gather_labels: row range");
    out.push_back(labels_[static_cast<size_t>(r)]);
  }
  return out;
}

void SyntheticBuffer::enable_soft_labels(float initial_confidence) {
  DECO_CHECK(initial_confidence > 1.0f / static_cast<float>(num_classes_) &&
                 initial_confidence < 1.0f,
             "enable_soft_labels: confidence must be in (1/C, 1)");
  soft_labels_ = true;
  label_logits_ = Tensor({size(), num_classes_});
  label_grads_ = Tensor({size(), num_classes_});
  // Logit a on the own class, 0 elsewhere, chosen so softmax puts
  // `initial_confidence` on the own class: a = log(p·(C−1)/(1−p)).
  const float a = std::log(initial_confidence *
                           static_cast<float>(num_classes_ - 1) /
                           (1.0f - initial_confidence));
  for (int64_t r = 0; r < size(); ++r)
    label_logits_.at2(r, labels_[static_cast<size_t>(r)]) = a;
}

Tensor SyntheticBuffer::soft_targets(const std::vector<int64_t>& rows) const {
  DECO_CHECK(soft_labels_, "soft_targets: soft labels not enabled");
  Tensor sel({static_cast<int64_t>(rows.size()), num_classes_});
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    DECO_CHECK(r >= 0 && r < size(), "soft_targets: row range");
    for (int64_t c = 0; c < num_classes_; ++c)
      sel.at2(static_cast<int64_t>(i), c) = label_logits_.at2(r, c);
  }
  return softmax_rows(sel);
}

void SyntheticBuffer::scatter_add_label_grad_from_targets(
    const std::vector<int64_t>& rows, const Tensor& grad_targets, float alpha) {
  DECO_CHECK(soft_labels_, "scatter_add_label_grad: soft labels not enabled");
  DECO_CHECK(grad_targets.ndim() == 2 &&
                 grad_targets.dim(0) == static_cast<int64_t>(rows.size()) &&
                 grad_targets.dim(1) == num_classes_,
             "scatter_add_label_grad: grad shape mismatch");
  // Chain dL/dq through q = softmax(z): dL/dz = q ⊙ (g − ⟨q, g⟩).
  Tensor q = soft_targets(rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    double qdotg = 0.0;
    for (int64_t c = 0; c < num_classes_; ++c)
      qdotg += static_cast<double>(q.at2(static_cast<int64_t>(i), c)) *
               grad_targets.at2(static_cast<int64_t>(i), c);
    for (int64_t c = 0; c < num_classes_; ++c) {
      const float g = q.at2(static_cast<int64_t>(i), c) *
                      (grad_targets.at2(static_cast<int64_t>(i), c) -
                       static_cast<float>(qdotg));
      label_grads_.at2(r, c) += alpha * g;
    }
  }
}

nn::ParamRef SyntheticBuffer::as_param() {
  return nn::ParamRef{"synthetic_buffer", &images_, &grads_};
}

void SyntheticBuffer::clamp_pixels() { images_.clamp_(0.0f, 1.0f); }

void SyntheticBuffer::set_storage(DType dtype, int64_t block) {
  StoragePolicy p;
  p.cache_dtype = dtype;
  p.block = block;
  p.validate();
  store_dtype_ = dtype;
  store_block_ = block;
  if (dtype == DType::kF32) {
    qimages_ = QTensor();
  } else {
    // Allocate the canonical storage once; commits re-encode in place.
    qimages_ = QTensor::encode(images_, dtype, block);
  }
}

void SyntheticBuffer::commit_storage() {
  if (store_dtype_ == DType::kF32) return;
  qimages_.reencode(images_);
  qimages_.decode_into(images_.data());
}

int64_t SyntheticBuffer::stored_bytes() const {
  if (store_dtype_ == DType::kF32) return logical_bytes();
  return qimages_.stored_bytes();
}

void SyntheticBuffer::restore_stored(QTensor q) {
  DECO_CHECK(store_dtype_ != DType::kF32,
             "restore_stored: buffer storage policy is fp32");
  DECO_CHECK(q.dtype() == store_dtype_,
             "restore_stored: state dtype " + dtype_name(q.dtype()) +
                 " does not match the configured cache dtype " +
                 dtype_name(store_dtype_));
  DECO_CHECK(q.numel() == images_.numel() && q.shape() == images_.shape(),
             "restore_stored: stored shape mismatch");
  DECO_CHECK(q.block() == store_block_,
             "restore_stored: stored block length mismatch");
  qimages_ = std::move(q);
  qimages_.decode_into(images_.data());
}

}  // namespace deco::condense
