#include <cmath>

#include "deco/condense/grad_utils.h"
#include "deco/condense/method.h"
#include "deco/nn/loss.h"
#include "deco/tensor/check.h"

namespace deco::condense {

namespace {

// Deep-copies all parameter values of a module.
std::vector<Tensor> snapshot(nn::Module& m) {
  std::vector<Tensor> out;
  for (nn::ParamRef& p : m.parameters()) out.push_back(*p.value);
  return out;
}

void restore(nn::Module& m, const std::vector<Tensor>& snap) {
  auto params = m.parameters();
  DECO_CHECK(params.size() == snap.size(), "restore: parameter count mismatch");
  for (size_t i = 0; i < params.size(); ++i) *params[i].value = snap[i];
}

// One plain SGD step on the module's accumulated gradients.
void sgd_step(nn::Module& m, float lr) {
  for (nn::ParamRef& p : m.parameters()) p.value->add_scaled_(*p.grad, -lr);
}

void rms_normalize(Tensor& grad) {
  const float rms = grad.norm() /
                    std::sqrt(static_cast<float>(std::max<int64_t>(1, grad.numel())));
  if (rms > 1e-12f) grad.scale_(1.0f / rms);
}

}  // namespace

MttCondenser::MttCondenser(const nn::ConvNetConfig& model_config,
                           MttConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  scratch_ = std::make_unique<nn::ConvNet>(model_config, rng_);
}

void MttCondenser::condense(const CondenseContext& ctx) {
  DECO_CHECK(ctx.buffer != nullptr && ctx.x_real != nullptr &&
                 ctx.y_real != nullptr && ctx.active_classes != nullptr &&
                 ctx.rng != nullptr,
             "MttCondenser: incomplete context");
  SyntheticBuffer& buf = *ctx.buffer;
  if (velocity_.numel() != buf.images().numel())
    velocity_ = Tensor(buf.images().shape());
  last_losses_.clear();

  const std::vector<int64_t> active_rows =
      buf.rows_of_classes(*ctx.active_classes);
  if (active_rows.empty() || ctx.x_real->dim(0) == 0) return;
  const std::vector<int64_t> y_syn = buf.gather_labels(active_rows);
  const std::vector<float> w_real =
      ctx.w_real != nullptr ? *ctx.w_real : std::vector<float>{};

  const int64_t per = buf.channels() * buf.height() * buf.width();

  for (int64_t l = 0; l < config_.iterations; ++l) {
    scratch_->reinitialize(rng_);
    const std::vector<Tensor> theta0 = snapshot(*scratch_);

    // Expert trajectory: a few SGD steps on the real segment.
    for (int64_t t = 0; t < config_.expert_steps; ++t) {
      scratch_->zero_grad();
      Tensor logits = scratch_->forward(*ctx.x_real);
      auto ce = nn::weighted_cross_entropy(logits, *ctx.y_real, w_real);
      scratch_->backward(ce.grad_logits);
      sgd_step(*scratch_, config_.lr_model);
    }
    const std::vector<Tensor> theta_expert = snapshot(*scratch_);

    // Student: one step on the synthetic data from the same init.
    restore(*scratch_, theta0);
    Tensor x_syn = buf.gather(active_rows);
    scratch_->zero_grad();
    {
      Tensor logits = scratch_->forward(x_syn);
      auto ce = nn::weighted_cross_entropy(logits, y_syn);
      scratch_->backward(ce.grad_logits);
    }
    GradVec g_syn = clone_grads(*scratch_);

    // Trajectory loss ‖θ_s − θ*‖² with θ_s = θ₀ − lr·g_syn, and the
    // direction v = ∂loss/∂g_syn = −2·lr·(θ_s − θ*).
    GradVec v;
    v.reserve(g_syn.size());
    double loss = 0.0;
    for (size_t i = 0; i < g_syn.size(); ++i) {
      Tensor diff = theta0[i];
      diff.add_scaled_(g_syn[i], -config_.lr_model);
      diff.sub_(theta_expert[i]);
      loss += static_cast<double>(diff.squared_norm());
      diff.scale_(-2.0f * config_.lr_model);
      v.push_back(std::move(diff));
    }
    last_losses_.push_back(static_cast<float>(loss));

    const float vnorm = global_norm(v);
    if (vnorm < 1e-12f) continue;
    const float eps = config_.fd_scale / vnorm;

    // Central difference around θ₀ (Eq. 7's trick on the new direction).
    restore(*scratch_, theta0);
    perturb_params(*scratch_, v, eps);
    Tensor gx_plus;
    {
      scratch_->zero_grad();
      Tensor logits = scratch_->forward(x_syn);
      auto ce = nn::weighted_cross_entropy(logits, y_syn);
      gx_plus = scratch_->backward(ce.grad_logits);
    }
    perturb_params(*scratch_, v, -2.0f * eps);
    Tensor gx_minus;
    {
      scratch_->zero_grad();
      Tensor logits = scratch_->forward(x_syn);
      auto ce = nn::weighted_cross_entropy(logits, y_syn);
      gx_minus = scratch_->backward(ce.grad_logits);
    }
    scratch_->zero_grad();

    gx_plus.sub_(gx_minus);
    gx_plus.scale_(1.0f / (2.0f * eps));
    rms_normalize(gx_plus);

    buf.grads().zero();
    buf.scatter_add_grad(active_rows, gx_plus, 1.0f);
    float* img = buf.images().data();
    float* vel = velocity_.data();
    const float* grd = buf.grads().data();
    for (int64_t r : active_rows) {
      for (int64_t j = 0; j < per; ++j) {
        float& vv = vel[r * per + j];
        vv = config_.momentum_syn * vv + grd[r * per + j];
        img[r * per + j] -= config_.lr_syn * vv;
      }
    }
    buf.clamp_pixels();
  }
}

}  // namespace deco::condense
