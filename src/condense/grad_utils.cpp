#include "deco/condense/grad_utils.h"

#include <cmath>

#include "deco/tensor/check.h"

namespace deco::condense {

GradVec clone_grads(nn::Module& m) {
  GradVec out;
  for (nn::ParamRef& p : m.parameters()) out.push_back(*p.grad);
  return out;
}

void perturb_params(nn::Module& m, const GradVec& direction, float eps) {
  auto params = m.parameters();
  DECO_CHECK(params.size() == direction.size(),
             "perturb_params: direction length mismatch");
  for (size_t i = 0; i < params.size(); ++i) {
    DECO_CHECK(params[i].value->numel() == direction[i].numel(),
               "perturb_params: shape mismatch at " + params[i].name);
    params[i].value->add_scaled_(direction[i], eps);
  }
}

float global_norm(const GradVec& g) {
  double acc = 0.0;
  for (const Tensor& t : g) acc += static_cast<double>(t.squared_norm());
  return static_cast<float>(std::sqrt(acc));
}

int64_t total_numel(const GradVec& g) {
  int64_t n = 0;
  for (const Tensor& t : g) n += t.numel();
  return n;
}

}  // namespace deco::condense
