#include "deco/condense/method.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <memory>
#include <ostream>
#include <unordered_set>

#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "deco/nn/convnet.h"
#include "deco/nn/loss.h"
#include "deco/nn/optim.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "deco/tensor/serialize.h"

namespace deco::condense {

namespace {

// Rescales a gradient tensor to unit root-mean-square so the optimizer's
// learning rate is a per-pixel step size, independent of the wildly varying
// raw magnitude of the cosine-distance gradient across random models.
void rms_normalize(Tensor& grad) {
  const float rms =
      grad.norm() / std::sqrt(static_cast<float>(std::max<int64_t>(1, grad.numel())));
  if (rms > 1e-12f) grad.scale_(1.0f / rms);
}

void ensure_velocity(Tensor& velocity, const SyntheticBuffer& buffer) {
  if (velocity.numel() != buffer.images().numel())
    velocity = Tensor(buffer.images().shape());
}

// Momentum-SGD update restricted to the given buffer rows, reading the
// buffer's gradient tensor. Rows not listed keep both image and velocity.
// A grain that batches ~64K scalars of per-row work into one pool chunk; a
// pure function of the row size, so chunking never depends on thread count.
int64_t rows_grain(int64_t per) {
  return std::max<int64_t>(1, (int64_t{1} << 16) / std::max<int64_t>(1, per));
}

void sgd_rows(SyntheticBuffer& buffer, const std::vector<int64_t>& rows,
              float lr, float momentum, Tensor& velocity) {
  const int64_t per =
      buffer.channels() * buffer.height() * buffer.width();
  float* img = buffer.images().data();
  float* vel = velocity.data();
  const float* grd = buffer.grads().data();
  const int64_t n_rows = static_cast<int64_t>(rows.size());
  // Rows are unique, so every chunk updates a disjoint slice of the buffer.
  core::parallel_for(0, n_rows, rows_grain(per), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t r = rows[static_cast<size_t>(i)];
      float* w = img + r * per;
      float* v = vel + r * per;
      const float* g = grd + r * per;
      for (int64_t j = 0; j < per; ++j) {
        v[j] = momentum * v[j] + g[j];
        w[j] -= lr * v[j];
      }
    }
  });
}

// Splits a real segment into per-class index lists under the pseudo-labels.
std::vector<int64_t> real_indices_of_class(const std::vector<int64_t>& y_real,
                                           int64_t cls) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < y_real.size(); ++i)
    if (y_real[i] == cls) out.push_back(static_cast<int64_t>(i));
  return out;
}

std::vector<float> take_weights(const std::vector<float>& w,
                                const std::vector<int64_t>& idx) {
  if (w.empty()) return {};
  std::vector<float> out;
  out.reserve(idx.size());
  for (int64_t i : idx) out.push_back(w[static_cast<size_t>(i)]);
  return out;
}

std::vector<int64_t> take_labels(const std::vector<int64_t>& y,
                                 const std::vector<int64_t>& idx) {
  std::vector<int64_t> out;
  out.reserve(idx.size());
  for (int64_t i : idx) out.push_back(y[static_cast<size_t>(i)]);
  return out;
}

void validate_context(const CondenseContext& ctx) {
  DECO_CHECK(ctx.buffer != nullptr, "CondenseContext: buffer missing");
  DECO_CHECK(ctx.x_real != nullptr && ctx.y_real != nullptr,
             "CondenseContext: real data missing");
  DECO_CHECK(ctx.active_classes != nullptr, "CondenseContext: actives missing");
  DECO_CHECK(ctx.rng != nullptr, "CondenseContext: rng missing");
  DECO_CHECK(ctx.x_real->dim(0) == static_cast<int64_t>(ctx.y_real->size()),
             "CondenseContext: real label count mismatch");
}

// ---- guard support: row-restricted snapshot/restore -------------------------

// Gathers into a caller-owned tensor so the per-iteration snapshot loop can
// reuse its buffers instead of allocating fresh ones each matching step.
void gather_rows_into(const Tensor& full, const std::vector<int64_t>& rows,
                      int64_t per, Tensor& out) {
  const int64_t n_rows = static_cast<int64_t>(rows.size());
  if (out.numel() != n_rows * per) {
    out = Tensor({n_rows, per});
  } else {
    out.reshape({n_rows, per});
  }
  const float* src = full.data();
  float* dst = out.data();
  core::parallel_for(0, n_rows, rows_grain(per), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t r = rows[static_cast<size_t>(i)];
      std::copy(src + r * per, src + (r + 1) * per, dst + i * per);
    }
  });
}

void scatter_rows(Tensor& full, const std::vector<int64_t>& rows,
                  const Tensor& values, int64_t per) {
  const float* src = values.data();
  float* dst = full.data();
  const int64_t n_rows = static_cast<int64_t>(rows.size());
  core::parallel_for(0, n_rows, rows_grain(per), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t r = rows[static_cast<size_t>(i)];
      std::copy(src + i * per, src + (i + 1) * per, dst + r * per);
    }
  });
}

/// Everything one DECO matching step mutates, restricted to the active rows.
struct RowSnapshot {
  Tensor images;
  Tensor velocity;
  Tensor logits;      // soft labels only
  Tensor vel_labels;  // soft labels only; may be empty if not yet allocated
};

bool rows_finite(const Tensor& full, const std::vector<int64_t>& rows,
                 int64_t per) {
  const float* p = full.data();
  const int64_t n_rows = static_cast<int64_t>(rows.size());
  // char partials, not bool: vector<bool> is bit-packed and concurrent chunk
  // writes to neighbouring bits would race.
  return core::parallel_reduce<char>(
             0, n_rows, rows_grain(per), char{1},
             [&](int64_t i0, int64_t i1) -> char {
               for (int64_t i = i0; i < i1; ++i) {
                 const int64_t r = rows[static_cast<size_t>(i)];
                 for (int64_t j = 0; j < per; ++j)
                   if (!std::isfinite(p[r * per + j])) return 0;
               }
               return 1;
             },
             [](char a, char b) -> char { return a & b; }) != 0;
}

// ---- condenser state serialization helpers ---------------------------------

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DECO_CHECK(static_cast<bool>(is), "condenser state truncated");
  return v;
}

void write_optional_tensor(std::ostream& os, const Tensor& t) {
  const uint8_t present = t.numel() > 0 ? 1 : 0;
  write_pod(os, present);
  if (present != 0) write_tensor(os, t);
}

Tensor read_optional_tensor(std::istream& is) {
  const uint8_t present = read_pod<uint8_t>(is);
  return present != 0 ? read_tensor(is) : Tensor();
}

void write_rng_state(std::ostream& os, const RngState& st) {
  for (uint64_t w : st.s) write_pod(os, w);
  write_pod(os, static_cast<uint8_t>(st.has_cached_normal ? 1 : 0));
  write_pod(os, st.cached_normal);
}

RngState read_rng_state(std::istream& is) {
  RngState st;
  for (auto& w : st.s) w = read_pod<uint64_t>(is);
  st.has_cached_normal = read_pod<uint8_t>(is) != 0;
  st.cached_normal = read_pod<double>(is);
  return st;
}

}  // namespace

// ---- DECO ---------------------------------------------------------------------

DecoCondenser::DecoCondenser(const nn::ConvNetConfig& model_config,
                             DecoCondenserConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  scratch_ = std::make_unique<nn::ConvNet>(model_config, rng_);
}

void DecoCondenser::condense(const CondenseContext& ctx) {
  DECO_TRACE_SCOPE("condense/deco");
  validate_context(ctx);
  SyntheticBuffer& buf = *ctx.buffer;
  ensure_velocity(velocity_, buf);
  last_distances_.clear();

  const std::vector<int64_t> active_rows =
      buf.rows_of_classes(*ctx.active_classes);
  if (active_rows.empty() || ctx.x_real->dim(0) == 0) return;
  const std::vector<int64_t> y_syn = buf.gather_labels(active_rows);
  const std::vector<float> w_real =
      ctx.w_real != nullptr ? *ctx.w_real : std::vector<float>{};

  GradientMatcher matcher(*scratch_, config_.fd_scale);
  core::NumericGuard* guard =
      ctx.guard != nullptr && ctx.guard->enabled() ? ctx.guard : nullptr;
  const bool soft = config_.learn_soft_labels && buf.soft_labels_enabled();
  const int64_t per = buf.channels() * buf.height() * buf.width();
  const int64_t C = buf.num_classes();

  // Health verdict for one applied step: finite, non-exploding distance and
  // finite row values (the momentum velocity is covered by the snapshot).
  auto healthy = [&](float dist) {
    if (!guard->distance_healthy(dist)) return false;
    if (!rows_finite(buf.images(), active_rows, per)) return false;
    if (soft && !rows_finite(buf.label_logits(), active_rows, C)) return false;
    return true;
  };
  auto restore = [&](const RowSnapshot& snap) {
    scatter_rows(buf.images(), active_rows, snap.images, per);
    scatter_rows(velocity_, active_rows, snap.velocity, per);
    if (soft) {
      scatter_rows(buf.label_logits(), active_rows, snap.logits, C);
      if (snap.vel_labels.numel() > 0) {
        scatter_rows(velocity_labels_, active_rows, snap.vel_labels, C);
      } else if (velocity_labels_.numel() == buf.label_logits().numel()) {
        // The failed step allocated the label velocity; reset its rows.
        for (int64_t r : active_rows)
          for (int64_t c = 0; c < C; ++c) velocity_labels_[r * C + c] = 0.0f;
      }
    }
  };

  if (!config_.rerandomize_each_iteration) scratch_->reinitialize(rng_);
  RowSnapshot snap;  // hoisted: its buffers are reused every iteration
  for (int64_t l = 0; l < config_.iterations; ++l) {
    // Fresh random model each iteration — the one-step strategy replaces the
    // bilevel inner loop with re-randomization (Section III-C).
    if (config_.rerandomize_each_iteration) scratch_->reinitialize(rng_);

    if (guard != nullptr) {
      gather_rows_into(buf.images(), active_rows, per, snap.images);
      gather_rows_into(velocity_, active_rows, per, snap.velocity);
      if (soft) {
        gather_rows_into(buf.label_logits(), active_rows, C, snap.logits);
        if (velocity_labels_.numel() == buf.label_logits().numel()) {
          gather_rows_into(velocity_labels_, active_rows, C, snap.vel_labels);
        } else {
          // No label velocity yet: restore() keys off an empty snapshot.
          snap.vel_labels = Tensor();
        }
      }
    }

    float dist = run_iteration(ctx, active_rows, y_syn, w_real, matcher, 1.0f);
    if (guard != nullptr && !healthy(dist)) {
      restore(snap);
      guard->note_rollback();
      // One retry: a fresh random model (the divergence is usually a bad
      // draw) with all step sizes backed off.
      scratch_->reinitialize(rng_);
      dist = run_iteration(ctx, active_rows, y_syn, w_real, matcher,
                           guard->config().backoff);
      if (!healthy(dist)) {
        restore(snap);
        guard->note_rollback();
        continue;  // give up on this iteration; the buffer is unchanged
      }
    }
    last_distances_.push_back(dist);
  }
}

float DecoCondenser::run_iteration(const CondenseContext& ctx,
                                   const std::vector<int64_t>& active_rows,
                                   const std::vector<int64_t>& y_syn,
                                   const std::vector<float>& w_real,
                                   GradientMatcher& matcher, float step_scale) {
  {
    static core::telemetry::Counter& c =
        core::telemetry::counter("condense/iterations");
    c.add(1);
  }
  SyntheticBuffer& buf = *ctx.buffer;
  Tensor x_syn = buf.gather(active_rows);
  const bool soft = config_.learn_soft_labels && buf.soft_labels_enabled();
  MatchResult res;
  if (soft) {
    Tensor q_syn = buf.soft_targets(active_rows);
    GradientMatcher::SoftResult sr =
        matcher.match_soft(x_syn, q_syn, *ctx.x_real, *ctx.y_real, w_real);
    res = std::move(sr.base);
    if (config_.normalize_grad) rms_normalize(sr.grad_targets);
    if (velocity_labels_.numel() != buf.label_logits().numel())
      velocity_labels_ = Tensor(buf.label_logits().shape());
    buf.label_grads().zero();
    buf.scatter_add_label_grad_from_targets(active_rows, sr.grad_targets,
                                            1.0f);
    // Momentum SGD on the label logits of the active rows.
    const int64_t C = buf.num_classes();
    for (int64_t r : active_rows) {
      for (int64_t c = 0; c < C; ++c) {
        float& v = velocity_labels_[r * C + c];
        v = config_.momentum_syn * v + buf.label_grads()[r * C + c];
        buf.label_logits()[r * C + c] -= config_.lr_label * step_scale * v;
      }
    }
  } else {
    res = matcher.match(x_syn, y_syn, *ctx.x_real, *ctx.y_real, w_real);
  }
  if (config_.normalize_grad) rms_normalize(res.grad_syn);
  buf.grads().zero();
  buf.scatter_add_grad(active_rows, res.grad_syn, 1.0f);

  std::vector<int64_t> touched = active_rows;
  if (config_.feature_discrimination && config_.alpha > 0.0f &&
      ctx.deployed_model != nullptr && buf.ipc() > 1) {
    const float disc_norm = apply_feature_discrimination(ctx, active_rows);
    // Eq. (9) combines the two gradients with weight α. The raw scales of
    // the two terms differ by orders of magnitude in this substrate (the
    // summed per-row cosine distance produces much larger input gradients
    // than the contrastive loss), so we equalize the norms before applying
    // α — α then expresses the *relative* contribution of feature
    // discrimination, as the paper's sweep (Fig. 4b) assumes. See
    // DESIGN.md, "Key algorithmic decisions".
    if (disc_norm > 1e-12f && disc_scratch_.numel() == buf.grads().numel()) {
      const float match_norm = buf.grads().norm();
      const float scale = config_.alpha * step_scale *
          (match_norm > 1e-12f ? match_norm / disc_norm : 1.0f);
      buf.grads().add_scaled_(disc_scratch_, scale);
    }
    // Note `touched` stays equal to active_rows: the paper is explicit that
    // only synthetic samples of the active classes are updated in a segment
    // (Section III-B), so the contrastive pull on negative-class rows
    // shapes the gradient of the anchors but does not move those rows.
  }

  sgd_rows(buf, touched, config_.lr_syn * step_scale, config_.momentum_syn,
           velocity_);
  buf.clamp_pixels();
  return res.distance;
}

void DecoCondenser::save_state(std::ostream& os) const {
  write_rng_state(os, rng_.state());
  write_optional_tensor(os, velocity_);
  write_optional_tensor(os, velocity_labels_);
  DECO_CHECK(static_cast<bool>(os), "DecoCondenser::save_state: write failed");
}

void DecoCondenser::load_state(std::istream& is) {
  rng_.set_state(read_rng_state(is));
  velocity_ = read_optional_tensor(is);
  velocity_labels_ = read_optional_tensor(is);
}

float DecoCondenser::apply_feature_discrimination(
    const CondenseContext& ctx, const std::vector<int64_t>& active_rows) {
  SyntheticBuffer& buf = *ctx.buffer;
  // Negative classes are drawn from the condenser's own generator, not the
  // learner's: enabling/disabling feature discrimination must not perturb
  // the random stream of the rest of the pipeline (keeps α sweeps paired).
  Rng& rng = rng_;
  const int64_t cap = std::max<int64_t>(2, config_.contrastive_cap);

  // Anchors: active rows (capped per class). Negatives: one random other
  // class per anchor, with up to `cap` of its rows embedded.
  std::vector<int64_t> sel;           // buffer rows to embed
  std::unordered_set<int64_t> seen;
  auto push_row = [&](int64_t r) {
    if (seen.insert(r).second) sel.push_back(r);
  };

  std::vector<int64_t> anchors_rows;
  for (int64_t cls : *ctx.active_classes) {
    auto rows = buf.rows_of_class(cls);
    const int64_t take_n = std::min<int64_t>(cap, static_cast<int64_t>(rows.size()));
    for (int64_t k = 0; k < take_n; ++k) {
      anchors_rows.push_back(rows[static_cast<size_t>(k)]);
      push_row(rows[static_cast<size_t>(k)]);
    }
  }

  std::vector<int64_t> neg_class_of_anchor;
  neg_class_of_anchor.reserve(anchors_rows.size());
  for (int64_t r : anchors_rows) {
    const int64_t yi = buf.label(r);
    int64_t neg = rng.uniform_int(buf.num_classes());
    while (neg == yi) neg = rng.uniform_int(buf.num_classes());
    neg_class_of_anchor.push_back(neg);
    auto rows = buf.rows_of_class(neg);
    const int64_t take_n = std::min<int64_t>(cap, static_cast<int64_t>(rows.size()));
    for (int64_t k = 0; k < take_n; ++k) push_row(rows[static_cast<size_t>(k)]);
  }
  if (anchors_rows.empty()) {
    last_disc_rows_.clear();
    return 0.0f;
  }

  // Local index mapping.
  std::vector<int64_t> local_labels;
  local_labels.reserve(sel.size());
  for (int64_t r : sel) local_labels.push_back(buf.label(r));
  std::vector<int64_t> anchor_local;
  anchor_local.reserve(anchors_rows.size());
  for (int64_t r : anchors_rows) {
    const auto it = std::find(sel.begin(), sel.end(), r);
    anchor_local.push_back(std::distance(sel.begin(), it));
  }

  Tensor x_sel = buf.gather(sel);
  Tensor emb = ctx.deployed_model->embed(x_sel);
  auto disc = nn::feature_discrimination_loss(emb, local_labels, anchor_local,
                                              neg_class_of_anchor, config_.tau);
  Tensor input_grads = ctx.deployed_model->backward_from_embedding(
      disc.grad_embeddings);
  ctx.deployed_model->zero_grad();  // discard parameter grads: S is the target

  // Stage the discrimination gradient separately so the caller can equalize
  // its scale against the matching gradient before weighting by α. Only
  // ACTIVE rows receive gradient (Section III-B restricts updates to the
  // active classes); the other embedded rows only shape the loss.
  if (disc_scratch_.numel() != buf.grads().numel())
    disc_scratch_ = Tensor(buf.grads().shape());
  disc_scratch_.zero();
  std::unordered_set<int64_t> active_set(active_rows.begin(), active_rows.end());
  const int64_t per = buf.channels() * buf.height() * buf.width();
  const float* src = input_grads.data();
  float* dst = disc_scratch_.data();
  for (size_t i = 0; i < sel.size(); ++i) {
    if (active_set.find(sel[i]) == active_set.end()) continue;
    std::copy(src + static_cast<int64_t>(i) * per,
              src + static_cast<int64_t>(i + 1) * per, dst + sel[i] * per);
  }
  last_disc_rows_ = std::move(sel);
  return disc_scratch_.norm();
}

// ---- DC / DSA -------------------------------------------------------------------

BilevelCondenser::BilevelCondenser(const nn::ConvNetConfig& model_config,
                                   BilevelConfig config, uint64_t seed)
    : config_(config), rng_(seed), aug_(config.dsa_strategy) {
  scratch_ = std::make_unique<nn::ConvNet>(model_config, rng_);
}

void BilevelCondenser::condense(const CondenseContext& ctx) {
  DECO_TRACE_SCOPE("condense/bilevel");
  validate_context(ctx);
  SyntheticBuffer& buf = *ctx.buffer;
  ensure_velocity(velocity_, buf);
  if (ctx.active_classes->empty() || ctx.x_real->dim(0) == 0) return;

  const std::vector<float> w_real =
      ctx.w_real != nullptr ? *ctx.w_real : std::vector<float>{};

  for (int64_t k = 0; k < config_.outer_loops; ++k) {
    scratch_->reinitialize(rng_);
    nn::SgdMomentum opt_model(*scratch_, config_.lr_model, 0.9f, 5e-4f);

    for (int64_t t = 0; t < config_.inner_epochs; ++t) {
      // Per-class matching, as in the original DC/DSA algorithms. The class
      // steps only touch their own buffer rows (plus an idempotent clamp),
      // so the matching passes fan out across the pool, each on its own
      // clone of the re-randomized scratch model. Augmentation params are
      // drawn serially first in class order (fixed rng stream) and the
      // buffer updates are applied serially in ascending class order —
      // bitwise identical for every thread count.
      struct ClassWork {
        std::vector<int64_t> rows;
        std::vector<int64_t> y_syn;
        Tensor x_syn;
        Tensor x_real_c;
        std::vector<int64_t> y_real_c;
        std::vector<float> w_real_c;
        augment::AugmentParams params;
        Tensor grad;  // filled by the parallel matching stage
        bool valid = false;
      };
      const int64_t n_cls = static_cast<int64_t>(ctx.active_classes->size());
      std::vector<ClassWork> work(static_cast<size_t>(n_cls));
      for (int64_t ci = 0; ci < n_cls; ++ci) {
        ClassWork& cw = work[static_cast<size_t>(ci)];
        const int64_t cls = (*ctx.active_classes)[static_cast<size_t>(ci)];
        const std::vector<int64_t> real_idx =
            real_indices_of_class(*ctx.y_real, cls);
        if (real_idx.empty()) continue;
        cw.rows = buf.rows_of_class(cls);
        cw.x_syn = buf.gather(cw.rows);
        cw.y_syn = buf.gather_labels(cw.rows);
        cw.x_real_c = take(*ctx.x_real, real_idx);
        cw.y_real_c = take_labels(*ctx.y_real, real_idx);
        cw.w_real_c = take_weights(w_real, real_idx);
        if (aug_.enabled())
          cw.params = aug_.sample(rng_, cw.x_syn.dim(2), cw.x_syn.dim(3));
        cw.valid = true;
      }
      core::parallel_for(0, n_cls, 1, [&](int64_t c0, int64_t c1) {
        for (int64_t ci = c0; ci < c1; ++ci) {
          ClassWork& cw = work[static_cast<size_t>(ci)];
          if (!cw.valid) continue;
          DECO_TRACE_SCOPE("condense/class_match");
          std::unique_ptr<nn::ConvNet> local = nn::clone_convnet(*scratch_);
          GradientMatcher m(*local, config_.fd_scale);
          MatchResult res =
              aug_.enabled()
                  ? m.match_with_params(cw.x_syn, cw.y_syn, cw.x_real_c,
                                        cw.y_real_c, cw.w_real_c, aug_,
                                        cw.params)
                  : m.match(cw.x_syn, cw.y_syn, cw.x_real_c, cw.y_real_c,
                            cw.w_real_c);
          rms_normalize(res.grad_syn);
          cw.grad = std::move(res.grad_syn);
        }
      });
      for (int64_t ci = 0; ci < n_cls; ++ci) {
        ClassWork& cw = work[static_cast<size_t>(ci)];
        if (!cw.valid) continue;
        buf.grads().zero();
        buf.scatter_add_grad(cw.rows, cw.grad, 1.0f);
        sgd_rows(buf, cw.rows, config_.lr_syn, config_.momentum_syn,
                 velocity_);
        buf.clamp_pixels();
      }

      // Inner-loop model training on S — the bilevel step DECO removes.
      for (int64_t s = 0; s < config_.model_steps; ++s) {
        const int64_t batch_n = std::min<int64_t>(32, buf.size());
        std::vector<int64_t> rows =
            ctx.rng->sample_without_replacement(buf.size(), batch_n);
        Tensor xb = buf.gather(rows);
        if (aug_.enabled()) {
          const auto p = aug_.sample(rng_, xb.dim(2), xb.dim(3));
          xb = aug_.forward(xb, p);
        }
        const std::vector<int64_t> yb = buf.gather_labels(rows);
        scratch_->zero_grad();
        Tensor logits = scratch_->forward(xb);
        auto ce = nn::weighted_cross_entropy(logits, yb);
        scratch_->backward(ce.grad_logits);
        opt_model.step();
        scratch_->zero_grad();
      }
    }
  }
}

// ---- DM ---------------------------------------------------------------------------

DmCondenser::DmCondenser(const nn::ConvNetConfig& model_config, DmConfig config,
                         uint64_t seed)
    : config_(config), rng_(seed) {
  scratch_ = std::make_unique<nn::ConvNet>(model_config, rng_);
}

void DmCondenser::condense(const CondenseContext& ctx) {
  DECO_TRACE_SCOPE("condense/dm");
  validate_context(ctx);
  SyntheticBuffer& buf = *ctx.buffer;
  ensure_velocity(velocity_, buf);
  if (ctx.active_classes->empty() || ctx.x_real->dim(0) == 0) return;

  for (int64_t l = 0; l < config_.iterations; ++l) {
    scratch_->reinitialize(rng_);
    // Per-class mean-matching under the same random encoder. Each class task
    // embeds and backprops on its own clone of the encoder, so the classes
    // fan out across the pool; updates are applied serially in ascending
    // class order, keeping results bitwise identical for every thread count.
    struct ClassWork {
      std::vector<int64_t> rows;
      Tensor x_real_c;
      Tensor x_syn;
      Tensor grad;  // filled by the parallel stage
      bool valid = false;
    };
    const int64_t n_cls = static_cast<int64_t>(ctx.active_classes->size());
    std::vector<ClassWork> work(static_cast<size_t>(n_cls));
    for (int64_t ci = 0; ci < n_cls; ++ci) {
      ClassWork& cw = work[static_cast<size_t>(ci)];
      const int64_t cls = (*ctx.active_classes)[static_cast<size_t>(ci)];
      const std::vector<int64_t> real_idx =
          real_indices_of_class(*ctx.y_real, cls);
      if (real_idx.empty()) continue;
      cw.rows = buf.rows_of_class(cls);
      cw.x_real_c = take(*ctx.x_real, real_idx);
      cw.x_syn = buf.gather(cw.rows);
      cw.valid = true;
    }
    core::parallel_for(0, n_cls, 1, [&](int64_t c0, int64_t c1) {
      for (int64_t ci = c0; ci < c1; ++ci) {
        ClassWork& cw = work[static_cast<size_t>(ci)];
        if (!cw.valid) continue;
        DECO_TRACE_SCOPE("condense/class_embed");
        std::unique_ptr<nn::ConvNet> local = nn::clone_convnet(*scratch_);

        // Class-mean embedding of the real data under the random encoder.
        Tensor emb_real = local->embed(cw.x_real_c);
        const int64_t d = emb_real.dim(1);
        const int64_t n_real = emb_real.dim(0);
        Tensor mean_real({d});
        for (int64_t i = 0; i < n_real; ++i)
          for (int64_t j = 0; j < d; ++j) mean_real[j] += emb_real.at2(i, j);
        mean_real.scale_(1.0f / static_cast<float>(n_real));

        Tensor emb_syn = local->embed(cw.x_syn);
        const int64_t n_syn = emb_syn.dim(0);
        Tensor mean_syn({d});
        for (int64_t i = 0; i < n_syn; ++i)
          for (int64_t j = 0; j < d; ++j) mean_syn[j] += emb_syn.at2(i, j);
        mean_syn.scale_(1.0f / static_cast<float>(n_syn));

        // L = ‖mean_syn − mean_real‖²; dL/demb_syn[i] = 2·diff/n_syn.
        Tensor diff = mean_syn - mean_real;
        Tensor grad_emb({n_syn, d});
        const float scale = 2.0f / static_cast<float>(n_syn);
        for (int64_t i = 0; i < n_syn; ++i)
          for (int64_t j = 0; j < d; ++j) grad_emb.at2(i, j) = scale * diff[j];

        Tensor input_grads = local->backward_from_embedding(grad_emb);
        rms_normalize(input_grads);
        cw.grad = std::move(input_grads);
      }
    });
    for (int64_t ci = 0; ci < n_cls; ++ci) {
      ClassWork& cw = work[static_cast<size_t>(ci)];
      if (!cw.valid) continue;
      buf.grads().zero();
      buf.scatter_add_grad(cw.rows, cw.grad, 1.0f);
      sgd_rows(buf, cw.rows, config_.lr_syn, config_.momentum_syn, velocity_);
      buf.clamp_pixels();
    }
  }
}

}  // namespace deco::condense
