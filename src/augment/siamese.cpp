#include "deco/augment/siamese.h"

#include <cmath>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco::augment {

namespace {

// Applies the 2x2 inverse-pose matrix around the image center:
// src = M (p - c) + c. Used by both scale and rotate.
struct Affine {
  float m00, m01, m10, m11;
};

Affine affine_for(const AugmentParams& p) {
  if (p.kind == OpKind::kScale) {
    const float inv = 1.0f / p.scale;
    return {inv, 0.0f, 0.0f, inv};
  }
  // Rotation by θ in the output maps back by R(-θ) in the input.
  const float c = std::cos(p.rotate), s = std::sin(p.rotate);
  return {c, s, -s, c};
}

}  // namespace

SiameseAugment::SiameseAugment(const std::string& strategy) {
  std::stringstream ss(strategy);
  std::string tok;
  while (std::getline(ss, tok, '_')) {
    if (tok == "flip") ops_.push_back(OpKind::kFlip);
    else if (tok == "shift" || tok == "crop") ops_.push_back(OpKind::kShift);
    else if (tok == "scale") ops_.push_back(OpKind::kScale);
    else if (tok == "rotate") ops_.push_back(OpKind::kRotate);
    else if (tok == "brightness") ops_.push_back(OpKind::kBrightness);
    else if (tok == "saturation") ops_.push_back(OpKind::kSaturation);
    else if (tok == "contrast") ops_.push_back(OpKind::kContrast);
    else if (tok == "cutout") ops_.push_back(OpKind::kCutout);
    else if (tok == "color") {
      ops_.push_back(OpKind::kBrightness);
      ops_.push_back(OpKind::kSaturation);
      ops_.push_back(OpKind::kContrast);
    } else if (!tok.empty()) {
      DECO_CHECK(false, "SiameseAugment: unknown op '" + tok + "'");
    }
  }
}

AugmentParams SiameseAugment::sample(Rng& rng, int64_t height,
                                     int64_t width) const {
  AugmentParams p;
  if (ops_.empty()) return p;
  p.kind = ops_[static_cast<size_t>(rng.uniform_int(
      static_cast<int64_t>(ops_.size())))];
  switch (p.kind) {
    case OpKind::kFlip:
      p.flip = rng.bernoulli(0.5);
      break;
    case OpKind::kShift: {
      const int64_t max_shift = std::max<int64_t>(1, width / 8);
      p.shift_x = rng.uniform_int(2 * max_shift + 1) - max_shift;
      p.shift_y = rng.uniform_int(2 * max_shift + 1) - max_shift;
      break;
    }
    case OpKind::kScale:
      p.scale = static_cast<float>(rng.uniform(0.8, 1.2));
      break;
    case OpKind::kRotate:
      p.rotate = static_cast<float>(rng.uniform(-0.26, 0.26));  // ±15°
      break;
    case OpKind::kBrightness:
      p.brightness = static_cast<float>(rng.uniform(-0.25, 0.25));
      break;
    case OpKind::kSaturation:
      p.saturation = static_cast<float>(rng.uniform(0.3, 1.7));
      break;
    case OpKind::kContrast:
      p.contrast = static_cast<float>(rng.uniform(0.5, 1.5));
      break;
    case OpKind::kCutout: {
      p.cutout_size = std::max<int64_t>(1, height / 3);
      p.cutout_x = rng.uniform_int(std::max<int64_t>(1, width - p.cutout_size + 1));
      p.cutout_y = rng.uniform_int(std::max<int64_t>(1, height - p.cutout_size + 1));
      break;
    }
    case OpKind::kNone:
      break;
  }
  return p;
}

Tensor SiameseAugment::forward(const Tensor& batch,
                               const AugmentParams& p) const {
  DECO_CHECK(batch.ndim() == 4, "SiameseAugment: batch must be NCHW");
  const int64_t N = batch.dim(0), C = batch.dim(1), H = batch.dim(2),
                W = batch.dim(3);
  const float* pi = batch.data();

  switch (p.kind) {
    case OpKind::kNone:
      return batch;
    case OpKind::kFlip: {
      if (!p.flip) return batch;
      Tensor out(batch.shape());
      float* po = out.data();
      for (int64_t nc = 0; nc < N * C; ++nc)
        for (int64_t y = 0; y < H; ++y)
          for (int64_t x = 0; x < W; ++x)
            po[(nc * H + y) * W + x] = pi[(nc * H + y) * W + (W - 1 - x)];
      return out;
    }
    case OpKind::kShift: {
      Tensor out(batch.shape());
      float* po = out.data();
      for (int64_t nc = 0; nc < N * C; ++nc) {
        for (int64_t y = 0; y < H; ++y) {
          const int64_t sy = y - p.shift_y;
          for (int64_t x = 0; x < W; ++x) {
            const int64_t sx = x - p.shift_x;
            po[(nc * H + y) * W + x] =
                (sy >= 0 && sy < H && sx >= 0 && sx < W)
                    ? pi[(nc * H + sy) * W + sx]
                    : 0.0f;
          }
        }
      }
      return out;
    }
    case OpKind::kScale:
    case OpKind::kRotate: {
      const Affine a = affine_for(p);
      const float cy = (static_cast<float>(H) - 1.0f) / 2.0f;
      const float cx = (static_cast<float>(W) - 1.0f) / 2.0f;
      Tensor out(batch.shape());
      float* po = out.data();
      for (int64_t nc = 0; nc < N * C; ++nc) {
        const float* img = pi + nc * H * W;
        float* dst = po + nc * H * W;
        for (int64_t y = 0; y < H; ++y) {
          for (int64_t x = 0; x < W; ++x) {
            const float dy = static_cast<float>(y) - cy;
            const float dx = static_cast<float>(x) - cx;
            const float sy = a.m10 * dx + a.m11 * dy + cy;
            const float sx = a.m00 * dx + a.m01 * dy + cx;
            const int64_t y0 = static_cast<int64_t>(std::floor(sy));
            const int64_t x0 = static_cast<int64_t>(std::floor(sx));
            const float fy = sy - static_cast<float>(y0);
            const float fx = sx - static_cast<float>(x0);
            float v = 0.0f;
            for (int dyi = 0; dyi <= 1; ++dyi) {
              for (int dxi = 0; dxi <= 1; ++dxi) {
                const int64_t yy = y0 + dyi, xx = x0 + dxi;
                if (yy < 0 || yy >= H || xx < 0 || xx >= W) continue;
                const float wgt = (dyi ? fy : 1.0f - fy) * (dxi ? fx : 1.0f - fx);
                v += wgt * img[yy * W + xx];
              }
            }
            dst[y * W + x] = v;
          }
        }
      }
      return out;
    }
    case OpKind::kBrightness: {
      Tensor out = batch;
      out.add_scalar_(p.brightness);
      return out;
    }
    case OpKind::kSaturation: {
      // y_c = s·x_c + (1−s)·mean_channels(x)
      Tensor out(batch.shape());
      float* po = out.data();
      const int64_t plane = H * W;
      for (int64_t n = 0; n < N; ++n) {
        const float* img = pi + n * C * plane;
        float* dst = po + n * C * plane;
        for (int64_t i = 0; i < plane; ++i) {
          float m = 0.0f;
          for (int64_t c = 0; c < C; ++c) m += img[c * plane + i];
          m /= static_cast<float>(C);
          for (int64_t c = 0; c < C; ++c)
            dst[c * plane + i] =
                p.saturation * img[c * plane + i] + (1.0f - p.saturation) * m;
        }
      }
      return out;
    }
    case OpKind::kContrast: {
      // y = c·x + (1−c)·mean_image(x)
      Tensor out(batch.shape());
      float* po = out.data();
      const int64_t per = C * H * W;
      for (int64_t n = 0; n < N; ++n) {
        const float* img = pi + n * per;
        float* dst = po + n * per;
        double mu = 0.0;
        for (int64_t i = 0; i < per; ++i) mu += img[i];
        const float m = static_cast<float>(mu / per);
        for (int64_t i = 0; i < per; ++i)
          dst[i] = p.contrast * img[i] + (1.0f - p.contrast) * m;
      }
      return out;
    }
    case OpKind::kCutout: {
      Tensor out = batch;
      float* po = out.data();
      for (int64_t nc = 0; nc < N * C; ++nc)
        for (int64_t y = p.cutout_y;
             y < std::min(H, p.cutout_y + p.cutout_size); ++y)
          for (int64_t x = p.cutout_x;
               x < std::min(W, p.cutout_x + p.cutout_size); ++x)
            po[(nc * H + y) * W + x] = 0.0f;
      return out;
    }
  }
  return batch;
}

Tensor SiameseAugment::backward(const Tensor& grad_output,
                                const AugmentParams& p) const {
  DECO_CHECK(grad_output.ndim() == 4, "SiameseAugment: grad must be NCHW");
  const int64_t N = grad_output.dim(0), C = grad_output.dim(1),
                H = grad_output.dim(2), W = grad_output.dim(3);
  const float* pg = grad_output.data();

  switch (p.kind) {
    case OpKind::kNone:
      return grad_output;
    case OpKind::kFlip: {
      if (!p.flip) return grad_output;
      AugmentParams q = p;  // flip is its own adjoint
      return forward(grad_output, q);
    }
    case OpKind::kShift: {
      // Adjoint of shift by (sx, sy) is shift by (−sx, −sy).
      AugmentParams q = p;
      q.shift_x = -p.shift_x;
      q.shift_y = -p.shift_y;
      return forward(grad_output, q);
    }
    case OpKind::kScale:
    case OpKind::kRotate: {
      // Scatter each output gradient into its 4 bilinear source pixels.
      const Affine a = affine_for(p);
      const float cy = (static_cast<float>(H) - 1.0f) / 2.0f;
      const float cx = (static_cast<float>(W) - 1.0f) / 2.0f;
      Tensor grad_in(grad_output.shape());
      float* po = grad_in.data();
      for (int64_t nc = 0; nc < N * C; ++nc) {
        const float* src = pg + nc * H * W;
        float* dst = po + nc * H * W;
        for (int64_t y = 0; y < H; ++y) {
          for (int64_t x = 0; x < W; ++x) {
            const float g = src[y * W + x];
            if (g == 0.0f) continue;
            const float dy = static_cast<float>(y) - cy;
            const float dx = static_cast<float>(x) - cx;
            const float sy = a.m10 * dx + a.m11 * dy + cy;
            const float sx = a.m00 * dx + a.m01 * dy + cx;
            const int64_t y0 = static_cast<int64_t>(std::floor(sy));
            const int64_t x0 = static_cast<int64_t>(std::floor(sx));
            const float fy = sy - static_cast<float>(y0);
            const float fx = sx - static_cast<float>(x0);
            for (int dyi = 0; dyi <= 1; ++dyi) {
              for (int dxi = 0; dxi <= 1; ++dxi) {
                const int64_t yy = y0 + dyi, xx = x0 + dxi;
                if (yy < 0 || yy >= H || xx < 0 || xx >= W) continue;
                const float wgt = (dyi ? fy : 1.0f - fy) * (dxi ? fx : 1.0f - fx);
                dst[yy * W + xx] += wgt * g;
              }
            }
          }
        }
      }
      return grad_in;
    }
    case OpKind::kBrightness:
      return grad_output;  // additive offset: identity adjoint
    case OpKind::kSaturation: {
      // Symmetric linear map: same formula applied to the gradient.
      return forward(grad_output, p);
    }
    case OpKind::kContrast: {
      return forward(grad_output, p);
    }
    case OpKind::kCutout: {
      Tensor grad_in = grad_output;
      float* po = grad_in.data();
      for (int64_t nc = 0; nc < N * C; ++nc)
        for (int64_t y = p.cutout_y;
             y < std::min(H, p.cutout_y + p.cutout_size); ++y)
          for (int64_t x = p.cutout_x;
               x < std::min(W, p.cutout_x + p.cutout_size); ++x)
            po[(nc * H + y) * W + x] = 0.0f;
      return grad_in;
    }
  }
  return grad_output;
}

}  // namespace deco::augment
