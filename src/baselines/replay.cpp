#include "deco/baselines/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::baselines {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

float cosine(const Tensor& a, const Tensor& b) { return cosine_similarity(a, b); }

// Greedy k-center: returns the indices of `k` points that greedily minimize
// the maximum distance of any candidate to its nearest selected center.
// Seeded with the point closest to the candidate centroid for determinism.
std::vector<size_t> greedy_k_center(const std::vector<const Tensor*>& feats,
                                    size_t k) {
  const size_t n = feats.size();
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  const int64_t d = feats[0]->numel();
  Tensor centroid({d});
  for (const Tensor* f : feats) centroid.add_(*f);
  centroid.scale_(1.0f / static_cast<float>(n));

  std::vector<size_t> selected;
  size_t first = 0;
  float best = std::numeric_limits<float>::max();
  for (size_t i = 0; i < n; ++i) {
    Tensor diff = *feats[i] - centroid;
    const float dist = diff.squared_norm();
    if (dist < best) {
      best = dist;
      first = i;
    }
  }
  selected.push_back(first);

  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  while (selected.size() < k) {
    const Tensor* latest = feats[selected.back()];
    size_t farthest = 0;
    float far_val = -1.0f;
    for (size_t i = 0; i < n; ++i) {
      Tensor diff = *feats[i] - *latest;
      min_dist[i] = std::min(min_dist[i], diff.squared_norm());
      if (min_dist[i] > far_val &&
          std::find(selected.begin(), selected.end(), i) == selected.end()) {
        far_val = min_dist[i];
        farthest = i;
      }
    }
    selected.push_back(farthest);
  }
  return selected;
}

}  // namespace

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kRandom: return "random";
    case Strategy::kFifo: return "fifo";
    case Strategy::kSelectiveBp: return "selective_bp";
    case Strategy::kKCenter: return "kcenter";
    case Strategy::kGssGreedy: return "gss";
  }
  return "unknown";
}

Strategy strategy_from_name(const std::string& name) {
  if (name == "random") return Strategy::kRandom;
  if (name == "fifo") return Strategy::kFifo;
  if (name == "selective_bp") return Strategy::kSelectiveBp;
  if (name == "kcenter") return Strategy::kKCenter;
  if (name == "gss") return Strategy::kGssGreedy;
  DECO_CHECK(false, "unknown baseline strategy '" + name + "'");
  return Strategy::kRandom;
}

ReplayBuffer::ReplayBuffer(int64_t num_classes, int64_t ipc, Strategy strategy,
                           DType dtype, int64_t block)
    : num_classes_(num_classes),
      ipc_(ipc),
      strategy_(strategy),
      dtype_(dtype),
      block_(block) {
  DECO_CHECK(num_classes >= 1 && ipc >= 1, "ReplayBuffer: bad dimensions");
  StoragePolicy p;
  p.cache_dtype = dtype;
  p.block = block;
  p.validate();
  slots_.resize(static_cast<size_t>(num_classes));
  seen_per_class_.assign(static_cast<size_t>(num_classes), 0);
}

int64_t ReplayBuffer::size() const {
  int64_t n = 0;
  for (const auto& s : slots_) n += static_cast<int64_t>(s.size());
  return n;
}

void ReplayBuffer::offer(StoredSample sample, Rng& rng) {
  const int64_t cls = sample.label;
  DECO_CHECK(cls >= 0 && cls < num_classes_, "ReplayBuffer: label range");
  if (dtype_ != DType::kF32 && sample.image.numel() > 0) {
    // Quantize at the door: the row is stored (and counted) encoded, and
    // the fp32 pixels are dropped immediately.
    sample.stored = QTensor::encode(sample.image, dtype_, block_);
    sample.image = Tensor();
  }
  auto& slot = slots_[static_cast<size_t>(cls)];
  ++seen_per_class_[static_cast<size_t>(cls)];

  if (static_cast<int64_t>(slot.size()) < ipc_) {
    slot.push_back(std::move(sample));
    return;
  }

  switch (strategy_) {
    case Strategy::kRandom: {
      // Vitter's reservoir: keep each of the n seen samples with prob ipc/n.
      const int64_t n = seen_per_class_[static_cast<size_t>(cls)];
      const int64_t j = rng.uniform_int(n);
      if (j < ipc_) slot[static_cast<size_t>(j)] = std::move(sample);
      break;
    }
    case Strategy::kFifo: {
      size_t oldest = 0;
      for (size_t i = 1; i < slot.size(); ++i)
        if (slot[i].arrival < slot[oldest].arrival) oldest = i;
      slot[oldest] = std::move(sample);
      break;
    }
    case Strategy::kSelectiveBp: {
      // Keep hard (low-confidence) samples: evict the most confident stored
      // sample if the newcomer is less confident than it.
      size_t most_conf = 0;
      for (size_t i = 1; i < slot.size(); ++i)
        if (slot[i].confidence > slot[most_conf].confidence) most_conf = i;
      if (sample.confidence < slot[most_conf].confidence)
        slot[most_conf] = std::move(sample);
      break;
    }
    case Strategy::kKCenter: {
      DECO_CHECK(sample.feature.numel() > 0, "K-Center requires features");
      std::vector<const Tensor*> feats;
      feats.reserve(slot.size() + 1);
      for (const auto& s : slot) feats.push_back(&s.feature);
      feats.push_back(&sample.feature);
      const auto keep = greedy_k_center(feats, static_cast<size_t>(ipc_));
      // If the newcomer (index slot.size()) was selected, it replaces the
      // one stored sample the cover dropped.
      const size_t newcomer = slot.size();
      if (std::find(keep.begin(), keep.end(), newcomer) == keep.end()) break;
      std::vector<bool> kept(slot.size(), false);
      for (size_t i : keep)
        if (i < slot.size()) kept[i] = true;
      for (size_t i = 0; i < slot.size(); ++i) {
        if (!kept[i]) {
          slot[i] = std::move(sample);
          break;
        }
      }
      break;
    }
    case Strategy::kGssGreedy: {
      DECO_CHECK(sample.gradient.numel() > 0, "GSS requires gradient sketches");
      // Max cosine similarity of the newcomer to the stored gradients, and of
      // each stored gradient to its stored peers.
      float new_max = -1.0f;
      for (const auto& s : slot) new_max = std::max(new_max, cosine(sample.gradient, s.gradient));
      size_t victim = 0;
      float victim_sim = -1.0f;
      for (size_t i = 0; i < slot.size(); ++i) {
        float mx = -1.0f;
        for (size_t j = 0; j < slot.size(); ++j) {
          if (i == j) continue;
          mx = std::max(mx, cosine(slot[i].gradient, slot[j].gradient));
        }
        if (mx > victim_sim) {
          victim_sim = mx;
          victim = i;
        }
      }
      // Replace the most redundant stored sample if the newcomer is more
      // diverse than that sample is.
      if (new_max < victim_sim) slot[victim] = std::move(sample);
      break;
    }
  }
}

Tensor ReplayBuffer::all_images() const {
  std::vector<Tensor> items;
  for (const auto& slot : slots_)
    for (const auto& s : slot)
      items.push_back(dtype_ == DType::kF32 ? s.image : s.stored.decode());
  DECO_CHECK(!items.empty(), "ReplayBuffer::all_images: buffer empty");
  return stack(items);
}

int64_t ReplayBuffer::image_stored_bytes() const {
  int64_t bytes = 0;
  for (const auto& slot : slots_)
    for (const auto& s : slot)
      bytes += dtype_ == DType::kF32
                   ? s.image.numel() * static_cast<int64_t>(sizeof(float))
                   : s.stored.stored_bytes();
  return bytes;
}

int64_t ReplayBuffer::image_logical_bytes() const {
  int64_t floats = 0;
  for (const auto& slot : slots_)
    for (const auto& s : slot)
      floats += dtype_ == DType::kF32 ? s.image.numel() : s.stored.numel();
  return floats * static_cast<int64_t>(sizeof(float));
}

std::vector<int64_t> ReplayBuffer::all_labels() const {
  std::vector<int64_t> out;
  for (const auto& slot : slots_)
    for (const auto& s : slot) out.push_back(s.label);
  return out;
}

// ---- BaselineLearner ------------------------------------------------------------

BaselineLearner::BaselineLearner(nn::ConvNet& model, Strategy strategy,
                                 BaselineConfig config, uint64_t seed)
    : model_(model),
      strategy_(strategy),
      config_(config),
      rng_(seed),
      buffer_(model.config().num_classes, config.ipc, strategy,
              config.storage.cache_dtype, config.storage.block) {}

void BaselineLearner::init_buffer_from(const data::Dataset& labeled) {
  const bool needs_feats =
      strategy_ == Strategy::kKCenter || strategy_ == Strategy::kGssGreedy;
  for (int64_t cls = 0; cls < buffer_.num_classes(); ++cls) {
    auto pool = labeled.indices_of_class(cls);
    rng_.shuffle(pool);
    const int64_t take_n =
        std::min<int64_t>(config_.ipc, static_cast<int64_t>(pool.size()));
    for (int64_t k = 0; k < take_n; ++k) {
      StoredSample s;
      s.image = labeled.image(pool[static_cast<size_t>(k)]);
      s.label = cls;
      s.confidence = 1.0f;  // ground-truth labeled
      s.arrival = arrivals_++;
      if (needs_feats) {
        Tensor batch = s.image.reshaped({1, labeled.channels(),
                                         labeled.height(), labeled.width()});
        Tensor logits = model_.forward(batch);
        // Feature and gradient sketches are described in observe_segment.
        Tensor emb = model_.embed(batch);
        s.feature = emb.reshaped({emb.numel()});
        Tensor probs = softmax_rows(logits);
        Tensor g({probs.numel()});
        for (int64_t c = 0; c < probs.dim(1); ++c)
          g[c] = probs.at2(0, c) - (c == cls ? 1.0f : 0.0f);
        // Last-layer gradient sketch: (p − y) ⊗ features, flattened.
        Tensor sketch({g.numel() * s.feature.numel()});
        for (int64_t c = 0; c < g.numel(); ++c)
          for (int64_t j = 0; j < s.feature.numel(); ++j)
            sketch[c * s.feature.numel() + j] = g[c] * s.feature[j];
        s.gradient = std::move(sketch);
      }
      buffer_.offer(std::move(s), rng_);
    }
  }
}

core::SegmentReport BaselineLearner::observe_segment(const Tensor& images) {
  // Plain pseudo-labels (threshold 0: no majority-voting filter).
  core::PseudoLabelResult pl = core::pseudo_label_segment(model_, images, 0.0f);

  core::SegmentReport report;
  report.pseudo_labels = pl.labels;
  report.confidences = pl.confidences;
  report.retained = pl.retained;
  report.active_class_count = static_cast<int64_t>(pl.active_classes.size());

  const bool needs_feats =
      strategy_ == Strategy::kKCenter || strategy_ == Strategy::kGssGreedy;
  Tensor emb, probs;
  if (needs_feats) {
    emb = model_.embed(images);
    Tensor logits = model_.forward(images);
    probs = softmax_rows(logits);
  }

  const double t0 = now_seconds();
  const int64_t n = images.dim(0);
  const int64_t per = images.numel() / n;
  for (int64_t i = 0; i < n; ++i) {
    StoredSample s;
    s.image = Tensor({images.dim(1), images.dim(2), images.dim(3)});
    std::copy(images.data() + i * per, images.data() + (i + 1) * per,
              s.image.data());
    s.label = pl.labels[static_cast<size_t>(i)];
    s.confidence = pl.confidences[static_cast<size_t>(i)];
    s.arrival = arrivals_++;
    if (needs_feats) {
      const int64_t d = emb.dim(1);
      s.feature = Tensor({d});
      std::copy(emb.data() + i * d, emb.data() + (i + 1) * d, s.feature.data());
      const int64_t c_count = probs.dim(1);
      Tensor sketch({c_count * d});
      for (int64_t c = 0; c < c_count; ++c) {
        const float g = probs.at2(i, c) - (c == s.label ? 1.0f : 0.0f);
        for (int64_t j = 0; j < d; ++j) sketch[c * d + j] = g * s.feature[j];
      }
      s.gradient = std::move(sketch);
    }
    buffer_.offer(std::move(s), rng_);
  }
  select_seconds_ += now_seconds() - t0;

  ++segments_seen_;
  if (segments_seen_ % config_.beta == 0) update_model_now();
  return report;
}

void BaselineLearner::update_model_now() {
  if (buffer_.size() == 0) return;
  core::train_classifier(model_, buffer_.all_images(), buffer_.all_labels(),
                         config_.model_update_epochs, config_.lr_model,
                         config_.weight_decay, config_.train_batch, rng_);
}

int64_t BaselineLearner::memory_bytes() const {
  // Pixel rows count at their *stored* (post-quantization) size; the
  // strategy sketches and the model remain fp32-resident.
  int64_t floats = 0;
  for (int64_t cls = 0; cls < buffer_.num_classes(); ++cls)
    for (const StoredSample& s : buffer_.slot(cls))
      floats += s.feature.numel() + s.gradient.numel();
  for (const nn::ParamRef& p : model_.parameters()) floats += p.value->numel();
  return buffer_.image_stored_bytes() +
         floats * static_cast<int64_t>(sizeof(float));
}

// ---- UnlimitedLearner ------------------------------------------------------------

UnlimitedLearner::UnlimitedLearner(nn::ConvNet& model, BaselineConfig config,
                                   uint64_t seed)
    : model_(model), config_(config), rng_(seed) {}

void UnlimitedLearner::store_image(const Tensor& img) {
  if (config_.storage.cache_dtype == DType::kF32)
    images_.push_back(img);
  else
    qimages_.push_back(QTensor::encode(img, config_.storage.cache_dtype,
                                       config_.storage.block));
}

Tensor UnlimitedLearner::stacked_images() const {
  if (config_.storage.cache_dtype == DType::kF32) return stack(images_);
  std::vector<Tensor> decoded;
  decoded.reserve(qimages_.size());
  for (const QTensor& q : qimages_) decoded.push_back(q.decode());
  return stack(decoded);
}

void UnlimitedLearner::init_buffer_from(const data::Dataset& labeled) {
  for (int64_t i = 0; i < labeled.size(); ++i) {
    store_image(labeled.image(i));
    labels_.push_back(labeled.label(i));
  }
}

core::SegmentReport UnlimitedLearner::observe_segment(const Tensor& images) {
  core::PseudoLabelResult pl = core::pseudo_label_segment(model_, images, 0.0f);
  return store_and_train(images, pl.labels, pl);
}

core::SegmentReport UnlimitedLearner::observe_labeled_segment(
    const Tensor& images, const std::vector<int64_t>& true_labels) {
  DECO_CHECK(images.dim(0) == static_cast<int64_t>(true_labels.size()),
             "observe_labeled_segment: label count mismatch");
  // Report still carries pseudo-label diagnostics for the harness.
  core::PseudoLabelResult pl = core::pseudo_label_segment(model_, images, 0.0f);
  return store_and_train(images, true_labels, pl);
}

core::SegmentReport UnlimitedLearner::store_and_train(
    const Tensor& images, const std::vector<int64_t>& labels,
    const core::PseudoLabelResult& pl) {
  core::SegmentReport report;
  report.pseudo_labels = pl.labels;
  report.confidences = pl.confidences;
  report.retained = pl.retained;
  report.active_class_count = static_cast<int64_t>(pl.active_classes.size());

  const int64_t n = images.dim(0);
  const int64_t per = images.numel() / n;
  for (int64_t i = 0; i < n; ++i) {
    Tensor img({images.dim(1), images.dim(2), images.dim(3)});
    std::copy(images.data() + i * per, images.data() + (i + 1) * per, img.data());
    store_image(img);
    labels_.push_back(labels[static_cast<size_t>(i)]);
  }

  ++segments_seen_;
  if (segments_seen_ % config_.beta == 0) update_model_now();
  return report;
}

void UnlimitedLearner::update_model_now() {
  if (labels_.empty()) return;
  core::train_classifier(model_, stacked_images(), labels_,
                         config_.model_update_epochs, config_.lr_model,
                         config_.weight_decay, config_.train_batch, rng_);
}

int64_t UnlimitedLearner::memory_bytes() const {
  int64_t floats = 0;
  for (const nn::ParamRef& p : model_.parameters()) floats += p.value->numel();
  return cache_stored_bytes() + floats * static_cast<int64_t>(sizeof(float));
}

int64_t UnlimitedLearner::cache_stored_bytes() const {
  int64_t bytes = 0;
  for (const Tensor& img : images_)
    bytes += img.numel() * static_cast<int64_t>(sizeof(float));
  for (const QTensor& q : qimages_) bytes += q.stored_bytes();
  return bytes;
}

int64_t UnlimitedLearner::cache_logical_bytes() const {
  int64_t floats = 0;
  for (const Tensor& img : images_) floats += img.numel();
  for (const QTensor& q : qimages_) floats += q.numel();
  return floats * static_cast<int64_t>(sizeof(float));
}

}  // namespace deco::baselines
