#include "deco/runtime/fleet.h"

#include <chrono>
#include <utility>

#include "deco/tensor/check.h"

namespace deco::runtime {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void FleetConfig::validate() const {
  DECO_CHECK(sessions >= 1, "FleetConfig: sessions must be >= 1");
  DECO_CHECK(labeled_per_class >= 1,
             "FleetConfig: labeled_per_class must be >= 1");
  stream.validate();
  deco.validate();
  runtime.validate();
}

std::string Fleet::session_name(int64_t i) {
  return "session" + std::to_string(i);
}

uint64_t Fleet::world_seed(const FleetConfig& config) {
  return config.seed * 7919 + 17;
}

uint64_t Fleet::stream_seed(const FleetConfig& config, int64_t i) {
  return config.seed + 100 + static_cast<uint64_t>(i);
}

LearnerHandle Fleet::make_learner(const FleetConfig& config,
                                  const data::ProceduralImageWorld& world,
                                  int64_t i) {
  nn::ConvNetConfig mc;
  mc.in_channels = config.spec.channels;
  mc.image_h = config.spec.height;
  mc.image_w = config.spec.width;
  mc.num_classes = config.spec.num_classes;
  mc.width = config.model_width;
  mc.depth = config.model_depth;

  // Session i's model and learner get their own seed lineage, so sessions are
  // numerically independent and each is reproducible in isolation.
  const uint64_t si = static_cast<uint64_t>(i);
  Rng model_rng(config.seed * 0x9E37 + si * 1315423911ull + 0xC0FFEE);
  auto model = std::make_shared<nn::ConvNet>(mc, model_rng);
  auto learner = std::make_unique<core::DecoLearner>(
      *model, config.deco, config.seed + 1000 + si);
  learner->init_buffer_from(
      world.make_labeled_set(config.labeled_per_class, config.seed + 1));
  return LearnerHandle{std::move(learner), std::move(model)};
}

Fleet::Fleet(FleetConfig config)
    : config_(std::move(config)),
      world_(config_.spec, world_seed(config_)),
      manager_(config_.runtime) {
  config_.validate();
  for (int64_t i = 0; i < config_.sessions; ++i) {
    LearnerHandle h = make_learner(config_, world_, i);
    manager_.add_session(session_name(i), std::move(h.learner),
                         std::move(h.keepalive));
  }
}

FleetResult Fleet::run() {
  const double t0 = now_seconds();
  manager_.start();

  // One stream per session, submitted round-robin so every queue fills at the
  // same rate (the realistic many-sensors arrival pattern). Under kBlock a
  // full queue throttles this producer loop — backpressure, not loss.
  std::vector<std::unique_ptr<data::TemporalStream>> streams;
  streams.reserve(static_cast<size_t>(config_.sessions));
  for (int64_t i = 0; i < config_.sessions; ++i)
    streams.push_back(std::make_unique<data::TemporalStream>(
        world_, config_.stream, stream_seed(config_, i)));

  bool any = true;
  data::Segment seg;
  while (any) {
    any = false;
    for (int64_t i = 0; i < config_.sessions; ++i) {
      if (!streams[static_cast<size_t>(i)]->next(seg)) continue;
      any = true;
      manager_.submit(session_name(i), std::move(seg.images));
    }
  }
  manager_.stop();

  FleetResult result;
  result.seconds = now_seconds() - t0;
  result.sessions = manager_.statuses();
  for (const SessionStatus& s : result.sessions)
    result.segments_processed += s.segments_processed;
  result.segments_per_second =
      result.seconds > 0.0
          ? static_cast<double>(result.segments_processed) / result.seconds
          : 0.0;
  return result;
}

}  // namespace deco::runtime
