#include "deco/runtime/queue.h"

#include <chrono>
#include <utility>

#include "deco/core/telemetry.h"
#include "deco/tensor/check.h"

namespace deco::runtime {

namespace {
int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

OverflowPolicy overflow_policy_from_name(const std::string& name) {
  if (name == "block") return OverflowPolicy::kBlock;
  if (name == "shed_oldest" || name == "shed") return OverflowPolicy::kShedOldest;
  DECO_CHECK(false, "unknown overflow policy '" + name +
                    "' (expected block | shed_oldest)");
  return OverflowPolicy::kBlock;
}

std::string overflow_policy_name(OverflowPolicy p) {
  return p == OverflowPolicy::kBlock ? "block" : "shed_oldest";
}

SegmentQueue::SegmentQueue(int64_t depth, OverflowPolicy policy)
    : depth_(depth), policy_(policy) {
  DECO_CHECK(depth >= 1, "SegmentQueue: depth must be >= 1");
}

bool SegmentQueue::push(Tensor segment) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    ++stats_.rejected;
    return false;
  }
  if (static_cast<int64_t>(items_.size()) >= depth_) {
    if (policy_ == OverflowPolicy::kShedOldest) {
      items_.pop_front();
      ++stats_.shed;
      static core::telemetry::Counter& shed_c =
          core::telemetry::counter("runtime/segments_shed");
      shed_c.add(1);
    } else {
      ++stats_.block_waits;
      const int64_t t0 = now_ns();
      not_full_.wait(lock, [&] {
        return closed_ || static_cast<int64_t>(items_.size()) < depth_;
      });
      stats_.block_wait_ns += now_ns() - t0;
      {
        static core::telemetry::Histogram& wait_h = core::telemetry::histogram(
            "runtime/enqueue_wait_us",
            {10, 100, 1000, 10000, 100000, 1000000, 10000000});
        wait_h.observe((now_ns() - t0) / 1000);
      }
      if (closed_) {
        ++stats_.rejected;
        return false;
      }
    }
  }
  items_.push_back(std::move(segment));
  ++stats_.pushed;
  if (static_cast<int64_t>(items_.size()) > stats_.max_depth)
    stats_.max_depth = static_cast<int64_t>(items_.size());
  return true;
}

bool SegmentQueue::try_pop(Tensor& out) {
  bool popped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    popped = true;
  }
  // Wake one blocked producer outside the lock; a freed slot admits exactly
  // one waiting push.
  if (popped) not_full_.notify_one();
  return true;
}

void SegmentQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
}

bool SegmentQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int64_t SegmentQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(items_.size());
}

QueueStats SegmentQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace deco::runtime
