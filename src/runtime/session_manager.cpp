#include "deco/runtime/session_manager.h"

#include <algorithm>
#include <utility>

#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "deco/tensor/check.h"

namespace deco::runtime {

namespace telem = core::telemetry;

std::string session_state_name(SessionState s) {
  return s == SessionState::kActive ? "active" : "quarantined";
}

SessionManager::SessionManager(RuntimeConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

SessionManager::~SessionManager() { stop(); }

void SessionManager::add_session(const std::string& name,
                                 std::unique_ptr<core::OnDeviceLearner> learner,
                                 std::shared_ptr<void> keepalive) {
  DECO_CHECK(learner != nullptr, "add_session: learner must not be null");
  DECO_CHECK(!name.empty(), "add_session: session name must not be empty");
  // The runtime's checkpoint dtype policy applies to every hosted learner;
  // fp32 is the default and leaves save_state bit-exact.
  learner->set_checkpoint_dtype(config_.checkpoint_dtype);
  // memory_bytes() reports the cache as *stored* (post-quantization), so a
  // quantized fleet admits more sessions under the same pool budget.
  const int64_t bytes = learner->memory_bytes();

  std::lock_guard<std::mutex> lock(sessions_mutex_);
  DECO_CHECK(find(name) == nullptr,
             "add_session: session '" + name + "' already exists");
  int64_t fleet_bytes = bytes;
  for (const auto& s : sessions_) fleet_bytes += s->admitted_bytes;
  const int64_t budget = config_.pool_budget_bytes();
  DECO_CHECK(fleet_bytes <= budget,
             "add_session: admitting '" + name + "' (" +
                 std::to_string(bytes) + " B) would put the fleet at " +
                 std::to_string(fleet_bytes) + " B, over the " +
                 std::to_string(budget) + " B runtime memory budget");

  auto s = std::make_unique<Session>();
  s->name = name;
  s->learner = std::move(learner);
  s->keepalive = std::move(keepalive);
  s->queue = std::make_unique<SegmentQueue>(config_.queue_depth,
                                            config_.overflow);
  s->admitted_bytes = bytes;
  if (config_.checkpoint_every > 0 && s->learner->supports_state())
    s->checkpoint_path = config_.checkpoint_dir + "/" + name + ".ckpt";
  sessions_.push_back(std::move(s));

  static telem::Gauge& g = telem::gauge("runtime/fleet_bytes");
  g.set(fleet_bytes);
}

SessionManager::Session* SessionManager::find(const std::string& name) const {
  for (const auto& s : sessions_)
    if (s->name == name) return s.get();
  return nullptr;
}

SessionManager::Session& SessionManager::find_or_throw(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  Session* s = find(name);
  DECO_CHECK(s != nullptr, "unknown session '" + name + "'");
  return *s;
}

bool SessionManager::submit(const std::string& name, Tensor segment) {
  Session& s = find_or_throw(name);
  // Push outside sessions_mutex_: a kBlock push may wait for the scheduler,
  // and the scheduler must not need the registry lock to make progress.
  const bool accepted = s.queue->push(std::move(segment));
  if (accepted) {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    pump_pending_ = true;
    pump_cv_.notify_one();
  }
  return accepted;
}

void SessionManager::close_session(const std::string& name) {
  find_or_throw(name).queue->close();
}

void SessionManager::close_all() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (const auto& s : sessions_) s->queue->close();
}

int64_t SessionManager::process_turn(Session& s, int64_t budget) {
  DECO_TRACE_SCOPE("runtime/turn");
  static telem::Counter& processed_c =
      telem::counter("runtime/segments_processed");
  static telem::Counter& failed_c = telem::counter("runtime/segments_failed");
  static telem::Counter& quarantined_c =
      telem::counter("runtime/sessions_quarantined");
  static telem::Counter& checkpoints_c =
      telem::counter("runtime/checkpoints_written");

  int64_t done = 0;
  Tensor segment;
  while (done < budget && s.queue->try_pop(segment)) {
    bool failed = false;
    std::string error;
    core::SegmentReport report;
    try {
      report = s.learner->observe_segment(segment);
      if (report.segment_skipped != 0) {
        failed = true;
        error = "segment skipped by the numeric guard";
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    ++done;
    processed_c.add(1);

    bool checkpoint_due = false;
    {
      std::lock_guard<std::mutex> lock(s.m);
      ++s.segments_processed;
      if (config_.keep_reports) s.reports.push_back(report);
      if (failed) {
        ++s.segments_failed;
        ++s.consecutive_failures;
        s.last_error = error;
        failed_c.add(1);
        if (config_.quarantine_after > 0 &&
            s.consecutive_failures >= config_.quarantine_after) {
          s.state = SessionState::kQuarantined;
          quarantined_c.add(1);
        }
      } else {
        s.consecutive_failures = 0;
      }
      checkpoint_due = !s.checkpoint_path.empty() &&
                       s.state == SessionState::kActive &&
                       s.segments_processed % config_.checkpoint_every == 0;
    }

    if (checkpoint_due) {
      // save_state is atomic (temp + rename) and per-session paths are
      // distinct, so concurrent turns never collide on a file.
      try {
        s.learner->save_state(s.checkpoint_path);
        std::lock_guard<std::mutex> lock(s.m);
        ++s.checkpoints_written;
        checkpoints_c.add(1);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(s.m);
        s.last_error = std::string("checkpoint failed: ") + e.what();
      }
    }

    {
      std::lock_guard<std::mutex> lock(s.m);
      if (s.state == SessionState::kQuarantined) {
        s.queue->close();
        break;
      }
    }
  }
  return done;
}

int64_t SessionManager::run_round() {
  DECO_TRACE_SCOPE("runtime/round");
  static telem::Counter& rounds_c = telem::counter("runtime/rounds");

  // Snapshot this round's turns under the registry lock: each active session
  // with queued work gets at most ONE turn, sized by its DRR deficit. The
  // session's deficit and queue occupancy can only be touched by this
  // scheduler (turns run below, after the lock is released), so the snapshot
  // stays valid — except that producers may push more segments, which simply
  // wait for the next round.
  struct Turn {
    Session* session;
    int64_t budget;
  };
  std::vector<Turn> turns;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    const int64_t n = static_cast<int64_t>(sessions_.size());
    if (n == 0) return 0;
    cursor_ %= n;
    for (int64_t i = 0; i < n; ++i) {
      Session& s = *sessions_[static_cast<size_t>((cursor_ + i) % n)];
      {
        std::lock_guard<std::mutex> slock(s.m);
        if (s.state != SessionState::kActive) continue;
      }
      const int64_t queued = s.queue->size();
      if (queued == 0) {
        // An empty queue forfeits banked credit — DRR's anti-burst rule.
        s.deficit = 0;
        continue;
      }
      s.deficit = std::min(s.deficit + config_.quantum, config_.max_deficit);
      turns.push_back({&s, std::min(s.deficit, queued)});
    }
    cursor_ = (cursor_ + 1) % n;
  }
  if (turns.empty()) return 0;
  rounds_c.add(1);

  // One pool chunk per session turn; the barrier in run() ends the round.
  // Nested kernel parallelism inside observe_segment runs inline on the
  // worker, so the fleet never oversubscribes DECO_NUM_THREADS.
  std::vector<int64_t> processed(turns.size(), 0);
  core::global_pool().run(
      static_cast<int64_t>(turns.size()), [&](int64_t t) {
        Turn& turn = turns[static_cast<size_t>(t)];
        processed[static_cast<size_t>(t)] =
            process_turn(*turn.session, turn.budget);
      });

  int64_t total = 0;
  for (size_t t = 0; t < turns.size(); ++t) {
    turns[t].session->deficit -= processed[t];
    total += processed[t];
  }
  return total;
}

void SessionManager::drain() {
  while (run_round() > 0) {
  }
}

void SessionManager::start() {
  std::lock_guard<std::mutex> lock(pump_mutex_);
  DECO_CHECK(!pump_running_, "SessionManager: pump already running");
  pump_stop_ = false;
  pump_pending_ = false;
  pump_running_ = true;
  pump_ = std::thread([this] { pump_loop(); });
}

void SessionManager::stop() {
  bool was_running;
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    was_running = pump_running_;
    pump_stop_ = true;
    pump_cv_.notify_one();
  }
  close_all();
  if (was_running) {
    pump_.join();
    std::lock_guard<std::mutex> lock(pump_mutex_);
    pump_running_ = false;
  }
  // The pump may have observed stop before the queues closed; sweep whatever
  // is still queued (now single-threaded, the pump is gone).
  drain();
}

void SessionManager::pump_loop() {
  while (true) {
    if (run_round() > 0) continue;
    std::unique_lock<std::mutex> lock(pump_mutex_);
    if (pump_stop_) break;  // queues are closed; nothing active remained
    pump_cv_.wait(lock, [&] { return pump_pending_ || pump_stop_; });
    pump_pending_ = false;
  }
}

int64_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return static_cast<int64_t>(sessions_.size());
}

SessionStatus SessionManager::status(const std::string& name) const {
  Session& s = find_or_throw(name);
  SessionStatus out;
  out.name = s.name;
  out.memory_bytes = s.admitted_bytes;
  out.checkpoint_path = s.checkpoint_path;
  out.queue = s.queue->stats();
  std::lock_guard<std::mutex> lock(s.m);
  out.state = s.state;
  out.segments_processed = s.segments_processed;
  out.segments_failed = s.segments_failed;
  out.consecutive_failures = s.consecutive_failures;
  out.checkpoints_written = s.checkpoints_written;
  out.last_error = s.last_error;
  return out;
}

std::vector<SessionStatus> SessionManager::statuses() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    names.reserve(sessions_.size());
    for (const auto& s : sessions_) names.push_back(s->name);
  }
  std::vector<SessionStatus> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(status(n));
  return out;
}

core::OnDeviceLearner& SessionManager::learner(const std::string& name) {
  return *find_or_throw(name).learner;
}

std::vector<core::SegmentReport> SessionManager::reports(
    const std::string& name) const {
  Session& s = find_or_throw(name);
  std::lock_guard<std::mutex> lock(s.m);
  return s.reports;
}

int64_t SessionManager::total_processed() const {
  std::vector<SessionStatus> all = statuses();
  int64_t total = 0;
  for (const SessionStatus& s : all) total += s.segments_processed;
  return total;
}

}  // namespace deco::runtime
