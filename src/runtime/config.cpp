#include "deco/runtime/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "deco/tensor/buffer_pool.h"
#include "deco/tensor/check.h"

namespace deco::runtime {

void RuntimeConfig::validate() const {
  DECO_CHECK(queue_depth >= 1, "RuntimeConfig: queue_depth must be >= 1");
  DECO_CHECK(quantum >= 1, "RuntimeConfig: quantum must be >= 1");
  DECO_CHECK(max_deficit >= quantum,
             "RuntimeConfig: max_deficit must be >= quantum");
  DECO_CHECK(checkpoint_every >= 0,
             "RuntimeConfig: checkpoint_every must be >= 0");
  DECO_CHECK(quarantine_after >= 0,
             "RuntimeConfig: quarantine_after must be >= 0");
  DECO_CHECK(pool_budget_mb >= 0, "RuntimeConfig: pool_budget_mb must be >= 0");
}

int64_t RuntimeConfig::pool_budget_bytes() const {
  if (pool_budget_mb > 0) return pool_budget_mb * (int64_t{1} << 20);
  return detail::tensor_pool_cap_bytes();
}

// ---- ConfigMap --------------------------------------------------------------

namespace {

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

ConfigMap ConfigMap::from_file(const std::string& path) {
  std::ifstream is(path);
  DECO_CHECK(is.is_open(), "config: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return ends_with(path, ".json") ? from_json_text(buf.str())
                                  : from_kv_text(buf.str());
}

ConfigMap ConfigMap::from_kv_text(const std::string& text) {
  ConfigMap m;
  std::istringstream is(text);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (const size_t hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    DECO_CHECK(eq != std::string::npos,
               "config line " + std::to_string(lineno) +
                   ": expected key=value, got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    DECO_CHECK(!key.empty(),
               "config line " + std::to_string(lineno) + ": empty key");
    m.set(key, trim(line.substr(eq + 1)));
  }
  return m;
}

// Minimal flat-JSON-object parser: {"key": <string|number|bool|null>, ...}.
// Values are stored as their literal text (strings unescaped for \" \\ only)
// and converted by the typed getters, so "8" and 8 behave identically.
ConfigMap ConfigMap::from_json_text(const std::string& text) {
  ConfigMap m;
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  const auto fail = [&](const std::string& what) {
    DECO_CHECK(false, "config JSON: " + what + " at offset " +
                          std::to_string(i));
  };
  const auto parse_string = [&]() -> std::string {
    if (text[i] != '"') fail("expected '\"'");
    ++i;
    std::string out;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        ++i;
        out.push_back(text[i] == 'n' ? '\n' : text[i]);
      } else {
        out.push_back(text[i]);
      }
      ++i;
    }
    if (i >= text.size()) fail("unterminated string");
    ++i;
    return out;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '{') fail("expected '{'");
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return m;
  while (true) {
    skip_ws();
    if (i >= text.size()) fail("unterminated object");
    const std::string key = parse_string();
    skip_ws();
    if (i >= text.size() || text[i] != ':') fail("expected ':' after key '" + key + "'");
    ++i;
    skip_ws();
    if (i >= text.size()) fail("missing value for key '" + key + "'");
    std::string value;
    if (text[i] == '"') {
      value = parse_string();
    } else {
      const size_t start = i;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
      value = text.substr(start, i - start);
      if (value.empty()) fail("missing value for key '" + key + "'");
      if (value == "null") value.clear();
    }
    m.set(key, value);
    skip_ws();
    if (i >= text.size()) fail("unterminated object");
    if (text[i] == '}') break;
    if (text[i] != ',') fail("expected ',' or '}'");
    ++i;
  }
  return m;
}

void ConfigMap::set(const std::string& key, const std::string& value) {
  if (Entry* e = find(key)) {
    e->value = value;
    e->consumed = false;
    return;
  }
  entries_.push_back({key, value, false});
}

void ConfigMap::set_kv(const std::string& kv) {
  const size_t eq = kv.find('=');
  DECO_CHECK(eq != std::string::npos && eq > 0,
             "config: expected key=value, got '" + kv + "'");
  set(trim(kv.substr(0, eq)), trim(kv.substr(eq + 1)));
}

bool ConfigMap::has(const std::string& key) const {
  for (const Entry& e : entries_)
    if (e.key == key) return true;
  return false;
}

ConfigMap::Entry* ConfigMap::find(const std::string& key) {
  for (Entry& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

int64_t ConfigMap::to_int(const Entry& e) {
  char* end = nullptr;
  const long long v = std::strtoll(e.value.c_str(), &end, 10);
  DECO_CHECK(end != e.value.c_str() && *end == '\0',
             "config: key '" + e.key + "' expects an integer, got '" +
                 e.value + "'");
  return static_cast<int64_t>(v);
}

double ConfigMap::to_double(const Entry& e) {
  char* end = nullptr;
  const double v = std::strtod(e.value.c_str(), &end);
  DECO_CHECK(end != e.value.c_str() && *end == '\0',
             "config: key '" + e.key + "' expects a number, got '" + e.value +
                 "'");
  return v;
}

bool ConfigMap::to_bool(const Entry& e) {
  const std::string& v = e.value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  DECO_CHECK(false, "config: key '" + e.key + "' expects a boolean, got '" +
                        v + "'");
  return false;
}

int64_t ConfigMap::get_int(const std::string& key, int64_t fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->consumed = true;
  return to_int(*e);
}

double ConfigMap::get_double(const std::string& key, double fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->consumed = true;
  return to_double(*e);
}

bool ConfigMap::get_bool(const std::string& key, bool fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->consumed = true;
  return to_bool(*e);
}

std::string ConfigMap::get_string(const std::string& key,
                                  const std::string& fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->consumed = true;
  return e->value;
}

namespace {
/// Converts one entry's value to a DType, naming the key on bad values.
DType to_dtype(const std::string& key, const std::string& value) {
  try {
    return dtype_from_name(value);
  } catch (const Error&) {
    DECO_CHECK(false, "config: key '" + key +
                          "' expects fp32 | fp16 | int8, got '" + value + "'");
  }
  return DType::kF32;
}
}  // namespace

DType ConfigMap::get_dtype(const std::string& key, DType fallback) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  e->consumed = true;
  return to_dtype(e->key, e->value);
}

void ConfigMap::apply(core::DecoConfig& cfg) {
  for (Entry& e : entries_) {
    if (e.key.rfind("deco.", 0) != 0) continue;
    const std::string k = e.key.substr(5);
    if (k == "ipc") cfg.ipc = to_int(e);
    else if (k == "threshold_m") cfg.threshold_m = static_cast<float>(to_double(e));
    else if (k == "beta") cfg.beta = to_int(e);
    else if (k == "model_update_epochs") cfg.model_update_epochs = to_int(e);
    else if (k == "lr_model") cfg.lr_model = static_cast<float>(to_double(e));
    else if (k == "weight_decay") cfg.weight_decay = static_cast<float>(to_double(e));
    else if (k == "train_batch") cfg.train_batch = to_int(e);
    else if (k == "use_majority_voting") cfg.use_majority_voting = to_bool(e);
    else if (k == "condenser.iterations") cfg.condenser.iterations = to_int(e);
    else if (k == "condenser.lr_syn") cfg.condenser.lr_syn = static_cast<float>(to_double(e));
    else if (k == "condenser.momentum_syn") cfg.condenser.momentum_syn = static_cast<float>(to_double(e));
    else if (k == "condenser.alpha") cfg.condenser.alpha = static_cast<float>(to_double(e));
    else if (k == "condenser.tau") cfg.condenser.tau = static_cast<float>(to_double(e));
    else if (k == "condenser.feature_discrimination") cfg.condenser.feature_discrimination = to_bool(e);
    else if (k == "condenser.learn_soft_labels") cfg.condenser.learn_soft_labels = to_bool(e);
    else if (k == "guard.enabled") cfg.guard.enabled = to_bool(e);
    else if (k == "guard.max_grad_norm") cfg.guard.max_grad_norm = static_cast<float>(to_double(e));
    else if (k == "guard.max_condense_distance") cfg.guard.max_condense_distance = static_cast<float>(to_double(e));
    else if (k == "guard.backoff") cfg.guard.backoff = static_cast<float>(to_double(e));
    else if (k == "cache_dtype") cfg.storage.cache_dtype = to_dtype(e.key, e.value);
    else if (k == "checkpoint_dtype") cfg.storage.checkpoint_dtype = to_dtype(e.key, e.value);
    else if (k == "quant_block") cfg.storage.block = to_int(e);
    else DECO_CHECK(false, "config: unknown key '" + e.key + "'");
    e.consumed = true;
  }
}

void ConfigMap::apply(data::StreamConfig& cfg) {
  for (Entry& e : entries_) {
    if (e.key.rfind("stream.", 0) != 0) continue;
    const std::string k = e.key.substr(7);
    if (k == "stc") cfg.stc = to_int(e);
    else if (k == "segment_size") cfg.segment_size = to_int(e);
    else if (k == "total_segments") cfg.total_segments = to_int(e);
    else if (k == "video_mode") cfg.video_mode = to_bool(e);
    else DECO_CHECK(false, "config: unknown key '" + e.key + "'");
    e.consumed = true;
  }
}

void ConfigMap::apply(RuntimeConfig& cfg) {
  for (Entry& e : entries_) {
    if (e.key.rfind("runtime.", 0) != 0) continue;
    const std::string k = e.key.substr(8);
    if (k == "queue_depth") cfg.queue_depth = to_int(e);
    else if (k == "overflow") {
      e.consumed = true;  // name the key, not the raw token, on bad values
      try {
        cfg.overflow = overflow_policy_from_name(e.value);
      } catch (const Error&) {
        DECO_CHECK(false, "config: key '" + e.key +
                              "' expects block | shed_oldest, got '" +
                              e.value + "'");
      }
      continue;
    }
    else if (k == "quantum") cfg.quantum = to_int(e);
    else if (k == "max_deficit") cfg.max_deficit = to_int(e);
    else if (k == "checkpoint_every") cfg.checkpoint_every = to_int(e);
    else if (k == "checkpoint_dir") cfg.checkpoint_dir = e.value;
    else if (k == "quarantine_after") cfg.quarantine_after = to_int(e);
    else if (k == "pool_budget_mb") cfg.pool_budget_mb = to_int(e);
    else if (k == "keep_reports") cfg.keep_reports = to_bool(e);
    else if (k == "checkpoint_dtype") cfg.checkpoint_dtype = to_dtype(e.key, e.value);
    else DECO_CHECK(false, "config: unknown key '" + e.key + "'");
    e.consumed = true;
  }
}

void ConfigMap::check_fully_consumed() const {
  std::string leftover;
  for (const Entry& e : entries_) {
    if (e.consumed) continue;
    if (!leftover.empty()) leftover += ", ";
    leftover += "'" + e.key + "'";
  }
  DECO_CHECK(leftover.empty(), "config: unknown key(s) " + leftover);
}

}  // namespace deco::runtime
