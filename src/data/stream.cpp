#include "deco/data/stream.h"

#include "deco/tensor/check.h"

namespace deco::data {

void StreamConfig::validate() const {
  DECO_CHECK(stc >= 1, "stream: stc must be >= 1");
  DECO_CHECK(segment_size >= 1, "stream: segment_size must be >= 1");
  DECO_CHECK(total_segments >= 1, "stream: total_segments must be >= 1");
}

TemporalStream::TemporalStream(const ProceduralImageWorld& world,
                               StreamConfig config, uint64_t seed)
    : world_(world), config_(config), rng_(seed) {
  config_.validate();
}

void TemporalStream::begin_run() {
  const auto& spec = world_.spec();
  // Pick a class different from the previous run so class transitions are
  // real transitions (otherwise empirical STC would exceed the target).
  int64_t next_class = rng_.uniform_int(spec.num_classes);
  if (spec.num_classes > 1) {
    while (next_class == run_class_) next_class = rng_.uniform_int(spec.num_classes);
  }
  run_class_ = next_class;
  run_instance_ = rng_.uniform_int(spec.instances_per_class);
  run_environment_ = rng_.uniform_int(spec.environments);
  // Geometric-ish jitter around the target STC keeps run lengths varied while
  // preserving the mean: uniform in [stc/2, 3·stc/2].
  const int64_t lo = std::max<int64_t>(1, config_.stc / 2);
  const int64_t hi = config_.stc + config_.stc / 2;
  run_remaining_ = lo + rng_.uniform_int(hi - lo + 1);
  run_frame_ = rng_.uniform_int(1000);  // random starting point in the "video"
}

bool TemporalStream::next(Segment& out) {
  if (segments_emitted_ >= config_.total_segments) return false;
  const auto& spec = world_.spec();
  const int64_t S = config_.segment_size;
  out.images = Tensor({S, spec.channels, spec.height, spec.width});
  out.true_labels.assign(static_cast<size_t>(S), -1);

  const int64_t per = spec.channels * spec.height * spec.width;
  float* po = out.images.data();
  for (int64_t i = 0; i < S; ++i) {
    if (run_remaining_ <= 0) begin_run();
    int64_t instance = run_instance_;
    int64_t frame = run_frame_;
    if (!config_.video_mode) {
      // i.i.d.-within-class sampling (CIFAR / ImageNet proxy streams).
      instance = rng_.uniform_int(spec.instances_per_class);
      frame = rng_.uniform_int(100'000);
    }
    Tensor img = world_.render(run_class_, instance, run_environment_, frame);
    std::copy(img.data(), img.data() + per, po + i * per);
    out.true_labels[static_cast<size_t>(i)] = run_class_;
    --run_remaining_;
    ++run_frame_;
    ++samples_emitted_;
  }
  ++segments_emitted_;
  return true;
}

double TemporalStream::empirical_stc(const std::vector<int64_t>& labels) {
  if (labels.empty()) return 0.0;
  int64_t runs = 1;
  for (size_t i = 1; i < labels.size(); ++i)
    if (labels[i] != labels[i - 1]) ++runs;
  return static_cast<double>(labels.size()) / static_cast<double>(runs);
}

}  // namespace deco::data
