#include "deco/data/decorators.h"

#include <algorithm>
#include <cmath>

#include "deco/tensor/check.h"

namespace deco::data {

// ---- DriftStream ------------------------------------------------------------

void DriftConfig::validate() const {
  DECO_CHECK(mode == "none" || mode == "abrupt" || mode == "gradual",
             "drift: mode must be none|abrupt|gradual, got '" + mode + "'");
  DECO_CHECK(severity >= 0.0f && severity <= 1.0f,
             "drift: severity must be in [0, 1]");
  DECO_CHECK(onset_segment >= 0, "drift: onset_segment must be >= 0");
  DECO_CHECK(ramp_segments >= 1, "drift: ramp_segments must be >= 1");
}

DriftStream::DriftStream(SegmentSource& inner, DriftConfig config,
                         uint64_t seed)
    : inner_(inner), config_(std::move(config)) {
  config_.validate();
  // The drift direction is the decorator's identity: one draw at
  // construction, so two decorators with the same seed shift identically and
  // different seeds shift along different directions.
  Rng rng(seed);
  for (float& b : bias_) b = static_cast<float>(rng.uniform(-0.25, 0.25));
  gain_ = static_cast<float>(rng.uniform(0.6, 1.4));
}

float DriftStream::severity_at(int64_t segment_index) const {
  if (!config_.active() || segment_index < config_.onset_segment) return 0.0f;
  if (config_.mode == "abrupt") return config_.severity;
  const int64_t into = segment_index - config_.onset_segment;
  const float frac = std::min(
      1.0f, static_cast<float>(into + 1) /
                static_cast<float>(config_.ramp_segments));
  return config_.severity * frac;
}

bool DriftStream::next(Segment& out) {
  if (!inner_.next(out)) return false;
  const float s = severity_at(segments_emitted_);
  ++segments_emitted_;
  if (s <= 0.0f) return true;
  ++segments_drifted_;

  // Per-channel affine shift around mid-gray, interpolated toward the drawn
  // drift endpoint by severity. Channels beyond 3 reuse the bias cyclically.
  const auto& shape = out.images.shape();
  DECO_CHECK(shape.size() == 4, "drift: segment images must be [S,C,H,W]");
  const int64_t S = shape[0], C = shape[1], hw = shape[2] * shape[3];
  float* p = out.images.data();
  for (int64_t i = 0; i < S; ++i) {
    for (int64_t c = 0; c < C; ++c) {
      const float gain = 1.0f + s * (gain_ - 1.0f);
      const float bias = s * bias_[static_cast<size_t>(c % 3)];
      float* px = p + (i * C + c) * hw;
      for (int64_t k = 0; k < hw; ++k) {
        const float v = (px[k] - 0.5f) * gain + 0.5f + bias;
        // NaN/Inf pixels (an upstream FaultyStream may have injected them)
        // pass through unchanged: drift must not mask sensor faults.
        px[k] = std::isfinite(v) ? std::min(1.0f, std::max(0.0f, v)) : px[k];
      }
    }
  }
  return true;
}

// ---- LabelNoiseStream -------------------------------------------------------

void LabelNoiseConfig::validate() const {
  DECO_CHECK(flip_rate >= 0.0 && flip_rate <= 1.0,
             "label_noise: flip_rate must be in [0, 1]");
}

LabelNoiseStream::LabelNoiseStream(SegmentSource& inner,
                                   LabelNoiseConfig config,
                                   int64_t num_classes, uint64_t seed)
    : inner_(inner),
      config_(config),
      num_classes_(num_classes),
      rng_(seed) {
  config_.validate();
  DECO_CHECK(num_classes_ >= 2, "label_noise: needs at least 2 classes");
}

bool LabelNoiseStream::next(Segment& out) {
  if (!inner_.next(out)) return false;
  for (int64_t& label : out.true_labels) {
    if (!rng_.bernoulli(config_.flip_rate)) continue;
    // Uniform over the other classes: draw in [0, n-1) and skip the original.
    int64_t flipped = rng_.uniform_int(num_classes_ - 1);
    if (flipped >= label) ++flipped;
    label = flipped;
    ++labels_flipped_;
  }
  return true;
}

// ---- ClassIncrementalStream -------------------------------------------------

void ClassIncrementalConfig::validate() const {
  DECO_CHECK(initial >= 1, "class_incremental: initial must be >= 1");
  DECO_CHECK(per_phase >= 1, "class_incremental: per_phase must be >= 1");
  DECO_CHECK(segments_per_phase >= 1,
             "class_incremental: segments_per_phase must be >= 1");
}

int64_t ClassIncrementalConfig::arrived_at(int64_t segment_index,
                                           int64_t num_classes) const {
  const int64_t phase = segment_index / segments_per_phase;
  return std::min<int64_t>(num_classes, initial + phase * per_phase);
}

ClassIncrementalStream::ClassIncrementalStream(
    const ProceduralImageWorld& world, SegmentSource& inner,
    ClassIncrementalConfig config, uint64_t seed)
    : world_(world), inner_(inner), config_(config), rng_(seed) {
  config_.validate();
}

bool ClassIncrementalStream::next(Segment& out) {
  if (!inner_.next(out)) return false;
  const auto& spec = world_.spec();
  const int64_t arrived =
      config_.arrived_at(segments_emitted_, spec.num_classes);
  ++segments_emitted_;

  const auto& shape = out.images.shape();
  DECO_CHECK(shape.size() == 4,
             "class_incremental: segment images must be [S,C,H,W]");
  const int64_t per = shape[1] * shape[2] * shape[3];
  float* p = out.images.data();
  for (size_t i = 0; i < out.true_labels.size(); ++i) {
    const int64_t inner_label = out.true_labels[i];
    if (inner_label != run_inner_class_) {
      // Run boundary in the inner stream: decide this run's fate once, so a
      // remapped run keeps video-like continuity on one (instance, env).
      run_inner_class_ = inner_label;
      if (inner_label < arrived) {
        run_mapped_class_ = -1;  // pass-through run
      } else {
        run_mapped_class_ = inner_label % arrived;
        run_instance_ = rng_.uniform_int(spec.instances_per_class);
        run_environment_ = rng_.uniform_int(spec.environments);
        run_frame_ = rng_.uniform_int(1000);
      }
    } else if (run_mapped_class_ >= 0 && inner_label < arrived) {
      // A remapped run whose class arrives mid-run switches to pass-through:
      // from here on the class genuinely exists in the stream.
      run_mapped_class_ = -1;
    }
    if (run_mapped_class_ < 0) continue;

    Tensor img = world_.render(run_mapped_class_, run_instance_,
                               run_environment_, run_frame_++);
    std::copy(img.data(), img.data() + per,
              p + static_cast<int64_t>(i) * per);
    out.true_labels[i] = run_mapped_class_;
    ++samples_remapped_;
  }
  return true;
}

}  // namespace deco::data
