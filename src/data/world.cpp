#include "deco/data/world.h"

#include <algorithm>
#include <cmath>

#include "deco/tensor/check.h"

namespace deco::data {

namespace {

// Stable 64-bit mix of entity coordinates so every style / frame derives an
// independent deterministic random stream.
uint64_t mix(uint64_t a, uint64_t b) {
  uint64_t x = a + 0x9E3779B97F4A7C15ull * (b + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void hsv_to_rgb(float h, float s, float v, float* rgb) {
  h = h - std::floor(h);
  const float c = v * s;
  const float hp = h * 6.0f;
  const float x = c * (1.0f - std::abs(std::fmod(hp, 2.0f) - 1.0f));
  float r = 0, g = 0, b = 0;
  switch (static_cast<int>(hp)) {
    case 0: r = c; g = x; break;
    case 1: r = x; g = c; break;
    case 2: g = c; b = x; break;
    case 3: g = x; b = c; break;
    case 4: r = x; b = c; break;
    default: r = c; b = x; break;
  }
  const float m = v - c;
  rgb[0] = r + m;
  rgb[1] = g + m;
  rgb[2] = b + m;
}

float clamp01(float v) { return std::min(1.0f, std::max(0.0f, v)); }

// Signed distance (negative inside) of point (x, y) for each shape family,
// in object coordinates where the nominal object occupies roughly |p| < 1.
float shape_sdf(int64_t family, float x, float y, float aspect) {
  const float ax = x / std::max(0.2f, aspect);
  const float ay = y * std::max(0.2f, aspect);
  switch (family % 8) {
    case 0:  // ellipse
      return std::sqrt(ax * ax + ay * ay) - 1.0f;
    case 1:  // rectangle
      return std::max(std::abs(ax), std::abs(ay)) - 0.85f;
    case 2:  // diamond
      return std::abs(ax) + std::abs(ay) - 1.1f;
    case 3: {  // ring
      const float r = std::sqrt(ax * ax + ay * ay);
      return std::abs(r - 0.75f) - 0.3f;
    }
    case 4: {  // cross
      const float arm1 = std::max(std::abs(ax) - 1.0f, std::abs(ay) - 0.35f);
      const float arm2 = std::max(std::abs(ay) - 1.0f, std::abs(ax) - 0.35f);
      return std::min(arm1, arm2);
    }
    case 5: {  // triangle (downward)
      const float e1 = ay - 0.9f;
      const float e2 = -ay - 0.9f + 1.8f * std::abs(ax);
      return std::max(e1, e2);
    }
    case 6: {  // two blobs
      const float d1 = std::sqrt((ax - 0.45f) * (ax - 0.45f) + ay * ay) - 0.55f;
      const float d2 = std::sqrt((ax + 0.45f) * (ax + 0.45f) + ay * ay) - 0.55f;
      return std::min(d1, d2);
    }
    default: {  // capsule / bar
      const float cy = std::max(0.0f, std::abs(ay) - 0.55f);
      return std::sqrt(ax * ax + cy * cy) - 0.45f;
    }
  }
}

}  // namespace

DatasetSpec icub1_spec() {
  DatasetSpec s;
  s.name = "icub1";
  s.num_classes = 10;
  s.height = s.width = 16;
  s.instances_per_class = 4;  // iCub World films 4 objects per category
  s.environments = 1;
  s.similarity_group = 2;
  s.within_group_similarity = 0.7f;
  s.noise_sigma = 0.04f;
  return s;
}

DatasetSpec core50_spec() {
  DatasetSpec s;
  s.name = "core50";
  s.num_classes = 10;
  s.height = s.width = 16;
  s.instances_per_class = 5;  // CORe50: 5 objects per category
  s.environments = 11;        // 11 recording sessions
  s.similarity_group = 2;
  s.within_group_similarity = 0.65f;
  s.noise_sigma = 0.035f;
  return s;
}

DatasetSpec cifar100_spec() {
  DatasetSpec s;
  s.name = "cifar100";
  s.num_classes = 20;  // many-class proxy; see DESIGN.md for scaling rationale
  s.height = s.width = 16;
  s.instances_per_class = 8;
  s.environments = 1;
  s.similarity_group = 4;  // CIFAR-100's coarse superclasses group fine labels
  s.within_group_similarity = 0.6f;
  s.noise_sigma = 0.05f;
  return s;
}

DatasetSpec imagenet10_spec() {
  DatasetSpec s;
  s.name = "imagenet10";
  s.num_classes = 10;
  s.height = s.width = 32;  // higher resolution than the other proxies
  s.instances_per_class = 4;
  s.environments = 3;
  s.similarity_group = 2;
  s.within_group_similarity = 0.6f;
  s.noise_sigma = 0.03f;
  return s;
}

DatasetSpec cifar10_spec() {
  DatasetSpec s;
  s.name = "cifar10";
  s.num_classes = 10;
  s.height = s.width = 16;
  s.instances_per_class = 6;
  s.environments = 1;
  s.similarity_group = 2;  // cat/dog-style confusion pairs
  s.within_group_similarity = 0.85f;
  s.noise_sigma = 0.05f;
  return s;
}

ProceduralImageWorld::ProceduralImageWorld(DatasetSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  DECO_CHECK(spec_.num_classes >= 2, "world: need at least two classes");
  DECO_CHECK(spec_.channels == 3, "world: renderer produces RGB images");
  DECO_CHECK(spec_.similarity_group >= 1, "world: similarity_group must be >= 1");
}

ProceduralImageWorld::ClassStyle ProceduralImageWorld::class_style(
    int64_t cls) const {
  DECO_CHECK(cls >= 0 && cls < spec_.num_classes, "class_style: class range");
  const int64_t group = cls / spec_.similarity_group;
  const int64_t variant = cls % spec_.similarity_group;

  // Group-level parameters are shared by confusable classes.
  Rng group_rng(mix(seed_, 0xC1A5500000ull + static_cast<uint64_t>(group)));
  ClassStyle st;
  st.shape_family = group;  // one shape family per group
  const float base_hue = static_cast<float>(group_rng.uniform());
  const float base_size = static_cast<float>(group_rng.uniform(0.55, 0.8));
  const float base_aspect = static_cast<float>(group_rng.uniform(0.8, 1.25));
  const float base_freq = static_cast<float>(group_rng.uniform(2.0, 5.0));
  const float base_rot = static_cast<float>(group_rng.uniform(0.0, 3.1415926));

  // Variant deltas shrink as within_group_similarity → 1.
  const float spread = 1.0f - spec_.within_group_similarity;
  Rng var_rng(mix(seed_, 0xBADC0DE00ull + static_cast<uint64_t>(cls)));
  const float hue = base_hue + spread * 0.5f *
                                   static_cast<float>(var_rng.uniform(-1.0, 1.0)) +
                    0.08f * static_cast<float>(variant);
  hsv_to_rgb(hue, 0.75f, 0.9f, st.fg_color);
  hsv_to_rgb(hue + 0.35f + 0.15f * spread *
                       static_cast<float>(var_rng.uniform(-1.0, 1.0)),
             0.6f, 0.8f, st.fg2_color);
  st.size = base_size * (1.0f + 0.35f * spread *
                                    static_cast<float>(var_rng.uniform(-1.0, 1.0)));
  st.aspect = base_aspect *
              (1.0f + 0.4f * spread * static_cast<float>(var_rng.uniform(-1.0, 1.0)));
  st.texture_freq =
      base_freq + 2.0f * spread * static_cast<float>(var_rng.uniform(-1.0, 1.0));
  st.base_rotation =
      base_rot + 0.8f * spread * static_cast<float>(var_rng.uniform(-1.0, 1.0));
  st.edge_softness = 0.12f;
  return st;
}

ProceduralImageWorld::InstanceStyle ProceduralImageWorld::instance_style(
    int64_t cls, int64_t instance) const {
  Rng rng(mix(seed_, mix(0x1257A7CEull + static_cast<uint64_t>(cls),
                         static_cast<uint64_t>(instance))));
  InstanceStyle st;
  st.scale_jitter = static_cast<float>(rng.uniform(0.85, 1.15));
  st.rotation_offset = static_cast<float>(rng.uniform(-0.5, 0.5));
  for (float& c : st.color_shift) c = static_cast<float>(rng.uniform(-0.08, 0.08));
  st.center_x = static_cast<float>(rng.uniform(-0.18, 0.18));
  st.center_y = static_cast<float>(rng.uniform(-0.18, 0.18));
  return st;
}

ProceduralImageWorld::EnvironmentStyle ProceduralImageWorld::environment_style(
    int64_t environment) const {
  Rng rng(mix(seed_, 0xE47000ull + static_cast<uint64_t>(environment)));
  EnvironmentStyle st;
  const float hue = static_cast<float>(rng.uniform());
  hsv_to_rgb(hue, 0.25f, static_cast<float>(rng.uniform(0.25, 0.55)), st.bg_color);
  for (float& g : st.bg_grad) g = static_cast<float>(rng.uniform(-0.15, 0.15));
  st.brightness = static_cast<float>(rng.uniform(0.75, 1.2));
  st.grad_dir = static_cast<float>(rng.uniform(0.0, 6.2831853));
  return st;
}

Tensor ProceduralImageWorld::render(int64_t cls, int64_t instance,
                                    int64_t environment, int64_t frame) const {
  DECO_CHECK(cls >= 0 && cls < spec_.num_classes, "render: class out of range");
  DECO_CHECK(instance >= 0 && instance < spec_.instances_per_class,
             "render: instance out of range");
  DECO_CHECK(environment >= 0 && environment < spec_.environments,
             "render: environment out of range");

  const ClassStyle cs = class_style(cls);
  const InstanceStyle is = instance_style(cls, instance);
  const EnvironmentStyle es = environment_style(environment);

  // Smooth temporal pose drift: consecutive frames look like video.
  const float t = static_cast<float>(frame);
  const float rot = cs.base_rotation + is.rotation_offset + 0.05f * t;
  const float wob_x = is.center_x + 0.10f * std::sin(0.13f * t + is.rotation_offset);
  const float wob_y = is.center_y + 0.10f * std::cos(0.11f * t);
  const float scale =
      cs.size * is.scale_jitter * (1.0f + 0.08f * std::sin(0.07f * t));
  const float cr = std::cos(rot), sr = std::sin(rot);
  const float gx = std::cos(es.grad_dir), gy = std::sin(es.grad_dir);

  Rng noise_rng(mix(seed_, mix(mix(static_cast<uint64_t>(cls) + 11,
                                   static_cast<uint64_t>(instance) + 13),
                               mix(static_cast<uint64_t>(environment) + 17,
                                   static_cast<uint64_t>(frame) + 0x7FFF0000ull))));

  const int64_t H = spec_.height, W = spec_.width;
  Tensor img({spec_.channels, H, W});
  float* p = img.data();
  const int64_t plane = H * W;

  for (int64_t y = 0; y < H; ++y) {
    const float ny = 2.0f * (static_cast<float>(y) + 0.5f) / H - 1.0f;
    for (int64_t x = 0; x < W; ++x) {
      const float nx = 2.0f * (static_cast<float>(x) + 0.5f) / W - 1.0f;

      // Object coordinates: translate, rotate, scale.
      const float dx = nx - wob_x, dy = ny - wob_y;
      const float ox = (cr * dx + sr * dy) / scale;
      const float oy = (-sr * dx + cr * dy) / scale;

      const float sdf = shape_sdf(cs.shape_family, ox, oy, cs.aspect);
      const float cover = clamp01(0.5f - sdf / cs.edge_softness);

      // Texture: blend primary and secondary color by a stripe field.
      const float tex =
          0.5f + 0.5f * std::sin(cs.texture_freq * (ox + 0.6f * oy));
      const float grad = gx * nx + gy * ny;

      for (int64_t c = 0; c < 3; ++c) {
        const float fg = cs.fg_color[c] * (1.0f - 0.45f * tex) +
                         cs.fg2_color[c] * 0.45f * tex + is.color_shift[c];
        const float bg = es.bg_color[c] + es.bg_grad[c] * grad;
        float v = es.brightness * (bg + cover * (fg - bg));
        v += spec_.noise_sigma * static_cast<float>(noise_rng.normal());
        p[c * plane + y * W + x] = clamp01(v);
      }
    }
  }
  return img;
}

Dataset ProceduralImageWorld::make_labeled_set(int64_t frames_per_class,
                                               uint64_t seed) const {
  // Frame indices from a reserved range so the set is disjoint from streams
  // (streams use small non-negative frame indices).
  constexpr int64_t kLabeledFrameBase = 1'000'000;
  Dataset ds(spec_.channels, spec_.height, spec_.width);
  Rng rng(mix(seed_, mix(seed, 0x1ABE1EDull)));
  for (int64_t cls = 0; cls < spec_.num_classes; ++cls) {
    for (int64_t k = 0; k < frames_per_class; ++k) {
      const int64_t inst = rng.uniform_int(spec_.instances_per_class);
      const int64_t env = rng.uniform_int(spec_.environments);
      const int64_t frame = kLabeledFrameBase + rng.uniform_int(100'000);
      ds.add(render(cls, inst, env, frame), cls, inst, env);
    }
  }
  return ds;
}

Dataset ProceduralImageWorld::make_test_set(int64_t frames_per_class,
                                            uint64_t seed) const {
  constexpr int64_t kTestFrameBase = 2'000'000;
  Dataset ds(spec_.channels, spec_.height, spec_.width);
  Rng rng(mix(seed_, mix(seed, 0x7E57ull)));
  for (int64_t cls = 0; cls < spec_.num_classes; ++cls) {
    for (int64_t k = 0; k < frames_per_class; ++k) {
      const int64_t inst = rng.uniform_int(spec_.instances_per_class);
      const int64_t env = rng.uniform_int(spec_.environments);
      const int64_t frame = kTestFrameBase + rng.uniform_int(100'000);
      ds.add(render(cls, inst, env, frame), cls, inst, env);
    }
  }
  return ds;
}

}  // namespace deco::data
