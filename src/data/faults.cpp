#include "deco/data/faults.h"

#include <algorithm>
#include <limits>

#include "deco/core/telemetry.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::data {

namespace {
void check_rate(double r, const char* name) {
  DECO_CHECK(r >= 0.0 && r <= 1.0,
             std::string("FaultConfig: ") + name + " must be in [0, 1]");
}
}  // namespace

bool FaultConfig::any() const {
  return dead_pixel_rate > 0.0 || hot_pixel_rate > 0.0 ||
         salt_pepper_rate > 0.0 || overexpose_rate > 0.0 ||
         underexpose_rate > 0.0 || drop_frame_rate > 0.0 ||
         duplicate_frame_rate > 0.0 || truncate_rate > 0.0 ||
         nan_burst_rate > 0.0 || inf_burst_rate > 0.0;
}

void FaultConfig::validate() const {
  check_rate(dead_pixel_rate, "dead_pixel_rate");
  check_rate(hot_pixel_rate, "hot_pixel_rate");
  check_rate(salt_pepper_rate, "salt_pepper_rate");
  check_rate(overexpose_rate, "overexpose_rate");
  check_rate(underexpose_rate, "underexpose_rate");
  check_rate(drop_frame_rate, "drop_frame_rate");
  check_rate(duplicate_frame_rate, "duplicate_frame_rate");
  check_rate(truncate_rate, "truncate_rate");
  check_rate(nan_burst_rate, "nan_burst_rate");
  check_rate(inf_burst_rate, "inf_burst_rate");
  DECO_CHECK(burst_size >= 1, "FaultConfig: burst_size must be >= 1");
  // Pixel-level rates must sum below 1 so the single-draw classification in
  // corrupt_segment stays a valid probability partition.
  DECO_CHECK(dead_pixel_rate + hot_pixel_rate + salt_pepper_rate <= 1.0,
             "FaultConfig: pixel fault rates must sum to <= 1");
}

int64_t FaultLog::total_faults() const {
  return dead_pixels + hot_pixels + salt_pepper_pixels + frames_overexposed +
         frames_underexposed + frames_dropped + frames_duplicated +
         segments_truncated + nan_bursts + inf_bursts;
}

FaultyStream::FaultyStream(TemporalStream& inner, FaultConfig config,
                           uint64_t seed)
    : inner_(inner), config_(config), rng_(seed) {
  config_.validate();
}

bool FaultyStream::next(Segment& out) {
  if (!inner_.next(out)) return false;
  const int64_t faults_before = log_.total_faults();
  if (config_.any()) corrupt_segment(out);
  ++log_.segments_emitted;
  log_.frames_emitted += out.images.dim(0);
  {
    namespace telem = core::telemetry;
    static telem::Counter& c_segments = telem::counter("faults/segments");
    static telem::Counter& c_injected = telem::counter("faults/injected");
    c_segments.add(1);
    c_injected.add(log_.total_faults() - faults_before);
  }
  return true;
}

void FaultyStream::corrupt_segment(Segment& seg) {
  const int64_t s0 = seg.images.dim(0);
  const int64_t per = seg.images.numel() / std::max<int64_t>(1, s0);

  // 1. Structural faults first: truncation, then per-frame drops. At least
  //    one frame always survives so downstream code never sees an empty
  //    segment (a real capture pipeline would simply retry).
  int64_t keep_len = s0;
  if (config_.truncate_rate > 0.0 && rng_.bernoulli(config_.truncate_rate) &&
      s0 > 1) {
    keep_len = 1 + rng_.uniform_int(s0 - 1);  // uniform in [1, s0-1]
    ++log_.segments_truncated;
  }
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(keep_len));
  for (int64_t i = 0; i < keep_len; ++i) {
    if (config_.drop_frame_rate > 0.0 &&
        rng_.bernoulli(config_.drop_frame_rate)) {
      ++log_.frames_dropped;
      continue;
    }
    keep.push_back(i);
  }
  if (keep.empty()) {
    keep.push_back(0);
    --log_.frames_dropped;  // the drop was suppressed, not applied
  }
  if (static_cast<int64_t>(keep.size()) != s0) {
    seg.images = take(seg.images, keep);
    std::vector<int64_t> labels;
    labels.reserve(keep.size());
    for (int64_t i : keep)
      labels.push_back(seg.true_labels[static_cast<size_t>(i)]);
    seg.true_labels = std::move(labels);
  }
  const int64_t s = seg.images.dim(0);
  float* px = seg.images.data();

  // 2. Duplicated frames: the capture pipeline re-delivers the previous frame
  //    (label rides along — it really is that frame).
  for (int64_t i = 1; i < s; ++i) {
    if (config_.duplicate_frame_rate > 0.0 &&
        rng_.bernoulli(config_.duplicate_frame_rate)) {
      std::copy(px + (i - 1) * per, px + i * per, px + i * per);
      seg.true_labels[static_cast<size_t>(i)] =
          seg.true_labels[static_cast<size_t>(i - 1)];
      ++log_.frames_duplicated;
    }
  }

  // 3. Per-frame value faults.
  const bool pixel_faults = config_.dead_pixel_rate > 0.0 ||
                            config_.hot_pixel_rate > 0.0 ||
                            config_.salt_pepper_rate > 0.0;
  for (int64_t i = 0; i < s; ++i) {
    float* f = px + i * per;
    if (config_.overexpose_rate > 0.0 &&
        rng_.bernoulli(config_.overexpose_rate)) {
      for (int64_t j = 0; j < per; ++j)
        f[j] = std::clamp(f[j] * 3.0f + 0.3f, 0.0f, 1.0f);
      ++log_.frames_overexposed;
    } else if (config_.underexpose_rate > 0.0 &&
               rng_.bernoulli(config_.underexpose_rate)) {
      for (int64_t j = 0; j < per; ++j) f[j] *= 0.1f;
      ++log_.frames_underexposed;
    }
    if (pixel_faults) {
      // One uniform draw per pixel, classified against the cumulative rates
      // (validate() guarantees they partition [0, 1]).
      const double t_dead = config_.dead_pixel_rate;
      const double t_hot = t_dead + config_.hot_pixel_rate;
      const double t_sp = t_hot + config_.salt_pepper_rate;
      for (int64_t j = 0; j < per; ++j) {
        const double u = rng_.uniform();
        if (u < t_dead) {
          f[j] = 0.0f;
          ++log_.dead_pixels;
        } else if (u < t_hot) {
          f[j] = 1.0f;
          ++log_.hot_pixels;
        } else if (u < t_sp) {
          f[j] = rng_.bernoulli(0.5) ? 1.0f : 0.0f;
          ++log_.salt_pepper_pixels;
        }
      }
    }
    if (config_.nan_burst_rate > 0.0 &&
        rng_.bernoulli(config_.nan_burst_rate)) {
      const int64_t n = std::min(config_.burst_size, per);
      const int64_t start = rng_.uniform_int(per - n + 1);
      for (int64_t j = 0; j < n; ++j)
        f[start + j] = std::numeric_limits<float>::quiet_NaN();
      ++log_.nan_bursts;
    }
    if (config_.inf_burst_rate > 0.0 &&
        rng_.bernoulli(config_.inf_burst_rate)) {
      const int64_t n = std::min(config_.burst_size, per);
      const int64_t start = rng_.uniform_int(per - n + 1);
      for (int64_t j = 0; j < n; ++j)
        f[start + j] = (j % 2 == 0 ? 1.0f : -1.0f) *
                       std::numeric_limits<float>::infinity();
      ++log_.inf_bursts;
    }
  }
}

}  // namespace deco::data
