#include "deco/data/dataset.h"

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::data {

void Dataset::add(Tensor image, int64_t label, int64_t instance_id,
                  int64_t environment) {
  DECO_CHECK(image.ndim() == 3 && image.dim(0) == channels_ &&
                 image.dim(1) == height_ && image.dim(2) == width_,
             "Dataset::add: image " + image.shape_str() + " does not match (" +
                 std::to_string(channels_) + "," + std::to_string(height_) + "," +
                 std::to_string(width_) + ")");
  images_.push_back(std::move(image));
  labels_.push_back(label);
  instance_ids_.push_back(instance_id);
  environments_.push_back(environment);
}

Tensor Dataset::batch(const std::vector<int64_t>& indices) const {
  DECO_CHECK(!indices.empty(), "Dataset::batch: empty index list");
  Tensor out({static_cast<int64_t>(indices.size()), channels_, height_, width_});
  const int64_t per = channels_ * height_ * width_;
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    DECO_CHECK(idx >= 0 && idx < size(), "Dataset::batch: index out of range");
    const Tensor& img = images_[static_cast<size_t>(idx)];
    std::copy(img.data(), img.data() + per, po + static_cast<int64_t>(i) * per);
  }
  return out;
}

std::vector<int64_t> Dataset::batch_labels(
    const std::vector<int64_t>& indices) const {
  std::vector<int64_t> out;
  out.reserve(indices.size());
  for (int64_t idx : indices) {
    DECO_CHECK(idx >= 0 && idx < size(), "Dataset::batch_labels: index range");
    out.push_back(labels_[static_cast<size_t>(idx)]);
  }
  return out;
}

std::vector<int64_t> Dataset::indices_of_class(int64_t cls) const {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < size(); ++i)
    if (labels_[static_cast<size_t>(i)] == cls) out.push_back(i);
  return out;
}

std::vector<int64_t> Dataset::sample_indices(int64_t k, Rng& rng) const {
  return rng.sample_without_replacement(size(), k);
}

}  // namespace deco::data
