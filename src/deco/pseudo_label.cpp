#include "deco/core/pseudo_label.h"

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::core {

PseudoLabelResult pseudo_label_segment(nn::ConvNet& model, const Tensor& images,
                                       float threshold_m) {
  DECO_CHECK(images.ndim() == 4, "pseudo_label_segment: images must be NCHW");
  PseudoLabelResult res;

  Tensor logits = model.forward(images);
  Tensor probs = softmax_rows(logits);
  res.labels = argmax_rows(probs);
  res.confidences = max_rows(probs);

  res.active_classes =
      majority_vote(res.labels, model.config().num_classes, threshold_m);

  // Eq. (3): keep exactly the samples whose pseudo-label is active.
  std::vector<bool> active(static_cast<size_t>(model.config().num_classes), false);
  for (int64_t c : res.active_classes) active[static_cast<size_t>(c)] = true;
  for (size_t i = 0; i < res.labels.size(); ++i)
    if (active[static_cast<size_t>(res.labels[i])])
      res.retained.push_back(static_cast<int64_t>(i));
  return res;
}

std::vector<int64_t> majority_vote(const std::vector<int64_t>& labels,
                                   int64_t num_classes, float threshold_m) {
  DECO_CHECK(num_classes >= 1, "majority_vote: bad class count");
  DECO_CHECK(!labels.empty(), "majority_vote: empty window");
  std::vector<int64_t> counts(static_cast<size_t>(num_classes), 0);
  for (int64_t y : labels) {
    DECO_CHECK(y >= 0 && y < num_classes, "majority_vote: label out of range");
    ++counts[static_cast<size_t>(y)];
  }
  const float inv = 1.0f / static_cast<float>(labels.size());
  std::vector<int64_t> active;
  for (int64_t c = 0; c < num_classes; ++c)
    if (static_cast<float>(counts[static_cast<size_t>(c)]) * inv > threshold_m)
      active.push_back(c);
  return active;
}

}  // namespace deco::core
