#include "deco/core/learner.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "deco/core/telemetry.h"
#include "deco/nn/loss.h"
#include "deco/nn/optim.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "deco/tensor/serialize.h"

namespace deco::core {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- save_state / load_state helpers ----------------------------------------

constexpr char kStateMagic[8] = {'D', 'E', 'C', 'O', 'L', 'S', 'A', 'V'};
constexpr uint32_t kStateVersion = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DECO_CHECK(static_cast<bool>(is), "learner state truncated");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const uint32_t n = read_pod<uint32_t>(is);
  DECO_CHECK(n < 4096, "learner state: bad string length");
  std::string s(n, '\0');
  is.read(s.data(), n);
  DECO_CHECK(static_cast<bool>(is), "learner state: string truncated");
  return s;
}

void write_rng_state(std::ostream& os, const RngState& st) {
  for (uint64_t w : st.s) write_pod(os, w);
  write_pod(os, static_cast<uint8_t>(st.has_cached_normal ? 1 : 0));
  write_pod(os, st.cached_normal);
}

RngState read_rng_state(std::istream& is) {
  RngState st;
  for (auto& w : st.s) w = read_pod<uint64_t>(is);
  st.has_cached_normal = read_pod<uint8_t>(is) != 0;
  st.cached_normal = read_pod<double>(is);
  return st;
}
}  // namespace

void OnDeviceLearner::save_state(const std::string& path) const {
  (void)path;
  DECO_CHECK(false, name() + ": save_state is not supported by this learner "
                    "(supports_state() is false)");
}

void OnDeviceLearner::load_state(const std::string& path) {
  (void)path;
  DECO_CHECK(false, name() + ": load_state is not supported by this learner "
                    "(supports_state() is false)");
}

void DecoConfig::validate() const {
  DECO_CHECK(ipc >= 1, "DecoConfig: ipc must be >= 1");
  DECO_CHECK(threshold_m >= 0.0f && threshold_m <= 1.0f,
             "DecoConfig: threshold_m must be in [0, 1]");
  DECO_CHECK(beta >= 1, "DecoConfig: beta must be >= 1");
  DECO_CHECK(model_update_epochs >= 0,
             "DecoConfig: model_update_epochs must be >= 0");
  DECO_CHECK(lr_model > 0.0f, "DecoConfig: lr_model must be > 0");
  DECO_CHECK(weight_decay >= 0.0f, "DecoConfig: weight_decay must be >= 0");
  DECO_CHECK(train_batch >= 1, "DecoConfig: train_batch must be >= 1");
  DECO_CHECK(condenser.iterations >= 1,
             "DecoConfig: condenser.iterations must be >= 1");
  DECO_CHECK(condenser.lr_syn > 0.0f, "DecoConfig: condenser.lr_syn must be > 0");
  DECO_CHECK(condenser.alpha >= 0.0f, "DecoConfig: condenser.alpha must be >= 0");
  guard.validate();
  storage.validate();
}

DecoLearner::DecoLearner(nn::ConvNet& model, DecoConfig config, uint64_t seed)
    : DecoLearner(model, config, seed,
                  std::make_unique<condense::DecoCondenser>(
                      model.config(), config.condenser, seed ^ 0xD3C0ull)) {}

DecoLearner::DecoLearner(nn::ConvNet& model, DecoConfig config, uint64_t seed,
                         std::unique_ptr<condense::Condenser> condenser)
    : model_(model),
      config_(config),
      rng_(seed),
      buffer_(model.config().num_classes, config.ipc, model.config().in_channels,
              model.config().image_h, model.config().image_w),
      condenser_(std::move(condenser)),
      guard_(config.guard) {
  DECO_CHECK(condenser_ != nullptr, "DecoLearner: null condenser");
  config_.validate();
  buffer_.set_storage(config_.storage.cache_dtype, config_.storage.block);
}

std::string DecoLearner::name() const { return condenser_->name(); }

void DecoLearner::init_buffer_from(const data::Dataset& labeled) {
  buffer_.init_from_dataset(labeled, rng_);
  if (config_.condenser.learn_soft_labels && !buffer_.soft_labels_enabled())
    buffer_.enable_soft_labels();
  // The warm start goes through quantized storage too, so training always
  // sees exactly what the cache can represent.
  buffer_.commit_storage();
}

SegmentReport DecoLearner::observe_segment(const Tensor& images) {
  DECO_TRACE_SCOPE("learner/segment");
  {
    static telemetry::Counter& c = telemetry::counter("learner/segments");
    c.add(1);
  }
  const int64_t n = images.dim(0);
  const GuardStats stats_before = guard_.stats();

  SegmentReport report;

  // Screen the segment: frames with non-finite pixels (sensor faults, ISP
  // bugs) are quarantined before they can reach the model or the buffer.
  std::vector<int64_t> usable;
  const Tensor* x_in = &images;
  Tensor x_screened;
  bool screened = false;
  if (guard_.enabled()) {
    usable = guard_.screen_frames(images);
    if (static_cast<int64_t>(usable.size()) < n) {
      screened = true;
      if (usable.empty()) {
        // Nothing survived: report the segment as skipped but keep the
        // stream protocol (segment counting, β-schedule) intact.
        guard_.note_segment_skipped();
        report.pseudo_labels.assign(static_cast<size_t>(n), -1);
        report.confidences.assign(static_cast<size_t>(n), 0.0f);
        const GuardStats& s = guard_.stats();
        report.frames_quarantined = s.frames_quarantined - stats_before.frames_quarantined;
        report.segment_skipped = 1;
        ++segments_seen_;
        if (segments_seen_ % config_.beta == 0) update_model_now();
        return report;
      }
      x_screened = take(images, usable);
      x_in = &x_screened;
    }
  }

  // Majority voting can be ablated: threshold 0 keeps every class with at
  // least one prediction, i.e. plain self-training pseudo-labels.
  const float m = config_.use_majority_voting ? config_.threshold_m : 0.0f;
  PseudoLabelResult pl;
  {
    DECO_TRACE_SCOPE("learner/pseudo_label");
    pl = pseudo_label_segment(model_, *x_in, m);
  }

  if (!screened) {
    report.pseudo_labels = pl.labels;
    report.confidences = pl.confidences;
    report.retained = pl.retained;
  } else {
    // Map screened-segment indices back to positions in the full segment;
    // quarantined frames report label −1 / confidence 0 and are never
    // retained.
    report.pseudo_labels.assign(static_cast<size_t>(n), -1);
    report.confidences.assign(static_cast<size_t>(n), 0.0f);
    for (size_t i = 0; i < usable.size(); ++i) {
      report.pseudo_labels[static_cast<size_t>(usable[i])] = pl.labels[i];
      report.confidences[static_cast<size_t>(usable[i])] = pl.confidences[i];
    }
    report.retained.reserve(pl.retained.size());
    for (int64_t i : pl.retained)
      report.retained.push_back(usable[static_cast<size_t>(i)]);
  }
  report.active_class_count = static_cast<int64_t>(pl.active_classes.size());

  if (!pl.retained.empty() && !pl.active_classes.empty()) {
    Tensor x_real = take(*x_in, pl.retained);
    std::vector<int64_t> y_real;
    std::vector<float> w_real;
    y_real.reserve(pl.retained.size());
    w_real.reserve(pl.retained.size());
    for (int64_t i : pl.retained) {
      y_real.push_back(pl.labels[static_cast<size_t>(i)]);
      w_real.push_back(pl.confidences[static_cast<size_t>(i)]);
    }

    condense::CondenseContext ctx;
    ctx.buffer = &buffer_;
    ctx.x_real = &x_real;
    ctx.y_real = &y_real;
    ctx.w_real = &w_real;
    ctx.active_classes = &pl.active_classes;
    ctx.deployed_model = &model_;
    ctx.rng = &rng_;
    ctx.guard = guard_.enabled() ? &guard_ : nullptr;

    const double t0 = now_seconds();
    {
      DECO_TRACE_SCOPE("learner/condense");
      condenser_->condense(ctx);
    }
    condense_seconds_ += now_seconds() - t0;

    // The segment's refinements become durable by passing through the
    // (possibly quantized) canonical storage: the working images are
    // re-encoded and refreshed to the decoded values, so quantization noise
    // is visible to subsequent training rather than hidden until a save.
    buffer_.commit_storage();

    if (auto* deco = dynamic_cast<condense::DecoCondenser*>(condenser_.get());
        deco != nullptr && !deco->last_distances().empty()) {
      report.condense_distance = deco->last_distances().back();
    }
  }

  ++segments_seen_;
  if (segments_seen_ % config_.beta == 0) update_model_now();

  const GuardStats& s = guard_.stats();
  report.frames_quarantined =
      s.frames_quarantined - stats_before.frames_quarantined;
  report.steps_rolled_back =
      s.steps_rolled_back - stats_before.steps_rolled_back;
  report.batches_skipped = s.batches_skipped - stats_before.batches_skipped;
  report.grads_clipped = s.grads_clipped - stats_before.grads_clipped;
  return report;
}

void DecoLearner::update_model_now() {
  DECO_TRACE_SCOPE("learner/model_update");
  NumericGuard* guard = guard_.enabled() ? &guard_ : nullptr;
  if (buffer_.soft_labels_enabled()) {
    std::vector<int64_t> all(static_cast<size_t>(buffer_.size()));
    for (int64_t r = 0; r < buffer_.size(); ++r) all[static_cast<size_t>(r)] = r;
    train_classifier_soft(model_, buffer_.images(), buffer_.soft_targets(all),
                          config_.model_update_epochs, config_.lr_model,
                          config_.weight_decay, config_.train_batch, rng_,
                          guard);
    return;
  }
  train_classifier(model_, buffer_.images(), buffer_.labels(),
                   config_.model_update_epochs, config_.lr_model,
                   config_.weight_decay, config_.train_batch, rng_, guard);
}

int64_t DecoLearner::memory_bytes() const {
  // The image cache counts at its *stored* size (post-quantization); soft
  // logits and model parameters stay resident as fp32.
  int64_t floats = 0;
  if (buffer_.soft_labels_enabled())
    floats += buffer_.size() * buffer_.num_classes();
  for (const nn::ParamRef& p : model_.parameters())
    floats += p.value->numel();
  return buffer_.stored_bytes() + floats * static_cast<int64_t>(sizeof(float));
}

int64_t DecoLearner::cache_stored_bytes() const {
  return buffer_.stored_bytes();
}

int64_t DecoLearner::cache_logical_bytes() const {
  return buffer_.logical_bytes();
}

void DecoLearner::save_state(const std::string& path) const {
  // Serialize body (everything after the magic) to memory, append a CRC32
  // trailer, and write the whole file atomically: a power loss mid-save
  // preserves the previous state file.
  std::ostringstream os(std::ios::binary);
  write_pod(os, kStateVersion);
  write_pod(os, segments_seen_);
  write_rng_state(os, rng_.state());

  auto params = model_.parameters();
  write_pod(os, static_cast<uint32_t>(params.size()));
  const StoragePolicy& sp = config_.storage;
  for (const nn::ParamRef& p : params) {
    write_string(os, p.name);
    // fp32 keeps the legacy v2 record (bit-exact resume, stable files);
    // fp16/int8 emit v3 records at the checkpoint dtype.
    if (sp.checkpoint_dtype == DType::kF32)
      write_tensor(os, *p.value);
    else
      write_tensor(os, *p.value, sp.checkpoint_dtype, sp.block);
  }

  // A quantized cache persists its canonical stored bytes verbatim (no
  // re-encode), which is what makes save -> load -> save byte-identical.
  if (sp.cache_dtype == DType::kF32)
    write_tensor(os, buffer_.images());
  else
    write_qtensor(os, buffer_.stored_images());
  const uint8_t soft = buffer_.soft_labels_enabled() ? 1 : 0;
  write_pod(os, soft);
  if (soft != 0)
    write_tensor(os, const_cast<condense::SyntheticBuffer&>(buffer_).label_logits());

  write_string(os, condenser_->name());
  condenser_->save_state(os);
  DECO_CHECK(static_cast<bool>(os), "save_state: serialization failed");

  const std::string body = os.str();
  std::string file(kStateMagic, sizeof(kStateMagic));
  file += body;
  const uint32_t crc = crc32(body.data(), body.size());
  file.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  atomic_write_file(path, file);
}

void DecoLearner::load_state(const std::string& path) {
  std::string file;
  {
    std::ifstream is(path, std::ios::binary);
    DECO_CHECK(is.is_open(), "load_state: cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    file = buf.str();
  }
  DECO_CHECK(file.size() >= sizeof(kStateMagic) + sizeof(uint32_t) * 2,
             "load_state: file too small");
  DECO_CHECK(std::equal(kStateMagic, kStateMagic + sizeof(kStateMagic),
                        file.begin()),
             "load_state: not a DECO learner state file");
  const size_t body_len =
      file.size() - sizeof(kStateMagic) - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, file.data() + file.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t crc = crc32(file.data() + sizeof(kStateMagic), body_len);
  DECO_CHECK(stored == crc, "load_state: CRC mismatch (corrupted state file)");

  std::istringstream is(file.substr(sizeof(kStateMagic), body_len),
                        std::ios::binary);
  const uint32_t version = read_pod<uint32_t>(is);
  DECO_CHECK(version == kStateVersion,
             "load_state: unsupported version " + std::to_string(version));
  const int64_t segments = read_pod<int64_t>(is);
  DECO_CHECK(segments >= 0, "load_state: negative segment counter");
  const RngState rng_state = read_rng_state(is);

  // Stage everything and validate against the live model/buffer before any
  // commit, so a mismatched file never leaves the learner half-loaded.
  auto params = model_.parameters();
  const uint32_t count = read_pod<uint32_t>(is);
  DECO_CHECK(count == params.size(),
             "load_state: parameter count mismatch (file " +
                 std::to_string(count) + ", model " +
                 std::to_string(params.size()) + ")");
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (const nn::ParamRef& p : params) {
    const std::string name = read_string(is);
    DECO_CHECK(name == p.name,
               "load_state: parameter order mismatch: expected " + p.name +
                   ", found " + name);
    Tensor t = read_tensor(is);
    DECO_CHECK(t.shape() == p.value->shape(),
               "load_state: shape mismatch for " + p.name);
    staged.push_back(std::move(t));
  }

  // The buffer record is staged in its stored form: a quantized cache is
  // restored byte-for-byte, an fp32 cache decodes to the exact saved bits.
  QTensor qimages = read_qtensor(is);
  DECO_CHECK(qimages.shape() == buffer_.images().shape(),
             "load_state: buffer shape mismatch (buffer " +
                 buffer_.images().shape_str() + ")");
  if (config_.storage.cache_dtype == DType::kF32) {
    DECO_CHECK(qimages.dtype() == DType::kF32,
               "load_state: state cache dtype " + dtype_name(qimages.dtype()) +
                   " does not match the configured fp32 cache (set "
                   "deco.cache_dtype to match the saved state)");
  } else {
    DECO_CHECK(qimages.dtype() == config_.storage.cache_dtype &&
                   qimages.block() == config_.storage.block,
               "load_state: state cache dtype/block (" +
                   dtype_name(qimages.dtype()) +
                   ") does not match the configured deco.cache_dtype (" +
                   dtype_name(config_.storage.cache_dtype) + ")");
  }
  const uint8_t soft = read_pod<uint8_t>(is);
  Tensor logits;
  if (soft != 0) {
    logits = read_tensor(is);
    DECO_CHECK(logits.ndim() == 2 && logits.dim(0) == buffer_.size() &&
                   logits.dim(1) == buffer_.num_classes(),
               "load_state: soft-label logits shape mismatch");
  }
  const std::string condenser_name = read_string(is);
  DECO_CHECK(condenser_name == condenser_->name(),
             "load_state: condenser mismatch (file '" + condenser_name +
                 "', learner '" + condenser_->name() + "')");

  // Commit.
  for (size_t i = 0; i < params.size(); ++i)
    *params[i].value = std::move(staged[i]);
  if (config_.storage.cache_dtype == DType::kF32)
    buffer_.images() = qimages.decode();
  else
    buffer_.restore_stored(std::move(qimages));
  if (soft != 0) {
    if (!buffer_.soft_labels_enabled()) buffer_.enable_soft_labels();
    buffer_.label_logits() = std::move(logits);
  }
  segments_seen_ = segments;
  rng_.set_state(rng_state);
  condenser_->load_state(is);  // integrity already established by the CRC
}

void train_classifier(nn::ConvNet& model, const Tensor& images,
                      const std::vector<int64_t>& labels, int64_t epochs,
                      float lr, float weight_decay, int64_t batch_size,
                      Rng& rng, NumericGuard* guard) {
  const int64_t n = images.dim(0);
  DECO_CHECK(n == static_cast<int64_t>(labels.size()),
             "train_classifier: label count mismatch");
  if (n == 0) return;
  const bool guarded = guard != nullptr && guard->enabled();
  nn::SgdMomentum opt(model, lr, 0.9f, weight_decay);

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  for (int64_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int64_t start = 0; start < n; start += batch_size) {
      const int64_t end = std::min(n, start + batch_size);
      std::vector<int64_t> idx(order.begin() + start, order.begin() + end);
      Tensor xb = take(images, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(labels[static_cast<size_t>(i)]);

      model.zero_grad();
      Tensor logits = model.forward(xb);
      auto ce = nn::weighted_cross_entropy(logits, yb);
      if (guarded && !guard->admit_loss(ce.loss)) {
        model.zero_grad();
        continue;
      }
      model.backward(ce.grad_logits);
      if (guarded && !guard->admit_gradients(model.parameters())) {
        model.zero_grad();
        continue;
      }
      opt.step();
      model.zero_grad();
    }
  }
}

void train_classifier_soft(nn::ConvNet& model, const Tensor& images,
                           const Tensor& targets, int64_t epochs, float lr,
                           float weight_decay, int64_t batch_size, Rng& rng,
                           NumericGuard* guard) {
  const int64_t n = images.dim(0);
  DECO_CHECK(targets.ndim() == 2 && targets.dim(0) == n,
             "train_classifier_soft: target count mismatch");
  if (n == 0) return;
  const bool guarded = guard != nullptr && guard->enabled();
  nn::SgdMomentum opt(model, lr, 0.9f, weight_decay);

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  for (int64_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int64_t start = 0; start < n; start += batch_size) {
      const int64_t end = std::min(n, start + batch_size);
      std::vector<int64_t> idx(order.begin() + start, order.begin() + end);
      Tensor xb = take(images, idx);
      Tensor qb = take(targets, idx);
      model.zero_grad();
      Tensor logits = model.forward(xb);
      auto ce = nn::soft_cross_entropy(logits, qb);
      if (guarded && !guard->admit_loss(ce.loss)) {
        model.zero_grad();
        continue;
      }
      model.backward(ce.grad_logits);
      if (guarded && !guard->admit_gradients(model.parameters())) {
        model.zero_grad();
        continue;
      }
      opt.step();
      model.zero_grad();
    }
  }
}

}  // namespace deco::core
