#include "deco/core/learner.h"

#include <chrono>

#include "deco/nn/loss.h"
#include "deco/nn/optim.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"

namespace deco::core {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

DecoLearner::DecoLearner(nn::ConvNet& model, DecoConfig config, uint64_t seed)
    : DecoLearner(model, config, seed,
                  std::make_unique<condense::DecoCondenser>(
                      model.config(), config.condenser, seed ^ 0xD3C0ull)) {}

DecoLearner::DecoLearner(nn::ConvNet& model, DecoConfig config, uint64_t seed,
                         std::unique_ptr<condense::Condenser> condenser)
    : model_(model),
      config_(config),
      rng_(seed),
      buffer_(model.config().num_classes, config.ipc, model.config().in_channels,
              model.config().image_h, model.config().image_w),
      condenser_(std::move(condenser)) {
  DECO_CHECK(condenser_ != nullptr, "DecoLearner: null condenser");
  DECO_CHECK(config_.beta >= 1, "DecoLearner: beta must be >= 1");
}

std::string DecoLearner::name() const { return condenser_->name(); }

void DecoLearner::init_buffer_from(const data::Dataset& labeled) {
  buffer_.init_from_dataset(labeled, rng_);
  if (config_.condenser.learn_soft_labels && !buffer_.soft_labels_enabled())
    buffer_.enable_soft_labels();
}

SegmentReport DecoLearner::observe_segment(const Tensor& images) {
  // Majority voting can be ablated: threshold 0 keeps every class with at
  // least one prediction, i.e. plain self-training pseudo-labels.
  const float m = config_.use_majority_voting ? config_.threshold_m : 0.0f;
  PseudoLabelResult pl = pseudo_label_segment(model_, images, m);

  SegmentReport report;
  report.pseudo_labels = pl.labels;
  report.confidences = pl.confidences;
  report.retained = pl.retained;
  report.active_class_count = static_cast<int64_t>(pl.active_classes.size());

  if (!pl.retained.empty() && !pl.active_classes.empty()) {
    Tensor x_real = take(images, pl.retained);
    std::vector<int64_t> y_real;
    std::vector<float> w_real;
    y_real.reserve(pl.retained.size());
    w_real.reserve(pl.retained.size());
    for (int64_t i : pl.retained) {
      y_real.push_back(pl.labels[static_cast<size_t>(i)]);
      w_real.push_back(pl.confidences[static_cast<size_t>(i)]);
    }

    condense::CondenseContext ctx;
    ctx.buffer = &buffer_;
    ctx.x_real = &x_real;
    ctx.y_real = &y_real;
    ctx.w_real = &w_real;
    ctx.active_classes = &pl.active_classes;
    ctx.deployed_model = &model_;
    ctx.rng = &rng_;

    const double t0 = now_seconds();
    condenser_->condense(ctx);
    condense_seconds_ += now_seconds() - t0;

    if (auto* deco = dynamic_cast<condense::DecoCondenser*>(condenser_.get());
        deco != nullptr && !deco->last_distances().empty()) {
      report.condense_distance = deco->last_distances().back();
    }
  }

  ++segments_seen_;
  if (segments_seen_ % config_.beta == 0) update_model_now();
  return report;
}

void DecoLearner::update_model_now() {
  if (buffer_.soft_labels_enabled()) {
    std::vector<int64_t> all(static_cast<size_t>(buffer_.size()));
    for (int64_t r = 0; r < buffer_.size(); ++r) all[static_cast<size_t>(r)] = r;
    train_classifier_soft(model_, buffer_.images(), buffer_.soft_targets(all),
                          config_.model_update_epochs, config_.lr_model,
                          config_.weight_decay, config_.train_batch, rng_);
    return;
  }
  train_classifier(model_, buffer_.images(), buffer_.labels(),
                   config_.model_update_epochs, config_.lr_model,
                   config_.weight_decay, config_.train_batch, rng_);
}

void train_classifier(nn::ConvNet& model, const Tensor& images,
                      const std::vector<int64_t>& labels, int64_t epochs,
                      float lr, float weight_decay, int64_t batch_size,
                      Rng& rng) {
  const int64_t n = images.dim(0);
  DECO_CHECK(n == static_cast<int64_t>(labels.size()),
             "train_classifier: label count mismatch");
  if (n == 0) return;
  nn::SgdMomentum opt(model, lr, 0.9f, weight_decay);

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  for (int64_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int64_t start = 0; start < n; start += batch_size) {
      const int64_t end = std::min(n, start + batch_size);
      std::vector<int64_t> idx(order.begin() + start, order.begin() + end);
      Tensor xb = take(images, idx);
      std::vector<int64_t> yb;
      yb.reserve(idx.size());
      for (int64_t i : idx) yb.push_back(labels[static_cast<size_t>(i)]);

      model.zero_grad();
      Tensor logits = model.forward(xb);
      auto ce = nn::weighted_cross_entropy(logits, yb);
      model.backward(ce.grad_logits);
      opt.step();
      model.zero_grad();
    }
  }
}

void train_classifier_soft(nn::ConvNet& model, const Tensor& images,
                           const Tensor& targets, int64_t epochs, float lr,
                           float weight_decay, int64_t batch_size, Rng& rng) {
  const int64_t n = images.dim(0);
  DECO_CHECK(targets.ndim() == 2 && targets.dim(0) == n,
             "train_classifier_soft: target count mismatch");
  if (n == 0) return;
  nn::SgdMomentum opt(model, lr, 0.9f, weight_decay);

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  for (int64_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (int64_t start = 0; start < n; start += batch_size) {
      const int64_t end = std::min(n, start + batch_size);
      std::vector<int64_t> idx(order.begin() + start, order.begin() + end);
      Tensor xb = take(images, idx);
      Tensor qb = take(targets, idx);
      model.zero_grad();
      Tensor logits = model.forward(xb);
      auto ce = nn::soft_cross_entropy(logits, qb);
      model.backward(ce.grad_logits);
      opt.step();
      model.zero_grad();
    }
  }
}

}  // namespace deco::core
