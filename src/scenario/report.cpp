#include <cstdio>
#include <fstream>
#include <string>

#include "deco/scenario/harness.h"
#include "deco/tensor/check.h"

namespace deco::scenario {

namespace {

// Fixed-width formatting keeps the document byte-stable across runs: the
// determinism tests memcmp whole JSON cells, so "%g"-style shortest-round-trip
// output (which can differ by libc) is off the table.
std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string cell_fields(const CellResult& c, bool with_wall) {
  std::string out;
  out += "\"scenario\": " + quoted(c.scenario);
  out += ", \"method\": " + quoted(c.method);
  out += ", \"sessions\": " + std::to_string(c.sessions);
  out += ", \"sessions_admitted\": " + std::to_string(c.sessions_admitted);
  out += ", \"cache_dtype\": " + quoted(c.cache_dtype);
  out += ", \"cache_stored_bytes\": " + std::to_string(c.cache_stored_bytes);
  out += ", \"cache_logical_bytes\": " + std::to_string(c.cache_logical_bytes);
  out += ", \"segments_submitted\": " + std::to_string(c.segments_submitted);
  out += ", \"segments_processed\": " + std::to_string(c.segments_processed);
  out += ", \"segments_shed\": " + std::to_string(c.segments_shed);
  out += ", \"accuracy\": " + fixed6(c.accuracy);
  out += ", \"forgetting\": " + fixed6(c.forgetting);
  out += ", \"pseudo_label_accuracy\": " + fixed6(c.pseudo_label_accuracy);
  out += ", \"peak_pool_bytes\": " + std::to_string(c.peak_pool_bytes);
  if (with_wall) out += ", \"wall_seconds\": " + fixed6(c.wall_seconds);
  return out;
}

}  // namespace

std::string CellResult::deterministic_json() const {
  return "{" + cell_fields(*this, /*with_wall=*/false) + "}";
}

std::string matrix_json(const MatrixReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"deco.bench_scenarios.v2\",\n";
  out += "  \"seed\": " + std::to_string(report.seed) + ",\n";
  out += "  \"threads\": " + std::to_string(report.threads) + ",\n";
  out += "  \"cells\": [\n";
  for (size_t i = 0; i < report.cells.size(); ++i) {
    out += "    {" + cell_fields(report.cells[i], /*with_wall=*/true) + "}";
    out += i + 1 < report.cells.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

void write_matrix_json(const MatrixReport& report, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DECO_CHECK(os.is_open(), "scenario: cannot open " + path + " for writing");
  os << matrix_json(report);
  DECO_CHECK(os.good(), "scenario: short write to " + path);
}

}  // namespace deco::scenario
