#include "deco/scenario/harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <utility>

#include "deco/baselines/replay.h"
#include "deco/core/learner.h"
#include "deco/core/thread_pool.h"
#include "deco/eval/metrics.h"
#include "deco/runtime/session_manager.h"
#include "deco/tensor/check.h"

namespace deco::scenario {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool is_condensation_method(const std::string& m) {
  return m == "deco" || m == "dc" || m == "dsa" || m == "dm" || m == "mtt";
}

bool is_known_method(const std::string& m) {
  if (is_condensation_method(m) || m == "upper_bound") return true;
  try {
    (void)baselines::strategy_from_name(m);
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::unique_ptr<condense::Condenser> make_condenser(
    const std::string& method, const nn::ConvNetConfig& mc,
    const condense::DecoCondenserConfig& deco_cfg, uint64_t seed) {
  if (method == "deco")
    return std::make_unique<condense::DecoCondenser>(mc, deco_cfg, seed);
  if (method == "dc" || method == "dsa") {
    condense::BilevelConfig bc;
    bc.dsa_strategy =
        method == "dsa" ? "flip_shift_scale_rotate_color_cutout" : "";
    return std::make_unique<condense::BilevelCondenser>(mc, bc, seed);
  }
  if (method == "dm")
    return std::make_unique<condense::DmCondenser>(mc, condense::DmConfig{},
                                                   seed);
  if (method == "mtt")
    return std::make_unique<condense::MttCondenser>(mc, condense::MttConfig{},
                                                    seed);
  DECO_CHECK(false, "scenario: not a condensation method: " + method);
  return nullptr;
}

/// Everything one session needs outside the SessionManager: its world and
/// test set, the decorator chain feeding its queue, the ground-truth labels
/// of every submitted segment, and the forgetting meter.
struct SessionCtx {
  std::string name;
  std::unique_ptr<data::ProceduralImageWorld> world;
  std::unique_ptr<data::Dataset> test;
  std::unique_ptr<data::TemporalStream> base;
  std::unique_ptr<data::FaultyStream> faulty;
  std::vector<std::unique_ptr<data::SegmentSource>> chain;
  data::SegmentSource* head = nullptr;
  std::vector<std::vector<int64_t>> submitted_labels;
  eval::ForgettingTracker tracker;
  /// False when the runtime's pool-budget admission rejected this session
  /// (memory-pressure scenarios). Rejected sessions submit nothing and are
  /// excluded from every per-session metric.
  bool admitted = true;
};

}  // namespace

void HarnessOptions::validate() const {
  DECO_CHECK(segments >= 0, "harness: segments must be >= 0");
  DECO_CHECK(ipc >= 1, "harness: ipc must be >= 1");
  DECO_CHECK(model_width >= 1 && model_depth >= 1,
             "harness: model shape must be >= 1");
  DECO_CHECK(pretrain_per_class >= 1 && pretrain_epochs >= 0,
             "harness: pretrain knobs out of range");
  DECO_CHECK(test_per_class >= 1, "harness: test_per_class must be >= 1");
  DECO_CHECK(model_update_epochs >= 1 && beta >= 1,
             "harness: model-update knobs out of range");
  DECO_CHECK(condenser_iterations >= 1,
             "harness: condenser_iterations must be >= 1");
  DECO_CHECK(eval_every_segments >= 0,
             "harness: eval_every_segments must be >= 0");
}

CellResult run_cell(const ScenarioSpec& spec, const std::string& method,
                    const HarnessOptions& options) {
  spec.validate();
  options.validate();
  DECO_CHECK(is_known_method(method),
             "scenario: unknown method '" + method + "'");
  const double t_start = now_seconds();
  const uint64_t seed = options.seed;

  data::StreamConfig sc = spec.stream;
  if (options.segments > 0) sc.total_segments = options.segments;

  runtime::RuntimeConfig rc;
  rc.queue_depth = spec.queue_depth;
  rc.overflow = spec.overflow;
  rc.keep_reports = true;
  if (spec.pool_budget_mb > 0) rc.pool_budget_mb = spec.pool_budget_mb;
  runtime::SessionManager manager(rc);

  // ---- build sessions -------------------------------------------------------
  std::vector<SessionCtx> sessions(static_cast<size_t>(spec.sessions));
  for (int64_t i = 0; i < spec.sessions; ++i) {
    SessionCtx& ctx = sessions[static_cast<size_t>(i)];
    ctx.name = "cell" + std::to_string(i);
    const uint64_t si = static_cast<uint64_t>(i);

    SessionVariant variant;
    if (!spec.variants.empty())
      variant = spec.variants[static_cast<size_t>(i) % spec.variants.size()];

    data::DatasetSpec ds = dataset_spec_by_name(spec.dataset);
    if (variant.image_hw > 0) ds.height = ds.width = variant.image_hw;
    // The world is a pure function of (spec, seed): sessions with identical
    // variants observe the same world, heterogeneous ones get their own.
    ctx.world =
        std::make_unique<data::ProceduralImageWorld>(ds, seed * 7919 + 17);
    data::Dataset pretrain =
        ctx.world->make_labeled_set(options.pretrain_per_class, seed + 1);
    ctx.test = std::make_unique<data::Dataset>(
        ctx.world->make_test_set(options.test_per_class, seed + 2));

    nn::ConvNetConfig mc;
    mc.in_channels = ds.channels;
    mc.image_h = ds.height;
    mc.image_w = ds.width;
    mc.num_classes = ds.num_classes;
    mc.width = variant.model_width > 0 ? variant.model_width
                                       : options.model_width;
    mc.depth = options.model_depth;

    Rng model_rng(seed * 0x9E37 + si * 1315423911ull + 0xC0FFEE);
    auto model = std::make_shared<nn::ConvNet>(mc, model_rng);
    {
      std::vector<int64_t> all(static_cast<size_t>(pretrain.size()));
      for (int64_t k = 0; k < pretrain.size(); ++k)
        all[static_cast<size_t>(k)] = k;
      core::train_classifier(*model, pretrain.batch(all), pretrain.labels(),
                             options.pretrain_epochs, 1e-3f, 5e-4f, 32,
                             model_rng);
    }

    const int64_t ipc = variant.ipc > 0 ? variant.ipc : options.ipc;
    std::unique_ptr<core::OnDeviceLearner> learner;
    if (is_condensation_method(method)) {
      core::DecoConfig dc;
      dc.ipc = ipc;
      dc.storage.cache_dtype = spec.cache_dtype;
      dc.beta = options.beta;
      dc.model_update_epochs = options.model_update_epochs;
      dc.condenser.iterations = options.condenser_iterations;
      auto condenser = make_condenser(method, mc, dc.condenser,
                                      (seed + si * 977) ^ 0xD3C0DE);
      auto deco = std::make_unique<core::DecoLearner>(
          *model, dc, seed + 1000 + si, std::move(condenser));
      deco->init_buffer_from(pretrain);
      learner = std::move(deco);
    } else if (method == "upper_bound") {
      baselines::BaselineConfig bc;
      bc.ipc = ipc;
      bc.storage.cache_dtype = spec.cache_dtype;
      bc.beta = options.beta;
      bc.model_update_epochs = options.model_update_epochs;
      auto ub = std::make_unique<baselines::UnlimitedLearner>(
          *model, bc, seed + 1000 + si);
      ub->init_buffer_from(pretrain);
      learner = std::move(ub);
    } else {
      baselines::BaselineConfig bc;
      bc.ipc = ipc;
      bc.storage.cache_dtype = spec.cache_dtype;
      bc.beta = options.beta;
      bc.model_update_epochs = options.model_update_epochs;
      auto bl = std::make_unique<baselines::BaselineLearner>(
          *model, baselines::strategy_from_name(method), bc,
          seed + 1000 + si);
      bl->init_buffer_from(pretrain);
      learner = std::move(bl);
    }
    // Under a memory-pressure budget, admission is expected to reject part
    // of the fleet — that's the measurement, not a failure. Rejected
    // sessions get no stream and drop out of every metric below.
    try {
      manager.add_session(ctx.name, std::move(learner), model);
    } catch (const Error&) {
      ctx.admitted = false;
      continue;
    }

    // ---- decorator chain: base -> [faults] -> [class-inc] -> [drift]
    //      -> [label noise] --------------------------------------------------
    ctx.base = std::make_unique<data::TemporalStream>(*ctx.world, sc,
                                                      seed + 100 + si);
    data::SegmentSource* head;
    if (spec.faults.any()) {
      ctx.faulty = std::make_unique<data::FaultyStream>(
          *ctx.base, spec.faults, (seed ^ 0xFA017ull) + si);
      ctx.chain.push_back(
          std::make_unique<data::SourceOf<data::FaultyStream>>(*ctx.faulty));
    } else {
      ctx.chain.push_back(
          std::make_unique<data::SourceOf<data::TemporalStream>>(*ctx.base));
    }
    head = ctx.chain.back().get();
    if (spec.class_incremental) {
      ctx.chain.push_back(std::make_unique<data::ClassIncrementalStream>(
          *ctx.world, *head, spec.phases, seed * 71 + 13 + si));
      head = ctx.chain.back().get();
    }
    if (spec.drift.active()) {
      ctx.chain.push_back(std::make_unique<data::DriftStream>(
          *head, spec.drift, seed * 31 + 7 + si));
      head = ctx.chain.back().get();
    }
    if (spec.label_noise.active()) {
      ctx.chain.push_back(std::make_unique<data::LabelNoiseStream>(
          *head, spec.label_noise, ds.num_classes, seed * 53 + 11 + si));
      head = ctx.chain.back().get();
    }
    ctx.head = head;
  }

  // ---- replay under the scenario's arrival schedule -------------------------
  CellResult cell;
  cell.scenario = spec.name;
  cell.method = method;
  cell.sessions = spec.sessions;
  cell.cache_dtype = dtype_name(spec.cache_dtype);
  SessionCtx* first_admitted = nullptr;
  for (SessionCtx& ctx : sessions) {
    if (ctx.admitted) {
      ++cell.sessions_admitted;
      if (first_admitted == nullptr) first_admitted = &ctx;
    }
  }

  auto fleet_bytes = [&] {
    int64_t sum = 0;
    for (const SessionCtx& ctx : sessions)
      if (ctx.admitted) sum += manager.learner(ctx.name).memory_bytes();
    return sum;
  };
  auto snapshot_all = [&] {
    for (SessionCtx& ctx : sessions) {
      if (!ctx.admitted) continue;
      ctx.tracker.record(
          eval::per_class_accuracy(manager.learner(ctx.name).model(),
                                   *ctx.test));
    }
  };
  cell.peak_pool_bytes = fleet_bytes();

  const int64_t eval_every =
      options.eval_every_segments > 0
          ? options.eval_every_segments
          : std::max<int64_t>(2, sc.total_segments / 3);
  int64_t next_eval = eval_every;

  data::Segment seg;
  int64_t arrival_step = 0;
  for (;;) {
    // Burst steps submit burst_size segments per session back-to-back with no
    // scheduler round in between — exactly the overload a depth-bounded
    // kShedOldest queue resolves by dropping its oldest entries.
    const bool busy =
        spec.burst_every > 0 &&
        arrival_step % spec.burst_every == spec.burst_every - 1;
    const int64_t n = busy ? spec.burst_size : 1;
    bool any = false;
    for (int64_t k = 0; k < n; ++k) {
      for (SessionCtx& ctx : sessions) {
        if (!ctx.admitted) continue;
        if (!ctx.head->next(seg)) continue;
        any = true;
        ctx.submitted_labels.push_back(seg.true_labels);
        manager.submit(ctx.name, std::move(seg.images));
        ++cell.segments_submitted;
      }
    }
    if (!any) break;
    manager.drain();
    cell.peak_pool_bytes = std::max(cell.peak_pool_bytes, fleet_bytes());
    ++arrival_step;
    if (first_admitted->base->segments_emitted() >= next_eval) {
      snapshot_all();
      next_eval += eval_every;
    }
  }
  snapshot_all();

  // ---- collect the row ------------------------------------------------------
  cell.segments_processed = manager.total_processed();
  float acc_sum = 0.0f, forget_sum = 0.0f;
  int64_t pseudo_correct = 0, pseudo_total = 0;
  for (SessionCtx& ctx : sessions) {
    if (!ctx.admitted) continue;
    const runtime::SessionStatus st = manager.status(ctx.name);
    cell.segments_shed += st.queue.shed;
    core::OnDeviceLearner& learner = manager.learner(ctx.name);
    cell.cache_stored_bytes += learner.cache_stored_bytes();
    cell.cache_logical_bytes += learner.cache_logical_bytes();
    acc_sum += eval::accuracy(learner.model(), *ctx.test);
    forget_sum += ctx.tracker.mean_forgetting();
  }
  if (cell.sessions_admitted > 0) {
    cell.accuracy = acc_sum / static_cast<float>(cell.sessions_admitted);
    cell.forgetting = forget_sum / static_cast<float>(cell.sessions_admitted);
  }

  // Pseudo-label accuracy needs report k to correspond to submission k; a
  // shed anywhere breaks that alignment, so the metric is only defined for
  // loss-free cells.
  if (cell.segments_shed == 0 &&
      cell.segments_processed == cell.segments_submitted) {
    for (SessionCtx& ctx : sessions) {
      if (!ctx.admitted) continue;
      const std::vector<core::SegmentReport> reports =
          manager.reports(ctx.name);
      for (size_t k = 0; k < reports.size(); ++k) {
        const std::vector<int64_t>& truth = ctx.submitted_labels[k];
        const std::vector<int64_t>& pseudo = reports[k].pseudo_labels;
        for (size_t j = 0; j < pseudo.size() && j < truth.size(); ++j) {
          if (pseudo[j] == truth[j]) ++pseudo_correct;
          ++pseudo_total;
        }
      }
    }
    cell.pseudo_label_accuracy =
        pseudo_total > 0 ? static_cast<double>(pseudo_correct) /
                               static_cast<double>(pseudo_total)
                         : 0.0;
  }

  if (options.capture_state) {
    for (SessionCtx& ctx : sessions) {
      if (!ctx.admitted) continue;
      core::OnDeviceLearner& learner = manager.learner(ctx.name);
      if (!learner.supports_state()) continue;
      const std::string path = spec.name + "." + method + "." + ctx.name +
                               ".state.tmp";
      learner.save_state(path);
      std::ifstream is(path, std::ios::binary);
      DECO_CHECK(is.is_open(), "scenario: cannot reopen " + path);
      cell.state_blobs.emplace_back(
          (std::istreambuf_iterator<char>(is)),
          std::istreambuf_iterator<char>());
      is.close();
      std::remove(path.c_str());
    }
  }

  cell.wall_seconds = now_seconds() - t_start;
  return cell;
}

MatrixReport run_matrix(const std::vector<ScenarioSpec>& scenarios,
                        const std::vector<std::string>& methods,
                        const HarnessOptions& options) {
  MatrixReport report;
  report.seed = options.seed;
  report.threads = core::num_threads();
  for (const ScenarioSpec& spec : scenarios)
    for (const std::string& method : methods)
      report.cells.push_back(run_cell(spec, method, options));
  return report;
}

}  // namespace deco::scenario
