#include "deco/scenario/scenario.h"

#include "deco/tensor/check.h"

namespace deco::scenario {

void ScenarioSpec::validate() const {
  DECO_CHECK(!name.empty(), "scenario: name must not be empty");
  DECO_CHECK(sessions >= 1, "scenario '" + name + "': sessions must be >= 1");
  DECO_CHECK(queue_depth >= 1,
             "scenario '" + name + "': queue_depth must be >= 1");
  stream.validate();
  faults.validate();
  drift.validate();
  label_noise.validate();
  if (class_incremental) phases.validate();
  if (burst_every > 0 || burst_size > 0) {
    DECO_CHECK(burst_every >= 1 && burst_size >= 2,
               "scenario '" + name +
                   "': bursty arrival needs burst_every >= 1 and "
                   "burst_size >= 2");
    // The harness submits bursts from one producer with no scheduler running
    // in between; a burst that overfills a kBlock queue would deadlock it.
    DECO_CHECK(overflow == runtime::OverflowPolicy::kShedOldest ||
                   burst_size <= queue_depth,
               "scenario '" + name +
                   "': burst_size > queue_depth requires the shed_oldest "
                   "overflow policy");
  }
  DECO_CHECK(pool_budget_mb >= 0,
             "scenario '" + name + "': pool_budget_mb must be >= 0");
  for (const SessionVariant& v : variants) {
    DECO_CHECK(v.ipc >= 0 && v.model_width >= 0,
               "scenario '" + name + "': variant overrides must be >= 0");
    DECO_CHECK(v.image_hw == 0 || v.image_hw >= 8,
               "scenario '" + name + "': variant image_hw must be 0 or >= 8");
  }
}

data::DatasetSpec dataset_spec_by_name(const std::string& name) {
  if (name == "icub1") return data::icub1_spec();
  if (name == "core50") return data::core50_spec();
  if (name == "cifar100") return data::cifar100_spec();
  if (name == "imagenet10") return data::imagenet10_spec();
  if (name == "cifar10") return data::cifar10_spec();
  DECO_CHECK(false, "scenario: unknown dataset '" + name + "'");
  return {};
}

namespace {

/// Shared stream shape: short runs so a handful of segments still covers
/// several classes, sized so quick matrices finish in minutes.
data::StreamConfig base_stream() {
  data::StreamConfig sc;
  sc.stc = 16;
  sc.segment_size = 16;
  sc.total_segments = 8;
  sc.video_mode = true;
  return sc;
}

}  // namespace

std::vector<ScenarioSpec> builtin_scenarios() {
  std::vector<ScenarioSpec> out;

  {
    ScenarioSpec s;
    s.name = "clean";
    s.description = "paper protocol: temporally-correlated stream, no faults";
    s.stream = base_stream();
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "class_incremental";
    s.description = "phased class arrival: 4 classes at t=0, +2 every 2 segments";
    s.stream = base_stream();
    s.class_incremental = true;
    s.phases.initial = 4;
    s.phases.per_phase = 2;
    s.phases.segments_per_phase = 2;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "drift_abrupt";
    s.description = "appearance distribution jumps mid-stream (sensor swap)";
    s.stream = base_stream();
    s.drift.mode = "abrupt";
    s.drift.onset_segment = 3;
    s.drift.severity = 0.6f;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "drift_gradual";
    s.description = "appearance drifts linearly over the stream (lens aging)";
    s.stream = base_stream();
    s.drift.mode = "gradual";
    s.drift.onset_segment = 0;
    s.drift.ramp_segments = 8;
    s.drift.severity = 0.6f;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "label_noise";
    s.description = "25% of ground-truth labels flipped (annotation noise)";
    s.stream = base_stream();
    s.label_noise.flip_rate = 0.25;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "faulty_sensors";
    s.description = "mid-severity sensor faults: stuck pixels, exposure, "
                    "frame drops, NaN bursts";
    s.stream = base_stream();
    s.faults.dead_pixel_rate = 0.002;
    s.faults.hot_pixel_rate = 0.002;
    s.faults.salt_pepper_rate = 0.005;
    s.faults.overexpose_rate = 0.05;
    s.faults.underexpose_rate = 0.05;
    s.faults.drop_frame_rate = 0.05;
    s.faults.duplicate_frame_rate = 0.05;
    s.faults.truncate_rate = 0.1;
    s.faults.nan_burst_rate = 0.02;
    s.faults.inf_burst_rate = 0.01;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "bursty_shed";
    s.description = "diurnal bursts of 4 segments against a depth-2 "
                    "shed_oldest queue";
    s.stream = base_stream();
    s.queue_depth = 2;
    s.overflow = runtime::OverflowPolicy::kShedOldest;
    s.burst_every = 2;
    s.burst_size = 4;
    out.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "hetero_fleet";
    s.description = "3 concurrent sessions with different ipc, resolution "
                    "and model width in one fleet";
    s.stream = base_stream();
    s.sessions = 3;
    s.variants = {{2, 12, 12}, {4, 16, 16}, {6, 20, 20}};
    out.push_back(std::move(s));
  }
  {
    // Both memory-pressure cells offer the same oversized fleet to a 1 MiB
    // admission budget; only the cache storage dtype differs. With ipc=16
    // the fp32 cache dominates each session's memory_bytes(), so the int8
    // cell admits strictly more sessions — the report's sessions_admitted
    // and cache_stored_bytes columns quantify the trade.
    ScenarioSpec s;
    s.name = "mem_pressure_fp32";
    s.description = "6 big-cache sessions vs a 1 MiB admission budget, "
                    "fp32 cache storage";
    s.stream = base_stream();
    s.sessions = 6;
    s.variants = {{16, 0, 0}};
    s.pool_budget_mb = 1;
    out.push_back(s);
    s.name = "mem_pressure_int8";
    s.description = "6 big-cache sessions vs a 1 MiB admission budget, "
                    "int8 block-quantized cache storage";
    s.cache_dtype = DType::kQ8;
    out.push_back(std::move(s));
  }

  for (const ScenarioSpec& s : out) s.validate();
  return out;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioSpec& s : builtin_scenarios()) names.push_back(s.name);
  return names;
}

ScenarioSpec scenario_by_name(const std::string& name) {
  for (ScenarioSpec& s : builtin_scenarios()) {
    if (s.name == name) return std::move(s);
  }
  DECO_CHECK(false, "scenario: unknown scenario '" + name +
                        "' (see scenario_names())");
  return {};
}

std::vector<std::string> builtin_methods() {
  return {"deco",   "dc",   "dsa",          "dm",      "random",
          "fifo",   "selective_bp", "kcenter", "gss"};
}

}  // namespace deco::scenario
