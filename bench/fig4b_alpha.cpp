// Regenerates Fig. 4b of the paper: the effect of the feature-discrimination
// weight α on final accuracy, on the CIFAR-100 proxy at IpC ∈ {5, 10}.
//
// Paper reference shape: accuracy improves as α grows from 0 (no feature
// discrimination) to 0.1, then degrades for large α (0.5, 1) — an
// inverted-U with the optimum at α = 0.1.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "deco/eval/metrics.h"
#include "deco/eval/stats.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Fig. 4b — feature-discrimination weight sweep");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::cifar100_spec(), s);
  base.method = "deco";

  eval::MarkdownTable table({"alpha", "IpC=5 acc", "IpC=10 acc"});
  // Per-seed results retained for the paired analysis below: the α effect is
  // ~1 point in the paper while seed-to-seed spread here is several points,
  // so only the common-random-numbers pairing can resolve it.
  std::map<int64_t, std::map<float, std::vector<double>>> per_seed;
  for (float alpha : {0.0f, 0.001f, 0.01f, 0.1f, 0.5f, 1.0f}) {
    std::vector<std::string> row{eval::fmt(alpha, 3)};
    for (int64_t ipc : {5, 10}) {
      eval::RunConfig cfg = base;
      cfg.ipc = ipc;
      cfg.deco.condenser.alpha = alpha;
      cfg.deco.condenser.feature_discrimination = alpha > 0.0f;
      const auto results = eval::run_seeds(cfg, s.seeds);
      for (const auto& r : results)
        per_seed[ipc][alpha].push_back(r.final_accuracy);
      const auto agg = eval::aggregate(bench::finals(results));
      row.push_back(eval::format_aggregate(agg));
      std::cout.flush();
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nPaired analysis vs alpha=0 (common seeds; positive mean "
               "difference = feature discrimination helps):\n";
  for (int64_t ipc : {5, 10}) {
    for (float alpha : {0.1f, 1.0f}) {
      const auto cmp =
          eval::paired_compare(per_seed[ipc][0.0f], per_seed[ipc][alpha]);
      std::cout << "  IpC=" << ipc << " alpha=" << eval::fmt(alpha, 1)
                << ": mean diff " << eval::fmt(cmp.mean_diff, 2) << " (t="
                << eval::fmt(cmp.t_statistic, 1) << ", " << cmp.wins << "W/"
                << cmp.losses << "L)\n";
    }
  }
  std::cout << "\nPaper shape check: inverted-U in α with the peak near 0.1 "
               "for both IpC settings.\n";
  return 0;
}
