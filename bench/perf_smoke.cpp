// CI perf-smoke gate. Two checks, exit code is the verdict:
//
//   1. The packed GEMM must not be slower than the naive i-k-j kernel at
//      192² on this runner. The bar is deliberately generous (packed must
//      reach 80% of naive speed; on real hardware it is several times
//      faster) so a noisy single-core CI container cannot flake the gate
//      while a genuine blocking/packing regression still trips it.
//
//   2. A 20-step learner run must perform ZERO hot-path heap allocations in
//      steady state: after warm-up every recurring tensor is served from the
//      buffer pool and every kernel scratch request from the thread's
//      workspace arena, so the calling thread's hot-alloc counters (see
//      core::memstats_this_thread — immune to allocations made by unrelated
//      threads in the process) hold flat over the final 8 segments. Warm-up
//      is 12 segments because bounded one-time events land late (e.g. a
//      class first crossing the majority-voting threshold changes a gather
//      shape and warms a fresh pool bucket). Single-threaded, with a fixed
//      input segment, so the allocation sequence is deterministic across
//      machines.
//
//   3. Telemetry instrumentation must stay cheap: the same 192² GEMM loop
//      timed with telemetry recording on vs off (interleaved min-of-N, so a
//      noisy neighbour cannot skew one side) must agree within 5%.
//
// The run also writes BENCH_telemetry.json — the measured overhead plus the
// full aggregate telemetry snapshot — which CI uploads as an artifact.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>

#include "bench_io.h"
#include "deco/core/learner.h"
#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "deco/core/workspace.h"
#include "deco/data/world.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/ops.h"
#include "deco/tensor/rng.h"

namespace {

using namespace deco;
using deco::bench::time_ms;

bool check_gemm_not_slower_than_naive() {
  const int64_t n = 192;
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor out({n, n}), ref({n, n});

  const double packed_ms = time_ms([&] { matmul_into(a, b, out); });
  const double naive_ms = time_ms([&] {
    // The pre-blocking kernel, as the in-binary baseline.
    ref.zero();
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = ref.data();
    for (int64_t i = 0; i < n; ++i) {
      float* orow = po + i * n;
      for (int64_t kk = 0; kk < n; ++kk) {
        const float aik = pa[i * n + kk];
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  });

  const bool ok = packed_ms <= naive_ms / 0.8;
  std::cout << "[gemm_192] packed " << packed_ms << " ms, naive " << naive_ms
            << " ms (speedup " << naive_ms / packed_ms << "x) -> "
            << (ok ? "OK" : "FAIL") << "\n";
  if (!ok)
    std::cout << "  packed GEMM is below 80% of naive throughput; the "
                 "blocking/packing path has regressed\n";
  return ok;
}

bool check_learner_steady_state_allocations() {
  data::DatasetSpec spec = data::icub1_spec();
  spec.num_classes = 4;
  data::ProceduralImageWorld world(spec, 7);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  Rng rng(21);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 4;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, rng);

  core::DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;  // warm-up covers both plain and model-update segments
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 2;
  core::DecoLearner learner(model, cfg, 31);
  learner.init_buffer_from(labeled);

  // One fixed segment replayed every step: shapes (and therefore the
  // allocation sequence) are identical across steps, so after warm-up every
  // buffer request recurs.
  Tensor images({6, 3, 16, 16});
  for (int64_t i = 0; i < 6; ++i) {
    Tensor img = world.render(i % 4, 0, 0, 300 + i);
    std::copy(img.data(), img.data() + img.numel(),
              images.data() + i * img.numel());
  }

  // Per-thread counters: this gate runs single-threaded, so differencing the
  // calling thread's own counters measures exactly the learner's allocations
  // and cannot be poisoned by anything else the process does concurrently.
  core::MemStatsSnapshot base;
  for (int step = 0; step < 20; ++step) {
    learner.observe_segment(images);
    if (step == 11) base = core::memstats_this_thread();
  }
  const core::MemStatsSnapshot diff = core::memstats_this_thread() - base;

  const int64_t new_tensor_allocs = diff.tensor_heap_allocs;
  const int64_t new_ws_blocks = diff.workspace_blocks;
  const int64_t delta = diff.hot_allocs();
  const bool ok = delta == 0;
  std::cout << "[learner_alloc] steps 13-20: " << new_tensor_allocs
            << " tensor heap allocs, " << new_ws_blocks
            << " workspace blocks (pool hits " << diff.tensor_pool_hits
            << ") -> " << (ok ? "OK" : "FAIL") << "\n";
  const core::WorkspaceStats ws = core::Workspace::aggregate();
  std::cout << "[learner_alloc] workspace: " << ws.arenas << " arena(s), "
            << ws.bytes_reserved << " bytes reserved, high water "
            << ws.high_water_bytes << " bytes\n";
  if (!ok)
    std::cout << "  steady-state learner steps hit the heap; a hot-path "
                 "buffer stopped being reused\n";
  return ok;
}

// Measures the cost of leaving telemetry recording enabled around the hottest
// instrumented path. On/off runs are interleaved and each side keeps its
// minimum — the noise-robust statistic — so one preempted run cannot fail the
// gate. The true overhead is a handful of atomic adds per GEMM call, far
// below the 5% bar. Returns the measured overhead via `overhead_pct`.
bool check_telemetry_overhead(double& overhead_pct) {
  const int64_t n = 192;
  Rng rng(5);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor out({n, n});

  using clock = std::chrono::steady_clock;
  auto loop = [&] {
    for (int i = 0; i < 8; ++i) matmul_into(a, b, out);
  };
  loop();  // warm caches, workspace arena, telemetry registrations

  double best_on = 1e300, best_off = 1e300;
  for (int rep = 0; rep < 24; ++rep) {
    const bool on = rep % 2 == 0;
    core::telemetry::set_enabled(on);
    const auto t0 = clock::now();
    loop();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    (on ? best_on : best_off) = std::min(on ? best_on : best_off, s);
  }
  core::telemetry::set_enabled(true);

  overhead_pct = (best_on - best_off) / best_off * 100.0;
  const bool ok = overhead_pct <= 5.0;
  std::cout << "[telemetry_overhead] gemm_192 loop: on " << best_on * 1e3
            << " ms, off " << best_off * 1e3 << " ms (overhead "
            << overhead_pct << "%) -> " << (ok ? "OK" : "FAIL") << "\n";
  if (!ok)
    std::cout << "  telemetry instrumentation costs more than 5% on the GEMM "
                 "hot loop; a record path stopped being lock-free\n";
  return ok;
}

}  // namespace

int main() {
  // Single-threaded: one workspace arena, deterministic allocation order,
  // and the GEMM comparison measures the kernel rather than the scheduler.
  core::set_num_threads(1);
  // The overhead gate flips recording on/off itself; start from "on" so the
  // learner gate below also exercises the instrumented (production) path.
  core::telemetry::set_enabled(true);
  int failures = 0;
  double overhead_pct = 0.0;
  if (!check_gemm_not_slower_than_naive()) ++failures;
  if (!check_telemetry_overhead(overhead_pct)) ++failures;
  if (!check_learner_steady_state_allocations()) ++failures;

  deco::bench::JsonWriter js;
  js.begin_object()
      .key("telemetry_overhead_pct").value(overhead_pct)
      .key("aggregate")
      .raw(core::telemetry::aggregate_json(core::telemetry::snapshot()))
      .end_object();
  if (!js.write_file("BENCH_telemetry.json")) ++failures;

  std::cout << (failures == 0 ? "perf-smoke: PASS" : "perf-smoke: FAIL")
            << "\n";
  return failures;
}
