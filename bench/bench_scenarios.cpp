// Scenario-matrix bench: every method across the deployment-scenario catalog.
//
// Runs the scenario × method cross product through the evaluation harness
// (scenario/harness.h) and writes BENCH_scenarios.json — the per-PR tracked
// artifact with one row per cell: accuracy, forgetting, pseudo-label
// accuracy, shed segments, peak pool bytes, wall time. Numbers are
// informational; the binary fails only on functional bugs:
//
//   * a requested cell is missing from the report,
//   * a deterministic metric is non-finite, or
//   * segments went missing (processed + shed != submitted).
//
// Knobs:
//   DECO_SCENARIOS = comma list (default: the full built-in catalog)
//   DECO_METHODS   = comma list (default: every method in the matrix)
//   DECO_SEGMENTS  = per-session stream length override
//   DECO_SEED      = cell seed (default 1)
//   DECO_BENCH_SCALE = quick | full (full: longer streams, deeper updates)
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_io.h"
#include "deco/core/thread_pool.h"
#include "deco/eval/report.h"
#include "deco/scenario/harness.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main() {
  using namespace deco;

  const bool full = eval::full_scale();
  scenario::HarnessOptions options;
  options.seed = static_cast<uint64_t>(eval::env_int("DECO_SEED", 1));
  options.segments = eval::env_int("DECO_SEGMENTS", full ? 24 : 0);
  if (full) {
    options.model_update_epochs = 10;
    options.pretrain_epochs = 20;
    options.test_per_class = 25;
    options.condenser_iterations = 5;
  }

  std::vector<scenario::ScenarioSpec> scenarios;
  const char* sc_env = std::getenv("DECO_SCENARIOS");
  if (sc_env != nullptr && *sc_env != '\0') {
    for (const std::string& name : split_csv(sc_env))
      scenarios.push_back(scenario::scenario_by_name(name));
  } else {
    scenarios = scenario::builtin_scenarios();
  }

  std::vector<std::string> methods;
  const char* m_env = std::getenv("DECO_METHODS");
  if (m_env != nullptr && *m_env != '\0') {
    methods = split_csv(m_env);
  } else {
    methods = scenario::builtin_methods();
  }

  std::cout << "# bench_scenarios\n"
            << "scale=" << (full ? "full" : "quick")
            << " threads=" << core::num_threads()
            << " scenarios=" << scenarios.size()
            << " methods=" << methods.size() << " seed=" << options.seed
            << "\n\n";

  const double t0 = bench::now_seconds();
  const scenario::MatrixReport report =
      scenario::run_matrix(scenarios, methods, options);
  const double total_s = bench::now_seconds() - t0;

  int failures = 0;
  std::cout << "scenario  method  acc  forget  shed  seconds\n";
  for (const scenario::CellResult& c : report.cells) {
    std::cout << c.scenario << "  " << c.method << "  " << c.accuracy << "  "
              << c.forgetting << "  " << c.segments_shed << "  "
              << c.wall_seconds << "\n";
    if (!std::isfinite(c.accuracy) || !std::isfinite(c.forgetting)) {
      std::cout << "FAIL: non-finite metric in cell " << c.scenario << "/"
                << c.method << "\n";
      ++failures;
    }
    if (c.segments_processed + c.segments_shed != c.segments_submitted) {
      std::cout << "FAIL: " << c.scenario << "/" << c.method << " lost "
                << c.segments_submitted - c.segments_processed -
                       c.segments_shed
                << " segments (submitted " << c.segments_submitted
                << ", processed " << c.segments_processed << ", shed "
                << c.segments_shed << ")\n";
      ++failures;
    }
  }
  // Paired memory-pressure gates: whenever a method ran both mem_pressure
  // cells, the int8 cache must actually compress (>= 3.5x vs the logical
  // fp32 bytes), admit at least as many sessions under the same budget, and
  // stay within a smoke-test accuracy band of the fp32 cell.
  for (const scenario::CellResult& f32 : report.cells) {
    if (f32.scenario != "mem_pressure_fp32") continue;
    for (const scenario::CellResult& q8 : report.cells) {
      if (q8.scenario != "mem_pressure_int8" || q8.method != f32.method)
        continue;
      const double ratio =
          q8.cache_stored_bytes > 0
              ? static_cast<double>(q8.cache_logical_bytes) /
                    static_cast<double>(q8.cache_stored_bytes)
              : 0.0;
      if (ratio < 3.5) {
        std::cout << "FAIL: mem_pressure_int8/" << q8.method
                  << " cache compression " << ratio << "x < 3.5x\n";
        ++failures;
      }
      if (q8.sessions_admitted < f32.sessions_admitted) {
        std::cout << "FAIL: mem_pressure_int8/" << q8.method << " admitted "
                  << q8.sessions_admitted << " sessions < fp32's "
                  << f32.sessions_admitted << "\n";
        ++failures;
      }
      if (std::abs(q8.accuracy - f32.accuracy) > 20.0f) {
        std::cout << "FAIL: mem_pressure int8 vs fp32 accuracy delta "
                  << std::abs(q8.accuracy - f32.accuracy) << " > 20 for "
                  << q8.method << "\n";
        ++failures;
      }
      std::cout << "mem_pressure[" << q8.method << "]: compression=" << ratio
                << "x admitted fp32=" << f32.sessions_admitted
                << " int8=" << q8.sessions_admitted << "\n";
    }
  }

  const size_t expected = scenarios.size() * methods.size();
  if (report.cells.size() != expected) {
    std::cout << "FAIL: expected " << expected << " cells, got "
              << report.cells.size() << "\n";
    ++failures;
  }

  scenario::write_matrix_json(report, "BENCH_scenarios.json");
  std::cout << "\nmatrix (" << report.cells.size() << " cells, " << total_s
            << " s) written to BENCH_scenarios.json\n";

  std::cout << (failures == 0 ? "bench-scenarios: PASS"
                              : "bench-scenarios: FAIL")
            << "\n";
  return failures;
}
