// Extension analysis: catastrophic forgetting, measured directly.
//
// The paper's whole premise is that condensation mitigates forgetting better
// than selection under tight memory. Table I shows the end-state accuracy;
// this bench measures the forgetting itself: per-class accuracy is snapshot
// after every model update, and forgetting is the standard max-drop-from-peak
// (see eval::ForgettingTracker). Expected shape: DECO's mean forgetting is
// below the selection baselines' at equal IpC, because its buffer never
// evicts — old classes' information is not displaced by new runs.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "deco/eval/metrics.h"
#include "deco/eval/stats.h"

using namespace deco;

namespace {

struct Outcome {
  float final_acc = 0.0f;
  float forgetting = 0.0f;
};

Outcome run_with_tracking(const std::string& method, int64_t ipc,
                          const bench::BenchScale& s, uint64_t seed) {
  eval::RunConfig cfg = bench::base_config(data::core50_spec(), s);
  cfg.method = method;
  cfg.ipc = ipc;
  cfg.seed = seed;

  data::ProceduralImageWorld world(cfg.spec, cfg.seed * 7919 + 17);
  data::Dataset pretrain =
      world.make_labeled_set(cfg.pretrain_per_class, cfg.seed + 1);
  data::Dataset test = world.make_test_set(cfg.test_per_class, cfg.seed + 2);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = cfg.spec.height;
  mc.image_w = cfg.spec.width;
  mc.num_classes = cfg.spec.num_classes;
  mc.width = cfg.model_width;
  mc.depth = cfg.model_depth;
  Rng rng(cfg.seed * 0x9E37 + 0xC0FFEE);
  nn::ConvNet model(mc, rng);
  std::vector<int64_t> all(static_cast<size_t>(pretrain.size()));
  for (int64_t i = 0; i < pretrain.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, pretrain.batch(all), pretrain.labels(),
                         cfg.pretrain_epochs, cfg.deco.lr_model,
                         cfg.deco.weight_decay, cfg.deco.train_batch, rng);

  std::unique_ptr<core::OnDeviceLearner> learner;
  if (method == "deco") {
    core::DecoConfig dc = cfg.deco;
    dc.ipc = ipc;
    auto l = std::make_unique<core::DecoLearner>(model, dc, cfg.seed + 3);
    l->init_buffer_from(pretrain);
    learner = std::move(l);
  } else {
    baselines::BaselineConfig bc = cfg.baseline;
    bc.ipc = ipc;
    auto l = std::make_unique<baselines::BaselineLearner>(
        model, baselines::strategy_from_name(method), bc, cfg.seed + 3);
    l->init_buffer_from(pretrain);
    learner = std::move(l);
  }

  eval::ForgettingTracker tracker;
  tracker.record(eval::per_class_accuracy(model, test));
  data::TemporalStream stream(world, cfg.stream, cfg.seed + 4);
  data::Segment seg;
  while (stream.next(seg)) {
    learner->observe_segment(seg.images);
    if (stream.segments_emitted() % cfg.deco.beta == 0)
      tracker.record(eval::per_class_accuracy(model, test));
  }
  return {eval::accuracy(model, test), tracker.mean_forgetting()};
}

}  // namespace

int main() {
  bench::print_scale_banner("Extension — catastrophic forgetting (CORe50)");
  const bench::BenchScale s = bench::scale();

  eval::MarkdownTable table({"method", "IpC", "final acc", "mean forgetting"});
  for (int64_t ipc : {1, 10}) {
    for (const std::string method : {"fifo", "selective_bp", "deco"}) {
      eval::RunningStats acc, forg;
      for (int64_t k = 0; k < s.seeds; ++k) {
        const Outcome o = run_with_tracking(method, ipc, s, 1 + k);
        acc.add(o.final_acc);
        forg.add(o.forgetting);
      }
      table.add_row({method, std::to_string(ipc), eval::fmt(acc.mean(), 2),
                     eval::fmt(forg.mean(), 2)});
      std::cout.flush();
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: DECO forgets least at equal IpC (its buffer "
               "absorbs new classes without evicting old ones).\n";
  return 0;
}
