// Regenerates Fig. 3 of the paper: learning curves (test accuracy vs number
// of processed stream inputs) on CORe50 and ImageNet-10 at IpC = 10, for DECO
// against the two most competitive baselines, FIFO and Selective-BP.
//
// Paper reference shape: DECO's curve dominates both baselines throughout,
// reaches the baselines' final accuracy with ~¼ of the data, ends >6–8%
// higher, and is smoother (less sawtooth from buffer churn).
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Fig. 3 — learning curves (IpC=10)");
  const bench::BenchScale s = bench::scale();

  const std::vector<data::DatasetSpec> specs{data::core50_spec(),
                                             data::imagenet10_spec()};
  const std::vector<std::string> methods{"fifo", "selective_bp", "deco"};

  for (const auto& spec : specs) {
    std::cout << "## " << spec.name << " (CSV: samples_seen, "
              << "fifo, selective_bp, deco)\n";

    eval::RunConfig base = bench::base_config(spec, s);
    base.ipc = 10;
    base.eval_every_segments = 2;
    // β=2 so the curve reflects continuous learning between eval points.
    base.deco.beta = 2;
    base.baseline.beta = 2;

    std::vector<std::vector<eval::CurvePoint>> curves;
    std::vector<float> final_acc;
    for (const auto& method : methods) {
      eval::RunConfig cfg = base;
      cfg.method = method;
      auto res = eval::run_experiment(cfg);
      curves.push_back(res.curve);
      final_acc.push_back(res.final_accuracy);
      std::cout.flush();
    }

    const size_t points = curves[0].size();
    for (size_t p = 0; p < points; ++p) {
      std::cout << curves[0][p].samples_seen;
      for (const auto& curve : curves)
        std::cout << ", " << eval::fmt(curve[p].accuracy, 2);
      std::cout << "\n";
    }
    std::cout << "final: fifo=" << eval::fmt(final_acc[0], 2)
              << " selective_bp=" << eval::fmt(final_acc[1], 2)
              << " deco=" << eval::fmt(final_acc[2], 2) << "\n";

    // Data-efficiency readout: first sample count at which DECO's curve
    // reaches the better baseline's final accuracy.
    const float target = std::max(final_acc[0], final_acc[1]);
    int64_t reached_at = -1;
    for (const auto& pt : curves[2]) {
      if (pt.accuracy >= target) {
        reached_at = pt.samples_seen;
        break;
      }
    }
    const int64_t total = curves[2].empty() ? 0 : curves[2].back().samples_seen;
    if (reached_at > 0 && total > 0) {
      std::cout << "DECO reaches best-baseline final accuracy ("
                << eval::fmt(target, 1) << ") after " << reached_at << "/"
                << total << " samples ("
                << eval::fmt(100.0 * static_cast<double>(reached_at) /
                                 static_cast<double>(total), 0)
                << "% of the stream; paper: ~25%).\n";
    } else {
      std::cout << "DECO did not cross the best-baseline final accuracy "
                   "within this stream.\n";
    }
    std::cout << "\n";
  }
  return 0;
}
