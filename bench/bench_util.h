// Shared configuration for the benchmark binaries that regenerate the paper's
// tables and figures.
//
// Every bench runs in one of two scales:
//   * quick (default): sized so the whole suite finishes in minutes on one
//     CPU core — shorter streams, fewer model-update epochs, 2 seeds.
//   * full (DECO_BENCH_SCALE=full): longer streams, more epochs, 5 seeds —
//     closer to the paper's protocol (which ran 200-epoch updates on GPUs).
//
// Environment knobs:
//   DECO_BENCH_SCALE = quick | full
//   DECO_SEEDS       = override the seed count
//   DECO_SEGMENTS    = override the stream length (segments)
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "deco/eval/report.h"
#include "deco/eval/runner.h"

namespace deco::bench {

struct BenchScale {
  int64_t seeds;
  int64_t segments;
  int64_t segment_size;
  int64_t model_update_epochs;
  int64_t pretrain_epochs;
  int64_t test_per_class;
};

inline BenchScale scale() {
  BenchScale s;
  if (eval::full_scale()) {
    s.seeds = eval::env_int("DECO_SEEDS", 5);
    s.segments = eval::env_int("DECO_SEGMENTS", 60);
    s.segment_size = 32;
    s.model_update_epochs = 60;
    s.pretrain_epochs = 40;
    s.test_per_class = 40;
  } else {
    s.seeds = eval::env_int("DECO_SEEDS", 2);
    s.segments = eval::env_int("DECO_SEGMENTS", 8);
    s.segment_size = 32;
    s.model_update_epochs = 10;
    s.pretrain_epochs = 30;
    s.test_per_class = 25;
  }
  return s;
}

/// Baseline RunConfig for a dataset, with the paper's hyper-parameters
/// (m = 0.4, L = 10, α = 0.1, τ = 0.07, β = 10) and scaled protocol knobs.
inline eval::RunConfig base_config(const data::DatasetSpec& spec,
                                   const BenchScale& s) {
  eval::RunConfig cfg;
  cfg.spec = spec;
  cfg.stream.segment_size = s.segment_size;
  cfg.stream.total_segments = s.segments;
  cfg.deco.model_update_epochs = s.model_update_epochs;
  cfg.baseline.model_update_epochs = s.model_update_epochs;
  // β = 10 segments at full scale (paper setting); at quick scale the stream
  // is short, so β is chosen to give two model updates per run.
  const int64_t beta =
      eval::full_scale() ? 10 : std::max<int64_t>(2, s.segments / 2);
  cfg.deco.beta = beta;
  cfg.baseline.beta = beta;
  cfg.pretrain_epochs = s.pretrain_epochs;
  cfg.test_per_class = s.test_per_class;
  cfg.seed = 1;

  // Streaming setup per dataset, following Section IV-A1: iCub1/CORe50 are
  // contiguous-video streams; CIFAR/ImageNet proxies use STC-controlled
  // streams (paper: 500 / 100, scaled to our shorter streams).
  // Pre-training sizes follow the paper's labeled fractions (1% of CORe50 ≈
  // 120 images/class — far more than a handful): enough that pseudo-labels
  // reach the regime where majority voting operates as designed. With very
  // weak pre-training (<10 images/class here), pseudo-label noise >50% makes
  // large REAL-sample buffers toxic for the selection baselines — a failure
  // mode the paper's setting does not exhibit.
  if (spec.name == "icub1" || spec.name == "core50") {
    cfg.stream.video_mode = true;
    cfg.stream.stc = 32;
    cfg.pretrain_per_class = 10;
  } else if (spec.name == "cifar100") {
    cfg.stream.video_mode = false;
    cfg.stream.stc = 64;          // highest temporal correlation (paper: 500)
    cfg.pretrain_per_class = 12;  // 10%-labeled regime for many classes
  } else if (spec.name == "imagenet10") {
    cfg.stream.video_mode = false;
    cfg.stream.stc = 24;          // paper: 100
    cfg.stream.segment_size = 24; // 32×32 images: keep segment cost bounded
    cfg.pretrain_per_class = 8;
  } else {
    cfg.stream.video_mode = true;
    cfg.stream.stc = 32;
    cfg.pretrain_per_class = 10;
  }
  return cfg;
}

inline std::vector<float> finals(const std::vector<eval::RunResult>& rs) {
  std::vector<float> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(r.final_accuracy);
  return out;
}

inline void print_scale_banner(const std::string& bench) {
  const BenchScale s = scale();
  std::cout << "# " << bench << "\n"
            << "scale=" << (eval::full_scale() ? "full" : "quick")
            << " seeds=" << s.seeds << " segments=" << s.segments
            << " (set DECO_BENCH_SCALE=full for the larger protocol)\n\n";
}

}  // namespace deco::bench
