// Regenerates Fig. 2 of the paper: for selected classes of a CIFAR-10-style
// dataset, the top-3 most frequently predicted wrong classes and their share
// of all misclassifications of that class.
//
// Paper reference shape: the most confused classes are the visually similar
// ones (cat↔dog, deer↔horse, automobile↔truck), with the top confusion
// taking a large fraction (~40–60%) of each class's errors. Our procedural
// CIFAR-10 proxy builds similarity *pairs* (class 2g ↔ 2g+1 share a shape
// family), so the expected signature is: the top misclassification of class c
// is its pair partner, holding a dominant share.
#include <iostream>

#include "bench_util.h"
#include "deco/core/learner.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Fig. 2 — most frequent misclassifications");
  const bench::BenchScale s = bench::scale();

  const data::DatasetSpec spec = data::cifar10_spec();
  data::ProceduralImageWorld world(spec, 99);
  data::Dataset train = world.make_labeled_set(eval::full_scale() ? 40 : 20, 1);
  data::Dataset test = world.make_test_set(eval::full_scale() ? 80 : 40, 2);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = spec.height;
  mc.image_w = spec.width;
  mc.num_classes = spec.num_classes;
  mc.width = 32;
  mc.depth = 3;
  Rng rng(3);
  nn::ConvNet model(mc, rng);

  std::vector<int64_t> all(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, train.batch(all), train.labels(),
                         s.pretrain_epochs, 1e-3f, 5e-4f, 32, rng);

  std::cout << "test accuracy: " << eval::fmt(eval::accuracy(model, test), 1)
            << "%\n\n";

  const auto conf = eval::confusion_matrix(model, test);
  const auto top = eval::top_misclassifications(conf, 3);

  eval::MarkdownTable table({"class", "1st confused (share)",
                             "2nd confused (share)", "3rd confused (share)",
                             "pair partner is top?"});
  int partner_top = 0, classes_with_errors = 0;
  for (int64_t c = 0; c < spec.num_classes; ++c) {
    std::vector<std::string> row{"class_" + std::to_string(c)};
    const auto& items = top[static_cast<size_t>(c)];
    for (int k = 0; k < 3; ++k) {
      if (k < static_cast<int>(items.size())) {
        row.push_back("class_" + std::to_string(items[k].predicted_class) +
                      " (" + eval::fmt(100.0 * items[k].fraction, 0) + "%)");
      } else {
        row.push_back("—");
      }
    }
    const int64_t partner = (c % 2 == 0) ? c + 1 : c - 1;
    if (!items.empty()) {
      ++classes_with_errors;
      const bool is_top = items[0].predicted_class == partner;
      if (is_top) ++partner_top;
      row.push_back(is_top ? "yes" : "no");
    } else {
      row.push_back("—");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nsimilar-pair partner is the top confusion for " << partner_top
            << "/" << classes_with_errors
            << " classes (paper: confusions concentrate on visually similar "
               "classes).\n";
  return 0;
}
