// Ablation A2 (DESIGN.md): contribution of DECO's two robustness components —
// majority-voting pseudo-label filtering (Section III-B) and the
// feature-discrimination objective (Section III-D) — on the CORe50 stream.
//
// Expected shape: both components help; voting matters most when the
// pretrained model is weak (noisy labels), feature discrimination matters
// most at larger IpC (it needs ≥2 samples per class to form positive pairs).
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Ablation A2 — majority voting & feature discrimination");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  base.method = "deco";
  base.ipc = 5;

  eval::MarkdownTable table({"majority voting", "feature discrimination",
                             "final acc", "pseudo-label acc %",
                             "data retained %"});
  for (bool voting : {true, false}) {
    for (bool disc : {true, false}) {
      eval::RunConfig cfg = base;
      cfg.deco.use_majority_voting = voting;
      cfg.deco.condenser.feature_discrimination = disc;
      const auto results = eval::run_seeds(cfg, s.seeds);
      double acc = 0.0, plabel = 0.0, keep = 0.0;
      for (const auto& r : results) {
        acc += r.final_accuracy;
        plabel += r.pseudo_label_accuracy;
        keep += r.retention_rate;
      }
      const double n = static_cast<double>(results.size());
      table.add_row({voting ? "on" : "off", disc ? "on" : "off",
                     eval::fmt(acc / n, 2), eval::fmt(100.0 * plabel / n, 1),
                     eval::fmt(100.0 * keep / n, 1)});
      std::cout.flush();
    }
  }
  table.print(std::cout);
  std::cout << "\nFull DECO (both on) should lead; voting-off degrades label "
               "quality, discrimination-off blurs confusable classes.\n";
  return 0;
}
