// Regenerates Fig. 4a of the paper: the effect of the majority-voting filter
// threshold m on (i) the fraction of stream data retained, (ii) the accuracy
// of the retained pseudo-labels, and (iii) the final model accuracy.
//
// Paper reference shape: retention falls monotonically with m; pseudo-label
// accuracy rises with m (quality/quantity trade-off); model accuracy peaks at
// an intermediate threshold (paper: m = 0.4 — "label accuracy matters more
// than data volume").
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Fig. 4a — majority-voting threshold sweep");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  base.method = "deco";
  base.ipc = 5;

  eval::MarkdownTable table({"m", "data retained %", "pseudo-label acc %",
                             "final model acc %"});
  for (float m : {0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f}) {
    eval::RunConfig cfg = base;
    cfg.deco.threshold_m = m;
    const auto results = eval::run_seeds(cfg, s.seeds);
    double retained = 0.0, final_acc = 0.0;
    for (const auto& r : results) {
      retained += r.retention_rate;
      final_acc += r.final_accuracy;
    }
    const double n = static_cast<double>(results.size());

    // Pseudo-label accuracy of the *retained* samples: re-measure with a
    // dedicated pass (RunResult reports all-sample pseudo accuracy; the
    // voting filter's value is the quality of what survives it). We estimate
    // it by running the stream through the pretrained model only.
    data::ProceduralImageWorld world(cfg.spec, cfg.seed * 7919 + 17);
    data::Dataset pretrain =
        world.make_labeled_set(cfg.pretrain_per_class, cfg.seed + 1);
    nn::ConvNetConfig mc;
    mc.in_channels = 3;
    mc.image_h = cfg.spec.height;
    mc.image_w = cfg.spec.width;
    mc.num_classes = cfg.spec.num_classes;
    mc.width = cfg.model_width;
    mc.depth = cfg.model_depth;
    Rng rng(cfg.seed * 0x9E37 + 0xC0FFEE);
    nn::ConvNet model(mc, rng);
    std::vector<int64_t> all(static_cast<size_t>(pretrain.size()));
    for (int64_t i = 0; i < pretrain.size(); ++i)
      all[static_cast<size_t>(i)] = i;
    core::train_classifier(model, pretrain.batch(all), pretrain.labels(),
                           cfg.pretrain_epochs, cfg.deco.lr_model,
                           cfg.deco.weight_decay, cfg.deco.train_batch, rng);
    data::TemporalStream stream(world, cfg.stream, cfg.seed + 4);
    data::Segment seg;
    int64_t kept_correct = 0, kept_total = 0;
    while (stream.next(seg)) {
      auto pl = core::pseudo_label_segment(model, seg.images, m);
      for (int64_t i : pl.retained) {
        if (pl.labels[static_cast<size_t>(i)] ==
            seg.true_labels[static_cast<size_t>(i)])
          ++kept_correct;
        ++kept_total;
      }
    }
    const double kept_acc =
        kept_total > 0 ? 100.0 * static_cast<double>(kept_correct) /
                             static_cast<double>(kept_total)
                       : 0.0;

    table.add_row({eval::fmt(m, 1), eval::fmt(100.0 * retained / n, 1),
                   eval::fmt(kept_acc, 1), eval::fmt(final_acc / n, 2)});
    std::cout.flush();
  }
  table.print(std::cout);
  std::cout << "\nPaper shape check: retention falls with m, pseudo-label "
               "accuracy rises, model accuracy peaks at intermediate m.\n";
  return 0;
}
