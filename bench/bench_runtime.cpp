// Multi-session runtime throughput sweep.
//
// Runs the Fleet harness (SessionManager + pump thread + per-session bounded
// queues) over 1/2/4/8 concurrent sessions and reports aggregate
// segments/second, plus a direct single-learner loop as the no-runtime
// baseline so the manager's overhead is visible. Numbers are informational —
// the binary only fails when a session loses segments (a functional bug),
// never on wall-clock, so CI stays immune to noisy-neighbor machines.
//
// Writes BENCH_runtime.json next to the binary (uploaded by the perf-smoke CI
// leg alongside BENCH_telemetry.json and BENCH_kernels.json).
//
// Knobs: DECO_SEGMENTS (stream length per session), DECO_NUM_THREADS.
#include <iostream>
#include <vector>

#include "bench_io.h"
#include "deco/core/thread_pool.h"
#include "deco/eval/report.h"
#include "deco/runtime/fleet.h"

namespace {

using deco::bench::now_seconds;
using deco::runtime::Fleet;
using deco::runtime::FleetConfig;
using deco::runtime::FleetResult;
using deco::runtime::LearnerHandle;

FleetConfig bench_config(int64_t sessions, int64_t segments) {
  FleetConfig fc;
  fc.sessions = sessions;
  fc.spec = deco::data::core50_spec();
  fc.stream.stc = 16;
  fc.stream.segment_size = 16;
  fc.stream.total_segments = segments;
  fc.deco.ipc = 2;
  fc.deco.beta = 4;
  fc.deco.model_update_epochs = 2;
  fc.deco.train_batch = 16;
  fc.deco.condenser.iterations = 2;
  fc.labeled_per_class = 2;
  fc.model_width = 16;
  fc.model_depth = 2;
  fc.runtime.queue_depth = 4;
  return fc;
}

/// The no-runtime reference: one learner, one stream, a plain loop.
double direct_single_learner_seconds(const FleetConfig& fc) {
  deco::data::ProceduralImageWorld world(fc.spec, Fleet::world_seed(fc));
  LearnerHandle h = Fleet::make_learner(fc, world, 0);
  deco::data::TemporalStream stream(world, fc.stream,
                                    Fleet::stream_seed(fc, 0));
  deco::data::Segment seg;
  const double t0 = now_seconds();
  while (stream.next(seg)) h.learner->observe_segment(seg.images);
  return now_seconds() - t0;
}

struct SweepPoint {
  int64_t sessions;
  int64_t segments_processed;
  double seconds;
  double segments_per_second;
};

}  // namespace

int main() {
  const int64_t segments = deco::eval::env_int("DECO_SEGMENTS", 6);
  std::cout << "# bench_runtime\n"
            << "threads=" << deco::core::num_threads()
            << " segments_per_session=" << segments << "\n\n";

  const double direct_s = direct_single_learner_seconds(bench_config(1, segments));
  const double direct_rate = static_cast<double>(segments) / direct_s;
  std::cout << "direct single learner (no runtime): " << direct_s << " s, "
            << direct_rate << " seg/s\n\n";

  int failures = 0;
  std::vector<SweepPoint> sweep;
  std::cout << "sessions  segments  seconds  seg/s\n";
  for (const int64_t sessions : {1, 2, 4, 8}) {
    Fleet fleet(bench_config(sessions, segments));
    const FleetResult r = fleet.run();
    const int64_t expected = sessions * segments;
    if (r.segments_processed != expected) {
      std::cout << "FAIL: " << sessions << " sessions processed "
                << r.segments_processed << " segments, expected " << expected
                << "\n";
      ++failures;
    }
    sweep.push_back({sessions, r.segments_processed, r.seconds,
                     r.segments_per_second});
    std::cout << sessions << "  " << r.segments_processed << "  " << r.seconds
              << "  " << r.segments_per_second << "\n";
  }

  // Overhead of the runtime itself at 1 session (queue + scheduler + pump
  // hand-off, amortized per segment). Informational.
  const double overhead_pct =
      (sweep[0].seconds - direct_s) / direct_s * 100.0;
  std::cout << "\nruntime overhead at 1 session: " << overhead_pct << "%\n";

  deco::bench::JsonWriter js;
  js.begin_object()
      .key("threads").value(deco::core::num_threads())
      .key("segments_per_session").value(segments)
      .key("direct_seconds").value(direct_s)
      .key("runtime_overhead_pct").value(overhead_pct)
      .key("sweep").begin_array();
  for (const SweepPoint& p : sweep) {
    js.begin_object()
        .key("sessions").value(p.sessions)
        .key("segments_processed").value(p.segments_processed)
        .key("seconds").value(p.seconds)
        .key("segments_per_second").value(p.segments_per_second)
        .end_object();
  }
  js.end_array().end_object();
  if (!js.write_file("BENCH_runtime.json")) ++failures;

  std::cout << (failures == 0 ? "bench-runtime: PASS" : "bench-runtime: FAIL")
            << "\n";
  return failures;
}
