// Regenerates Table II of the paper: execution time (condensation seconds)
// and final accuracy of the condensation methods DC, DSA, DM and DECO on the
// CORe50 stream at IpC ∈ {1, 5, 10, 50}.
//
// Paper reference shape: DECO ≈ 10× faster than DC and DSA; DM is marginally
// faster than DECO but clearly less accurate; DECO's accuracy matches or
// beats DC/DSA. Absolute seconds differ (CPU simulator vs the authors' GPU),
// the ratios are the reproduction target.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <thread>

#include "bench_util.h"
#include "deco/condense/matcher.h"
#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "deco/eval/metrics.h"
#include "deco/nn/convnet.h"
#include "deco/nn/loss.h"
#include "deco/tensor/ops.h"

using namespace deco;

namespace {

double time_op_ms(const std::function<void()>& op, int iters) {
  op();  // warm-up (also first-touch allocates scratch buffers)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

// Times the hot kernels at 1/2/4/8 threads and writes BENCH_threads.json.
// The deterministic-chunking contract means every row computes the identical
// numbers; only the wall clock moves. Speedups are relative to threads=1 and
// only meaningful up to std::thread::hardware_concurrency(), which is
// recorded alongside the timings.
void thread_sweep() {
  const int saved = core::num_threads();
  const std::vector<int> counts{1, 2, 4, 8};

  Rng rng(7);
  const int64_t n = 192;
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor mm_out;

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 32;
  mc.depth = 3;
  nn::ConvNet net(mc, rng);
  Tensor x({32, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels(32);
  for (int64_t i = 0; i < 32; ++i) labels[static_cast<size_t>(i)] = i % 10;

  Tensor x_syn({10, 3, 16, 16});
  rng.fill_uniform(x_syn, 0, 1);
  std::vector<int64_t> y_syn(10, 0);
  condense::GradientMatcher matcher(net);

  const std::map<std::string, std::function<void()>> kernels{
      {"matmul_192", [&] { matmul_into(a, b, mm_out); }},
      {"convnet_fwd_bwd_b32",
       [&] {
         net.zero_grad();
         auto ce = nn::weighted_cross_entropy(net.forward(x), labels);
         Tensor gx = net.backward(ce.grad_logits);
       }},
      {"one_step_match_ipc10",
       [&] { auto res = matcher.match(x_syn, y_syn, x, labels, {}); }},
  };

  std::map<std::string, std::map<int, double>> ms;
  for (int t : counts) {
    core::set_num_threads(t);
    for (const auto& [name, op] : kernels)
      ms[name][t] = time_op_ms(op, name == "matmul_192" ? 50 : 10);
  }
  core::set_num_threads(saved);

  std::ofstream js("BENCH_threads.json");
  js << "{\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n  \"kernels\": {\n";
  bool first_k = true;
  for (const auto& [name, by_t] : ms) {
    if (!first_k) js << ",\n";
    first_k = false;
    js << "    \"" << name << "\": {\"ms_per_iter\": {";
    bool first_t = true;
    for (const auto& [t, v] : by_t) {
      if (!first_t) js << ", ";
      first_t = false;
      js << "\"" << t << "\": " << v;
    }
    js << "}, \"speedup_4\": " << by_t.at(1) / by_t.at(4) << "}";
  }
  js << "\n  }\n}\n";

  std::cout << "## Thread sweep (BENCH_threads.json)\n"
            << "hardware_concurrency="
            << std::thread::hardware_concurrency() << "\n";
  for (const auto& [name, by_t] : ms) {
    std::cout << name << ":";
    for (const auto& [t, v] : by_t)
      std::cout << "  t" << t << "=" << eval::fmt(v, 3) << "ms";
    std::cout << "  (x" << eval::fmt(by_t.at(1) / by_t.at(4), 2)
              << " at 4 threads)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_scale_banner("Table II — condensation execution time");
  const bench::BenchScale s = bench::scale();
  thread_sweep();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  const std::vector<std::string> methods{"dc", "dsa", "dm", "deco"};
  const std::vector<int64_t> ipcs{1, 5, 10, 50};

  eval::MarkdownTable table(
      {"Method", "IpC=1 Time", "IpC=1 Acc", "IpC=5 Time", "IpC=5 Acc",
       "IpC=10 Time", "IpC=10 Acc", "IpC=50 Time", "IpC=50 Acc"});

  for (const auto& method : methods) {
    std::vector<std::string> row{method == "deco" ? "DECO" : method};
    for (int64_t ipc : ipcs) {
      eval::RunConfig cfg = base;
      cfg.method = method;
      cfg.ipc = ipc;
      const auto results = eval::run_seeds(cfg, std::max<int64_t>(1, s.seeds - 1));
      double time_sum = 0.0;
      std::vector<float> accs;
      for (const auto& r : results) {
        time_sum += r.condense_seconds;
        accs.push_back(r.final_accuracy);
      }
      row.push_back(eval::fmt(time_sum / static_cast<double>(results.size()), 1));
      row.push_back(eval::fmt(eval::aggregate(accs).mean, 1));
      std::cout.flush();
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nPaper shape check: Time(DC) ≈ Time(DSA) ≫ Time(DECO) ≳ "
               "Time(DM); Acc(DECO) ≈ Acc(DC) > Acc(DM).\n";

  // Where did the condensation seconds go? The aggregate telemetry snapshot
  // (per-phase span times, GEMM flops, pool utilization) answers that for
  // the whole run just timed.
  core::telemetry::write_aggregate_json("BENCH_table2_telemetry.json");
  std::cout << "Telemetry aggregate written to BENCH_table2_telemetry.json\n";
  return 0;
}
