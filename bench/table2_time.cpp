// Regenerates Table II of the paper: execution time (condensation seconds)
// and final accuracy of the condensation methods DC, DSA, DM and DECO on the
// CORe50 stream at IpC ∈ {1, 5, 10, 50}.
//
// Paper reference shape: DECO ≈ 10× faster than DC and DSA; DM is marginally
// faster than DECO but clearly less accurate; DECO's accuracy matches or
// beats DC/DSA. Absolute seconds differ (CPU simulator vs the authors' GPU),
// the ratios are the reproduction target.
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Table II — condensation execution time");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  const std::vector<std::string> methods{"dc", "dsa", "dm", "deco"};
  const std::vector<int64_t> ipcs{1, 5, 10, 50};

  eval::MarkdownTable table(
      {"Method", "IpC=1 Time", "IpC=1 Acc", "IpC=5 Time", "IpC=5 Acc",
       "IpC=10 Time", "IpC=10 Acc", "IpC=50 Time", "IpC=50 Acc"});

  for (const auto& method : methods) {
    std::vector<std::string> row{method == "deco" ? "DECO" : method};
    for (int64_t ipc : ipcs) {
      eval::RunConfig cfg = base;
      cfg.method = method;
      cfg.ipc = ipc;
      const auto results = eval::run_seeds(cfg, std::max<int64_t>(1, s.seeds - 1));
      double time_sum = 0.0;
      std::vector<float> accs;
      for (const auto& r : results) {
        time_sum += r.condense_seconds;
        accs.push_back(r.final_accuracy);
      }
      row.push_back(eval::fmt(time_sum / static_cast<double>(results.size()), 1));
      row.push_back(eval::fmt(eval::aggregate(accs).mean, 1));
      std::cout.flush();
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nPaper shape check: Time(DC) ≈ Time(DSA) ≫ Time(DECO) ≳ "
               "Time(DM); Acc(DECO) ≈ Acc(DC) > Acc(DM).\n";
  return 0;
}
