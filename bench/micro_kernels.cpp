// Micro-benchmarks (google-benchmark) of the numeric kernels that dominate
// DECO's on-device cost: the ConvNet forward/backward passes, the GEMMs
// behind them, the gradient-distance computation, one full matching step and
// the procedural renderer. These quantify the per-layer cost model that
// DESIGN.md's scaling decisions rest on.
//
// Before the gbench suite runs, main() sweeps the GEMM shapes that matter —
// square 64/192/512 plus the conv-shaped skinny GEMMs the ConvNet actually
// issues — against an in-binary naive reference and writes BENCH_kernels.json
// (ms and GFLOP/s for both kernels), so the perf trajectory is
// machine-readable across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "deco/condense/grad_distance.h"
#include "deco/core/thread_pool.h"
#include "deco/condense/grad_utils.h"
#include "deco/condense/matcher.h"
#include "deco/data/world.h"
#include "deco/nn/convnet.h"
#include "deco/nn/loss.h"
#include "deco/tensor/ops.h"

namespace {

using namespace deco;

// GFLOP/s counter for a GEMM benchmark (2 flops per multiply-add).
void set_gflops(benchmark::State& state, int64_t m, int64_t n, int64_t k) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(state.iterations()) * static_cast<double>(m) *
          static_cast<double>(n) * static_cast<double>(k) * 1e-9,
      benchmark::Counter::kIsRate);
}

nn::ConvNetConfig paper_config() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 32;
  cfg.depth = 3;
  return cfg;
}

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor out;
  for (auto _ : state) {
    matmul_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_gflops(state, n, n, n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvNetForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(2);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({batch, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  for (auto _ : state) {
    Tensor y = net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvNetForward)->Arg(1)->Arg(32);

void BM_ConvNetForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({batch, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) labels[static_cast<size_t>(i)] = i % 10;
  for (auto _ : state) {
    net.zero_grad();
    Tensor logits = net.forward(x);
    auto ce = nn::weighted_cross_entropy(logits, labels);
    Tensor gx = net.backward(ce.grad_logits);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvNetForwardBackward)->Arg(1)->Arg(32);

void BM_GradientDistance(benchmark::State& state) {
  Rng rng(4);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({8, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels{0, 1, 2, 3, 4, 5, 6, 7};
  net.zero_grad();
  auto ce = nn::weighted_cross_entropy(net.forward(x), labels);
  net.backward(ce.grad_logits);
  condense::GradVec a = condense::clone_grads(net);
  condense::GradVec b = a;
  for (Tensor& t : b) t.scale_(0.9f);
  for (auto _ : state) {
    auto res = condense::gradient_distance(a, b);
    benchmark::DoNotOptimize(res.value);
  }
}
BENCHMARK(BM_GradientDistance);

void BM_OneStepMatch(benchmark::State& state) {
  const int64_t ipc = state.range(0);
  Rng rng(5);
  nn::ConvNet net(paper_config(), rng);
  Tensor x_syn({ipc, 3, 16, 16});
  rng.fill_uniform(x_syn, 0, 1);
  std::vector<int64_t> y_syn(static_cast<size_t>(ipc), 0);
  Tensor x_real({32, 3, 16, 16});
  rng.fill_uniform(x_real, 0, 1);
  std::vector<int64_t> y_real(32, 0);
  condense::GradientMatcher matcher(net);
  for (auto _ : state) {
    auto res = matcher.match(x_syn, y_syn, x_real, y_real, {});
    benchmark::DoNotOptimize(res.distance);
  }
}
BENCHMARK(BM_OneStepMatch)->Arg(1)->Arg(10)->Arg(50);

// ---- thread-count sweeps ----------------------------------------------------
// The same kernels at DECO_NUM_THREADS ∈ {1, 2, 4, 8}. The deterministic
// chunking contract means every row of the sweep computes the identical
// result; only the wall clock should move. Captured before any bench runs so
// the sweeps can restore the environment's default pool size afterwards.
const int kDefaultThreads = core::num_threads();

void BM_MatmulThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<int>(state.range(0)));
  const int64_t n = 128;
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor out;
  for (auto _ : state) {
    matmul_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_gflops(state, n, n, n);
  core::set_num_threads(kDefaultThreads);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ConvNetForwardBackwardThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<int>(state.range(0)));
  const int64_t batch = 32;
  Rng rng(3);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({batch, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) labels[static_cast<size_t>(i)] = i % 10;
  for (auto _ : state) {
    net.zero_grad();
    Tensor logits = net.forward(x);
    auto ce = nn::weighted_cross_entropy(logits, labels);
    Tensor gx = net.backward(ce.grad_logits);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  core::set_num_threads(kDefaultThreads);
}
BENCHMARK(BM_ConvNetForwardBackwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OneStepMatchThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<int>(state.range(0)));
  const int64_t ipc = 10;
  Rng rng(5);
  nn::ConvNet net(paper_config(), rng);
  Tensor x_syn({ipc, 3, 16, 16});
  rng.fill_uniform(x_syn, 0, 1);
  std::vector<int64_t> y_syn(static_cast<size_t>(ipc), 0);
  Tensor x_real({32, 3, 16, 16});
  rng.fill_uniform(x_real, 0, 1);
  std::vector<int64_t> y_real(32, 0);
  condense::GradientMatcher matcher(net);
  for (auto _ : state) {
    auto res = matcher.match(x_syn, y_syn, x_real, y_real, {});
    benchmark::DoNotOptimize(res.distance);
  }
  core::set_num_threads(kDefaultThreads);
}
BENCHMARK(BM_OneStepMatchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RenderFrame(benchmark::State& state) {
  data::ProceduralImageWorld world(data::core50_spec(), 6);
  int64_t frame = 0;
  for (auto _ : state) {
    Tensor img = world.render(frame % 10, 0, 0, frame);
    benchmark::DoNotOptimize(img.data());
    ++frame;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RenderFrame);

// ---- BENCH_kernels.json shape sweep -----------------------------------------
// Packed kernel vs an in-binary naive reference (the pre-blocking i-k-j
// loop), single-threaded so the numbers compare across PRs and runners.

enum class GemmOp { NN, TN, NT };

struct SweepShape {
  std::string name;
  GemmOp op;
  int64_t m, n, k;
};

// The naive kernel this PR replaced, kept here as the measurement baseline.
void naive_gemm(GemmOp op, const Tensor& a, const Tensor& b, Tensor& out) {
  const int64_t m = out.dim(0), n = out.dim(1);
  const int64_t k = op == GemmOp::TN ? a.dim(0) : a.dim(1);
  out.zero();
  float* po = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = op == GemmOp::TN ? pa[kk * m + i] : pa[i * k + kk];
      if (op == GemmOp::NT) {
        for (int64_t j = 0; j < n; ++j) orow[j] += aik * pb[j * k + kk];
      } else {
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  }
}

double time_ms(const std::function<void()>& op) {
  using clock = std::chrono::steady_clock;
  op();  // warm-up (and workspace/pool priming)
  // Calibrate the iteration count for ~0.25 s of measurement.
  auto t0 = clock::now();
  op();
  const double once =
      std::chrono::duration<double>(clock::now() - t0).count();
  const int iters =
      std::max(3, static_cast<int>(0.25 / std::max(once, 1e-6)));
  t0 = clock::now();
  for (int i = 0; i < iters; ++i) op();
  const double total =
      std::chrono::duration<double>(clock::now() - t0).count();
  return total / iters * 1e3;
}

void write_kernels_json() {
  const int saved = core::num_threads();
  core::set_num_threads(1);

  // The conv-shaped GEMMs the paper-config ConvNet issues at batch 32: the
  // forward product per conv block and the two backward products (dW and
  // dcols) of the widest block.
  const nn::ConvNetConfig mc = paper_config();
  const int64_t batch = 32;
  const Conv2dGeometry g1{mc.in_channels, mc.image_h, mc.image_w, 3, 3, 1, 1};
  const Conv2dGeometry g2{mc.width, mc.image_h / 2, mc.image_w / 2, 3, 3, 1, 1};
  const int64_t cols1 = batch * g1.out_h() * g1.out_w();
  const int64_t cols2 = batch * g2.out_h() * g2.out_w();

  std::vector<SweepShape> shapes;
  for (int64_t s : {64, 192, 512})
    shapes.push_back({"matmul_" + std::to_string(s), GemmOp::NN, s, s, s});
  shapes.push_back({"conv1_fwd", GemmOp::NN, mc.width, cols1, g1.col_rows()});
  shapes.push_back({"conv2_fwd", GemmOp::NN, mc.width, cols2, g2.col_rows()});
  shapes.push_back({"conv2_dw", GemmOp::NT, mc.width, g2.col_rows(), cols2});
  shapes.push_back({"conv2_dcols", GemmOp::TN, g2.col_rows(), cols2, mc.width});

  std::ofstream js("BENCH_kernels.json");
  js << "{\n  \"threads\": 1,\n  \"shapes\": {\n";
  Rng rng(9);
  bool first = true;
  for (const SweepShape& s : shapes) {
    // Operand layouts per op: NN a[m,k] b[k,n]; TN a[k,m] b[k,n]; NT a[m,k]
    // b[n,k].
    Tensor a(s.op == GemmOp::TN ? std::vector<int64_t>{s.k, s.m}
                                : std::vector<int64_t>{s.m, s.k});
    Tensor b(s.op == GemmOp::NT ? std::vector<int64_t>{s.n, s.k}
                                : std::vector<int64_t>{s.k, s.n});
    rng.fill_normal(a, 0, 1);
    rng.fill_normal(b, 0, 1);
    Tensor out({s.m, s.n}), ref({s.m, s.n});

    const double packed_ms = time_ms([&] {
      switch (s.op) {
        case GemmOp::NN: matmul_into(a, b, out); break;
        case GemmOp::TN: matmul_tn_into(a, b, out); break;
        case GemmOp::NT: matmul_nt_into(a, b, out); break;
      }
    });
    const double naive_ms = time_ms([&] { naive_gemm(s.op, a, b, ref); });
    const double flop = 2.0 * static_cast<double>(s.m) *
                        static_cast<double>(s.n) * static_cast<double>(s.k);
    const double packed_gflops = flop / (packed_ms * 1e-3) * 1e-9;
    const double naive_gflops = flop / (naive_ms * 1e-3) * 1e-9;

    if (!first) js << ",\n";
    first = false;
    const char* opname = s.op == GemmOp::NN ? "nn"
                         : s.op == GemmOp::TN ? "tn"
                                              : "nt";
    js << "    \"" << s.name << "\": {\"op\": \"" << opname
       << "\", \"m\": " << s.m << ", \"n\": " << s.n << ", \"k\": " << s.k
       << ", \"packed_ms\": " << packed_ms
       << ", \"packed_gflops\": " << packed_gflops
       << ", \"naive_ms\": " << naive_ms
       << ", \"naive_gflops\": " << naive_gflops
       << ", \"speedup\": " << naive_ms / packed_ms << "}";
    std::cout << s.name << ": packed " << packed_gflops << " GFLOP/s, naive "
              << naive_gflops << " GFLOP/s (" << naive_ms / packed_ms
              << "x)\n";
  }
  js << "\n  }\n}\n";
  std::cout << "wrote BENCH_kernels.json\n";
  core::set_num_threads(saved);
}

}  // namespace

int main(int argc, char** argv) {
  write_kernels_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
