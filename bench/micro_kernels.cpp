// Micro-benchmarks (google-benchmark) of the numeric kernels that dominate
// DECO's on-device cost: the ConvNet forward/backward passes, the GEMMs
// behind them, the gradient-distance computation, one full matching step and
// the procedural renderer. These quantify the per-layer cost model that
// DESIGN.md's scaling decisions rest on.
#include <benchmark/benchmark.h>

#include "deco/condense/grad_distance.h"
#include "deco/core/thread_pool.h"
#include "deco/condense/grad_utils.h"
#include "deco/condense/matcher.h"
#include "deco/data/world.h"
#include "deco/nn/convnet.h"
#include "deco/nn/loss.h"
#include "deco/tensor/ops.h"

namespace {

using namespace deco;

nn::ConvNetConfig paper_config() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 32;
  cfg.depth = 3;
  return cfg;
}

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor out;
  for (auto _ : state) {
    matmul_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvNetForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(2);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({batch, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  for (auto _ : state) {
    Tensor y = net.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvNetForward)->Arg(1)->Arg(32);

void BM_ConvNetForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({batch, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) labels[static_cast<size_t>(i)] = i % 10;
  for (auto _ : state) {
    net.zero_grad();
    Tensor logits = net.forward(x);
    auto ce = nn::weighted_cross_entropy(logits, labels);
    Tensor gx = net.backward(ce.grad_logits);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvNetForwardBackward)->Arg(1)->Arg(32);

void BM_GradientDistance(benchmark::State& state) {
  Rng rng(4);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({8, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels{0, 1, 2, 3, 4, 5, 6, 7};
  net.zero_grad();
  auto ce = nn::weighted_cross_entropy(net.forward(x), labels);
  net.backward(ce.grad_logits);
  condense::GradVec a = condense::clone_grads(net);
  condense::GradVec b = a;
  for (Tensor& t : b) t.scale_(0.9f);
  for (auto _ : state) {
    auto res = condense::gradient_distance(a, b);
    benchmark::DoNotOptimize(res.value);
  }
}
BENCHMARK(BM_GradientDistance);

void BM_OneStepMatch(benchmark::State& state) {
  const int64_t ipc = state.range(0);
  Rng rng(5);
  nn::ConvNet net(paper_config(), rng);
  Tensor x_syn({ipc, 3, 16, 16});
  rng.fill_uniform(x_syn, 0, 1);
  std::vector<int64_t> y_syn(static_cast<size_t>(ipc), 0);
  Tensor x_real({32, 3, 16, 16});
  rng.fill_uniform(x_real, 0, 1);
  std::vector<int64_t> y_real(32, 0);
  condense::GradientMatcher matcher(net);
  for (auto _ : state) {
    auto res = matcher.match(x_syn, y_syn, x_real, y_real, {});
    benchmark::DoNotOptimize(res.distance);
  }
}
BENCHMARK(BM_OneStepMatch)->Arg(1)->Arg(10)->Arg(50);

// ---- thread-count sweeps ----------------------------------------------------
// The same kernels at DECO_NUM_THREADS ∈ {1, 2, 4, 8}. The deterministic
// chunking contract means every row of the sweep computes the identical
// result; only the wall clock should move. Captured before any bench runs so
// the sweeps can restore the environment's default pool size afterwards.
const int kDefaultThreads = core::num_threads();

void BM_MatmulThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<int>(state.range(0)));
  const int64_t n = 128;
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  Tensor out;
  for (auto _ : state) {
    matmul_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  core::set_num_threads(kDefaultThreads);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ConvNetForwardBackwardThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<int>(state.range(0)));
  const int64_t batch = 32;
  Rng rng(3);
  nn::ConvNet net(paper_config(), rng);
  Tensor x({batch, 3, 16, 16});
  rng.fill_uniform(x, 0, 1);
  std::vector<int64_t> labels(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) labels[static_cast<size_t>(i)] = i % 10;
  for (auto _ : state) {
    net.zero_grad();
    Tensor logits = net.forward(x);
    auto ce = nn::weighted_cross_entropy(logits, labels);
    Tensor gx = net.backward(ce.grad_logits);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  core::set_num_threads(kDefaultThreads);
}
BENCHMARK(BM_ConvNetForwardBackwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OneStepMatchThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<int>(state.range(0)));
  const int64_t ipc = 10;
  Rng rng(5);
  nn::ConvNet net(paper_config(), rng);
  Tensor x_syn({ipc, 3, 16, 16});
  rng.fill_uniform(x_syn, 0, 1);
  std::vector<int64_t> y_syn(static_cast<size_t>(ipc), 0);
  Tensor x_real({32, 3, 16, 16});
  rng.fill_uniform(x_real, 0, 1);
  std::vector<int64_t> y_real(32, 0);
  condense::GradientMatcher matcher(net);
  for (auto _ : state) {
    auto res = matcher.match(x_syn, y_syn, x_real, y_real, {});
    benchmark::DoNotOptimize(res.distance);
  }
  core::set_num_threads(kDefaultThreads);
}
BENCHMARK(BM_OneStepMatchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RenderFrame(benchmark::State& state) {
  data::ProceduralImageWorld world(data::core50_spec(), 6);
  int64_t frame = 0;
  for (auto _ : state) {
    Tensor img = world.render(frame % 10, 0, 0, frame);
    benchmark::DoNotOptimize(img.data());
    ++frame;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RenderFrame);

}  // namespace

BENCHMARK_MAIN();
