// Fault-tolerance sweep: how much accuracy survives a faulty sensor pipeline,
// with and without the numeric-health guards.
//
// The stream is wrapped in a FaultyStream (deco/data/faults.h) at increasing
// severity — from a few stuck pixels up to heavy corruption with NaN/Inf
// bursts, dropped frames and truncated segments — and the same seeds run with
// guards enabled and disabled (common random numbers: the injector draws from
// its own rng, so every cell of the table sees the identical stream).
//
// Expected shape: the clean rows match (guards are designed to be inert on
// healthy data); under NaN/Inf injection the unguarded learner's buffer and
// model are poisoned (accuracy collapses toward chance) while the guarded
// learner quarantines the bad frames and stays near its clean accuracy.
//
// Output: Markdown table on stdout and in results/fault_tolerance.md.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_util.h"

using namespace deco;

namespace {

struct Severity {
  const char* name;
  data::FaultConfig faults;
};

std::vector<Severity> severities() {
  std::vector<Severity> out;
  out.push_back({"clean", {}});

  data::FaultConfig mild;
  mild.dead_pixel_rate = 0.001;
  mild.hot_pixel_rate = 0.001;
  mild.drop_frame_rate = 0.01;
  out.push_back({"mild", mild});

  data::FaultConfig moderate;
  moderate.dead_pixel_rate = 0.005;
  moderate.hot_pixel_rate = 0.005;
  moderate.salt_pepper_rate = 0.01;
  moderate.overexpose_rate = 0.02;
  moderate.underexpose_rate = 0.02;
  moderate.drop_frame_rate = 0.03;
  moderate.duplicate_frame_rate = 0.03;
  moderate.nan_burst_rate = 0.02;
  out.push_back({"moderate", moderate});

  // The ISSUE's acceptance scenario: ~5% corrupt frames plus NaN bursts.
  data::FaultConfig severe;
  severe.dead_pixel_rate = 0.01;
  severe.hot_pixel_rate = 0.01;
  severe.salt_pepper_rate = 0.02;
  severe.overexpose_rate = 0.05;
  severe.underexpose_rate = 0.05;
  severe.drop_frame_rate = 0.05;
  severe.duplicate_frame_rate = 0.05;
  severe.truncate_rate = 0.1;
  severe.nan_burst_rate = 0.05;
  severe.inf_burst_rate = 0.02;
  out.push_back({"severe", severe});
  return out;
}

}  // namespace

int main() {
  bench::print_scale_banner("Fault tolerance — accuracy under sensor faults");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  base.method = "deco";
  base.ipc = 5;

  eval::MarkdownTable table(
      {"severity", "guards", "final acc %", "quarantined", "rolled back",
       "batches skipped", "grads clipped", "injected faults"});

  for (const Severity& sev : severities()) {
    for (bool guarded : {true, false}) {
      eval::RunConfig cfg = base;
      cfg.faults = sev.faults;
      cfg.deco.guard.enabled = guarded;
      const auto results = eval::run_seeds(cfg, s.seeds);
      double acc = 0.0;
      int64_t quarantined = 0, rolled = 0, batches = 0, clipped = 0,
              injected = 0;
      for (const auto& r : results) {
        acc += r.final_accuracy;
        quarantined += r.frames_quarantined;
        rolled += r.steps_rolled_back;
        batches += r.batches_skipped;
        clipped += r.grads_clipped;
        injected += r.faults.total_faults();
      }
      const double n = static_cast<double>(results.size());
      table.add_row({sev.name, guarded ? "on" : "off",
                     eval::fmt(acc / n, 2), std::to_string(quarantined),
                     std::to_string(rolled), std::to_string(batches),
                     std::to_string(clipped), std::to_string(injected)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n";
  table.print(std::cout);

  std::filesystem::create_directories("results");
  std::ofstream md("results/fault_tolerance.md");
  md << "# Fault tolerance: DECO under sensor faults\n\n"
     << "Final accuracy (mean over seeds) as injected sensor-fault severity\n"
     << "increases, with the numeric-health guards on vs. off. Every cell\n"
     << "replays the identical stream (the injector uses its own rng).\n\n";
  table.print(md);
  std::cout << "\nwrote results/fault_tolerance.md\n";
  return 0;
}
