// Ablation A1 (DESIGN.md): the design choices behind DECO's efficient
// condensation (Section III-C).
//
//  (1) One-step matching with L fresh random models (DECO) vs the same L
//      matching steps on ONE fixed random model — the paper's empirical
//      finding that model diversity beats trajectory depth.
//  (2) One-step DECO vs the bilevel DC loop at increasing inner depth —
//      the accuracy/time trade-off that motivates dropping the inner loop.
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Ablation A1 — one-step matching design");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  base.ipc = 10;

  // (1) fresh-model-per-step vs fixed model.
  {
    eval::MarkdownTable table({"variant", "final acc", "condense time (s)"});
    for (bool fresh : {true, false}) {
      eval::RunConfig cfg = base;
      cfg.method = "deco";
      cfg.deco.condenser.rerandomize_each_iteration = fresh;
      const auto results = eval::run_seeds(cfg, s.seeds);
      double acc = 0.0, t = 0.0;
      for (const auto& r : results) {
        acc += r.final_accuracy;
        t += r.condense_seconds;
      }
      const double n = static_cast<double>(results.size());
      table.add_row({fresh ? "L fresh random models (DECO)"
                           : "1 fixed model, L steps",
                     eval::fmt(acc / n, 2), eval::fmt(t / n, 1)});
      std::cout.flush();
    }
    std::cout << "### model randomization\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  // (2) bilevel depth sweep vs one-step.
  {
    std::cout << "### bilevel inner-loop depth (DC) vs one-step (DECO)\n";
    eval::MarkdownTable table({"method", "final acc", "condense time (s)"});
    {
      eval::RunConfig cfg = base;
      cfg.method = "deco";
      const auto r = eval::run_experiment(cfg);
      table.add_row({"DECO (one-step, L=10)", eval::fmt(r.final_accuracy, 2),
                     eval::fmt(r.condense_seconds, 1)});
    }
    for (int64_t inner : {2, 5, 10}) {
      eval::RunConfig cfg = base;
      cfg.method = "dc";
      cfg.bilevel.inner_epochs = inner;
      const auto r = eval::run_experiment(cfg);
      table.add_row({"DC (bilevel, 2 outer x " + std::to_string(inner) +
                         " inner)",
                     eval::fmt(r.final_accuracy, 2),
                     eval::fmt(r.condense_seconds, 1)});
      std::cout.flush();
    }
    table.print(std::cout);
    std::cout << "\nPaper shape check: fresh-model one-step matches or beats "
                 "fixed-model multi-step at equal cost, and approaches DC "
                 "accuracy at ~10× less time.\n";
  }
  return 0;
}
