// Ablation A3: the learnable-soft-label extension (DESIGN.md). The paper
// notes its method "can be flexibly adapted to other dataset condensation
// techniques"; learnable soft labels are the canonical such extension —
// synthetic samples carry learned class distributions, co-optimized with the
// pixels by the same one-step finite-difference rule at no extra passes.
//
// Expected shape: soft labels help most at small IpC (each image can encode
// inter-class structure its pixels alone cannot), at identical condensation
// cost.
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Ablation A3 — learnable soft labels");
  const bench::BenchScale s = bench::scale();

  eval::RunConfig base = bench::base_config(data::core50_spec(), s);
  base.method = "deco";

  eval::MarkdownTable table(
      {"IpC", "hard labels", "soft labels", "condense time hard/soft (s)"});
  for (int64_t ipc : {1, 5, 10}) {
    double acc_hard = 0.0, acc_soft = 0.0, t_hard = 0.0, t_soft = 0.0;
    for (bool soft : {false, true}) {
      eval::RunConfig cfg = base;
      cfg.ipc = ipc;
      cfg.deco.condenser.learn_soft_labels = soft;
      const auto results = eval::run_seeds(cfg, s.seeds);
      for (const auto& r : results) {
        (soft ? acc_soft : acc_hard) += r.final_accuracy;
        (soft ? t_soft : t_hard) += r.condense_seconds;
      }
    }
    const double n = static_cast<double>(s.seeds);
    table.add_row({std::to_string(ipc), eval::fmt(acc_hard / n, 2),
                   eval::fmt(acc_soft / n, 2),
                   eval::fmt(t_hard / n, 1) + " / " + eval::fmt(t_soft / n, 1)});
    std::cout.flush();
  }
  table.print(std::cout);
  return 0;
}
