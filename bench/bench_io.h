// Shared timing + JSON-emit helpers for the benchmark binaries.
//
// Every bench that writes a BENCH_*.json artifact (bench_runtime, perf_smoke,
// bench_scenarios) used to carry its own steady-clock helper and hand-rolled
// ofstream JSON; this header is the single copy. bench_util.h stays the home
// of the *protocol* knobs (scale, seeds, RunConfig defaults) — this file is
// only about measuring time and serializing results.
#pragma once

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace deco::bench {

/// Monotonic wall-clock in seconds (steady_clock, so timing a bench is immune
/// to NTP steps).
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Milliseconds per call of `op`: one warm-up call, a single timed call to
/// size the batch to ~0.3 s, then the mean over that batch. The protocol
/// perf_smoke's GEMM gates were tuned against.
inline double time_ms(const std::function<void()>& op) {
  using clock = std::chrono::steady_clock;
  op();  // warm-up
  auto t0 = clock::now();
  op();
  const double once = std::chrono::duration<double>(clock::now() - t0).count();
  const int iters = std::max(5, static_cast<int>(0.3 / std::max(once, 1e-6)));
  t0 = clock::now();
  for (int i = 0; i < iters; ++i) op();
  return std::chrono::duration<double>(clock::now() - t0).count() / iters * 1e3;
}

/// Minimal pretty-printing JSON emitter for the BENCH_*.json artifacts.
/// Supports objects, arrays, scalar values, and raw() embedding of an
/// already-serialized document (perf_smoke embeds the telemetry aggregate
/// snapshot that way). Keys are emitted in call order; strings are escaped
/// for quotes and backslashes only, which the artifact schemas never contain.
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    os_ << '{';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() { return close_container('}'); }
  JsonWriter& begin_array() {
    separate();
    os_ << '[';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() { return close_container(']'); }

  JsonWriter& key(const std::string& k) {
    separate();
    os_ << '"' << k << "\": ";
    after_key_ = true;
    return *this;
  }
  JsonWriter& value(int64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(const std::string& s) {
    separate();
    os_ << '"';
    for (char c : s) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << '"';
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string(s)); }
  /// Embeds `json` verbatim as the next value; the caller vouches that it is
  /// a complete, valid JSON document.
  JsonWriter& raw(const std::string& json) {
    separate();
    os_ << json;
    return *this;
  }

  /// The document text (trailing newline included).
  std::string str() const { return os_.str() + "\n"; }

  /// Writes the document and reports the path on stdout (the bench binaries'
  /// existing "written to ..." convention). Returns false on I/O failure so
  /// a bench can turn a missing artifact into a nonzero exit.
  bool write_file(const std::string& path) const {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) return false;
    os << str();
    if (!os.good()) return false;
    std::cout << "artifact written to " << path << "\n";
    return true;
  }

 private:
  JsonWriter& close_container(char c) {
    const bool empty = stack_.back();
    stack_.pop_back();
    if (!empty) os_ << "\n" << std::string(stack_.size() * 2, ' ');
    os_ << c;
    return *this;
  }
  // Emits the comma/newline/indent that precedes the next element, unless the
  // element is the value directly following its key.
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (!stack_.back()) os_ << ',';
    stack_.back() = false;
    os_ << "\n" << std::string(stack_.size() * 2, ' ');
  }

  std::ostringstream os_;
  std::vector<bool> stack_;  // one flag per open container: still empty?
  bool after_key_ = false;
};

}  // namespace deco::bench
