// Regenerates Table I of the paper: final average accuracy of DECO vs the
// five replay-selection baselines on all four datasets at IpC ∈ {1, 5, 10, 50},
// plus the relative improvement over the best baseline and the
// unlimited-buffer upper bound.
//
// Paper reference values (CORe50, IpC=1): best baseline 19.05, DECO 29.84
// (+56.7%); upper bound 88.71. The reproduction criterion is the *shape*:
// DECO beats every baseline at every IpC, with the largest relative gains at
// small IpC, and DECO's variance is smaller than the baselines'.
#include <iostream>

#include "bench_util.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  bench::print_scale_banner("Table I — final average accuracy");
  const bench::BenchScale s = bench::scale();

  const std::vector<data::DatasetSpec> specs{
      data::icub1_spec(), data::core50_spec(), data::cifar100_spec(),
      data::imagenet10_spec()};
  const std::vector<int64_t> ipcs{1, 5, 10, 50};
  const std::vector<std::string> baselines{"random", "fifo", "selective_bp",
                                           "kcenter", "gss"};

  for (const auto& spec : specs) {
    eval::RunConfig base = bench::base_config(spec, s);

    // Upper bound: unlimited buffer, once per dataset.
    eval::RunConfig ub = base;
    ub.method = "upper_bound";
    ub.ipc = 1;  // ignored by the unlimited learner
    const auto ub_res = eval::run_seeds(ub, s.seeds);
    const auto ub_agg = eval::aggregate(bench::finals(ub_res));

    eval::MarkdownTable table({"IpC", "Random", "FIFO", "Selective-BP",
                               "K-Center", "GSS-Greedy", "DECO (Ours)",
                               "Improvement", "Upper Bound"});
    std::cout << "## " << spec.name << "\n";

    for (int64_t ipc : ipcs) {
      std::vector<std::string> row{std::to_string(ipc)};
      float best_baseline = 0.0f;
      for (const auto& method : baselines) {
        eval::RunConfig cfg = base;
        cfg.method = method;
        cfg.ipc = ipc;
        const auto agg = eval::aggregate(
            bench::finals(eval::run_seeds(cfg, s.seeds)));
        best_baseline = std::max(best_baseline, agg.mean);
        row.push_back(eval::format_aggregate(agg));
      }
      eval::RunConfig cfg = base;
      cfg.method = "deco";
      cfg.ipc = ipc;
      const auto deco_agg =
          eval::aggregate(bench::finals(eval::run_seeds(cfg, s.seeds)));
      row.push_back(eval::format_aggregate(deco_agg));
      const double improvement =
          best_baseline > 0.0f
              ? 100.0 * (deco_agg.mean - best_baseline) / best_baseline
              : 0.0;
      row.push_back((improvement >= 0 ? "+" : "") + eval::fmt(improvement, 1) +
                    "%");
      row.push_back(eval::fmt(ub_agg.mean, 2));
      table.add_row(row);
      std::cout.flush();
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
