// Fleet: a canned multi-session deployment for demos, benches and serving.
//
// SessionManager is deliberately agnostic about where learners and segments
// come from. Fleet supplies the standard wiring used by `deco_cli serve`,
// bench_runtime and examples/fleet_serve: N DecoLearner sessions over one
// procedural world, each with its own model, rng lineage and
// temporally-correlated stream, replayed through the manager's queues.
//
// Construction of session i's learner and stream is a pure function of
// (FleetConfig, i) — exposed as make_learner()/stream_seed() — so a
// sequential reference run can build bit-identical twins of every session
// and memcmp the results (tests/runtime_stress_test.cpp does exactly this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/runtime/session_manager.h"

namespace deco::runtime {

struct FleetConfig {
  int64_t sessions = 4;
  data::DatasetSpec spec;          ///< shared procedural world
  data::StreamConfig stream;       ///< per-session stream shape
  core::DecoConfig deco;           ///< per-session learner hyper-parameters
  RuntimeConfig runtime;
  int64_t labeled_per_class = 4;   ///< warm-start buffer initialization size
  int64_t model_width = 16;
  int64_t model_depth = 2;
  uint64_t seed = 1;

  void validate() const;
};

/// Outcome of one Fleet::run(): wall-clock throughput plus the final
/// per-session statuses.
struct FleetResult {
  double seconds = 0.0;
  int64_t segments_processed = 0;
  double segments_per_second = 0.0;
  std::vector<SessionStatus> sessions;
};

/// A freshly built learner plus the ownership anchor for resources it
/// references (the model: DecoLearner holds it by reference). Keep
/// `keepalive` alive as long as `learner` — SessionManager::add_session
/// takes both, which is the intended handoff.
struct LearnerHandle {
  std::unique_ptr<core::OnDeviceLearner> learner;
  std::shared_ptr<void> keepalive;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  /// "session0", "session1", ...
  static std::string session_name(int64_t i);
  /// Seed of the shared procedural world.
  static uint64_t world_seed(const FleetConfig& config);
  /// Seed of session i's TemporalStream.
  static uint64_t stream_seed(const FleetConfig& config, int64_t i);
  /// Builds session i's learner identically to the Fleet constructor — the
  /// hook sequential reference runs use to create bit-identical twins.
  static LearnerHandle make_learner(const FleetConfig& config,
                                    const data::ProceduralImageWorld& world,
                                    int64_t i);

  /// Replays every session's stream through the manager (round-robin
  /// submission, pump thread running) until all streams are exhausted and
  /// drained, then reports throughput.
  FleetResult run();

  SessionManager& manager() { return manager_; }
  const data::ProceduralImageWorld& world() const { return world_; }
  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
  data::ProceduralImageWorld world_;
  SessionManager manager_;
};

}  // namespace deco::runtime
