// Bounded per-session ingest queues for the multi-session runtime.
//
// Each learner session owns one SegmentQueue. Producers (sensor threads, RPC
// handlers, stream replayers) push segments from any thread; the scheduler
// pops them from pool workers — the queue is MPMC, guarded by one mutex (the
// payloads are whole image segments, so per-op lock cost is immaterial next
// to the work each segment triggers).
//
// The queue is *strictly* bounded: size() never exceeds the configured depth,
// enforced under the lock. When a push finds the queue full, the overflow
// policy decides:
//
//   * kBlock     — the producer blocks until the scheduler drains a slot (or
//                  the queue closes). This is lossless backpressure: a slow
//                  session slows its own producer, never the fleet.
//   * kShedOldest — the OLDEST queued segment is dropped to admit the new
//                  one (the newest data is the most relevant under temporal
//                  correlation). Sheds are counted, never silent.
//
// close() wakes blocked producers (their push returns false) and lets
// consumers drain what is already queued; pop returns false only when the
// queue is BOTH closed and empty, so no accepted segment is ever lost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "deco/tensor/tensor.h"

namespace deco::runtime {

enum class OverflowPolicy {
  kBlock,      ///< producer blocks until a slot frees up
  kShedOldest, ///< oldest queued segment is dropped for the newcomer
};

/// Parses "block" / "shed_oldest" (and the shorthand "shed").
OverflowPolicy overflow_policy_from_name(const std::string& name);
std::string overflow_policy_name(OverflowPolicy p);

/// Monotonic counters of one queue's traffic. Reads are internally locked;
/// values are exact once producers/consumers are quiescent.
struct QueueStats {
  int64_t pushed = 0;         ///< segments accepted (includes later sheds)
  int64_t popped = 0;         ///< segments handed to the scheduler
  int64_t shed = 0;           ///< segments dropped by kShedOldest
  int64_t rejected = 0;       ///< pushes refused because the queue was closed
  int64_t max_depth = 0;      ///< high-water queue occupancy
  int64_t block_waits = 0;    ///< pushes that had to wait for a slot
  int64_t block_wait_ns = 0;  ///< total nanoseconds producers spent waiting
};

class SegmentQueue {
 public:
  /// `depth` >= 1 is the hard occupancy bound.
  SegmentQueue(int64_t depth, OverflowPolicy policy);

  SegmentQueue(const SegmentQueue&) = delete;
  SegmentQueue& operator=(const SegmentQueue&) = delete;

  /// Offers one segment. Returns true when the segment was admitted; false
  /// when the queue is closed (the segment is dropped — producers should
  /// stop). Under kBlock a full queue blocks the caller; under kShedOldest
  /// the oldest queued segment is discarded and counted.
  bool push(Tensor segment);

  /// Pops the oldest segment without blocking. Returns false when nothing is
  /// queued (closed or not) — the scheduler polls, it never parks here.
  bool try_pop(Tensor& out);

  /// Closes the queue: subsequent pushes fail fast, blocked producers wake,
  /// queued segments remain poppable.
  void close();
  bool closed() const;

  /// Current occupancy (always <= depth()).
  int64_t size() const;
  int64_t depth() const { return depth_; }
  OverflowPolicy policy() const { return policy_; }
  QueueStats stats() const;

 private:
  const int64_t depth_;
  const OverflowPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<Tensor> items_;
  bool closed_ = false;
  QueueStats stats_;
};

}  // namespace deco::runtime
