// Multi-session learner runtime.
//
// A SessionManager hosts N concurrent learner sessions — each an
// OnDeviceLearner with its own rng stream, ingest queue and checkpoint path —
// and dispatches their segment work onto the process-wide core::ThreadPool.
// One pool serves the whole fleet: sessions fan out across pool workers, and
// the tensor kernels *inside* a session run inline on that worker (the pool's
// nested-region rule), so total thread count never exceeds DECO_NUM_THREADS
// no matter how many sessions are live.
//
// Scheduling is deficit round-robin (DRR). Each scheduler round walks the
// active sessions from a rotating cursor; a session's deficit grows by
// `quantum` per round (capped at `max_deficit` so an idle session cannot bank
// unbounded credit) and it may process up to `deficit` queued segments that
// round. Every session therefore gets the same long-run share regardless of
// arrival pattern, and a backlogged session catches up without starving the
// rest.
//
// Determinism. A session is dispatched as AT MOST ONE pool chunk per round,
// and rounds are fork-join barriers — so each session's segments are
// processed strictly serially, in arrival order, exactly as a sequential
// loop would. Combined with the library-wide deterministic-chunking contract
// (thread count never changes numeric results), an N-session concurrent run
// produces per-session models, buffers and reports byte-identical to N
// sequential runs, at any DECO_NUM_THREADS. tests/runtime_stress_test.cpp
// memcmp-proves this.
//
// Fault isolation. A segment failure (a thrown deco::Error, or a guard-
// skipped segment) bumps the session's consecutive-failure count; reaching
// `quarantine_after` quarantines THAT session — its queue closes and the
// scheduler stops visiting it — while every other session keeps running.
// This is the fleet-level escalation of the per-learner NumericGuard.
//
// Memory. add_session admits a session only while the fleet's summed
// OnDeviceLearner::memory_bytes() stays within the runtime budget
// (RuntimeConfig::pool_budget_bytes(), by default the DECO_TENSOR_POOL_MB
// tensor-pool cap), so one over-provisioned fleet cannot thrash the pool.
//
// Checkpointing. When checkpoint_every > 0, a session that supports_state()
// writes `<checkpoint_dir>/<name>.ckpt` every checkpoint_every processed
// segments (atomic temp+rename via save_state), so a killed process resumes
// any session from its last checkpoint bit-exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "deco/core/learner.h"
#include "deco/runtime/config.h"
#include "deco/runtime/queue.h"

namespace deco::runtime {

enum class SessionState {
  kActive,       ///< scheduled normally
  kQuarantined,  ///< too many consecutive failures; queue closed, skipped
};

std::string session_state_name(SessionState s);

/// Point-in-time view of one session (status() copies under the lock).
struct SessionStatus {
  std::string name;
  SessionState state = SessionState::kActive;
  int64_t segments_processed = 0;
  int64_t segments_failed = 0;       ///< exceptions + guard-skipped segments
  int64_t consecutive_failures = 0;
  int64_t checkpoints_written = 0;
  int64_t memory_bytes = 0;          ///< learner estimate at admission
  std::string checkpoint_path;       ///< empty when checkpointing is off
  std::string last_error;            ///< most recent failure message
  QueueStats queue;
};

class SessionManager {
 public:
  explicit SessionManager(RuntimeConfig config);
  ~SessionManager();  ///< stop()s the pump and closes every queue
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a learner under a unique name. `keepalive` optionally owns
  /// whatever the learner references (learners hold their ConvNet by
  /// reference, so pass the model's owner here to tie the lifetimes).
  /// Throws deco::Error on a duplicate name or when admitting the learner
  /// would push the fleet past the memory budget.
  void add_session(const std::string& name,
                   std::unique_ptr<core::OnDeviceLearner> learner,
                   std::shared_ptr<void> keepalive = nullptr);

  /// Enqueues one segment on the named session's queue, honoring the
  /// overflow policy (may block under kBlock). Returns false when the queue
  /// is closed (session quarantined or shutting down). Thread-safe; any
  /// number of producers may submit concurrently.
  bool submit(const std::string& name, Tensor segment);

  /// Closes one session's ingest queue: already-queued segments still get
  /// processed, further submits return false.
  void close_session(const std::string& name);
  void close_all();

  /// Runs one DRR scheduler round: every active session with queued work
  /// processes up to its deficit of segments, concurrently across sessions,
  /// with a barrier at the end. Returns segments processed this round.
  /// Not reentrant — one scheduler (the pump thread OR the caller), never
  /// both; submit()/status() remain safe concurrently.
  int64_t run_round();

  /// Runs rounds until no active session has queued work. (Segments stranded
  /// on quarantined sessions' queues are abandoned.)
  void drain();

  /// Starts the background pump thread: rounds run as submissions arrive.
  void start();
  /// Closes every queue, drains the remaining work and joins the pump.
  /// Idempotent; also called by the destructor.
  void stop();

  int64_t session_count() const;
  /// Throws deco::Error when `name` is unknown.
  SessionStatus status(const std::string& name) const;
  std::vector<SessionStatus> statuses() const;
  /// Direct learner access (final evaluation, save_state in tests). Only
  /// touch it while the scheduler is quiescent.
  core::OnDeviceLearner& learner(const std::string& name);
  /// Per-session reports in processing order; empty unless
  /// RuntimeConfig::keep_reports.
  std::vector<core::SegmentReport> reports(const std::string& name) const;

  int64_t total_processed() const;
  const RuntimeConfig& config() const { return config_; }

 private:
  struct Session {
    std::string name;
    std::unique_ptr<core::OnDeviceLearner> learner;
    std::shared_ptr<void> keepalive;
    std::unique_ptr<SegmentQueue> queue;
    std::string checkpoint_path;
    int64_t admitted_bytes = 0;
    int64_t deficit = 0;  ///< scheduler credit; touched only by run_round

    // Mutable status, guarded by `m` (the turn task writes, status() reads).
    mutable std::mutex m;
    SessionState state = SessionState::kActive;
    int64_t segments_processed = 0;
    int64_t segments_failed = 0;
    int64_t consecutive_failures = 0;
    int64_t checkpoints_written = 0;
    std::string last_error;
    std::vector<core::SegmentReport> reports;
  };

  Session* find(const std::string& name) const;
  Session& find_or_throw(const std::string& name) const;
  /// Processes up to `budget` segments of one session, serially. Returns the
  /// number actually processed.
  int64_t process_turn(Session& s, int64_t budget);
  void pump_loop();

  const RuntimeConfig config_;

  // Guards the sessions vector and the scheduler cursor. Session objects are
  // heap-allocated, so pointers taken under the lock stay valid outside it.
  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  int64_t cursor_ = 0;

  // Pump-thread plumbing.
  std::mutex pump_mutex_;
  std::condition_variable pump_cv_;
  bool pump_pending_ = false;
  bool pump_stop_ = false;
  bool pump_running_ = false;
  std::thread pump_;
};

}  // namespace deco::runtime
