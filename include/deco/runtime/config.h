// Runtime configuration plus the unified key=value / JSON config loader.
//
// Every binary used to re-parse its own ad-hoc flag set. The ConfigMap is
// the single parsing path shared by deco_cli, the benches and the examples:
// it ingests `key=value` lines (or a flat JSON object) from a file, stdin
// text or --set overrides, and applies them onto the three config structs —
// `deco.*` → core::DecoConfig, `stream.*` → data::StreamConfig, `runtime.*`
// → runtime::RuntimeConfig. The loader only converts and routes values;
// range checking stays where it always was, in each struct's validate().
// Every loader error names the offending key, so a typo fails like
//   config: unknown key 'deco.treshold_m'
// instead of silently running the default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/runtime/queue.h"

namespace deco::runtime {

/// Multi-session runtime policy knobs (see session_manager.h for semantics).
struct RuntimeConfig {
  int64_t queue_depth = 8;      ///< per-session ingest queue bound
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  int64_t quantum = 1;          ///< segments per session per scheduler round
  int64_t max_deficit = 8;      ///< cap on banked scheduler credit (DRR)
  int64_t checkpoint_every = 0; ///< segments between checkpoints (0 = off)
  std::string checkpoint_dir = ".";
  int64_t quarantine_after = 3; ///< consecutive failed segments before
                                ///< quarantine (0 = never quarantine)
  int64_t pool_budget_mb = 0;   ///< fleet memory budget; 0 = the tensor
                                ///< pool cap (DECO_TENSOR_POOL_MB)
  bool keep_reports = false;    ///< retain every SegmentReport per session
  DType checkpoint_dtype = DType::kF32;  ///< dtype applied to every hosted
                                         ///< learner's save_state model
                                         ///< parameters (fp32 = bit-exact)

  /// Throws deco::Error on out-of-range knobs.
  void validate() const;
  /// Resolved budget in bytes (pool_budget_mb, or the tensor-pool cap).
  int64_t pool_budget_bytes() const;
};

/// Ordered key→value map with consumption tracking. Keys are free-form
/// dotted paths; later entries override earlier ones. apply()/get_* mark
/// entries consumed, and check_fully_consumed() turns leftovers (typos,
/// keys for a config the caller never applied) into errors naming the key.
class ConfigMap {
 public:
  ConfigMap() = default;

  /// Loads a config file: `*.json` parses as a flat JSON object, anything
  /// else as `key=value` lines (blank lines and `#` comments ignored).
  static ConfigMap from_file(const std::string& path);
  static ConfigMap from_kv_text(const std::string& text);
  /// Flat JSON object of string/number/bool values.
  static ConfigMap from_json_text(const std::string& text);

  /// Adds or overrides one entry.
  void set(const std::string& key, const std::string& value);
  /// Parses one "key=value" token (--set plumbing). Throws on bad syntax.
  void set_kv(const std::string& kv);

  bool empty() const { return entries_.empty(); }
  bool has(const std::string& key) const;

  // Typed single-key getters; the key is marked consumed. Malformed values
  // throw deco::Error naming the key.
  int64_t get_int(const std::string& key, int64_t fallback);
  double get_double(const std::string& key, double fallback);
  bool get_bool(const std::string& key, bool fallback);
  std::string get_string(const std::string& key, const std::string& fallback);
  /// "fp32" | "fp16" | "int8"; bad values throw naming the key.
  DType get_dtype(const std::string& key, DType fallback);

  /// Applies every `deco.*` key. Unknown keys under the prefix throw.
  void apply(core::DecoConfig& cfg);
  /// Applies every `stream.*` key.
  void apply(data::StreamConfig& cfg);
  /// Applies every `runtime.*` key.
  void apply(RuntimeConfig& cfg);

  /// Throws deco::Error listing every never-consumed key.
  void check_fully_consumed() const;

 private:
  struct Entry {
    std::string key, value;
    bool consumed = false;
  };
  Entry* find(const std::string& key);
  // Typed conversions of one entry's value, error messages name entry.key.
  static int64_t to_int(const Entry& e);
  static double to_double(const Entry& e);
  static bool to_bool(const Entry& e);

  std::vector<Entry> entries_;
};

}  // namespace deco::runtime
