// Differentiable siamese augmentation (the mechanism behind the DSA baseline
// of Zhao & Bilen, ICML'21, compared against in Table II).
//
// DSA samples ONE augmentation per matching step and applies the *same*
// sampled transform to both the real batch and the synthetic batch; gradients
// must flow through the transform into the synthetic images. Every op here is
// linear in the pixel values given its sampled parameters, so the backward
// pass is the exact adjoint of the forward operator:
//   * flip / integer shift: index permutation → adjoint permutes back;
//   * scale / rotate: bilinear affine warp → adjoint scatters each output
//     gradient to its 4 source pixels with the same bilinear weights;
//   * brightness / saturation / contrast: affine recoloring → closed-form;
//   * cutout: mask → adjoint masks the gradient.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::augment {

enum class OpKind : int {
  kNone = 0,
  kFlip,
  kShift,
  kScale,
  kRotate,
  kBrightness,
  kSaturation,
  kContrast,
  kCutout,
};

/// Parameters of one sampled augmentation, shared siamese-style between the
/// real and synthetic batches of a matching step.
struct AugmentParams {
  OpKind kind = OpKind::kNone;
  bool flip = false;
  int64_t shift_x = 0, shift_y = 0;
  float scale = 1.0f;
  float rotate = 0.0f;  // radians
  float brightness = 0.0f;
  float saturation = 1.0f;
  float contrast = 1.0f;
  int64_t cutout_x = 0, cutout_y = 0, cutout_size = 0;
};

class SiameseAugment {
 public:
  /// `strategy` is an underscore-separated op list, e.g.
  /// "flip_shift_scale_rotate_color_cutout" ("color" expands to brightness,
  /// saturation and contrast). Empty string disables augmentation.
  explicit SiameseAugment(const std::string& strategy);

  /// Samples one op (uniform over the strategy set) with random parameters.
  AugmentParams sample(Rng& rng, int64_t height, int64_t width) const;

  /// Applies the op to an NCHW batch.
  Tensor forward(const Tensor& batch, const AugmentParams& p) const;

  /// Adjoint: maps dL/d(output) to dL/d(input) for the same params.
  Tensor backward(const Tensor& grad_output, const AugmentParams& p) const;

  bool enabled() const { return !ops_.empty(); }
  const std::vector<OpKind>& ops() const { return ops_; }

 private:
  std::vector<OpKind> ops_;
};

}  // namespace deco::augment
