// Cache-blocked, register-tiled GEMM shared by the matmul_* kernels.
//
// One strided entry point covers all three public variants (NN, Tᵀ·N, N·Bᵀ):
// the operands are described by row/column strides, the kernel packs them
// into contiguous aligned panels, and a fixed microkernel does the flops.
// See src/tensor/gemm.cpp for the blocking scheme and the determinism
// argument, and docs/EXTENDING.md for how to tune the block sizes.
#pragma once

#include <cstdint>

namespace deco::detail {

/// C (row-major, m×n, contiguous) = A·B, or C += A·B when `accumulate`.
///
/// A is m×k with A(i,kk) = a[i*a_rs + kk*a_cs];
/// B is k×n with B(kk,j) = b[kk*b_rs + j*b_cs].
/// `c` must not alias `a` or `b`. Results are bitwise identical for every
/// thread count (the accumulation order per output element is a pure
/// function of k and the KC block size).
void gemm_strided(int64_t m, int64_t n, int64_t k,
                  const float* a, int64_t a_rs, int64_t a_cs,
                  const float* b, int64_t b_rs, int64_t b_cs,
                  float* c, bool accumulate);

}  // namespace deco::detail
