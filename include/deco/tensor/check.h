// Error-checking macro used across the library.
//
// DECO_CHECK(cond, msg) throws deco::Error (derived from std::runtime_error)
// when `cond` is false. Checks guard API boundaries (shape agreement, config
// validity); they are cheap relative to the numeric kernels they protect and
// are therefore always enabled.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace deco {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "DECO_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace deco

#define DECO_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::deco::detail::throw_check_failure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)
