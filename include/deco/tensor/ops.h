// Free-function numeric kernels on Tensor.
//
// Kernels come in two flavors: value-returning convenience forms and
// `*_into` forms that write into a caller-provided output tensor (resizing it
// if needed) so hot loops can run allocation-free after the first iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "deco/tensor/tensor.h"

namespace deco {

// ---- GEMM -------------------------------------------------------------------
// All matrices are row-major 2-D tensors. Every variant runs the packed
// blocked kernel in tensor/gemm.h; `out` must not alias an input. The
// `*_acc_into` forms compute out += A·B into an already-shaped output —
// layer backward passes use them to fold gradients straight into the
// accumulator tensor with no temporary.

/// out = A[m,k] * B[k,n]
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul(const Tensor& a, const Tensor& b);
/// out += A[m,k] * B[k,n]; out must already be [m,n].
void matmul_acc_into(const Tensor& a, const Tensor& b, Tensor& out);

/// out = A[k,m]^T * B[k,n]  (i.e. out[m,n] = sum_k A[k,m]*B[k,n])
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// out += A[k,m]^T * B[k,n]; out must already be [m,n].
void matmul_tn_acc_into(const Tensor& a, const Tensor& b, Tensor& out);

/// out = A[m,k] * B[n,k]^T  (i.e. out[m,n] = sum_k A[m,k]*B[n,k])
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out);
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// out += A[m,k] * B[n,k]^T; out must already be [m,n].
void matmul_nt_acc_into(const Tensor& a, const Tensor& b, Tensor& out);

/// out[c, r] = in[r, c]
void transpose2d_into(const Tensor& in, Tensor& out);
Tensor transpose2d(const Tensor& in);

// ---- im2col / col2im ---------------------------------------------------------
// Images are NCHW. A kernel of size kh x kw with stride/padding maps image
// (C, H, W) to a column matrix [C*kh*kw, OH*OW] per sample; the batched forms
// below stack samples along the column axis: [C*kh*kw, N*OH*OW].

struct Conv2dGeometry {
  int64_t in_channels = 0;
  int64_t in_h = 0;
  int64_t in_w = 0;
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t padding = 0;

  int64_t out_h() const { return (in_h + 2 * padding - kernel_h) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * padding - kernel_w) / stride + 1; }
  int64_t col_rows() const { return in_channels * kernel_h * kernel_w; }
};

/// Expands NCHW `input` [N,C,H,W] to columns [C*kh*kw, N*OH*OW].
void im2col_into(const Tensor& input, const Conv2dGeometry& g, Tensor& cols);
/// Accumulates columns back into an NCHW gradient image (the adjoint of
/// im2col). `grad_input` must already have shape [N,C,H,W]; it is zeroed.
void col2im_into(const Tensor& cols, const Conv2dGeometry& g, Tensor& grad_input);

// ---- row-wise softmax family --------------------------------------------------

/// Numerically stable softmax along the last dimension of a 2-D tensor.
void softmax_rows_into(const Tensor& logits, Tensor& probs);
Tensor softmax_rows(const Tensor& logits);

/// log(softmax) along rows; stable.
void log_softmax_rows_into(const Tensor& logits, Tensor& out);

/// Per-row argmax of a 2-D tensor.
std::vector<int64_t> argmax_rows(const Tensor& t);

/// Per-row maximum value of a 2-D tensor.
std::vector<float> max_rows(const Tensor& t);

// ---- misc ---------------------------------------------------------------------

/// Cosine similarity of flattened tensors; returns 0 when either norm is ~0.
float cosine_similarity(const Tensor& a, const Tensor& b);

/// out = a - b (shapes must match).
void sub_into(const Tensor& a, const Tensor& b, Tensor& out);

/// Copies `src` into `dst`, resizing `dst` to match.
void copy_into(const Tensor& src, Tensor& dst);

/// Extracts row `r` of a 2-D tensor as a 1-D tensor.
Tensor row(const Tensor& t, int64_t r);

/// Stacks equal-shaped tensors along a new leading axis.
Tensor stack(const std::vector<Tensor>& items);

/// Selects rows (leading-axis slices) of `t` by index into a new tensor.
Tensor take(const Tensor& t, const std::vector<int64_t>& indices);

}  // namespace deco
