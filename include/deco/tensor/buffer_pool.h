// Pooled storage for Tensor data buffers.
//
// Tensors churn constantly in the training loop — layer outputs, gathered
// batches, gradient clones — and with plain std::vector storage every one of
// those is a malloc + free. `FloatStore` keeps Tensor's value semantics but
// recycles the backing buffers through a process-wide, size-bucketed pool:
// after the first few iterations warm the pool, steady-state training serves
// every tensor from recycled memory and `core::memstats().tensor_heap_allocs`
// stays flat (bench/perf_smoke.cpp asserts this over a learner run).
//
// The pool is global and mutex-protected rather than thread-local on
// purpose: condensation allocates tensors on pool workers and frees them on
// the caller, and per-thread caches would leak a steady stream of
// cross-thread misses. Acquire/release are a bucket push/pop under the lock;
// the zero-fill / copy happens outside it.
#pragma once

#include <cstdint>

namespace deco::detail {

/// Heap buffer of floats with value semantics, recycled through the pool.
/// Capacity is the bucket size (power of two), `size()` the logical length.
class FloatStore {
 public:
  FloatStore() = default;
  /// Zero-filled store of `n` floats.
  explicit FloatStore(int64_t n);
  FloatStore(const FloatStore& other);
  FloatStore& operator=(const FloatStore& other);
  FloatStore(FloatStore&& other) noexcept;
  FloatStore& operator=(FloatStore&& other) noexcept;
  ~FloatStore();

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Resizes to `n` floats, zero-filling the contents (existing values are
  /// NOT preserved). Reuses the current buffer when its bucket suffices.
  void assign_zero(int64_t n);

 private:
  // Sets ptr_/cap_ for >= n floats, size_ = n; zero-fills when `zero`.
  void acquire(int64_t n, bool zero);
  void release();  // returns ptr_ to the pool

  float* ptr_ = nullptr;
  int64_t size_ = 0;
  int64_t cap_ = 0;
};

/// Frees every buffer cached in the pool (tests / memory-pressure hook).
void trim_tensor_pool();

/// Bytes currently cached in the pool (idle buffers, not live tensors).
int64_t tensor_pool_cached_bytes();

/// The pool's byte cap (DECO_TENSOR_POOL_MB, default 512 MiB). The
/// multi-session runtime treats this as the device memory budget and
/// partitions it across sessions at admission time.
int64_t tensor_pool_cap_bytes();

}  // namespace deco::detail
