// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (weight init, stream generation,
// model randomization inside the condensation loop, augmentation sampling)
// draw from an explicitly seeded Rng instance so that every experiment is
// reproducible from a single seed. The generator is xoshiro256**, which is
// fast, has a 256-bit state and passes BigCrush; we avoid std::mt19937 to keep
// cross-platform bit-exactness trivial to reason about.
#pragma once

#include <cstdint>
#include <vector>

namespace deco {

class Tensor;

/// Complete serializable generator state (xoshiro words + the Box–Muller
/// cache). Lets crash-safe checkpoints resume random streams bit-exactly.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

class Rng {
 public:
  /// Seeds the state via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  int64_t uniform_int(int64_t n);
  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Fills `t` with i.i.d. N(mean, stddev) samples.
  void fill_normal(Tensor& t, double mean, double stddev);
  /// Fills `t` with i.i.d. U[lo, hi) samples.
  void fill_uniform(Tensor& t, double lo, double hi);

  /// In-place Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& v);

  /// Returns k distinct indices sampled uniformly from [0, n).
  std::vector<int64_t> sample_without_replacement(int64_t n, int64_t k);

  /// Derives an independent child generator (for per-component streams).
  Rng split();

  /// Captures / restores the full generator state (for crash-safe resume).
  RngState state() const;
  void set_state(const RngState& st);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace deco
