// Binary tensor serialization and PPM image export.
//
// On-device deployments need to persist two things across power cycles: the
// model parameters and the condensed buffer (which *is* the distilled
// knowledge). The format is a deliberately simple little-endian container:
//
//   v2: magic "DECOTNSR" | u32 version=2 | u32 ndim | i64 dims[ndim]
//       | f32 data[] | u32 crc32
//   v3: magic "DECOTNSR" | u32 version=3 | u8 dtype | u8 reserved=0
//       | u16 block | u32 ndim | i64 dims[ndim] | payload[] | u32 crc32
//
// v3 carries a storage dtype tag (deco/tensor/dtype.h): fp32 payloads are
// raw f32 (bit-exact round-trip with the source tensor), fp16 payloads are
// binary16, int8 payloads are block-quantized (per-block f16 scale +
// zero-point; `block` is the block length in elements, 0 for non-quantized
// dtypes). The CRC32 trailer (IEEE polynomial, over everything between the
// magic and the trailer) detects the torn/bit-rotted files a
// power-loss-prone device produces — in v3 it covers the *encoded* payload,
// so corruption is caught before any dequantization. v1 (no trailer) and v2
// files remain readable forever; the 2-argument write_tensor still emits v2
// byte-identically so existing fp32 files and golden fixtures are stable.
// File-path saves are atomic: data is written to `<path>.tmp` and renamed
// over the target, so a crash mid-save never destroys the previous state.
//
// PPM export renders CHW float images (clamped to [0,1]) as 8-bit P6 files —
// the standard way condensation papers visualize synthetic images.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "deco/tensor/dtype.h"
#include "deco/tensor/tensor.h"

namespace deco {

/// IEEE CRC32 (the zlib/PNG polynomial) of `n` bytes, continuing from `seed`
/// (pass the previous return value to checksum data in chunks; 0 to start).
uint32_t crc32(const void* data, size_t n, uint32_t seed = 0);

/// Writes `bytes` to `path` atomically: the payload goes to `<path>.tmp`
/// first and is renamed over `path` only after a successful flush, so readers
/// never observe a torn file. Throws deco::Error on I/O failure.
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Writes one fp32 tensor to a binary stream (format v2, CRC32-trailed).
/// Kept byte-identical to the pre-dtype writer so legacy fixtures and
/// default-policy state files never change. Throws deco::Error on failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Writes one tensor at storage dtype `dtype` (format v3, CRC32-trailed).
/// kF32 stores the exact bits (read_tensor round-trips bit-exactly); kF16 /
/// kQ8 quantize through the scalar reference codec in dtype.h. `block` is
/// the kQ8 block length (ignored for other dtypes).
void write_tensor(std::ostream& os, const Tensor& t, DType dtype,
                  int64_t block = kDefaultQuantBlock);

/// Writes an already-encoded quantized tensor (format v3) without
/// re-encoding — the stored bytes go to the stream verbatim, which is what
/// makes save -> load -> save byte-identical for quantized caches even
/// though quantization itself is not idempotent.
void write_qtensor(std::ostream& os, const QTensor& q);

/// Reads one tensor written by any write_tensor — v3 (dtype-aware, payload
/// dequantized to fp32), v2 (CRC-verified) or legacy v1. Throws deco::Error
/// on malformed, truncated, oversized or corrupted input, before any
/// allocation for implausible headers.
Tensor read_tensor(std::istream& is);

/// Reads one tensor record into its *stored* form without dequantizing:
/// v3 records keep their encoded payload byte-for-byte; v1/v2 records come
/// back as fp32 QTensors wrapping the raw data. Same validation and CRC
/// discipline as read_tensor.
QTensor read_qtensor(std::istream& is);

/// Convenience file-path wrappers. save_tensor is atomic (see above).
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

/// Shape/version/dtype metadata of one serialized tensor, read without
/// touching its payload (checkpoint-inspection tooling).
struct TensorInfo {
  uint32_t version = 0;            ///< container version (1, 2 or 3)
  DType dtype = DType::kF32;       ///< storage dtype (always kF32 for v1/v2)
  int64_t block = 0;               ///< kQ8 block length; 0 otherwise
  std::vector<int64_t> shape;
  int64_t numel = 0;
  int64_t payload_bytes = 0;       ///< stored (possibly compressed) payload
                                   ///< bytes, CRC trailer excluded
};

/// Reads one tensor HEADER from the stream and seeks past the payload (and
/// v2/v3 CRC trailer) without loading or checksumming the data, leaving the
/// stream at the next record. Throws deco::Error on malformed headers or a
/// stream too short to contain the declared payload.
TensorInfo skip_tensor(std::istream& is);

/// Writes a [3, H, W] (or [1, H, W]) float image in [0, 1] as binary PPM/PGM.
void write_ppm(const std::string& path, const Tensor& image_chw);

}  // namespace deco
