// Binary tensor serialization and PPM image export.
//
// On-device deployments need to persist two things across power cycles: the
// model parameters and the condensed buffer (which *is* the distilled
// knowledge). The format is a deliberately simple little-endian container:
//
//   magic "DECOTNSR" | u32 version | u32 ndim | i64 dims[ndim] | f32 data[]
//
// PPM export renders CHW float images (clamped to [0,1]) as 8-bit P6 files —
// the standard way condensation papers visualize synthetic images.
#pragma once

#include <iosfwd>
#include <string>

#include "deco/tensor/tensor.h"

namespace deco {

/// Writes one tensor to a binary stream. Throws deco::Error on I/O failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads one tensor written by write_tensor. Throws on malformed input.
Tensor read_tensor(std::istream& is);

/// Convenience file-path wrappers.
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

/// Writes a [3, H, W] (or [1, H, W]) float image in [0, 1] as binary PPM/PGM.
void write_ppm(const std::string& path, const Tensor& image_chw);

}  // namespace deco
