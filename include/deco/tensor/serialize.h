// Binary tensor serialization and PPM image export.
//
// On-device deployments need to persist two things across power cycles: the
// model parameters and the condensed buffer (which *is* the distilled
// knowledge). The format is a deliberately simple little-endian container:
//
//   v2: magic "DECOTNSR" | u32 version=2 | u32 ndim | i64 dims[ndim]
//       | f32 data[] | u32 crc32
//
// The CRC32 trailer (IEEE polynomial, over everything between the magic and
// the trailer) detects the torn/bit-rotted files a power-loss-prone device
// produces. v1 files (no trailer) remain readable; writers always emit v2.
// File-path saves are atomic: data is written to `<path>.tmp` and renamed
// over the target, so a crash mid-save never destroys the previous state.
//
// PPM export renders CHW float images (clamped to [0,1]) as 8-bit P6 files —
// the standard way condensation papers visualize synthetic images.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "deco/tensor/tensor.h"

namespace deco {

/// IEEE CRC32 (the zlib/PNG polynomial) of `n` bytes, continuing from `seed`
/// (pass the previous return value to checksum data in chunks; 0 to start).
uint32_t crc32(const void* data, size_t n, uint32_t seed = 0);

/// Writes `bytes` to `path` atomically: the payload goes to `<path>.tmp`
/// first and is renamed over `path` only after a successful flush, so readers
/// never observe a torn file. Throws deco::Error on I/O failure.
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Writes one tensor to a binary stream (format v2, CRC32-trailed). Throws
/// deco::Error on I/O failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads one tensor written by write_tensor — v2 (with CRC verification) or
/// legacy v1. Throws deco::Error on malformed, truncated, oversized or
/// corrupted input, before any allocation for implausible headers.
Tensor read_tensor(std::istream& is);

/// Convenience file-path wrappers. save_tensor is atomic (see above).
void save_tensor(const std::string& path, const Tensor& t);
Tensor load_tensor(const std::string& path);

/// Shape/version metadata of one serialized tensor, read without touching
/// its payload (checkpoint-inspection tooling).
struct TensorInfo {
  uint32_t version = 0;            ///< container version (1 or 2)
  std::vector<int64_t> shape;
  int64_t numel = 0;
  int64_t payload_bytes = 0;       ///< f32 data bytes (CRC trailer excluded)
};

/// Reads one tensor HEADER from the stream and seeks past the payload (and
/// v2 CRC trailer) without loading or checksumming the data, leaving the
/// stream at the next record. Throws deco::Error on malformed headers or a
/// stream too short to contain the declared payload.
TensorInfo skip_tensor(std::istream& is);

/// Writes a [3, H, W] (or [1, H, W]) float image in [0, 1] as binary PPM/PGM.
void write_ppm(const std::string& path, const Tensor& image_chw);

}  // namespace deco
