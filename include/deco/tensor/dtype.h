// Storage dtypes and quantization codecs for tensor containers and caches.
//
// The paper's whole point is memory-efficient on-device learning, so the
// bytes a condensed cache or checkpoint actually *stores* matter as much as
// the algorithm. This header defines the storage dtypes the v3 DECOTNSR
// container and the in-memory caches understand:
//
//   * fp32 — raw IEEE-754 single precision (the identity codec).
//   * fp16 — IEEE-754 binary16, scalar round-to-nearest-even conversion.
//            2.0x smaller; NaN/Inf preserved, f32 denormals flush to zero.
//   * int8 — ggml-style block quantization: each block of `block` elements
//            stores an f16 scale, an f16 zero-point and one u8 code per
//            element (block 32 -> 36 bytes per 128 logical bytes, 3.56x).
//
// Codec contract (docs/EXTENDING.md section 10):
//   * Bitwise-deterministic scalar reference: encode/decode are serial
//     element loops with no data-dependent reassociation, so encoded bytes
//     (and decoded floats) are identical at any DECO_NUM_THREADS and across
//     runs. Vectorized codecs, when they land, must match these bytes.
//   * decode never fabricates NaN/Inf: int8 scale/zero-point are clamped to
//     the finite f16 range before rounding, and non-finite inputs saturate
//     deterministically (NaN -> the block zero-point, +/-Inf -> the block
//     max/min code). fp16 propagates NaN/Inf exactly.
//   * fp32 is the identity: encode/decode round-trip bit-exactly, which is
//     what keeps default-policy caches and v3-fp32 files byte-identical to
//     their fp32 sources.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/tensor/tensor.h"

namespace deco {

/// Storage dtype of a serialized tensor payload or an in-memory cache.
/// The numeric values are the on-disk v3 dtype tags — never reorder.
enum class DType : uint8_t {
  kF32 = 0,  ///< raw f32 (identity codec)
  kF16 = 1,  ///< IEEE binary16, round-to-nearest-even
  kQ8 = 2,   ///< int8 block quantization (per-block f16 scale + zero-point)
};

/// Default int8 quantization block length, in elements (ggml's Q8 block).
constexpr int64_t kDefaultQuantBlock = 32;

/// "fp32" | "fp16" | "int8" — the config-file spelling.
std::string dtype_name(DType d);
/// Parses dtype_name output; throws deco::Error naming the bad value.
DType dtype_from_name(const std::string& name);
/// True when `tag` is a known on-disk dtype tag.
bool dtype_tag_valid(uint8_t tag);

/// Scalar f32 <-> IEEE binary16 conversion (round-to-nearest-even; f32
/// denormals flush to +/-0, overflow saturates to +/-Inf, NaN stays NaN).
uint16_t f32_to_f16(float v);
float f16_to_f32(uint16_t h);

/// Stored payload bytes for `numel` elements at dtype `d`. `block` only
/// matters for kQ8 (4 bytes of f16 scale/zero-point per started block).
int64_t dtype_stored_bytes(DType d, int64_t numel, int64_t block);

/// Encodes `n` floats into `dst` (which must hold dtype_stored_bytes(...)).
void dtype_encode(DType d, const float* src, int64_t n, uint8_t* dst,
                  int64_t block);
/// Decodes `n` elements from `src` into `dst`.
void dtype_decode(DType d, const uint8_t* src, int64_t n, float* dst,
                  int64_t block);

/// Quantized in-memory tensor: the canonical stored form of a quantized
/// cache. Holds the encoded bytes plus enough metadata to decode; the fp32
/// working copies the learners compute on are decoded FROM this, so
/// "resident fp32 view == decode(stored bytes)" is the storage invariant
/// (save/load round-trips are then byte-identical on the stored form even
/// though quantization itself is lossy).
class QTensor {
 public:
  QTensor() = default;

  /// Encodes `t` at dtype `d`. fp32 is the identity (bit-exact payload).
  static QTensor encode(const Tensor& t, DType d,
                        int64_t block = kDefaultQuantBlock);
  /// Wraps already-encoded bytes (deserialization path). Throws on a size
  /// mismatch between `bytes` and the declared geometry.
  static QTensor from_bytes(DType d, int64_t block, std::vector<int64_t> shape,
                            std::vector<uint8_t> bytes);

  /// Decodes into a fresh tensor of the original shape.
  Tensor decode() const;
  /// Decodes into `dst` (numel() floats), no allocation.
  void decode_into(float* dst) const;
  /// Re-encodes `t` (same shape) into the existing byte storage in place.
  void reencode(const Tensor& t);

  bool valid() const { return numel_ >= 0 && !shape_.empty(); }
  DType dtype() const { return dtype_; }
  int64_t block() const { return block_; }
  int64_t numel() const { return numel_; }
  const std::vector<int64_t>& shape() const { return shape_; }
  /// Bytes actually held (the post-quantization stored figure).
  int64_t stored_bytes() const { return static_cast<int64_t>(bytes_.size()); }
  /// Bytes the same tensor would occupy as raw f32.
  int64_t logical_bytes() const {
    return numel_ * static_cast<int64_t>(sizeof(float));
  }
  const uint8_t* data() const { return bytes_.data(); }

 private:
  DType dtype_ = DType::kF32;
  int64_t block_ = kDefaultQuantBlock;
  int64_t numel_ = -1;
  std::vector<int64_t> shape_;
  std::vector<uint8_t> bytes_;
};

/// The single storage-policy surface promoted through runtime::ConfigMap:
/// which dtype the condensed/replay cache is stored at (deco.cache_dtype),
/// which dtype checkpoints and save_state model parameters use
/// (deco.checkpoint_dtype / runtime.checkpoint_dtype), and the int8 block
/// length (deco.quant_block). validate() is the one range authority.
struct StoragePolicy {
  DType cache_dtype = DType::kF32;
  DType checkpoint_dtype = DType::kF32;
  int64_t block = kDefaultQuantBlock;

  /// Throws deco::Error on an out-of-range block (must be in [4, 1024]).
  void validate() const;
};

}  // namespace deco
