// Dense float tensor with value semantics.
//
// This is the storage substrate for the whole library. Design goals, in order:
//   1. Correctness and debuggability: every shape mismatch throws with a
//      readable message (see DECO_CHECK in check.h).
//   2. Predictable performance on a single CPU core: contiguous row-major
//      storage, no views/strides, no hidden allocation in hot loops (callers
//      reuse output tensors via the *_into variants in ops.h).
//   3. Small API surface: only what the NN / condensation layers need.
//
// Tensors are deep-copied on copy construction/assignment and cheaply moved.
// Rank is arbitrary but the library only uses ranks 1, 2 and 4 (NCHW).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "deco/tensor/buffer_pool.h"

namespace deco {

class Tensor {
 public:
  /// Empty tensor (numel() == 0, ndim() == 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape);

  /// Tensor of the given shape holding a copy of `values` (size must match).
  Tensor(std::vector<int64_t> shape, const std::vector<float>& values);

  // ---- factories -----------------------------------------------------------
  static Tensor zeros(std::vector<int64_t> shape);
  static Tensor full(std::vector<int64_t> shape, float value);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(int64_t n);

  // ---- shape ---------------------------------------------------------------
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Returns a tensor sharing no storage with this one but holding the same
  /// values under a new shape. numel must be preserved.
  Tensor reshaped(std::vector<int64_t> shape) const;
  /// In-place metadata-only reshape. numel must be preserved.
  void reshape(std::vector<int64_t> shape);

  // ---- element access ------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_.data()[i]; }
  float operator[](int64_t i) const { return data_.data()[i]; }

  /// 2-D indexed access (row-major). Bounds-checked in debug builds only.
  float& at2(int64_t r, int64_t c);
  float at2(int64_t r, int64_t c) const;
  /// 4-D (NCHW) indexed access.
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // ---- in-place arithmetic -------------------------------------------------
  Tensor& fill(float value);
  Tensor& zero() { return fill(0.0f); }
  Tensor& add_(const Tensor& other);              ///< this += other
  Tensor& sub_(const Tensor& other);              ///< this -= other
  Tensor& mul_(const Tensor& other);              ///< this *= other (elementwise)
  Tensor& add_scaled_(const Tensor& other, float alpha);  ///< this += alpha*other
  Tensor& scale_(float alpha);                    ///< this *= alpha
  Tensor& add_scalar_(float alpha);               ///< this += alpha
  Tensor& clamp_(float lo, float hi);

  // ---- out-of-place arithmetic --------------------------------------------
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(float alpha) const;

  // ---- reductions ----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Euclidean norm of the flattened tensor.
  float norm() const;
  /// Squared Euclidean norm.
  float squared_norm() const;
  /// Index of the maximum element in the flattened tensor.
  int64_t argmax() const;

  /// Sum of |a_i - b_i| — useful in tests.
  float l1_distance(const Tensor& other) const;

  std::string shape_str() const;

 private:
  std::vector<int64_t> shape_;
  detail::FloatStore data_;
};

/// Flat dot product of two same-numel tensors.
float dot(const Tensor& a, const Tensor& b);

}  // namespace deco
