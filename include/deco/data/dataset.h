// In-memory labeled image dataset.
//
// Stores CHW images plus integer labels and optional provenance metadata
// (instance / environment ids) used by the stream simulator and by tests.
#pragma once

#include <cstdint>
#include <vector>

#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::data {

class Dataset {
 public:
  Dataset(int64_t channels, int64_t height, int64_t width)
      : channels_(channels), height_(height), width_(width) {}

  /// Appends one CHW image with its label (and optional provenance).
  void add(Tensor image, int64_t label, int64_t instance_id = -1,
           int64_t environment = -1);

  int64_t size() const { return static_cast<int64_t>(labels_.size()); }
  int64_t channels() const { return channels_; }
  int64_t height() const { return height_; }
  int64_t width() const { return width_; }

  const Tensor& image(int64_t i) const { return images_[static_cast<size_t>(i)]; }
  int64_t label(int64_t i) const { return labels_[static_cast<size_t>(i)]; }
  int64_t instance_id(int64_t i) const { return instance_ids_[static_cast<size_t>(i)]; }
  int64_t environment(int64_t i) const { return environments_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& labels() const { return labels_; }

  /// Gathers the selected images into one [k, C, H, W] batch tensor.
  Tensor batch(const std::vector<int64_t>& indices) const;
  /// Labels for the same selection.
  std::vector<int64_t> batch_labels(const std::vector<int64_t>& indices) const;

  /// All indices whose label equals `cls`.
  std::vector<int64_t> indices_of_class(int64_t cls) const;

  /// Uniformly samples `k` indices without replacement.
  std::vector<int64_t> sample_indices(int64_t k, Rng& rng) const;

 private:
  int64_t channels_, height_, width_;
  std::vector<Tensor> images_;
  std::vector<int64_t> labels_;
  std::vector<int64_t> instance_ids_;
  std::vector<int64_t> environments_;
};

}  // namespace deco::data
