// Non-i.i.d. temporal data stream simulator.
//
// Reproduces the streaming-learning protocol of the paper: data arrives in
// segments, each sample is seen once, and class identity is temporally
// correlated. The Strength of Temporal Correlation (STC) metric of Hayes et
// al. — the expected number of consecutive same-class samples before a class
// transition — is the controlling parameter (paper: STC 500 for CIFAR-100,
// 100 for ImageNet-10; iCub1/CORe50 streams are contiguous videos of one
// object instance, which we model as runs over a single instance).
#pragma once

#include <cstdint>
#include <vector>

#include "deco/data/world.h"
#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::data {

struct StreamConfig {
  int64_t stc = 100;           ///< samples per same-class run
  int64_t segment_size = 32;   ///< samples handed to the learner at once
  int64_t total_segments = 60; ///< stream length
  /// Video mode (iCub/CORe50): a run stays on one object instance in one
  /// environment with consecutive frame indices. Non-video mode (CIFAR /
  /// ImageNet proxies): samples within a run are drawn from random instances
  /// of the class (i.i.d. within class).
  bool video_mode = true;

  /// Throws deco::Error when any field is out of range (called by the
  /// TemporalStream constructor).
  void validate() const;
};

/// One segment I_t of the stream. Ground-truth labels ride along for
/// evaluation (pseudo-label accuracy, oracle baselines); the on-device
/// learner must not read them.
struct Segment {
  Tensor images;                     // [S, C, H, W]
  std::vector<int64_t> true_labels;  // [S]
};

class TemporalStream {
 public:
  TemporalStream(const ProceduralImageWorld& world, StreamConfig config,
                 uint64_t seed);

  /// Produces the next segment; returns false when the stream is exhausted.
  bool next(Segment& out);

  /// Segments produced so far.
  int64_t segments_emitted() const { return segments_emitted_; }
  /// Samples produced so far.
  int64_t samples_emitted() const { return samples_emitted_; }
  const StreamConfig& config() const { return config_; }

  /// Measures the empirical STC of an emitted label sequence (mean run
  /// length). Exposed for tests and for reporting.
  static double empirical_stc(const std::vector<int64_t>& labels);

 private:
  void begin_run();

  const ProceduralImageWorld& world_;
  StreamConfig config_;
  Rng rng_;
  int64_t segments_emitted_ = 0;
  int64_t samples_emitted_ = 0;

  // Current run state.
  int64_t run_class_ = -1;
  int64_t run_instance_ = 0;
  int64_t run_environment_ = 0;
  int64_t run_remaining_ = 0;
  int64_t run_frame_ = 0;
};

}  // namespace deco::data
