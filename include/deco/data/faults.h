// Sensor/pipeline fault injection for robustness experiments.
//
// A field deployment never sees the paper's clean segment-in/segment-out
// protocol: cameras develop dead and hot pixels, exposure control glitches,
// frames are dropped or duplicated by the capture pipeline, transfers get
// truncated, and upstream ISP bugs can hand the learner NaN/Inf pixels.
// FaultyStream decorates a TemporalStream with seeded, rate-controlled
// injections of all of these so the robustness of the learning stack (see
// deco/core/guard.h) can be measured — bench/fault_tolerance.cpp sweeps the
// rates and reports accuracy degradation with guards on vs. off.
//
// Faults are drawn from the decorator's own Rng: enabling/disabling injection
// never perturbs the underlying stream's random sequence, so faulted and
// clean runs stay paired sample-for-sample.
#pragma once

#include <cstdint>

#include "deco/data/stream.h"
#include "deco/tensor/rng.h"

namespace deco::data {

/// Per-fault injection rates. Pixel-level rates are per pixel; frame-level
/// rates are per frame; truncation is per segment. All rates are
/// probabilities in [0, 1]; the default config injects nothing.
struct FaultConfig {
  double dead_pixel_rate = 0.0;       ///< pixel sticks at 0
  double hot_pixel_rate = 0.0;        ///< pixel sticks at 1
  double salt_pepper_rate = 0.0;      ///< pixel flips to 0 or 1 at random
  double overexpose_rate = 0.0;       ///< frame gain glitch toward white
  double underexpose_rate = 0.0;      ///< frame gain glitch toward black
  double drop_frame_rate = 0.0;       ///< frame removed from the segment
  double duplicate_frame_rate = 0.0;  ///< frame replaced by its predecessor
  double truncate_rate = 0.0;         ///< segment cut to a random prefix
  double nan_burst_rate = 0.0;        ///< contiguous NaN pixel run per frame
  double inf_burst_rate = 0.0;        ///< contiguous ±Inf pixel run per frame
  int64_t burst_size = 16;            ///< pixels per NaN/Inf burst

  /// True when any rate is positive (i.e. injection would do something).
  bool any() const;
  /// Throws deco::Error unless every rate is in [0, 1] and burst_size >= 1.
  void validate() const;
};

/// Counters of everything a FaultyStream injected so far. Structural counts
/// (drops, truncations) are what actually happened, not what was rolled —
/// e.g. a drop that would empty a segment is suppressed and not counted.
struct FaultLog {
  int64_t dead_pixels = 0;
  int64_t hot_pixels = 0;
  int64_t salt_pepper_pixels = 0;
  int64_t frames_overexposed = 0;
  int64_t frames_underexposed = 0;
  int64_t frames_dropped = 0;
  int64_t frames_duplicated = 0;
  int64_t segments_truncated = 0;
  int64_t nan_bursts = 0;
  int64_t inf_bursts = 0;
  int64_t segments_emitted = 0;  ///< segments that passed through
  int64_t frames_emitted = 0;    ///< frames that survived drops/truncation

  /// Sum of all injection counters (not the emitted totals).
  int64_t total_faults() const;
};

/// Decorator over TemporalStream injecting FaultConfig's failure modes.
/// Mirrors the stream's next(Segment&) interface; true labels are kept
/// aligned with the (possibly restructured) frames so evaluation code keeps
/// working. A segment always retains at least one frame.
class FaultyStream {
 public:
  /// `inner` is borrowed and must outlive the decorator.
  FaultyStream(TemporalStream& inner, FaultConfig config, uint64_t seed);

  /// Pulls the next segment from the inner stream and corrupts it in place.
  bool next(Segment& out);

  const FaultLog& log() const { return log_; }
  const FaultConfig& config() const { return config_; }
  TemporalStream& inner() { return inner_; }

 private:
  void corrupt_segment(Segment& seg);

  TemporalStream& inner_;
  FaultConfig config_;
  Rng rng_;
  FaultLog log_;
};

}  // namespace deco::data
