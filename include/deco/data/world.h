// Procedural image worlds.
//
// The paper evaluates on four image datasets (iCub World 1.0, CORe50,
// CIFAR-100, ImageNet-10) that we cannot ship. The algorithms under test
// consume *streams of class-labeled images with temporal correlation*; they
// are agnostic to photographic content. ProceduralImageWorld therefore
// generates class-structured scenes whose statistics reproduce exactly the
// properties the paper's evaluation manipulates:
//
//   * a fixed set of classes, each with a distinctive parametric appearance
//     (shape family, colors, texture) rendered by signed-distance functions;
//   * *similarity groups*: classes within a group share a shape family and
//     differ only in secondary parameters — this reproduces the confusable
//     classes of the paper's Fig. 2 (cat/dog, deer/horse, ...);
//   * per-class object *instances* (iCub/CORe50 film several physical objects
//     per category) with instance-specific pose and color variation;
//   * *environments* (CORe50's 11 recording sessions) with distinct
//     backgrounds and lighting;
//   * *frames*: smooth temporal pose drift plus per-frame sensor noise, so
//     consecutive frames of one instance look like consecutive video frames.
//
// Rendering is a pure function of (class, instance, environment, frame, seed),
// so every experiment is reproducible and streams can be generated lazily.
#pragma once

#include <cstdint>
#include <string>

#include "deco/data/dataset.h"
#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::data {

struct DatasetSpec {
  std::string name;
  int64_t num_classes = 10;
  int64_t channels = 3;
  int64_t height = 16;
  int64_t width = 16;
  int64_t instances_per_class = 4;  ///< distinct physical objects per class
  int64_t environments = 1;         ///< recording sessions (CORe50: 11)
  /// Classes are partitioned into similarity groups of this size; classes in
  /// one group share a shape family (Fig. 2's confusable classes).
  int64_t similarity_group = 2;
  /// 0 = groups are as distinct as unrelated classes; 1 = within-group classes
  /// are nearly identical. Controls pseudo-label confusion structure.
  float within_group_similarity = 0.75f;
  /// Per-pixel Gaussian sensor noise.
  float noise_sigma = 0.06f;
};

/// Emulation presets for the paper's four evaluation datasets plus the
/// CIFAR-10 proxy used by Fig. 2. Resolutions are scaled for single-core CPU
/// (documented in DESIGN.md); all structural parameters follow the originals.
DatasetSpec icub1_spec();         ///< 10 household-object classes, video stream
DatasetSpec core50_spec();        ///< 10 classes × 11 environments, video stream
DatasetSpec cifar100_spec();      ///< many-class regime (20-class proxy)
DatasetSpec imagenet10_spec();    ///< 10 classes at higher resolution (32×32)
DatasetSpec cifar10_spec();       ///< 10 classes with strong confusion groups

class ProceduralImageWorld {
 public:
  ProceduralImageWorld(DatasetSpec spec, uint64_t seed);

  const DatasetSpec& spec() const { return spec_; }

  /// Renders one CHW frame. Frames with consecutive `frame` indices of the
  /// same (cls, instance, environment) differ by smooth pose drift + noise.
  Tensor render(int64_t cls, int64_t instance, int64_t environment,
                int64_t frame) const;

  /// A small labeled set for pre-training (the paper pre-trains on 1–10%
  /// labeled data before deployment). Draws `frames_per_class` frames spread
  /// over instances/environments.
  Dataset make_labeled_set(int64_t frames_per_class, uint64_t seed) const;

  /// Held-out evaluation set; uses frame indices disjoint from streams
  /// (streams use frames >= 0; the test set uses a reserved negative range).
  Dataset make_test_set(int64_t frames_per_class, uint64_t seed) const;

 private:
  struct ClassStyle {
    int64_t shape_family;   // which SDF renderer
    float fg_color[3];      // primary object color
    float fg2_color[3];     // secondary color / texture tint
    float size;             // base scale in [-1,1] coords
    float aspect;           // x/y stretch
    float texture_freq;     // stripes/checker frequency
    float base_rotation;
    float edge_softness;
  };
  struct InstanceStyle {
    float scale_jitter;
    float rotation_offset;
    float color_shift[3];
    float center_x, center_y;
  };
  struct EnvironmentStyle {
    float bg_color[3];
    float bg_grad[3];      // gradient delta across the image
    float brightness;
    float grad_dir;        // radians
  };

  ClassStyle class_style(int64_t cls) const;
  InstanceStyle instance_style(int64_t cls, int64_t instance) const;
  EnvironmentStyle environment_style(int64_t environment) const;

  DatasetSpec spec_;
  uint64_t seed_;
};

}  // namespace deco::data
