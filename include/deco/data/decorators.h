// Composable stream decorators for the scenario catalog.
//
// TemporalStream (and its FaultyStream wrapper) model one fixed deployment
// condition. Real fleets see more: classes that appear for the first time
// mid-deployment (class-incremental arrival), sensors whose appearance
// distribution shifts abruptly or creeps over weeks (domain drift), and
// annotation pipelines that mislabel a fraction of the ground truth (label
// noise). Each condition is a decorator with the same pull interface as the
// streams it wraps, so decorators stack in any order over any source:
//
//   TemporalStream -> FaultyStream -> DriftStream -> LabelNoiseStream -> ...
//
// Determinism contract (the scenario harness depends on it): every decorator
// draws exclusively from its own seeded Rng and transforms segments as a pure
// function of (inner segment bytes, decorator seed, segment index). Same seed
// therefore means memcmp-identical output bytes; enabling a decorator never
// perturbs the inner stream's random sequence, so decorated and clean runs
// stay paired sample-for-sample (the same common-random-numbers discipline
// FaultyStream established). tests/scenario_test.cpp audits both properties.
#pragma once

#include <cstdint>
#include <memory>

#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/tensor/rng.h"

namespace deco::data {

/// Minimal pull interface shared by streams and decorators: produce the next
/// segment, return false when exhausted. TemporalStream/FaultyStream predate
/// this interface and keep their concrete types; SourceOf adapts them.
class SegmentSource {
 public:
  virtual ~SegmentSource() = default;
  virtual bool next(Segment& out) = 0;
};

/// Adapts any object with `bool next(Segment&)` (TemporalStream,
/// FaultyStream, another decorator) into a SegmentSource. Borrows the
/// underlying stream, which must outlive the adapter.
template <typename S>
class SourceOf : public SegmentSource {
 public:
  explicit SourceOf(S& s) : s_(s) {}
  bool next(Segment& out) override { return s_.next(out); }

 private:
  S& s_;
};

// ---- domain drift -----------------------------------------------------------

/// Appearance drift applied in pixel space: a per-channel gain/bias shift
/// whose direction is drawn once from the decorator seed and whose magnitude
/// follows the configured time course. "abrupt" jumps from 0 to `severity` at
/// `onset_segment`; "gradual" ramps linearly from `onset_segment` over
/// `ramp_segments` segments and then holds. Labels are untouched — drift is
/// covariate shift, not concept shift.
struct DriftConfig {
  std::string mode = "none";  ///< "none" | "abrupt" | "gradual"
  int64_t onset_segment = 0;  ///< first segment affected
  int64_t ramp_segments = 8;  ///< gradual: segments from onset to full severity
  float severity = 0.5f;      ///< peak shift magnitude in [0, 1]

  bool active() const { return mode != "none" && severity > 0.0f; }
  /// Throws deco::Error on an unknown mode or out-of-range magnitude.
  void validate() const;
};

class DriftStream : public SegmentSource {
 public:
  /// `inner` is borrowed and must outlive the decorator.
  DriftStream(SegmentSource& inner, DriftConfig config, uint64_t seed);

  bool next(Segment& out) override;

  /// Severity in effect for segment index i (0-based); a pure function of
  /// the config, exposed so tests can pin the time course.
  float severity_at(int64_t segment_index) const;

  int64_t segments_drifted() const { return segments_drifted_; }
  const DriftConfig& config() const { return config_; }

 private:
  SegmentSource& inner_;
  DriftConfig config_;
  // Drift direction, drawn once at construction from the seed.
  float bias_[3];
  float gain_;
  int64_t segments_emitted_ = 0;
  int64_t segments_drifted_ = 0;
};

// ---- label noise ------------------------------------------------------------

/// Flips each ground-truth label to a uniformly random *different* class with
/// probability `flip_rate`. Images are never touched: this models annotation
/// noise, which reaches exactly the label-consuming paths (the oracle
/// upper-bound learner and every true-label evaluation metric) while the
/// unlabeled learners see an unchanged stream.
struct LabelNoiseConfig {
  double flip_rate = 0.0;  ///< per-sample flip probability in [0, 1]

  bool active() const { return flip_rate > 0.0; }
  void validate() const;
};

class LabelNoiseStream : public SegmentSource {
 public:
  /// `num_classes` bounds the replacement draw; `inner` is borrowed.
  LabelNoiseStream(SegmentSource& inner, LabelNoiseConfig config,
                   int64_t num_classes, uint64_t seed);

  bool next(Segment& out) override;

  int64_t labels_flipped() const { return labels_flipped_; }
  const LabelNoiseConfig& config() const { return config_; }

 private:
  SegmentSource& inner_;
  LabelNoiseConfig config_;
  int64_t num_classes_;
  Rng rng_;
  int64_t labels_flipped_ = 0;
};

// ---- class-incremental arrival ----------------------------------------------

/// Restricts the stream to a growing prefix of the class set: `initial`
/// classes are available at segment 0 and `per_phase` more arrive every
/// `segments_per_phase` segments. Runs of a not-yet-arrived class are remapped
/// (whole run, so temporal correlation survives) onto an arrived class and
/// re-rendered from the world, with instance/environment/starting-frame drawn
/// from the decorator's own Rng at each run boundary.
struct ClassIncrementalConfig {
  int64_t initial = 2;             ///< classes available from segment 0
  int64_t per_phase = 2;           ///< classes added per phase
  int64_t segments_per_phase = 8;  ///< phase length in segments

  void validate() const;
  /// Number of arrived classes at 0-based segment index i (pure function).
  int64_t arrived_at(int64_t segment_index, int64_t num_classes) const;
};

class ClassIncrementalStream : public SegmentSource {
 public:
  /// `world` renders the remapped runs; both references are borrowed.
  ClassIncrementalStream(const ProceduralImageWorld& world,
                         SegmentSource& inner, ClassIncrementalConfig config,
                         uint64_t seed);

  bool next(Segment& out) override;

  /// Samples re-rendered because their class had not arrived yet.
  int64_t samples_remapped() const { return samples_remapped_; }
  const ClassIncrementalConfig& config() const { return config_; }

 private:
  const ProceduralImageWorld& world_;
  SegmentSource& inner_;
  ClassIncrementalConfig config_;
  Rng rng_;
  int64_t segments_emitted_ = 0;
  int64_t samples_remapped_ = 0;

  // Current remapped-run state: runs are detected as maximal stretches of one
  // inner label (crossing segment boundaries), so one mapping covers a run.
  int64_t run_inner_class_ = -1;
  int64_t run_mapped_class_ = -1;
  int64_t run_instance_ = 0;
  int64_t run_environment_ = 0;
  int64_t run_frame_ = 0;
};

}  // namespace deco::data
