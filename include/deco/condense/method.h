// Pluggable condensation methods.
//
// Table II of the paper compares four ways of distilling a stream segment
// into the synthetic buffer: DC (bilevel gradient matching), DSA (DC with
// differentiable siamese augmentation), DM (distribution matching) and DECO
// (one-step matching with finite differences). All four implement this
// interface so the streaming harness and the timing benchmark can swap them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <iosfwd>

#include "deco/augment/siamese.h"
#include "deco/condense/buffer.h"
#include "deco/condense/matcher.h"
#include "deco/core/guard.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/rng.h"

namespace deco::condense {

/// Everything a condenser may use for one segment update. The real data has
/// already been pseudo-labeled and majority-voting-filtered upstream.
struct CondenseContext {
  SyntheticBuffer* buffer = nullptr;
  const Tensor* x_real = nullptr;               // [K, C, H, W]
  const std::vector<int64_t>* y_real = nullptr; // pseudo-labels
  const std::vector<float>* w_real = nullptr;   // confidence weights (Eq. 4)
  const std::vector<int64_t>* active_classes = nullptr;
  nn::ConvNet* deployed_model = nullptr;  // encoder for feature discrimination
  Rng* rng = nullptr;
  /// Optional numeric-health guard. When set (and enabled), condensers that
  /// support it validate each matching step and roll diverged steps back to
  /// a pre-step snapshot, retrying once with backed-off step sizes.
  core::NumericGuard* guard = nullptr;
};

class Condenser {
 public:
  virtual ~Condenser() = default;
  /// Updates the buffer's synthetic images from one segment of real data.
  virtual void condense(const CondenseContext& ctx) = 0;
  virtual std::string name() const = 0;

  /// Persists / restores internal state (rng, momentum velocities) for
  /// crash-safe resume. Stateless condensers keep the no-op default; a method
  /// whose future behavior depends on per-segment mutable state must override
  /// both so a killed-and-resumed run replays bit-exactly.
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void load_state(std::istream& is) { (void)is; }
};

// ---- DECO (ours) -------------------------------------------------------------

struct DecoCondenserConfig {
  int64_t iterations = 10;     ///< L in Algorithm 1
  /// opt_S learning rate, applied to RMS-normalized gradients (see
  /// normalize_grad): the expected per-pixel step is ≈ lr_syn per iteration.
  float lr_syn = 0.01f;
  float momentum_syn = 0.5f;
  float alpha = 0.1f;          ///< feature-discrimination weight (Eq. 9)
  float tau = 0.07f;           ///< contrastive temperature (Eq. 8)
  float fd_scale = 0.01f;      ///< ε numerator of the finite-difference rule
  /// Cap on positives/negatives per anchor in the contrastive term; bounds
  /// the encoder batch on large buffers.
  int64_t contrastive_cap = 8;
  bool feature_discrimination = true;  ///< ablation switch (Fig. 4b, α = 0)
  /// One-step matching draws a FRESH random model every iteration (the
  /// paper's empirical finding (2): many random models × one step beats one
  /// model × many steps). false keeps a single fixed random model across all
  /// L iterations — the ablation baseline.
  bool rerandomize_each_iteration = true;
  /// Normalize the matching gradient to unit RMS before the opt_S step. The
  /// summed cosine distance's raw input gradients are large and vary by
  /// orders of magnitude across random models; unnormalized steps saturate
  /// pixels against the [0,1] clamp and *destroy* buffer information (see
  /// DESIGN.md 4.a). RMS normalization makes lr_syn a per-pixel step size.
  bool normalize_grad = true;
  /// Learnable-soft-label extension: synthetic samples carry learned class
  /// distributions, co-optimized with the pixels by the same one-step
  /// matching rule (∇_q L is analytic; the finite-difference estimate of
  /// ∇_q D costs no extra passes). Requires the buffer to have soft labels
  /// enabled (DecoLearner does this automatically).
  bool learn_soft_labels = false;
  float lr_label = 0.01f;  ///< step size on RMS-normalized label-logit grads
};

class DecoCondenser : public Condenser {
 public:
  DecoCondenser(const nn::ConvNetConfig& model_config, DecoCondenserConfig config,
                uint64_t seed);
  void condense(const CondenseContext& ctx) override;
  std::string name() const override { return "DECO"; }

  /// Matching-loss trace of the last condense() call (diagnostics).
  const std::vector<float>& last_distances() const { return last_distances_; }

  /// Persists rng + momentum state; scratch-model parameters are re-derived
  /// from the rng on the next condense() call, so they are not stored.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  /// One matching step on the active rows with all step sizes (lr_syn,
  /// lr_label, alpha) scaled by `step_scale`; returns the matching distance.
  float run_iteration(const CondenseContext& ctx,
                      const std::vector<int64_t>& active_rows,
                      const std::vector<int64_t>& y_syn,
                      const std::vector<float>& w_real,
                      GradientMatcher& matcher, float step_scale);

  /// Computes the feature-discrimination input gradient into disc_scratch_
  /// and returns its global norm (0 if no anchors had positive pairs).
  float apply_feature_discrimination(const CondenseContext& ctx,
                                     const std::vector<int64_t>& active_rows);

  DecoCondenserConfig config_;
  Rng rng_;
  std::unique_ptr<nn::ConvNet> scratch_;  // the randomized θ̃
  Tensor velocity_;                       // momentum state over buffer rows
  Tensor velocity_labels_;                // momentum state over label logits
  std::vector<float> last_distances_;
  std::vector<int64_t> last_disc_rows_;   // rows touched by the last disc pass
  Tensor disc_scratch_;                   // staged α-term gradient (Eq. 9)
};

// ---- DC / DSA (bilevel baselines) ---------------------------------------------

struct BilevelConfig {
  int64_t outer_loops = 2;     ///< random model re-draws (K)
  int64_t inner_epochs = 10;   ///< matching+training epochs per draw (T)
  int64_t model_steps = 4;     ///< model SGD steps on S per inner epoch (ζ_θ)
  float lr_syn = 0.01f;        ///< on RMS-normalized gradients, as in DECO
  float momentum_syn = 0.5f;
  float lr_model = 0.01f;
  float fd_scale = 0.01f;
  std::string dsa_strategy;    ///< empty → DC; non-empty → DSA
};

class BilevelCondenser : public Condenser {
 public:
  BilevelCondenser(const nn::ConvNetConfig& model_config, BilevelConfig config,
                   uint64_t seed);
  void condense(const CondenseContext& ctx) override;
  std::string name() const override {
    return config_.dsa_strategy.empty() ? "DC" : "DSA";
  }

 private:
  BilevelConfig config_;
  Rng rng_;
  std::unique_ptr<nn::ConvNet> scratch_;
  augment::SiameseAugment aug_;
  Tensor velocity_;
};

// ---- DM (distribution matching) ----------------------------------------------

struct DmConfig {
  /// DM's per-iteration cost is much lower than a one-step matching pass (no
  /// parameter gradients, no finite-difference passes), and the method needs
  /// more iterations for its weaker per-class mean signal to shape the
  /// images. 25 iterations calibrates DM's per-segment budget to the paper's
  /// relative execution time (Table II: DM ≈ 0.6× DECO's time).
  int64_t iterations = 25;
  float lr_syn = 0.01f;  ///< on RMS-normalized gradients, as in DECO
  float momentum_syn = 0.5f;
};

class DmCondenser : public Condenser {
 public:
  DmCondenser(const nn::ConvNetConfig& model_config, DmConfig config,
              uint64_t seed);
  void condense(const CondenseContext& ctx) override;
  std::string name() const override { return "DM"; }

 private:
  DmConfig config_;
  Rng rng_;
  std::unique_ptr<nn::ConvNet> scratch_;
  Tensor velocity_;
};

// ---- MTT (trajectory matching, extension) -------------------------------------

struct MttConfig {
  int64_t iterations = 10;      ///< matching iterations per segment
  int64_t expert_steps = 4;     ///< SGD steps defining the expert trajectory
  float lr_model = 0.02f;       ///< inner SGD step for expert and student
  float lr_syn = 0.01f;         ///< on RMS-normalized gradients
  float momentum_syn = 0.5f;
  float fd_scale = 0.01f;
};

/// One-step trajectory matching — an adaptation of "matching training
/// trajectories" (Cazenavette et al., cited by the paper's related work) to
/// the on-device setting, built on the same finite-difference machinery as
/// DECO. Per iteration:
///   1. From a random init th0, take `expert_steps` SGD steps on the REAL
///      segment data -> expert parameters th*.
///   2. One SGD step on the SYNTHETIC data from th0 -> student th_s(S).
///   3. Minimize ||th_s(S) - th*||^2 w.r.t. S. Since th_s = th0 - lr*grad_th L(S),
///      the gradient is -lr * d2L/dSdth * 2(th_s - th*) — a Hessian-vector
///      product estimated with the same th +- eps*v central difference (Eq. 7).
/// Not part of the paper's evaluation; shipped as the extension showing the
/// framework "can be flexibly adapted to other condensation techniques".
class MttCondenser : public Condenser {
 public:
  MttCondenser(const nn::ConvNetConfig& model_config, MttConfig config,
               uint64_t seed);
  void condense(const CondenseContext& ctx) override;
  std::string name() const override { return "MTT"; }

  /// Trajectory losses ||th_s - th*||^2 of the last condense() call.
  const std::vector<float>& last_losses() const { return last_losses_; }

 private:
  MttConfig config_;
  Rng rng_;
  std::unique_ptr<nn::ConvNet> scratch_;
  Tensor velocity_;
  std::vector<float> last_losses_;
};

}  // namespace deco::condense
