// Class-balanced synthetic-image buffer (the condensed dataset S).
//
// The buffer holds exactly `ipc` (images-per-class) synthetic samples for
// every class — the paper's class-balance invariant |S_c| = |S|/|C| — stored
// as one contiguous [num_classes·ipc, C, H, W] tensor so condensers can treat
// the whole buffer (or any row subset) as an optimizable parameter. A grad
// tensor of identical shape accompanies it.
#pragma once

#include <cstdint>
#include <vector>

#include "deco/data/dataset.h"
#include "deco/nn/module.h"
#include "deco/tensor/dtype.h"
#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::condense {

class SyntheticBuffer {
 public:
  SyntheticBuffer(int64_t num_classes, int64_t ipc, int64_t channels,
                  int64_t height, int64_t width);

  /// Initializes each class slot from random real samples of that class (the
  /// standard warm start in the condensation literature). Classes absent from
  /// `labeled` fall back to Gaussian noise.
  void init_from_dataset(const data::Dataset& labeled, Rng& rng);

  /// Initializes every slot with N(0.5, 0.25) noise clamped to [0, 1].
  void init_random(Rng& rng);

  int64_t num_classes() const { return num_classes_; }
  int64_t ipc() const { return ipc_; }
  int64_t size() const { return num_classes_ * ipc_; }

  Tensor& images() { return images_; }
  const Tensor& images() const { return images_; }
  Tensor& grads() { return grads_; }

  const std::vector<int64_t>& labels() const { return labels_; }
  int64_t label(int64_t row) const { return labels_[static_cast<size_t>(row)]; }

  /// Buffer rows belonging to `cls` (a contiguous range by construction).
  std::vector<int64_t> rows_of_class(int64_t cls) const;
  /// Rows of all classes in `classes`, in buffer order.
  std::vector<int64_t> rows_of_classes(const std::vector<int64_t>& classes) const;

  /// Gathers selected rows into a [k, C, H, W] batch.
  Tensor gather(const std::vector<int64_t>& rows) const;
  /// Adds `delta` (shaped like gather(rows)) scaled by `alpha` into the
  /// gradient tensor at the given rows.
  void scatter_add_grad(const std::vector<int64_t>& rows, const Tensor& delta,
                        float alpha);
  /// Writes rows of `values` (shaped like gather(rows)) back into the images.
  void scatter_images(const std::vector<int64_t>& rows, const Tensor& values);

  /// Labels for a row selection.
  std::vector<int64_t> gather_labels(const std::vector<int64_t>& rows) const;

  /// Exposes (images, grads) as a ParamRef so standard optimizers can drive
  /// the buffer (opt_S in the paper).
  nn::ParamRef as_param();

  // ---- learnable soft labels (extension) -----------------------------------
  // Each row optionally carries label *logits* whose row-softmax is the
  // sample's class distribution — the learnable-soft-label extension of
  // dataset condensation. Hard labels remain the argmax (and the rows stay
  // class-balanced); only the distribution around them is learned.

  /// Enables soft labels, initializing each row to a distribution with
  /// `initial_confidence` mass on the row's hard label.
  void enable_soft_labels(float initial_confidence = 0.9f);
  bool soft_labels_enabled() const { return soft_labels_; }
  Tensor& label_logits() { return label_logits_; }
  Tensor& label_grads() { return label_grads_; }
  /// Row-softmax class distributions for the selected rows: [k, num_classes].
  Tensor soft_targets(const std::vector<int64_t>& rows) const;
  /// Accumulates dL/d(label_logits) for the selected rows, chaining the
  /// provided dL/d(targets) through the row softmax.
  void scatter_add_label_grad_from_targets(const std::vector<int64_t>& rows,
                                           const Tensor& grad_targets,
                                           float alpha);

  /// Clamp all pixels to [0, 1] (images remain valid sensor data).
  void clamp_pixels();

  int64_t channels() const { return channels_; }
  int64_t height() const { return height_; }
  int64_t width() const { return width_; }

  // ---- quantized storage (deco.cache_dtype) --------------------------------
  // Under a non-fp32 policy the cache's canonical form is a quantized
  // QTensor; images_ is its fp32 *working copy* (condensers optimize raw
  // floats through as_param()/gather/scatter). commit_storage() re-encodes
  // the working copy and refreshes it to exactly the decoded values, so the
  // invariant "images() == decode(stored_images())" holds at every segment
  // boundary and save/load round-trips are byte-identical on the stored
  // form. Under fp32 (default) nothing changes: commit is a no-op and the
  // buffer is bit-identical to the pre-quantization implementation.

  /// Sets the storage policy. Call before the first commit.
  void set_storage(DType dtype, int64_t block = kDefaultQuantBlock);
  DType storage_dtype() const { return store_dtype_; }
  int64_t storage_block() const { return store_block_; }

  /// Quantizes the working images into canonical storage and decodes them
  /// back (quantization noise becomes visible to subsequent training, which
  /// is what makes the stored bytes the honest cache). No-op under fp32.
  void commit_storage();

  /// Bytes the image cache occupies as stored (post-quantization) vs as
  /// logical fp32 — the figures pool-budget admission and the scenario
  /// matrix report.
  int64_t stored_bytes() const;
  int64_t logical_bytes() const {
    return images_.numel() * static_cast<int64_t>(sizeof(float));
  }

  /// Canonical stored form (valid after commit_storage; invalid under fp32).
  const QTensor& stored_images() const { return qimages_; }
  /// Restores quantized storage from a deserialized QTensor and decodes the
  /// working copy from it (load_state path). Shape/dtype must match.
  void restore_stored(QTensor q);

 private:
  int64_t num_classes_, ipc_, channels_, height_, width_;
  Tensor images_;  // [M, C, H, W], row r has label r / ipc
  Tensor grads_;
  std::vector<int64_t> labels_;
  bool soft_labels_ = false;
  Tensor label_logits_;  // [M, num_classes], valid when soft_labels_
  Tensor label_grads_;
  DType store_dtype_ = DType::kF32;
  int64_t store_block_ = kDefaultQuantBlock;
  QTensor qimages_;  // canonical stored cache when store_dtype_ != kF32
};

}  // namespace deco::condense
