// One-step gradient matching with finite-difference input gradients — the
// efficiency core of DECO (Section III-C, Eqs. 5–7).
//
// Exactly five forward-backward passes per call:
//   1. g_real  = ∇_θ L_θ(X_real)          (confidence-weighted CE)
//   2. g_syn   = ∇_θ L_θ(X_syn)
//   3. ∇_{g_syn} D(g_syn, g_real)          (analytic, no network pass)
//   4. ∇_X L at θ⁺ = θ + ε·∇D              (input-gradient backprop)
//   5. ∇_X L at θ⁻ = θ − ε·∇D
// and the estimate ∇_X D ≈ (∇_X L_{θ⁺} − ∇_X L_{θ⁻}) / (2ε) with
// ε = 0.01/‖∇_{g_syn}D‖₂ as in the paper (footnote 2, following DARTS).
// Time and space are O(|θ| + |X|) rather than O(|θ|·|X|).
#pragma once

#include <cstdint>
#include <vector>

#include "deco/augment/siamese.h"
#include "deco/nn/module.h"
#include "deco/tensor/tensor.h"

namespace deco::condense {

struct MatchResult {
  float distance = 0.0f;   ///< D(g_syn, g_real) at the current synthetic data
  float loss_real = 0.0f;  ///< CE of the real batch under the random model
  float loss_syn = 0.0f;
  Tensor grad_syn;         ///< ∇_{X_syn} D, shape of x_syn
};

class GradientMatcher {
 public:
  /// `model` is the (externally randomized) network θ̃ the gradients are
  /// measured on; the matcher perturbs and restores its parameters in place.
  /// `fd_scale` is the 0.01 numerator of the ε rule.
  explicit GradientMatcher(nn::Module& model, float fd_scale = 0.01f);

  /// Plain matching step (DECO, DC).
  MatchResult match(const Tensor& x_syn, const std::vector<int64_t>& y_syn,
                    const Tensor& x_real, const std::vector<int64_t>& y_real,
                    const std::vector<float>& w_real);

  /// Soft-label matching (the learnable-soft-label extension): synthetic
  /// samples carry class *distributions* q_syn [n, C] instead of hard labels.
  /// Returns, alongside the pixel gradient, ∇_{q_syn} D computed by the same
  /// finite-difference rule (∇_q L is analytic: −log p).
  struct SoftResult {
    MatchResult base;
    Tensor grad_targets;  // [n_syn, C]
  };
  SoftResult match_soft(const Tensor& x_syn, const Tensor& q_syn,
                        const Tensor& x_real,
                        const std::vector<int64_t>& y_real,
                        const std::vector<float>& w_real);

  /// Siamese-augmented matching step (DSA): the same sampled transform is
  /// applied to both batches; the returned gradient is w.r.t. the
  /// *unaugmented* synthetic pixels (chain rule through the augmentation).
  MatchResult match_augmented(const Tensor& x_syn,
                              const std::vector<int64_t>& y_syn,
                              const Tensor& x_real,
                              const std::vector<int64_t>& y_real,
                              const std::vector<float>& w_real,
                              const augment::SiameseAugment& aug, Rng& rng);

  /// Augmented matching with externally sampled transform parameters. Lets a
  /// caller draw the per-class augmentation params serially (keeping the rng
  /// stream order fixed) and then run the matching passes on worker threads.
  MatchResult match_with_params(const Tensor& x_syn,
                                const std::vector<int64_t>& y_syn,
                                const Tensor& x_real,
                                const std::vector<int64_t>& y_real,
                                const std::vector<float>& w_real,
                                const augment::SiameseAugment& aug,
                                const augment::AugmentParams& params);

 private:
  MatchResult match_impl(const Tensor& x_syn, const std::vector<int64_t>& y_syn,
                         const Tensor& x_real, const std::vector<int64_t>& y_real,
                         const std::vector<float>& w_real,
                         const augment::SiameseAugment* aug,
                         const augment::AugmentParams* params);

  nn::Module& model_;
  float fd_scale_;
};

}  // namespace deco::condense
