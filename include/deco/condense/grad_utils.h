// Helpers for working with "gradient vectors": per-parameter-tensor lists of
// gradients, the g_syn / g_real objects of the paper's Eqs. (5)–(7).
#pragma once

#include <vector>

#include "deco/nn/module.h"
#include "deco/tensor/tensor.h"

namespace deco::condense {

/// One tensor per model parameter, aligned with Module::parameters() order.
using GradVec = std::vector<Tensor>;

/// Deep-copies the current gradient accumulators of `m`.
GradVec clone_grads(nn::Module& m);

/// params += eps * direction (direction aligned with parameters()).
void perturb_params(nn::Module& m, const GradVec& direction, float eps);

/// Euclidean norm over the concatenation of all tensors.
float global_norm(const GradVec& g);

/// Sum of element counts.
int64_t total_numel(const GradVec& g);

}  // namespace deco::condense
