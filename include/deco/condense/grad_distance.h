// Gradient-matching distance D(g_syn, g_real) and its analytic derivative
// with respect to g_syn.
//
// Following Zhao et al.'s gradient-matching formulation (which the paper
// adopts with cosine similarity as the metric), each parameter tensor is
// viewed as a matrix [out, rest] and the distance is the sum over output rows
// of (1 − cosine(a_row, b_row)). Summing per-row rather than flattening keeps
// the per-neuron gradient directions meaningful.
//
// The derivative of d = 1 − a·b/(‖a‖‖b‖) w.r.t. a is
//   ∂d/∂a = −b/(‖a‖‖b‖) + (a·b)·a/(‖a‖³‖b‖),
// which Eq. (6) of the paper consumes as ∇_{g_syn} D. Rows where either
// gradient is numerically zero are skipped (zero contribution and gradient).
#pragma once

#include "deco/condense/grad_utils.h"

namespace deco::condense {

struct GradDistanceResult {
  float value = 0.0f;
  GradVec d_syn;  ///< ∂D/∂g_syn, aligned with the input gradient vectors
};

GradDistanceResult gradient_distance(const GradVec& g_syn, const GradVec& g_real);

/// Distance only (no derivative) — used by tests and diagnostics.
float gradient_distance_value(const GradVec& g_syn, const GradVec& g_real);

}  // namespace deco::condense
