// Ordered container of modules executed front-to-back on forward and
// back-to-front on backward.
#pragma once

#include <memory>
#include <vector>

#include "deco/nn/module.h"

namespace deco::core::telemetry {
struct SpanSite;
}  // namespace deco::core::telemetry

namespace deco::nn {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for chaining.
  Sequential& add(std::unique_ptr<Module> layer);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void reinitialize(Rng& rng) override;
  std::string name() const override { return "Sequential"; }

  size_t size() const { return layers_.size(); }
  Module& layer(size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
  // Telemetry span sites ("nn/<i>:<name>/fwd|bwd"), resolved once per layer
  // in add() so forward/backward pay no registry lookup.
  std::vector<core::telemetry::SpanSite*> fwd_sites_;
  std::vector<core::telemetry::SpanSite*> bwd_sites_;
};

}  // namespace deco::nn
