// Learning-rate schedules for the long model-update phases (the paper trains
// 200 epochs on the condensed dataset per update; decaying the rate over that
// window stabilizes the final accuracy readout).
#pragma once

#include <cstdint>

namespace deco::nn {

/// Cosine annealing from `base_lr` to `min_lr` over `total_steps`.
class CosineSchedule {
 public:
  CosineSchedule(float base_lr, int64_t total_steps, float min_lr = 0.0f);

  /// Learning rate at `step` (clamped to [0, total_steps]).
  float at(int64_t step) const;

 private:
  float base_lr_;
  float min_lr_;
  int64_t total_steps_;
};

/// Step decay: lr = base_lr · gamma^(step / step_size).
class StepSchedule {
 public:
  StepSchedule(float base_lr, int64_t step_size, float gamma = 0.1f);
  float at(int64_t step) const;

 private:
  float base_lr_;
  int64_t step_size_;
  float gamma_;
};

}  // namespace deco::nn
