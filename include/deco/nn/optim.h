// Optimizers over Module parameters or raw tensors.
//
// SgdMomentum follows the paper's training setup (SGD + momentum + weight
// decay). The same class drives both model updates (opt_θ) and synthetic-image
// updates (opt_S) — for the latter callers register the buffer tensors
// directly via the raw-tensor constructor.
#pragma once

#include <cstdint>
#include <vector>

#include "deco/nn/module.h"

namespace deco::nn {

class SgdMomentum {
 public:
  /// Optimizes all parameters of `model`.
  SgdMomentum(Module& model, float lr, float momentum = 0.9f,
              float weight_decay = 0.0f);
  /// Optimizes raw (value, grad) tensor pairs, e.g. synthetic images.
  SgdMomentum(std::vector<ParamRef> params, float lr, float momentum = 0.9f,
              float weight_decay = 0.0f);

  /// Applies one update from the accumulated gradients, then leaves the
  /// gradients untouched (call zero_grad separately).
  void step();

  /// Zeroes all registered gradient accumulators.
  void zero_grad();

  /// Resets momentum buffers (used when the model is re-initialized).
  void reset_state();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
  float weight_decay_;
};

/// Adam, used for synthetic-image optimization ablations.
class Adam {
 public:
  Adam(std::vector<ParamRef> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void step();
  void zero_grad();
  void reset_state();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
};

}  // namespace deco::nn
