// Neural-network module interface with explicit manual backpropagation.
//
// Dataset condensation needs three gradient flavors from one machinery:
//   * parameter gradients  (for g_real / g_syn in gradient matching),
//   * input gradients      (to update the synthetic images themselves),
//   * the ability to perturb all parameters by a structured direction
//     (the θ± = θ ± ε·∇D finite-difference trick of Eq. 7).
// A general autograd tape is unnecessary for a fixed feed-forward topology, so
// each layer implements forward(x) (caching what backward needs) and
// backward(dL/dy) → dL/dx while accumulating dL/dparam into its grad buffers.
#pragma once

#include <string>
#include <vector>

#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::nn {

/// Non-owning handle to one learnable parameter tensor and its gradient
/// accumulator. `value` and `grad` always have identical shapes.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the layer output, caching activations needed by backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagates `grad_output` (dL/dy) to dL/dx, accumulating parameter
  /// gradients along the way. Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends this module's parameters (if any) to `out`.
  virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

  /// Re-draws all parameters from the module's initialization distribution.
  /// Used by condensation to sample the fresh random model θ̃ each iteration.
  virtual void reinitialize(Rng& rng) { (void)rng; }

  /// Human-readable layer name for diagnostics.
  virtual std::string name() const = 0;

  /// Convenience: all parameters of this module (and children).
  std::vector<ParamRef> parameters();

  /// Zeroes every gradient accumulator.
  void zero_grad();

  /// Total number of learnable scalars.
  int64_t num_params();
};

/// Deep-copies parameter values from `src` to `dst`; both must expose
/// structurally identical parameter lists.
void copy_params(Module& src, Module& dst);

}  // namespace deco::nn
