// The ConvNet backbone used for every experiment in the paper: D blocks of
// [Conv3x3 → InstanceNorm → ReLU → AvgPool2x2] followed by a linear
// classification head. The convolutional stack doubles as the encoder f_θ for
// the feature-discrimination objective (Section III-D).
#pragma once

#include <cstdint>
#include <memory>

#include "deco/nn/sequential.h"

namespace deco::nn {

/// Pooling flavor for the conv blocks (the DC literature uses average
/// pooling; max pooling is provided for architecture ablations).
enum class Pooling { kAvg, kMax };

struct ConvNetConfig {
  int64_t in_channels = 3;
  int64_t image_h = 16;
  int64_t image_w = 16;
  int64_t num_classes = 10;
  int64_t width = 32;   ///< channels per conv block (paper uses 128)
  int64_t depth = 3;    ///< number of conv blocks
  Pooling pooling = Pooling::kAvg;
};

/// ConvNet = encoder (conv blocks + flatten) + linear head. The split lets
/// callers backpropagate either from logits (classification losses) or from
/// the embedding (contrastive feature-discrimination loss).
class ConvNet : public Module {
 public:
  ConvNet(const ConvNetConfig& config, Rng& rng);

  /// Full forward: logits [N, num_classes].
  Tensor forward(const Tensor& input) override;
  /// Full backward from dL/dlogits; returns dL/dinput.
  Tensor backward(const Tensor& grad_logits) override;

  /// Encoder-only forward: embedding [N, feature_dim].
  Tensor embed(const Tensor& input);
  /// Encoder-only backward from dL/dembedding; returns dL/dinput.
  /// Must follow a matching embed() (or forward(), which also runs the encoder).
  Tensor backward_from_embedding(const Tensor& grad_embedding);

  void collect_params(std::vector<ParamRef>& out) override;
  void reinitialize(Rng& rng) override;
  std::string name() const override { return "ConvNet"; }

  int64_t feature_dim() const { return feature_dim_; }
  const ConvNetConfig& config() const { return config_; }

 private:
  ConvNetConfig config_;
  Sequential encoder_;
  std::unique_ptr<Module> head_;
  int64_t feature_dim_ = 0;
};

/// Deep copy: constructs a new ConvNet with the same config and copies
/// parameter values (activation caches are not copied).
std::unique_ptr<ConvNet> clone_convnet(const ConvNet& src);

}  // namespace deco::nn
