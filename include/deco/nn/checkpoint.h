// Model and buffer checkpointing.
//
// Persists every parameter of a Module (in collect_params order, with names
// recorded for integrity checking) so a deployed model — or the condensed
// synthetic buffer, which is the device's distilled memory — can survive
// restarts.
#pragma once

#include <string>

#include "deco/nn/module.h"
#include "deco/tensor/dtype.h"

namespace deco::nn {

/// Saves all parameters of `model` to `path`. Format: one header with the
/// parameter count, then (name, tensor) pairs in collect_params order; each
/// tensor carries its own CRC32 trailer (serialize.h format v2). The write is
/// atomic (temp file + rename), so a crash mid-save preserves the previous
/// checkpoint.
void save_checkpoint(const std::string& path, Module& model);

/// Dtype-policy variant: parameters are stored as v3 records at `dtype`
/// (runtime.checkpoint_dtype). kF32 is identical to the two-argument
/// overload byte-for-byte; fp16/int8 shrink the file at the cost of
/// quantized (no longer bit-exact) parameters on load.
void save_checkpoint(const std::string& path, Module& model, DType dtype,
                     int64_t block = kDefaultQuantBlock);

/// Loads parameters saved by save_checkpoint into `model`. The module must
/// expose the same parameter names/shapes in the same order; mismatches,
/// truncation and CRC failures throw deco::Error. The whole file is staged
/// and validated before any parameter is overwritten, so a failed load never
/// leaves the model partially updated.
void load_checkpoint(const std::string& path, Module& model);

}  // namespace deco::nn
