// Model and buffer checkpointing.
//
// Persists every parameter of a Module (in collect_params order, with names
// recorded for integrity checking) so a deployed model — or the condensed
// synthetic buffer, which is the device's distilled memory — can survive
// restarts.
#pragma once

#include <string>

#include "deco/nn/module.h"

namespace deco::nn {

/// Saves all parameters of `model` to `path`. Format: one header with the
/// parameter count, then (name, tensor) pairs in collect_params order.
void save_checkpoint(const std::string& path, Module& model);

/// Loads parameters saved by save_checkpoint into `model`. The module must
/// expose the same parameter names/shapes in the same order; mismatches
/// throw deco::Error rather than silently misloading.
void load_checkpoint(const std::string& path, Module& model);

}  // namespace deco::nn
