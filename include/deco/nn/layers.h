// Concrete layers for the ConvNet backbone used throughout the paper:
// Conv2d, Linear, ReLU, AvgPool2d, InstanceNorm2d and Flatten.
//
// All image tensors are NCHW. Layers cache exactly what their backward pass
// needs and reuse buffers across iterations to avoid per-step allocation.
#pragma once

#include <cstdint>

#include "deco/nn/module.h"
#include "deco/tensor/ops.h"

namespace deco::nn {

/// 2-D convolution via im2col + GEMM. Weight layout: [out_ch, in_ch*kh*kw],
/// bias: [out_ch].
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
         int64_t padding, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void reinitialize(Rng& rng) override;
  std::string name() const override { return "Conv2d"; }

  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;

  Tensor weight_;       // [out_ch, in_ch*k*k]
  Tensor bias_;         // [out_ch]
  Tensor weight_grad_;
  Tensor bias_grad_;

  Conv2dGeometry geom_;  // of the last forward
  Tensor cols_;          // im2col of last input
  Tensor out_mat_;       // GEMM output scratch
  Tensor grad_out_mat_;  // backward scratch
  Tensor grad_cols_;     // backward scratch
  int64_t last_batch_ = 0;
};

/// Fully connected layer. Weight: [out, in], bias: [out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void reinitialize(Rng& rng) override;
  std::string name() const override { return "Linear"; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;
  Tensor bias_;
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_;  // cached for backward
};

/// Elementwise rectifier.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Non-overlapping average pooling (kernel == stride).
class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(int64_t kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

 private:
  int64_t kernel_;
  std::vector<int64_t> in_shape_;
};

/// Non-overlapping max pooling (kernel == stride). Gradient routes to the
/// arg-max element of each window (ties: first in scan order).
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int64_t kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  int64_t kernel_;
  std::vector<int64_t> in_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

/// Instance normalization with learnable per-channel affine (γ, β), matching
/// the ConvNet of the dataset-condensation literature. Normalizes each (n, c)
/// plane to zero mean / unit variance.
class InstanceNorm2d : public Module {
 public:
  explicit InstanceNorm2d(int64_t channels, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(std::vector<ParamRef>& out) override;
  void reinitialize(Rng& rng) override;
  std::string name() const override { return "InstanceNorm2d"; }

 private:
  int64_t channels_;
  float eps_;
  Tensor gamma_;       // [C]
  Tensor beta_;        // [C]
  Tensor gamma_grad_;
  Tensor beta_grad_;
  Tensor xhat_;        // normalized input, cached
  Tensor inv_std_;     // [N*C]
  std::vector<int64_t> in_shape_;
};

/// Reshapes [N, C, H, W] to [N, C*H*W].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> in_shape_;
};

}  // namespace deco::nn
