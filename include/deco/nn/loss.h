// Loss functions.
//
// Each loss returns its scalar value and writes the gradient with respect to
// its direct input (logits or embeddings) — callers then push that gradient
// through the network with Module::backward.
#pragma once

#include <cstdint>
#include <vector>

#include "deco/tensor/tensor.h"

namespace deco::nn {

/// Confidence-weighted softmax cross-entropy (paper Eq. 4).
///
/// L = -(1/N) Σ_i w_i · log p(x_i)_{y_i}
///
/// `weights` may be empty (treated as all-ones; this is the synthetic-data
/// case where w_i = 1). For streamed real data callers pass the model's
/// confidence in the pseudo-label, p_θ(x_i)_{ŷ_i}. The 1/N normalization
/// stabilizes learning-rate choice across batch sizes; the cosine gradient
/// distance used for matching is scale-invariant, so this does not alter the
/// condensation objective.
struct CrossEntropyResult {
  float loss = 0.0f;
  Tensor grad_logits;  // [N, C]
};

CrossEntropyResult weighted_cross_entropy(const Tensor& logits,
                                          const std::vector<int64_t>& labels,
                                          const std::vector<float>& weights = {});

/// Feature-discrimination loss (paper Eq. 8), a supervised-contrastive
/// objective over buffer embeddings:
///
///   L = Σ_{i∈A} -1/|P(i)| Σ_{p∈P(i)} log[ exp(z_i·z_p/τ) / Σ_{n∈N(i)} exp(z_i·z_n/τ) ]
///
/// Anchors `A` index the active samples; P(i) are same-class samples (other
/// than i); N(i) are all samples of one randomly drawn negative class.
/// Embeddings are L2-normalized internally (standard practice for
/// dot-product/temperature contrastive losses — unnormalized magnitudes under
/// τ = 0.07 overflow exp); the returned gradient is with respect to the raw,
/// unnormalized embeddings.
struct ContrastiveResult {
  float loss = 0.0f;
  Tensor grad_embeddings;  // same shape as the input embeddings
};

ContrastiveResult feature_discrimination_loss(
    const Tensor& embeddings,                 // [M, D] — all buffer samples
    const std::vector<int64_t>& labels,       // [M]
    const std::vector<int64_t>& anchor_index, // A ⊆ [0, M)
    const std::vector<int64_t>& negative_class_of_anchor,  // same length as A
    float temperature);

/// Soft-target cross-entropy, the objective behind the learnable-soft-label
/// extension of dataset condensation (synthetic samples carry a learned
/// class *distribution* rather than a hard label):
///
///   L = -(1/N) Σ_i w_i Σ_c q_{i,c} · log p(x_i)_c
///
/// Returns gradients with respect to BOTH the logits (to backpropagate into
/// the network / synthetic pixels) and the targets q (to optimize the labels
/// themselves). Targets need not be normalized; the gradient formulas hold
/// for general non-negative q.
struct SoftCrossEntropyResult {
  float loss = 0.0f;
  Tensor grad_logits;   // [N, C]
  Tensor grad_targets;  // [N, C]: ∂L/∂q = −(w/N)·log p
};

SoftCrossEntropyResult soft_cross_entropy(const Tensor& logits,
                                          const Tensor& targets,
                                          const std::vector<float>& weights = {});

/// Plain mean-squared error between two same-shape tensors; grad w.r.t. `pred`.
struct MseResult {
  float loss = 0.0f;
  Tensor grad_pred;
};

MseResult mse_loss(const Tensor& pred, const Tensor& target);

}  // namespace deco::nn
