// On-device learners: the common streaming interface plus the DECO learner
// implementing Algorithm 1 of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deco/condense/buffer.h"
#include "deco/condense/method.h"
#include "deco/core/guard.h"
#include "deco/core/pseudo_label.h"
#include "deco/data/dataset.h"
#include "deco/nn/convnet.h"

namespace deco::core {

/// What a learner did with one segment — consumed by evaluation harnesses
/// (pseudo-label accuracy, retention rate, Fig. 4a).
struct SegmentReport {
  std::vector<int64_t> pseudo_labels;  ///< −1 for quarantined frames
  std::vector<float> confidences;
  std::vector<int64_t> retained;
  int64_t active_class_count = 0;
  float condense_distance = 0.0f;  ///< last gradient-matching distance (DECO)

  // Numeric-guard interventions during this segment (0 when guards are off).
  int64_t frames_quarantined = 0;  ///< non-finite frames excluded
  int64_t segment_skipped = 0;     ///< 1 when no usable frame survived
  int64_t steps_rolled_back = 0;   ///< diverged condensation steps undone
  int64_t batches_skipped = 0;     ///< model-update batches dropped
  int64_t grads_clipped = 0;       ///< model-update gradient-norm clips
};

/// Streaming learner interface shared by DECO and the replay baselines.
///
/// This is the single polymorphic surface the evaluation harness and the
/// multi-session runtime (runtime/session_manager.h) host learners through:
/// segment ingestion, on-demand model updates, crash-safe persistence and a
/// memory footprint estimate all dispatch virtually, so DECO, the replay
/// baselines and the condensation baselines are interchangeable without
/// downcasts.
class OnDeviceLearner {
 public:
  virtual ~OnDeviceLearner() = default;
  /// Consumes one unlabeled segment (Algorithm 1 body for DECO).
  virtual SegmentReport observe_segment(const Tensor& images) = 0;
  /// Oracle entry point: consumes a segment WITH its ground-truth labels.
  /// Only the upper-bound learner uses them; the default ignores the labels
  /// and forwards to observe_segment, so the harness can dispatch uniformly.
  virtual SegmentReport observe_labeled_segment(
      const Tensor& images, const std::vector<int64_t>& true_labels) {
    (void)true_labels;
    return observe_segment(images);
  }
  virtual nn::ConvNet& model() = 0;
  virtual std::string name() const = 0;
  /// Cumulative wall-clock seconds spent inside buffer condensation/selection
  /// (Table II's execution-time metric).
  virtual double condense_seconds() const = 0;

  /// Trains the deployed model on the learner's current buffer immediately
  /// (outside the β-schedule). Learners without a retraining notion no-op.
  virtual void update_model_now() {}

  /// True when save_state/load_state are implemented; the runtime only
  /// schedules periodic checkpoints for learners that return true.
  virtual bool supports_state() const { return false; }
  /// Crash-safe persistence of the complete learner state. The default
  /// throws deco::Error — override together with supports_state().
  virtual void save_state(const std::string& path) const;
  /// Restores a save_state file; throws deco::Error on mismatch/corruption
  /// without modifying the learner. The default throws.
  virtual void load_state(const std::string& path);

  /// Approximate resident bytes of learner-owned state (model parameters
  /// plus buffer contents, *as stored* — a quantized cache reports its
  /// post-quantization byte count). The multi-session runtime partitions the
  /// tensor pool budget across sessions with this estimate.
  virtual int64_t memory_bytes() const { return 0; }

  /// Stored vs logical-fp32 bytes of the learner's sample cache (condensed
  /// buffer or replay rows; the model is excluded). The scenario matrix
  /// reports both so the compression ratio of quantized caches is tracked
  /// per PR. Learners without a cache return 0.
  virtual int64_t cache_stored_bytes() const { return 0; }
  virtual int64_t cache_logical_bytes() const { return 0; }

  /// Applies the runtime's checkpoint dtype policy (runtime.checkpoint_dtype)
  /// to subsequent save_state calls. The default ignores it; stateful
  /// learners store model parameters at this dtype. fp32 (the default)
  /// preserves bit-exact crash resume; fp16/int8 trade that for smaller
  /// checkpoint files.
  virtual void set_checkpoint_dtype(DType dtype) { (void)dtype; }
};

/// Hyper-parameters of the DECO learner (paper Section IV-A3 defaults).
struct DecoConfig {
  int64_t ipc = 10;               ///< images per class in the buffer
  float threshold_m = 0.4f;       ///< majority-voting filter threshold
  int64_t beta = 10;              ///< model update interval, in segments
  int64_t model_update_epochs = 30;  ///< epochs of opt_θ on S (paper: 200)
  float lr_model = 1e-3f;
  float weight_decay = 5e-4f;
  int64_t train_batch = 32;
  bool use_majority_voting = true;  ///< ablation switch
  condense::DecoCondenserConfig condenser;
  GuardConfig guard;  ///< numeric-health policy (guard.enabled=false to ablate)
  StoragePolicy storage;  ///< cache/checkpoint dtypes (deco.cache_dtype etc.)

  /// Throws deco::Error on out-of-range hyper-parameters (called by the
  /// DecoLearner constructor, so bad configs fail loudly up front).
  void validate() const;
};

/// The DECO framework (Algorithm 1): pseudo-label → majority vote → condense
/// into the synthetic buffer → periodically retrain the deployed model on S.
/// A custom condenser (DC / DSA / DM) can be injected for the Table II
/// comparison; by default the DECO one-step condenser is used.
class DecoLearner : public OnDeviceLearner {
 public:
  DecoLearner(nn::ConvNet& model, DecoConfig config, uint64_t seed);
  DecoLearner(nn::ConvNet& model, DecoConfig config, uint64_t seed,
              std::unique_ptr<condense::Condenser> condenser);

  /// Initializes the buffer from the labeled pre-training data (the paper
  /// initializes it with offline-condensed labeled data; we warm-start from
  /// real labeled samples, the standard condensation initialization, then the
  /// stream refines them).
  void init_buffer_from(const data::Dataset& labeled);

  SegmentReport observe_segment(const Tensor& images) override;
  nn::ConvNet& model() override { return model_; }
  std::string name() const override;
  double condense_seconds() const override { return condense_seconds_; }
  /// Model parameters plus the synthetic buffer (and soft-label logits),
  /// counting the buffer at its stored (possibly quantized) size.
  int64_t memory_bytes() const override;
  int64_t cache_stored_bytes() const override;
  int64_t cache_logical_bytes() const override;
  void set_checkpoint_dtype(DType dtype) override {
    config_.storage.checkpoint_dtype = dtype;
  }

  condense::SyntheticBuffer& buffer() { return buffer_; }
  const DecoConfig& config() const { return config_; }
  int64_t segments_seen() const { return segments_seen_; }

  /// The numeric-health guard (quarantine/rollback/clip counters live in
  /// guard().stats()).
  NumericGuard& guard() { return guard_; }
  const NumericGuard& guard() const { return guard_; }

  /// Trains the deployed model on the current buffer (opt_θ(θ, S)); called
  /// automatically every β segments, exposed for final-update use.
  void update_model_now() override;

  bool supports_state() const override { return true; }
  /// Crash-safe persistence: saves model parameters, the synthetic buffer
  /// (images and, when enabled, soft-label logits), the stream position
  /// (segments_seen) and all rng/momentum state, so a killed run resumed via
  /// load_state replays the remaining stream bit-exactly. The file carries a
  /// CRC32 trailer and is written atomically (temp + rename).
  void save_state(const std::string& path) const override;
  /// Restores a save_state file. Architecture/shape mismatches, truncation
  /// and CRC failures throw deco::Error without modifying the learner.
  void load_state(const std::string& path) override;

 private:
  nn::ConvNet& model_;
  DecoConfig config_;
  Rng rng_;
  condense::SyntheticBuffer buffer_;
  std::unique_ptr<condense::Condenser> condenser_;
  NumericGuard guard_;
  int64_t segments_seen_ = 0;
  double condense_seconds_ = 0.0;
};

/// Shared model-update routine: SGD-with-momentum training of `model` on an
/// in-memory set of images/labels for `epochs` epochs. Used by DECO (training
/// on S) and by the replay baselines (training on their real-sample buffers).
/// When `guard` is given (and enabled), batches with non-finite loss or
/// gradients are skipped and exploding gradient norms are clipped.
void train_classifier(nn::ConvNet& model, const Tensor& images,
                      const std::vector<int64_t>& labels, int64_t epochs,
                      float lr, float weight_decay, int64_t batch_size,
                      Rng& rng, NumericGuard* guard = nullptr);

/// Soft-target variant: trains on class distributions (the learnable-soft-
/// label extension). `targets` is [N, num_classes].
void train_classifier_soft(nn::ConvNet& model, const Tensor& images,
                           const Tensor& targets, int64_t epochs, float lr,
                           float weight_decay, int64_t batch_size, Rng& rng,
                           NumericGuard* guard = nullptr);

}  // namespace deco::core
