// Numeric-health guards for the streaming pipeline.
//
// Dataset condensation is numerically fragile (DC-BENCH): one NaN frame from
// a faulty sensor, one exploding gradient-matching step, or one diverged
// model update can silently poison the synthetic buffer — the device's entire
// distilled memory. NumericGuard centralizes the defenses:
//
//   * segment screening — frames with non-finite pixels are quarantined
//     before they reach pseudo-labeling or condensation;
//   * loss/gradient checks during model updates — batches with non-finite
//     loss or gradients are skipped, exploding gradient norms are clipped;
//   * condensation step health — DecoCondenser snapshots the active buffer
//     rows before each matching step, and a diverged step (non-finite or
//     exploding distance, non-finite pixels) is rolled back and retried once
//     with backed-off step sizes.
//
// The guard is header-only so both deco_core (learner) and deco_condense
// (condensers, via CondenseContext) can use it without a link-layer cycle.
// All counters accumulate in GuardStats; DecoLearner surfaces per-segment
// deltas in SegmentReport and the experiment runner totals them in RunResult.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "deco/core/telemetry.h"
#include "deco/nn/module.h"
#include "deco/tensor/check.h"
#include "deco/tensor/tensor.h"

namespace deco::core {

/// Guard policy knobs. Thresholds set to 0 disable the individual check;
/// `enabled = false` turns the whole guard into a no-op.
struct GuardConfig {
  bool enabled = true;
  /// Model updates: global gradient-norm clip threshold (0 = no clipping).
  /// The default is generous on purpose: healthy training on this model
  /// family stays well below it, so clean-run trajectories are bit-identical
  /// with guards on or off; only genuine explosions get clipped. Tighten it
  /// when deploying behind noisier sensors.
  float max_grad_norm = 100.0f;
  /// Condensation: a matching distance above this is treated as divergence
  /// (the cosine-based distance is bounded by ~2 per pair; orders of
  /// magnitude above that means the forward pass overflowed). 0 disables.
  float max_condense_distance = 1e6f;
  /// Step-size multiplier for the single retry after a rolled-back step.
  float backoff = 0.5f;

  /// Throws deco::Error on out-of-range knobs.
  void validate() const {
    DECO_CHECK(max_grad_norm >= 0.0f, "GuardConfig: max_grad_norm < 0");
    DECO_CHECK(max_condense_distance >= 0.0f,
               "GuardConfig: max_condense_distance < 0");
    DECO_CHECK(backoff > 0.0f && backoff <= 1.0f,
               "GuardConfig: backoff must be in (0, 1]");
  }
};

/// Counts of guard interventions since construction (or the last reset).
struct GuardStats {
  int64_t frames_quarantined = 0;  ///< non-finite frames excluded upstream
  int64_t segments_skipped = 0;    ///< segments with zero usable frames
  int64_t steps_rolled_back = 0;   ///< diverged condensation steps undone
  int64_t batches_skipped = 0;     ///< model-update batches with bad loss/grad
  int64_t grads_clipped = 0;       ///< model-update norm clips applied
};

/// True when every element of `t` is finite.
inline bool all_finite(const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0, n = t.numel(); i < n; ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

/// Number of non-finite elements of `t`.
inline int64_t count_nonfinite(const Tensor& t) {
  const float* p = t.data();
  int64_t bad = 0;
  for (int64_t i = 0, n = t.numel(); i < n; ++i)
    if (!std::isfinite(p[i])) ++bad;
  return bad;
}

class NumericGuard {
 public:
  NumericGuard() = default;
  explicit NumericGuard(GuardConfig config) : config_(config) {
    config_.validate();
  }

  bool enabled() const { return config_.enabled; }
  const GuardConfig& config() const { return config_; }
  GuardStats& stats() { return stats_; }
  const GuardStats& stats() const { return stats_; }

  /// Screens a [S, C, H, W] segment: returns the indices of frames whose
  /// pixels are all finite, counting the rest as quarantined.
  std::vector<int64_t> screen_frames(const Tensor& images) {
    const int64_t s = images.ndim() > 0 ? images.dim(0) : 0;
    const int64_t per = s > 0 ? images.numel() / s : 0;
    std::vector<int64_t> finite;
    finite.reserve(static_cast<size_t>(s));
    const float* p = images.data();
    for (int64_t i = 0; i < s; ++i) {
      bool ok = true;
      for (int64_t j = 0; j < per; ++j) {
        if (!std::isfinite(p[i * per + j])) {
          ok = false;
          break;
        }
      }
      if (ok)
        finite.push_back(i);
      else
        ++stats_.frames_quarantined;
    }
    if (const int64_t bad = s - static_cast<int64_t>(finite.size()); bad > 0) {
      static telemetry::Counter& c =
          telemetry::counter("guard/frames_quarantined");
      c.add(bad);
    }
    return finite;
  }

  /// Model-update loss check. False → the caller must skip the batch.
  bool admit_loss(float loss) {
    if (std::isfinite(loss)) return true;
    ++stats_.batches_skipped;
    note_batch_skipped_telemetry();
    return false;
  }

  /// Model-update gradient check: returns false (caller skips the step) when
  /// any gradient is non-finite; otherwise clips the global norm to
  /// max_grad_norm (when positive) and returns true.
  bool admit_gradients(std::vector<nn::ParamRef> params) {
    double sq = 0.0;
    for (const nn::ParamRef& p : params)
      sq += static_cast<double>(p.grad->squared_norm());
    if (!std::isfinite(sq)) {
      ++stats_.batches_skipped;
      note_batch_skipped_telemetry();
      return false;
    }
    const double norm = std::sqrt(sq);
    if (config_.max_grad_norm > 0.0f &&
        norm > static_cast<double>(config_.max_grad_norm)) {
      const float scale =
          config_.max_grad_norm / static_cast<float>(norm);
      for (nn::ParamRef& p : params) p.grad->scale_(scale);
      ++stats_.grads_clipped;
      static telemetry::Counter& c = telemetry::counter("guard/grads_clipped");
      c.add(1);
    }
    return true;
  }

  /// Health verdict for one condensation step: the matching distance must be
  /// finite and below the explosion threshold.
  bool distance_healthy(float distance) const {
    if (!std::isfinite(distance)) return false;
    return config_.max_condense_distance <= 0.0f ||
           distance <= config_.max_condense_distance;
  }

  void note_rollback() {
    ++stats_.steps_rolled_back;
    static telemetry::Counter& c = telemetry::counter("guard/rollbacks");
    c.add(1);
  }
  void note_segment_skipped() {
    ++stats_.segments_skipped;
    static telemetry::Counter& c = telemetry::counter("guard/segments_skipped");
    c.add(1);
  }

 private:
  static void note_batch_skipped_telemetry() {
    static telemetry::Counter& c = telemetry::counter("guard/batches_skipped");
    c.add(1);
  }

  GuardConfig config_{};
  GuardStats stats_{};
};

}  // namespace deco::core
