// Runtime telemetry: a global metrics registry plus scoped tracing.
//
// Three primitives, all safe to call from any thread:
//
//   * Counters / gauges / histograms — named metrics registered once (the
//     registration interns the name and assigns shard slots under a mutex)
//     and updated lock-free afterwards: every update is ONE relaxed atomic
//     add into the calling thread's private shard, so instrumented hot loops
//     never contend. `snapshot()` merges the live shards plus the folded
//     totals of already-exited threads.
//
//   * Scoped spans — `DECO_TRACE_SCOPE("condense/match")` times the enclosing
//     block. Each completed span bumps the site's count/total-ns aggregate
//     (shard slots, same as counters) and appends one event to the calling
//     thread's fixed-size ring buffer. The rings export as Chrome
//     `trace_event` JSON (load in chrome://tracing or Perfetto); the
//     aggregates export as flat JSON alongside every other metric.
//
//   * Exporters — `snapshot()` (structured), `aggregate_json()` /
//     `write_chrome_trace()` (serialized), and an at-exit hook: set
//     `DECO_TELEMETRY_JSON=<path>` (aggregate) and/or
//     `DECO_TELEMETRY_TRACE=<path>` (Chrome trace) in the environment and the
//     process writes the files when it exits.
//
// Telemetry must never perturb the numerics it observes. Instrumentation only
// reads clocks and bumps integers — it never touches tensor data, rng
// streams, chunking decisions, or allocation order of the instrumented code —
// and tests/telemetry_determinism_test.cpp proves byte-identical learner
// results with telemetry on vs off at 1/2/4 threads. Two kill switches exist:
// `DECO_TELEMETRY=0` in the environment (or `set_enabled(false)`) makes every
// record call take one predicted-false branch and return; building with
// -DDECO_TELEMETRY_COMPILED=0 (CMake: -DDECO_TELEMETRY=OFF) folds `enabled()`
// to a compile-time constant so the optimizer deletes the record calls
// entirely. Registration still happens in both cases — handles stay valid,
// they just count nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "deco/core/workspace.h"

#ifndef DECO_TELEMETRY_COMPILED
#define DECO_TELEMETRY_COMPILED 1
#endif

namespace deco::core::telemetry {

namespace detail {

// Runtime master switch. Initialized from DECO_TELEMETRY before main (static
// initializer in telemetry.cpp); relaxed reads are enough because toggling is
// a test/benchmark affordance, not a synchronization point.
extern std::atomic<bool> g_enabled;

/// Registry-owned immutable histogram layout (stable address for the
/// lifetime of the process).
struct HistInfo {
  std::vector<int64_t> upper_edges;  ///< ascending; bucket i is v <= edge[i]
  uint32_t first_slot = 0;           ///< edges.size()+1 bucket-count slots
  uint32_t sum_slot = 0;             ///< running sum of observed values
};

void shard_add(uint32_t slot, int64_t delta);
void hist_observe(const HistInfo& info, int64_t value);
int64_t now_ns();  ///< steady-clock nanoseconds since process start
int32_t span_enter();  ///< bumps the thread's nesting depth, returns the old one

}  // namespace detail

/// True when telemetry is recording. Compiled out to a constant false when
/// DECO_TELEMETRY_COMPILED is 0.
inline bool enabled() {
#if DECO_TELEMETRY_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Runtime toggle (tests, overhead measurement). Updates made while disabled
/// are dropped, not buffered.
void set_enabled(bool on);

// ---- metric handles ---------------------------------------------------------

/// Monotonic counter. `add` is the hot-path operation: one branch + one
/// relaxed atomic add into the calling thread's shard.
class Counter {
 public:
  explicit Counter(uint32_t slot) : slot_(slot) {}
  void add(int64_t n = 1) {
    if (!enabled()) return;
    detail::shard_add(slot_, n);
  }

 private:
  uint32_t slot_;
};

/// Last-write-wins instantaneous value, plus a monotonic-max flavor for
/// high-water marks. Gauges are process-global (not sharded): a "current
/// value" has no meaningful per-thread merge.
class Gauge {
 public:
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  void set(int64_t v) {
    if (!enabled()) return;
    cell_->store(v, std::memory_order_relaxed);
  }
  void note_max(int64_t v) {
    if (!enabled()) return;
    int64_t cur = cell_->load(std::memory_order_relaxed);
    while (v > cur &&
           !cell_->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t>* cell_;
};

/// Fixed-bucket histogram of int64 values (nanoseconds, bytes, counts).
/// Bucket i counts v <= upper_edges[i] (first match); the final implicit
/// bucket counts everything above the last edge.
class Histogram {
 public:
  explicit Histogram(const detail::HistInfo* info) : info_(info) {}
  void observe(int64_t v) {
    if (!enabled()) return;
    detail::hist_observe(*info_, v);
  }

 private:
  const detail::HistInfo* info_;
};

/// Registers (or finds) a metric by name. Registration takes a mutex — call
/// once and keep the handle (function-local static at the instrumentation
/// site, or a cached member). Returned references live for the process.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
/// `upper_edges` must be ascending and non-empty; on re-registration of an
/// existing name the original edges win and the argument is ignored.
Histogram& histogram(std::string_view name, std::vector<int64_t> upper_edges);

// ---- scoped spans -----------------------------------------------------------

/// One instrumentation site: interned name plus its two aggregate slots.
struct SpanSite {
  const char* name = nullptr;  ///< interned, stable for the process lifetime
  uint32_t count_slot = 0;
  uint32_t ns_slot = 0;
};

/// Registers (or finds) a span site by name. Same cost model as counter().
SpanSite& span_site(std::string_view name);

/// RAII timer for one span. Captures the enabled state at construction so a
/// mid-span toggle cannot produce a half-recorded event.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) {
    if (!enabled()) return;
    site_ = &site;
    depth_ = detail::span_enter();
    start_ns_ = detail::now_ns();
  }
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_ = nullptr;
  int64_t start_ns_ = 0;
  int32_t depth_ = 0;
};

#define DECO_TELEM_CAT2(a, b) a##b
#define DECO_TELEM_CAT(a, b) DECO_TELEM_CAT2(a, b)

/// Times the rest of the enclosing block under `name` (a string literal or
/// other expression yielding a stable name). The site lookup runs once per
/// call site (function-local static); each execution costs two clock reads
/// and three shard adds when telemetry is on, one branch when it is off.
#define DECO_TRACE_SCOPE(name)                                        \
  static ::deco::core::telemetry::SpanSite& DECO_TELEM_CAT(           \
      deco_telem_site_, __LINE__) =                                   \
      ::deco::core::telemetry::span_site(name);                       \
  ::deco::core::telemetry::ScopedSpan DECO_TELEM_CAT(deco_telem_span_,\
                                                     __LINE__)(       \
      DECO_TELEM_CAT(deco_telem_site_, __LINE__))

// ---- snapshot & export ------------------------------------------------------

struct CounterValue {
  std::string name;
  int64_t value = 0;
};

struct GaugeValue {
  std::string name;
  int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::vector<int64_t> upper_edges;
  std::vector<int64_t> counts;  ///< upper_edges.size()+1 entries (last = overflow)
  int64_t sum = 0;
  int64_t count() const {
    int64_t n = 0;
    for (int64_t c : counts) n += c;
    return n;
  }
};

struct SpanAggregate {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
};

/// One completed span occurrence, for the Chrome trace export.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_ns = 0;   ///< start, steady-clock ns since process start
  int64_t dur_ns = 0;
  int32_t tid = 0;     ///< telemetry thread id (registration order)
  int32_t depth = 0;   ///< span nesting depth at entry (0 = outermost)
};

/// Point-in-time merge of every shard (live and retired). Values observed
/// with relaxed loads: exact once the writers are quiescent, momentarily
/// approximate while they are not.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SpanAggregate> spans;
  MemStatsSnapshot memstats;   ///< mirrored from core::memstats()
  WorkspaceStats workspace;    ///< mirrored from Workspace::aggregate()

  /// Value of a counter by name, 0 when absent (test convenience).
  int64_t counter_value(std::string_view name) const;
  /// Span aggregate by name, nullptr when absent.
  const SpanAggregate* span(std::string_view name) const;
};

Snapshot snapshot();

/// Completed span events from every ring buffer (live threads plus events
/// folded from exited threads), sorted by start time. Rings are fixed-size:
/// each thread keeps its most recent events and the export counts what was
/// overwritten (see dropped_events()).
std::vector<TraceEvent> trace_events();

/// Span events discarded so far because a thread's ring wrapped.
int64_t dropped_events();

/// Zeroes every metric, span aggregate and ring buffer. Registrations and
/// handles stay valid. Call only while instrumented code is quiescent —
/// concurrent updates may be lost, which is the point of a reset.
void reset();

/// Flat aggregate JSON of a snapshot: {"counters": {...}, "gauges": {...},
/// "histograms": {...}, "spans": {...}, "memstats": {...}, "workspace": ...}.
std::string aggregate_json(const Snapshot& snap);

/// snapshot() + aggregate_json() to a file. Throws deco::Error on I/O failure.
void write_aggregate_json(const std::string& path);

/// Chrome trace_event JSON ("X" complete events) of trace_events(). Throws
/// deco::Error on I/O failure.
void write_chrome_trace(const std::string& path);

}  // namespace deco::core::telemetry
