// Zero-allocation scratch memory for the numeric hot path.
//
// Two cooperating pieces live here:
//
//   * `Workspace` — a per-thread bump arena for raw float scratch (GEMM
//     packing panels, layer temporaries). Allocation is a pointer bump,
//     deallocation is scope exit; the backing blocks are kept for the life
//     of the thread, so steady-state kernels never touch the heap. Blocks
//     only grow (they are never reallocated), which keeps outstanding
//     pointers stable across later allocations in the same scope.
//
//   * `MemStats` — process-wide counters of hot-path heap traffic: every
//     workspace block acquisition and every tensor-storage pool miss (see
//     tensor/buffer_pool.h) bumps a counter. After warm-up a healthy
//     training loop holds `hot_allocs()` flat; bench/perf_smoke.cpp asserts
//     exactly that over a learner run, and the counters are cheap enough
//     (relaxed atomics) to stay on in production.
//
// The stats deliberately cover only the dominant allocation class — tensor
// data buffers and workspace blocks. Small metadata (shape vectors,
// std::function captures, index vectors) is out of scope: it is bounded,
// orders of magnitude smaller, and immaterial to allocator pressure.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace deco::core {

// ---- hot-path allocation counters -------------------------------------------

struct MemStatsSnapshot {
  int64_t tensor_heap_allocs = 0;  ///< tensor-storage pool misses (operator new)
  int64_t tensor_heap_bytes = 0;   ///< bytes acquired by those misses
  int64_t tensor_pool_hits = 0;    ///< tensor storages served from the pool
  int64_t workspace_blocks = 0;    ///< workspace arena growth events
  int64_t workspace_bytes = 0;     ///< bytes reserved by workspace arenas

  /// The number every steady-state hot loop should hold constant.
  int64_t hot_allocs() const { return tensor_heap_allocs + workspace_blocks; }
};

/// Delta between two snapshots (end - start), for gate checks of the form
/// "this loop performed zero hot allocations".
MemStatsSnapshot operator-(const MemStatsSnapshot& a, const MemStatsSnapshot& b);

/// Snapshot of the process-wide counters (monotonic since process start).
MemStatsSnapshot memstats();

/// Counters attributable to the CALLING THREAD only (monotonic since the
/// thread started). Gate checks should difference two of these instead of
/// two process-wide snapshots: a process-global delta can be poisoned by
/// unrelated allocations on other threads (telemetry exporters, test
/// harnesses, a second benchmark), a per-thread delta cannot.
MemStatsSnapshot memstats_this_thread();

// Counter hooks for the allocating subsystems (relaxed atomics; any thread).
void memstats_note_tensor_alloc(int64_t bytes);
void memstats_note_tensor_pool_hit();
void memstats_note_workspace_block(int64_t bytes);

// ---- workspace arena --------------------------------------------------------

/// Aggregate view over every live thread's arena.
struct WorkspaceStats {
  int64_t arenas = 0;            ///< live per-thread arenas
  int64_t bytes_reserved = 0;    ///< sum of block capacities
  int64_t high_water_bytes = 0;  ///< max bytes simultaneously in use (sum)
};

/// Per-thread scratch arena. Use through `Workspace::Scope`; direct
/// construction is for tests only. All sizes are in floats unless the name
/// says bytes; returned pointers are 64-byte aligned (SIMD/cacheline).
class Workspace {
 public:
  Workspace();
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (created on first use).
  static Workspace& tls();

  /// RAII allocation scope: everything allocated inside the scope is
  /// released when it exits, in LIFO order. Scopes nest freely — a kernel
  /// that opens a scope may call another kernel that opens its own.
  class Scope {
   public:
    Scope() : Scope(Workspace::tls()) {}
    explicit Scope(Workspace& ws) : ws_(ws), marker_(ws.mark()) {}
    ~Scope() { ws_.release(marker_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// `n` floats of 64-byte-aligned scratch, valid until the scope exits.
    float* alloc_floats(int64_t n) { return ws_.alloc(n); }

   private:
    struct Marker {
      size_t block = 0;
      int64_t offset = 0;
      int64_t in_use = 0;
    };
    friend class Workspace;
    Workspace& ws_;
    Marker marker_;
  };

  // ---- per-arena stats (this thread's arena) --------------------------------
  int64_t bytes_reserved() const { return bytes_reserved_.load(std::memory_order_relaxed); }
  int64_t bytes_in_use() const { return in_use_ * static_cast<int64_t>(sizeof(float)); }
  int64_t high_water_bytes() const { return high_water_.load(std::memory_order_relaxed); }

  /// Aggregated over every live thread arena.
  static WorkspaceStats aggregate();

 private:
  struct Block {
    float* data = nullptr;
    int64_t cap = 0;   // floats
    int64_t used = 0;  // floats
  };

  Scope::Marker mark() const;
  void release(const Scope::Marker& m);
  float* alloc(int64_t n);

  std::vector<Block> blocks_;
  size_t cur_ = 0;       // block currently bumping
  int64_t in_use_ = 0;   // floats outstanding across all blocks
  // Atomics so aggregate() may read them from another thread.
  std::atomic<int64_t> bytes_reserved_{0};
  std::atomic<int64_t> high_water_{0};
};

}  // namespace deco::core
