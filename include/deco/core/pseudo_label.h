// Majority-voting pseudo-label assignment (Section III-B, Eqs. 2–3).
//
// The deployed model assigns a pseudo-label and confidence to every sample of
// the incoming segment; a sliding window (sized to the segment, as in the
// paper) counts label frequencies, and classes whose frequency ratio exceeds
// the threshold m are "active". Samples whose pseudo-label is not active are
// discarded — temporal correlation makes minority labels within a window
// likely mislabelings.
#pragma once

#include <cstdint>
#include <vector>

#include "deco/nn/convnet.h"
#include "deco/tensor/tensor.h"

namespace deco::core {

struct PseudoLabelResult {
  std::vector<int64_t> labels;          ///< ŷ_i for every sample in the segment
  std::vector<float> confidences;       ///< p_θ(x_i)_{ŷ_i} — the Eq. 4 weights
  std::vector<int64_t> active_classes;  ///< C_t^A (Eq. 2)
  std::vector<int64_t> retained;        ///< indices of I_t^A within the segment
};

/// Labels a segment with `model` and applies majority voting with threshold
/// `m` (m = 0 keeps every sample; the paper's default is m = 0.4, meaning a
/// class must account for >40% of window predictions to be active).
PseudoLabelResult pseudo_label_segment(nn::ConvNet& model, const Tensor& images,
                                       float threshold_m);

/// Voting only (for tests / threshold sweeps): given precomputed labels,
/// returns the active classes under threshold m.
std::vector<int64_t> majority_vote(const std::vector<int64_t>& labels,
                                   int64_t num_classes, float threshold_m);

}  // namespace deco::core
