// Thread-pool parallelism with bitwise-deterministic reductions.
//
// The pool executes work as a fixed set of chunks whose boundaries depend
// ONLY on the iteration range and the grain size — never on the thread
// count. Chunks are claimed dynamically by workers, so scheduling is free to
// vary, but as long as
//   (a) each chunk writes a disjoint output range, or
//   (b) per-chunk partial results are merged in ascending chunk order
//       (parallel_reduce does this), or
//   (c) serial work is merely *reordered per independent output element*
//       without changing each element's accumulation order,
// the floating-point result is bitwise identical for every DECO_NUM_THREADS,
// including the serial fallback at threads=1. This is the contract every
// parallelized kernel in the library relies on; see docs/EXTENDING.md
// ("The threading model") before parallelizing a new op.
//
// Nested parallel regions degrade gracefully: a parallel_for issued from
// inside a pool task runs inline on the calling worker, so outer-level
// parallelism (e.g. per-seed evaluation fan-out) composes with the parallel
// tensor kernels without oversubscription or deadlock.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace deco::core {

class ThreadPool {
 public:
  /// Creates a pool that executes work on `threads` threads total: the
  /// calling thread plus `threads - 1` persistent workers. `threads <= 1`
  /// creates no workers (pure serial execution).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread).
  int threads() const { return static_cast<int>(workers_count_) + 1; }

  /// Executes task(c) for every chunk c in [0, num_chunks), distributing
  /// chunks over the workers and the calling thread; blocks until all chunks
  /// are done. Exceptions thrown by tasks are rethrown on the caller (first
  /// one wins). Called from inside a pool task, runs inline serially.
  void run(int64_t num_chunks, const std::function<void(int64_t)>& task);

  /// True when the current thread is executing a pool task (used to force
  /// nested parallel regions inline).
  static bool in_worker();

 private:
  struct Impl;
  Impl* impl_;           // pimpl keeps <thread>/<mutex> out of this header
  int64_t workers_count_;
};

/// The process-wide pool, created on first use. Its size comes from the
/// DECO_NUM_THREADS environment variable; unset or invalid values fall back
/// to std::thread::hardware_concurrency().
ThreadPool& global_pool();

/// Current global execution width.
int num_threads();

/// Rebuilds the global pool with `threads` threads (clamped to >= 1).
/// Intended for tests and benchmarks; must not race with in-flight parallel
/// work. Thread-count changes never change numeric results — that is the
/// whole point of the deterministic-chunking contract.
void set_num_threads(int threads);

/// Runs fn(chunk_begin, chunk_end) over [begin, end) in chunks of exactly
/// `grain` iterations (the final chunk may be short). Chunk boundaries are a
/// pure function of (begin, end, grain), so disjoint-write loops are bitwise
/// deterministic for any thread count. fn must not touch shared mutable
/// state outside its chunk's output range.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& fn);

/// Low-level form of parallel_for: executes task(chunk_index) for every
/// chunk in [0, num_chunks) on the global pool.
void run_chunks(int64_t num_chunks, const std::function<void(int64_t)>& task);

/// Deterministic parallel reduction: computes per-chunk partials with
/// chunk_fn(chunk_begin, chunk_end) and merges them in ascending chunk order
/// with merge(acc, partial). Because the chunking is fixed and the merge is
/// ordered, the result is bitwise identical for every thread count.
template <typename T, typename ChunkFn, typename MergeFn>
T parallel_reduce(int64_t begin, int64_t end, int64_t grain, T init,
                  const ChunkFn& chunk_fn, const MergeFn& merge) {
  static_assert(!std::is_same_v<T, bool>,
                "vector<bool> partials are bit-packed and would race across "
                "chunks; reduce over char or int instead");
  const int64_t n = end - begin;
  if (n <= 0) return init;
  const int64_t g = grain < 1 ? 1 : grain;
  const int64_t chunks = (n + g - 1) / g;
  std::vector<T> partials(static_cast<size_t>(chunks));
  run_chunks(chunks, [&](int64_t c) {
    const int64_t b = begin + c * g;
    const int64_t e = b + g < end ? b + g : end;
    partials[static_cast<size_t>(c)] = chunk_fn(b, e);
  });
  T acc = init;
  for (const T& p : partials) acc = merge(acc, p);
  return acc;
}

}  // namespace deco::core
