// DC-BENCH-style evaluation harness: scenario × method matrix runner.
//
// run_cell() executes ONE (scenario, method) pair end to end: build the
// world(s), pre-train one model per session, stack the scenario's decorator
// chain over each session's TemporalStream, replay the streams through a
// runtime::SessionManager following the scenario's arrival schedule (manual
// run_round() scheduling — no pump thread — so queue sheds are a pure
// function of the schedule), snapshot per-class accuracy for the forgetting
// meter, and emit one comparable row: accuracy, forgetting, peak pool bytes,
// shed segments, wall time.
//
// run_matrix() maps run_cell over the catalog and a method list; the report
// serializes to BENCH_scenarios.json (schema "deco.bench_scenarios.v2"), the
// per-PR tracked artifact. Every numeric field except wall_seconds is
// deterministic for a given seed at any DECO_NUM_THREADS;
// CellResult::deterministic_json() renders exactly that comparable subset so
// tests can memcmp whole cells across thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/scenario/scenario.h"

namespace deco::scenario {

/// Protocol knobs shared by every cell, so cells differ only by scenario and
/// method. Defaults are sized for minutes-scale matrices on one CPU core;
/// bench_scenarios scales them up under DECO_BENCH_SCALE=full.
struct HarnessOptions {
  /// Stream length override in segments (0 = the scenario's own
  /// stream.total_segments). This is the one protocol knob that rescales a
  /// whole matrix (bench_scenarios wires DECO_SEGMENTS into it).
  int64_t segments = 0;
  int64_t ipc = 4;                 ///< buffer images per class
  int64_t model_width = 16;
  int64_t model_depth = 2;
  int64_t pretrain_per_class = 4;  ///< labeled warm-start set size
  int64_t pretrain_epochs = 8;
  int64_t test_per_class = 12;
  int64_t model_update_epochs = 3;
  int64_t beta = 4;                ///< model update interval (segments)
  int64_t condenser_iterations = 2;
  /// Forgetting-snapshot cadence in drained segments (0 = auto: ~3 snapshots
  /// over the stream). The final state is always snapshotted.
  int64_t eval_every_segments = 0;
  /// When true and the method supports_state(), each session's save_state
  /// bytes are captured into CellResult::state_blobs (determinism audits).
  bool capture_state = false;
  uint64_t seed = 1;

  void validate() const;
};

/// One matrix cell: the comparable report row.
struct CellResult {
  std::string scenario;
  std::string method;
  int64_t sessions = 0;            ///< sessions the scenario *offered*
  /// Sessions the runtime's pool-budget admission accepted. Equal to
  /// `sessions` whenever the scenario leaves pool_budget_mb at 0; smaller in
  /// memory-pressure cells where admission rejects part of the fleet. Every
  /// per-session metric below averages over admitted sessions only.
  int64_t sessions_admitted = 0;
  std::string cache_dtype = "fp32";  ///< the scenario's cache storage dtype
  /// Summed cache bytes over admitted sessions, as stored (post-quantization)
  /// and as logical fp32 — their ratio is the compression the cell achieved.
  int64_t cache_stored_bytes = 0;
  int64_t cache_logical_bytes = 0;
  int64_t segments_submitted = 0;  ///< segments offered to the queues
  int64_t segments_processed = 0;  ///< segments the learners consumed
  int64_t segments_shed = 0;       ///< dropped by kShedOldest under bursts
  float accuracy = 0.0f;           ///< mean final test accuracy over sessions
  float forgetting = 0.0f;         ///< mean ForgettingTracker forgetting
  /// Pseudo-label accuracy vs. the (possibly noise-flipped) ground truth over
  /// every processed segment. Only measurable when no segment was shed
  /// (reports then align 1:1 with submissions); -1 under shedding.
  double pseudo_label_accuracy = -1.0;
  int64_t peak_pool_bytes = 0;     ///< peak summed learner memory_bytes
  double wall_seconds = 0.0;       ///< NOT deterministic; excluded below

  /// save_state bytes per session (only when HarnessOptions::capture_state
  /// and the learner supports_state). Not serialized into the report.
  std::vector<std::string> state_blobs;

  /// JSON object with every deterministic field (wall_seconds omitted),
  /// byte-stable for memcmp across DECO_NUM_THREADS.
  std::string deterministic_json() const;
};

struct MatrixReport {
  uint64_t seed = 1;
  int64_t threads = 1;
  std::vector<CellResult> cells;
};

/// Runs one (scenario, method) cell. Throws deco::Error on an invalid spec
/// or unknown method.
CellResult run_cell(const ScenarioSpec& spec, const std::string& method,
                    const HarnessOptions& options);

/// Runs the full cross product, in scenario-major order.
MatrixReport run_matrix(const std::vector<ScenarioSpec>& scenarios,
                        const std::vector<std::string>& methods,
                        const HarnessOptions& options);

/// Serializes a report as the BENCH_scenarios.json document (one row per
/// cell; wall_seconds included — consumers that diff across machines should
/// ignore it).
std::string matrix_json(const MatrixReport& report);
void write_matrix_json(const MatrixReport& report, const std::string& path);

}  // namespace deco::scenario
