// Declarative scenario catalog for the evaluation matrix.
//
// A ScenarioSpec names one deployment condition — which procedural world the
// sessions observe, how their streams are shaped, which decorators corrupt
// them (sensor faults, domain drift, label noise, class-incremental arrival),
// how segments *arrive* at the runtime's bounded queues (steady vs. bursty
// diurnal traffic), and whether the fleet is homogeneous or every session
// runs its own config/resolution. The catalog is data, not code: the harness
// (scenario/harness.h) interprets a spec identically for every method, which
// is what makes matrix cells comparable (the DC-BENCH discipline).
//
// Determinism contract: a scenario is a pure function of (spec, seed). All
// randomness flows through seeds derived from the cell seed, decorators draw
// from their own Rngs, and arrival patterns are fixed schedules — so any cell
// is byte-reproducible at any DECO_NUM_THREADS. The slow matrix test memcmps
// whole cells across thread counts to keep this true.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/data/decorators.h"
#include "deco/data/faults.h"
#include "deco/data/stream.h"
#include "deco/runtime/queue.h"
#include "deco/tensor/dtype.h"

namespace deco::scenario {

/// Per-session override for heterogeneous fleets. Zero means "use the
/// scenario/harness default". Sessions cycle through the variant list, so a
/// two-entry list alternates configurations across a four-session fleet.
struct SessionVariant {
  int64_t ipc = 0;         ///< condensed/replay images per class
  int64_t image_hw = 0;    ///< square resolution override (own world + test set)
  int64_t model_width = 0; ///< ConvNet width override
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::string dataset = "core50";  ///< world preset (data::*_spec())

  data::StreamConfig stream;       ///< per-session stream shape
  data::FaultConfig faults;        ///< sensor faults (defaults inject nothing)
  data::DriftConfig drift;         ///< domain drift (default off)
  data::LabelNoiseConfig label_noise;
  bool class_incremental = false;  ///< enable phased class arrival
  data::ClassIncrementalConfig phases;

  /// Arrival pattern against the per-session ingest queues. Steady arrival
  /// (burst_size == 0) submits one segment then drains. A bursty scenario
  /// submits `burst_size` segments back-to-back every `burst_every` arrival
  /// steps (the diurnal rush hour); with burst_size > queue_depth the
  /// kShedOldest policy must shed, and the harness reports how much.
  int64_t queue_depth = 8;
  runtime::OverflowPolicy overflow = runtime::OverflowPolicy::kBlock;
  int64_t burst_every = 0;  ///< 0 = steady arrival
  int64_t burst_size = 0;

  int64_t sessions = 1;
  std::vector<SessionVariant> variants;  ///< empty = homogeneous fleet

  /// Fleet memory budget in MiB for the runtime's admission control
  /// (0 = unbounded, the pre-existing behavior). A memory-pressure scenario
  /// sets this low enough that admission rejects part of the fleet; the
  /// harness records how many sessions actually got in (sessions_admitted).
  int64_t pool_budget_mb = 0;
  /// Storage dtype for every session's condensed/replay cache. Quantized
  /// caches report smaller memory_bytes(), so more sessions fit under the
  /// same pool budget — the trade the memory-pressure cells measure.
  DType cache_dtype = DType::kF32;

  /// Throws deco::Error on an inconsistent spec (e.g. a burst larger than
  /// the queue under kBlock, which would deadlock the single-producer
  /// harness).
  void validate() const;
};

/// The built-in catalog: clean, class_incremental, drift_abrupt,
/// drift_gradual, label_noise, faulty_sensors, bursty_shed, hetero_fleet,
/// mem_pressure_fp32, mem_pressure_int8.
std::vector<ScenarioSpec> builtin_scenarios();
std::vector<std::string> scenario_names();
/// Throws deco::Error naming the scenario when unknown.
ScenarioSpec scenario_by_name(const std::string& name);

/// Every method the matrix runs: DECO, the DC/DSA/DM condensation matchers
/// and the five replay baselines. (The "upper_bound" oracle is accepted by
/// the harness but excluded from the default matrix — it reads true labels,
/// so label-noise scenarios would measure the noise, not the method.)
std::vector<std::string> builtin_methods();

/// Dataset preset lookup ("icub1" | "core50" | "cifar100" | "imagenet10" |
/// "cifar10"); throws deco::Error naming the dataset when unknown.
data::DatasetSpec dataset_spec_by_name(const std::string& name);

}  // namespace deco::scenario
