// End-to-end experiment runner.
//
// Encapsulates the full evaluation protocol of Section IV-A: build a world,
// pre-train the model on a small labeled subset, replay an STC-controlled
// unlabeled stream through a learner (DECO, a replay baseline, a condensation
// baseline, or the unlimited upper bound), and measure accuracy on a held-out
// test set — optionally at fixed intervals for learning curves (Fig. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/baselines/replay.h"
#include "deco/core/learner.h"
#include "deco/data/faults.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"

namespace deco::eval {

/// Which learner drives the run.
/// "deco" | "random" | "fifo" | "selective_bp" | "kcenter" | "gss"
/// | "dc" | "dsa" | "dm" (condensation baselines inside the DECO pipeline)
/// | "mtt" (trajectory-matching extension) | "upper_bound".
struct RunConfig {
  std::string method = "deco";
  data::DatasetSpec spec;
  data::StreamConfig stream;
  int64_t ipc = 10;

  core::DecoConfig deco;            ///< used by deco/dc/dsa/dm
  condense::BilevelConfig bilevel;  ///< used by dc/dsa (dsa_strategy is set
                                    ///< automatically for method "dsa")
  baselines::BaselineConfig baseline;

  int64_t pretrain_per_class = 6;   ///< labeled warm-start set size
  int64_t pretrain_epochs = 30;
  int64_t test_per_class = 40;
  int64_t model_width = 32;
  int64_t model_depth = 3;

  /// Evaluate on the test set every this many segments (0 = final only).
  int64_t eval_every_segments = 0;

  /// Sensor-fault injection: when any rate is non-zero the stream is wrapped
  /// in a FaultyStream seeded from `seed`, so a faulty run is sample-paired
  /// with its clean counterpart (common random numbers).
  data::FaultConfig faults;

  uint64_t seed = 1;
};

struct CurvePoint {
  int64_t samples_seen = 0;
  float accuracy = 0.0f;
};

struct RunResult {
  float pretrain_accuracy = 0.0f;
  float final_accuracy = 0.0f;
  std::vector<CurvePoint> curve;
  double condense_seconds = 0.0;  ///< selection/condensation time (Table II)
  double total_seconds = 0.0;
  double pseudo_label_accuracy = 0.0;  ///< vs ground truth, over the stream
  double retention_rate = 0.0;         ///< fraction of samples kept by voting

  // Fault-tolerance accounting (0 unless faults/guards were active).
  data::FaultLog faults;               ///< what the injector actually did
  int64_t frames_quarantined = 0;      ///< non-finite frames excluded by guards
  int64_t segments_skipped = 0;        ///< segments with no usable frame
  int64_t steps_rolled_back = 0;       ///< diverged condensation steps undone
  int64_t batches_skipped = 0;         ///< model-update batches dropped
  int64_t grads_clipped = 0;           ///< gradient-norm clips
};

RunResult run_experiment(const RunConfig& config);

/// Convenience: runs `seeds` seeds (config.seed, +1, …) and collects final
/// accuracies.
std::vector<RunResult> run_seeds(RunConfig config, int64_t seeds);

}  // namespace deco::eval
