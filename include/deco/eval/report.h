// Markdown/CSV reporting helpers shared by the benchmark binaries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace deco::eval {

/// Simple Markdown table accumulator: set a header once, append rows, print.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a float with fixed precision.
std::string fmt(double value, int precision = 2);

/// Reads an environment knob with a default ("DECO_SEEDS", etc.).
int64_t env_int(const char* name, int64_t fallback);
std::string env_str(const char* name, const std::string& fallback);
/// True when DECO_BENCH_SCALE=full — benches then run at larger scale.
bool full_scale();

}  // namespace deco::eval
