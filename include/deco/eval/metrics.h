// Evaluation metrics: accuracy, confusion matrices, aggregation over seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deco/data/dataset.h"
#include "deco/nn/convnet.h"

namespace deco::eval {

/// Top-1 accuracy of `model` on `test`, evaluated in mini-batches.
float accuracy(nn::ConvNet& model, const data::Dataset& test,
               int64_t batch_size = 64);

/// counts[true][pred] over the test set.
std::vector<std::vector<int64_t>> confusion_matrix(nn::ConvNet& model,
                                                   const data::Dataset& test,
                                                   int64_t batch_size = 64);

/// For each class: the `k` most frequent *wrong* predictions, as
/// (class, fraction of that class's misclassifications) pairs, sorted
/// descending. Reproduces the analysis behind the paper's Fig. 2.
struct Misclassification {
  int64_t predicted_class;
  double fraction;
};
std::vector<std::vector<Misclassification>> top_misclassifications(
    const std::vector<std::vector<int64_t>>& confusion, int64_t k);

/// Per-class top-1 accuracy (percent), indexed by class id.
std::vector<float> per_class_accuracy(nn::ConvNet& model,
                                      const data::Dataset& test,
                                      int64_t batch_size = 64);

/// Catastrophic-forgetting meter (standard continual-learning definition):
/// after recording per-class accuracy snapshots a_{t,c} over the stream,
/// forgetting of class c is max_t a_{t,c} − a_{T,c} — how far the class fell
/// from its own best. mean_forgetting averages over classes that were ever
/// learned (peak accuracy > 0).
class ForgettingTracker {
 public:
  /// Records one snapshot of per-class accuracies.
  void record(const std::vector<float>& per_class);

  /// Mean forgetting over classes at the latest snapshot; 0 if fewer than two
  /// snapshots were recorded.
  float mean_forgetting() const;

  /// Per-class forgetting values at the latest snapshot.
  std::vector<float> per_class_forgetting() const;

  int64_t snapshots() const { return static_cast<int64_t>(history_.size()); }

 private:
  std::vector<std::vector<float>> history_;
};

/// Mean ± sample standard deviation over seeds.
struct Aggregate {
  float mean = 0.0f;
  float stddev = 0.0f;
};
Aggregate aggregate(const std::vector<float>& values);

/// Formats "12.34±0.56".
std::string format_aggregate(const Aggregate& a, int precision = 2);

}  // namespace deco::eval
