// Statistical utilities for experiment analysis.
//
// The effects the paper sweeps (e.g. Fig. 4b's ~1-point α effect) are small
// relative to seed-to-seed variance at reduced scale, so the bench harness
// needs more than mean ± std: numerically stable running moments (Welford),
// bootstrap confidence intervals, and *paired* comparisons that exploit the
// common-random-numbers design of the sweeps (same seeds across settings).
#pragma once

#include <cstdint>
#include <vector>

#include "deco/tensor/rng.h"

namespace deco::eval {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double value);
  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n−1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Standard error of the mean.
  double sem() const;

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile-bootstrap confidence interval for the mean.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                           int64_t resamples, Rng& rng);

/// Paired comparison of two equal-length result vectors (common seeds):
/// statistics of the per-seed differences b[i] − a[i].
struct PairedComparison {
  double mean_diff = 0.0;     ///< mean of b − a
  double stddev_diff = 0.0;   ///< sample std of the differences
  double sem_diff = 0.0;
  int64_t wins = 0;           ///< #i with b[i] > a[i]
  int64_t losses = 0;         ///< #i with b[i] < a[i]
  int64_t ties = 0;
  /// mean_diff / sem_diff — a t-like signal-to-noise score (|t| ≳ 2 suggests
  /// a real effect at typical seed counts).
  double t_statistic = 0.0;
};
PairedComparison paired_compare(const std::vector<double>& a,
                                const std::vector<double>& b);

/// Median of a vector (by copy; empty → 0).
double median(std::vector<double> values);

}  // namespace deco::eval
