// Replay-based on-device learning baselines (Section IV-A2 of the paper).
//
// All five maintain a class-balanced buffer of *real* samples (ipc slots per
// class, matching the synthetic buffer's footprint) and differ only in the
// replacement policy when a class slot is full:
//
//   * Random       — per-class reservoir sampling (Vitter).
//   * FIFO         — replace the oldest stored sample.
//   * Selective-BP — retain low-confidence samples (Jiang et al.): a new
//                    sample displaces the most-confident stored one if its
//                    own confidence is lower.
//   * K-Center     — greedy core-set cover in the encoder's feature space
//                    (Sener & Savarese): keep the subset whose max distance
//                    to the nearest kept sample is minimized greedily.
//   * GSS-Greedy   — gradient-based sample selection (Aljundi et al.): score
//                    samples by the maximum cosine similarity of their
//                    last-layer loss gradient to stored gradients; prefer
//                    diverse (low-similarity) samples.
//
// In the paper's unlabeled streaming setting, baselines receive the same
// model-predicted pseudo-labels DECO starts from (majority voting is part of
// DECO's contribution and is not granted to the baselines).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deco/core/learner.h"
#include "deco/data/dataset.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/rng.h"

namespace deco::baselines {

enum class Strategy {
  kRandom,
  kFifo,
  kSelectiveBp,
  kKCenter,
  kGssGreedy,
};

std::string strategy_name(Strategy s);
/// Parses "random" / "fifo" / "selective_bp" / "kcenter" / "gss".
Strategy strategy_from_name(const std::string& name);

struct BaselineConfig {
  int64_t ipc = 10;
  int64_t beta = 10;                 ///< model update interval (segments)
  int64_t model_update_epochs = 30;  ///< matches the DECO learner's schedule
  float lr_model = 1e-3f;
  float weight_decay = 5e-4f;
  int64_t train_batch = 32;
  StoragePolicy storage;             ///< replay-row dtype (deco.cache_dtype)
};

/// One stored sample plus the metadata the strategies score with.
///
/// Under a non-fp32 buffer policy the pixels live in `stored` (quantized)
/// and `image` is empty; training decodes on access. The feature/gradient
/// sketches stay fp32: the replacement strategies score with them
/// continuously and quantizing them would change eviction decisions, which
/// is a policy question, not a storage one.
struct StoredSample {
  Tensor image;
  int64_t label = 0;
  float confidence = 1.0f;
  int64_t arrival = 0;        ///< global arrival index (FIFO age)
  Tensor feature;             ///< encoder embedding (K-Center)
  Tensor gradient;            ///< last-layer gradient sketch (GSS)
  QTensor stored;             ///< quantized pixels (non-fp32 policy only)
};

/// Class-balanced replay buffer with pluggable replacement policy.
class ReplayBuffer {
 public:
  ReplayBuffer(int64_t num_classes, int64_t ipc, Strategy strategy,
               DType dtype = DType::kF32, int64_t block = kDefaultQuantBlock);

  /// Offers one sample; the strategy decides whether and where it is stored.
  /// Under a quantized policy the pixels are encoded here — rejected samples
  /// never hold fp32 pixel copies either.
  void offer(StoredSample sample, Rng& rng);

  int64_t num_classes() const { return num_classes_; }
  int64_t ipc() const { return ipc_; }
  int64_t size() const;
  DType storage_dtype() const { return dtype_; }

  /// Flattens the buffer into training tensors, decoding quantized rows.
  Tensor all_images() const;
  std::vector<int64_t> all_labels() const;

  /// Bytes the stored pixel rows occupy as stored vs as logical fp32
  /// (sketches and metadata excluded).
  int64_t image_stored_bytes() const;
  int64_t image_logical_bytes() const;

  const std::vector<StoredSample>& slot(int64_t cls) const {
    return slots_[static_cast<size_t>(cls)];
  }

 private:
  int64_t num_classes_, ipc_;
  Strategy strategy_;
  DType dtype_;
  int64_t block_;
  std::vector<std::vector<StoredSample>> slots_;
  std::vector<int64_t> seen_per_class_;  // reservoir counters
};

/// Streaming learner wrapping a ReplayBuffer — the baseline counterpart of
/// DecoLearner, sharing its pseudo-labeling and model-update schedule.
class BaselineLearner : public core::OnDeviceLearner {
 public:
  BaselineLearner(nn::ConvNet& model, Strategy strategy, BaselineConfig config,
                  uint64_t seed);

  /// Seeds the buffer with labeled pre-training samples (same warm start as
  /// the DECO buffer).
  void init_buffer_from(const data::Dataset& labeled);

  core::SegmentReport observe_segment(const Tensor& images) override;
  nn::ConvNet& model() override { return model_; }
  std::string name() const override { return strategy_name(strategy_); }
  double condense_seconds() const override { return select_seconds_; }
  /// Retrains the deployed model on the current replay buffer (the same
  /// routine the β-schedule triggers; no-op while the buffer is empty).
  void update_model_now() override;
  /// Model parameters plus every stored sample (image rows at their stored
  /// size, feature and gradient sketches as fp32).
  int64_t memory_bytes() const override;
  int64_t cache_stored_bytes() const override {
    return buffer_.image_stored_bytes();
  }
  int64_t cache_logical_bytes() const override {
    return buffer_.image_logical_bytes();
  }

  ReplayBuffer& buffer() { return buffer_; }

 private:
  nn::ConvNet& model_;
  Strategy strategy_;
  BaselineConfig config_;
  Rng rng_;
  ReplayBuffer buffer_;
  int64_t segments_seen_ = 0;
  int64_t arrivals_ = 0;
  double select_seconds_ = 0.0;
};

/// Upper-bound learner: unlimited buffer that stores every streamed sample.
/// Reported as "Upper Bound" in Table I. Used through
/// observe_labeled_segment it is an ORACLE (ground-truth labels, unlimited
/// memory) — a true upper bound on what any buffered method could reach;
/// observe_segment falls back to pseudo-labels for API compatibility.
class UnlimitedLearner : public core::OnDeviceLearner {
 public:
  UnlimitedLearner(nn::ConvNet& model, BaselineConfig config, uint64_t seed);

  void init_buffer_from(const data::Dataset& labeled);
  core::SegmentReport observe_segment(const Tensor& images) override;
  /// Oracle variant: stores the segment with its ground-truth labels.
  core::SegmentReport observe_labeled_segment(
      const Tensor& images, const std::vector<int64_t>& true_labels) override;
  nn::ConvNet& model() override { return model_; }
  std::string name() const override { return "upper_bound"; }
  double condense_seconds() const override { return 0.0; }
  /// Retrains on everything stored so far (no-op while nothing is stored).
  void update_model_now() override;
  /// Model parameters plus every stored sample (unbounded by design; rows
  /// count at their stored, possibly quantized, size).
  int64_t memory_bytes() const override;
  int64_t cache_stored_bytes() const override;
  int64_t cache_logical_bytes() const override;

  int64_t stored() const { return static_cast<int64_t>(labels_.size()); }

 private:
  core::SegmentReport store_and_train(const Tensor& images,
                                      const std::vector<int64_t>& labels,
                                      const core::PseudoLabelResult& pl);
  void store_image(const Tensor& img);
  Tensor stacked_images() const;

  nn::ConvNet& model_;
  BaselineConfig config_;
  Rng rng_;
  std::vector<Tensor> images_;     // fp32 policy
  std::vector<QTensor> qimages_;   // quantized policy
  std::vector<int64_t> labels_;
  int64_t segments_seen_ = 0;
};

}  // namespace deco::baselines
