// Visualize what condensation learns: run a short DECO stream, then dump the
// synthetic buffer images (and, for contrast, one real example per class) as
// PPM files — the standard qualitative artifact of dataset-condensation
// papers. Open the files with any image viewer:
//
//   ./build/examples/visualize_buffer /tmp/deco_buffer
//   feh /tmp/deco_buffer   # or: convert class0_slot0.ppm out.png
#include <cstdio>
#include <string>

#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"
#include "deco/tensor/serialize.h"

using namespace deco;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp/deco_buffer";

  data::ProceduralImageWorld world(data::icub1_spec(), 31);
  data::Dataset labeled = world.make_labeled_set(6, 1);
  data::Dataset test = world.make_test_set(25, 2);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 32;
  mc.depth = 3;
  Rng rng(1);
  nn::ConvNet model(mc, rng);
  std::vector<int64_t> all(static_cast<size_t>(labeled.size()));
  for (int64_t i = 0; i < labeled.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, labeled.batch(all), labeled.labels(), 20,
                         1e-3f, 5e-4f, 32, rng);

  core::DecoConfig cfg;
  cfg.ipc = 3;
  cfg.beta = 4;
  cfg.model_update_epochs = 8;
  core::DecoLearner learner(model, cfg, 2);
  learner.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 32;
  sc.segment_size = 32;
  sc.total_segments = 8;
  data::TemporalStream stream(world, sc, 3);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);

  std::printf("accuracy after stream: %.1f%%\n", eval::accuracy(model, test));

  // Real reference frame + all synthetic slots, per class.
  auto& buf = learner.buffer();
  int written = 0;
  for (int64_t cls = 0; cls < 10; ++cls) {
    write_ppm(out_dir + "/class" + std::to_string(cls) + "_real.ppm",
              world.render(cls, 0, 0, 0));
    ++written;
    for (int64_t k = 0; k < buf.ipc(); ++k) {
      const int64_t row = cls * buf.ipc() + k;
      Tensor img = buf.gather({row}).reshaped({3, 16, 16});
      write_ppm(out_dir + "/class" + std::to_string(cls) + "_syn" +
                    std::to_string(k) + ".ppm",
                img);
      ++written;
    }
  }
  std::printf("wrote %d PPM images to %s\n", written, out_dir.c_str());
  std::printf("(class<k>_real.ppm = a real frame; class<k>_syn<j>.ppm = the "
              "condensed buffer slots)\n");
  return 0;
}
