// Quickstart: the smallest end-to-end DECO loop.
//
// 1. Build a procedural CORe50-like world and pre-train a ConvNet on a tiny
//    labeled subset (the "before deployment" phase).
// 2. Stream unlabeled, temporally-correlated segments through a DecoLearner:
//    each segment is pseudo-labeled, majority-voted, and condensed into the
//    synthetic buffer; the model retrains on the buffer every β segments.
// 3. Report accuracy before and after on-device learning.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  // --- 1. world, data, pre-trained model -----------------------------------
  data::ProceduralImageWorld world(data::core50_spec(), /*seed=*/7);
  data::Dataset labeled = world.make_labeled_set(/*frames_per_class=*/6, 1);
  data::Dataset test = world.make_test_set(/*frames_per_class=*/30, 2);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = world.spec().num_classes;
  mc.width = 32;
  mc.depth = 3;
  Rng rng(1);
  nn::ConvNet model(mc, rng);

  std::vector<int64_t> all(static_cast<size_t>(labeled.size()));
  for (int64_t i = 0; i < labeled.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, labeled.batch(all), labeled.labels(),
                         /*epochs=*/20, /*lr=*/1e-3f, /*weight_decay=*/5e-4f,
                         /*batch=*/32, rng);
  std::printf("pre-deployment accuracy: %.1f%%\n",
              eval::accuracy(model, test));

  // --- 2. on-device learning with DECO --------------------------------------
  core::DecoConfig cfg;           // paper defaults: m=0.4, L=10, α=0.1, τ=0.07
  cfg.ipc = 10;                   // 10 synthetic images per class
  cfg.beta = 5;                   // retrain the model every 5 segments
  cfg.model_update_epochs = 10;
  core::DecoLearner learner(model, cfg, /*seed=*/2);
  learner.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 32;                    // temporal correlation: ~32 frames per object
  sc.segment_size = 32;
  sc.total_segments = 10;
  data::TemporalStream stream(world, sc, /*seed=*/3);

  data::Segment seg;
  while (stream.next(seg)) {
    core::SegmentReport rep = learner.observe_segment(seg.images);
    std::printf("segment %2lld: %2zu/%lld samples kept, %lld active classes, "
                "matching distance %.2f\n",
                static_cast<long long>(stream.segments_emitted()),
                rep.retained.size(),
                static_cast<long long>(sc.segment_size),
                static_cast<long long>(rep.active_class_count),
                rep.condense_distance);
  }

  // --- 3. results ------------------------------------------------------------
  std::printf("post-stream accuracy:    %.1f%%\n",
              eval::accuracy(model, test));
  std::printf("buffer: %lld synthetic images (%lld classes x IpC %lld), "
              "condensation took %.1fs total\n",
              static_cast<long long>(learner.buffer().size()),
              static_cast<long long>(learner.buffer().num_classes()),
              static_cast<long long>(learner.buffer().ipc()),
              learner.condense_seconds());
  return 0;
}
