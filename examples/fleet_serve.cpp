// Multi-session serving: one device process hosting several independent
// on-device learners at once — the "home with four robot cameras" scenario.
// Each camera is a session with its own DECO learner, bounded ingest queue
// and temporally-correlated stream; a deficit-round-robin scheduler shares
// the thread pool between them, and the runtime guarantees each session's
// results are byte-identical to running it alone (see docs/EXTENDING.md §8).
//
// The Fleet helper wires the standard deployment; this example then pokes at
// the runtime surface you would use in a real integration: per-session
// status, queue stats, checkpoint locations, and the memory budget.
//
// Build & run:  ./build/examples/fleet_serve
#include <cstdio>

#include "deco/runtime/fleet.h"

using namespace deco;

int main() {
  runtime::FleetConfig fc;
  fc.sessions = 4;
  fc.spec = data::core50_spec();
  fc.stream.stc = 16;
  fc.stream.segment_size = 16;
  fc.stream.total_segments = 4;
  fc.deco.ipc = 2;
  fc.deco.beta = 4;
  fc.deco.model_update_epochs = 2;
  fc.deco.train_batch = 16;
  fc.deco.condenser.iterations = 2;
  fc.labeled_per_class = 2;
  fc.runtime.queue_depth = 4;          // bounded ingest: at most 4 segments
  fc.runtime.overflow = runtime::OverflowPolicy::kBlock;  // backpressure

  std::printf("serving %lld sessions (%s, %lld segments each)...\n",
              static_cast<long long>(fc.sessions), fc.spec.name.c_str(),
              static_cast<long long>(fc.stream.total_segments));

  runtime::Fleet fleet(fc);
  const runtime::FleetResult r = fleet.run();

  std::printf("\n%-10s %-12s %10s %8s %6s %9s\n", "session", "state",
              "processed", "failed", "shed", "maxdepth");
  for (const runtime::SessionStatus& s : r.sessions)
    std::printf("%-10s %-12s %10lld %8lld %6lld %9lld\n", s.name.c_str(),
                runtime::session_state_name(s.state).c_str(),
                static_cast<long long>(s.segments_processed),
                static_cast<long long>(s.segments_failed),
                static_cast<long long>(s.queue.shed),
                static_cast<long long>(s.queue.max_depth));

  std::printf("\n%lld segments in %.2f s (%.1f segments/s aggregate)\n",
              static_cast<long long>(r.segments_processed), r.seconds,
              r.segments_per_second);
  std::printf(
      "per-session results are byte-identical to running each session "
      "alone,\nat any DECO_NUM_THREADS — tests/runtime_stress_test.cpp "
      "proves it.\n");
  return 0;
}
