// Memory-budget explorer: how much accuracy does each extra buffer slot buy?
//
// Edge deployments pick a buffer size from a RAM budget. This example sweeps
// IpC ∈ {1, 2, 5, 10} on the iCub1-style stream, reporting buffer bytes,
// final accuracy for DECO and the best selection baseline, and the marginal
// accuracy per additional kilobyte — the deployment-facing view of Table I's
// "DECO helps most when memory is scarcest" result.
//
// Build & run:  ./build/examples/memory_budget
#include <cstdio>

#include "deco/eval/metrics.h"
#include "deco/eval/runner.h"

using namespace deco;

int main() {
  const data::DatasetSpec spec = data::icub1_spec();

  eval::RunConfig base;
  base.spec = spec;
  base.stream.stc = 32;
  base.stream.segment_size = 32;
  base.stream.total_segments = 8;
  base.deco.beta = 4;
  base.deco.model_update_epochs = 8;
  base.baseline.beta = 4;
  base.baseline.model_update_epochs = 8;
  base.pretrain_per_class = 6;
  base.pretrain_epochs = 20;
  base.test_per_class = 25;
  base.seed = 9;

  const int64_t bytes_per_image = 3 * 16 * 16 * 4;  // float RGB 16×16
  std::printf("%5s  %10s  %9s  %9s  %s\n", "IpC", "buffer", "DECO",
              "Selective-BP", "note");

  float prev_deco = -1.0f;
  int64_t prev_bytes = 0;
  for (int64_t ipc : {1, 2, 5, 10}) {
    eval::RunConfig deco_cfg = base;
    deco_cfg.method = "deco";
    deco_cfg.ipc = ipc;
    const float deco_acc = eval::run_experiment(deco_cfg).final_accuracy;

    eval::RunConfig bl_cfg = base;
    bl_cfg.method = "selective_bp";
    bl_cfg.ipc = ipc;
    const float bl_acc = eval::run_experiment(bl_cfg).final_accuracy;

    const int64_t bytes = ipc * spec.num_classes * bytes_per_image;
    char note[96] = "";
    if (prev_deco >= 0.0f) {
      const double per_kb = (deco_acc - prev_deco) /
                            (static_cast<double>(bytes - prev_bytes) / 1024.0);
      std::snprintf(note, sizeof(note), "+%.2f%% per extra KiB", per_kb);
    }
    std::printf("%5lld  %7.1f KiB  %8.1f%%  %8.1f%%  %s\n",
                static_cast<long long>(ipc),
                static_cast<double>(bytes) / 1024.0, deco_acc, bl_acc, note);
    prev_deco = deco_acc;
    prev_bytes = bytes;
  }
  return 0;
}
