// Offline dataset condensation: the classic setting that motivates the paper
// (e.g. "97.4% on MNIST from 100 synthetic images"). No streaming, no pseudo-
// labels — just distill a labeled dataset into IpC synthetic images per class
// with one-step gradient matching, then compare training a fresh model on:
//
//   (a) the full labeled set,
//   (b) a random real subset of the same size as the condensed set,
//   (c) the condensed synthetic set.
//
// The condensed set should beat the same-size random subset. (On these
// procedural worlds the margin is modest: classes are clean enough that a
// random subset is already fairly representative — real photo datasets leave
// much more room for condensation, which is where DC's headline numbers
// come from.)
//
// Build & run:  ./build/examples/offline_condensation
#include <cmath>
#include <cstdio>

#include "deco/condense/buffer.h"
#include "deco/condense/matcher.h"
#include "deco/core/learner.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"
#include "deco/tensor/ops.h"

using namespace deco;

namespace {

float train_fresh_and_eval(const nn::ConvNetConfig& mc, const Tensor& images,
                           const std::vector<int64_t>& labels,
                           const data::Dataset& test, int64_t epochs,
                           uint64_t seed) {
  Rng rng(seed);
  nn::ConvNet model(mc, rng);
  core::train_classifier(model, images, labels, epochs, 1e-3f, 5e-4f, 32, rng);
  return eval::accuracy(model, test);
}

}  // namespace

int main() {
  data::ProceduralImageWorld world(data::icub1_spec(), 11);
  data::Dataset train = world.make_labeled_set(/*frames_per_class=*/30, 1);
  data::Dataset test = world.make_test_set(30, 2);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 32;
  mc.depth = 3;

  const int64_t kIpc = 5;
  std::printf("condensing %lld labeled images into %lld synthetic (IpC=%lld)\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(10 * kIpc), static_cast<long long>(kIpc));

  // --- condense: one-step gradient matching over many random models ---------
  Rng rng(3);
  condense::SyntheticBuffer buffer(10, kIpc, 3, 16, 16);
  buffer.init_from_dataset(train, rng);
  nn::ConvNet scratch(mc, rng);
  condense::GradientMatcher matcher(scratch);

  Tensor velocity(buffer.images().shape());
  const int64_t kSteps = 60;
  for (int64_t step = 0; step < kSteps; ++step) {
    scratch.reinitialize(rng);
    // Per-class matching against a fresh random real batch, as in DC.
    for (int64_t cls = 0; cls < 10; ++cls) {
      auto pool = train.indices_of_class(cls);
      rng.shuffle(pool);
      pool.resize(std::min<size_t>(pool.size(), 16));
      Tensor x_real = train.batch(pool);
      std::vector<int64_t> y_real(pool.size(), cls);

      const auto rows = buffer.rows_of_class(cls);
      Tensor x_syn = buffer.gather(rows);
      auto res = matcher.match(x_syn, buffer.gather_labels(rows), x_real,
                               y_real, {});
      // RMS-normalize so the learning rate is a per-pixel step (the raw
      // cosine-distance gradient varies by orders of magnitude across random
      // models; see DESIGN.md 4.a).
      const float rms = res.grad_syn.norm() /
                        std::sqrt(static_cast<float>(res.grad_syn.numel()));
      if (rms > 1e-12f) res.grad_syn.scale_(1.0f / rms);
      buffer.grads().zero();
      buffer.scatter_add_grad(rows, res.grad_syn, 1.0f);
      // momentum SGD on this class's rows
      const int64_t per = 3 * 16 * 16;
      for (int64_t r : rows) {
        for (int64_t j = 0; j < per; ++j) {
          float& v = velocity[r * per + j];
          v = 0.5f * v + buffer.grads()[r * per + j];
          buffer.images()[r * per + j] -= 0.003f * v;
        }
      }
      buffer.clamp_pixels();
    }
    if ((step + 1) % 20 == 0)
      std::printf("  matching step %lld/%lld\n",
                  static_cast<long long>(step + 1),
                  static_cast<long long>(kSteps));
  }

  // --- evaluate the three training sets --------------------------------------
  const int64_t kEpochs = 60;

  std::vector<int64_t> all(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) all[static_cast<size_t>(i)] = i;
  const float acc_full = train_fresh_and_eval(mc, train.batch(all),
                                              train.labels(), test, 20, 100);

  Rng pick(5);
  std::vector<int64_t> subset;
  for (int64_t cls = 0; cls < 10; ++cls) {
    auto pool = train.indices_of_class(cls);
    pick.shuffle(pool);
    for (int64_t k = 0; k < kIpc; ++k) subset.push_back(pool[static_cast<size_t>(k)]);
  }
  const float acc_random = train_fresh_and_eval(
      mc, train.batch(subset), train.batch_labels(subset), test, kEpochs, 100);

  const float acc_condensed = train_fresh_and_eval(
      mc, buffer.images(), buffer.labels(), test, kEpochs, 100);

  std::printf("\naccuracy of a fresh model trained on:\n");
  std::printf("  full data   (%3lld imgs): %5.1f%%\n",
              static_cast<long long>(train.size()), acc_full);
  std::printf("  random IpC=%lld (%3lld imgs): %5.1f%%\n",
              static_cast<long long>(kIpc),
              static_cast<long long>(subset.size()), acc_random);
  std::printf("  condensed IpC=%lld (%3lld imgs): %5.1f%%\n",
              static_cast<long long>(kIpc),
              static_cast<long long>(buffer.size()), acc_condensed);
  return 0;
}
