// Streaming-robot scenario: the motivating deployment of the paper — a robot
// camera produces a long, temporally-correlated video stream of household
// objects across different rooms (CORe50-style: 10 classes, 11 environments),
// with no labels and each frame seen once.
//
// This example runs DECO and the two strongest selection baselines (FIFO,
// Selective-BP) side by side on the SAME stream with a tight buffer of one
// image per class, printing a live accuracy race — the Fig. 3 experience in
// miniature.
//
// Build & run:  ./build/examples/streaming_robot
#include <cstdio>
#include <memory>
#include <vector>

#include "deco/baselines/replay.h"
#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"

using namespace deco;

int main() {
  data::ProceduralImageWorld world(data::core50_spec(), 21);
  data::Dataset labeled = world.make_labeled_set(6, 1);
  data::Dataset test = world.make_test_set(30, 2);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 32;
  mc.depth = 3;

  // One independently pre-trained model per learner, identical weights.
  Rng rng(4);
  nn::ConvNet proto(mc, rng);
  std::vector<int64_t> all(static_cast<size_t>(labeled.size()));
  for (int64_t i = 0; i < labeled.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(proto, labeled.batch(all), labeled.labels(), 20,
                         1e-3f, 5e-4f, 32, rng);

  auto m_deco = nn::clone_convnet(proto);
  auto m_fifo = nn::clone_convnet(proto);
  auto m_sbp = nn::clone_convnet(proto);

  const int64_t kIpc = 1;  // strictest buffer: ONE image per class
  core::DecoConfig dc;
  dc.ipc = kIpc;
  dc.beta = 4;
  dc.model_update_epochs = 10;
  core::DecoLearner deco(*m_deco, dc, 5);
  deco.init_buffer_from(labeled);

  baselines::BaselineConfig bc;
  bc.ipc = kIpc;
  bc.beta = 4;
  bc.model_update_epochs = 10;
  baselines::BaselineLearner fifo(*m_fifo, baselines::Strategy::kFifo, bc, 6);
  fifo.init_buffer_from(labeled);
  baselines::BaselineLearner sbp(*m_sbp, baselines::Strategy::kSelectiveBp, bc,
                                 7);
  sbp.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 32;
  sc.segment_size = 32;
  sc.total_segments = 12;
  data::TemporalStream stream(world, sc, 8);

  std::printf("buffer budget: %lld samples total (IpC=1, 10 classes)\n",
              static_cast<long long>(kIpc * 10));
  std::printf("%8s  %8s  %8s  %8s\n", "samples", "DECO", "FIFO", "Sel-BP");
  std::printf("%8s  %7.1f%%  %7.1f%%  %7.1f%%   (pre-deployment)\n", "0",
              eval::accuracy(*m_deco, test), eval::accuracy(*m_fifo, test),
              eval::accuracy(*m_sbp, test));

  data::Segment seg;
  while (stream.next(seg)) {
    deco.observe_segment(seg.images);
    fifo.observe_segment(seg.images);
    sbp.observe_segment(seg.images);
    if (stream.segments_emitted() % 4 == 0) {
      std::printf("%8lld  %7.1f%%  %7.1f%%  %7.1f%%\n",
                  static_cast<long long>(stream.samples_emitted()),
                  eval::accuracy(*m_deco, test), eval::accuracy(*m_fifo, test),
                  eval::accuracy(*m_sbp, test));
    }
  }
  std::printf("\nDECO condensation time: %.1fs — the price of not throwing "
              "information away.\n",
              deco.condense_seconds());
  return 0;
}
