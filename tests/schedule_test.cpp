#include "deco/nn/schedule.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"

namespace deco::nn {
namespace {

TEST(CosineScheduleTest, EndpointsAndMidpoint) {
  CosineSchedule s(1.0f, 100, 0.0f);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_NEAR(s.at(50), 0.5f, 1e-5f);
  EXPECT_NEAR(s.at(100), 0.0f, 1e-6f);
}

TEST(CosineScheduleTest, RespectsMinLr) {
  CosineSchedule s(1.0f, 10, 0.2f);
  EXPECT_NEAR(s.at(10), 0.2f, 1e-6f);
  for (int i = 0; i <= 10; ++i) {
    EXPECT_GE(s.at(i), 0.2f - 1e-6f);
    EXPECT_LE(s.at(i), 1.0f + 1e-6f);
  }
}

TEST(CosineScheduleTest, MonotoneNonIncreasing) {
  CosineSchedule s(0.5f, 37);
  float prev = s.at(0);
  for (int i = 1; i <= 37; ++i) {
    EXPECT_LE(s.at(i), prev + 1e-7f);
    prev = s.at(i);
  }
}

TEST(CosineScheduleTest, ClampsOutOfRangeSteps) {
  CosineSchedule s(1.0f, 10);
  EXPECT_FLOAT_EQ(s.at(-5), s.at(0));
  EXPECT_FLOAT_EQ(s.at(999), s.at(10));
}

TEST(CosineScheduleTest, RejectsBadArgs) {
  EXPECT_THROW(CosineSchedule(1.0f, 0), Error);
  EXPECT_THROW(CosineSchedule(0.1f, 10, 0.5f), Error);
}

TEST(StepScheduleTest, DecaysByGammaEveryStepSize) {
  StepSchedule s(1.0f, 10, 0.1f);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(9), 1.0f);
  EXPECT_NEAR(s.at(10), 0.1f, 1e-6f);
  EXPECT_NEAR(s.at(25), 0.01f, 1e-7f);
}

TEST(StepScheduleTest, NegativeStepsClampToBase) {
  StepSchedule s(2.0f, 5);
  EXPECT_FLOAT_EQ(s.at(-3), 2.0f);
}

TEST(StepScheduleTest, RejectsBadArgs) {
  EXPECT_THROW(StepSchedule(1.0f, 0), Error);
  EXPECT_THROW(StepSchedule(1.0f, 5, 0.0f), Error);
}

}  // namespace
}  // namespace deco::nn
