// Parameterized property sweeps over the numeric kernels: GEMM variants
// against a reference implementation across shapes, and the im2col/col2im
// adjoint identity across convolution geometries.
#include <gtest/gtest.h>

#include "deco/tensor/ops.h"
#include "deco/tensor/rng.h"
#include "test_util.h"

namespace deco {
namespace {

using testing::expect_tensor_near;
using testing::random_tensor;

// ---- GEMM sweep ----------------------------------------------------------------

struct GemmCase {
  int64_t m, k, n;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

Tensor reference_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at2(i, kk)) * b.at2(kk, j);
      out.at2(i, j) = static_cast<float>(acc);
    }
  return out;
}

TEST_P(GemmSweep, AllVariantsAgreeWithReference) {
  const GemmCase c = GetParam();
  Rng rng(1000 + c.m * 7 + c.k * 11 + c.n * 13);
  Tensor a = random_tensor({c.m, c.k}, rng);
  Tensor b = random_tensor({c.k, c.n}, rng);
  Tensor ref = reference_matmul(a, b);
  expect_tensor_near(matmul(a, b), ref, 1e-3f, 1e-3f);
  expect_tensor_near(matmul_tn(transpose2d(a), b), ref, 1e-3f, 1e-3f);
  expect_tensor_near(matmul_nt(a, transpose2d(b)), ref, 1e-3f, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{1, 17, 1}, GemmCase{5, 1, 7},
                      GemmCase{3, 9, 2}, GemmCase{16, 16, 16},
                      GemmCase{2, 33, 65}, GemmCase{31, 8, 3},
                      GemmCase{13, 100, 13}));

// ---- im2col/col2im sweep ----------------------------------------------------------

struct ConvGeomCase {
  int64_t channels, h, w, kernel, stride, padding;
};

class Im2ColSweep : public ::testing::TestWithParam<ConvGeomCase> {};

TEST_P(Im2ColSweep, Col2ImIsExactAdjoint) {
  const ConvGeomCase c = GetParam();
  Conv2dGeometry g{c.channels, c.h, c.w, c.kernel, c.kernel, c.stride,
                   c.padding};
  ASSERT_GT(g.out_h(), 0);
  ASSERT_GT(g.out_w(), 0);
  Rng rng(2000 + c.kernel * 3 + c.stride * 5 + c.padding * 7);
  Tensor x = random_tensor({2, c.channels, c.h, c.w}, rng);
  Tensor cols;
  im2col_into(x, g, cols);
  Tensor y = random_tensor(cols.shape(), rng);
  Tensor back({2, c.channels, c.h, c.w});
  col2im_into(y, g, back);
  // <im2col(x), y> == <x, col2im(y)> — the Conv2d backward pass is built on
  // this identity.
  const float lhs = dot(cols, y);
  const float rhs = dot(x, back);
  EXPECT_NEAR(lhs, rhs, 2e-2f * std::max(1.0f, std::abs(lhs)));
}

TEST_P(Im2ColSweep, ColumnCountMatchesGeometry) {
  const ConvGeomCase c = GetParam();
  Conv2dGeometry g{c.channels, c.h, c.w, c.kernel, c.kernel, c.stride,
                   c.padding};
  Rng rng(3);
  Tensor x = random_tensor({3, c.channels, c.h, c.w}, rng);
  Tensor cols;
  im2col_into(x, g, cols);
  EXPECT_EQ(cols.dim(0), c.channels * c.kernel * c.kernel);
  EXPECT_EQ(cols.dim(1), 3 * g.out_h() * g.out_w());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColSweep,
    ::testing::Values(ConvGeomCase{1, 4, 4, 1, 1, 0},
                      ConvGeomCase{2, 6, 6, 3, 1, 1},
                      ConvGeomCase{3, 8, 8, 3, 2, 1},
                      ConvGeomCase{1, 7, 9, 5, 1, 2},
                      ConvGeomCase{4, 5, 5, 3, 1, 0},
                      ConvGeomCase{2, 10, 6, 3, 3, 0}));

// ---- softmax identities -------------------------------------------------------------

class SoftmaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSweep, GradientOfLogSumExpIsSoftmax) {
  // d/dz logΣexp(z) = softmax(z): verified numerically per random draw —
  // this identity underlies every cross-entropy gradient in the library.
  Rng rng(4000 + GetParam());
  Tensor z = testing::random_tensor({1, 6}, rng, 3.0);
  Tensor p = softmax_rows(z);
  auto lse = [&](const Tensor& probe) {
    Tensor lp;
    log_softmax_rows_into(probe, lp);
    // logΣexp = z_0 − logsoftmax(z)_0
    return probe[0] - lp[0];
  };
  // z_0 − logsoftmax(z)_0 = z_0 − (z_0 − LSE) = LSE, whose gradient is
  // exactly softmax(z).
  Tensor numeric = testing::numeric_gradient(lse, z, 1e-3f);
  EXPECT_LT(testing::relative_error(numeric, p), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(Draws, SoftmaxSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace deco
