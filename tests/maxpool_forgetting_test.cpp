// Tests for MaxPool2d (including gradient routing) and for the per-class
// accuracy / catastrophic-forgetting metrics.
#include <gtest/gtest.h>

#include "deco/core/learner.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"
#include "deco/nn/convnet.h"
#include "deco/nn/layers.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

TEST(MaxPoolTest, ForwardPicksMaximum) {
  nn::MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 7, 3, 4});
  Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmaxOnly) {
  nn::MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 7, 3, 4});
  pool.forward(x);
  Tensor g({1, 1, 1, 1}, {5.0f});
  Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 5.0f);  // position of the 7
  EXPECT_FLOAT_EQ(gi[2], 0.0f);
  EXPECT_FLOAT_EQ(gi[3], 0.0f);
}

TEST(MaxPoolTest, GradCheck) {
  Rng rng(1);
  nn::MaxPool2d pool(2);
  // Spread-out values so finite differences don't cross argmax ties.
  Tensor x({2, 2, 4, 4});
  for (int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(i % 13) + 0.1f * static_cast<float>(rng.normal());
  Tensor y = pool.forward(x);
  Tensor v = random_tensor(y.shape(), rng);
  Tensor analytic = pool.backward(v);
  auto loss = [&](const Tensor& probe) { return dot(pool.forward(probe), v); };
  Tensor numeric = numeric_gradient(loss, x, 1e-3f);
  EXPECT_LT(relative_error(analytic, numeric), 2e-2f);
}

TEST(MaxPoolTest, RejectsIndivisibleDims) {
  nn::MaxPool2d pool(2);
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x), Error);
}

TEST(MaxPoolConvNetTest, PoolingOptionBuildsAndTrains) {
  Rng rng(2);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 6;
  cfg.depth = 2;
  cfg.pooling = nn::Pooling::kMax;
  nn::ConvNet net(cfg, rng);
  Tensor x = random_tensor({4, 2, 8, 8}, rng);
  Tensor logits = net.forward(x);
  EXPECT_EQ(logits.shape(), (std::vector<int64_t>{4, 3}));
  net.zero_grad();
  Tensor gi = net.backward(random_tensor(logits.shape(), rng));
  EXPECT_EQ(gi.shape(), x.shape());
}

TEST(PerClassAccuracyTest, MatchesConfusionDiagonal) {
  data::ProceduralImageWorld world(data::icub1_spec(), 5);
  data::Dataset train = world.make_labeled_set(6, 1);
  data::Dataset test = world.make_test_set(10, 2);
  Rng rng(3);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 8;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  std::vector<int64_t> all(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, train.batch(all), train.labels(), 20, 1e-3f,
                         5e-4f, 32, rng);

  const auto per_class = eval::per_class_accuracy(model, test);
  const auto conf = eval::confusion_matrix(model, test);
  ASSERT_EQ(per_class.size(), 10u);
  double mean = 0.0;
  for (size_t c = 0; c < 10; ++c) {
    EXPECT_NEAR(per_class[c], 100.0 * conf[c][c] / 10.0, 1e-3);
    mean += per_class[c];
  }
  EXPECT_NEAR(mean / 10.0, eval::accuracy(model, test), 1e-3);
}

TEST(ForgettingTrackerTest, NoForgettingWhenAccuracyRises) {
  eval::ForgettingTracker t;
  t.record({10, 20});
  t.record({30, 40});
  EXPECT_FLOAT_EQ(t.mean_forgetting(), 0.0f);
}

TEST(ForgettingTrackerTest, MeasuresDropFromPeak) {
  eval::ForgettingTracker t;
  t.record({50, 10});
  t.record({80, 20});
  t.record({30, 25});  // class 0 fell from 80 → 30; class 1 at its peak
  const auto f = t.per_class_forgetting();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_FLOAT_EQ(f[0], 50.0f);
  EXPECT_FLOAT_EQ(f[1], 0.0f);
  EXPECT_FLOAT_EQ(t.mean_forgetting(), 25.0f);
}

TEST(ForgettingTrackerTest, IgnoresNeverLearnedClasses) {
  eval::ForgettingTracker t;
  t.record({40, 0});
  t.record({20, 0});
  // Class 1 was never learned (peak 0): excluded from the mean.
  EXPECT_FLOAT_EQ(t.mean_forgetting(), 20.0f);
}

TEST(ForgettingTrackerTest, FewerThanTwoSnapshotsIsZero) {
  eval::ForgettingTracker t;
  EXPECT_FLOAT_EQ(t.mean_forgetting(), 0.0f);
  t.record({50});
  EXPECT_FLOAT_EQ(t.mean_forgetting(), 0.0f);
}

TEST(ForgettingTrackerTest, RejectsClassCountChange) {
  eval::ForgettingTracker t;
  t.record({1, 2});
  EXPECT_THROW(t.record({1, 2, 3}), Error);
}

}  // namespace
}  // namespace deco
