#include "deco/eval/report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "deco/tensor/check.h"

namespace deco::eval {
namespace {

TEST(MarkdownTableTest, RendersHeaderSeparatorAndRows) {
  MarkdownTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), "| a | b |\n|---|---|\n| 1 | 2 |\n| x | y |\n");
}

TEST(MarkdownTableTest, RejectsWidthMismatch) {
  MarkdownTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(EnvTest, IntAndStringFallbacks) {
  unsetenv("DECO_TEST_KNOB");
  EXPECT_EQ(env_int("DECO_TEST_KNOB", 7), 7);
  EXPECT_EQ(env_str("DECO_TEST_KNOB", "dflt"), "dflt");
  setenv("DECO_TEST_KNOB", "42", 1);
  EXPECT_EQ(env_int("DECO_TEST_KNOB", 7), 42);
  EXPECT_EQ(env_str("DECO_TEST_KNOB", "dflt"), "42");
  unsetenv("DECO_TEST_KNOB");
}

TEST(EnvTest, FullScaleSwitch) {
  unsetenv("DECO_BENCH_SCALE");
  EXPECT_FALSE(full_scale());
  setenv("DECO_BENCH_SCALE", "full", 1);
  EXPECT_TRUE(full_scale());
  unsetenv("DECO_BENCH_SCALE");
}

}  // namespace
}  // namespace deco::eval
