#include "deco/eval/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deco/tensor/check.h"

namespace deco::eval {
namespace {

TEST(RunningStatsTest, MatchesClosedFormMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sem(), s.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, NumericallyStableWithLargeOffsets) {
  // Welford must not suffer catastrophic cancellation around a huge mean.
  RunningStats s;
  const double base = 1e9;
  for (double v : {base + 1.0, base + 2.0, base + 3.0}) s.add(v);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(BootstrapTest, CoversTrueMeanOfTightSample) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) values.push_back(10.0 + 0.5 * rng.normal());
  Interval ci = bootstrap_mean_ci(values, 0.95, 2000, rng);
  EXPECT_LT(ci.lo, 10.0 + 0.3);
  EXPECT_GT(ci.hi, 10.0 - 0.3);
  EXPECT_LT(ci.lo, ci.hi);
  // Interval should be narrow for 40 samples of std 0.5 (SEM ≈ 0.08).
  EXPECT_LT(ci.hi - ci.lo, 0.6);
}

TEST(BootstrapTest, WiderConfidenceGivesWiderInterval) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 25; ++i) values.push_back(rng.normal());
  Rng rng_a(3), rng_b(3);
  Interval narrow = bootstrap_mean_ci(values, 0.5, 2000, rng_a);
  Interval wide = bootstrap_mean_ci(values, 0.99, 2000, rng_b);
  EXPECT_GE(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(BootstrapTest, RejectsBadArguments) {
  Rng rng(4);
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, rng), Error);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5, 100, rng), Error);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 5, rng), Error);
}

TEST(PairedCompareTest, DetectsConsistentSmallEffect) {
  // b is a + 0.5 with tiny noise: a paired design detects this even though
  // the spread of a is 100× the effect.
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) {
    const double base = 50.0 * rng.normal();
    a.push_back(base);
    b.push_back(base + 0.5 + 0.01 * rng.normal());
  }
  PairedComparison cmp = paired_compare(a, b);
  EXPECT_NEAR(cmp.mean_diff, 0.5, 0.05);
  EXPECT_EQ(cmp.wins, 12);
  EXPECT_EQ(cmp.losses, 0);
  EXPECT_GT(cmp.t_statistic, 2.0);
}

TEST(PairedCompareTest, SymmetricUnderSwap) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{2, 2, 5};
  PairedComparison ab = paired_compare(a, b);
  PairedComparison ba = paired_compare(b, a);
  EXPECT_DOUBLE_EQ(ab.mean_diff, -ba.mean_diff);
  EXPECT_EQ(ab.wins, ba.losses);
  EXPECT_EQ(ab.ties, 1);
}

TEST(PairedCompareTest, RejectsMismatchedLengths) {
  EXPECT_THROW(paired_compare({1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(paired_compare({}, {}), Error);
}

TEST(MedianTest, OddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

}  // namespace
}  // namespace deco::eval
