#include "deco/data/stream.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"

namespace deco::data {
namespace {

TEST(StreamTest, SegmentsHaveConfiguredShape) {
  ProceduralImageWorld w(core50_spec(), 1);
  StreamConfig cfg;
  cfg.segment_size = 16;
  cfg.total_segments = 3;
  TemporalStream s(w, cfg, 7);
  Segment seg;
  int count = 0;
  while (s.next(seg)) {
    EXPECT_EQ(seg.images.shape(), (std::vector<int64_t>{16, 3, 16, 16}));
    EXPECT_EQ(seg.true_labels.size(), 16u);
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.samples_emitted(), 48);
}

TEST(StreamTest, ExhaustsAfterTotalSegments) {
  ProceduralImageWorld w(icub1_spec(), 2);
  StreamConfig cfg;
  cfg.total_segments = 2;
  TemporalStream s(w, cfg, 8);
  Segment seg;
  EXPECT_TRUE(s.next(seg));
  EXPECT_TRUE(s.next(seg));
  EXPECT_FALSE(s.next(seg));
}

TEST(StreamTest, LabelsAreValidClasses) {
  ProceduralImageWorld w(cifar100_spec(), 3);
  StreamConfig cfg;
  cfg.total_segments = 5;
  cfg.video_mode = false;
  TemporalStream s(w, cfg, 9);
  Segment seg;
  while (s.next(seg))
    for (int64_t y : seg.true_labels) {
      EXPECT_GE(y, 0);
      EXPECT_LT(y, 20);
    }
}

TEST(StreamTest, EmpiricalStcTracksTarget) {
  ProceduralImageWorld w(core50_spec(), 4);
  for (int64_t stc : {8, 32, 128}) {
    StreamConfig cfg;
    cfg.stc = stc;
    cfg.segment_size = 32;
    cfg.total_segments = 60;
    TemporalStream s(w, cfg, 10);
    std::vector<int64_t> all;
    Segment seg;
    while (s.next(seg))
      all.insert(all.end(), seg.true_labels.begin(), seg.true_labels.end());
    const double emp = TemporalStream::empirical_stc(all);
    // Run-length jitter is ±50%, so allow a generous band around the target.
    EXPECT_GT(emp, 0.5 * static_cast<double>(stc));
    EXPECT_LT(emp, 1.8 * static_cast<double>(stc));
  }
}

TEST(StreamTest, DeterministicGivenSeed) {
  ProceduralImageWorld w(core50_spec(), 5);
  StreamConfig cfg;
  cfg.total_segments = 2;
  TemporalStream a(w, cfg, 11), b(w, cfg, 11);
  Segment sa, sb;
  a.next(sa);
  b.next(sb);
  EXPECT_EQ(sa.true_labels, sb.true_labels);
  EXPECT_EQ(sa.images.l1_distance(sb.images), 0.0f);
}

TEST(StreamTest, DifferentSeedsDiffer) {
  ProceduralImageWorld w(core50_spec(), 6);
  StreamConfig cfg;
  cfg.total_segments = 4;
  TemporalStream a(w, cfg, 1), b(w, cfg, 2);
  Segment sa, sb;
  std::vector<int64_t> la, lb;
  while (a.next(sa)) la.insert(la.end(), sa.true_labels.begin(), sa.true_labels.end());
  while (b.next(sb)) lb.insert(lb.end(), sb.true_labels.begin(), sb.true_labels.end());
  EXPECT_NE(la, lb);
}

TEST(StreamTest, VideoModeFramesAreTemporallySmooth) {
  // Within a run, consecutive samples should be near-identical frames.
  ProceduralImageWorld w(core50_spec(), 7);
  StreamConfig cfg;
  cfg.stc = 64;
  cfg.segment_size = 32;
  cfg.total_segments = 1;
  cfg.video_mode = true;
  TemporalStream s(w, cfg, 12);
  Segment seg;
  ASSERT_TRUE(s.next(seg));
  const int64_t per = 3 * 16 * 16;
  double adjacent = 0.0;
  int n = 0;
  for (int64_t i = 0; i + 1 < 32; ++i) {
    if (seg.true_labels[static_cast<size_t>(i)] !=
        seg.true_labels[static_cast<size_t>(i + 1)])
      continue;
    Tensor a({3, 16, 16}), b({3, 16, 16});
    std::copy(seg.images.data() + i * per, seg.images.data() + (i + 1) * per,
              a.data());
    std::copy(seg.images.data() + (i + 1) * per,
              seg.images.data() + (i + 2) * per, b.data());
    adjacent += a.l1_distance(b);
    ++n;
  }
  ASSERT_GT(n, 0);
  // Average adjacent-frame distance should be small relative to image scale
  // (768 pixels in [0,1]).
  EXPECT_LT(adjacent / n, 120.0);
}

TEST(StreamTest, EmpiricalStcHelper) {
  EXPECT_EQ(TemporalStream::empirical_stc({}), 0.0);
  EXPECT_EQ(TemporalStream::empirical_stc({1, 1, 1, 1}), 4.0);
  EXPECT_EQ(TemporalStream::empirical_stc({1, 2, 3, 4}), 1.0);
  EXPECT_EQ(TemporalStream::empirical_stc({1, 1, 2, 2}), 2.0);
}

TEST(StreamTest, RejectsBadConfig) {
  ProceduralImageWorld w(core50_spec(), 8);
  StreamConfig cfg;
  cfg.stc = 0;
  EXPECT_THROW(TemporalStream(w, cfg, 1), Error);
}

}  // namespace
}  // namespace deco::data
