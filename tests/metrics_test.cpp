#include "deco/eval/metrics.h"

#include <gtest/gtest.h>

#include "deco/core/learner.h"
#include "deco/data/world.h"
#include "test_util.h"

namespace deco::eval {
namespace {

TEST(AggregateTest, MeanAndStddev) {
  Aggregate a = aggregate({1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(a.mean, 2.0f);
  EXPECT_NEAR(a.stddev, 1.0f, 1e-5f);
}

TEST(AggregateTest, SingleValueHasZeroStddev) {
  Aggregate a = aggregate({5.0f});
  EXPECT_FLOAT_EQ(a.mean, 5.0f);
  EXPECT_FLOAT_EQ(a.stddev, 0.0f);
}

TEST(AggregateTest, EmptyIsZero) {
  Aggregate a = aggregate({});
  EXPECT_EQ(a.mean, 0.0f);
  EXPECT_EQ(a.stddev, 0.0f);
}

TEST(AggregateTest, Format) {
  EXPECT_EQ(format_aggregate({12.345f, 0.678f}), "12.35±0.68");
  EXPECT_EQ(format_aggregate({1.0f, 0.0f}, 1), "1.0±0.0");
}

TEST(TopMisclassificationsTest, RanksWrongPredictions) {
  // Class 0: 10 correct, 6 → class 1, 3 → class 2, 1 → class 3.
  std::vector<std::vector<int64_t>> conf{
      {10, 6, 3, 1}, {0, 5, 0, 0}, {0, 0, 5, 0}, {0, 0, 0, 5}};
  auto top = top_misclassifications(conf, 2);
  ASSERT_EQ(top[0].size(), 2u);
  EXPECT_EQ(top[0][0].predicted_class, 1);
  EXPECT_NEAR(top[0][0].fraction, 0.6, 1e-9);
  EXPECT_EQ(top[0][1].predicted_class, 2);
  EXPECT_NEAR(top[0][1].fraction, 0.3, 1e-9);
  // Classes with no errors have empty lists.
  EXPECT_TRUE(top[1].empty());
}

TEST(AccuracyTest, TrainedModelBeatsChanceAndConfusionIsConsistent) {
  data::ProceduralImageWorld world(data::icub1_spec(), 1);
  data::Dataset train = world.make_labeled_set(8, 1);
  data::Dataset test = world.make_test_set(12, 2);

  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 8;
  cfg.depth = 2;
  Rng rng(2);
  nn::ConvNet model(cfg, rng);
  std::vector<int64_t> all(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, train.batch(all), train.labels(), 40, 1e-3f,
                         5e-4f, 32, rng);

  const float acc = accuracy(model, test);
  EXPECT_GT(acc, 20.0f);

  auto conf = confusion_matrix(model, test);
  // Row sums equal per-class test counts; diagonal fraction equals accuracy.
  int64_t diag = 0, total = 0;
  for (size_t t = 0; t < conf.size(); ++t) {
    int64_t row = 0;
    for (size_t p = 0; p < conf.size(); ++p) {
      row += conf[t][p];
      total += conf[t][p];
    }
    EXPECT_EQ(row, 12);
    diag += conf[t][t];
  }
  EXPECT_EQ(total, test.size());
  EXPECT_NEAR(100.0 * static_cast<double>(diag) / total, acc, 1e-3);
}

}  // namespace
}  // namespace deco::eval
