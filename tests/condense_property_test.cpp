// Property sweeps over the condensation stack: for every (ipc, classes)
// configuration and every condenser, one condense() call must preserve the
// buffer invariants (class balance, pixel range, inactive rows untouched)
// and be deterministic given the same seed.
#include <gtest/gtest.h>

#include <memory>

#include "deco/condense/method.h"
#include "deco/data/world.h"
#include "test_util.h"

namespace deco::condense {
namespace {

struct SweepCase {
  int64_t ipc;
  int64_t num_classes;
  int condenser;  // 0 = DECO, 1 = DC, 2 = DSA, 3 = DM
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* names[] = {"DECO", "DC", "DSA", "DM"};
  return std::string(names[info.param.condenser]) + "_ipc" +
         std::to_string(info.param.ipc) + "_c" +
         std::to_string(info.param.num_classes);
}

nn::ConvNetConfig model_config(int64_t classes) {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = classes;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

std::unique_ptr<Condenser> make_condenser(const SweepCase& c, uint64_t seed) {
  const nn::ConvNetConfig mc = model_config(c.num_classes);
  switch (c.condenser) {
    case 0: {
      DecoCondenserConfig cfg;
      cfg.iterations = 2;
      return std::make_unique<DecoCondenser>(mc, cfg, seed);
    }
    case 1: {
      BilevelConfig cfg;
      cfg.outer_loops = 1;
      cfg.inner_epochs = 1;
      cfg.model_steps = 1;
      return std::make_unique<BilevelCondenser>(mc, cfg, seed);
    }
    case 2: {
      BilevelConfig cfg;
      cfg.outer_loops = 1;
      cfg.inner_epochs = 1;
      cfg.model_steps = 1;
      cfg.dsa_strategy = "flip_shift_scale_rotate_color_cutout";
      return std::make_unique<BilevelCondenser>(mc, cfg, seed);
    }
    default: {
      DmConfig cfg;
      cfg.iterations = 3;
      return std::make_unique<DmCondenser>(mc, cfg, seed);
    }
  }
}

class CondenserSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CondenserSweep, PreservesBufferInvariants) {
  const SweepCase c = GetParam();
  data::DatasetSpec spec = data::icub1_spec();
  spec.num_classes = c.num_classes;
  data::ProceduralImageWorld world(spec, 3);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  Rng rng(4);
  SyntheticBuffer buffer(c.num_classes, c.ipc, 3, 16, 16);
  buffer.init_from_dataset(labeled, rng);
  nn::ConvNet deployed(model_config(c.num_classes), rng);

  // Active classes: {0, 2}; real data from those classes.
  const std::vector<int64_t> active{0, 2};
  Tensor x_real({8, 3, 16, 16});
  std::vector<int64_t> y_real;
  std::vector<float> w_real;
  for (int64_t i = 0; i < 8; ++i) {
    const int64_t cls = i < 4 ? 0 : 2;
    Tensor img = world.render(cls, 0, 0, 50 + i);
    std::copy(img.data(), img.data() + img.numel(),
              x_real.data() + i * img.numel());
    y_real.push_back(cls);
    w_real.push_back(0.8f);
  }

  Tensor before = buffer.images();
  auto condenser = make_condenser(c, 11);
  CondenseContext ctx;
  ctx.buffer = &buffer;
  ctx.x_real = &x_real;
  ctx.y_real = &y_real;
  ctx.w_real = &w_real;
  ctx.active_classes = &active;
  ctx.deployed_model = &deployed;
  ctx.rng = &rng;
  condenser->condense(ctx);

  // Invariant 1: class balance is structural and untouched.
  EXPECT_EQ(buffer.size(), c.num_classes * c.ipc);
  for (int64_t cls = 0; cls < c.num_classes; ++cls)
    EXPECT_EQ(static_cast<int64_t>(buffer.rows_of_class(cls).size()), c.ipc);

  // Invariant 2: pixels remain valid sensor values.
  EXPECT_GE(buffer.images().min(), 0.0f);
  EXPECT_LE(buffer.images().max(), 1.0f);

  // Invariant 3: inactive classes' rows are bytewise untouched.
  const int64_t per = 3 * 16 * 16;
  for (int64_t r = 0; r < buffer.size(); ++r) {
    const int64_t cls = buffer.label(r);
    if (cls == 0 || cls == 2) continue;
    for (int64_t j = 0; j < per; ++j)
      ASSERT_EQ(before[r * per + j], buffer.images()[r * per + j])
          << condenser->name() << " moved inactive row " << r;
  }

  // Invariant 4: at least one active row moved (the condenser did work).
  float moved = 0.0f;
  for (int64_t cls : active)
    for (int64_t r : buffer.rows_of_class(cls))
      for (int64_t j = 0; j < per; ++j)
        moved += std::abs(before[r * per + j] - buffer.images()[r * per + j]);
  EXPECT_GT(moved, 0.0f) << condenser->name() << " was a no-op";
}

TEST_P(CondenserSweep, DeterministicGivenSeed) {
  const SweepCase c = GetParam();
  data::DatasetSpec spec = data::icub1_spec();
  spec.num_classes = c.num_classes;
  data::ProceduralImageWorld world(spec, 5);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  auto run_once = [&]() {
    Rng rng(6);
    SyntheticBuffer buffer(c.num_classes, c.ipc, 3, 16, 16);
    buffer.init_from_dataset(labeled, rng);
    nn::ConvNet deployed(model_config(c.num_classes), rng);
    const std::vector<int64_t> active{1};
    Tensor x_real({4, 3, 16, 16});
    std::vector<int64_t> y_real(4, 1);
    for (int64_t i = 0; i < 4; ++i) {
      Tensor img = world.render(1, 0, 0, 10 + i);
      std::copy(img.data(), img.data() + img.numel(),
                x_real.data() + i * img.numel());
    }
    auto condenser = make_condenser(c, 21);
    CondenseContext ctx;
    ctx.buffer = &buffer;
    ctx.x_real = &x_real;
    ctx.y_real = &y_real;
    ctx.w_real = nullptr;
    ctx.active_classes = &active;
    ctx.deployed_model = &deployed;
    ctx.rng = &rng;
    condenser->condense(ctx);
    return buffer.images();
  };

  Tensor a = run_once();
  Tensor b = run_once();
  EXPECT_EQ(a.l1_distance(b), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CondenserSweep,
    ::testing::Values(SweepCase{1, 4, 0}, SweepCase{2, 4, 0}, SweepCase{5, 3, 0},
                      SweepCase{1, 4, 1}, SweepCase{2, 3, 1},
                      SweepCase{2, 4, 2}, SweepCase{1, 3, 2},
                      SweepCase{1, 4, 3}, SweepCase{5, 3, 3}),
    case_name);

}  // namespace
}  // namespace deco::condense
