// Tests for core::telemetry: registry semantics, shard merging under real
// thread-pool load, histogram bucketing, span nesting, JSON export, and the
// reset/disable contracts.
//
// ctest runs each TEST in its own process (gtest_discover_tests), so tests
// may freely mutate the process-global registry; within this file each test
// still calls reset() first so it also passes under a plain ./deco_tests run.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "test_util.h"

namespace telem = deco::core::telemetry;

namespace {

// These tests assert recording semantics, which cannot hold when every
// instrumentation site is compiled out.
#if DECO_TELEMETRY_COMPILED
#define SKIP_IF_COMPILED_OUT() (void)0
#else
#define SKIP_IF_COMPILED_OUT() \
  GTEST_SKIP() << "telemetry compiled out (-DDECO_TELEMETRY=OFF)"
#endif

// RAII: telemetry enabled for the test body, restored after.
struct TelemetryOn {
  TelemetryOn() {
    telem::set_enabled(true);
    telem::reset();
  }
  ~TelemetryOn() { telem::set_enabled(true); }
};

// JSON parsing lives in test_util.h (shared with the scenario schema tests).
using deco::testing::JsonArray;
using deco::testing::JsonObject;
using deco::testing::JsonParser;
using deco::testing::JsonValue;

// ---- registry semantics -----------------------------------------------------

TEST(TelemetryRegistry, CounterHandlesAreStableAndMonotonic) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  telem::Counter& c = telem::counter("test/reg_counter");
  // Re-registration returns the same handle, not a second metric.
  EXPECT_EQ(&c, &telem::counter("test/reg_counter"));

  c.add(3);
  c.add();  // default increment of 1
  c.add(40);
  EXPECT_EQ(telem::snapshot().counter_value("test/reg_counter"), 44);

  // A never-touched counter reads 0, an unknown name reads 0.
  telem::counter("test/reg_untouched");
  EXPECT_EQ(telem::snapshot().counter_value("test/reg_untouched"), 0);
  EXPECT_EQ(telem::snapshot().counter_value("test/never_registered"), 0);
}

TEST(TelemetryRegistry, GaugeSetAndNoteMax) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  telem::Gauge& g = telem::gauge("test/reg_gauge");
  g.set(7);
  g.note_max(3);  // below current: no change
  auto find = [](const telem::Snapshot& s, const std::string& name) {
    for (const auto& gv : s.gauges)
      if (gv.name == name) return gv.value;
    return int64_t{-1};
  };
  EXPECT_EQ(find(telem::snapshot(), "test/reg_gauge"), 7);
  g.note_max(1000);
  EXPECT_EQ(find(telem::snapshot(), "test/reg_gauge"), 1000);
}

TEST(TelemetryRegistry, HistogramBucketEdgesAreInclusive) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  telem::Histogram& h = telem::histogram("test/reg_hist", {10, 20});

  h.observe(0);    // bucket 0 (v <= 10)
  h.observe(10);   // bucket 0: edges are inclusive upper bounds
  h.observe(11);   // bucket 1 (10 < v <= 20)
  h.observe(20);   // bucket 1
  h.observe(21);   // overflow bucket
  h.observe(-5);   // negative values land in the first bucket

  const telem::Snapshot snap = telem::snapshot();
  const telem::HistogramValue* hv = nullptr;
  for (const auto& cand : snap.histograms)
    if (cand.name == "test/reg_hist") hv = &cand;
  ASSERT_NE(hv, nullptr);
  ASSERT_EQ(hv->upper_edges, (std::vector<int64_t>{10, 20}));
  ASSERT_EQ(hv->counts.size(), 3u);  // 2 edges + overflow
  EXPECT_EQ(hv->counts[0], 3);
  EXPECT_EQ(hv->counts[1], 2);
  EXPECT_EQ(hv->counts[2], 1);
  EXPECT_EQ(hv->count(), 6);
  EXPECT_EQ(hv->sum, 0 + 10 + 11 + 20 + 21 - 5);

  // Re-registration with different edges keeps the original layout.
  telem::histogram("test/reg_hist", {1, 2, 3, 4});
  const telem::Snapshot snap2 = telem::snapshot();
  for (const auto& cand : snap2.histograms)
    if (cand.name == "test/reg_hist")
      EXPECT_EQ(cand.upper_edges, (std::vector<int64_t>{10, 20}));
}

// ---- shard merging under parallel load -------------------------------------

TEST(TelemetryShards, ParallelHammerSumsExactly) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  const int saved = deco::core::num_threads();
  deco::core::set_num_threads(4);

  telem::Counter& c = telem::counter("test/hammer");
  telem::Histogram& h = telem::histogram("test/hammer_hist", {100, 1000});

  // Every worker thread gets its own shard; the merge must still produce the
  // exact total. 64 jobs x 1024 increments, every item also observed once.
  const int64_t kJobs = 64;
  const int64_t kPerJob = 1024;
  for (int64_t j = 0; j < kJobs; ++j) {
    deco::core::parallel_for(0, kPerJob, 16, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        c.add(1);
        h.observe(i);
      }
    });
  }
  deco::core::set_num_threads(saved);

  const telem::Snapshot snap = telem::snapshot();
  EXPECT_EQ(snap.counter_value("test/hammer"), kJobs * kPerJob);
  for (const auto& hv : snap.histograms) {
    if (hv.name != "test/hammer_hist") continue;
    EXPECT_EQ(hv.count(), kJobs * kPerJob);
    // 0..1023 observed kJobs times: 101 values <= 100, 923 in (100, 1000],
    // 23 above 1000.
    EXPECT_EQ(hv.counts[0], 101 * kJobs);
    EXPECT_EQ(hv.counts[1], 900 * kJobs);
    EXPECT_EQ(hv.counts[2], 23 * kJobs);
    EXPECT_EQ(hv.sum, kJobs * (kPerJob * (kPerJob - 1) / 2));
  }
  // set_num_threads destroyed the worker shards: their counts must have been
  // folded into the retired totals, which the checks above already proved.
}

// ---- spans ------------------------------------------------------------------

TEST(TelemetrySpans, NestingDepthAndContainment) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  {
    DECO_TRACE_SCOPE("test/span_outer");
    {
      DECO_TRACE_SCOPE("test/span_inner");
    }
    {
      DECO_TRACE_SCOPE("test/span_inner");
    }
  }

  const telem::Snapshot snap = telem::snapshot();
  const telem::SpanAggregate* outer = snap.span("test/span_outer");
  const telem::SpanAggregate* inner = snap.span("test/span_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(inner->count, 2);
  // The inner spans ran inside the outer one, so the outer total must cover
  // at least the sum of the inner durations.
  EXPECT_GE(outer->total_ns, inner->total_ns);

  const std::vector<telem::TraceEvent> events = telem::trace_events();
  ASSERT_EQ(events.size(), 3u);  // sorted by start time: outer, inner, inner
  EXPECT_STREQ(events[0].name, "test/span_outer");
  EXPECT_EQ(events[0].depth, 0);
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_STREQ(events[i].name, "test/span_inner");
    EXPECT_EQ(events[i].depth, 1);
    // Interval containment within the outer span.
    EXPECT_GE(events[i].ts_ns, events[0].ts_ns);
    EXPECT_LE(events[i].ts_ns + events[i].dur_ns,
              events[0].ts_ns + events[0].dur_ns);
  }
  // The two inner occurrences do not overlap and appear in execution order.
  EXPECT_GE(events[2].ts_ns, events[1].ts_ns + events[1].dur_ns);
}

TEST(TelemetrySpans, RingOverflowIsCountedNotSilent) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  ASSERT_EQ(telem::dropped_events(), 0);
  // The per-thread ring holds 8192 events; push well past that.
  const int64_t kSpans = 10000;
  for (int64_t i = 0; i < kSpans; ++i) {
    DECO_TRACE_SCOPE("test/span_flood");
  }
  const telem::Snapshot snap = telem::snapshot();
  const telem::SpanAggregate* agg = snap.span("test/span_flood");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, kSpans);  // aggregates never drop
  const int64_t kept =
      static_cast<int64_t>(telem::trace_events().size());
  EXPECT_LT(kept, kSpans);
  EXPECT_EQ(telem::dropped_events(), kSpans - kept);
}

// ---- JSON export ------------------------------------------------------------

TEST(TelemetryExport, AggregateJsonRoundTrips) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  telem::counter("test/json_counter").add(123456789);
  telem::gauge("test/json_gauge").set(-42);
  telem::histogram("test/json_hist", {5}).observe(3);
  {
    DECO_TRACE_SCOPE("test/json_span");
  }

  const std::string text = telem::aggregate_json(telem::snapshot());
  JsonParser parser(text);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error() << "\n" << text;
  ASSERT_TRUE(root.is_object());

  const JsonObject& obj = root.object();
  for (const char* section :
       {"counters", "gauges", "histograms", "spans", "memstats", "workspace"})
    ASSERT_TRUE(obj.count(section)) << "missing section " << section;

  EXPECT_EQ(obj.at("counters").object().at("test/json_counter").as_int(),
            123456789);
  EXPECT_EQ(obj.at("gauges").object().at("test/json_gauge").as_int(), -42);

  const JsonObject& hist =
      obj.at("histograms").object().at("test/json_hist").object();
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_EQ(hist.at("sum").as_int(), 3);
  ASSERT_EQ(hist.at("counts").array().size(), 2u);
  EXPECT_EQ(hist.at("counts").array()[0].as_int(), 1);

  const JsonObject& span =
      obj.at("spans").object().at("test/json_span").object();
  EXPECT_EQ(span.at("count").as_int(), 1);
  EXPECT_GE(span.at("total_ns").as_int(), 0);

  EXPECT_GE(obj.at("memstats").object().at("tensor_heap_allocs").as_int(), 0);
}

TEST(TelemetryExport, ChromeTraceParsesAndMatchesEvents) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  for (int i = 0; i < 5; ++i) {
    DECO_TRACE_SCOPE("test/trace_span");
  }

  const std::string path = ::testing::TempDir() + "deco_trace_test.json";
  telem::write_chrome_trace(path);
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());

  JsonParser parser(text);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 5u);
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.object();
    EXPECT_EQ(std::get<std::string>(e.at("name").v), "test/trace_span");
    EXPECT_EQ(std::get<std::string>(e.at("ph").v), "X");
    EXPECT_EQ(e.at("pid").as_int(), 1);
  }
}

// ---- reset & disable --------------------------------------------------------

TEST(TelemetryLifecycle, ResetZeroesEverythingButKeepsHandles) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  telem::Counter& c = telem::counter("test/reset_counter");
  c.add(5);
  telem::gauge("test/reset_gauge").set(9);
  {
    DECO_TRACE_SCOPE("test/reset_span");
  }
  ASSERT_EQ(telem::snapshot().counter_value("test/reset_counter"), 5);
  ASSERT_FALSE(telem::trace_events().empty());

  telem::reset();
  const telem::Snapshot snap = telem::snapshot();
  EXPECT_EQ(snap.counter_value("test/reset_counter"), 0);
  for (const auto& gv : snap.gauges)
    if (gv.name == "test/reset_gauge") EXPECT_EQ(gv.value, 0);
  const telem::SpanAggregate* agg = snap.span("test/reset_span");
  ASSERT_NE(agg, nullptr);  // the registration survives
  EXPECT_EQ(agg->count, 0);
  EXPECT_TRUE(telem::trace_events().empty());
  EXPECT_EQ(telem::dropped_events(), 0);

  // The pre-reset handle still works.
  c.add(2);
  EXPECT_EQ(telem::snapshot().counter_value("test/reset_counter"), 2);
}

TEST(TelemetryLifecycle, DisabledRecordingIsDropped) {
  SKIP_IF_COMPILED_OUT();
  TelemetryOn scope;
  telem::Counter& c = telem::counter("test/disabled_counter");
  c.add(1);
  telem::set_enabled(false);
  EXPECT_FALSE(telem::enabled());
  c.add(100);
  {
    DECO_TRACE_SCOPE("test/disabled_span");
  }
  telem::set_enabled(true);
  c.add(10);

  const telem::Snapshot snap = telem::snapshot();
  EXPECT_EQ(snap.counter_value("test/disabled_counter"), 11);
  const telem::SpanAggregate* agg = snap.span("test/disabled_span");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, 0);
}

}  // namespace
