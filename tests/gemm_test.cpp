// The packed blocked GEMM against a double-precision naive reference at
// adversarial shapes: every m, n, k in {1, 3, 5, 15, 17, 63, 65} crosses at
// least one packing edge (k smaller than a cache block, n smaller than the
// register tile, single-row strips), plus shapes that straddle the MC/NC/KC
// block boundaries. Also the satellite regression for the old zero-skip
// shortcut: a 0 in A against an Inf/NaN in B must propagate NaN, not be
// silently skipped.
#include "deco/tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "deco/core/thread_pool.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"
#include "test_util.h"

namespace deco {
namespace {

const std::vector<int64_t> kEdgeSizes{1, 3, 5, 15, 17, 63, 65};

// Naive references accumulating in double: not bitwise comparable to the
// float kernel, so comparisons are tolerance-based per element.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at2(i, kk)) * b.at2(kk, j);
      out.at2(i, j) = static_cast<float>(acc);
    }
  return out;
}

Tensor ref_matmul_tn(const Tensor& a, const Tensor& b) {
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at2(kk, i)) * b.at2(kk, j);
      out.at2(i, j) = static_cast<float>(acc);
    }
  return out;
}

Tensor ref_matmul_nt(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at2(i, kk)) * b.at2(j, kk);
      out.at2(i, j) = static_cast<float>(acc);
    }
  return out;
}

void expect_close(const Tensor& got, const Tensor& want, const char* what,
                  int64_t m, int64_t n, int64_t k) {
  ASSERT_TRUE(got.same_shape(want))
      << what << " shape " << got.shape_str() << " vs " << want.shape_str();
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float w = want[i];
    ASSERT_NEAR(got[i], w, 1e-4f * (1.0f + std::abs(w)))
        << what << " at flat index " << i << " for m=" << m << " n=" << n
        << " k=" << k;
  }
}

TEST(GemmTest, MatchesNaiveReferenceAtEdgeShapes) {
  Rng rng(101);
  for (int64_t m : kEdgeSizes)
    for (int64_t n : kEdgeSizes)
      for (int64_t k : kEdgeSizes) {
        Tensor a = testing::random_tensor({m, k}, rng);
        Tensor b = testing::random_tensor({k, n}, rng);
        Tensor at = testing::random_tensor({k, m}, rng);
        Tensor bt = testing::random_tensor({n, k}, rng);
        expect_close(matmul(a, b), ref_matmul(a, b), "matmul", m, n, k);
        expect_close(matmul_tn(at, b), ref_matmul_tn(at, b), "matmul_tn", m, n,
                     k);
        expect_close(matmul_nt(a, bt), ref_matmul_nt(a, bt), "matmul_nt", m, n,
                     k);
      }
}

TEST(GemmTest, MatchesNaiveReferenceAcrossBlockBoundaries) {
  // 70 > MC=64, 520 > NC=512, 300 > KC=256: every blocking loop takes more
  // than one trip and the final trip is partial.
  Rng rng(102);
  const int64_t m = 70, n = 520, k = 300;
  Tensor a = testing::random_tensor({m, k}, rng);
  Tensor b = testing::random_tensor({k, n}, rng);
  expect_close(matmul(a, b), ref_matmul(a, b), "matmul", m, n, k);
}

TEST(GemmTest, AccumulateVariantsAddOntoExistingOutput) {
  Rng rng(103);
  const int64_t m = 17, n = 33, k = 65;
  Tensor a = testing::random_tensor({m, k}, rng);
  Tensor b = testing::random_tensor({k, n}, rng);
  Tensor at = testing::random_tensor({k, m}, rng);
  Tensor bt = testing::random_tensor({n, k}, rng);
  Tensor seed_t = testing::random_tensor({m, n}, rng);

  Tensor out = seed_t;
  matmul_acc_into(a, b, out);
  Tensor want = seed_t + ref_matmul(a, b);
  expect_close(out, want, "matmul_acc", m, n, k);

  out = seed_t;
  matmul_tn_acc_into(at, b, out);
  want = seed_t + ref_matmul_tn(at, b);
  expect_close(out, want, "matmul_tn_acc", m, n, k);

  out = seed_t;
  matmul_nt_acc_into(a, bt, out);
  want = seed_t + ref_matmul_nt(a, bt);
  expect_close(out, want, "matmul_nt_acc", m, n, k);
}

TEST(GemmTest, AccumulateVariantsRejectMisshapenOutput) {
  Rng rng(104);
  Tensor a = testing::random_tensor({4, 8}, rng);
  Tensor b = testing::random_tensor({8, 6}, rng);
  Tensor bad({4, 5});
  EXPECT_THROW(matmul_acc_into(a, b, bad), Error);
}

TEST(GemmTest, ZeroTimesInfPropagatesNaN) {
  // Regression for the old `if (aik == 0.0f) continue;` shortcut, which
  // skipped the 0·Inf product and returned a finite 0 where IEEE demands
  // NaN — hiding exactly the non-finite values NumericGuard watches for.
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({2, 3});  // row 0 all zeros
  a.at2(1, 0) = 1.0f;
  Tensor b({3, 2});
  b.fill(1.0f);
  b.at2(0, 0) = inf;

  Tensor out = matmul(a, b);
  EXPECT_TRUE(std::isnan(out.at2(0, 0))) << "0*Inf must be NaN, got "
                                         << out.at2(0, 0);
  EXPECT_TRUE(std::isinf(out.at2(1, 0)));  // 1*Inf stays Inf
  EXPECT_EQ(out.at2(0, 1), 0.0f);          // untouched column stays finite

  // Same for the tn variant (a transposed: column 0 of aᵀ is zeros).
  Tensor at({3, 2});  // [k, m], column 0 all zeros
  at.at2(0, 1) = 1.0f;
  Tensor out_tn = matmul_tn(at, b);
  EXPECT_TRUE(std::isnan(out_tn.at2(0, 0)));
  EXPECT_TRUE(std::isinf(out_tn.at2(1, 0)));
}

TEST(GemmTest, BitwiseInvariantAcrossThreadCountsAtBlockEdges) {
  // The shape crosses every block boundary, so the parallel tile split is
  // exercised for real. memcmp, not tolerance: reassociation is the bug.
  Rng rng(105);
  Tensor a = testing::random_tensor({70, 300}, rng);
  Tensor b = testing::random_tensor({300, 520}, rng);
  const int saved = core::num_threads();
  Tensor reference = matmul(a, b);
  for (int t : {1, 2, 4, 8}) {
    core::set_num_threads(t);
    Tensor got = matmul(a, b);
    ASSERT_EQ(got.numel(), reference.numel());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                          got.numel() * sizeof(float)),
              0)
        << "bitwise mismatch at threads=" << t;
  }
  core::set_num_threads(saved);
}

}  // namespace
}  // namespace deco
