// Golden-value regression test: a tiny fixed-seed DECO run (3 classes, 8×8
// frames, 2 stream segments) whose scalar outputs are pinned against the
// committed fixture tests/golden/learner_small.txt at 1e-6 tolerance. Any
// change to the numerics — kernels, layer order, rng consumption, condenser
// update rule — shows up here as a precise diff instead of a silent drift.
//
// Regenerating the fixture (after an INTENDED numeric change):
//
//   DECO_REGEN_GOLDEN=1 ./deco_tests --gtest_filter='GoldenRegression*'
//
// then commit the rewritten tests/golden/learner_small.txt together with the
// change that motivated it, and say why in the commit message. The file is
// found via the DECO_SOURCE_DIR compile definition, so regeneration works
// from any build directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "deco/core/learner.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"
#include "deco/nn/convnet.h"

namespace deco {
namespace {

const char* kGoldenRelPath = "/tests/golden/learner_small.txt";

std::string golden_path() { return std::string(DECO_SOURCE_DIR) + kGoldenRelPath; }

// One deterministic tiny run; every scalar it returns is golden-pinned.
// Ordered map so the regenerated fixture is stable line-for-line.
std::map<std::string, double> run_scenario() {
  data::DatasetSpec spec = data::icub1_spec();
  spec.num_classes = 3;
  spec.height = spec.width = 8;

  Rng rng(41);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 8;
  mc.num_classes = 3;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, rng);

  data::ProceduralImageWorld world(spec, 9);
  data::Dataset labeled = world.make_labeled_set(3, 1);
  data::Dataset test = world.make_test_set(6, 2);

  core::DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;  // the second segment triggers a model update
  cfg.model_update_epochs = 3;
  cfg.condenser.iterations = 2;
  core::DecoLearner learner(model, cfg, 51);
  learner.init_buffer_from(labeled);

  std::map<std::string, double> out;
  out["pretrain_accuracy"] = eval::accuracy(model, test);
  for (int64_t seg = 0; seg < 2; ++seg) {
    Tensor images({6, 3, 8, 8});
    for (int64_t i = 0; i < 6; ++i) {
      Tensor img = world.render((seg + i) % 3, 0, 0, 500 + seg * 16 + i);
      std::copy(img.data(), img.data() + img.numel(),
                images.data() + i * img.numel());
    }
    core::SegmentReport rep = learner.observe_segment(images);
    const std::string pre = "segment" + std::to_string(seg) + "_";
    out[pre + "condense_distance"] = rep.condense_distance;
    out[pre + "active_classes"] = static_cast<double>(rep.active_class_count);
    out[pre + "retained"] = static_cast<double>(rep.retained.size());
    double label_sum = 0.0;
    for (int64_t l : rep.pseudo_labels) label_sum += static_cast<double>(l);
    out[pre + "pseudo_label_sum"] = label_sum;
  }
  out["final_accuracy"] = eval::accuracy(model, test);

  const Tensor& buf = learner.buffer().images();
  double sum = 0.0;
  for (int64_t i = 0; i < buf.numel(); ++i) sum += buf[i];
  out["buffer_mean"] = sum / static_cast<double>(buf.numel());
  out["buffer_min"] = buf.min();
  out["buffer_max"] = buf.max();
  return out;
}

std::map<std::string, double> read_golden(const std::string& path) {
  std::ifstream in(path);
  std::map<std::string, double> out;
  std::string key;
  double value = 0.0;
  while (in >> key >> value) out[key] = value;
  return out;
}

void write_golden(const std::string& path,
                  const std::map<std::string, double>& values) {
  std::ofstream out(path);
  out.precision(12);
  for (const auto& [key, value] : values) out << key << " " << value << "\n";
}

TEST(GoldenRegression, TinyLearnerRunMatchesFixture) {
  const std::map<std::string, double> got = run_scenario();

  if (std::getenv("DECO_REGEN_GOLDEN") != nullptr) {
    write_golden(golden_path(), got);
    SUCCEED() << "regenerated " << golden_path();
    return;
  }

  const std::map<std::string, double> want = read_golden(golden_path());
  ASSERT_FALSE(want.empty())
      << "missing fixture " << golden_path()
      << " — run with DECO_REGEN_GOLDEN=1 to create it";
  ASSERT_EQ(got.size(), want.size()) << "scenario keys changed; regenerate";
  for (const auto& [key, expected] : want) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << "scenario no longer produces " << key;
    const double tol = 1e-6 * std::max(1.0, std::abs(expected));
    EXPECT_NEAR(it->second, expected, tol) << "golden drift in " << key;
  }
}

}  // namespace
}  // namespace deco
