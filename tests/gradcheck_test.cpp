// Layer-wise gradient checks at deliberately awkward shapes: batch 1,
// non-square spatial extents, strides > 1 and inner dimensions that are not
// multiples of the matmul unroll width. The generic checks in layers_test.cpp
// run at friendly shapes; these pin down the padding/stride/remainder paths
// that the row-blocked parallel kernels have to get right. Both input and
// parameter gradients are verified against central finite differences, and
// the loss heads (hard and soft cross-entropy) are checked w.r.t. logits and
// targets.
#include <gtest/gtest.h>

#include "deco/nn/layers.h"
#include "deco/nn/loss.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::nn {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

// Checks dL/dx for L = <forward(x), v> against finite differences.
void check_input_gradient(Module& layer, const Tensor& x, Rng& rng,
                          float tol = 2e-2f, float eps = 1e-2f) {
  Tensor y = layer.forward(x);
  Tensor v = random_tensor(y.shape(), rng);
  layer.zero_grad();
  Tensor analytic = layer.backward(v);

  auto loss = [&](const Tensor& probe) {
    return dot(layer.forward(probe), v);
  };
  Tensor numeric = numeric_gradient(loss, x, eps);
  EXPECT_LT(relative_error(analytic, numeric), tol)
      << layer.name() << " input gradient mismatch at " << x.shape_str();
}

// Checks dL/dp for every parameter p of the layer.
void check_param_gradients(Module& layer, const Tensor& x, Rng& rng,
                           float tol = 2e-2f) {
  Tensor y = layer.forward(x);
  Tensor v = random_tensor(y.shape(), rng);
  layer.zero_grad();
  layer.backward(v);

  for (ParamRef& p : layer.parameters()) {
    Tensor analytic = *p.grad;
    Tensor& value = *p.value;
    auto loss = [&](const Tensor& probe) {
      Tensor saved = value;
      value = probe;
      const float l = dot(layer.forward(x), v);
      value = saved;
      return l;
    };
    Tensor numeric = numeric_gradient(loss, value, 1e-2f);
    EXPECT_LT(relative_error(analytic, numeric), tol)
        << layer.name() << " gradient mismatch for " << p.name << " at "
        << x.shape_str();
  }
}

// ---- Conv2d -----------------------------------------------------------------

TEST(GradCheckOddShapes, Conv2dBatchOneNonSquare) {
  Rng rng(101);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = random_tensor({1, 2, 5, 7}, rng);
  check_input_gradient(conv, x, rng);
  check_param_gradients(conv, x, rng);
}

TEST(GradCheckOddShapes, Conv2dStrideTwoOddExtent) {
  // 5×9 under stride 2 exercises the truncated final output column/row.
  Rng rng(102);
  Conv2d conv(3, 2, 3, 2, 1, rng);
  Tensor x = random_tensor({2, 3, 5, 9}, rng);
  check_input_gradient(conv, x, rng);
  check_param_gradients(conv, x, rng);
}

TEST(GradCheckOddShapes, Conv2dNoPaddingSingleChannel) {
  Rng rng(103);
  Conv2d conv(1, 5, 3, 1, 0, rng);
  Tensor x = random_tensor({1, 1, 4, 6}, rng);
  check_input_gradient(conv, x, rng);
  check_param_gradients(conv, x, rng);
}

// ---- Linear -----------------------------------------------------------------

TEST(GradCheckOddShapes, LinearBatchOne) {
  Rng rng(104);
  Linear lin(7, 3, rng);
  Tensor x = random_tensor({1, 7}, rng);
  check_input_gradient(lin, x, rng);
  check_param_gradients(lin, x, rng);
}

TEST(GradCheckOddShapes, LinearOddInnerDims) {
  // 13 in / 9 out: neither a multiple of the 4-wide matmul unroll, so the
  // remainder path of matmul_nt carries real weight here.
  Rng rng(105);
  Linear lin(13, 9, rng);
  Tensor x = random_tensor({5, 13}, rng);
  check_input_gradient(lin, x, rng);
  check_param_gradients(lin, x, rng);
}

// ---- InstanceNorm2d ---------------------------------------------------------

TEST(GradCheckOddShapes, InstanceNormBatchOneNonSquare) {
  Rng rng(106);
  InstanceNorm2d norm(3);
  Tensor x = random_tensor({1, 3, 3, 5}, rng);
  check_input_gradient(norm, x, rng);
  check_param_gradients(norm, x, rng);
}

TEST(GradCheckOddShapes, InstanceNormManyChannelsTinySpatial) {
  Rng rng(107);
  InstanceNorm2d norm(5);
  Tensor x = random_tensor({2, 5, 2, 3}, rng);
  check_input_gradient(norm, x, rng);
  check_param_gradients(norm, x, rng);
}

// ---- Activation / pooling ---------------------------------------------------

TEST(GradCheckOddShapes, ReLUBatchOne) {
  Rng rng(108);
  ReLU relu;
  // Shift away from zero so finite differences never straddle the kink.
  Tensor x = random_tensor({1, 3, 5, 7}, rng);
  for (int64_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 5e-2f) x[i] = x[i] < 0 ? -5e-2f : 5e-2f;
  check_input_gradient(relu, x, rng);
}

TEST(GradCheckOddShapes, AvgPoolNonSquare) {
  Rng rng(109);
  AvgPool2d pool(2);
  Tensor x = random_tensor({1, 2, 4, 6}, rng);
  check_input_gradient(pool, x, rng);
}

TEST(GradCheckOddShapes, MaxPoolNonSquare) {
  Rng rng(110);
  MaxPool2d pool(2);
  // Small eps keeps the probes inside each window's argmax basin.
  Tensor x = random_tensor({1, 2, 4, 6}, rng);
  check_input_gradient(pool, x, rng, 2e-2f, 1e-3f);
}

// ---- Loss heads -------------------------------------------------------------

TEST(GradCheckOddShapes, WeightedCrossEntropyLogits) {
  Rng rng(111);
  Tensor logits = random_tensor({3, 5}, rng);
  const std::vector<int64_t> labels{4, 0, 2};
  const std::vector<float> weights{0.3f, 1.0f, 0.7f};

  auto res = weighted_cross_entropy(logits, labels, weights);
  auto loss = [&](const Tensor& probe) {
    return weighted_cross_entropy(probe, labels, weights).loss;
  };
  Tensor numeric = numeric_gradient(loss, logits, 1e-2f);
  EXPECT_LT(relative_error(res.grad_logits, numeric), 2e-2f);
}

TEST(GradCheckOddShapes, WeightedCrossEntropyBatchOne) {
  Rng rng(112);
  Tensor logits = random_tensor({1, 3}, rng);
  const std::vector<int64_t> labels{1};

  auto res = weighted_cross_entropy(logits, labels);
  auto loss = [&](const Tensor& probe) {
    return weighted_cross_entropy(probe, labels).loss;
  };
  Tensor numeric = numeric_gradient(loss, logits, 1e-2f);
  EXPECT_LT(relative_error(res.grad_logits, numeric), 2e-2f);
}

TEST(GradCheckOddShapes, SoftCrossEntropyLogitsAndTargets) {
  Rng rng(113);
  Tensor logits = random_tensor({2, 4}, rng);
  // Non-negative targets (unnormalized is allowed).
  Tensor targets = random_tensor({2, 4}, rng);
  for (int64_t i = 0; i < targets.numel(); ++i)
    targets[i] = std::abs(targets[i]) + 0.1f;
  const std::vector<float> weights{0.8f, 0.5f};

  auto res = soft_cross_entropy(logits, targets, weights);

  auto loss_logits = [&](const Tensor& probe) {
    return soft_cross_entropy(probe, targets, weights).loss;
  };
  Tensor num_logits = numeric_gradient(loss_logits, logits, 1e-2f);
  EXPECT_LT(relative_error(res.grad_logits, num_logits), 2e-2f);

  auto loss_targets = [&](const Tensor& probe) {
    return soft_cross_entropy(logits, probe, weights).loss;
  };
  Tensor num_targets = numeric_gradient(loss_targets, targets, 1e-2f);
  EXPECT_LT(relative_error(res.grad_targets, num_targets), 2e-2f);
}

}  // namespace
}  // namespace deco::nn
