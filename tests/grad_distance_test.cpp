#include "deco/condense/grad_distance.h"

#include <gtest/gtest.h>

#include "deco/condense/grad_utils.h"
#include "deco/nn/convnet.h"
#include "deco/nn/loss.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::condense {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

GradVec random_gradvec(Rng& rng) {
  GradVec g;
  g.push_back(random_tensor({4, 6}, rng));
  g.push_back(random_tensor({4}, rng));
  g.push_back(random_tensor({3, 10}, rng));
  return g;
}

TEST(GradDistanceTest, ZeroForIdenticalGradients) {
  Rng rng(1);
  GradVec a = random_gradvec(rng);
  GradVec b = a;
  EXPECT_NEAR(gradient_distance_value(a, b), 0.0f, 1e-5f);
}

TEST(GradDistanceTest, MaximalForOpposedGradients) {
  Rng rng(2);
  GradVec a = random_gradvec(rng);
  GradVec b;
  for (const Tensor& t : a) b.push_back(t * -1.0f);
  // Per-row cosine = −1 → distance = 2 per row. Rows: 4 (first matrix) + 3
  // (second matrix); the 1-D tensor is excluded from the distance, as in the
  // reference DC implementation.
  EXPECT_NEAR(gradient_distance_value(a, b), 14.0f, 1e-4f);
}

TEST(GradDistanceTest, ValueIsScaleInvariant) {
  Rng rng(3);
  GradVec a = random_gradvec(rng);
  GradVec b = random_gradvec(rng);
  GradVec a_scaled;
  for (const Tensor& t : a) a_scaled.push_back(t * 5.0f);
  EXPECT_NEAR(gradient_distance_value(a, b),
              gradient_distance_value(a_scaled, b), 1e-4f);
}

TEST(GradDistanceTest, DegenerateRowsContributeNothing) {
  GradVec a, b;
  a.push_back(Tensor({2, 3}));  // all-zero rows
  b.push_back(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  auto res = gradient_distance(a, b);
  EXPECT_EQ(res.value, 0.0f);
  EXPECT_EQ(res.d_syn[0].norm(), 0.0f);
}

TEST(GradDistanceTest, AnalyticDerivativeMatchesFiniteDifference) {
  Rng rng(4);
  GradVec a = random_gradvec(rng);
  GradVec b = random_gradvec(rng);
  auto res = gradient_distance(a, b);

  for (size_t li = 0; li < a.size(); ++li) {
    auto loss = [&](const Tensor& probe) {
      GradVec mod = a;
      mod[li] = probe;
      return gradient_distance_value(mod, b);
    };
    Tensor numeric = numeric_gradient(loss, a[li], 1e-3f);
    EXPECT_LT(relative_error(res.d_syn[li], numeric), 1e-2f)
        << "layer " << li;
  }
}

TEST(GradDistanceTest, DerivativeIsOrthogonalToOwnGradient) {
  // Cosine distance is invariant to the scale of a, so its derivative must be
  // orthogonal to a (per row). Check the flat dot product layer by layer.
  Rng rng(5);
  GradVec a = random_gradvec(rng);
  GradVec b = random_gradvec(rng);
  auto res = gradient_distance(a, b);
  for (size_t li = 0; li < a.size(); ++li) {
    int64_t rows = a[li].ndim() >= 2 ? a[li].dim(0) : 1;
    int64_t cols = a[li].numel() / rows;
    for (int64_t r = 0; r < rows; ++r) {
      double d = 0.0;
      for (int64_t j = 0; j < cols; ++j)
        d += static_cast<double>(a[li][r * cols + j]) *
             res.d_syn[li][r * cols + j];
      EXPECT_NEAR(d, 0.0, 1e-4) << "layer " << li << " row " << r;
    }
  }
}

TEST(GradDistanceTest, MismatchedLayersThrow) {
  Rng rng(6);
  GradVec a = random_gradvec(rng);
  GradVec b = random_gradvec(rng);
  b.pop_back();
  EXPECT_THROW(gradient_distance(a, b), Error);
}

TEST(GradUtilsTest, CloneAndPerturbRoundTrip) {
  Rng rng(7);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_h = cfg.image_w = 4;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet net(cfg, rng);

  // Produce some gradients.
  Tensor x = random_tensor({2, 1, 4, 4}, rng);
  net.zero_grad();
  Tensor logits = net.forward(x);
  auto ce = nn::weighted_cross_entropy(logits, {0, 1});
  net.backward(ce.grad_logits);

  GradVec g = clone_grads(net);
  EXPECT_EQ(static_cast<size_t>(g.size()), net.parameters().size());
  EXPECT_GT(global_norm(g), 0.0f);
  EXPECT_EQ(total_numel(g), net.num_params());

  // Perturb +eps then −eps must restore parameters exactly enough.
  Tensor before = *net.parameters()[0].value;
  perturb_params(net, g, 0.5f);
  Tensor mid = *net.parameters()[0].value;
  EXPECT_GT(before.l1_distance(mid), 0.0f);
  perturb_params(net, g, -0.5f);
  Tensor after = *net.parameters()[0].value;
  EXPECT_LT(before.l1_distance(after), 1e-4f);
}

}  // namespace
}  // namespace deco::condense
