#include "deco/augment/siamese.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "test_util.h"

namespace deco::augment {
namespace {

using deco::testing::expect_tensor_near;
using deco::testing::random_tensor;

TEST(SiameseAugmentTest, StrategyParsing) {
  SiameseAugment none("");
  EXPECT_FALSE(none.enabled());
  SiameseAugment all("flip_shift_scale_rotate_color_cutout");
  EXPECT_TRUE(all.enabled());
  // color expands to 3 ops → 4 + 3 + 1 = 8 total.
  EXPECT_EQ(all.ops().size(), 8u);
  EXPECT_THROW(SiameseAugment("banana"), deco::Error);
}

TEST(SiameseAugmentTest, NoneIsIdentity) {
  SiameseAugment aug("");
  Rng rng(1);
  Tensor x = random_tensor({2, 3, 8, 8}, rng);
  AugmentParams p;  // kNone
  expect_tensor_near(aug.forward(x, p), x, 0.0f, 0.0f);
}

TEST(SiameseAugmentTest, FlipIsInvolution) {
  SiameseAugment aug("flip");
  Rng rng(2);
  Tensor x = random_tensor({1, 2, 6, 6}, rng);
  AugmentParams p;
  p.kind = OpKind::kFlip;
  p.flip = true;
  expect_tensor_near(aug.forward(aug.forward(x, p), p), x, 1e-7f, 0.0f);
}

TEST(SiameseAugmentTest, ShiftMovesPixels) {
  SiameseAugment aug("shift");
  Tensor x({1, 1, 4, 4});
  x.at4(0, 0, 1, 1) = 5.0f;
  AugmentParams p;
  p.kind = OpKind::kShift;
  p.shift_x = 1;
  p.shift_y = 2;
  Tensor y = aug.forward(x, p);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 3, 2), 5.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 0.0f);
}

TEST(SiameseAugmentTest, ScaleOnePreservesImage) {
  SiameseAugment aug("scale");
  Rng rng(3);
  Tensor x = random_tensor({1, 1, 6, 6}, rng);
  AugmentParams p;
  p.kind = OpKind::kScale;
  p.scale = 1.0f;
  expect_tensor_near(aug.forward(x, p), x, 1e-5f, 1e-5f);
}

TEST(SiameseAugmentTest, RotateZeroPreservesImage) {
  SiameseAugment aug("rotate");
  Rng rng(4);
  Tensor x = random_tensor({1, 2, 5, 5}, rng);
  AugmentParams p;
  p.kind = OpKind::kRotate;
  p.rotate = 0.0f;
  expect_tensor_near(aug.forward(x, p), x, 1e-5f, 1e-5f);
}

TEST(SiameseAugmentTest, BrightnessShifts) {
  SiameseAugment aug("brightness");
  Tensor x({1, 1, 2, 2}, {0, 1, 2, 3});
  AugmentParams p;
  p.kind = OpKind::kBrightness;
  p.brightness = 0.5f;
  Tensor y = aug.forward(x, p);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_FLOAT_EQ(y[3], 3.5f);
}

TEST(SiameseAugmentTest, SaturationZeroGreysOut) {
  SiameseAugment aug("saturation");
  Tensor x({1, 3, 1, 1}, {0.0f, 0.5f, 1.0f});
  AugmentParams p;
  p.kind = OpKind::kSaturation;
  p.saturation = 0.0f;
  Tensor y = aug.forward(x, p);
  for (int64_t c = 0; c < 3; ++c) EXPECT_NEAR(y[c], 0.5f, 1e-6f);
}

TEST(SiameseAugmentTest, ContrastOnePreserves) {
  SiameseAugment aug("contrast");
  Rng rng(5);
  Tensor x = random_tensor({2, 3, 4, 4}, rng);
  AugmentParams p;
  p.kind = OpKind::kContrast;
  p.contrast = 1.0f;
  expect_tensor_near(aug.forward(x, p), x, 1e-6f, 1e-6f);
}

TEST(SiameseAugmentTest, CutoutZeroesRegion) {
  SiameseAugment aug("cutout");
  Tensor x = Tensor::full({1, 1, 6, 6}, 1.0f);
  AugmentParams p;
  p.kind = OpKind::kCutout;
  p.cutout_x = 1;
  p.cutout_y = 2;
  p.cutout_size = 2;
  Tensor y = aug.forward(x, p);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 2, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 3, 2), 0.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.sum(), 36.0f - 4.0f);
}

TEST(SiameseAugmentTest, SampledParamsInRange) {
  SiameseAugment aug("flip_shift_scale_rotate_color_cutout");
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    AugmentParams p = aug.sample(rng, 16, 16);
    EXPECT_NE(p.kind, OpKind::kNone);
    if (p.kind == OpKind::kScale) {
      EXPECT_GE(p.scale, 0.8f);
      EXPECT_LE(p.scale, 1.2f);
    }
    if (p.kind == OpKind::kShift) {
      EXPECT_LE(std::abs(p.shift_x), 2);
      EXPECT_LE(std::abs(p.shift_y), 2);
    }
    if (p.kind == OpKind::kCutout) {
      EXPECT_GE(p.cutout_x, 0);
      EXPECT_LE(p.cutout_x + p.cutout_size, 16);
    }
  }
}

// THE key property: backward must be the exact adjoint of forward —
// <forward(x), y> == <x, backward(y)> for every op and parameter draw.
// Gradient matching backpropagates through the augmentation, so a wrong
// adjoint silently corrupts DSA's synthetic gradients.
class AdjointSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdjointSweep, BackwardIsAdjointOfForward) {
  SiameseAugment aug("flip_shift_scale_rotate_color_cutout");
  Rng rng(1000 + GetParam());
  Tensor x = random_tensor({2, 3, 8, 8}, rng);
  AugmentParams p = aug.sample(rng, 8, 8);
  Tensor y = random_tensor({2, 3, 8, 8}, rng);
  // Ops may be affine (brightness adds a constant): test the linearized
  // operator A = forward − forward(0), whose adjoint backward implements.
  Tensor zero({2, 3, 8, 8});
  const float lhs = dot(aug.forward(x, p) - aug.forward(zero, p), y);
  const float rhs = dot(x, aug.backward(y, p));
  EXPECT_NEAR(lhs, rhs, 1e-2f) << "op kind " << static_cast<int>(p.kind);
}

INSTANTIATE_TEST_SUITE_P(ManyDraws, AdjointSweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace deco::augment
