#include "deco/tensor/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "deco/tensor/check.h"
#include "deco/tensor/tensor.h"

namespace deco {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndRange) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-2.0, 4.0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRejectsNonPositive) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(8);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, FillTensors) {
  Rng rng(10);
  Tensor t({1000});
  rng.fill_normal(t, 1.0, 0.5);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
  rng.fill_uniform(t, 2.0, 3.0);
  EXPECT_GE(t.min(), 2.0f);
  EXPECT_LT(t.max(), 3.0f);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int64_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(12);
  for (int rep = 0; rep < 50; ++rep) {
    auto s = rng.sample_without_replacement(20, 8);
    ASSERT_EQ(s.size(), 8u);
    std::set<int64_t> unique(s.begin(), s.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int64_t v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(13);
  auto s = rng.sample_without_replacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleRejectsBadArgs) {
  Rng rng(14);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(15);
  Rng child = a.split();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace deco
