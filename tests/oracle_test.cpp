// Tests for the oracle (upper-bound) learner path: ground-truth labels,
// unlimited storage, and its role as an upper bound in the runner.
#include <gtest/gtest.h>

#include "deco/baselines/replay.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::baselines {
namespace {

nn::ConvNetConfig model_config() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

TEST(OracleTest, LabeledSegmentsStoreTrueLabels) {
  Rng rng(1);
  nn::ConvNet model(model_config(), rng);
  data::ProceduralImageWorld world(data::core50_spec(), 2);

  BaselineConfig bc;
  bc.beta = 100;  // no training in this test
  UnlimitedLearner learner(model, bc, 3);

  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 8;
  sc.total_segments = 2;
  data::TemporalStream stream(world, sc, 4);
  data::Segment seg;
  while (stream.next(seg))
    learner.observe_labeled_segment(seg.images, seg.true_labels);
  EXPECT_EQ(learner.stored(), 16);
}

TEST(OracleTest, RejectsLabelCountMismatch) {
  Rng rng(5);
  nn::ConvNet model(model_config(), rng);
  BaselineConfig bc;
  UnlimitedLearner learner(model, bc, 6);
  Tensor images({4, 3, 16, 16});
  EXPECT_THROW(learner.observe_labeled_segment(images, {0, 1}), Error);
}

TEST(OracleTest, OracleLabelsTrainBetterThanNoisyPseudoLabels) {
  // With a weak model (high pseudo-label noise), the oracle path must end at
  // least as accurate as the pseudo-label path on the same stream — this is
  // what makes it a defensible upper bound.
  data::ProceduralImageWorld world(data::core50_spec(), 7);
  data::Dataset labeled = world.make_labeled_set(3, 1);
  data::Dataset test = world.make_test_set(15, 2);

  auto run = [&](bool oracle) {
    Rng rng(8);
    nn::ConvNet model(model_config(), rng);
    std::vector<int64_t> all(static_cast<size_t>(labeled.size()));
    for (int64_t i = 0; i < labeled.size(); ++i)
      all[static_cast<size_t>(i)] = i;
    core::train_classifier(model, labeled.batch(all), labeled.labels(), 8,
                           1e-3f, 5e-4f, 32, rng);
    BaselineConfig bc;
    bc.beta = 2;
    bc.model_update_epochs = 4;
    UnlimitedLearner learner(model, bc, 9);
    learner.init_buffer_from(labeled);
    data::StreamConfig sc;
    sc.stc = 16;
    sc.segment_size = 16;
    sc.total_segments = 4;
    data::TemporalStream stream(world, sc, 10);
    data::Segment seg;
    while (stream.next(seg)) {
      if (oracle) {
        learner.observe_labeled_segment(seg.images, seg.true_labels);
      } else {
        learner.observe_segment(seg.images);
      }
    }
    return eval::accuracy(model, test);
  };
  const float noisy = run(false);
  const float oracle = run(true);
  EXPECT_GE(oracle, noisy - 2.0f);  // small slack for training stochasticity
}

}  // namespace
}  // namespace baselines
