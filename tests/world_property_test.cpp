// Property sweeps over every dataset preset: invariants that must hold for
// any world the library ships (determinism, pixel validity, class balance,
// separability, stream STC tracking). Parameterized so each preset is a
// distinct test case.
#include <gtest/gtest.h>

#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "test_util.h"

namespace deco::data {
namespace {

DatasetSpec spec_by_index(int i) {
  switch (i) {
    case 0: return icub1_spec();
    case 1: return core50_spec();
    case 2: return cifar100_spec();
    case 3: return imagenet10_spec();
    default: return cifar10_spec();
  }
}

class WorldPresetSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorldPresetSweep, RenderingIsDeterministicAndBounded) {
  const DatasetSpec spec = spec_by_index(GetParam());
  ProceduralImageWorld w(spec, 1234);
  for (int64_t cls = 0; cls < std::min<int64_t>(spec.num_classes, 6); ++cls) {
    Tensor a = w.render(cls, 0, 0, 5);
    Tensor b = w.render(cls, 0, 0, 5);
    EXPECT_EQ(a.l1_distance(b), 0.0f);
    EXPECT_GE(a.min(), 0.0f);
    EXPECT_LE(a.max(), 1.0f);
    EXPECT_EQ(a.shape(),
              (std::vector<int64_t>{spec.channels, spec.height, spec.width}));
  }
}

TEST_P(WorldPresetSweep, ClassesAreSeparableOnAverage) {
  const DatasetSpec spec = spec_by_index(GetParam());
  ProceduralImageWorld w(spec, 99);
  // Mean within-class distance across instances must be below the mean
  // cross-class distance — otherwise no model could learn the world.
  double within = 0.0, across = 0.0;
  int n = 0;
  const int64_t limit = std::min<int64_t>(spec.num_classes, 8);
  for (int64_t cls = 0; cls + 1 < limit; ++cls) {
    Tensor a = w.render(cls, 0, 0, 3);
    Tensor b = w.render(cls, std::min<int64_t>(1, spec.instances_per_class - 1),
                        0, 77);
    // Cross-group class: skip the similarity partner.
    const int64_t other = (cls + spec.similarity_group) % spec.num_classes;
    Tensor c = w.render(other, 0, 0, 3);
    within += a.l1_distance(b);
    across += a.l1_distance(c);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(within / n, across / n);
}

TEST_P(WorldPresetSweep, LabeledAndTestSetsAreBalancedAndDisjointish) {
  const DatasetSpec spec = spec_by_index(GetParam());
  ProceduralImageWorld w(spec, 5);
  Dataset labeled = w.make_labeled_set(3, 1);
  Dataset test = w.make_test_set(3, 1);
  EXPECT_EQ(labeled.size(), 3 * spec.num_classes);
  EXPECT_EQ(test.size(), 3 * spec.num_classes);
  // Reserved frame ranges differ → images are not bytewise identical.
  EXPECT_GT(labeled.image(0).l1_distance(test.image(0)), 1e-4f);
}

TEST_P(WorldPresetSweep, StreamTracksTargetStc) {
  const DatasetSpec spec = spec_by_index(GetParam());
  ProceduralImageWorld w(spec, 6);
  StreamConfig cfg;
  cfg.stc = 24;
  cfg.segment_size = 24;
  cfg.total_segments = 40;
  TemporalStream s(w, cfg, 7);
  std::vector<int64_t> labels;
  Segment seg;
  while (s.next(seg))
    labels.insert(labels.end(), seg.true_labels.begin(), seg.true_labels.end());
  const double emp = TemporalStream::empirical_stc(labels);
  EXPECT_GT(emp, 12.0);
  EXPECT_LT(emp, 44.0);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, WorldPresetSweep, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return spec_by_index(info.param).name;
                         });

}  // namespace
}  // namespace deco::data
