#include "deco/data/faults.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deco/data/world.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::data {
namespace {

StreamConfig small_stream() {
  StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 16;
  sc.total_segments = 6;
  return sc;
}

TEST(FaultConfigTest, DefaultInjectsNothing) {
  FaultConfig fc;
  EXPECT_FALSE(fc.any());
  fc.validate();  // defaults are valid
  fc.nan_burst_rate = 0.1;
  EXPECT_TRUE(fc.any());
}

TEST(FaultConfigTest, RejectsOutOfRangeRates) {
  FaultConfig fc;
  fc.drop_frame_rate = 1.5;
  EXPECT_THROW(fc.validate(), Error);

  fc = FaultConfig{};
  fc.dead_pixel_rate = -0.1;
  EXPECT_THROW(fc.validate(), Error);

  fc = FaultConfig{};
  fc.burst_size = 0;
  EXPECT_THROW(fc.validate(), Error);

  // Pixel-fault rates share one uniform draw; their sum cannot exceed 1.
  fc = FaultConfig{};
  fc.dead_pixel_rate = 0.5;
  fc.hot_pixel_rate = 0.4;
  fc.salt_pepper_rate = 0.2;
  EXPECT_THROW(fc.validate(), Error);
}

TEST(FaultyStreamTest, ZeroRatesPassSegmentsThroughUnchanged) {
  ProceduralImageWorld world(icub1_spec(), 1);
  TemporalStream clean(world, small_stream(), 2);
  TemporalStream inner(world, small_stream(), 2);
  FaultyStream faulty(inner, FaultConfig{}, 3);

  Segment a, b;
  while (clean.next(a)) {
    ASSERT_TRUE(faulty.next(b));
    EXPECT_EQ(a.true_labels, b.true_labels);
    EXPECT_EQ(a.images.l1_distance(b.images), 0.0f);
  }
  EXPECT_FALSE(faulty.next(b));
  EXPECT_EQ(faulty.log().total_faults(), 0);
  EXPECT_EQ(faulty.log().segments_emitted, small_stream().total_segments);
}

TEST(FaultyStreamTest, PixelFaultsHitExpectedFractionAndValues) {
  ProceduralImageWorld world(icub1_spec(), 4);
  TemporalStream inner(world, small_stream(), 5);
  FaultConfig fc;
  fc.dead_pixel_rate = 0.05;
  fc.hot_pixel_rate = 0.05;
  FaultyStream faulty(inner, fc, 6);

  Segment seg;
  int64_t zeros = 0, ones = 0, total = 0;
  while (faulty.next(seg)) {
    const float* p = seg.images.data();
    for (int64_t i = 0; i < seg.images.numel(); ++i) {
      if (p[i] == 0.0f) ++zeros;
      if (p[i] == 1.0f) ++ones;
    }
    total += seg.images.numel();
  }
  EXPECT_GT(faulty.log().dead_pixels, 0);
  EXPECT_GT(faulty.log().hot_pixels, 0);
  // ≈5% each, very loose bounds (natural 0/1 pixels also count).
  EXPECT_GT(static_cast<double>(zeros) / static_cast<double>(total), 0.02);
  EXPECT_GT(static_cast<double>(ones) / static_cast<double>(total), 0.02);
}

TEST(FaultyStreamTest, NanBurstsProduceNonFinitePixels) {
  ProceduralImageWorld world(icub1_spec(), 7);
  TemporalStream inner(world, small_stream(), 8);
  FaultConfig fc;
  fc.nan_burst_rate = 0.5;
  fc.inf_burst_rate = 0.25;
  FaultyStream faulty(inner, fc, 9);

  Segment seg;
  int64_t nonfinite = 0;
  while (faulty.next(seg)) {
    const float* p = seg.images.data();
    for (int64_t i = 0; i < seg.images.numel(); ++i)
      if (!std::isfinite(p[i])) ++nonfinite;
  }
  EXPECT_GT(faulty.log().nan_bursts, 0);
  EXPECT_GT(faulty.log().inf_bursts, 0);
  EXPECT_GT(nonfinite, 0);
}

TEST(FaultyStreamTest, StructuralFaultsKeepLabelsAligned) {
  ProceduralImageWorld world(icub1_spec(), 10);
  StreamConfig sc = small_stream();
  sc.total_segments = 12;
  TemporalStream inner(world, sc, 11);
  FaultConfig fc;
  fc.drop_frame_rate = 0.3;
  fc.duplicate_frame_rate = 0.2;
  fc.truncate_rate = 0.5;
  FaultyStream faulty(inner, fc, 12);

  Segment seg;
  int64_t segments = 0;
  while (faulty.next(seg)) {
    ++segments;
    // Labels track the restructured frames and at least one frame survives.
    ASSERT_GE(seg.images.dim(0), 1);
    ASSERT_EQ(seg.images.dim(0), static_cast<int64_t>(seg.true_labels.size()));
    for (int64_t l : seg.true_labels) EXPECT_GE(l, 0);
  }
  EXPECT_EQ(segments, sc.total_segments);
  EXPECT_GT(faulty.log().frames_dropped + faulty.log().segments_truncated, 0);
  EXPECT_GT(faulty.log().frames_duplicated, 0);
  EXPECT_LT(faulty.log().frames_emitted,
            sc.total_segments * sc.segment_size);  // something was dropped
}

TEST(FaultyStreamTest, SameSeedIsDeterministic) {
  ProceduralImageWorld world(icub1_spec(), 13);
  FaultConfig fc;
  fc.salt_pepper_rate = 0.05;
  fc.drop_frame_rate = 0.1;
  fc.nan_burst_rate = 0.1;

  auto run = [&]() {
    TemporalStream inner(world, small_stream(), 14);
    FaultyStream faulty(inner, fc, 15);
    Segment seg;
    std::vector<float> checksum;
    while (faulty.next(seg)) {
      double sum = 0.0;
      const float* p = seg.images.data();
      for (int64_t i = 0; i < seg.images.numel(); ++i)
        if (std::isfinite(p[i])) sum += p[i];
      checksum.push_back(static_cast<float>(sum));
      checksum.push_back(static_cast<float>(seg.images.dim(0)));
    }
    return checksum;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultyStreamTest, ExposureFaultsStayInRange) {
  ProceduralImageWorld world(icub1_spec(), 16);
  TemporalStream inner(world, small_stream(), 17);
  FaultConfig fc;
  fc.overexpose_rate = 0.5;
  fc.underexpose_rate = 0.4;
  FaultyStream faulty(inner, fc, 18);

  Segment seg;
  while (faulty.next(seg)) {
    EXPECT_GE(seg.images.min(), 0.0f);
    EXPECT_LE(seg.images.max(), 1.0f);
  }
  EXPECT_GT(faulty.log().frames_overexposed, 0);
  EXPECT_GT(faulty.log().frames_underexposed, 0);
}

}  // namespace
}  // namespace deco::data
