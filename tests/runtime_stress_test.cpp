// Multi-session runtime determinism stress tests.
//
// The SessionManager's contract is that concurrency is *invisible* to each
// session: an 8-session concurrent run must produce, per session, the same
// bytes as running that session alone in a plain sequential loop — at ANY
// DECO_NUM_THREADS. These tests prove it the strong way: DecoLearner's
// save_state file covers the model parameters, the synthetic buffer, rng and
// condenser momentum state, so comparing those files byte-for-byte (plus the
// full report streams) leaves no room for "close enough".
//
// Also covered: mid-run kill of one session (resume from its periodic
// checkpoint) leaves every session — resumed and bystanders — bit-exact.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "deco/core/thread_pool.h"
#include "deco/runtime/fleet.h"
#include "deco/runtime/session_manager.h"

namespace deco {
namespace {

runtime::FleetConfig stress_config(int64_t sessions) {
  runtime::FleetConfig fc;
  fc.sessions = sessions;
  fc.spec.name = "stress";
  fc.spec.num_classes = 3;
  fc.spec.channels = 3;
  fc.spec.height = 8;
  fc.spec.width = 8;
  fc.spec.instances_per_class = 2;
  fc.stream.stc = 8;
  fc.stream.segment_size = 8;
  fc.stream.total_segments = 4;
  fc.deco.ipc = 2;
  fc.deco.beta = 2;
  fc.deco.model_update_epochs = 1;
  fc.deco.train_batch = 8;
  fc.deco.condenser.iterations = 2;
  fc.model_width = 8;
  fc.model_depth = 2;
  fc.labeled_per_class = 2;
  fc.runtime.queue_depth = 3;  // smaller than the stream: exercises refills
  fc.runtime.keep_reports = true;
  return fc;
}

std::string state_bytes(core::OnDeviceLearner& learner,
                        const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/deco_stress_" + tag +
                           ".state";
  learner.save_state(path);
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

std::string report_fingerprint(const std::vector<core::SegmentReport>& reps) {
  std::ostringstream os;
  for (const core::SegmentReport& r : reps) {
    for (int64_t l : r.pseudo_labels) os << l << ",";
    for (float c : r.confidences) os << c << ",";
    for (int64_t k : r.retained) os << k << ",";
    os << "|" << r.active_class_count << "|" << r.condense_distance << ";";
  }
  return os.str();
}

/// Pre-materializes every session's stream so the sequential reference and
/// the concurrent runs consume the exact same tensors.
std::vector<std::vector<Tensor>> materialize_streams(
    const runtime::FleetConfig& fc, const data::ProceduralImageWorld& world) {
  std::vector<std::vector<Tensor>> out(static_cast<size_t>(fc.sessions));
  for (int64_t i = 0; i < fc.sessions; ++i) {
    data::TemporalStream stream(world, fc.stream,
                                runtime::Fleet::stream_seed(fc, i));
    data::Segment seg;
    while (stream.next(seg))
      out[static_cast<size_t>(i)].push_back(seg.images);
  }
  return out;
}

struct SessionOutcome {
  std::string state;
  std::string reports;
};

/// The reference: each session runs alone, segments in order, no manager.
std::vector<SessionOutcome> run_sequential(
    const runtime::FleetConfig& fc, const data::ProceduralImageWorld& world,
    const std::vector<std::vector<Tensor>>& streams) {
  std::vector<SessionOutcome> out(static_cast<size_t>(fc.sessions));
  for (int64_t i = 0; i < fc.sessions; ++i) {
    runtime::LearnerHandle h = runtime::Fleet::make_learner(fc, world, i);
    std::vector<core::SegmentReport> reports;
    for (const Tensor& seg : streams[static_cast<size_t>(i)])
      reports.push_back(h.learner->observe_segment(seg));
    out[static_cast<size_t>(i)].state =
        state_bytes(*h.learner, "seq" + std::to_string(i));
    out[static_cast<size_t>(i)].reports = report_fingerprint(reports);
  }
  return out;
}

/// The system under test: all sessions share one manager, pump thread on,
/// interleaved round-robin submission.
std::vector<SessionOutcome> run_concurrent(
    const runtime::FleetConfig& fc, const data::ProceduralImageWorld& world,
    const std::vector<std::vector<Tensor>>& streams) {
  runtime::SessionManager mgr(fc.runtime);
  for (int64_t i = 0; i < fc.sessions; ++i) {
    runtime::LearnerHandle h = runtime::Fleet::make_learner(fc, world, i);
    mgr.add_session(runtime::Fleet::session_name(i), std::move(h.learner),
                    std::move(h.keepalive));
  }
  mgr.start();
  const size_t per_session = streams[0].size();
  for (size_t seg = 0; seg < per_session; ++seg)
    for (int64_t i = 0; i < fc.sessions; ++i)
      EXPECT_TRUE(mgr.submit(runtime::Fleet::session_name(i),
                             streams[static_cast<size_t>(i)][seg]));
  mgr.stop();

  std::vector<SessionOutcome> out(static_cast<size_t>(fc.sessions));
  for (int64_t i = 0; i < fc.sessions; ++i) {
    const std::string name = runtime::Fleet::session_name(i);
    const runtime::SessionStatus st = mgr.status(name);
    EXPECT_EQ(st.segments_processed,
              static_cast<int64_t>(per_session)) << name;
    EXPECT_LE(st.queue.max_depth, fc.runtime.queue_depth) << name;
    EXPECT_EQ(st.queue.shed, 0) << name;
    out[static_cast<size_t>(i)].state =
        state_bytes(mgr.learner(name), "conc" + std::to_string(i));
    out[static_cast<size_t>(i)].reports = report_fingerprint(mgr.reports(name));
  }
  return out;
}

TEST(RuntimeStress, EightConcurrentSessionsMatchSequentialAtAnyThreadCount) {
  const runtime::FleetConfig fc = stress_config(8);
  data::ProceduralImageWorld world(fc.spec, runtime::Fleet::world_seed(fc));
  const std::vector<std::vector<Tensor>> streams =
      materialize_streams(fc, world);

  const int prev_threads = core::num_threads();
  core::set_num_threads(1);
  const std::vector<SessionOutcome> ref =
      run_sequential(fc, world, streams);
  for (const SessionOutcome& r : ref) {
    ASSERT_GT(r.state.size(), 1000u);  // a real DECOLSAV file, not an empty one
    ASSERT_FALSE(r.reports.empty());
  }

  for (const int threads : {1, 2, 4}) {
    core::set_num_threads(threads);
    const std::vector<SessionOutcome> got =
        run_concurrent(fc, world, streams);
    for (int64_t i = 0; i < fc.sessions; ++i) {
      const size_t s = static_cast<size_t>(i);
      EXPECT_EQ(got[s].state, ref[s].state)
          << "session " << i << " state bytes diverged at " << threads
          << " threads";
      EXPECT_EQ(got[s].reports, ref[s].reports)
          << "session " << i << " reports diverged at " << threads
          << " threads";
    }
  }
  core::set_num_threads(prev_threads);
}

TEST(RuntimeStress, KillAndResumeOneSessionLeavesEveryoneBitExact) {
  runtime::FleetConfig fc = stress_config(3);
  fc.stream.total_segments = 6;
  fc.runtime.checkpoint_every = 3;
  fc.runtime.checkpoint_dir = ::testing::TempDir();
  data::ProceduralImageWorld world(fc.spec, runtime::Fleet::world_seed(fc));
  const std::vector<std::vector<Tensor>> streams =
      materialize_streams(fc, world);

  const int prev_threads = core::num_threads();
  core::set_num_threads(1);
  const std::vector<SessionOutcome> ref =
      run_sequential(fc, world, streams);

  core::set_num_threads(2);
  const int64_t victim = 1;
  runtime::SessionManager mgr(fc.runtime);
  for (int64_t i = 0; i < fc.sessions; ++i) {
    runtime::LearnerHandle h = runtime::Fleet::make_learner(fc, world, i);
    mgr.add_session(runtime::Fleet::session_name(i), std::move(h.learner),
                    std::move(h.keepalive));
  }
  mgr.start();
  // The victim "dies" after its 3rd segment (right on a checkpoint boundary);
  // the bystanders receive their full streams.
  for (size_t seg = 0; seg < 6; ++seg) {
    for (int64_t i = 0; i < fc.sessions; ++i) {
      if (i == victim && seg >= 3) continue;
      ASSERT_TRUE(mgr.submit(runtime::Fleet::session_name(i),
                             streams[static_cast<size_t>(i)][seg]));
    }
  }
  mgr.stop();

  const runtime::SessionStatus vs =
      mgr.status(runtime::Fleet::session_name(victim));
  ASSERT_EQ(vs.segments_processed, 3);
  ASSERT_EQ(vs.checkpoints_written, 1);

  // Resurrect the victim in a fresh learner from its periodic checkpoint and
  // replay only the segments it missed.
  runtime::LearnerHandle resumed =
      runtime::Fleet::make_learner(fc, world, victim);
  resumed.learner->load_state(vs.checkpoint_path);
  for (size_t seg = 3; seg < 6; ++seg)
    resumed.learner->observe_segment(streams[static_cast<size_t>(victim)][seg]);
  std::remove(vs.checkpoint_path.c_str());

  EXPECT_EQ(state_bytes(*resumed.learner, "resumed"),
            ref[static_cast<size_t>(victim)].state)
      << "resumed victim diverged from the uninterrupted reference";
  for (int64_t i = 0; i < fc.sessions; ++i) {
    if (i == victim) continue;
    const std::string name = runtime::Fleet::session_name(i);
    EXPECT_EQ(state_bytes(mgr.learner(name), "bystander" + std::to_string(i)),
              ref[static_cast<size_t>(i)].state)
        << "bystander session " << i << " was disturbed by the kill";
  }
  core::set_num_threads(prev_threads);
}

}  // namespace
}  // namespace deco
