// Shared helpers for the test suite: numeric gradient checking, tensor
// comparison with readable failure output, and a minimal JSON parser for
// validating the artifacts the library emits (telemetry aggregates,
// BENCH_scenarios.json) without external deps.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::testing {

/// Central-difference numeric gradient of a scalar function of a tensor.
inline Tensor numeric_gradient(const std::function<float(const Tensor&)>& f,
                               const Tensor& x, float eps = 1e-3f) {
  Tensor grad(x.shape());
  Tensor probe = x;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    const float fp = f(probe);
    probe[i] = orig - eps;
    const float fm = f(probe);
    probe[i] = orig;
    grad[i] = (fp - fm) / (2.0f * eps);
  }
  return grad;
}

/// Asserts elementwise closeness with a combined absolute/relative tolerance.
inline void expect_tensor_near(const Tensor& actual, const Tensor& expected,
                               float atol = 1e-3f, float rtol = 1e-2f) {
  ASSERT_EQ(actual.numel(), expected.numel());
  for (int64_t i = 0; i < actual.numel(); ++i) {
    const float a = actual[i];
    const float e = expected[i];
    const float tol = atol + rtol * std::abs(e);
    EXPECT_NEAR(a, e, tol) << "at flat index " << i;
  }
}

/// Relative error between two gradients (‖a−b‖/max(‖a‖,‖b‖,eps)); robust for
/// comparing analytic vs numeric gradients where per-element tolerance is too
/// strict for near-zero entries.
inline float relative_error(const Tensor& a, const Tensor& b) {
  Tensor diff = a - b;
  const float na = a.norm(), nb = b.norm();
  const float denom = std::max(std::max(na, nb), 1e-8f);
  return diff.norm() / denom;
}

inline Tensor random_tensor(std::vector<int64_t> shape, Rng& rng,
                            double stddev = 1.0) {
  Tensor t(std::move(shape));
  rng.fill_normal(t, 0.0, stddev);
  return t;
}

// ---- minimal JSON parser (round-trip validation without external deps) -----
//
// Hoisted from telemetry_test.cpp so every artifact-validating test (telemetry
// aggregates, BENCH_scenarios.json schema) shares one parser.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // int64 kept separate from double so counter values round-trip exactly.
  std::variant<std::nullptr_t, bool, int64_t, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  int64_t as_int() const { return std::get<int64_t>(v); }
};

class JsonParser {
 public:
  // Takes the text by value: callers routinely pass freshly-built temporaries
  // (`JsonParser(cell.deterministic_json())`), which a reference member would
  // leave dangling.
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at offset " + std::to_string(pos_);
    pos_ = s_.size();  // stop consuming
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': return literal("true", JsonValue{true});
      case 'f': return literal("false", JsonValue{false});
      case 'n': return literal("null", JsonValue{nullptr});
      default: return number();
    }
  }

  JsonValue literal(const char* word, JsonValue v) {
    for (const char* p = word; *p != '\0'; ++p)
      if (pos_ >= s_.size() || s_[pos_++] != *p) {
        fail("bad literal");
        return JsonValue{nullptr};
      }
    return v;
  }

  std::string string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            pos_ += 4;  // tests only emit ASCII; skip the code point
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    else ++pos_;  // closing quote
    return out;
  }

  JsonValue number() {
    const size_t start = pos_;
    bool is_float = false;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')
        is_float = true;
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return JsonValue{nullptr};
    }
    const std::string text = s_.substr(start, pos_ - start);
    try {
      if (is_float) return JsonValue{std::stod(text)};
      return JsonValue{static_cast<int64_t>(std::stoll(text))};
    } catch (...) {
      fail("unparseable number: " + text);
      return JsonValue{nullptr};
    }
  }

  JsonValue array() {
    auto arr = std::make_shared<JsonArray>();
    consume('[');
    skip_ws();
    if (consume(']')) return JsonValue{arr};
    for (;;) {
      arr->push_back(value());
      if (consume(']')) break;
      if (!consume(',')) {
        fail("expected , or ] in array");
        break;
      }
    }
    return JsonValue{arr};
  }

  JsonValue object() {
    auto obj = std::make_shared<JsonObject>();
    consume('{');
    skip_ws();
    if (consume('}')) return JsonValue{obj};
    for (;;) {
      skip_ws();
      const std::string key = string();
      if (!consume(':')) {
        fail("expected : after key");
        break;
      }
      (*obj)[key] = value();
      if (consume('}')) break;
      if (!consume(',')) {
        fail("expected , or } in object");
        break;
      }
    }
    return JsonValue{obj};
  }

  const std::string s_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace deco::testing
