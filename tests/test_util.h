// Shared helpers for the test suite: numeric gradient checking and tensor
// comparison with readable failure output.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "deco/tensor/rng.h"
#include "deco/tensor/tensor.h"

namespace deco::testing {

/// Central-difference numeric gradient of a scalar function of a tensor.
inline Tensor numeric_gradient(const std::function<float(const Tensor&)>& f,
                               const Tensor& x, float eps = 1e-3f) {
  Tensor grad(x.shape());
  Tensor probe = x;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    const float fp = f(probe);
    probe[i] = orig - eps;
    const float fm = f(probe);
    probe[i] = orig;
    grad[i] = (fp - fm) / (2.0f * eps);
  }
  return grad;
}

/// Asserts elementwise closeness with a combined absolute/relative tolerance.
inline void expect_tensor_near(const Tensor& actual, const Tensor& expected,
                               float atol = 1e-3f, float rtol = 1e-2f) {
  ASSERT_EQ(actual.numel(), expected.numel());
  for (int64_t i = 0; i < actual.numel(); ++i) {
    const float a = actual[i];
    const float e = expected[i];
    const float tol = atol + rtol * std::abs(e);
    EXPECT_NEAR(a, e, tol) << "at flat index " << i;
  }
}

/// Relative error between two gradients (‖a−b‖/max(‖a‖,‖b‖,eps)); robust for
/// comparing analytic vs numeric gradients where per-element tolerance is too
/// strict for near-zero entries.
inline float relative_error(const Tensor& a, const Tensor& b) {
  Tensor diff = a - b;
  const float na = a.norm(), nb = b.norm();
  const float denom = std::max(std::max(na, nb), 1e-8f);
  return diff.norm() / denom;
}

inline Tensor random_tensor(std::vector<int64_t> shape, Rng& rng,
                            double stddev = 1.0) {
  Tensor t(std::move(shape));
  rng.fill_normal(t, 0.0, stddev);
  return t;
}

}  // namespace deco::testing
