// Gradient checks for every layer: the analytic backward pass (both input and
// parameter gradients) is verified against central finite differences. These
// are the load-bearing tests for the whole library — gradient matching is
// only as correct as the gradients it matches.
#include "deco/nn/layers.h"

#include <gtest/gtest.h>

#include <memory>

#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::nn {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

// Checks dL/dx for L = <forward(x), v> against finite differences.
void check_input_gradient(Module& layer, const Tensor& x, Rng& rng,
                          float tol = 2e-2f) {
  Tensor y = layer.forward(x);
  Tensor v = random_tensor(y.shape(), rng);
  layer.zero_grad();
  Tensor analytic = layer.backward(v);

  auto loss = [&](const Tensor& probe) {
    return dot(layer.forward(probe), v);
  };
  Tensor numeric = numeric_gradient(loss, x, 1e-2f);
  EXPECT_LT(relative_error(analytic, numeric), tol)
      << layer.name() << " input gradient mismatch";
}

// Checks dL/dp for every parameter p of the layer.
void check_param_gradients(Module& layer, const Tensor& x, Rng& rng,
                           float tol = 2e-2f) {
  Tensor y = layer.forward(x);
  Tensor v = random_tensor(y.shape(), rng);
  layer.zero_grad();
  layer.backward(v);

  for (ParamRef& p : layer.parameters()) {
    Tensor analytic = *p.grad;
    Tensor& value = *p.value;
    auto loss = [&](const Tensor& probe) {
      Tensor saved = value;
      value = probe;
      const float l = dot(layer.forward(x), v);
      value = saved;
      return l;
    };
    Tensor numeric = numeric_gradient(loss, value, 1e-2f);
    EXPECT_LT(relative_error(analytic, numeric), tol)
        << layer.name() << " gradient mismatch for " << p.name;
  }
}

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  // Overwrite weights with known values.
  auto params = lin.parameters();
  *params[0].value = Tensor({2, 3}, {1, 0, 0, 0, 1, 0});
  *params[1].value = Tensor({2}, {10, 20});
  Tensor x({1, 3}, {5, 6, 7});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 15.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 26.0f);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear lin(5, 4, rng);
  Tensor x = random_tensor({3, 5}, rng);
  check_input_gradient(lin, x, rng);
  check_param_gradients(lin, x, rng);
}

TEST(LinearTest, RejectsWrongInputWidth) {
  Rng rng(3);
  Linear lin(5, 4, rng);
  Tensor x({2, 6});
  EXPECT_THROW(lin.forward(x), Error);
}

TEST(Conv2dTest, GradCheck) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = random_tensor({2, 2, 5, 5}, rng);
  check_input_gradient(conv, x, rng);
  check_param_gradients(conv, x, rng);
}

TEST(Conv2dTest, GradCheckStride2NoPadding) {
  Rng rng(5);
  Conv2d conv(1, 2, 3, 2, 0, rng);
  Tensor x = random_tensor({1, 1, 7, 7}, rng);
  check_input_gradient(conv, x, rng);
  check_param_gradients(conv, x, rng);
}

TEST(Conv2dTest, OutputShape) {
  Rng rng(6);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Tensor x = random_tensor({4, 3, 16, 16}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{4, 8, 16, 16}));
}

TEST(Conv2dTest, KnownIdentityKernel) {
  Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  auto params = conv.parameters();
  params[0].value->zero();
  // Center tap = 1: convolution becomes identity.
  (*params[0].value)[4] = 1.0f;
  params[1].value->zero();
  Tensor x = random_tensor({1, 1, 4, 4}, rng);
  Tensor y = conv.forward(x);
  deco::testing::expect_tensor_near(y, x, 1e-5f, 1e-5f);
}

TEST(Conv2dTest, BiasShiftsAllOutputs) {
  Rng rng(8);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  auto params = conv.parameters();
  params[0].value->zero();
  *params[1].value = Tensor({1}, {2.5f});
  Tensor x({1, 1, 4, 4});
  Tensor y = conv.forward(x);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 2.5f);
}

TEST(ReluTest, ForwardClampsNegative) {
  ReLU relu;
  Tensor x({4}, {-1, 0, 2, -3});
  x.reshape({1, 4});
  Tensor y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor x({1, 4}, {-1, 1, 2, -3});
  relu.forward(x);
  Tensor g({1, 4}, {10, 20, 30, 40});
  Tensor gi = relu.backward(g);
  EXPECT_EQ(gi[0], 0.0f);
  EXPECT_EQ(gi[1], 20.0f);
  EXPECT_EQ(gi[2], 30.0f);
  EXPECT_EQ(gi[3], 0.0f);
}

TEST(AvgPoolTest, ForwardAverages) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPoolTest, GradCheck) {
  Rng rng(9);
  AvgPool2d pool(2);
  Tensor x = random_tensor({2, 3, 4, 4}, rng);
  check_input_gradient(pool, x, rng, 1e-2f);
}

TEST(AvgPoolTest, RejectsIndivisibleDims) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x), Error);
}

TEST(InstanceNormTest, NormalizesPerChannelPerSample) {
  Rng rng(10);
  InstanceNorm2d norm(2);
  Tensor x = random_tensor({3, 2, 4, 4}, rng, 5.0);
  x.add_scalar_(3.0f);
  Tensor y = norm.forward(x);
  // Each (n, c) plane of the output should be ~zero-mean unit-variance
  // (gamma=1, beta=0 at init).
  for (int64_t n = 0; n < 3; ++n) {
    for (int64_t c = 0; c < 2; ++c) {
      double mean = 0.0, var = 0.0;
      for (int64_t h = 0; h < 4; ++h)
        for (int64_t w = 0; w < 4; ++w) mean += y.at4(n, c, h, w);
      mean /= 16.0;
      for (int64_t h = 0; h < 4; ++h)
        for (int64_t w = 0; w < 4; ++w) {
          const double d = y.at4(n, c, h, w) - mean;
          var += d * d;
        }
      var /= 16.0;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(InstanceNormTest, GradCheck) {
  Rng rng(11);
  InstanceNorm2d norm(2);
  Tensor x = random_tensor({2, 2, 3, 3}, rng);
  check_input_gradient(norm, x, rng);
  check_param_gradients(norm, x, rng);
}

TEST(InstanceNormTest, GradCheckWithNonTrivialAffine) {
  Rng rng(12);
  InstanceNorm2d norm(3);
  auto params = norm.parameters();
  rng.fill_normal(*params[0].value, 1.0, 0.3);
  rng.fill_normal(*params[1].value, 0.0, 0.3);
  Tensor x = random_tensor({2, 3, 4, 4}, rng, 2.0);
  check_input_gradient(norm, x, rng);
  check_param_gradients(norm, x, rng);
}

TEST(FlattenTest, RoundTrip) {
  Flatten fl;
  Rng rng(13);
  Tensor x = random_tensor({2, 3, 4, 5}, rng);
  Tensor y = fl.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 60}));
  Tensor g = random_tensor({2, 60}, rng);
  Tensor gi = fl.backward(g);
  EXPECT_EQ(gi.shape(), x.shape());
}

TEST(ReinitializeTest, ChangesWeightsDeterministically) {
  Rng rng_a(100), rng_b(100), rng_c(200);
  Conv2d a(2, 4, 3, 1, 1, rng_a);
  Conv2d b(2, 4, 3, 1, 1, rng_b);
  Conv2d c(2, 4, 3, 1, 1, rng_c);
  auto pa = a.parameters()[0].value;
  auto pb = b.parameters()[0].value;
  auto pc = c.parameters()[0].value;
  EXPECT_LT(pa->l1_distance(*pb), 1e-6f);  // same seed → same init
  EXPECT_GT(pa->l1_distance(*pc), 1e-3f);  // different seed → different init
}

// Parameterized sweep: conv gradcheck across kernel/stride/padding configs.
struct ConvCase {
  int64_t in_ch, out_ch, kernel, stride, padding, h, w;
};

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, InputAndParamGradients) {
  const ConvCase c = GetParam();
  Rng rng(314 + c.kernel * 10 + c.stride);
  Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.padding, rng);
  Tensor x = random_tensor({2, c.in_ch, c.h, c.w}, rng);
  check_input_gradient(conv, x, rng);
  check_param_gradients(conv, x, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4, 4},
                      ConvCase{2, 3, 3, 1, 1, 6, 6},
                      ConvCase{3, 2, 3, 2, 1, 8, 8},
                      ConvCase{2, 2, 5, 1, 2, 7, 7},
                      ConvCase{1, 4, 3, 1, 0, 5, 9}));

}  // namespace
}  // namespace deco::nn
