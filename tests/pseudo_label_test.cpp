#include "deco/core/pseudo_label.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::core {
namespace {

TEST(MajorityVoteTest, SingleDominantClass) {
  // 7 of 8 predictions are class 2 → only class 2 active at m = 0.4.
  std::vector<int64_t> labels{2, 2, 2, 2, 2, 2, 2, 5};
  auto active = majority_vote(labels, 10, 0.4f);
  EXPECT_EQ(active, (std::vector<int64_t>{2}));
}

TEST(MajorityVoteTest, ThresholdZeroKeepsEveryPredictedClass) {
  std::vector<int64_t> labels{1, 3, 3, 7};
  auto active = majority_vote(labels, 10, 0.0f);
  EXPECT_EQ(active, (std::vector<int64_t>{1, 3, 7}));
}

TEST(MajorityVoteTest, ThresholdIsStrict) {
  // Exactly 50% must NOT pass a 0.5 threshold (Eq. 2 uses strict >).
  std::vector<int64_t> labels{0, 0, 1, 1};
  auto active = majority_vote(labels, 2, 0.5f);
  EXPECT_TRUE(active.empty());
}

TEST(MajorityVoteTest, HighThresholdCanRejectAll) {
  std::vector<int64_t> labels{0, 1, 2, 3};
  auto active = majority_vote(labels, 4, 0.4f);
  EXPECT_TRUE(active.empty());
}

TEST(MajorityVoteTest, TwoActiveClassesAtTransition) {
  // A class transition inside the window: both classes exceed 40%.
  std::vector<int64_t> labels{4, 4, 4, 4, 4, 9, 9, 9, 9, 9};
  auto active = majority_vote(labels, 10, 0.4f);
  EXPECT_EQ(active, (std::vector<int64_t>{4, 9}));
}

TEST(MajorityVoteTest, RejectsBadInput) {
  EXPECT_THROW(majority_vote({}, 4, 0.4f), Error);
  EXPECT_THROW(majority_vote({5}, 4, 0.4f), Error);
  EXPECT_THROW(majority_vote({-1}, 4, 0.4f), Error);
}

TEST(PseudoLabelTest, SegmentLabelingIsConsistent) {
  Rng rng(1);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_h = cfg.image_w = 4;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet model(cfg, rng);
  Tensor images = deco::testing::random_tensor({8, 1, 4, 4}, rng, 0.5);

  auto res = pseudo_label_segment(model, images, 0.4f);
  ASSERT_EQ(res.labels.size(), 8u);
  ASSERT_EQ(res.confidences.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_GE(res.labels[i], 0);
    EXPECT_LT(res.labels[i], 3);
    EXPECT_GT(res.confidences[i], 1.0f / 3.0f - 1e-4f);  // argmax ≥ uniform
    EXPECT_LE(res.confidences[i], 1.0f);
  }
  // Retained samples carry exactly the active labels.
  std::vector<bool> is_active(3, false);
  for (int64_t c : res.active_classes) is_active[static_cast<size_t>(c)] = true;
  for (int64_t i : res.retained)
    EXPECT_TRUE(is_active[static_cast<size_t>(res.labels[static_cast<size_t>(i)])]);
  // And no non-retained sample has an active label.
  std::vector<bool> retained_mask(8, false);
  for (int64_t i : res.retained) retained_mask[static_cast<size_t>(i)] = true;
  for (size_t i = 0; i < 8; ++i)
    if (!retained_mask[i])
      EXPECT_FALSE(is_active[static_cast<size_t>(res.labels[i])]);
}

TEST(PseudoLabelTest, ThresholdMonotonicity) {
  // Higher thresholds never retain more samples.
  Rng rng(2);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_h = cfg.image_w = 4;
  cfg.num_classes = 4;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet model(cfg, rng);
  Tensor images = deco::testing::random_tensor({16, 1, 4, 4}, rng, 0.5);
  size_t prev = 1000;
  for (float m : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f}) {
    auto res = pseudo_label_segment(model, images, m);
    EXPECT_LE(res.retained.size(), prev);
    prev = res.retained.size();
  }
}

}  // namespace
}  // namespace deco::core
