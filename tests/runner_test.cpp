// End-to-end integration tests of the experiment runner — miniature versions
// of the paper's evaluation protocol across all learner types.
#include "deco/eval/runner.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"

namespace deco::eval {
namespace {

RunConfig mini_config(const std::string& method) {
  RunConfig cfg;
  cfg.method = method;
  cfg.spec = data::icub1_spec();
  cfg.stream.stc = 12;
  cfg.stream.segment_size = 12;
  cfg.stream.total_segments = 4;
  cfg.ipc = 2;
  cfg.deco.beta = 2;
  cfg.deco.model_update_epochs = 3;
  cfg.deco.condenser.iterations = 2;
  cfg.baseline.beta = 2;
  cfg.baseline.model_update_epochs = 3;
  cfg.pretrain_per_class = 4;
  cfg.pretrain_epochs = 10;
  cfg.test_per_class = 8;
  cfg.model_width = 8;
  cfg.model_depth = 2;
  cfg.seed = 1;
  return cfg;
}

class RunnerMethodSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnerMethodSweep, RunsEndToEnd) {
  RunConfig cfg = mini_config(GetParam());
  RunResult res = run_experiment(cfg);
  EXPECT_GT(res.pretrain_accuracy, 0.0f);
  EXPECT_GT(res.final_accuracy, 0.0f);
  EXPECT_LE(res.final_accuracy, 100.0f);
  EXPECT_GT(res.pseudo_label_accuracy, 0.05);  // far above never-correct
  EXPECT_GE(res.retention_rate, 0.0);
  EXPECT_LE(res.retention_rate, 1.0);
  EXPECT_GT(res.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, RunnerMethodSweep,
                         ::testing::Values("deco", "random", "fifo",
                                           "selective_bp", "kcenter", "gss",
                                           "dm", "upper_bound"));

TEST(RunnerTest, CondensationMethodsReportCondenseTime) {
  RunConfig cfg = mini_config("deco");
  RunResult res = run_experiment(cfg);
  EXPECT_GT(res.condense_seconds, 0.0);
}

TEST(RunnerTest, CurveIsRecordedAtRequestedInterval) {
  RunConfig cfg = mini_config("fifo");
  cfg.eval_every_segments = 2;
  RunResult res = run_experiment(cfg);
  ASSERT_EQ(res.curve.size(), 2u);
  EXPECT_EQ(res.curve[0].samples_seen, 24);
  EXPECT_EQ(res.curve[1].samples_seen, 48);
}

TEST(RunnerTest, SameSeedReproduces) {
  RunConfig cfg = mini_config("deco");
  RunResult a = run_experiment(cfg);
  RunResult b = run_experiment(cfg);
  EXPECT_FLOAT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.pseudo_label_accuracy, b.pseudo_label_accuracy);
}

TEST(RunnerTest, RunSeedsProducesOnePerSeed) {
  RunConfig cfg = mini_config("random");
  auto results = run_seeds(cfg, 2);
  ASSERT_EQ(results.size(), 2u);
}

TEST(RunnerTest, UnknownMethodThrows) {
  RunConfig cfg = mini_config("definitely_not_a_method");
  EXPECT_THROW(run_experiment(cfg), Error);
}

TEST(RunnerTest, DcRunsEndToEndSmall) {
  // DC is the slowest method; keep it tiny but exercised.
  RunConfig cfg = mini_config("dc");
  cfg.stream.total_segments = 2;
  RunResult res = run_experiment(cfg);
  EXPECT_GT(res.condense_seconds, 0.0);
}

TEST(RunnerTest, DsaRunsEndToEndSmall) {
  RunConfig cfg = mini_config("dsa");
  cfg.stream.total_segments = 2;
  RunResult res = run_experiment(cfg);
  EXPECT_GT(res.condense_seconds, 0.0);
}

}  // namespace
}  // namespace deco::eval
