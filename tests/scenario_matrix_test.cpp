// Slow suite: the scenario matrix's headline determinism guarantee.
//
// A matrix cell is a pure function of (spec, method, options) — the
// acceptance bar for the whole scenario subsystem is that a full cell's
// comparable report AND the learner's save_state bytes are memcmp-identical
// at DECO_NUM_THREADS = 1, 2 and 4. That composes every contract underneath:
// deterministic-chunking kernels, the SessionManager's fork-join rounds, the
// decorators' own-Rng discipline, and the harness's fixed arrival schedule.
// A reduced full-matrix sweep then checks every catalog scenario executes
// end to end for a condensation method and a replay baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "deco/core/thread_pool.h"
#include "deco/scenario/harness.h"
#include "deco/scenario/scenario.h"

namespace deco {
namespace {

scenario::HarnessOptions small_options() {
  scenario::HarnessOptions o;
  o.segments = 4;
  o.ipc = 2;
  o.model_width = 8;
  o.pretrain_per_class = 2;
  o.pretrain_epochs = 2;
  o.test_per_class = 4;
  o.model_update_epochs = 2;
  o.beta = 2;
  o.condenser_iterations = 2;
  o.seed = 1;
  return o;
}

TEST(ScenarioMatrixDeterminism, DecoCellIsByteIdenticalAcrossThreadCounts) {
  scenario::HarnessOptions options = small_options();
  options.capture_state = true;

  // hetero_fleet is the hardest cell: three concurrent sessions with
  // different resolutions and model widths, so any cross-session or
  // cross-thread leak shows up here first.
  const scenario::ScenarioSpec spec =
      scenario::scenario_by_name("hetero_fleet");

  const int saved = core::num_threads();
  std::vector<scenario::CellResult> runs;
  for (int threads : {1, 2, 4}) {
    core::set_num_threads(threads);
    runs.push_back(scenario::run_cell(spec, "deco", options));
  }
  core::set_num_threads(saved);

  ASSERT_EQ(runs[0].state_blobs.size(), 3u)
      << "deco supports_state: one blob per session";
  for (size_t i = 1; i < runs.size(); ++i) {
    // The whole comparable report row, serialized: one memcmp covers every
    // deterministic metric at fixed formatting.
    EXPECT_EQ(runs[0].deterministic_json(), runs[i].deterministic_json())
        << "thread count " << (i == 1 ? 2 : 4) << " changed the report";
    // And the full learner state: buffer images, model weights, Rng streams.
    ASSERT_EQ(runs[0].state_blobs.size(), runs[i].state_blobs.size());
    for (size_t s = 0; s < runs[0].state_blobs.size(); ++s)
      EXPECT_TRUE(runs[0].state_blobs[s] == runs[i].state_blobs[s])
          << "session " << s << " save_state bytes diverged at thread count "
          << (i == 1 ? 2 : 4);
  }
}

TEST(ScenarioMatrixDeterminism, QuantizedCellIsByteIdenticalAcrossThreadCounts) {
  // The int8 cache path (encode at every commit, decode for training) must be
  // as thread-invariant as fp32: the codecs are serial scalar loops, so the
  // whole mem_pressure_int8 cell — report row AND save_state bytes, which
  // embed the canonical stored cache — is memcmp-identical at 1/2/4/8 threads.
  scenario::HarnessOptions options = small_options();
  options.capture_state = true;

  const scenario::ScenarioSpec spec =
      scenario::scenario_by_name("mem_pressure_int8");

  const int saved = core::num_threads();
  std::vector<scenario::CellResult> runs;
  for (int threads : {1, 2, 4, 8}) {
    core::set_num_threads(threads);
    runs.push_back(scenario::run_cell(spec, "deco", options));
  }
  core::set_num_threads(saved);

  EXPECT_EQ(runs[0].cache_dtype, "int8");
  ASSERT_GT(runs[0].state_blobs.size(), 0u);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].deterministic_json(), runs[i].deterministic_json())
        << "quantized cell report diverged at run " << i;
    ASSERT_EQ(runs[0].state_blobs.size(), runs[i].state_blobs.size());
    for (size_t s = 0; s < runs[0].state_blobs.size(); ++s)
      EXPECT_TRUE(runs[0].state_blobs[s] == runs[i].state_blobs[s])
          << "session " << s << " quantized save_state bytes diverged at run "
          << i;
  }
}

TEST(ScenarioMatrixDeterminism, BurstyShedCellIsThreadCountInvariant) {
  // Shedding is the easiest place to lose determinism (it depends on queue
  // timing in a pump-thread design); the harness's manual arrival schedule
  // must make the shed count and everything downstream of it exact.
  scenario::HarnessOptions options = small_options();
  options.segments = 6;

  const scenario::ScenarioSpec spec =
      scenario::scenario_by_name("bursty_shed");
  const int saved = core::num_threads();
  core::set_num_threads(1);
  const scenario::CellResult a = scenario::run_cell(spec, "fifo", options);
  core::set_num_threads(4);
  const scenario::CellResult b = scenario::run_cell(spec, "fifo", options);
  core::set_num_threads(saved);

  EXPECT_GT(a.segments_shed, 0);
  EXPECT_EQ(a.deterministic_json(), b.deterministic_json());
}

TEST(ScenarioMatrix, ReducedMatrixCoversEveryScenario) {
  scenario::HarnessOptions options = small_options();
  // 4 segments is the minimum that makes bursty_shed actually overflow: the
  // burst fires on the second arrival step, which needs 3 segments left.
  options.segments = 4;

  const std::vector<scenario::ScenarioSpec> scenarios =
      scenario::builtin_scenarios();
  const std::vector<std::string> methods = {"deco", "fifo"};
  const scenario::MatrixReport report =
      scenario::run_matrix(scenarios, methods, options);

  ASSERT_EQ(report.cells.size(), scenarios.size() * methods.size());
  size_t i = 0;
  for (const scenario::ScenarioSpec& spec : scenarios) {
    for (const std::string& method : methods) {
      const scenario::CellResult& c = report.cells[i++];
      EXPECT_EQ(c.scenario, spec.name);
      EXPECT_EQ(c.method, method);
      EXPECT_TRUE(std::isfinite(c.accuracy)) << spec.name << "/" << method;
      EXPECT_TRUE(std::isfinite(c.forgetting)) << spec.name << "/" << method;
      EXPECT_EQ(c.segments_processed + c.segments_shed, c.segments_submitted)
          << spec.name << "/" << method << " lost segments";
      EXPECT_GT(c.peak_pool_bytes, 0);
      if (spec.name == "bursty_shed")
        EXPECT_GT(c.segments_shed, 0) << "the burst scenario must shed";
      else
        EXPECT_EQ(c.segments_shed, 0)
            << spec.name << " should not shed under steady arrival";
    }
  }
}

}  // namespace
}  // namespace deco
