// Unit tests for the multi-session runtime: bounded ingest queues (strict
// depth bound, shed/block overflow, close semantics), the unified config
// loader (parsing, typed conversion, key-naming errors, consumption
// tracking), the promoted OnDeviceLearner API defaults, and SessionManager
// scheduling/quarantine/admission/checkpoint behavior on stub learners.
// The full-fleet byte-identity sweeps live in runtime_stress_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "deco/core/learner.h"
#include "deco/core/thread_pool.h"
#include "deco/data/world.h"
#include "deco/runtime/config.h"
#include "deco/runtime/fleet.h"
#include "deco/runtime/queue.h"
#include "deco/runtime/session_manager.h"
#include "deco/tensor/check.h"

namespace deco {
namespace {

Tensor tagged(float v) {
  Tensor t({1});
  t[0] = v;
  return t;
}

// ---- SegmentQueue -----------------------------------------------------------

TEST(SegmentQueue, ShedOldestKeepsDepthBoundAndDropsOldest) {
  runtime::SegmentQueue q(3, runtime::OverflowPolicy::kShedOldest);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.push(tagged(static_cast<float>(i))));
    EXPECT_LE(q.size(), 3);
  }
  const runtime::QueueStats st = q.stats();
  EXPECT_EQ(st.pushed, 5);
  EXPECT_EQ(st.shed, 2);
  EXPECT_EQ(st.max_depth, 3);
  // Oldest two (0, 1) were shed; the survivors pop in FIFO order.
  Tensor t;
  for (float expect : {2.0f, 3.0f, 4.0f}) {
    ASSERT_TRUE(q.try_pop(t));
    EXPECT_EQ(t[0], expect);
  }
  EXPECT_FALSE(q.try_pop(t));
}

TEST(SegmentQueue, DiurnalBurstShedsOldestWithExactAccounting) {
  // Depth-2 queue under a diurnal arrival pattern: each cycle has a quiet
  // phase (one segment, consumed immediately) and a rush hour (a burst of 4
  // pushed back-to-back with no consumer running). kShedOldest must keep
  // exactly the NEWEST two of every burst, drop the oldest, and account for
  // every segment: pushed == popped + shed + still-queued, always.
  runtime::SegmentQueue q(2, runtime::OverflowPolicy::kShedOldest);
  float tag = 0.0f;
  Tensor t;
  for (int cycle = 0; cycle < 3; ++cycle) {
    // Quiet phase: steady arrival never sheds.
    EXPECT_TRUE(q.push(tagged(tag)));
    ASSERT_TRUE(q.try_pop(t));
    EXPECT_EQ(t[0], tag);
    tag += 1.0f;

    // Rush hour: burst of 4 into depth 2.
    std::vector<float> burst;
    for (int k = 0; k < 4; ++k) {
      burst.push_back(tag);
      EXPECT_TRUE(q.push(tagged(tag)));
      EXPECT_LE(q.size(), 2);
      tag += 1.0f;
    }
    // The two oldest burst segments were shed; the survivors are the two
    // newest, and they pop in arrival order.
    ASSERT_TRUE(q.try_pop(t));
    EXPECT_EQ(t[0], burst[2]);
    ASSERT_TRUE(q.try_pop(t));
    EXPECT_EQ(t[0], burst[3]);
    EXPECT_FALSE(q.try_pop(t));

    const runtime::QueueStats st = q.stats();
    EXPECT_EQ(st.pushed, 5 * (cycle + 1));
    EXPECT_EQ(st.popped, 3 * (cycle + 1));
    EXPECT_EQ(st.shed, 2 * (cycle + 1));
    EXPECT_EQ(st.pushed, st.popped + st.shed + q.size());
  }
  EXPECT_EQ(q.stats().max_depth, 2);
}

TEST(SegmentQueue, BlockPolicyBlocksProducerUntilPop) {
  runtime::SegmentQueue q(1, runtime::OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(tagged(0.0f)));

  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(tagged(1.0f)));  // full: must wait for the pop below
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_done.load());
  EXPECT_EQ(q.size(), 1);

  Tensor t;
  ASSERT_TRUE(q.try_pop(t));
  EXPECT_EQ(t[0], 0.0f);
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(q.size(), 1);
  const runtime::QueueStats st = q.stats();
  EXPECT_EQ(st.block_waits, 1);
  EXPECT_EQ(st.shed, 0);
  EXPECT_EQ(st.max_depth, 1);
}

TEST(SegmentQueue, CloseRejectsPushesWakesProducersKeepsQueuedItems) {
  runtime::SegmentQueue q(1, runtime::OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(tagged(7.0f)));

  std::thread producer([&] {
    EXPECT_FALSE(q.push(tagged(8.0f)));  // blocked, then woken by close()
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();

  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(tagged(9.0f)));
  // The accepted segment is still drainable after close.
  Tensor t;
  ASSERT_TRUE(q.try_pop(t));
  EXPECT_EQ(t[0], 7.0f);
  EXPECT_FALSE(q.try_pop(t));
  EXPECT_EQ(q.stats().rejected, 2);
}

TEST(SegmentQueue, OverflowPolicyNames) {
  EXPECT_EQ(runtime::overflow_policy_from_name("block"),
            runtime::OverflowPolicy::kBlock);
  EXPECT_EQ(runtime::overflow_policy_from_name("shed_oldest"),
            runtime::OverflowPolicy::kShedOldest);
  EXPECT_EQ(runtime::overflow_policy_from_name("shed"),
            runtime::OverflowPolicy::kShedOldest);
  EXPECT_THROW(runtime::overflow_policy_from_name("dropnew"), Error);
  EXPECT_EQ(runtime::overflow_policy_name(runtime::OverflowPolicy::kBlock),
            "block");
}

// ---- ConfigMap --------------------------------------------------------------

TEST(ConfigMap, ParsesKvTextWithCommentsAndOverrides) {
  runtime::ConfigMap m = runtime::ConfigMap::from_kv_text(
      "# a comment\n"
      "deco.ipc = 4\n"
      "\n"
      "stream.stc=8   # trailing comment\n"
      "deco.ipc = 6\n");  // later entry overrides
  EXPECT_EQ(m.get_int("deco.ipc", -1), 6);
  EXPECT_EQ(m.get_int("stream.stc", -1), 8);
  EXPECT_EQ(m.get_int("absent", 42), 42);
}

TEST(ConfigMap, ParsesFlatJson) {
  runtime::ConfigMap m = runtime::ConfigMap::from_json_text(
      R"({"deco.ipc": 4, "stream.stc": "8", "runtime.overflow": "shed_oldest",)"
      R"( "deco.use_majority_voting": false})");
  core::DecoConfig dc;
  data::StreamConfig sc;
  runtime::RuntimeConfig rc;
  m.apply(dc);
  m.apply(sc);
  m.apply(rc);
  m.check_fully_consumed();
  EXPECT_EQ(dc.ipc, 4);
  EXPECT_FALSE(dc.use_majority_voting);
  EXPECT_EQ(sc.stc, 8);
  EXPECT_EQ(rc.overflow, runtime::OverflowPolicy::kShedOldest);
}

TEST(ConfigMap, ErrorsNameTheOffendingKey) {
  // Unknown key under a handled prefix: the typo is named.
  {
    runtime::ConfigMap m;
    m.set("deco.treshold_m", "0.5");
    core::DecoConfig dc;
    try {
      m.apply(dc);
      FAIL() << "expected deco::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("deco.treshold_m"),
                std::string::npos);
    }
  }
  // Malformed value: the key is named, not just the token.
  {
    runtime::ConfigMap m;
    m.set("stream.stc", "eight");
    data::StreamConfig sc;
    try {
      m.apply(sc);
      FAIL() << "expected deco::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("stream.stc"), std::string::npos);
    }
  }
  // Bad enum value for the overflow policy.
  {
    runtime::ConfigMap m;
    m.set("runtime.overflow", "dropnew");
    runtime::RuntimeConfig rc;
    try {
      m.apply(rc);
      FAIL() << "expected deco::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("runtime.overflow"),
                std::string::npos);
    }
  }
  // Leftover (never-consumed) keys are listed by name.
  {
    runtime::ConfigMap m;
    m.set("stream.stc", "4");
    m.set("bogus.key", "1");
    data::StreamConfig sc;
    m.apply(sc);
    try {
      m.check_fully_consumed();
      FAIL() << "expected deco::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("bogus.key"), std::string::npos);
    }
  }
}

TEST(ConfigMap, AppliesRuntimeKeys) {
  runtime::ConfigMap m = runtime::ConfigMap::from_kv_text(
      "runtime.queue_depth = 5\n"
      "runtime.quantum = 2\n"
      "runtime.max_deficit = 6\n"
      "runtime.checkpoint_every = 3\n"
      "runtime.checkpoint_dir = /tmp/ckpts\n"
      "runtime.quarantine_after = 4\n"
      "runtime.pool_budget_mb = 64\n"
      "runtime.checkpoint_dtype = fp16\n"
      "runtime.keep_reports = true\n");
  runtime::RuntimeConfig rc;
  m.apply(rc);
  m.check_fully_consumed();
  EXPECT_EQ(rc.queue_depth, 5);
  EXPECT_EQ(rc.quantum, 2);
  EXPECT_EQ(rc.max_deficit, 6);
  EXPECT_EQ(rc.checkpoint_every, 3);
  EXPECT_EQ(rc.checkpoint_dir, "/tmp/ckpts");
  EXPECT_EQ(rc.quarantine_after, 4);
  EXPECT_EQ(rc.pool_budget_mb, 64);
  EXPECT_EQ(rc.checkpoint_dtype, DType::kF16);
  EXPECT_TRUE(rc.keep_reports);
  EXPECT_EQ(rc.pool_budget_bytes(), int64_t{64} << 20);
  rc.validate();
  rc.queue_depth = 0;
  EXPECT_THROW(rc.validate(), Error);
}

// ---- OnDeviceLearner promoted API -------------------------------------------

nn::ConvNetConfig tiny_net_config() {
  nn::ConvNetConfig mc;
  mc.in_channels = 1;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.num_classes = 2;
  mc.width = 4;
  mc.depth = 1;
  return mc;
}

/// Minimal learner used to exercise the manager without real training cost.
/// Counts segments; optionally fails (throw or guard-skip) from a given
/// segment on; optionally persists a trivial state file.
class StubLearner : public core::OnDeviceLearner {
 public:
  explicit StubLearner(nn::ConvNet& model, int64_t fail_from = -1,
                       bool fail_by_throw = true, int64_t mem_bytes = 0)
      : model_(model),
        fail_from_(fail_from),
        fail_by_throw_(fail_by_throw),
        mem_bytes_(mem_bytes) {}

  core::SegmentReport observe_segment(const Tensor& images) override {
    ++segments_;
    seen_.push_back(images.numel() > 0 ? images[0] : -1.0f);
    core::SegmentReport rep;
    if (fail_from_ >= 0 && segments_ >= fail_from_) {
      DECO_CHECK(!fail_by_throw_, "stub learner induced failure");
      rep.segment_skipped = 1;
    }
    return rep;
  }
  nn::ConvNet& model() override { return model_; }
  std::string name() const override { return "stub"; }
  double condense_seconds() const override { return 0.0; }
  int64_t memory_bytes() const override { return mem_bytes_; }
  void set_checkpoint_dtype(DType dtype) override { checkpoint_dtype_ = dtype; }
  DType checkpoint_dtype() const { return checkpoint_dtype_; }

  bool supports_state() const override { return state_path_enabled_; }
  void save_state(const std::string& path) const override {
    if (!state_path_enabled_)
      return core::OnDeviceLearner::save_state(path);
    std::ofstream os(path);
    os << "segments=" << segments_;
  }
  void enable_state() { state_path_enabled_ = true; }

  int64_t segments() const { return segments_; }
  const std::vector<float>& seen() const { return seen_; }

 private:
  nn::ConvNet& model_;
  int64_t fail_from_;
  bool fail_by_throw_;
  int64_t mem_bytes_;
  DType checkpoint_dtype_ = DType::kF32;
  bool state_path_enabled_ = false;
  int64_t segments_ = 0;
  std::vector<float> seen_;
};

TEST(OnDeviceLearnerApi, DefaultsThrowOrNoOpWhereMeaningless) {
  Rng rng(1);
  nn::ConvNet model(tiny_net_config(), rng);
  StubLearner stub(model);
  EXPECT_FALSE(stub.supports_state());
  EXPECT_THROW(stub.save_state("/tmp/nope"), Error);
  EXPECT_THROW(stub.load_state("/tmp/nope"), Error);
  stub.update_model_now();  // default: no-op, must not throw
  // Default observe_labeled_segment ignores labels and forwards.
  std::vector<int64_t> labels = {0};
  stub.observe_labeled_segment(tagged(3.0f), labels);
  EXPECT_EQ(stub.segments(), 1);
}

// ---- SessionManager ---------------------------------------------------------

struct StubSessionSet {
  std::vector<StubLearner*> stubs;  // borrowed; owned by the manager
  std::shared_ptr<nn::ConvNet> model;
};

StubSessionSet add_stub_sessions(runtime::SessionManager& mgr, int64_t n,
                                 int64_t fail_from = -1,
                                 bool fail_by_throw = true) {
  StubSessionSet set;
  Rng rng(1);
  set.model = std::make_shared<nn::ConvNet>(tiny_net_config(), rng);
  for (int64_t i = 0; i < n; ++i) {
    // Only session 0 fails; the rest must be unaffected.
    auto stub = std::make_unique<StubLearner>(
        *set.model, i == 0 ? fail_from : -1, fail_by_throw);
    set.stubs.push_back(stub.get());
    mgr.add_session("s" + std::to_string(i), std::move(stub), set.model);
  }
  return set;
}

TEST(SessionManager, DrainProcessesEverySubmittedSegmentInOrder) {
  runtime::RuntimeConfig rc;
  rc.queue_depth = 8;
  runtime::SessionManager mgr(rc);
  StubSessionSet set = add_stub_sessions(mgr, 3);
  for (int seg = 0; seg < 4; ++seg)
    for (int s = 0; s < 3; ++s)
      EXPECT_TRUE(mgr.submit("s" + std::to_string(s),
                             tagged(static_cast<float>(100 * s + seg))));
  mgr.drain();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(set.stubs[s]->segments(), 4);
    for (int seg = 0; seg < 4; ++seg)  // per-session arrival order preserved
      EXPECT_EQ(set.stubs[s]->seen()[seg], static_cast<float>(100 * s + seg));
    const runtime::SessionStatus st = mgr.status("s" + std::to_string(s));
    EXPECT_EQ(st.state, runtime::SessionState::kActive);
    EXPECT_EQ(st.segments_processed, 4);
    EXPECT_LE(st.queue.max_depth, rc.queue_depth);
  }
  EXPECT_EQ(mgr.total_processed(), 12);
}

TEST(SessionManager, DeficitRoundRobinGivesOneQuantumPerRound) {
  const int prev_threads = core::num_threads();
  core::set_num_threads(1);
  runtime::RuntimeConfig rc;
  rc.queue_depth = 8;
  rc.quantum = 1;
  runtime::SessionManager mgr(rc);
  StubSessionSet set = add_stub_sessions(mgr, 2);
  for (int seg = 0; seg < 3; ++seg) {
    ASSERT_TRUE(mgr.submit("s0", tagged(0)));
    ASSERT_TRUE(mgr.submit("s1", tagged(1)));
  }
  // quantum=1: each round advances every backlogged session by exactly one.
  EXPECT_EQ(mgr.run_round(), 2);
  EXPECT_EQ(set.stubs[0]->segments(), 1);
  EXPECT_EQ(set.stubs[1]->segments(), 1);
  EXPECT_EQ(mgr.run_round(), 2);
  EXPECT_EQ(set.stubs[0]->segments(), 2);
  EXPECT_EQ(set.stubs[1]->segments(), 2);
  mgr.drain();
  EXPECT_EQ(mgr.total_processed(), 6);
  core::set_num_threads(prev_threads);
}

TEST(SessionManager, QuarantinesFailingSessionOthersKeepRunning) {
  for (const bool by_throw : {true, false}) {
    runtime::RuntimeConfig rc;
    rc.queue_depth = 16;
    rc.quarantine_after = 2;
    runtime::SessionManager mgr(rc);
    // Session 0 fails every segment from the 2nd on (throw in one pass,
    // guard-skip in the other); sessions 1..2 are healthy.
    add_stub_sessions(mgr, 3, 2, by_throw);
    for (int seg = 0; seg < 6; ++seg)
      for (int s = 0; s < 3; ++s)
        mgr.submit("s" + std::to_string(s), tagged(static_cast<float>(seg)));
    mgr.drain();

    const runtime::SessionStatus bad = mgr.status("s0");
    EXPECT_EQ(bad.state, runtime::SessionState::kQuarantined);
    EXPECT_EQ(bad.consecutive_failures, 2);
    EXPECT_EQ(bad.segments_processed, 3);  // 1 ok + 2 failures, then stopped
    EXPECT_FALSE(bad.last_error.empty());
    // A quarantined session's queue is closed: further submits bounce.
    EXPECT_FALSE(mgr.submit("s0", tagged(0)));
    for (int s = 1; s < 3; ++s) {
      const runtime::SessionStatus ok = mgr.status("s" + std::to_string(s));
      EXPECT_EQ(ok.state, runtime::SessionState::kActive);
      EXPECT_EQ(ok.segments_processed, 6);
    }
  }
}

TEST(SessionManager, AdmissionControlEnforcesMemoryBudget) {
  runtime::RuntimeConfig rc;
  rc.pool_budget_mb = 1;  // 1 MiB fleet budget
  runtime::SessionManager mgr(rc);
  Rng rng(1);
  auto model = std::make_shared<nn::ConvNet>(tiny_net_config(), rng);
  mgr.add_session("fits",
                  std::make_unique<StubLearner>(*model, -1, true, 600 << 10),
                  model);
  try {
    mgr.add_session(
        "toobig", std::make_unique<StubLearner>(*model, -1, true, 600 << 10),
        model);
    FAIL() << "expected deco::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("toobig"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
  EXPECT_EQ(mgr.session_count(), 1);
  EXPECT_THROW(mgr.submit("toobig", tagged(0)), Error);
}

TEST(SessionManager, AdmissionUsesStoredCacheBytes) {
  // Two DECO learners with identical logical caches: int8 storage must make
  // the *stored* figure — the one memory_bytes() reports and admission
  // charges — small enough that a budget rejecting a second fp32 session
  // still admits two quantized ones.
  data::ProceduralImageWorld world(data::icub1_spec(), 60);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  nn::ConvNetConfig mc;
  mc.in_channels = world.spec().channels;
  mc.image_h = world.spec().height;
  mc.image_w = world.spec().width;
  mc.num_classes = world.spec().num_classes;
  mc.width = 8;
  mc.depth = 2;

  core::DecoConfig base;
  base.ipc = 18;
  base.beta = 2;
  base.model_update_epochs = 1;
  base.condenser.iterations = 1;
  auto make_learner = [&](std::shared_ptr<nn::ConvNet>& model, DType dtype) {
    Rng rng(1);
    model = std::make_shared<nn::ConvNet>(mc, rng);
    core::DecoConfig cfg = base;
    cfg.storage.cache_dtype = dtype;
    auto learner = std::make_unique<core::DecoLearner>(*model, cfg, 1);
    learner->init_buffer_from(labeled);
    return learner;
  };

  std::shared_ptr<nn::ConvNet> mf32, mq8;
  auto probe_f32 = make_learner(mf32, DType::kF32);
  auto probe_q8 = make_learner(mq8, DType::kQ8);
  const int64_t f32_bytes = probe_f32->memory_bytes();
  const int64_t q8_bytes = probe_q8->memory_bytes();
  ASSERT_LT(q8_bytes, f32_bytes);
  // One fp32 session fits in 1 MiB, two do not; two int8 sessions fit.
  ASSERT_LT(f32_bytes, int64_t{1} << 20);
  ASSERT_GT(2 * f32_bytes, int64_t{1} << 20);
  ASSERT_LT(2 * q8_bytes, int64_t{1} << 20);

  runtime::RuntimeConfig rc;
  rc.pool_budget_mb = 1;
  {
    runtime::SessionManager mgr(rc);
    mgr.add_session("f32_a", std::move(probe_f32), mf32);
    std::shared_ptr<nn::ConvNet> m2;
    auto second = make_learner(m2, DType::kF32);
    EXPECT_THROW(mgr.add_session("f32_b", std::move(second), m2), Error);
    EXPECT_EQ(mgr.session_count(), 1);
  }
  {
    runtime::SessionManager mgr(rc);
    mgr.add_session("q8_a", std::move(probe_q8), mq8);
    std::shared_ptr<nn::ConvNet> m2;
    auto second = make_learner(m2, DType::kQ8);
    mgr.add_session("q8_b", std::move(second), m2);  // must not throw
    EXPECT_EQ(mgr.session_count(), 2);
  }
}

TEST(SessionManager, AppliesCheckpointDtypePolicyToLearners) {
  runtime::RuntimeConfig rc;
  rc.checkpoint_dtype = DType::kF16;
  runtime::SessionManager mgr(rc);
  Rng rng(1);
  auto model = std::make_shared<nn::ConvNet>(tiny_net_config(), rng);
  auto stub = std::make_unique<StubLearner>(*model);
  StubLearner* raw = stub.get();
  EXPECT_EQ(raw->checkpoint_dtype(), DType::kF32);
  mgr.add_session("policy", std::move(stub), model);
  EXPECT_EQ(raw->checkpoint_dtype(), DType::kF16)
      << "add_session must push the runtime checkpoint dtype policy";
}

TEST(SessionManager, PeriodicCheckpointsForStatefulLearners) {
  runtime::RuntimeConfig rc;
  rc.queue_depth = 16;
  rc.checkpoint_every = 2;
  rc.checkpoint_dir = ::testing::TempDir();
  runtime::SessionManager mgr(rc);
  Rng rng(1);
  auto model = std::make_shared<nn::ConvNet>(tiny_net_config(), rng);
  auto stub = std::make_unique<StubLearner>(*model);
  stub->enable_state();
  mgr.add_session("ckpt", std::move(stub), model);
  for (int seg = 0; seg < 5; ++seg) mgr.submit("ckpt", tagged(0));
  mgr.drain();
  const runtime::SessionStatus st = mgr.status("ckpt");
  EXPECT_EQ(st.segments_processed, 5);
  EXPECT_EQ(st.checkpoints_written, 2);  // after segments 2 and 4
  std::ifstream is(st.checkpoint_path);
  ASSERT_TRUE(is.is_open()) << st.checkpoint_path;
  std::string content;
  std::getline(is, content);
  EXPECT_EQ(content, "segments=4");
  std::remove(st.checkpoint_path.c_str());
}

TEST(SessionManager, PumpThreadProcessesConcurrentSubmissions) {
  runtime::RuntimeConfig rc;
  rc.queue_depth = 4;
  rc.overflow = runtime::OverflowPolicy::kBlock;
  runtime::SessionManager mgr(rc);
  add_stub_sessions(mgr, 2);
  mgr.start();
  // Two producer threads, more segments than the queue depth: backpressure
  // (kBlock) must throttle them without losing a single segment.
  std::vector<std::thread> producers;
  for (int s = 0; s < 2; ++s)
    producers.emplace_back([&, s] {
      for (int seg = 0; seg < 10; ++seg)
        EXPECT_TRUE(mgr.submit("s" + std::to_string(s),
                               tagged(static_cast<float>(seg))));
    });
  for (auto& p : producers) p.join();
  mgr.stop();
  for (int s = 0; s < 2; ++s) {
    const runtime::SessionStatus st = mgr.status("s" + std::to_string(s));
    EXPECT_EQ(st.segments_processed, 10);
    EXPECT_LE(st.queue.max_depth, rc.queue_depth);
    EXPECT_EQ(st.queue.shed, 0);
  }
}

TEST(SessionManager, UnknownSessionNamesThrow) {
  runtime::SessionManager mgr(runtime::RuntimeConfig{});
  EXPECT_THROW(mgr.submit("ghost", tagged(0)), Error);
  EXPECT_THROW(mgr.status("ghost"), Error);
  EXPECT_THROW(mgr.learner("ghost"), Error);
  EXPECT_THROW(mgr.add_session("x", nullptr), Error);
}

}  // namespace
}  // namespace deco
