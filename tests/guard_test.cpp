#include "deco/core/guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "deco/core/learner.h"
#include "deco/data/faults.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::core {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(GuardConfigTest, RejectsBadKnobs) {
  GuardConfig cfg;
  cfg.max_grad_norm = -1.0f;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = GuardConfig{};
  cfg.backoff = 0.0f;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = GuardConfig{};
  cfg.backoff = 1.5f;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(GuardTest, FiniteHelpers) {
  Tensor t({4});
  t.fill(1.0f);
  EXPECT_TRUE(all_finite(t));
  EXPECT_EQ(count_nonfinite(t), 0);
  t.data()[1] = kNan;
  t.data()[3] = kInf;
  EXPECT_FALSE(all_finite(t));
  EXPECT_EQ(count_nonfinite(t), 2);
}

TEST(GuardTest, ScreenFramesQuarantinesNonFinite) {
  NumericGuard guard{GuardConfig{}};
  Tensor images({4, 1, 2, 2});
  images.fill(0.5f);
  images.data()[1 * 4 + 2] = kNan;   // frame 1
  images.data()[3 * 4 + 0] = -kInf;  // frame 3

  const std::vector<int64_t> finite = guard.screen_frames(images);
  EXPECT_EQ(finite, (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(guard.stats().frames_quarantined, 2);
}

TEST(GuardTest, AdmitLossSkipsNonFinite) {
  NumericGuard guard{GuardConfig{}};
  EXPECT_TRUE(guard.admit_loss(0.7f));
  EXPECT_FALSE(guard.admit_loss(kNan));
  EXPECT_FALSE(guard.admit_loss(kInf));
  EXPECT_EQ(guard.stats().batches_skipped, 2);
}

TEST(GuardTest, AdmitGradientsSkipsNonFiniteAndClips) {
  Rng rng(1);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 2;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet model(cfg, rng);

  GuardConfig gc;
  gc.max_grad_norm = 1.0f;
  NumericGuard guard{gc};

  // Non-finite gradient → batch rejected.
  auto params = model.parameters();
  for (auto& p : params) p.grad->fill(0.0f);
  params[0].grad->data()[0] = kNan;
  EXPECT_FALSE(guard.admit_gradients(model.parameters()));
  EXPECT_EQ(guard.stats().batches_skipped, 1);

  // Oversized but finite gradient → clipped to the configured global norm.
  for (auto& p : model.parameters()) p.grad->fill(1.0f);
  EXPECT_TRUE(guard.admit_gradients(model.parameters()));
  EXPECT_EQ(guard.stats().grads_clipped, 1);
  double sq = 0.0;
  for (const auto& p : model.parameters())
    sq += static_cast<double>(p.grad->squared_norm());
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-4);

  // An in-range gradient passes untouched.
  for (auto& p : model.parameters()) p.grad->fill(0.0f);
  model.parameters()[0].grad->data()[0] = 0.5f;
  EXPECT_TRUE(guard.admit_gradients(model.parameters()));
  EXPECT_EQ(guard.stats().grads_clipped, 1);  // unchanged
  EXPECT_EQ(model.parameters()[0].grad->data()[0], 0.5f);
}

// The ISSUE's acceptance scenario: a full DECO run over a stream with ~5%
// corrupt frames plus NaN bursts must complete without throwing, quarantine
// at least one frame, and leave the buffer finite in [0, 1].
TEST(GuardIntegrationTest, FaultyStreamRunCompletesWithFiniteBuffer) {
  data::ProceduralImageWorld world(data::icub1_spec(), 30);
  data::Dataset labeled = world.make_labeled_set(3, 1);
  Rng mr(31);
  nn::ConvNetConfig mc;
  mc.in_channels = world.spec().channels;
  mc.image_h = world.spec().height;
  mc.image_w = world.spec().width;
  mc.num_classes = world.spec().num_classes;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, mr);

  DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 2;
  DecoLearner learner(model, cfg, 32);
  learner.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 16;
  sc.total_segments = 6;
  data::TemporalStream inner(world, sc, 33);
  data::FaultConfig fc;
  fc.nan_burst_rate = 0.3;  // heavy non-finite corruption
  fc.inf_burst_rate = 0.1;
  fc.salt_pepper_rate = 0.02;
  fc.drop_frame_rate = 0.05;
  data::FaultyStream faulty(inner, fc, 34);

  data::Segment seg;
  int64_t quarantined = 0;
  while (faulty.next(seg)) {
    SegmentReport rep = learner.observe_segment(seg.images);
    ASSERT_EQ(rep.pseudo_labels.size(),
              static_cast<size_t>(seg.images.dim(0)));
    quarantined += rep.frames_quarantined;
    // Quarantined frames report the sentinel label and zero confidence.
    for (size_t i = 0; i < rep.pseudo_labels.size(); ++i) {
      if (rep.pseudo_labels[i] == -1) EXPECT_EQ(rep.confidences[i], 0.0f);
    }
  }
  EXPECT_GT(faulty.log().nan_bursts, 0);
  EXPECT_GT(quarantined, 0);
  EXPECT_EQ(quarantined, learner.guard().stats().frames_quarantined);

  // The buffer — the device's distilled memory — stayed clean.
  const Tensor& buf = learner.buffer().images();
  EXPECT_TRUE(all_finite(buf));
  EXPECT_GE(buf.min(), 0.0f);
  EXPECT_LE(buf.max(), 1.0f);
  // And the model still produces finite logits.
  EXPECT_TRUE(all_finite(learner.model().forward(labeled.batch({0, 1}))));
}

// With guards disabled the same faulty stream must still not crash (NaNs
// propagate, accuracy degrades — measured in bench/fault_tolerance.cpp).
TEST(GuardIntegrationTest, UnguardedFaultyRunDoesNotThrow) {
  data::ProceduralImageWorld world(data::icub1_spec(), 40);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  Rng mr(41);
  nn::ConvNetConfig mc;
  mc.in_channels = world.spec().channels;
  mc.image_h = world.spec().height;
  mc.image_w = world.spec().width;
  mc.num_classes = world.spec().num_classes;
  mc.width = 4;
  mc.depth = 1;
  nn::ConvNet model(mc, mr);

  DecoConfig cfg;
  cfg.ipc = 1;
  cfg.beta = 2;
  cfg.model_update_epochs = 1;
  cfg.condenser.iterations = 1;
  cfg.guard.enabled = false;
  DecoLearner learner(model, cfg, 42);
  learner.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 8;
  sc.total_segments = 4;
  data::TemporalStream inner(world, sc, 43);
  data::FaultConfig fc;
  fc.nan_burst_rate = 0.2;
  data::FaultyStream faulty(inner, fc, 44);

  data::Segment seg;
  while (faulty.next(seg)) {
    SegmentReport rep = learner.observe_segment(seg.images);
    EXPECT_EQ(rep.frames_quarantined, 0);  // guards off: nothing quarantined
  }
}

TEST(GuardTest, DistanceHealthHonorsThreshold) {
  GuardConfig gc;
  gc.max_condense_distance = 10.0f;
  NumericGuard guard{gc};
  EXPECT_TRUE(guard.distance_healthy(9.9f));
  EXPECT_FALSE(guard.distance_healthy(10.1f));
  EXPECT_FALSE(guard.distance_healthy(kNan));
  EXPECT_FALSE(guard.distance_healthy(kInf));

  gc.max_condense_distance = 0.0f;  // threshold disabled: only finiteness
  NumericGuard open{gc};
  EXPECT_TRUE(open.distance_healthy(1e30f));
  EXPECT_FALSE(open.distance_healthy(kNan));
}

}  // namespace
}  // namespace deco::core
