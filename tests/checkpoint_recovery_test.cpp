// Crash-safe persistence: a DecoLearner killed after segment k and resumed
// from its state file must replay the rest of the stream bit-exactly, and a
// corrupted/truncated/mismatched state file must be rejected without leaving
// the learner half-loaded.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/tensor/check.h"
#include "deco/tensor/serialize.h"
#include "test_util.h"

namespace deco::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

nn::ConvNetConfig model_config(const data::DatasetSpec& spec) {
  nn::ConvNetConfig cfg;
  cfg.in_channels = spec.channels;
  cfg.image_h = spec.height;
  cfg.image_w = spec.width;
  cfg.num_classes = spec.num_classes;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

DecoConfig small_config(bool soft_labels = false) {
  DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 2;
  cfg.condenser.learn_soft_labels = soft_labels;
  return cfg;
}

data::StreamConfig stream_config(int64_t segments) {
  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 12;
  sc.total_segments = segments;
  return sc;
}

struct RunEndState {
  Tensor probe_logits;
  Tensor buffer_images;
  int64_t segments_seen = 0;
};

/// Streams `total` segments through a fresh learner. When `kill_at > 0` the
/// learner is destroyed after `kill_at` segments (its state saved to `path`)
/// and a brand-new model+learner resumes from the file.
RunEndState run(const data::ProceduralImageWorld& world,
                const data::Dataset& labeled, bool soft, int64_t total,
                int64_t kill_at, const std::string& path) {
  const Tensor probe = labeled.batch({0, 1, 2});

  auto make_model = [&]() {
    Rng mr(42);
    return nn::ConvNet(model_config(world.spec()), mr);
  };

  nn::ConvNet model = make_model();
  auto learner =
      std::make_unique<DecoLearner>(model, small_config(soft), /*seed=*/7);
  learner->init_buffer_from(labeled);

  data::TemporalStream stream(world, stream_config(total), /*seed=*/9);
  data::Segment seg;
  int64_t seen = 0;
  nn::ConvNet resumed_model = make_model();
  while (stream.next(seg)) {
    if (kill_at > 0 && seen == kill_at) {
      // "Crash": persist, drop the learner and the model, start over from
      // the file with freshly constructed objects.
      learner->save_state(path);
      learner.reset();
      learner = std::make_unique<DecoLearner>(resumed_model,
                                              small_config(soft), /*seed=*/7);
      learner->init_buffer_from(labeled);  // overwritten by load_state
      learner->load_state(path);
      EXPECT_EQ(learner->segments_seen(), kill_at);
    }
    learner->observe_segment(seg.images);
    ++seen;
  }

  RunEndState out;
  out.probe_logits = learner->model().forward(probe);
  out.buffer_images = learner->buffer().images();
  out.segments_seen = learner->segments_seen();
  return out;
}

TEST(CheckpointRecoveryTest, KilledAndResumedRunIsBitExact) {
  data::ProceduralImageWorld world(data::icub1_spec(), 20);
  data::Dataset labeled = world.make_labeled_set(3, 1);
  const std::string path = temp_path("learner.state");

  const RunEndState clean = run(world, labeled, false, 6, 0, path);
  const RunEndState resumed = run(world, labeled, false, 6, 3, path);

  EXPECT_EQ(clean.segments_seen, resumed.segments_seen);
  EXPECT_EQ(clean.buffer_images.l1_distance(resumed.buffer_images), 0.0f);
  EXPECT_EQ(clean.probe_logits.l1_distance(resumed.probe_logits), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointRecoveryTest, SoftLabelStateSurvivesResume) {
  data::ProceduralImageWorld world(data::icub1_spec(), 21);
  data::Dataset labeled = world.make_labeled_set(3, 1);
  const std::string path = temp_path("learner_soft.state");

  const RunEndState clean = run(world, labeled, true, 4, 0, path);
  const RunEndState resumed = run(world, labeled, true, 4, 2, path);

  EXPECT_EQ(clean.buffer_images.l1_distance(resumed.buffer_images), 0.0f);
  EXPECT_EQ(clean.probe_logits.l1_distance(resumed.probe_logits), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointRecoveryTest, SaveIsAtomic) {
  data::ProceduralImageWorld world(data::icub1_spec(), 22);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  Rng mr(1);
  nn::ConvNet model(model_config(world.spec()), mr);
  DecoLearner learner(model, small_config(), 2);
  learner.init_buffer_from(labeled);

  const std::string path = temp_path("atomic.state");
  learner.save_state(path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());  // no temp residue after a successful save
  learner.load_state(path);     // and the file round-trips
  std::remove(path.c_str());
}

class CorruptStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<data::ProceduralImageWorld>(data::icub1_spec(), 23);
    labeled_ = std::make_unique<data::Dataset>(world_->make_labeled_set(2, 1));
    Rng mr(3);
    model_ = std::make_unique<nn::ConvNet>(model_config(world_->spec()), mr);
    learner_ = std::make_unique<DecoLearner>(*model_, small_config(), 4);
    learner_->init_buffer_from(*labeled_);
    path_ = temp_path("corrupt.state");
    learner_->save_state(path_);
    probe_ = labeled_->batch({0, 1});
    before_ = learner_->model().forward(probe_);
    buffer_before_ = learner_->buffer().images();
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_file() {
    std::ifstream is(path_, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  }

  void write_file(const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// The failed load must leave model and buffer untouched.
  void expect_untouched() {
    EXPECT_EQ(learner_->model().forward(probe_).l1_distance(before_), 0.0f);
    EXPECT_EQ(learner_->buffer().images().l1_distance(buffer_before_), 0.0f);
  }

  std::unique_ptr<data::ProceduralImageWorld> world_;
  std::unique_ptr<data::Dataset> labeled_;
  std::unique_ptr<nn::ConvNet> model_;
  std::unique_ptr<DecoLearner> learner_;
  std::string path_;
  Tensor probe_, before_, buffer_before_;
};

TEST_F(CorruptStateTest, RejectsTruncatedFile) {
  std::string bytes = read_file();
  bytes.resize(bytes.size() / 3);
  write_file(bytes);
  EXPECT_THROW(learner_->load_state(path_), Error);
  expect_untouched();
}

TEST_F(CorruptStateTest, RejectsBadMagic) {
  std::string bytes = read_file();
  bytes[0] = 'X';
  write_file(bytes);
  EXPECT_THROW(learner_->load_state(path_), Error);
  expect_untouched();
}

TEST_F(CorruptStateTest, DetectsBitFlipViaCrc) {
  std::string bytes = read_file();
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(bytes);
  EXPECT_THROW(learner_->load_state(path_), Error);
  expect_untouched();
}

TEST_F(CorruptStateTest, RejectsWrongVersion) {
  // Rewrite the version field (first u32 after the 8-byte magic) and repair
  // the CRC trailer so only the version check can object.
  std::string bytes = read_file();
  const uint32_t bogus = 99;
  std::memcpy(bytes.data() + 8, &bogus, sizeof(bogus));
  const size_t body_len = bytes.size() - 8 - sizeof(uint32_t);
  const uint32_t crc = crc32(bytes.data() + 8, body_len);
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  write_file(bytes);
  EXPECT_THROW(learner_->load_state(path_), Error);
  expect_untouched();
}

TEST_F(CorruptStateTest, RejectsMismatchedArchitecture) {
  nn::ConvNetConfig mc = model_config(world_->spec());
  mc.width = 16;  // different parameter shapes
  Rng mr(5);
  nn::ConvNet other(mc, mr);
  DecoLearner wrong(other, small_config(), 6);
  wrong.init_buffer_from(*labeled_);
  const Tensor probe2 = labeled_->batch({0, 1});
  const Tensor before2 = wrong.model().forward(probe2);
  EXPECT_THROW(wrong.load_state(path_), Error);
  EXPECT_EQ(wrong.model().forward(probe2).l1_distance(before2), 0.0f);
}

TEST_F(CorruptStateTest, MissingFileThrows) {
  EXPECT_THROW(learner_->load_state("/nonexistent/dir/x.state"), Error);
  expect_untouched();
}

// ---- byte-corruption fuzz ---------------------------------------------------
//
// Exhaustive single-byte (and single-bit) corruption of the serialized
// containers. The contract under arbitrary corruption is "reject with
// deco::Error or load data that validates against the original" — never a
// crash, never a silently wrong tensor. The one legitimate load-despite-flip
// is the version field turning into the legacy v1 value, which skips CRC
// verification but still decodes the identical bytes (pinned by its own test
// below).

TEST(SerializedTensorFuzzTest, EveryByteFlipRejectsOrLoadsIdentical) {
  Rng rng(17);
  Tensor original({2, 3, 4});
  rng.fill_normal(original, 0, 1);
  std::ostringstream os(std::ios::binary);
  write_tensor(os, original);
  const std::string clean = os.str();

  int64_t rejected = 0, loaded_identical = 0;
  auto attempt = [&](const std::string& bytes, const std::string& what) {
    std::istringstream is(bytes, std::ios::binary);
    try {
      const Tensor t = read_tensor(is);
      // Accepted: must be indistinguishable from the original.
      ASSERT_EQ(t.shape(), original.shape()) << what;
      ASSERT_EQ(std::memcmp(t.data(), original.data(),
                            static_cast<size_t>(t.numel()) * sizeof(float)),
                0)
          << what << ": corrupted stream accepted with different data";
      ++loaded_identical;
    } catch (const Error&) {
      ++rejected;  // the expected outcome for nearly every flip
    }
    // Any other exception type escapes and fails the test: corruption must
    // surface as deco::Error, not std::bad_alloc or a crash.
  };

  for (size_t i = 0; i < clean.size(); ++i) {
    std::string flipped = clean;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xFF);
    attempt(flipped, "byte " + std::to_string(i) + " ^ 0xFF");
    for (int bit = 0; bit < 8; ++bit) {
      std::string one = clean;
      one[i] = static_cast<char>(one[i] ^ (1 << bit));
      attempt(one, "byte " + std::to_string(i) + " bit " + std::to_string(bit));
    }
  }
  // The CRC catches essentially everything; a handful of flips may decode
  // identically (e.g. version downgrades that leave the payload untouched),
  // but most of the stream must reject.
  EXPECT_GT(rejected, static_cast<int64_t>(clean.size()) * 8 / 2);
  SUCCEED() << rejected << " rejected, " << loaded_identical
            << " loaded-identical of " << clean.size() * 9 << " corruptions";
}

TEST(SerializedTensorFuzzTest, LegacyVersionDowngradeStillDecodesExactly) {
  // Setting the version field to 1 is the documented CRC escape hatch: the
  // legacy path skips verification but the payload bytes are unchanged, so
  // the decoded tensor must still be bit-identical.
  Rng rng(18);
  Tensor original({3, 5});
  rng.fill_normal(original, 0, 1);
  std::ostringstream os(std::ios::binary);
  write_tensor(os, original);
  std::string bytes = os.str();
  const uint32_t legacy = 1;
  std::memcpy(bytes.data() + 8, &legacy, sizeof(legacy));  // after 8-B magic

  std::istringstream is(bytes, std::ios::binary);
  const Tensor t = read_tensor(is);
  ASSERT_EQ(t.shape(), original.shape());
  EXPECT_EQ(std::memcmp(t.data(), original.data(),
                        static_cast<size_t>(t.numel()) * sizeof(float)),
            0);
}

TEST_F(CorruptStateTest, StridedByteFlipFuzzNeverCrashesOrCorrupts) {
  // The learner-state container is v2-only (no legacy escape), so every
  // corruption must either throw deco::Error or — if a flip happens to leave
  // the file acceptable — load a state identical to the one just saved,
  // which expect_untouched() verifies through the live model and buffer.
  const std::string clean = read_file();
  ASSERT_FALSE(clean.empty());
  int64_t rejected = 0, accepted = 0;
  // Every byte of the (small) header region, then ~128 positions strided
  // through the bulk (a prime-ish step so all byte lanes of the f32 payload
  // get hit), then the trailer.
  std::vector<size_t> positions;
  for (size_t i = 0; i < std::min<size_t>(64, clean.size()); ++i)
    positions.push_back(i);
  const size_t stride = std::max<size_t>(7, clean.size() / 128 | 1);
  for (size_t i = 64; i < clean.size(); i += stride) positions.push_back(i);
  for (size_t back = 1; back <= 4 && back <= clean.size(); ++back)
    positions.push_back(clean.size() - back);  // the CRC trailer itself

  for (size_t pos : positions) {
    std::string flipped = clean;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0xFF);
    write_file(flipped);
    try {
      learner_->load_state(path_);
      ++accepted;
    } catch (const Error&) {
      ++rejected;
    }
    expect_untouched();
  }
  // A single-byte XOR can never keep the CRC valid, so nothing may load.
  EXPECT_EQ(accepted, 0);
  EXPECT_EQ(rejected, static_cast<int64_t>(positions.size()));
}

}  // namespace
}  // namespace deco::core
