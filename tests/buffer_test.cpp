#include "deco/condense/buffer.h"

#include <gtest/gtest.h>

#include "deco/data/world.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::condense {
namespace {

TEST(BufferTest, ClassBalanceInvariant) {
  SyntheticBuffer buf(5, 3, 3, 8, 8);
  EXPECT_EQ(buf.size(), 15);
  // |S_c| = |S|/|C| for every class (the paper's balance constraint).
  for (int64_t cls = 0; cls < 5; ++cls) {
    auto rows = buf.rows_of_class(cls);
    EXPECT_EQ(static_cast<int64_t>(rows.size()), 3);
    for (int64_t r : rows) EXPECT_EQ(buf.label(r), cls);
  }
}

TEST(BufferTest, LabelsAreRowMajorByClass) {
  SyntheticBuffer buf(3, 2, 1, 4, 4);
  EXPECT_EQ(buf.labels(),
            (std::vector<int64_t>{0, 0, 1, 1, 2, 2}));
}

TEST(BufferTest, InitFromDatasetCopiesClassSamples) {
  data::ProceduralImageWorld w(data::icub1_spec(), 1);
  data::Dataset labeled = w.make_labeled_set(4, 2);
  SyntheticBuffer buf(10, 2, 3, 16, 16);
  Rng rng(3);
  buf.init_from_dataset(labeled, rng);
  // Every buffer row must exactly equal one of its class's labeled images.
  for (int64_t r = 0; r < buf.size(); ++r) {
    const int64_t cls = buf.label(r);
    Tensor img = buf.gather({r}).reshaped({3, 16, 16});
    float best = 1e30f;
    for (int64_t i : labeled.indices_of_class(cls))
      best = std::min(best, img.l1_distance(labeled.image(i)));
    EXPECT_LT(best, 1e-6f) << "row " << r;
  }
}

TEST(BufferTest, InitFromDatasetMissingClassFallsBackToNoise) {
  data::Dataset labeled(1, 4, 4);
  labeled.add(Tensor::full({1, 4, 4}, 0.5f), 0);  // only class 0 present
  SyntheticBuffer buf(2, 1, 1, 4, 4);
  Rng rng(4);
  buf.init_from_dataset(labeled, rng);
  // Class 1 row must still be valid pixels.
  Tensor row1 = buf.gather(buf.rows_of_class(1));
  EXPECT_GE(row1.min(), 0.0f);
  EXPECT_LE(row1.max(), 1.0f);
}

TEST(BufferTest, GatherScatterRoundTrip) {
  SyntheticBuffer buf(3, 2, 1, 2, 2);
  Rng rng(5);
  buf.init_random(rng);
  const std::vector<int64_t> rows{1, 4};
  Tensor batch = buf.gather(rows);
  batch.scale_(0.5f);
  buf.scatter_images(rows, batch);
  Tensor back = buf.gather(rows);
  deco::testing::expect_tensor_near(back, batch, 1e-7f, 0.0f);
}

TEST(BufferTest, ScatterAddGradAccumulates) {
  SyntheticBuffer buf(2, 2, 1, 2, 2);
  const std::vector<int64_t> rows{0, 3};
  Tensor delta = Tensor::full({2, 1, 2, 2}, 1.0f);
  buf.scatter_add_grad(rows, delta, 2.0f);
  buf.scatter_add_grad(rows, delta, 1.0f);
  EXPECT_FLOAT_EQ(buf.grads()[0], 3.0f);           // row 0 touched twice
  EXPECT_FLOAT_EQ(buf.grads()[1 * 4], 0.0f);       // row 1 untouched
  EXPECT_FLOAT_EQ(buf.grads()[3 * 4 + 3], 3.0f);   // row 3 touched
}

TEST(BufferTest, RowsOfClassesConcatenates) {
  SyntheticBuffer buf(4, 2, 1, 2, 2);
  auto rows = buf.rows_of_classes({1, 3});
  EXPECT_EQ(rows, (std::vector<int64_t>{2, 3, 6, 7}));
}

TEST(BufferTest, AsParamExposesWholeBuffer) {
  SyntheticBuffer buf(2, 1, 1, 2, 2);
  auto p = buf.as_param();
  EXPECT_EQ(p.value->numel(), buf.images().numel());
  EXPECT_EQ(p.grad->numel(), buf.grads().numel());
  (*p.value)[0] = 42.0f;
  EXPECT_EQ(buf.images()[0], 42.0f);
}

TEST(BufferTest, ClampPixels) {
  SyntheticBuffer buf(1, 1, 1, 2, 2);
  buf.images()[0] = -5.0f;
  buf.images()[1] = 5.0f;
  buf.clamp_pixels();
  EXPECT_EQ(buf.images()[0], 0.0f);
  EXPECT_EQ(buf.images()[1], 1.0f);
}

TEST(BufferTest, GatherRejectsBadRows) {
  SyntheticBuffer buf(2, 2, 1, 2, 2);
  EXPECT_THROW(buf.gather({4}), Error);
  EXPECT_THROW(buf.gather({}), Error);
  EXPECT_THROW(buf.rows_of_class(2), Error);
}

}  // namespace
}  // namespace deco::condense
