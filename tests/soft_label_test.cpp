// Tests for the learnable-soft-label extension: the soft-target loss, the
// buffer's label-logit machinery, the soft matcher and the end-to-end learner
// path.
#include <gtest/gtest.h>

#include <memory>

#include "deco/condense/grad_distance.h"
#include "deco/condense/grad_utils.h"
#include "deco/condense/matcher.h"
#include "deco/condense/method.h"
#include "deco/core/learner.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/nn/layers.h"
#include "deco/nn/loss.h"
#include "deco/nn/sequential.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "test_util.h"

namespace deco {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

TEST(SoftCrossEntropyTest, MatchesHardCeOnOneHotTargets) {
  Rng rng(1);
  Tensor logits = random_tensor({3, 5}, rng, 2.0);
  const std::vector<int64_t> labels{0, 4, 2};
  Tensor onehot({3, 5});
  for (int64_t i = 0; i < 3; ++i)
    onehot.at2(i, labels[static_cast<size_t>(i)]) = 1.0f;
  auto hard = nn::weighted_cross_entropy(logits, labels);
  auto soft = nn::soft_cross_entropy(logits, onehot);
  EXPECT_NEAR(hard.loss, soft.loss, 1e-5f);
  deco::testing::expect_tensor_near(hard.grad_logits, soft.grad_logits, 1e-6f,
                                    1e-5f);
}

TEST(SoftCrossEntropyTest, GradCheckLogitsAndTargets) {
  Rng rng(2);
  Tensor logits = random_tensor({3, 4}, rng, 1.5);
  Tensor targets({3, 4});
  rng.fill_uniform(targets, 0.05, 0.95);
  const std::vector<float> weights{1.0f, 0.5f, 2.0f};
  auto res = nn::soft_cross_entropy(logits, targets, weights);

  auto loss_z = [&](const Tensor& probe) {
    return nn::soft_cross_entropy(probe, targets, weights).loss;
  };
  EXPECT_LT(relative_error(res.grad_logits,
                           numeric_gradient(loss_z, logits, 1e-3f)),
            1e-2f);

  auto loss_q = [&](const Tensor& probe) {
    return nn::soft_cross_entropy(logits, probe, weights).loss;
  };
  EXPECT_LT(relative_error(res.grad_targets,
                           numeric_gradient(loss_q, targets, 1e-3f)),
            1e-2f);
}

TEST(SoftCrossEntropyTest, RejectsShapeMismatch) {
  Tensor logits({2, 3});
  Tensor targets({2, 4});
  EXPECT_THROW(nn::soft_cross_entropy(logits, targets), Error);
}

TEST(SoftBufferTest, InitialTargetsPeakAtOwnClass) {
  condense::SyntheticBuffer buf(4, 2, 1, 4, 4);
  buf.enable_soft_labels(0.9f);
  std::vector<int64_t> all;
  for (int64_t r = 0; r < buf.size(); ++r) all.push_back(r);
  Tensor q = buf.soft_targets(all);
  for (int64_t r = 0; r < buf.size(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 4; ++c) sum += q.at2(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_NEAR(q.at2(r, buf.label(r)), 0.9f, 1e-4f);
  }
}

TEST(SoftBufferTest, DisabledByDefault) {
  condense::SyntheticBuffer buf(2, 1, 1, 2, 2);
  EXPECT_FALSE(buf.soft_labels_enabled());
  EXPECT_THROW(buf.soft_targets({0}), Error);
}

TEST(SoftBufferTest, LabelGradChainsThroughSoftmax) {
  condense::SyntheticBuffer buf(3, 1, 1, 2, 2);
  buf.enable_soft_labels(0.8f);
  // Numeric check: L(z) = Σ q(z)·t for an arbitrary t must match the chained
  // gradient produced by scatter_add_label_grad_from_targets.
  Rng rng(3);
  Tensor t = random_tensor({1, 3}, rng);
  const std::vector<int64_t> rows{1};

  buf.label_grads().zero();
  buf.scatter_add_label_grad_from_targets(rows, t, 1.0f);

  Tensor analytic({3});
  for (int64_t c = 0; c < 3; ++c) analytic[c] = buf.label_grads().at2(1, c);

  auto loss = [&](const Tensor& probe_logits_row) {
    Tensor saved = buf.label_logits();
    for (int64_t c = 0; c < 3; ++c)
      buf.label_logits().at2(1, c) = probe_logits_row[c];
    Tensor q = buf.soft_targets(rows);
    buf.label_logits() = saved;
    float acc = 0.0f;
    for (int64_t c = 0; c < 3; ++c) acc += q.at2(0, c) * t.at2(0, c);
    return acc;
  };
  Tensor z0({3});
  for (int64_t c = 0; c < 3; ++c) z0[c] = buf.label_logits().at2(1, c);
  Tensor numeric = numeric_gradient(loss, z0, 1e-3f);
  EXPECT_LT(relative_error(analytic, numeric), 1e-2f);
}

TEST(SoftMatcherTest, TargetGradientMatchesNumericOnSmoothModel) {
  Rng rng(4);
  nn::Sequential model;
  model.add(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  model.add(std::make_unique<nn::InstanceNorm2d>(4));
  model.add(std::make_unique<nn::AvgPool2d>(2));
  model.add(std::make_unique<nn::Flatten>());
  model.add(std::make_unique<nn::Linear>(16, 3, rng));

  Tensor x_syn = random_tensor({2, 1, 4, 4}, rng, 0.5);
  Tensor q_syn({2, 3});
  rng.fill_uniform(q_syn, 0.1, 0.9);
  Tensor x_real = random_tensor({4, 1, 4, 4}, rng, 0.5);
  const std::vector<int64_t> y_real{0, 1, 2, 0};

  condense::GradientMatcher matcher(model);
  auto res = matcher.match_soft(x_syn, q_syn, x_real, y_real, {});
  EXPECT_EQ(res.grad_targets.shape(), q_syn.shape());

  // Direct numeric gradient of D with respect to the soft targets.
  auto dist = [&](const Tensor& probe_q) {
    model.zero_grad();
    auto ce_r = nn::weighted_cross_entropy(model.forward(x_real), y_real);
    model.backward(ce_r.grad_logits);
    condense::GradVec g_real = condense::clone_grads(model);
    model.zero_grad();
    auto ce_s = nn::soft_cross_entropy(model.forward(x_syn), probe_q);
    model.backward(ce_s.grad_logits);
    condense::GradVec g_syn = condense::clone_grads(model);
    model.zero_grad();
    return condense::gradient_distance_value(g_syn, g_real);
  };
  Tensor numeric = numeric_gradient(dist, q_syn, 1e-2f);
  EXPECT_LT(relative_error(res.grad_targets, numeric), 2e-2f);
}

TEST(SoftCondenserTest, UpdatesLabelsOfActiveRowsOnly) {
  data::DatasetSpec spec = data::icub1_spec();
  spec.num_classes = 4;
  data::ProceduralImageWorld world(spec, 5);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 4;
  mc.width = 8;
  mc.depth = 2;

  Rng rng(6);
  condense::SyntheticBuffer buf(4, 2, 3, 16, 16);
  buf.init_from_dataset(labeled, rng);
  buf.enable_soft_labels();
  nn::ConvNet deployed(mc, rng);

  Tensor before = buf.label_logits();

  condense::DecoCondenserConfig cfg;
  cfg.iterations = 3;
  cfg.learn_soft_labels = true;
  cfg.feature_discrimination = false;
  condense::DecoCondenser cond(mc, cfg, 7);

  const std::vector<int64_t> active{1};
  Tensor x_real({6, 3, 16, 16});
  std::vector<int64_t> y_real(6, 1);
  for (int64_t i = 0; i < 6; ++i) {
    Tensor img = world.render(1, 0, 0, 40 + i);
    std::copy(img.data(), img.data() + img.numel(),
              x_real.data() + i * img.numel());
  }
  condense::CondenseContext ctx;
  ctx.buffer = &buf;
  ctx.x_real = &x_real;
  ctx.y_real = &y_real;
  ctx.w_real = nullptr;
  ctx.active_classes = &active;
  ctx.deployed_model = &deployed;
  ctx.rng = &rng;
  cond.condense(ctx);

  for (int64_t r = 0; r < buf.size(); ++r) {
    float delta = 0.0f;
    for (int64_t c = 0; c < 4; ++c)
      delta += std::abs(before.at2(r, c) - buf.label_logits().at2(r, c));
    if (buf.label(r) == 1) {
      EXPECT_GT(delta, 0.0f) << "active row " << r << " labels unchanged";
    } else {
      EXPECT_EQ(delta, 0.0f) << "inactive row " << r << " labels changed";
    }
  }
  // Targets remain valid distributions.
  std::vector<int64_t> all;
  for (int64_t r = 0; r < buf.size(); ++r) all.push_back(r);
  Tensor q = buf.soft_targets(all);
  for (int64_t i = 0; i < q.numel(); ++i) {
    EXPECT_GE(q[i], 0.0f);
    EXPECT_LE(q[i], 1.0f);
  }
}

TEST(SoftLearnerTest, EndToEndStreamRuns) {
  data::ProceduralImageWorld world(data::icub1_spec(), 8);
  data::Dataset labeled = world.make_labeled_set(4, 1);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 8;
  mc.depth = 2;
  Rng rng(9);
  nn::ConvNet model(mc, rng);

  core::DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 3;
  cfg.condenser.iterations = 2;
  cfg.condenser.learn_soft_labels = true;
  core::DecoLearner learner(model, cfg, 10);
  learner.init_buffer_from(labeled);
  EXPECT_TRUE(learner.buffer().soft_labels_enabled());

  data::StreamConfig sc;
  sc.stc = 16;
  sc.segment_size = 16;
  sc.total_segments = 4;
  data::TemporalStream stream(world, sc, 11);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);
  EXPECT_EQ(learner.segments_seen(), 4);
}

}  // namespace
}  // namespace deco
