// Tests for the trajectory-matching (MTT) extension condenser.
#include <gtest/gtest.h>

#include "deco/condense/method.h"
#include "deco/data/world.h"
#include "deco/eval/runner.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::condense {
namespace {

nn::ConvNetConfig small_config(int64_t classes = 4) {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = classes;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

struct MttFixture {
  MttFixture() : rng(1), buffer(4, 2, 3, 16, 16), world(make_spec(), 7) {
    data::Dataset labeled = world.make_labeled_set(3, 1);
    buffer.init_from_dataset(labeled, rng);
    x_real = Tensor({8, 3, 16, 16});
    for (int64_t i = 0; i < 8; ++i) {
      const int64_t cls = i < 4 ? 0 : 2;
      Tensor img = world.render(cls, 0, 0, 100 + i);
      std::copy(img.data(), img.data() + img.numel(),
                x_real.data() + i * img.numel());
      y_real.push_back(cls);
    }
    active = {0, 2};
  }

  static data::DatasetSpec make_spec() {
    data::DatasetSpec s = data::icub1_spec();
    s.num_classes = 4;
    return s;
  }

  CondenseContext context() {
    CondenseContext ctx;
    ctx.buffer = &buffer;
    ctx.x_real = &x_real;
    ctx.y_real = &y_real;
    ctx.w_real = nullptr;
    ctx.active_classes = &active;
    ctx.deployed_model = nullptr;  // MTT does not need the deployed encoder
    ctx.rng = &rng;
    return ctx;
  }

  Rng rng;
  SyntheticBuffer buffer;
  data::ProceduralImageWorld world;
  Tensor x_real;
  std::vector<int64_t> y_real;
  std::vector<int64_t> active;
};

TEST(MttCondenserTest, UpdatesActiveRowsOnlyAndKeepsInvariants) {
  MttFixture f;
  MttConfig cfg;
  cfg.iterations = 3;
  MttCondenser cond(small_config(), cfg, 11);
  EXPECT_EQ(cond.name(), "MTT");

  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);

  const int64_t per = 3 * 16 * 16;
  float moved_active = 0.0f;
  for (int64_t r = 0; r < f.buffer.size(); ++r) {
    float delta = 0.0f;
    for (int64_t j = 0; j < per; ++j)
      delta += std::abs(before[r * per + j] - f.buffer.images()[r * per + j]);
    const bool is_active = f.buffer.label(r) == 0 || f.buffer.label(r) == 2;
    if (is_active) {
      moved_active += delta;
    } else {
      EXPECT_EQ(delta, 0.0f) << "inactive row " << r << " changed";
    }
  }
  EXPECT_GT(moved_active, 0.0f);
  EXPECT_GE(f.buffer.images().min(), 0.0f);
  EXPECT_LE(f.buffer.images().max(), 1.0f);
  EXPECT_EQ(cond.last_losses().size(), 3u);
  for (float l : cond.last_losses()) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GE(l, 0.0f);
  }
}

TEST(MttCondenserTest, DescentReducesTrajectoryLossWithFixedModelSeed) {
  // Repeated condense calls on the same data should, on average, reduce the
  // trajectory loss observed at matching iterations (synthetic data moves
  // toward reproducing the expert step).
  MttFixture f;
  MttConfig cfg;
  cfg.iterations = 6;
  cfg.lr_syn = 0.02f;
  MttCondenser cond(small_config(), cfg, 12);
  double first = 0.0, last = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    auto ctx = f.context();
    cond.condense(ctx);
    first += cond.last_losses().front();
    last += cond.last_losses().back();
  }
  // Losses are measured under different random models, so allow generous
  // slack: the trend should not blow up.
  EXPECT_LT(last, 3.0 * first);
}

TEST(MttCondenserTest, NoActiveClassesIsNoOp) {
  MttFixture f;
  MttConfig cfg;
  MttCondenser cond(small_config(), cfg, 13);
  f.active.clear();
  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);
  EXPECT_EQ(before.l1_distance(f.buffer.images()), 0.0f);
}

TEST(MttCondenserTest, IncompleteContextThrows) {
  MttConfig cfg;
  MttCondenser cond(small_config(), cfg, 14);
  CondenseContext ctx;
  EXPECT_THROW(cond.condense(ctx), Error);
}

TEST(MttRunnerTest, EndToEndThroughRunner) {
  eval::RunConfig cfg;
  cfg.method = "mtt";
  cfg.spec = data::icub1_spec();
  cfg.stream.stc = 12;
  cfg.stream.segment_size = 12;
  cfg.stream.total_segments = 3;
  cfg.ipc = 2;
  cfg.deco.beta = 2;
  cfg.deco.model_update_epochs = 3;
  cfg.pretrain_per_class = 4;
  cfg.pretrain_epochs = 8;
  cfg.test_per_class = 8;
  cfg.model_width = 8;
  cfg.model_depth = 2;
  cfg.seed = 1;
  const auto res = eval::run_experiment(cfg);
  EXPECT_GT(res.final_accuracy, 0.0f);
  EXPECT_GT(res.condense_seconds, 0.0);
}

}  // namespace
}  // namespace deco::condense
