#include "deco/nn/optim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace deco::nn {
namespace {

// Minimizes f(w) = 0.5·‖w − target‖² with an optimizer; gradient = w − target.
template <typename Opt>
float optimize_quadratic(Opt& opt, Tensor& w, Tensor& g, const Tensor& target,
                         int steps) {
  for (int s = 0; s < steps; ++s) {
    for (int64_t i = 0; i < w.numel(); ++i) g[i] = w[i] - target[i];
    opt.step();
  }
  Tensor diff = w - target;
  return diff.norm();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w({4}, {5, -3, 2, 9});
  Tensor g({4});
  Tensor target({4}, {1, 1, 1, 1});
  SgdMomentum opt({ParamRef{"w", &w, &g}}, 0.1f, 0.9f);
  EXPECT_LT(optimize_quadratic(opt, w, g, target, 200), 1e-3f);
}

TEST(SgdTest, NoMomentumSingleStepIsPlainSgd) {
  Tensor w({1}, {2.0f});
  Tensor g({1}, {0.5f});
  SgdMomentum opt({ParamRef{"w", &w, &g}}, 0.1f, 0.0f);
  opt.step();
  EXPECT_FLOAT_EQ(w[0], 2.0f - 0.1f * 0.5f);
}

TEST(SgdTest, MomentumAccumulates) {
  Tensor w({1}, {0.0f});
  Tensor g({1}, {1.0f});
  SgdMomentum opt({ParamRef{"w", &w, &g}}, 1.0f, 0.5f);
  opt.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(w[0], -1.0f);
  opt.step();  // v = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(w[0], -2.5f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w({1}, {10.0f});
  Tensor g({1}, {0.0f});
  SgdMomentum opt({ParamRef{"w", &w, &g}}, 0.1f, 0.0f, 0.1f);
  opt.step();
  EXPECT_LT(w[0], 10.0f);
}

TEST(SgdTest, ZeroGradClearsAccumulators) {
  Tensor w({2});
  Tensor g({2}, {3, 4});
  SgdMomentum opt({ParamRef{"w", &w, &g}}, 0.1f);
  opt.zero_grad();
  EXPECT_EQ(g.norm(), 0.0f);
}

TEST(SgdTest, ResetStateClearsMomentum) {
  Tensor w({1}, {0.0f});
  Tensor g({1}, {1.0f});
  SgdMomentum opt({ParamRef{"w", &w, &g}}, 1.0f, 0.9f);
  opt.step();
  opt.reset_state();
  w.fill(0.0f);
  opt.step();  // without history: w = -1 again, not -1.9
  EXPECT_FLOAT_EQ(w[0], -1.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w({4}, {5, -3, 2, 9});
  Tensor g({4});
  Tensor target({4}, {1, 1, 1, 1});
  Adam opt({ParamRef{"w", &w, &g}}, 0.2f);
  EXPECT_LT(optimize_quadratic(opt, w, g, target, 300), 1e-2f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  Tensor w({1}, {0.0f});
  Tensor g({1}, {100.0f});  // magnitude-invariant first step
  Adam opt({ParamRef{"w", &w, &g}}, 0.01f);
  opt.step();
  EXPECT_NEAR(w[0], -0.01f, 1e-4f);
}

TEST(AdamTest, ResetStateRestartsBiasCorrection) {
  Tensor w({1}, {0.0f});
  Tensor g({1}, {1.0f});
  Adam opt({ParamRef{"w", &w, &g}}, 0.01f);
  opt.step();
  const float after_first = w[0];
  opt.reset_state();
  w.fill(0.0f);
  opt.step();
  EXPECT_NEAR(w[0], after_first, 1e-6f);
}

}  // namespace
}  // namespace deco::nn
