#include "deco/tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deco/tensor/check.h"
#include "deco/tensor/rng.h"
#include "test_util.h"

namespace deco {
namespace {

using testing::expect_tensor_near;
using testing::random_tensor;

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(a.at2(i, kk)) * b.at2(kk, j);
      out.at2(i, j) = static_cast<float>(acc);
    }
  return out;
}

TEST(OpsTest, MatmulMatchesNaive) {
  Rng rng(7);
  Tensor a = random_tensor({5, 7}, rng);
  Tensor b = random_tensor({7, 3}, rng);
  expect_tensor_near(matmul(a, b), naive_matmul(a, b), 1e-4f, 1e-4f);
}

TEST(OpsTest, MatmulTnEqualsTransposedMatmul) {
  Rng rng(8);
  Tensor a = random_tensor({6, 4}, rng);
  Tensor b = random_tensor({6, 5}, rng);
  expect_tensor_near(matmul_tn(a, b), naive_matmul(transpose2d(a), b), 1e-4f,
                     1e-4f);
}

TEST(OpsTest, MatmulNtEqualsMatmulWithTransposed) {
  Rng rng(9);
  Tensor a = random_tensor({4, 6}, rng);
  Tensor b = random_tensor({5, 6}, rng);
  expect_tensor_near(matmul_nt(a, b), naive_matmul(a, transpose2d(b)), 1e-4f,
                     1e-4f);
}

TEST(OpsTest, MatmulNtRemainderInnerDims) {
  // matmul_nt unrolls the inner dot product 4-wide; cover every k % 4
  // residue (and k smaller than the unroll width) so the remainder loop is
  // exercised on its own and mixed with full blocks.
  Rng rng(19);
  for (int64_t k : {1, 2, 3, 5, 6, 7, 9, 11}) {
    Tensor a = random_tensor({3, k}, rng);
    Tensor b = random_tensor({4, k}, rng);
    expect_tensor_near(matmul_nt(a, b), naive_matmul(a, transpose2d(b)), 1e-4f,
                       1e-4f);
  }
}

TEST(OpsTest, MatmulShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(OpsTest, TransposeRoundTrip) {
  Rng rng(10);
  Tensor a = random_tensor({3, 8}, rng);
  expect_tensor_near(transpose2d(transpose2d(a)), a, 1e-6f, 0.0f);
}

TEST(OpsTest, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: columns are just the flattened image.
  Rng rng(11);
  Tensor img = random_tensor({2, 3, 4, 4}, rng);
  Conv2dGeometry g{3, 4, 4, 1, 1, 1, 0};
  Tensor cols;
  im2col_into(img, g, cols);
  ASSERT_EQ(cols.dim(0), 3);
  ASSERT_EQ(cols.dim(1), 2 * 16);
  // Channel c, sample n, spatial i ↔ cols(c, n*16+i)
  for (int64_t n = 0; n < 2; ++n)
    for (int64_t c = 0; c < 3; ++c)
      for (int64_t i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(cols.at2(c, n * 16 + i),
                        img.at4(n, c, i / 4, i % 4));
}

TEST(OpsTest, Im2ColPaddingProducesZeros) {
  Tensor img = Tensor::full({1, 1, 2, 2}, 1.0f);
  Conv2dGeometry g{1, 2, 2, 3, 3, 1, 1};
  Tensor cols;
  im2col_into(img, g, cols);
  ASSERT_EQ(cols.dim(0), 9);
  ASSERT_EQ(cols.dim(1), 4);
  // Top-left kernel tap of the top-left output lands in padding.
  EXPECT_FLOAT_EQ(cols.at2(0, 0), 0.0f);
  // Center tap always hits the image.
  EXPECT_FLOAT_EQ(cols.at2(4, 0), 1.0f);
}

// col2im must be the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(OpsTest, Col2ImIsAdjointOfIm2Col) {
  Rng rng(12);
  Conv2dGeometry g{2, 5, 6, 3, 3, 1, 1};
  Tensor x = random_tensor({2, 2, 5, 6}, rng);
  Tensor cols;
  im2col_into(x, g, cols);
  Tensor y = random_tensor(cols.shape(), rng);
  Tensor back({2, 2, 5, 6});
  col2im_into(y, g, back);
  EXPECT_NEAR(dot(cols, y), dot(x, back), 1e-2);
}

TEST(OpsTest, Conv2dGeometryOutputDims) {
  Conv2dGeometry g{3, 16, 16, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  Conv2dGeometry s{3, 16, 16, 3, 3, 2, 0};
  EXPECT_EQ(s.out_h(), 7);
  EXPECT_EQ(s.out_w(), 7);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(13);
  Tensor logits = random_tensor({4, 7}, rng, 5.0);
  Tensor p = softmax_rows(logits);
  for (int64_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(p.at2(i, j), 0.0f);
      s += p.at2(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariant) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {101, 102, 103});
  expect_tensor_near(softmax_rows(a), softmax_rows(b), 1e-6f, 1e-5f);
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  Tensor a({1, 2}, {1000.0f, 0.0f});
  Tensor p = softmax_rows(a);
  EXPECT_NEAR(p.at2(0, 0), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(p.at2(0, 1)));
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(14);
  Tensor logits = random_tensor({3, 5}, rng, 3.0);
  Tensor p = softmax_rows(logits);
  Tensor lp;
  log_softmax_rows_into(logits, lp);
  for (int64_t i = 0; i < lp.numel(); ++i)
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-4f);
}

TEST(OpsTest, ArgmaxAndMaxRows) {
  Tensor t({2, 3}, {1, 5, 2, 7, 0, 3});
  auto am = argmax_rows(t);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
  auto mx = max_rows(t);
  EXPECT_FLOAT_EQ(mx[0], 5.0f);
  EXPECT_FLOAT_EQ(mx[1], 7.0f);
}

TEST(OpsTest, CosineSimilarityProperties) {
  Tensor a({3}, {1, 0, 0});
  Tensor b({3}, {0, 1, 0});
  EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6f);
  EXPECT_NEAR(cosine_similarity(a, a), 1.0f, 1e-6f);
  Tensor neg({3}, {-1, 0, 0});
  EXPECT_NEAR(cosine_similarity(a, neg), -1.0f, 1e-6f);
  Tensor zero({3});
  EXPECT_EQ(cosine_similarity(a, zero), 0.0f);  // degenerate case
}

TEST(OpsTest, StackAndTakeAndRow) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor s = stack({a, b});
  ASSERT_EQ(s.ndim(), 2);
  EXPECT_EQ(s.at2(1, 0), 3.0f);
  Tensor taken = take(s, {1, 0, 1});
  ASSERT_EQ(taken.dim(0), 3);
  EXPECT_EQ(taken.at2(0, 1), 4.0f);
  EXPECT_EQ(taken.at2(1, 0), 1.0f);
  Tensor r = row(s, 0);
  EXPECT_EQ(r.numel(), 2);
  EXPECT_EQ(r[1], 2.0f);
}

TEST(OpsTest, TakeOutOfRangeThrows) {
  Tensor s({2, 2});
  EXPECT_THROW(take(s, {2}), Error);
  EXPECT_THROW(take(s, {-1}), Error);
}

}  // namespace
}  // namespace deco
