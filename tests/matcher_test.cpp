// Verifies the finite-difference one-step matcher (Eqs. 5–7) against a direct
// numeric gradient of the matching distance with respect to the synthetic
// pixels — i.e. that the 5-pass O(|θ|+|X|) trick computes what the expensive
// second-order chain rule (Eq. 6) would.
//
// The convergence comparisons use a ReLU-free (smooth) network: with ReLU the
// parameter gradient g_syn(X) is discontinuous across activation-pattern
// boundaries, so an outer numeric differentiation of D(X) does not converge
// and cannot serve as ground truth (the matcher is still the correct
// almost-everywhere gradient there, as in the PyTorch double-backward
// implementations). Shape/restore/robustness tests use the real ConvNet.
#include "deco/condense/matcher.h"

#include <gtest/gtest.h>

#include <memory>

#include "deco/condense/grad_distance.h"
#include "deco/condense/grad_utils.h"
#include "deco/nn/convnet.h"
#include "deco/nn/layers.h"
#include "deco/nn/loss.h"
#include "deco/nn/sequential.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::condense {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

nn::ConvNetConfig tiny_config() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_h = cfg.image_w = 4;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 1;
  return cfg;
}

// Conv → InstanceNorm → AvgPool → Flatten → Linear, no ReLU: smooth in both
// parameters and inputs, so numeric differentiation of D is well-defined.
std::unique_ptr<nn::Sequential> smooth_model(Rng& rng) {
  auto m = std::make_unique<nn::Sequential>();
  m->add(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  m->add(std::make_unique<nn::InstanceNorm2d>(4));
  m->add(std::make_unique<nn::AvgPool2d>(2));
  m->add(std::make_unique<nn::Flatten>());
  m->add(std::make_unique<nn::Linear>(16, 3, rng));
  return m;
}

// Computes D(g_syn(X_syn), g_real) from scratch — the quantity the matcher
// differentiates.
float matching_distance(nn::Module& model, const Tensor& x_syn,
                        const std::vector<int64_t>& y_syn, const Tensor& x_real,
                        const std::vector<int64_t>& y_real,
                        const std::vector<float>& w_real) {
  model.zero_grad();
  auto ce_r = nn::weighted_cross_entropy(model.forward(x_real), y_real, w_real);
  model.backward(ce_r.grad_logits);
  GradVec g_real = clone_grads(model);

  model.zero_grad();
  auto ce_s = nn::weighted_cross_entropy(model.forward(x_syn), y_syn);
  model.backward(ce_s.grad_logits);
  GradVec g_syn = clone_grads(model);
  model.zero_grad();
  return gradient_distance_value(g_syn, g_real);
}

TEST(MatcherTest, FiniteDifferenceGradientMatchesDirectNumeric) {
  Rng rng(1);
  auto model = smooth_model(rng);
  Tensor x_syn = random_tensor({3, 1, 4, 4}, rng, 0.5);
  const std::vector<int64_t> y_syn{0, 1, 2};
  Tensor x_real = random_tensor({6, 1, 4, 4}, rng, 0.5);
  const std::vector<int64_t> y_real{0, 0, 1, 1, 2, 2};
  const std::vector<float> w_real{1.0f, 0.8f, 0.9f, 1.0f, 0.7f, 0.6f};

  GradientMatcher matcher(*model);
  MatchResult res = matcher.match(x_syn, y_syn, x_real, y_real, w_real);
  EXPECT_GT(res.distance, 0.0f);
  EXPECT_EQ(res.grad_syn.shape(), x_syn.shape());

  auto dist = [&](const Tensor& probe) {
    return matching_distance(*model, probe, y_syn, x_real, y_real, w_real);
  };
  Tensor numeric = numeric_gradient(dist, x_syn, 1e-2f);
  EXPECT_LT(relative_error(res.grad_syn, numeric), 1e-2f);
}

TEST(MatcherTest, FiniteDifferenceStableAcrossFdScales) {
  // The ε rule should make the estimate insensitive to the fd_scale knob on a
  // smooth model (the approximation error is O(ε²)).
  Rng rng(2);
  auto model = smooth_model(rng);
  Tensor x_syn = random_tensor({2, 1, 4, 4}, rng, 0.5);
  Tensor x_real = random_tensor({4, 1, 4, 4}, rng, 0.5);
  const std::vector<int64_t> y_syn{0, 1};
  const std::vector<int64_t> y_real{0, 0, 1, 1};

  GradientMatcher coarse(*model, 0.05f);
  GradientMatcher fine(*model, 0.002f);
  MatchResult a = coarse.match(x_syn, y_syn, x_real, y_real, {});
  MatchResult b = fine.match(x_syn, y_syn, x_real, y_real, {});
  EXPECT_LT(relative_error(a.grad_syn, b.grad_syn), 5e-2f);
}

TEST(MatcherTest, RestoresModelParameters) {
  Rng rng(3);
  nn::ConvNet model(tiny_config(), rng);
  Tensor before = *model.parameters()[0].value;
  Tensor x_syn = random_tensor({2, 1, 4, 4}, rng, 0.5);
  Tensor x_real = random_tensor({4, 1, 4, 4}, rng, 0.5);
  GradientMatcher matcher(model);
  matcher.match(x_syn, {0, 1}, x_real, {0, 0, 1, 1}, {});
  Tensor after = *model.parameters()[0].value;
  EXPECT_LT(before.l1_distance(after), 1e-4f);
}

TEST(MatcherTest, GradientDescentOnMatcherOutputReducesDistance) {
  Rng rng(4);
  auto model = smooth_model(rng);
  Tensor x_syn = random_tensor({3, 1, 4, 4}, rng, 0.5);
  const std::vector<int64_t> y_syn{0, 1, 2};
  Tensor x_real = random_tensor({6, 1, 4, 4}, rng, 0.5);
  const std::vector<int64_t> y_real{0, 0, 1, 1, 2, 2};

  GradientMatcher matcher(*model);
  const float d0 = matching_distance(*model, x_syn, y_syn, x_real, y_real, {});
  for (int step = 0; step < 30; ++step) {
    MatchResult res = matcher.match(x_syn, y_syn, x_real, y_real, {});
    // Normalized step: robust to the (scale-dependent) raw gradient norm.
    const float n = res.grad_syn.norm();
    if (n > 1e-12f) x_syn.add_scaled_(res.grad_syn, -0.05f / n);
  }
  const float d1 = matching_distance(*model, x_syn, y_syn, x_real, y_real, {});
  EXPECT_LT(d1, d0);
}

TEST(MatcherTest, ConvNetGradientsAreFiniteAndRestore) {
  // With ReLU the matcher output is an a.e. gradient; we can still assert it
  // is finite, correctly shaped, and leaves the model untouched.
  Rng rng(5);
  nn::ConvNet model(tiny_config(), rng);
  Tensor x_syn = random_tensor({3, 1, 4, 4}, rng, 0.5);
  Tensor x_real = random_tensor({6, 1, 4, 4}, rng, 0.5);
  GradientMatcher matcher(model);
  MatchResult res =
      matcher.match(x_syn, {0, 1, 2}, x_real, {0, 0, 1, 1, 2, 2}, {});
  EXPECT_GT(res.distance, 0.0f);
  for (int64_t j = 0; j < res.grad_syn.numel(); ++j)
    EXPECT_TRUE(std::isfinite(res.grad_syn[j]));
}

TEST(MatcherTest, AugmentedMatchProducesFiniteGradients) {
  Rng rng(6);
  nn::ConvNet model(tiny_config(), rng);
  Tensor x_syn = random_tensor({2, 1, 4, 4}, rng, 0.5);
  Tensor x_real = random_tensor({4, 1, 4, 4}, rng, 0.5);
  augment::SiameseAugment aug("flip_shift_scale_rotate_color_cutout");
  GradientMatcher matcher(model);
  for (int i = 0; i < 10; ++i) {
    MatchResult res = matcher.match_augmented(x_syn, {0, 1}, x_real,
                                              {0, 0, 1, 1}, {}, aug, rng);
    EXPECT_EQ(res.grad_syn.shape(), x_syn.shape());
    for (int64_t j = 0; j < res.grad_syn.numel(); ++j)
      EXPECT_TRUE(std::isfinite(res.grad_syn[j]));
  }
}

TEST(MatcherTest, LabelCountMismatchThrows) {
  Rng rng(7);
  nn::ConvNet model(tiny_config(), rng);
  Tensor x_syn = random_tensor({2, 1, 4, 4}, rng);
  Tensor x_real = random_tensor({2, 1, 4, 4}, rng);
  GradientMatcher matcher(model);
  EXPECT_THROW(matcher.match(x_syn, {0}, x_real, {0, 1}, {}), Error);
}

TEST(MatcherTest, RejectsNonPositiveFdScale) {
  Rng rng(8);
  nn::ConvNet model(tiny_config(), rng);
  EXPECT_THROW(GradientMatcher(model, 0.0f), Error);
}

}  // namespace
}  // namespace deco::condense
