// Quantized storage subsystem: dtype codecs, the v3 DECOTNSR container,
// quantized caches/checkpoints and the StoragePolicy config surface.
//
// The codec contract (dtype.h / docs/EXTENDING.md section 10) is pinned
// here: bitwise-deterministic scalar encode/decode, no fabricated NaN/Inf on
// decode, fp32 as the bit-exact identity, and the "resident fp32 view ==
// decode(stored bytes)" invariant that makes lossy caches save/load
// byte-identically on their stored form.
#include "deco/tensor/dtype.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "deco/baselines/replay.h"
#include "deco/condense/buffer.h"
#include "deco/core/learner.h"
#include "deco/core/thread_pool.h"
#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/nn/checkpoint.h"
#include "deco/runtime/config.h"
#include "deco/tensor/check.h"
#include "deco/tensor/serialize.h"
#include "test_util.h"

namespace deco {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

bool same_floats(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// ---- names and tags ---------------------------------------------------------

TEST(DTypeTest, NamesRoundTripAndAliasesParse) {
  EXPECT_EQ(dtype_name(DType::kF32), "fp32");
  EXPECT_EQ(dtype_name(DType::kF16), "fp16");
  EXPECT_EQ(dtype_name(DType::kQ8), "int8");
  for (DType d : {DType::kF32, DType::kF16, DType::kQ8})
    EXPECT_EQ(dtype_from_name(dtype_name(d)), d);
  EXPECT_EQ(dtype_from_name("f32"), DType::kF32);
  EXPECT_EQ(dtype_from_name("float16"), DType::kF16);
  EXPECT_EQ(dtype_from_name("q8"), DType::kQ8);
  EXPECT_THROW(dtype_from_name("int7"), Error);
  EXPECT_TRUE(dtype_tag_valid(0));
  EXPECT_TRUE(dtype_tag_valid(2));
  EXPECT_FALSE(dtype_tag_valid(3));
  EXPECT_FALSE(dtype_tag_valid(255));
}

// ---- fp16 scalar conversion -------------------------------------------------

TEST(DTypeTest, F16KnownValues) {
  EXPECT_EQ(f32_to_f16(0.0f), 0x0000u);
  EXPECT_EQ(f32_to_f16(-0.0f), 0x8000u);
  EXPECT_EQ(f32_to_f16(1.0f), 0x3C00u);
  EXPECT_EQ(f32_to_f16(-2.0f), 0xC000u);
  EXPECT_EQ(f32_to_f16(0.5f), 0x3800u);
  EXPECT_EQ(f32_to_f16(65504.0f), 0x7BFFu);  // largest finite f16
  EXPECT_EQ(f32_to_f16(1e9f), 0x7C00u);      // overflow saturates to +Inf
  EXPECT_EQ(f32_to_f16(std::numeric_limits<float>::infinity()), 0x7C00u);
  EXPECT_EQ(f32_to_f16(-std::numeric_limits<float>::infinity()), 0xFC00u);
  EXPECT_FLOAT_EQ(f16_to_f32(0x3C00u), 1.0f);
  EXPECT_FLOAT_EQ(f16_to_f32(0x0001u), 5.9604644775390625e-8f);  // subnormal
  EXPECT_TRUE(std::isnan(
      f16_to_f32(f32_to_f16(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(DTypeTest, F16DenormalF32InputsFlushToSignedZero) {
  const float denorm = 1e-40f;  // f32 subnormal, far below 2^-24
  EXPECT_EQ(f32_to_f16(denorm), 0x0000u);
  EXPECT_EQ(f32_to_f16(-denorm), 0x8000u);
  // Values below half the smallest f16 subnormal round to zero too.
  EXPECT_EQ(f32_to_f16(2e-8f), 0x0000u);
}

TEST(DTypeTest, F16RoundsToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 0x3C00 and 0x3C01: ties to the
  // even code 0x3C00. The next halfway point ties up to even 0x3C02.
  EXPECT_EQ(f32_to_f16(1.0f + 0.00048828125f), 0x3C00u);
  EXPECT_EQ(f32_to_f16(1.0f + 3.0f * 0.00048828125f), 0x3C02u);
  // Just past halfway rounds up.
  EXPECT_EQ(f32_to_f16(1.0f + 0.00048828125f * 1.5f), 0x3C01u);
  // 65520 is halfway between 65504 (0x7BFF, odd) and 2^16: the carry rounds
  // up out of the finite range to Inf.
  EXPECT_EQ(f32_to_f16(65520.0f), 0x7C00u);
}

TEST(DTypeTest, F16EveryNonNanHalfRoundTripsExactly) {
  for (uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const uint16_t half = static_cast<uint16_t>(h);
    const float f = f16_to_f32(half);
    if (std::isnan(f)) {
      // NaN payloads are not preserved bit-exactly (the encoder forces a
      // quiet NaN), but the class and sign must survive.
      const uint16_t back = f32_to_f16(f);
      EXPECT_EQ(back & 0x7C00u, 0x7C00u);
      EXPECT_NE(back & 0x3FFu, 0u);
      EXPECT_EQ(back & 0x8000u, half & 0x8000u);
      continue;
    }
    ASSERT_EQ(f32_to_f16(f), half) << "half 0x" << std::hex << h;
  }
}

// ---- int8 block quantization ------------------------------------------------

TEST(DTypeTest, Q8StoredBytesFollowBlockGeometry) {
  // 4 header bytes (f16 scale + f16 zero-point) per started block, one code
  // byte per element: block 32 stores 36 bytes per 128 logical.
  EXPECT_EQ(dtype_stored_bytes(DType::kQ8, 32, 32), 36);
  EXPECT_EQ(dtype_stored_bytes(DType::kQ8, 1, 32), 5);
  EXPECT_EQ(dtype_stored_bytes(DType::kQ8, 31, 32), 35);
  EXPECT_EQ(dtype_stored_bytes(DType::kQ8, 33, 32), 41);
  EXPECT_EQ(dtype_stored_bytes(DType::kQ8, 128, 32), 144);
  EXPECT_EQ(dtype_stored_bytes(DType::kF16, 10, 32), 20);
  EXPECT_EQ(dtype_stored_bytes(DType::kF32, 10, 32), 40);
  // The compression the acceptance gate asks for: >= 3.5x vs fp32.
  EXPECT_GE(static_cast<double>(dtype_stored_bytes(DType::kF32, 1 << 16, 32)) /
                static_cast<double>(
                    dtype_stored_bytes(DType::kQ8, 1 << 16, 32)),
            3.5);
}

TEST(DTypeTest, Q8RoundTripErrorIsBoundedByScale) {
  Rng rng(7);
  Tensor t = deco::testing::random_tensor({4, 32}, rng);  // values in [0, 1)
  for (int64_t i = 0; i < t.numel(); ++i)
    t.data()[i] = t.data()[i] * 2.0f - 1.0f;  // spread to [-1, 1)
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);
  const Tensor back = q.decode();
  // Range <= 2 over a block => step ~ 2/255 ~ 0.008; nearest-code rounding
  // contributes step/2 and the f16 rounding of scale/zero-point at most
  // another ~step, so 2.5 steps bounds the element-wise error.
  for (int64_t i = 0; i < t.numel(); ++i)
    ASSERT_NEAR(back.data()[i], t.data()[i], 0.02f) << "element " << i;
}

TEST(DTypeTest, Q8AllEqualBlockStoresZeroScaleExactly) {
  Tensor t = Tensor::full({32}, 3.25f);  // exactly representable in f16
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);
  const Tensor back = q.decode();
  for (int64_t i = 0; i < t.numel(); ++i)
    EXPECT_EQ(back.data()[i], 3.25f) << "zero-scale block must decode exact";
}

TEST(DTypeTest, Q8PartialAndSingleElementBlocks) {
  Rng rng(8);
  for (int64_t n : {1, 31, 33}) {
    Tensor t = deco::testing::random_tensor({n}, rng);
    const QTensor q = QTensor::encode(t, DType::kQ8, 32);
    EXPECT_EQ(q.stored_bytes(), dtype_stored_bytes(DType::kQ8, n, 32));
    const Tensor back = q.decode();
    ASSERT_EQ(back.numel(), n);
    for (int64_t i = 0; i < n; ++i)
      ASSERT_NEAR(back.data()[i], t.data()[i], 0.01f) << "n=" << n;
  }
}

TEST(DTypeTest, Q8SaturatesNanAndInfDeterministically) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor t({6}, {nan, inf, -inf, 0.5f, -0.5f, 0.25f});
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);
  const Tensor back = q.decode();
  // Decode never fabricates a non-finite value...
  for (int64_t i = 0; i < back.numel(); ++i)
    ASSERT_TRUE(std::isfinite(back.data()[i])) << "element " << i;
  // ...and the saturation is fixed: NaN and -Inf land on the block minimum
  // (the zero-point), +Inf on the block maximum.
  EXPECT_FLOAT_EQ(back.data()[0], back.data()[4]);  // NaN -> min (-0.5)
  EXPECT_FLOAT_EQ(back.data()[2], back.data()[4]);  // -Inf -> min
  EXPECT_GE(back.data()[1], back.data()[3]);        // +Inf -> max (~0.5)
  EXPECT_NEAR(back.data()[1], 0.5f, 0.01f);
}

TEST(DTypeTest, Q8DenormalBlockDecodesToFiniteZero) {
  Tensor t = Tensor::full({32}, 1e-40f);  // every input an f32 denormal
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);
  const Tensor back = q.decode();
  for (int64_t i = 0; i < back.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(back.data()[i]));
    ASSERT_EQ(back.data()[i], 0.0f) << "sub-f16 range flushes to zero";
  }
}

TEST(DTypeTest, EncodeIsBitwiseDeterministic) {
  Rng rng(9);
  Tensor t = deco::testing::random_tensor({3, 50}, rng);
  for (DType d : {DType::kF32, DType::kF16, DType::kQ8}) {
    const QTensor a = QTensor::encode(t, d, 32);
    const QTensor b = QTensor::encode(t, d, 32);
    ASSERT_EQ(a.stored_bytes(), b.stored_bytes());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.stored_bytes())),
              0)
        << dtype_name(d);
  }
}

// ---- QTensor ----------------------------------------------------------------

TEST(QTensorTest, Fp32IsTheIdentityCodec) {
  Rng rng(10);
  Tensor t = deco::testing::random_tensor({2, 5}, rng);
  const QTensor q = QTensor::encode(t, DType::kF32);
  EXPECT_EQ(q.stored_bytes(), q.logical_bytes());
  EXPECT_EQ(std::memcmp(q.data(), t.data(),
                        static_cast<size_t>(q.stored_bytes())),
            0);
  EXPECT_TRUE(same_floats(q.decode(), t));
}

TEST(QTensorTest, FromBytesRoundTripsAndValidatesGeometry) {
  Rng rng(11);
  Tensor t = deco::testing::random_tensor({3, 40}, rng);
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);
  std::vector<uint8_t> bytes(q.data(), q.data() + q.stored_bytes());
  const QTensor r = QTensor::from_bytes(DType::kQ8, 32, {3, 40}, bytes);
  EXPECT_EQ(r.numel(), q.numel());
  EXPECT_TRUE(same_floats(r.decode(), q.decode()));
  bytes.pop_back();
  EXPECT_THROW(QTensor::from_bytes(DType::kQ8, 32, {3, 40}, bytes), Error);
}

TEST(QTensorTest, ReencodeRefreshesStoredBytesInPlace) {
  Rng rng(12);
  Tensor t = deco::testing::random_tensor({64}, rng);
  QTensor q = QTensor::encode(t, DType::kQ8, 32);
  Tensor other = deco::testing::random_tensor({64}, rng);
  q.reencode(other);
  EXPECT_TRUE(same_floats(q.decode(), QTensor::encode(other, DType::kQ8, 32)
                                          .decode()));
  Tensor wrong({32});
  EXPECT_THROW(q.reencode(wrong), Error);
}

TEST(QTensorTest, StoragePolicyValidatesBlockRange) {
  StoragePolicy p;
  EXPECT_NO_THROW(p.validate());
  p.block = 4;
  EXPECT_NO_THROW(p.validate());
  p.block = 1024;
  EXPECT_NO_THROW(p.validate());
  p.block = 3;
  EXPECT_THROW(p.validate(), Error);
  p.block = 2048;
  EXPECT_THROW(p.validate(), Error);
}

// ---- v3 container -----------------------------------------------------------

TEST(DTypeSerializeTest, V3Fp32RoundTripsBitExactly) {
  Rng rng(20);
  Tensor t = deco::testing::random_tensor({4, 7}, rng);
  std::stringstream ss;
  write_tensor(ss, t, DType::kF32);
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(same_floats(back, t)) << "v3-fp32 must be bit-exact";
}

TEST(DTypeSerializeTest, TwoArgWriteStillEmitsV2) {
  Rng rng(21);
  Tensor t = deco::testing::random_tensor({5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  const TensorInfo info = skip_tensor(ss);
  EXPECT_EQ(info.version, 2u) << "legacy callers must keep v2 bytes";
  EXPECT_EQ(info.dtype, DType::kF32);
  EXPECT_EQ(info.block, 0);
}

TEST(DTypeSerializeTest, V2FilesReadAsFp32QTensors) {
  Rng rng(22);
  Tensor t = deco::testing::random_tensor({6, 3}, rng);
  std::stringstream ss;
  write_tensor(ss, t);  // v2
  const QTensor q = read_qtensor(ss);
  EXPECT_EQ(q.dtype(), DType::kF32);
  EXPECT_TRUE(same_floats(q.decode(), t));
}

TEST(DTypeSerializeTest, V3QuantizedRoundTripMatchesCodec) {
  Rng rng(23);
  Tensor t = deco::testing::random_tensor({10, 16}, rng);
  for (DType d : {DType::kF16, DType::kQ8}) {
    std::stringstream ss;
    write_tensor(ss, t, d, 8);
    const Tensor back = read_tensor(ss);
    const Tensor expect = QTensor::encode(t, d, 8).decode();
    EXPECT_TRUE(same_floats(back, expect)) << dtype_name(d);
  }
}

TEST(DTypeSerializeTest, WriteQTensorPersistsStoredBytesVerbatim) {
  Rng rng(24);
  Tensor t = deco::testing::random_tensor({9, 9}, rng);
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);

  std::stringstream ss;
  write_qtensor(ss, q);
  const std::string first = ss.str();
  const QTensor r = read_qtensor(ss);
  EXPECT_EQ(r.dtype(), DType::kQ8);
  EXPECT_EQ(r.block(), 32);
  EXPECT_EQ(r.shape(), q.shape());
  ASSERT_EQ(r.stored_bytes(), q.stored_bytes());
  EXPECT_EQ(std::memcmp(r.data(), q.data(),
                        static_cast<size_t>(q.stored_bytes())),
            0);

  // Save -> load -> save is byte-identical: quantization is not idempotent,
  // so this only holds because the stored form is persisted verbatim.
  std::stringstream ss2;
  write_qtensor(ss2, r);
  EXPECT_EQ(ss2.str(), first);
}

TEST(DTypeSerializeTest, SkipTensorReportsV3MetadataAndAdvances) {
  Rng rng(25);
  Tensor a = deco::testing::random_tensor({4, 33}, rng);
  Tensor b = deco::testing::random_tensor({2}, rng);
  std::stringstream ss;
  write_tensor(ss, a, DType::kQ8, 32);
  write_tensor(ss, b);
  const TensorInfo info = skip_tensor(ss);
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.dtype, DType::kQ8);
  EXPECT_EQ(info.block, 32);
  EXPECT_EQ(info.numel, 132);
  EXPECT_EQ(info.payload_bytes, dtype_stored_bytes(DType::kQ8, 132, 32));
  // The stream is positioned exactly after the first record.
  const Tensor back = read_tensor(ss);
  EXPECT_TRUE(same_floats(back, b));
}

TEST(DTypeSerializeTest, RejectsBadDtypeTagReservedByteAndBlock) {
  Rng rng(26);
  Tensor t = deco::testing::random_tensor({8}, rng);
  std::stringstream ss;
  write_tensor(ss, t, DType::kQ8, 8);
  const std::string good = ss.str();
  // Layout: magic[8] | u32 version | u8 dtype | u8 reserved | u16 block ...
  {
    std::string bad = good;
    bad[12] = 9;  // unknown dtype tag
    std::stringstream in(bad);
    EXPECT_THROW(read_tensor(in), Error);
  }
  {
    std::string bad = good;
    bad[13] = 1;  // reserved byte must be zero
    std::stringstream in(bad);
    EXPECT_THROW(read_tensor(in), Error);
  }
  {
    std::string bad = good;
    bad[14] = 0;  // kQ8 with block 0
    bad[15] = 0;
    std::stringstream in(bad);
    EXPECT_THROW(read_tensor(in), Error);
  }
  {
    std::string bad = good.substr(0, good.size() - 6);  // truncated payload
    std::stringstream in(bad);
    EXPECT_THROW(read_tensor(in), Error);
  }
}

TEST(DTypeSerializeTest, BitFlipFuzzOverV3RejectsOrLoadsIdentical) {
  Rng rng(27);
  Tensor t = deco::testing::random_tensor({3, 32}, rng);
  const QTensor q = QTensor::encode(t, DType::kQ8, 32);
  std::stringstream ss;
  write_qtensor(ss, q);
  const std::string good = ss.str();

  int rejected = 0, identical = 0;
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ (1 << (pos % 8)));
    std::stringstream in(bad);
    try {
      const QTensor r = read_qtensor(in);
      const bool same =
          r.dtype() == q.dtype() && r.block() == q.block() &&
          r.shape() == q.shape() && r.stored_bytes() == q.stored_bytes() &&
          std::memcmp(r.data(), q.data(),
                      static_cast<size_t>(q.stored_bytes())) == 0;
      ASSERT_TRUE(same) << "flip at byte " << pos
                        << " loaded a silently different tensor";
      ++identical;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  // Every byte of a v3 record is covered by the magic check, the header
  // validation or the CRC, so no flip may load a different tensor.
  EXPECT_EQ(rejected + identical, static_cast<int>(good.size()));
}

// ---- SyntheticBuffer quantized storage --------------------------------------

TEST(BufferStorageTest, CommitMaintainsMirrorInvariant) {
  condense::SyntheticBuffer buf(2, 2, 3, 8, 8);
  Rng rng(30);
  buf.init_random(rng);
  buf.set_storage(DType::kQ8, 32);
  buf.commit_storage();
  EXPECT_LT(buf.stored_bytes(), buf.logical_bytes());
  EXPECT_GE(static_cast<double>(buf.logical_bytes()) /
                static_cast<double>(buf.stored_bytes()),
            3.5);
  // The storage invariant: the fp32 working copy IS the decode of the
  // canonical stored bytes after every commit.
  EXPECT_TRUE(same_floats(buf.images(), buf.stored_images().decode()));
  // Re-committing the already-decoded values must be a fixed point on the
  // working copy's role as "what training actually sees".
  const QTensor before = buf.stored_images();
  buf.commit_storage();
  EXPECT_TRUE(same_floats(buf.images(), buf.stored_images().decode()));
  (void)before;
}

TEST(BufferStorageTest, Fp32PolicyLeavesImagesUntouched) {
  condense::SyntheticBuffer buf(2, 2, 3, 8, 8);
  Rng rng(31);
  buf.init_random(rng);
  const Tensor snapshot = buf.images();
  buf.commit_storage();  // default fp32: a no-op
  EXPECT_TRUE(same_floats(buf.images(), snapshot));
  EXPECT_EQ(buf.stored_bytes(), buf.logical_bytes());
}

TEST(BufferStorageTest, RestoreStoredRebuildsWorkingCopy) {
  condense::SyntheticBuffer buf(2, 2, 3, 8, 8);
  Rng rng(32);
  buf.init_random(rng);
  buf.set_storage(DType::kQ8, 32);
  buf.commit_storage();
  QTensor saved = buf.stored_images();
  const Tensor expect = buf.images();

  buf.init_random(rng);  // diverge the working copy
  buf.restore_stored(std::move(saved));
  EXPECT_TRUE(same_floats(buf.images(), expect));

  // Mismatched geometry or dtype must be rejected.
  condense::SyntheticBuffer other(2, 2, 3, 8, 8);
  other.init_random(rng);
  other.set_storage(DType::kQ8, 32);
  other.commit_storage();
  QTensor wrong_dtype = QTensor::encode(other.images(), DType::kF16);
  EXPECT_THROW(other.restore_stored(std::move(wrong_dtype)), Error);
}

// ---- ConfigMap / StoragePolicy surface --------------------------------------

TEST(StorageConfigTest, DtypeKeysRouteIntoPolicies) {
  runtime::ConfigMap cm = runtime::ConfigMap::from_kv_text(
      "deco.cache_dtype = int8\n"
      "deco.checkpoint_dtype = fp16\n"
      "deco.quant_block = 64\n"
      "runtime.checkpoint_dtype = fp16\n");
  core::DecoConfig dc;
  runtime::RuntimeConfig rc;
  cm.apply(dc);
  cm.apply(rc);
  cm.check_fully_consumed();
  EXPECT_EQ(dc.storage.cache_dtype, DType::kQ8);
  EXPECT_EQ(dc.storage.checkpoint_dtype, DType::kF16);
  EXPECT_EQ(dc.storage.block, 64);
  EXPECT_EQ(rc.checkpoint_dtype, DType::kF16);
}

TEST(StorageConfigTest, TyposAndBadValuesFailNamingTheKey) {
  {
    // The classic one-letter typo must not silently run the default.
    runtime::ConfigMap cm =
        runtime::ConfigMap::from_kv_text("deco.cache_dtyp = int8\n");
    core::DecoConfig dc;
    try {
      cm.apply(dc);
      FAIL() << "expected deco::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("deco.cache_dtyp"),
                std::string::npos);
    }
  }
  {
    // A key under no applied prefix is caught by check_fully_consumed.
    runtime::ConfigMap cm =
        runtime::ConfigMap::from_kv_text("decoo.cache_dtype = int8\n");
    core::DecoConfig dc;
    cm.apply(dc);
    EXPECT_THROW(cm.check_fully_consumed(), Error);
  }
  {
    runtime::ConfigMap cm =
        runtime::ConfigMap::from_kv_text("deco.cache_dtype = int7\n");
    core::DecoConfig dc;
    try {
      cm.apply(dc);
      FAIL() << "expected deco::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("deco.cache_dtype"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("int7"), std::string::npos);
    }
  }
  {
    runtime::ConfigMap cm =
        runtime::ConfigMap::from_kv_text("runtime.checkpoint_dtype = maybe\n");
    runtime::RuntimeConfig rc;
    EXPECT_THROW(cm.apply(rc), Error);
  }
}

TEST(StorageConfigTest, GetDtypeParsesAndFallsBack) {
  runtime::ConfigMap cm =
      runtime::ConfigMap::from_kv_text("some.dtype = fp16\n");
  EXPECT_EQ(cm.get_dtype("some.dtype", DType::kF32), DType::kF16);
  EXPECT_EQ(cm.get_dtype("absent", DType::kQ8), DType::kQ8);
  cm.check_fully_consumed();
}

TEST(StorageConfigTest, OutOfRangeBlockFailsAtValidate) {
  runtime::ConfigMap cm =
      runtime::ConfigMap::from_kv_text("deco.quant_block = 2\n");
  core::DecoConfig dc;
  cm.apply(dc);
  EXPECT_THROW(dc.validate(), Error) << "StoragePolicy::validate is the one "
                                        "range authority";
}

// ---- checkpoints ------------------------------------------------------------

nn::ConvNetConfig tiny_net() {
  nn::ConvNetConfig mc;
  mc.in_channels = 1;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.num_classes = 2;
  mc.width = 4;
  mc.depth = 1;
  return mc;
}

TEST(CheckpointDtypeTest, Fp32OverloadIsByteIdenticalToLegacy) {
  Rng rng(40);
  nn::ConvNet model(tiny_net(), rng);
  const std::string a = temp_path("ckpt_legacy.ckpt");
  const std::string b = temp_path("ckpt_fp32.ckpt");
  nn::save_checkpoint(a, model);
  nn::save_checkpoint(b, model, DType::kF32);
  EXPECT_EQ(file_bytes(a), file_bytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(CheckpointDtypeTest, QuantizedCheckpointShrinksAndLoads) {
  Rng rng(41);
  nn::ConvNet model(tiny_net(), rng);
  Tensor probe = deco::testing::random_tensor({2, 1, 8, 8}, rng);
  const Tensor before = model.forward(probe);

  const std::string f32 = temp_path("ckpt_f32.ckpt");
  const std::string f16 = temp_path("ckpt_f16.ckpt");
  nn::save_checkpoint(f32, model);
  nn::save_checkpoint(f16, model, DType::kF16);
  EXPECT_LT(file_bytes(f16).size(), file_bytes(f32).size());

  // Loading the fp16 checkpoint is lossy but close: outputs stay near the
  // fp32 model's.
  Rng rng2(99);
  nn::ConvNet other(tiny_net(), rng2);
  nn::load_checkpoint(f16, other);
  const Tensor after = other.forward(probe);
  ASSERT_EQ(after.numel(), before.numel());
  for (int64_t i = 0; i < after.numel(); ++i)
    EXPECT_NEAR(after.data()[i], before.data()[i], 0.05f);
  std::remove(f32.c_str());
  std::remove(f16.c_str());
}

// ---- DecoLearner end to end -------------------------------------------------

core::DecoConfig quant_config(DType cache_dtype) {
  core::DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 2;
  cfg.storage.cache_dtype = cache_dtype;
  return cfg;
}

nn::ConvNetConfig world_net(const data::DatasetSpec& spec) {
  nn::ConvNetConfig cfg;
  cfg.in_channels = spec.channels;
  cfg.image_h = spec.height;
  cfg.image_w = spec.width;
  cfg.num_classes = spec.num_classes;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

TEST(QuantizedLearnerTest, Int8CacheShrinksMemoryBytes) {
  data::ProceduralImageWorld world(data::icub1_spec(), 50);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  Rng mr(1);
  nn::ConvNet model_a(world_net(world.spec()), mr);
  Rng mr2(1);
  nn::ConvNet model_b(world_net(world.spec()), mr2);

  core::DecoLearner f32(model_a, quant_config(DType::kF32), 3);
  core::DecoLearner q8(model_b, quant_config(DType::kQ8), 3);
  f32.init_buffer_from(labeled);
  q8.init_buffer_from(labeled);

  EXPECT_EQ(f32.cache_stored_bytes(), f32.cache_logical_bytes());
  EXPECT_EQ(q8.cache_logical_bytes(), f32.cache_logical_bytes());
  EXPECT_GE(static_cast<double>(q8.cache_logical_bytes()) /
                static_cast<double>(q8.cache_stored_bytes()),
            3.5)
      << "int8 cache must hit the compression target";
  EXPECT_LT(q8.memory_bytes(), f32.memory_bytes())
      << "memory_bytes must report the cache as stored";
}

TEST(QuantizedLearnerTest, SaveLoadSaveIsByteIdentical) {
  data::ProceduralImageWorld world(data::icub1_spec(), 51);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  Rng mr(2);
  nn::ConvNet model(world_net(world.spec()), mr);
  core::DecoLearner learner(model, quant_config(DType::kQ8), 5);
  learner.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 12;
  sc.total_segments = 3;
  data::TemporalStream stream(world, sc, 9);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);

  const std::string a = temp_path("quant_a.state");
  const std::string b = temp_path("quant_b.state");
  learner.save_state(a);

  Rng mr2(3);
  nn::ConvNet model2(world_net(world.spec()), mr2);
  core::DecoLearner resumed(model2, quant_config(DType::kQ8), 5);
  resumed.init_buffer_from(labeled);
  resumed.load_state(a);
  resumed.save_state(b);
  // Quantization is NOT idempotent, so this byte identity only holds
  // because save/load persist the canonical stored bytes verbatim.
  EXPECT_EQ(file_bytes(a), file_bytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(QuantizedLearnerTest, KilledAndResumedInt8RunIsBitExact) {
  data::ProceduralImageWorld world(data::icub1_spec(), 52);
  data::Dataset labeled = world.make_labeled_set(3, 1);
  const Tensor probe = labeled.batch({0, 1, 2});
  const std::string path = temp_path("quant_resume.state");

  auto run = [&](int64_t kill_at) {
    auto make_model = [&] {
      Rng mr(42);
      return nn::ConvNet(world_net(world.spec()), mr);
    };
    nn::ConvNet model = make_model();
    auto learner = std::make_unique<core::DecoLearner>(
        model, quant_config(DType::kQ8), 7);
    learner->init_buffer_from(labeled);
    data::StreamConfig sc;
    sc.stc = 8;
    sc.segment_size = 12;
    sc.total_segments = 5;
    data::TemporalStream stream(world, sc, 9);
    data::Segment seg;
    int64_t seen = 0;
    nn::ConvNet resumed_model = make_model();
    while (stream.next(seg)) {
      if (kill_at > 0 && seen == kill_at) {
        learner->save_state(path);
        learner.reset();
        learner = std::make_unique<core::DecoLearner>(
            resumed_model, quant_config(DType::kQ8), 7);
        learner->init_buffer_from(labeled);
        learner->load_state(path);
      }
      learner->observe_segment(seg.images);
      ++seen;
    }
    std::pair<Tensor, Tensor> out{learner->model().forward(probe),
                                  learner->buffer().images()};
    return out;
  };

  const auto clean = run(0);
  const auto resumed = run(2);
  EXPECT_TRUE(same_floats(clean.second, resumed.second))
      << "resumed int8 buffer diverged: the mirror invariant is broken";
  EXPECT_TRUE(same_floats(clean.first, resumed.first))
      << "resumed int8 model diverged";
  std::remove(path.c_str());
}

TEST(QuantizedLearnerTest, LoadRejectsMismatchedCachePolicy) {
  data::ProceduralImageWorld world(data::icub1_spec(), 53);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  Rng mr(4);
  nn::ConvNet model(world_net(world.spec()), mr);
  core::DecoLearner q8(model, quant_config(DType::kQ8), 5);
  q8.init_buffer_from(labeled);
  const std::string path = temp_path("quant_policy.state");
  q8.save_state(path);

  Rng mr2(5);
  nn::ConvNet model2(world_net(world.spec()), mr2);
  core::DecoLearner f32(model2, quant_config(DType::kF32), 5);
  f32.init_buffer_from(labeled);
  try {
    f32.load_state(path);
    FAIL() << "expected deco::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cache_dtype"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(QuantizedLearnerTest, Int8PathIsThreadCountInvariant) {
  data::ProceduralImageWorld world(data::icub1_spec(), 54);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  const Tensor probe = labeled.batch({0, 1});

  auto run = [&] {
    Rng mr(6);
    nn::ConvNet model(world_net(world.spec()), mr);
    core::DecoLearner learner(model, quant_config(DType::kQ8), 11);
    learner.init_buffer_from(labeled);
    data::StreamConfig sc;
    sc.stc = 8;
    sc.segment_size = 12;
    sc.total_segments = 3;
    data::TemporalStream stream(world, sc, 9);
    data::Segment seg;
    while (stream.next(seg)) learner.observe_segment(seg.images);
    std::pair<Tensor, Tensor> out{learner.model().forward(probe),
                                  learner.buffer().images()};
    return out;
  };

  const int saved = core::num_threads();
  core::set_num_threads(1);
  const auto t1 = run();
  core::set_num_threads(2);
  const auto t2 = run();
  core::set_num_threads(4);
  const auto t4 = run();
  core::set_num_threads(saved);

  EXPECT_TRUE(same_floats(t1.second, t2.second));
  EXPECT_TRUE(same_floats(t1.second, t4.second));
  EXPECT_TRUE(same_floats(t1.first, t2.first));
  EXPECT_TRUE(same_floats(t1.first, t4.first));
}

// ---- quantized replay rows --------------------------------------------------

TEST(QuantizedReplayTest, RowsQuantizeAtTheDoor) {
  data::ProceduralImageWorld world(data::icub1_spec(), 55);
  data::Dataset labeled = world.make_labeled_set(2, 1);
  Rng mr(7);
  nn::ConvNet model(world_net(world.spec()), mr);

  baselines::BaselineConfig bc;
  bc.ipc = 2;
  bc.beta = 2;
  bc.model_update_epochs = 1;
  bc.storage.cache_dtype = DType::kQ8;
  baselines::BaselineLearner learner(model, baselines::Strategy::kFifo, bc,
                                     13);
  learner.init_buffer_from(labeled);
  EXPECT_GT(learner.cache_stored_bytes(), 0);
  EXPECT_GE(static_cast<double>(learner.cache_logical_bytes()) /
                static_cast<double>(learner.cache_stored_bytes()),
            3.5);

  // The learner still trains from (decoded) rows without surprises.
  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 12;
  sc.total_segments = 2;
  data::TemporalStream stream(world, sc, 9);
  data::Segment seg;
  while (stream.next(seg)) {
    const core::SegmentReport rep = learner.observe_segment(seg.images);
    EXPECT_EQ(rep.segment_skipped, 0);
  }
  Rng mr2(8);
  nn::ConvNet model2(world_net(world.spec()), mr2);
  baselines::BaselineConfig bf = bc;
  bf.storage.cache_dtype = DType::kF32;
  baselines::BaselineLearner f32(model2, baselines::Strategy::kFifo, bf, 13);
  f32.init_buffer_from(labeled);
  EXPECT_LT(learner.cache_stored_bytes(), f32.cache_stored_bytes() + 1);
  EXPECT_EQ(f32.cache_stored_bytes(), f32.cache_logical_bytes());
}

}  // namespace
}  // namespace deco
