// The determinism contract of core::ThreadPool, end to end: every parallel
// kernel, every condenser and a two-segment learner run must produce BITWISE
// identical results at DECO_NUM_THREADS ∈ {1, 2, 4, 8}. The sweep uses
// core::set_num_threads so one process covers all four widths (the env var
// only seeds the initial pool size). Comparisons are memcmp on raw float
// bytes — tolerance-based comparison would hide exactly the reassociation
// bugs this suite exists to catch.
#include "deco/core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include "deco/condense/method.h"
#include "deco/core/learner.h"
#include "deco/data/world.h"
#include "deco/nn/convnet.h"
#include "deco/nn/loss.h"
#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "test_util.h"

namespace deco {
namespace {

const std::vector<int> kSweep{1, 2, 4, 8};

std::vector<unsigned char> bytes_of(const Tensor& t) {
  const auto* p = reinterpret_cast<const unsigned char*>(t.data());
  return {p, p + t.numel() * sizeof(float)};
}

std::vector<unsigned char> bytes_of(const std::vector<float>& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  return {p, p + v.size() * sizeof(float)};
}

// Runs `scenario` once per thread count and asserts every run produces the
// byte-identical result. Restores the thread count afterwards.
void expect_bitwise_invariant(
    const std::function<std::vector<unsigned char>()>& scenario) {
  const int saved = core::num_threads();
  std::vector<unsigned char> reference;
  for (int t : kSweep) {
    core::set_num_threads(t);
    std::vector<unsigned char> got = scenario();
    if (t == kSweep.front()) {
      reference = std::move(got);
      ASSERT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(got.size(), reference.size()) << "at threads=" << t;
      EXPECT_EQ(std::memcmp(got.data(), reference.data(), got.size()), 0)
          << "bitwise mismatch vs threads=1 at threads=" << t;
    }
  }
  core::set_num_threads(saved);
}

// ---- pool mechanics ---------------------------------------------------------

TEST(ThreadPoolTest, SetNumThreadsRebuildsPool) {
  const int saved = core::num_threads();
  core::set_num_threads(3);
  EXPECT_EQ(core::num_threads(), 3);
  core::set_num_threads(1);
  EXPECT_EQ(core::num_threads(), 1);
  core::set_num_threads(saved);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  const int saved = core::num_threads();
  core::set_num_threads(4);
  const int64_t n = 10007;
  std::vector<int> hits(static_cast<size_t>(n), 0);
  core::parallel_for(0, n, 64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
  core::set_num_threads(saved);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  const int saved = core::num_threads();
  core::set_num_threads(4);
  std::atomic<int64_t> total{0};
  core::parallel_for(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      int64_t inner = 0;
      core::parallel_for(0, 100, 10, [&](int64_t ib, int64_t ie) {
        inner += ie - ib;  // safe: nested regions run inline on this thread
      });
      total.fetch_add(inner);
    }
  });
  EXPECT_EQ(total.load(), 8 * 100);
  core::set_num_threads(saved);
}

TEST(ThreadPoolTest, RapidJobBoundariesNeverRunStaleTasks) {
  // Regression test for a job-handoff race: a worker that woke for job N but
  // was preempted before claiming a chunk must not execute job N's (by then
  // destroyed) task against job N+1's chunk counter. Many back-to-back tiny
  // jobs maximize late wakeups; each task writes its own job id, so a stale
  // execution shows up as a wrong or missing value (and as a use-after-free
  // under TSan/ASan, since each std::function dies when its run returns).
  const int saved = core::num_threads();
  core::set_num_threads(4);
  for (int job = 0; job < 2000; ++job) {
    const int64_t chunks = 2 + job % 3;  // >1 so the pool path is taken
    std::vector<int> got(static_cast<size_t>(chunks), -1);
    core::run_chunks(chunks,
                     [&](int64_t c) { got[static_cast<size_t>(c)] = job; });
    for (int64_t c = 0; c < chunks; ++c)
      ASSERT_EQ(got[static_cast<size_t>(c)], job)
          << "chunk " << c << " of job " << job << " ran a stale task";
  }
  core::set_num_threads(saved);
}

TEST(ThreadPoolTest, SetNumThreadsInsidePoolTaskThrows) {
  // Rebuilding the pool from inside a task would destroy the very workers
  // executing it; the guard must fail loudly instead.
  const int saved = core::num_threads();
  core::set_num_threads(2);
  EXPECT_THROW(core::run_chunks(4, [](int64_t) { core::set_num_threads(1); }),
               Error);
  EXPECT_EQ(core::num_threads(), 2);  // pool unchanged and still usable
  std::atomic<int64_t> count{0};
  core::run_chunks(4, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
  core::set_num_threads(saved);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesToCaller) {
  const int saved = core::num_threads();
  core::set_num_threads(4);
  EXPECT_THROW(
      core::parallel_for(0, 100, 1,
                         [&](int64_t b, int64_t) {
                           if (b == 37) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int64_t> count{0};
  core::parallel_for(0, 16, 1,
                     [&](int64_t b, int64_t e) { count.fetch_add(e - b); });
  EXPECT_EQ(count.load(), 16);
  core::set_num_threads(saved);
}

TEST(ThreadPoolTest, ParallelReduceIsBitwiseStable) {
  // An ill-conditioned sum (alternating huge/tiny terms) whose value depends
  // on association order — exactly what the ordered merge must pin down.
  std::vector<double> terms(4099);
  Rng rng(5);
  for (size_t i = 0; i < terms.size(); ++i)
    terms[i] = (i % 2 == 0 ? 1e12 : 1e-9) * rng.uniform();
  expect_bitwise_invariant([&] {
    const double sum = core::parallel_reduce<double>(
        0, static_cast<int64_t>(terms.size()), 37, 0.0,
        [&](int64_t b, int64_t e) {
          double acc = 0.0;
          for (int64_t i = b; i < e; ++i)
            acc += terms[static_cast<size_t>(i)];
          return acc;
        },
        [](double a, double b) { return a + b; });
    const auto* p = reinterpret_cast<const unsigned char*>(&sum);
    return std::vector<unsigned char>(p, p + sizeof(sum));
  });
}

// ---- kernel-level sweeps ----------------------------------------------------

TEST(ParallelDeterminismTest, MatmulFamily) {
  // Odd sizes so chunk boundaries land mid-row and the k%4 remainder runs.
  Rng rng(11);
  Tensor a = testing::random_tensor({37, 23}, rng);
  Tensor b = testing::random_tensor({23, 41}, rng);
  Tensor bt = testing::random_tensor({41, 23}, rng);
  Tensor at = testing::random_tensor({23, 37}, rng);
  expect_bitwise_invariant([&] {
    Tensor mm, tn, nt;
    matmul_into(a, b, mm);
    matmul_tn_into(at, b, tn);
    matmul_nt_into(a, bt, nt);
    std::vector<unsigned char> out = bytes_of(mm);
    const auto btn = bytes_of(tn), bnt = bytes_of(nt);
    out.insert(out.end(), btn.begin(), btn.end());
    out.insert(out.end(), bnt.begin(), bnt.end());
    return out;
  });
}

TEST(ParallelDeterminismTest, SoftmaxFamily) {
  Rng rng(12);
  Tensor logits = testing::random_tensor({33, 17}, rng, 4.0);
  expect_bitwise_invariant([&] {
    Tensor sm, lsm;
    softmax_rows_into(logits, sm);
    log_softmax_rows_into(logits, lsm);
    std::vector<unsigned char> out = bytes_of(sm);
    const auto b2 = bytes_of(lsm);
    out.insert(out.end(), b2.begin(), b2.end());
    return out;
  });
}

TEST(ParallelDeterminismTest, ConvNetForwardBackward) {
  expect_bitwise_invariant([&] {
    Rng rng(13);
    nn::ConvNetConfig cfg;
    cfg.in_channels = 3;
    cfg.image_h = cfg.image_w = 16;
    cfg.num_classes = 4;
    cfg.width = 8;
    cfg.depth = 2;
    nn::ConvNet net(cfg, rng);
    Tensor x = testing::random_tensor({5, 3, 16, 16}, rng, 0.5);
    net.zero_grad();
    Tensor logits = net.forward(x);
    auto ce = nn::weighted_cross_entropy(logits, {0, 1, 2, 3, 0});
    Tensor gx = net.backward(ce.grad_logits);
    std::vector<unsigned char> out = bytes_of(logits);
    const auto bgx = bytes_of(gx);
    out.insert(out.end(), bgx.begin(), bgx.end());
    for (auto& p : net.parameters()) {
      const auto bg = bytes_of(*p.grad);
      out.insert(out.end(), bg.begin(), bg.end());
    }
    return out;
  });
}

// ---- condenser-level sweeps -------------------------------------------------

nn::ConvNetConfig small_config() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 4;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

struct CondenseFixture {
  CondenseFixture()
      : rng(1), model(small_config(), rng), buffer(4, 2, 3, 16, 16),
        world(make_spec(), 7) {
    data::Dataset labeled = world.make_labeled_set(3, 1);
    buffer.init_from_dataset(labeled, rng);
    x_real = Tensor({8, 3, 16, 16});
    for (int64_t i = 0; i < 8; ++i) {
      const int64_t cls = i < 4 ? 0 : 2;
      Tensor img = world.render(cls, 0, 0, 100 + i);
      std::copy(img.data(), img.data() + img.numel(),
                x_real.data() + i * img.numel());
      y_real.push_back(cls);
      w_real.push_back(0.9f);
    }
    active = {0, 2};
  }

  static data::DatasetSpec make_spec() {
    data::DatasetSpec s = data::icub1_spec();
    s.num_classes = 4;
    return s;
  }

  condense::CondenseContext context() {
    condense::CondenseContext ctx;
    ctx.buffer = &buffer;
    ctx.x_real = &x_real;
    ctx.y_real = &y_real;
    ctx.w_real = &w_real;
    ctx.active_classes = &active;
    ctx.deployed_model = &model;
    ctx.rng = &rng;
    return ctx;
  }

  Rng rng;
  nn::ConvNet model;
  condense::SyntheticBuffer buffer;
  data::ProceduralImageWorld world;
  Tensor x_real;
  std::vector<int64_t> y_real;
  std::vector<float> w_real;
  std::vector<int64_t> active;
};

TEST(ParallelDeterminismTest, DecoCondenser) {
  expect_bitwise_invariant([&] {
    CondenseFixture f;
    condense::DecoCondenserConfig cfg;
    cfg.iterations = 3;
    condense::DecoCondenser cond(small_config(), cfg, 11);
    auto ctx = f.context();
    cond.condense(ctx);
    std::vector<unsigned char> out = bytes_of(f.buffer.images());
    const auto bd = bytes_of(cond.last_distances());
    out.insert(out.end(), bd.begin(), bd.end());
    return out;
  });
}

TEST(ParallelDeterminismTest, BilevelCondenserDcAndDsa) {
  for (const char* strategy : {"", "flip_shift_scale_rotate_color_cutout"}) {
    expect_bitwise_invariant([&] {
      CondenseFixture f;
      condense::BilevelConfig cfg;
      cfg.outer_loops = 1;
      cfg.inner_epochs = 2;
      cfg.model_steps = 1;
      cfg.dsa_strategy = strategy;
      condense::BilevelCondenser cond(small_config(), cfg, 16);
      auto ctx = f.context();
      cond.condense(ctx);
      return bytes_of(f.buffer.images());
    });
  }
}

TEST(ParallelDeterminismTest, DmCondenser) {
  expect_bitwise_invariant([&] {
    CondenseFixture f;
    condense::DmConfig cfg;
    cfg.iterations = 2;
    condense::DmCondenser cond(small_config(), cfg, 18);
    auto ctx = f.context();
    cond.condense(ctx);
    return bytes_of(f.buffer.images());
  });
}

// ---- learner-level sweep ----------------------------------------------------

TEST(ParallelDeterminismTest, LearnerTwoSegmentsAndCheckpoint) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "deco_parallel_determinism_ckpt.bin";
  expect_bitwise_invariant([&] {
    Rng rng(21);
    nn::ConvNet model(small_config(), rng);
    data::ProceduralImageWorld world(CondenseFixture::make_spec(), 7);
    data::Dataset labeled = world.make_labeled_set(3, 1);

    core::DecoConfig cfg;
    cfg.ipc = 2;
    cfg.beta = 2;  // second segment triggers a model update too
    cfg.model_update_epochs = 2;
    cfg.condenser.iterations = 2;
    core::DecoLearner learner(model, cfg, 31);
    learner.init_buffer_from(labeled);

    std::vector<unsigned char> out;
    for (int64_t seg = 0; seg < 2; ++seg) {
      Tensor images({6, 3, 16, 16});
      for (int64_t i = 0; i < 6; ++i) {
        Tensor img = world.render((seg + i) % 4, 0, 0, 300 + seg * 16 + i);
        std::copy(img.data(), img.data() + img.numel(),
                  images.data() + i * img.numel());
      }
      core::SegmentReport rep = learner.observe_segment(images);
      const auto* pd = reinterpret_cast<const unsigned char*>(
          &rep.condense_distance);
      out.insert(out.end(), pd, pd + sizeof(rep.condense_distance));
      for (int64_t l : rep.pseudo_labels)
        out.push_back(static_cast<unsigned char>(l & 0xff));
      const auto bc = bytes_of(rep.confidences);
      out.insert(out.end(), bc.begin(), bc.end());
    }

    // The checkpoint file covers model params, buffer, velocity and rng
    // state in one blob — a byte-identical file is the strongest equality.
    learner.save_state(path.string());
    std::ifstream in(path, std::ios::binary);
    std::vector<unsigned char> file((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    out.insert(out.end(), file.begin(), file.end());
    fs::remove(path);
    return out;
  });
}

}  // namespace
}  // namespace deco
