#include "deco/data/world.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::data {
namespace {

TEST(WorldTest, SpecPresetsMatchPaperStructure) {
  EXPECT_EQ(icub1_spec().num_classes, 10);
  EXPECT_EQ(icub1_spec().instances_per_class, 4);
  EXPECT_EQ(core50_spec().num_classes, 10);
  EXPECT_EQ(core50_spec().environments, 11);  // CORe50's 11 sessions
  EXPECT_EQ(core50_spec().instances_per_class, 5);
  EXPECT_GT(cifar100_spec().num_classes, 10);  // many-class regime
  EXPECT_EQ(imagenet10_spec().height, 32);     // higher resolution
  EXPECT_EQ(cifar10_spec().num_classes, 10);
}

TEST(WorldTest, RenderingIsDeterministic) {
  ProceduralImageWorld w(core50_spec(), 42);
  Tensor a = w.render(3, 1, 2, 7);
  Tensor b = w.render(3, 1, 2, 7);
  EXPECT_EQ(a.l1_distance(b), 0.0f);
}

TEST(WorldTest, DifferentSeedsDifferentWorlds) {
  ProceduralImageWorld w1(core50_spec(), 1);
  ProceduralImageWorld w2(core50_spec(), 2);
  EXPECT_GT(w1.render(0, 0, 0, 0).l1_distance(w2.render(0, 0, 0, 0)), 1.0f);
}

TEST(WorldTest, PixelsInUnitRange) {
  ProceduralImageWorld w(icub1_spec(), 3);
  for (int64_t cls = 0; cls < 10; ++cls) {
    Tensor img = w.render(cls, 0, 0, 0);
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LE(img.max(), 1.0f);
  }
}

TEST(WorldTest, ImageShapeMatchesSpec) {
  ProceduralImageWorld w(imagenet10_spec(), 4);
  Tensor img = w.render(0, 0, 0, 0);
  EXPECT_EQ(img.shape(), (std::vector<int64_t>{3, 32, 32}));
}

TEST(WorldTest, ConsecutiveFramesAreSimilar) {
  // Temporal smoothness: adjacent frames of one instance must be much closer
  // than frames of different classes.
  ProceduralImageWorld w(core50_spec(), 5);
  const Tensor f0 = w.render(2, 1, 0, 10);
  const Tensor f1 = w.render(2, 1, 0, 11);
  const Tensor other = w.render(7, 1, 0, 10);
  EXPECT_LT(f0.l1_distance(f1), 0.5f * f0.l1_distance(other));
}

TEST(WorldTest, SameClassInstancesCloserThanCrossClassOnAverage) {
  ProceduralImageWorld w(core50_spec(), 6);
  double within = 0.0, across = 0.0;
  int n = 0;
  for (int64_t cls = 0; cls < 4; ++cls) {
    Tensor a = w.render(cls, 0, 0, 0);
    Tensor b = w.render(cls, 1, 0, 0);
    Tensor c = w.render((cls + 5) % 10, 0, 0, 0);
    within += a.l1_distance(b);
    across += a.l1_distance(c);
    ++n;
  }
  EXPECT_LT(within / n, across / n);
}

TEST(WorldTest, SimilarityGroupsAreMoreConfusable) {
  // Classes 2g and 2g+1 share a shape family; they should be closer to each
  // other than to a class from another group, averaged over several groups.
  DatasetSpec spec = cifar10_spec();
  ProceduralImageWorld w(spec, 7);
  double in_group = 0.0, out_group = 0.0;
  int n = 0;
  for (int64_t g = 0; g < 5; ++g) {
    const int64_t a = 2 * g, b = 2 * g + 1, c = (2 * g + 2) % 10;
    Tensor ia = w.render(a, 0, 0, 0);
    in_group += ia.l1_distance(w.render(b, 0, 0, 0));
    out_group += ia.l1_distance(w.render(c, 0, 0, 0));
    ++n;
  }
  EXPECT_LT(in_group / n, out_group / n);
}

TEST(WorldTest, EnvironmentsChangeAppearance) {
  ProceduralImageWorld w(core50_spec(), 8);
  Tensor e0 = w.render(0, 0, 0, 0);
  Tensor e1 = w.render(0, 0, 5, 0);
  EXPECT_GT(e0.l1_distance(e1), 1.0f);
}

TEST(WorldTest, LabeledSetHasBalancedClasses) {
  ProceduralImageWorld w(icub1_spec(), 9);
  Dataset ds = w.make_labeled_set(6, 1);
  EXPECT_EQ(ds.size(), 60);
  for (int64_t cls = 0; cls < 10; ++cls)
    EXPECT_EQ(static_cast<int64_t>(ds.indices_of_class(cls).size()), 6);
}

TEST(WorldTest, TestSetDisjointSeedsProduceDifferentImages) {
  ProceduralImageWorld w(icub1_spec(), 10);
  Dataset a = w.make_test_set(2, 1);
  Dataset b = w.make_test_set(2, 2);
  EXPECT_GT(a.image(0).l1_distance(b.image(0)), 1e-3f);
}

TEST(WorldTest, RejectsOutOfRangeEntities) {
  ProceduralImageWorld w(icub1_spec(), 11);
  EXPECT_THROW(w.render(10, 0, 0, 0), Error);
  EXPECT_THROW(w.render(0, 99, 0, 0), Error);
  EXPECT_THROW(w.render(0, 0, 99, 0), Error);
}

TEST(DatasetTest, AddAndBatch) {
  Dataset ds(3, 4, 4);
  Rng rng(1);
  for (int i = 0; i < 5; ++i)
    ds.add(deco::testing::random_tensor({3, 4, 4}, rng), i % 2, i, 0);
  EXPECT_EQ(ds.size(), 5);
  Tensor b = ds.batch({0, 2, 4});
  EXPECT_EQ(b.shape(), (std::vector<int64_t>{3, 3, 4, 4}));
  auto labels = ds.batch_labels({1, 3});
  EXPECT_EQ(labels, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(ds.indices_of_class(0), (std::vector<int64_t>{0, 2, 4}));
}

TEST(DatasetTest, RejectsWrongImageShape) {
  Dataset ds(3, 4, 4);
  EXPECT_THROW(ds.add(Tensor({3, 5, 5}), 0), Error);
}

}  // namespace
}  // namespace deco::data
