// Telemetry must be observationally inert: a DecoLearner run with recording
// enabled must produce BYTE-identical model weights and condensed buffer to
// the same run with recording disabled, at every thread count. This is the
// proof behind the header's "telemetry never perturbs the numerics it
// observes" claim — instrumentation only reads clocks and bumps integers, so
// tensor contents, rng streams and chunk boundaries cannot depend on it.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "deco/core/learner.h"
#include "deco/core/telemetry.h"
#include "deco/core/thread_pool.h"
#include "deco/data/world.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/ops.h"

namespace deco {
namespace {

namespace telem = core::telemetry;

std::vector<unsigned char> append_bytes(std::vector<unsigned char> acc,
                                        const Tensor& t) {
  const auto* p = reinterpret_cast<const unsigned char*>(t.data());
  acc.insert(acc.end(), p, p + t.numel() * sizeof(float));
  return acc;
}

// One short streaming run: 4 segments over a 4-class procedural world with a
// model update mid-run. Returns every byte the run produced: model weights
// plus the condensed buffer images.
std::vector<unsigned char> run_learner(bool telemetry_on) {
  telem::set_enabled(telemetry_on);

  data::DatasetSpec spec = data::icub1_spec();
  spec.num_classes = 4;
  data::ProceduralImageWorld world(spec, 11);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  Rng rng(77);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 4;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, rng);

  core::DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 2;
  core::DecoLearner learner(model, cfg, 99);
  learner.init_buffer_from(labeled);

  for (int seg = 0; seg < 4; ++seg) {
    Tensor images({5, 3, 16, 16});
    for (int64_t i = 0; i < 5; ++i) {
      Tensor img = world.render((seg + i) % 4, 0, 0, 100 + seg * 16 + i);
      std::copy(img.data(), img.data() + img.numel(),
                images.data() + i * img.numel());
    }
    learner.observe_segment(images);
  }

  telem::set_enabled(true);

  std::vector<unsigned char> out;
  for (const nn::ParamRef& p : model.parameters())
    out = append_bytes(std::move(out), *p.value);
  out = append_bytes(std::move(out), learner.buffer().images());
  return out;
}

TEST(TelemetryDeterminism, OnVsOffByteIdenticalAcrossThreadCounts) {
  const int saved = core::num_threads();
  std::vector<unsigned char> reference;
  for (int threads : {1, 2, 4}) {
    core::set_num_threads(threads);
    for (bool on : {true, false}) {
      std::vector<unsigned char> got = run_learner(on);
      if (reference.empty()) {
        reference = std::move(got);
        ASSERT_FALSE(reference.empty());
        continue;
      }
      ASSERT_EQ(got.size(), reference.size())
          << "threads=" << threads << " telemetry=" << (on ? "on" : "off");
      EXPECT_EQ(std::memcmp(got.data(), reference.data(), got.size()), 0)
          << "telemetry perturbed the run at threads=" << threads
          << " telemetry=" << (on ? "on" : "off");
    }
  }
  core::set_num_threads(saved);
}

TEST(TelemetryDeterminism, InstrumentationActuallyRecordedWhenOn) {
  // Guards the test above against vacuous success: the telemetry-on run must
  // actually have traversed the instrumented sites.
#if !DECO_TELEMETRY_COMPILED
  GTEST_SKIP() << "telemetry compiled out (-DDECO_TELEMETRY=OFF)";
#endif
  telem::set_enabled(true);
  telem::reset();
  run_learner(true);
  const telem::Snapshot snap = telem::snapshot();
  EXPECT_EQ(snap.counter_value("learner/segments"), 4);
  EXPECT_GT(snap.counter_value("gemm/flops"), 0);
  EXPECT_GT(snap.counter_value("condense/iterations"), 0);
  const telem::SpanAggregate* seg = snap.span("learner/segment");
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->count, 4);
  const telem::SpanAggregate* upd = snap.span("learner/model_update");
  ASSERT_NE(upd, nullptr);
  EXPECT_EQ(upd->count, 2);  // beta=2 over 4 segments

  // And the off run must record nothing.
  telem::reset();
  run_learner(false);
  const telem::Snapshot off = telem::snapshot();
  EXPECT_EQ(off.counter_value("learner/segments"), 0);
  const telem::SpanAggregate* seg_off = off.span("learner/segment");
  ASSERT_NE(seg_off, nullptr);
  EXPECT_EQ(seg_off->count, 0);
}

}  // namespace
}  // namespace deco
