#include "deco/nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deco/tensor/check.h"
#include "deco/tensor/ops.h"
#include "test_util.h"

namespace deco::nn {
namespace {

using deco::testing::numeric_gradient;
using deco::testing::random_tensor;
using deco::testing::relative_error;

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});
  auto res = weighted_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, {100.0f, 0.0f, 0.0f});
  auto res = weighted_cross_entropy(logits, {0});
  EXPECT_LT(res.loss, 1e-4f);
}

TEST(CrossEntropyTest, GradientRowsSumToZero) {
  Rng rng(1);
  Tensor logits = random_tensor({3, 5}, rng, 2.0);
  auto res = weighted_cross_entropy(logits, {1, 0, 4}, {0.5f, 1.0f, 2.0f});
  for (int64_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 5; ++j) s += res.grad_logits.at2(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, GradCheck) {
  Rng rng(2);
  Tensor logits = random_tensor({4, 6}, rng, 2.0);
  const std::vector<int64_t> labels{0, 5, 2, 2};
  const std::vector<float> weights{1.0f, 0.3f, 2.0f, 0.0f};
  auto res = weighted_cross_entropy(logits, labels, weights);
  auto loss = [&](const Tensor& probe) {
    return weighted_cross_entropy(probe, labels, weights).loss;
  };
  Tensor numeric = numeric_gradient(loss, logits, 1e-3f);
  EXPECT_LT(relative_error(res.grad_logits, numeric), 1e-2f);
}

TEST(CrossEntropyTest, WeightsScaleContribution) {
  Tensor logits({2, 3}, {1, 2, 3, 3, 2, 1});
  auto w0 = weighted_cross_entropy(logits, {0, 0}, {0.0f, 0.0f});
  EXPECT_NEAR(w0.loss, 0.0f, 1e-7f);
  EXPECT_NEAR(w0.grad_logits.norm(), 0.0f, 1e-7f);
  auto w2 = weighted_cross_entropy(logits, {0, 0}, {2.0f, 2.0f});
  auto w1 = weighted_cross_entropy(logits, {0, 0});
  EXPECT_NEAR(w2.loss, 2.0f * w1.loss, 1e-5f);
}

TEST(CrossEntropyTest, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW(weighted_cross_entropy(logits, {3}), Error);
  EXPECT_THROW(weighted_cross_entropy(logits, {-1}), Error);
  EXPECT_THROW(weighted_cross_entropy(logits, {0, 1}), Error);
}

// ---- feature discrimination (Eq. 8) ------------------------------------------

TEST(FeatureDiscriminationTest, LossIsFiniteAndGradShaped) {
  Rng rng(3);
  Tensor emb = random_tensor({6, 8}, rng);
  const std::vector<int64_t> labels{0, 0, 1, 1, 2, 2};
  const std::vector<int64_t> anchors{0, 2};
  const std::vector<int64_t> negs{1, 2};
  auto res = feature_discrimination_loss(emb, labels, anchors, negs, 0.07f);
  EXPECT_TRUE(std::isfinite(res.loss));
  EXPECT_EQ(res.grad_embeddings.shape(), emb.shape());
}

TEST(FeatureDiscriminationTest, GradCheck) {
  Rng rng(4);
  Tensor emb = random_tensor({6, 5}, rng);
  const std::vector<int64_t> labels{0, 0, 0, 1, 1, 2};
  const std::vector<int64_t> anchors{0, 1, 3};
  const std::vector<int64_t> negs{1, 2, 0};
  const float tau = 0.2f;
  auto res = feature_discrimination_loss(emb, labels, anchors, negs, tau);
  auto loss = [&](const Tensor& probe) {
    return feature_discrimination_loss(probe, labels, anchors, negs, tau).loss;
  };
  Tensor numeric = numeric_gradient(loss, emb, 1e-3f);
  EXPECT_LT(relative_error(res.grad_embeddings, numeric), 2e-2f);
}

TEST(FeatureDiscriminationTest, PullsPositivesPushesNegatives) {
  // Three points: anchor and positive nearly aligned, negative opposed.
  // Loss should be lower than the mirrored configuration where the positive
  // is opposed and the negative aligned.
  Tensor good({3, 2}, {1, 0, 0.9f, 0.1f, -1, 0});
  Tensor bad({3, 2}, {1, 0, -1, 0, 0.9f, 0.1f});
  const std::vector<int64_t> labels{0, 0, 1};
  const std::vector<int64_t> anchors{0};
  const std::vector<int64_t> negs{1};
  auto g = feature_discrimination_loss(good, labels, anchors, negs, 0.5f);
  auto b = feature_discrimination_loss(bad, labels, anchors, negs, 0.5f);
  EXPECT_LT(g.loss, b.loss);
}

TEST(FeatureDiscriminationTest, NoPositivesMeansZeroLoss) {
  Rng rng(5);
  Tensor emb = random_tensor({3, 4}, rng);
  // Anchor's class has only the anchor itself: P(i) empty → anchor skipped.
  const std::vector<int64_t> labels{0, 1, 1};
  auto res = feature_discrimination_loss(emb, labels, {0}, {1}, 0.07f);
  EXPECT_EQ(res.loss, 0.0f);
  EXPECT_NEAR(res.grad_embeddings.norm(), 0.0f, 1e-7f);
}

TEST(FeatureDiscriminationTest, ScaleInvarianceViaNormalization) {
  // Internal L2 normalization: scaling all embeddings must not change loss.
  Rng rng(6);
  Tensor emb = random_tensor({4, 5}, rng);
  const std::vector<int64_t> labels{0, 0, 1, 1};
  auto a = feature_discrimination_loss(emb, labels, {0}, {1}, 0.07f);
  Tensor scaled = emb * 10.0f;
  auto b = feature_discrimination_loss(scaled, labels, {0}, {1}, 0.07f);
  EXPECT_NEAR(a.loss, b.loss, 1e-4f);
}

TEST(FeatureDiscriminationTest, RejectsNegativeEqualToAnchorClass) {
  Tensor emb({2, 2});
  EXPECT_THROW(
      feature_discrimination_loss(emb, {0, 0}, {0}, {0}, 0.07f), Error);
}

// ---- MSE ----------------------------------------------------------------------

TEST(MseTest, ValueAndGradient) {
  Tensor pred({2}, {1, 3});
  Tensor target({2}, {0, 1});
  auto res = mse_loss(pred, target);
  EXPECT_FLOAT_EQ(res.loss, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(res.grad_pred[0], 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(res.grad_pred[1], 2.0f * 2.0f / 2.0f);
}

TEST(MseTest, ZeroAtTarget) {
  Rng rng(7);
  Tensor t = random_tensor({5}, rng);
  auto res = mse_loss(t, t);
  EXPECT_EQ(res.loss, 0.0f);
  EXPECT_EQ(res.grad_pred.norm(), 0.0f);
}

}  // namespace
}  // namespace deco::nn
