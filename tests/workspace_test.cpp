// core::Workspace (scoped scratch arena) and detail::FloatStore (pooled
// tensor storage): buffer reuse across scopes, LIFO nesting, high-water
// accounting, thread safety under parallel_for, and the hot-path allocation
// counters the perf-smoke gate relies on.
#include "deco/core/workspace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "deco/core/thread_pool.h"
#include "deco/tensor/buffer_pool.h"
#include "deco/tensor/tensor.h"

namespace deco {
namespace {

TEST(WorkspaceTest, ScopeExitReleasesAndReusesMemory) {
  core::Workspace ws;  // private arena: stats start at zero
  float* first = nullptr;
  {
    core::Workspace::Scope scope(ws);
    first = scope.alloc_floats(1000);
    ASSERT_NE(first, nullptr);
    first[0] = 1.0f;
    first[999] = 2.0f;
  }
  const int64_t reserved = ws.bytes_reserved();
  EXPECT_GT(reserved, 0);
  EXPECT_EQ(ws.bytes_in_use(), 0);
  {
    core::Workspace::Scope scope(ws);
    float* second = scope.alloc_floats(1000);
    EXPECT_EQ(second, first) << "same-size scope must reuse the same block";
  }
  EXPECT_EQ(ws.bytes_reserved(), reserved) << "no growth on reuse";
}

TEST(WorkspaceTest, AllocationsAreCacheLineAligned) {
  core::Workspace ws;
  core::Workspace::Scope scope(ws);
  for (int64_t n : {1, 7, 64, 1000}) {
    float* p = scope.alloc_floats(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << "n=" << n;
  }
}

TEST(WorkspaceTest, NestedScopesReleaseInLifoOrder) {
  core::Workspace ws;
  core::Workspace::Scope outer(ws);
  float* a = outer.alloc_floats(64);
  const int64_t outer_in_use = ws.bytes_in_use();
  float* b1 = nullptr;
  {
    core::Workspace::Scope inner(ws);
    b1 = inner.alloc_floats(128);
    EXPECT_GT(ws.bytes_in_use(), outer_in_use);
  }
  EXPECT_EQ(ws.bytes_in_use(), outer_in_use) << "inner scope fully released";
  {
    core::Workspace::Scope inner(ws);
    float* b2 = inner.alloc_floats(128);
    EXPECT_EQ(b2, b1) << "inner scope reuses the released region";
  }
  // The outer allocation survived the inner scopes.
  a[0] = 3.0f;
  EXPECT_EQ(a[0], 3.0f);
}

TEST(WorkspaceTest, HighWaterTracksPeakNotCurrent) {
  core::Workspace ws;
  {
    core::Workspace::Scope scope(ws);
    scope.alloc_floats(256);  // 1 KiB, already 64-byte aligned
    scope.alloc_floats(256);
  }
  EXPECT_EQ(ws.bytes_in_use(), 0);
  EXPECT_EQ(ws.high_water_bytes(), 2 * 256 * static_cast<int64_t>(sizeof(float)));
  {
    core::Workspace::Scope scope(ws);
    scope.alloc_floats(64);
  }
  EXPECT_EQ(ws.high_water_bytes(), 2 * 256 * static_cast<int64_t>(sizeof(float)))
      << "a smaller later peak must not lower the high-water mark";
}

TEST(WorkspaceTest, BlocksGrowWithoutInvalidatingEarlierPointers) {
  core::Workspace ws;
  core::Workspace::Scope scope(ws);
  // First allocation fills most of the initial block; the second forces a
  // new block. The first pointer must stay valid and hold its data.
  float* a = scope.alloc_floats(60000);
  a[0] = 42.0f;
  float* b = scope.alloc_floats(1 << 20);
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 42.0f);
  EXPECT_GE(ws.bytes_reserved(),
            (60000 + (1 << 20)) * static_cast<int64_t>(sizeof(float)));
}

TEST(WorkspaceTest, ThreadSafeUnderParallelFor) {
  const int saved = core::num_threads();
  core::set_num_threads(4);
  std::vector<int64_t> sums(64, -1);
  core::parallel_for(0, 64, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Each chunk scribbles a distinct pattern through its thread's arena;
      // a shared or clobbered buffer would corrupt the readback.
      core::Workspace::Scope scope;  // Workspace::tls() of the running thread
      const int64_t n = 512 + i;
      float* p = scope.alloc_floats(n);
      for (int64_t j = 0; j < n; ++j) p[j] = static_cast<float>(i);
      int64_t sum = 0;
      for (int64_t j = 0; j < n; ++j) sum += static_cast<int64_t>(p[j]);
      sums[static_cast<size_t>(i)] = sum;
    }
  });
  for (int64_t i = 0; i < 64; ++i)
    EXPECT_EQ(sums[static_cast<size_t>(i)], (512 + i) * i) << "chunk " << i;
  const core::WorkspaceStats agg = core::Workspace::aggregate();
  EXPECT_GE(agg.arenas, 1);
  EXPECT_GT(agg.bytes_reserved, 0);
  core::set_num_threads(saved);
}

TEST(BufferPoolTest, TensorStorageIsRecycled) {
  // Drain pending buffers so this test observes its own traffic only.
  detail::trim_tensor_pool();
  const auto before = core::memstats();
  { Tensor t({64, 64}); }  // miss: first buffer of this bucket since trim
  const auto after_first = core::memstats();
  EXPECT_EQ(after_first.tensor_heap_allocs, before.tensor_heap_allocs + 1);
  { Tensor t({64, 64}); }  // hit: same bucket, served from the pool
  const auto after_second = core::memstats();
  EXPECT_EQ(after_second.tensor_heap_allocs, after_first.tensor_heap_allocs);
  EXPECT_EQ(after_second.tensor_pool_hits, after_first.tensor_pool_hits + 1);
}

TEST(BufferPoolTest, RecycledTensorsAreZeroInitialized) {
  detail::trim_tensor_pool();
  {
    Tensor t({32, 32});
    t.fill(5.0f);
  }
  Tensor t({32, 32});  // recycled buffer must still read as zeros
  for (int64_t i = 0; i < t.numel(); ++i) ASSERT_EQ(t[i], 0.0f) << "i=" << i;
}

TEST(BufferPoolTest, CopyAssignReusesCapacity) {
  Tensor dst({100, 100});
  Tensor src({100, 100});
  src.fill(2.0f);
  const auto before = core::memstats();
  dst = src;  // same bucket: must not touch the heap or the pool
  const auto after = core::memstats();
  EXPECT_EQ(after.tensor_heap_allocs, before.tensor_heap_allocs);
  EXPECT_EQ(after.tensor_pool_hits, before.tensor_pool_hits);
  EXPECT_EQ(dst[0], 2.0f);
  EXPECT_EQ(dst[100 * 100 - 1], 2.0f);
}

TEST(BufferPoolTest, TrimReleasesCachedBytes) {
  { Tensor t({128, 128}); }
  EXPECT_GT(detail::tensor_pool_cached_bytes(), 0);
  detail::trim_tensor_pool();
  EXPECT_EQ(detail::tensor_pool_cached_bytes(), 0);
}

}  // namespace
}  // namespace deco
