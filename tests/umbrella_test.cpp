// Smoke test of the umbrella header: everything compiles from one include and
// the primary types are usable together. Also the home of a few cross-module
// integration checks that don't belong to any single module's test file.
#include "deco/deco.h"

#include <gtest/gtest.h>

namespace deco {
namespace {

TEST(UmbrellaTest, PrimaryTypesInstantiate) {
  Rng rng(1);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, rng);
  condense::SyntheticBuffer buffer(10, 1, 3, 16, 16);
  data::ProceduralImageWorld world(data::icub1_spec(), 2);
  augment::SiameseAugment aug("flip");
  eval::RunningStats stats;
  stats.add(1.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_EQ(buffer.size(), 10);
  EXPECT_GT(model.num_params(), 0);
}

TEST(UmbrellaTest, CheckpointRoundTripThroughStreamedLearner) {
  // Cross-module integration: stream a little, checkpoint model AND buffer,
  // reload both into fresh objects, and verify identical predictions —
  // the power-cycle scenario of a deployed device.
  Rng rng(3);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, rng);
  data::ProceduralImageWorld world(data::core50_spec(), 4);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  core::DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 1;
  core::DecoLearner learner(model, cfg, 5);
  learner.init_buffer_from(labeled);

  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 8;
  sc.total_segments = 2;
  data::TemporalStream stream(world, sc, 6);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);

  const std::string model_path = ::testing::TempDir() + "/power_cycle.ckpt";
  const std::string buffer_path = ::testing::TempDir() + "/buffer.tensor";
  nn::save_checkpoint(model_path, model);
  save_tensor(buffer_path, learner.buffer().images());

  // "Reboot": fresh model + buffer restored from flash.
  Rng rng2(99);
  nn::ConvNet revived(mc, rng2);
  nn::load_checkpoint(model_path, revived);
  Tensor buffer_images = load_tensor(buffer_path);

  data::Dataset test = world.make_test_set(5, 7);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < test.size(); ++i) idx.push_back(i);
  Tensor a = model.forward(test.batch(idx));
  Tensor b = revived.forward(test.batch(idx));
  EXPECT_LT(a.l1_distance(b), 1e-5f);
  EXPECT_EQ(buffer_images.l1_distance(learner.buffer().images()), 0.0f);

  std::remove(model_path.c_str());
  std::remove(buffer_path.c_str());
}

TEST(UmbrellaTest, ForgettingTrackerOverAStream) {
  // The forgetting metric consumes per-class accuracy snapshots from a
  // streamed learner; verify the plumbing end to end (values are world-
  // dependent, the contract is shape + boundedness).
  Rng rng(8);
  nn::ConvNetConfig mc;
  mc.in_channels = 3;
  mc.image_h = mc.image_w = 16;
  mc.num_classes = 10;
  mc.width = 8;
  mc.depth = 2;
  nn::ConvNet model(mc, rng);
  data::ProceduralImageWorld world(data::core50_spec(), 9);
  data::Dataset labeled = world.make_labeled_set(4, 1);
  data::Dataset test = world.make_test_set(6, 2);

  std::vector<int64_t> all(static_cast<size_t>(labeled.size()));
  for (int64_t i = 0; i < labeled.size(); ++i) all[static_cast<size_t>(i)] = i;
  core::train_classifier(model, labeled.batch(all), labeled.labels(), 10,
                         1e-3f, 5e-4f, 32, rng);

  core::DecoConfig cfg;
  cfg.ipc = 1;
  cfg.beta = 1;
  cfg.model_update_epochs = 2;
  cfg.condenser.iterations = 1;
  core::DecoLearner learner(model, cfg, 10);
  learner.init_buffer_from(labeled);

  eval::ForgettingTracker tracker;
  tracker.record(eval::per_class_accuracy(model, test));

  data::StreamConfig sc;
  sc.stc = 8;
  sc.segment_size = 8;
  sc.total_segments = 3;
  data::TemporalStream stream(world, sc, 11);
  data::Segment seg;
  while (stream.next(seg)) {
    learner.observe_segment(seg.images);
    tracker.record(eval::per_class_accuracy(model, test));
  }
  EXPECT_EQ(tracker.snapshots(), 4);
  const float f = tracker.mean_forgetting();
  EXPECT_GE(f, 0.0f);
  EXPECT_LE(f, 100.0f);
  EXPECT_EQ(tracker.per_class_forgetting().size(), 10u);
}

}  // namespace
}  // namespace deco
