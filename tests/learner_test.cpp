#include "deco/core/learner.h"

#include <gtest/gtest.h>

#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/eval/metrics.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::core {
namespace {

nn::ConvNetConfig model_config(const data::DatasetSpec& spec) {
  nn::ConvNetConfig cfg;
  cfg.in_channels = spec.channels;
  cfg.image_h = spec.height;
  cfg.image_w = spec.width;
  cfg.num_classes = spec.num_classes;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

TEST(TrainClassifierTest, FitsSmallLabeledSet) {
  data::ProceduralImageWorld world(data::icub1_spec(), 1);
  data::Dataset train = world.make_labeled_set(6, 1);
  data::Dataset test = world.make_test_set(10, 2);

  Rng rng(2);
  nn::ConvNet model(model_config(world.spec()), rng);
  const float before = eval::accuracy(model, test);

  std::vector<int64_t> all(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) all[static_cast<size_t>(i)] = i;
  train_classifier(model, train.batch(all), train.labels(), /*epochs=*/40,
                   1e-3f, 5e-4f, 32, rng);
  const float after = eval::accuracy(model, test);
  // 10 classes: random ≈ 10%; training must lift accuracy well above chance.
  EXPECT_GT(after, before + 10.0f);
  EXPECT_GT(after, 25.0f);
}

TEST(TrainClassifierTest, EmptySetIsNoOp) {
  Rng rng(3);
  nn::ConvNet model(model_config(data::icub1_spec()), rng);
  Tensor empty({0, 3, 16, 16});
  train_classifier(model, empty, {}, 5, 1e-3f, 0.0f, 32, rng);  // must not crash
}

TEST(DecoLearnerTest, SegmentsFlowAndBufferStaysBalanced) {
  data::ProceduralImageWorld world(data::core50_spec(), 4);
  data::Dataset labeled = world.make_labeled_set(4, 1);

  Rng rng(5);
  nn::ConvNet model(model_config(world.spec()), rng);
  std::vector<int64_t> all(static_cast<size_t>(labeled.size()));
  for (int64_t i = 0; i < labeled.size(); ++i) all[static_cast<size_t>(i)] = i;
  train_classifier(model, labeled.batch(all), labeled.labels(), 20, 1e-3f,
                   5e-4f, 32, rng);

  DecoConfig cfg;
  cfg.ipc = 2;
  cfg.beta = 2;
  cfg.model_update_epochs = 3;
  cfg.condenser.iterations = 2;
  DecoLearner learner(model, cfg, 6);
  learner.init_buffer_from(labeled);
  EXPECT_EQ(learner.buffer().size(), 20);

  data::StreamConfig sc;
  sc.stc = 16;
  sc.segment_size = 16;
  sc.total_segments = 4;
  data::TemporalStream stream(world, sc, 7);
  data::Segment seg;
  int64_t retained = 0;
  while (stream.next(seg)) {
    SegmentReport rep = learner.observe_segment(seg.images);
    EXPECT_EQ(rep.pseudo_labels.size(), 16u);
    retained += static_cast<int64_t>(rep.retained.size());
  }
  EXPECT_EQ(learner.segments_seen(), 4);
  EXPECT_GT(learner.condense_seconds(), 0.0);
  EXPECT_GT(retained, 0);
  // Buffer invariants survive streaming.
  EXPECT_EQ(learner.buffer().size(), 20);
  EXPECT_GE(learner.buffer().images().min(), 0.0f);
  EXPECT_LE(learner.buffer().images().max(), 1.0f);
}

TEST(DecoLearnerTest, MajorityVotingAblationRetainsMore) {
  data::ProceduralImageWorld world(data::core50_spec(), 8);
  data::Dataset labeled = world.make_labeled_set(4, 1);
  Rng rng(9);
  nn::ConvNet model(model_config(world.spec()), rng);

  auto run = [&](bool voting) {
    auto m2 = nn::clone_convnet(model);
    DecoConfig cfg;
    cfg.ipc = 1;
    cfg.beta = 100;
    cfg.use_majority_voting = voting;
    cfg.condenser.iterations = 1;
    DecoLearner learner(*m2, cfg, 10);
    learner.init_buffer_from(labeled);
    data::StreamConfig sc;
    sc.stc = 8;
    sc.segment_size = 16;
    sc.total_segments = 3;
    data::TemporalStream stream(world, sc, 11);
    data::Segment seg;
    int64_t retained = 0;
    while (stream.next(seg))
      retained += static_cast<int64_t>(learner.observe_segment(seg.images).retained.size());
    return retained;
  };
  // Disabling the majority-voting filter never retains fewer samples.
  EXPECT_GE(run(false), run(true));
}

TEST(DecoLearnerTest, NameReflectsInjectedCondenser) {
  data::DatasetSpec spec = data::icub1_spec();
  Rng rng(12);
  nn::ConvNet model(model_config(spec), rng);
  DecoConfig cfg;
  cfg.ipc = 1;
  DecoLearner deco(model, cfg, 13);
  EXPECT_EQ(deco.name(), "DECO");

  auto dm = std::make_unique<condense::DmCondenser>(model_config(spec),
                                                    condense::DmConfig{}, 14);
  DecoLearner dm_learner(model, cfg, 15, std::move(dm));
  EXPECT_EQ(dm_learner.name(), "DM");
}

TEST(DecoLearnerTest, RejectsBadConfig) {
  data::DatasetSpec spec = data::icub1_spec();
  Rng rng(16);
  nn::ConvNet model(model_config(spec), rng);
  auto expect_rejected = [&](DecoConfig cfg) {
    EXPECT_THROW(DecoLearner(model, cfg, 17), Error);
  };
  DecoConfig cfg;
  cfg.beta = 0;
  expect_rejected(cfg);

  cfg = DecoConfig{};
  cfg.ipc = 0;
  expect_rejected(cfg);

  cfg = DecoConfig{};
  cfg.threshold_m = 1.5f;
  expect_rejected(cfg);

  cfg = DecoConfig{};
  cfg.lr_model = 0.0f;
  expect_rejected(cfg);

  cfg = DecoConfig{};
  cfg.train_batch = 0;
  expect_rejected(cfg);

  cfg = DecoConfig{};
  cfg.condenser.iterations = 0;
  expect_rejected(cfg);

  cfg = DecoConfig{};
  cfg.guard.backoff = 0.0f;
  expect_rejected(cfg);
}

}  // namespace
}  // namespace deco::core
