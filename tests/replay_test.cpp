#include "deco/baselines/replay.h"

#include <gtest/gtest.h>

#include "deco/data/stream.h"
#include "deco/data/world.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::baselines {
namespace {

StoredSample make_sample(float value, int64_t label, float confidence,
                         int64_t arrival) {
  StoredSample s;
  s.image = Tensor::full({1, 2, 2}, value);
  s.label = label;
  s.confidence = confidence;
  s.arrival = arrival;
  return s;
}

StoredSample with_feature(StoredSample s, std::vector<float> feat) {
  const int64_t n = static_cast<int64_t>(feat.size());
  s.feature = Tensor({n}, std::move(feat));
  return s;
}

StoredSample with_gradient(StoredSample s, std::vector<float> grad) {
  const int64_t n = static_cast<int64_t>(grad.size());
  s.gradient = Tensor({n}, std::move(grad));
  return s;
}

TEST(ReplayBufferTest, FillsUpToIpcPerClass) {
  ReplayBuffer buf(3, 2, Strategy::kFifo);
  Rng rng(1);
  for (int i = 0; i < 10; ++i)
    buf.offer(make_sample(0.1f * i, i % 3, 0.5f, i), rng);
  EXPECT_EQ(buf.size(), 6);
  for (int64_t c = 0; c < 3; ++c)
    EXPECT_EQ(buf.slot(c).size(), 2u);
}

TEST(ReplayBufferTest, FifoEvictsOldest) {
  ReplayBuffer buf(1, 2, Strategy::kFifo);
  Rng rng(2);
  buf.offer(make_sample(1.0f, 0, 0.5f, /*arrival=*/1), rng);
  buf.offer(make_sample(2.0f, 0, 0.5f, 2), rng);
  buf.offer(make_sample(3.0f, 0, 0.5f, 3), rng);
  // arrival 1 must be gone; 2 and 3 must remain.
  std::vector<int64_t> arrivals;
  for (const auto& s : buf.slot(0)) arrivals.push_back(s.arrival);
  std::sort(arrivals.begin(), arrivals.end());
  EXPECT_EQ(arrivals, (std::vector<int64_t>{2, 3}));
}

TEST(ReplayBufferTest, SelectiveBpKeepsLowConfidence) {
  ReplayBuffer buf(1, 2, Strategy::kSelectiveBp);
  Rng rng(3);
  buf.offer(make_sample(1.0f, 0, 0.9f, 1), rng);
  buf.offer(make_sample(2.0f, 0, 0.8f, 2), rng);
  // Lower confidence than the most confident stored (0.9) → replaces it.
  buf.offer(make_sample(3.0f, 0, 0.3f, 3), rng);
  float max_conf = 0.0f;
  for (const auto& s : buf.slot(0)) max_conf = std::max(max_conf, s.confidence);
  EXPECT_LE(max_conf, 0.8f);
  // Higher confidence than everything stored → rejected.
  buf.offer(make_sample(4.0f, 0, 0.99f, 4), rng);
  for (const auto& s : buf.slot(0)) EXPECT_NE(s.confidence, 0.99f);
}

TEST(ReplayBufferTest, RandomReservoirIsUnbiasedIsh) {
  // Offer 100 samples into a 10-slot reservoir many times; each sample index
  // should be retained with roughly equal frequency (reservoir property).
  const int kTrials = 200;
  std::vector<int> kept(100, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReplayBuffer buf(1, 10, Strategy::kRandom);
    Rng rng(100 + t);
    for (int i = 0; i < 100; ++i)
      buf.offer(make_sample(static_cast<float>(i), 0, 0.5f, i), rng);
    for (const auto& s : buf.slot(0)) ++kept[static_cast<size_t>(s.arrival)];
  }
  // Expected keep count per index ≈ kTrials·10/100 = 20. First and last
  // decile should both be within a loose band around that.
  int early = 0, late = 0;
  for (int i = 0; i < 10; ++i) early += kept[static_cast<size_t>(i)];
  for (int i = 90; i < 100; ++i) late += kept[static_cast<size_t>(i)];
  EXPECT_GT(early, 100);
  EXPECT_LT(early, 300);
  EXPECT_GT(late, 100);
  EXPECT_LT(late, 300);
}

TEST(ReplayBufferTest, KCenterKeepsCoverage) {
  ReplayBuffer buf(1, 2, Strategy::kKCenter);
  Rng rng(4);
  // Two clusters far apart plus a duplicate of cluster A; coverage keeps one
  // point from each cluster.
  buf.offer(with_feature(make_sample(1, 0, 0.5f, 1), {0.0f, 0.0f}), rng);
  buf.offer(with_feature(make_sample(2, 0, 0.5f, 2), {0.1f, 0.0f}), rng);
  buf.offer(with_feature(make_sample(3, 0, 0.5f, 3), {10.0f, 0.0f}), rng);
  bool has_far = false;
  for (const auto& s : buf.slot(0))
    if (s.feature[0] > 5.0f) has_far = true;
  EXPECT_TRUE(has_far) << "k-center must cover the distant cluster";
}

TEST(ReplayBufferTest, GssPrefersDiverseGradients) {
  ReplayBuffer buf(1, 2, Strategy::kGssGreedy);
  Rng rng(5);
  // Two nearly identical gradients stored; a new orthogonal gradient should
  // displace one of the redundant pair.
  buf.offer(with_gradient(make_sample(1, 0, 0.5f, 1), {1.0f, 0.0f}), rng);
  buf.offer(with_gradient(make_sample(2, 0, 0.5f, 2), {0.99f, 0.01f}), rng);
  buf.offer(with_gradient(make_sample(3, 0, 0.5f, 3), {0.0f, 1.0f}), rng);
  bool has_orthogonal = false;
  for (const auto& s : buf.slot(0))
    if (s.gradient[1] > 0.5f) has_orthogonal = true;
  EXPECT_TRUE(has_orthogonal);
  // Conversely, a redundant newcomer must be rejected.
  buf.offer(with_gradient(make_sample(4, 0, 0.5f, 4), {1.0f, 0.001f}), rng);
  int near_x = 0;
  for (const auto& s : buf.slot(0))
    if (s.gradient[0] > 0.5f) ++near_x;
  EXPECT_EQ(near_x, 1);
}

TEST(ReplayBufferTest, AllImagesAndLabelsFlatten) {
  ReplayBuffer buf(2, 2, Strategy::kFifo);
  Rng rng(6);
  buf.offer(make_sample(1, 0, 0.5f, 1), rng);
  buf.offer(make_sample(2, 1, 0.5f, 2), rng);
  buf.offer(make_sample(3, 1, 0.5f, 3), rng);
  Tensor imgs = buf.all_images();
  EXPECT_EQ(imgs.dim(0), 3);
  auto labels = buf.all_labels();
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<int64_t>{0, 1, 1}));
}

TEST(ReplayBufferTest, RejectsBadLabel) {
  ReplayBuffer buf(2, 2, Strategy::kFifo);
  Rng rng(7);
  EXPECT_THROW(buf.offer(make_sample(1, 5, 0.5f, 1), rng), Error);
}

TEST(StrategyNameTest, RoundTrip) {
  for (Strategy s : {Strategy::kRandom, Strategy::kFifo, Strategy::kSelectiveBp,
                     Strategy::kKCenter, Strategy::kGssGreedy}) {
    EXPECT_EQ(strategy_from_name(strategy_name(s)), s);
  }
  EXPECT_THROW(strategy_from_name("nope"), Error);
}

TEST(BaselineLearnerTest, ObserveSegmentMaintainsBudget) {
  Rng rng(8);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 8;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);

  data::ProceduralImageWorld world(data::core50_spec(), 9);
  data::Dataset labeled = world.make_labeled_set(3, 1);

  for (auto strat : {Strategy::kRandom, Strategy::kFifo, Strategy::kSelectiveBp,
                     Strategy::kKCenter, Strategy::kGssGreedy}) {
    BaselineConfig bc;
    bc.ipc = 2;
    bc.beta = 100;  // no model updates in this test
    BaselineLearner learner(model, strat, bc, 10);
    learner.init_buffer_from(labeled);
    EXPECT_LE(learner.buffer().size(), 20);

    data::StreamConfig sc;
    sc.segment_size = 16;
    sc.total_segments = 2;
    data::TemporalStream stream(world, sc, 11);
    data::Segment seg;
    while (stream.next(seg)) {
      auto rep = learner.observe_segment(seg.images);
      EXPECT_EQ(rep.pseudo_labels.size(), 16u);
    }
    // Buffer never exceeds ipc per class.
    for (int64_t c = 0; c < 10; ++c)
      EXPECT_LE(learner.buffer().slot(c).size(), 2u);
  }
}

TEST(UnlimitedLearnerTest, StoresEverything) {
  Rng rng(12);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 10;
  cfg.width = 8;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  data::ProceduralImageWorld world(data::core50_spec(), 13);
  data::Dataset labeled = world.make_labeled_set(2, 1);

  baselines::BaselineConfig bc;
  bc.beta = 100;
  UnlimitedLearner learner(model, bc, 14);
  learner.init_buffer_from(labeled);
  EXPECT_EQ(learner.stored(), 20);

  data::StreamConfig sc;
  sc.segment_size = 8;
  sc.total_segments = 3;
  data::TemporalStream stream(world, sc, 15);
  data::Segment seg;
  while (stream.next(seg)) learner.observe_segment(seg.images);
  EXPECT_EQ(learner.stored(), 20 + 24);
}

}  // namespace
}  // namespace deco::baselines
