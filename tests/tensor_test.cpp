#include "deco/tensor/tensor.h"

#include <gtest/gtest.h>

#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco {
namespace {

TEST(TensorTest, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ShapeConstructionZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ValueConstructionAdoptsData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
  EXPECT_EQ(t.at2(1, 1), 4.0f);
}

TEST(TensorTest, ValueConstructionRejectsMismatchedSize) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(TensorTest, FullAndArange) {
  Tensor f = Tensor::full({3}, 2.5f);
  EXPECT_EQ(f.sum(), 7.5f);
  Tensor a = Tensor::arange(4);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[3], 3.0f);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.reshaped({3, 2});
  EXPECT_EQ(b.at2(2, 1), 6.0f);
  EXPECT_THROW(a.reshaped({4, 2}), Error);
}

TEST(TensorTest, At4IndexesNchw) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[t.numel() - 1], 7.0f);
  t.at4(0, 0, 0, 0) = 3.0f;
  EXPECT_EQ(t[0], 3.0f);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[2], 33.0f);
  a.sub_(b);
  EXPECT_EQ(a[2], 3.0f);
  a.mul_(b);
  EXPECT_EQ(a[1], 40.0f);
  a.scale_(0.5f);
  EXPECT_EQ(a[1], 20.0f);
  a.add_scalar_(1.0f);
  EXPECT_EQ(a[0], 6.0f);
  a.add_scaled_(b, 0.1f);
  EXPECT_FLOAT_EQ(a[0], 7.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a.add_(b), Error);
  EXPECT_THROW(a.sub_(b), Error);
  EXPECT_THROW(a.mul_(b), Error);
}

TEST(TensorTest, ClampBounds) {
  Tensor a({4}, {-1.0f, 0.5f, 2.0f, 1.0f});
  a.clamp_(0.0f, 1.0f);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[1], 0.5f);
  EXPECT_EQ(a[2], 1.0f);
}

TEST(TensorTest, Reductions) {
  Tensor a({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(a.sum(), -2.0f);
  EXPECT_FLOAT_EQ(a.mean(), -0.5f);
  EXPECT_FLOAT_EQ(a.min(), -4.0f);
  EXPECT_FLOAT_EQ(a.max(), 3.0f);
  EXPECT_FLOAT_EQ(a.squared_norm(), 30.0f);
  EXPECT_EQ(a.argmax(), 2);
}

TEST(TensorTest, DotProduct) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(TensorTest, L1Distance) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 0});
  EXPECT_FLOAT_EQ(a.l1_distance(b), 4.0f);
}

TEST(TensorTest, OutOfPlaceOperators) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor c = a + b;
  EXPECT_EQ(c[0], 4.0f);
  Tensor d = b - a;
  EXPECT_EQ(d[1], 2.0f);
  Tensor e = a * 3.0f;
  EXPECT_EQ(e[1], 6.0f);
  // operands untouched
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 3.0f);
}

TEST(TensorTest, ShapeStr) {
  Tensor a({2, 3, 4});
  EXPECT_EQ(a.shape_str(), "[2, 3, 4]");
}

}  // namespace
}  // namespace deco
