#include "deco/condense/method.h"

#include <gtest/gtest.h>

#include <chrono>

#include "deco/data/world.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco::condense {
namespace {

nn::ConvNetConfig small_config() {
  nn::ConvNetConfig cfg;
  cfg.in_channels = 3;
  cfg.image_h = cfg.image_w = 16;
  cfg.num_classes = 4;
  cfg.width = 8;
  cfg.depth = 2;
  return cfg;
}

struct Fixture {
  Fixture()
      : rng(1),
        model(small_config(), rng),
        buffer(4, 2, 3, 16, 16),
        world(make_spec(), 7) {
    data::Dataset labeled = world.make_labeled_set(3, 1);
    buffer.init_from_dataset(labeled, rng);

    // A segment of "real" data: two active classes.
    x_real = Tensor({8, 3, 16, 16});
    for (int64_t i = 0; i < 8; ++i) {
      const int64_t cls = i < 4 ? 0 : 2;
      Tensor img = world.render(cls, 0, 0, 100 + i);
      std::copy(img.data(), img.data() + img.numel(),
                x_real.data() + i * img.numel());
      y_real.push_back(cls);
      w_real.push_back(0.9f);
    }
    active = {0, 2};
  }

  static data::DatasetSpec make_spec() {
    data::DatasetSpec s = data::icub1_spec();
    s.num_classes = 4;
    return s;
  }

  CondenseContext context() {
    CondenseContext ctx;
    ctx.buffer = &buffer;
    ctx.x_real = &x_real;
    ctx.y_real = &y_real;
    ctx.w_real = &w_real;
    ctx.active_classes = &active;
    ctx.deployed_model = &model;
    ctx.rng = &rng;
    return ctx;
  }

  Rng rng;
  nn::ConvNet model;
  SyntheticBuffer buffer;
  data::ProceduralImageWorld world;
  Tensor x_real;
  std::vector<int64_t> y_real;
  std::vector<float> w_real;
  std::vector<int64_t> active;
};

TEST(DecoCondenserTest, UpdatesOnlyActiveRowsAndContrastiveNeighbors) {
  Fixture f;
  DecoCondenserConfig cfg;
  cfg.iterations = 2;
  cfg.feature_discrimination = false;  // isolate matching: actives only
  DecoCondenser cond(small_config(), cfg, 11);

  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);
  Tensor after = f.buffer.images();

  const int64_t per = 3 * 16 * 16;
  for (int64_t r = 0; r < f.buffer.size(); ++r) {
    Tensor b({per}), a({per});
    std::copy(before.data() + r * per, before.data() + (r + 1) * per, b.data());
    std::copy(after.data() + r * per, after.data() + (r + 1) * per, a.data());
    const bool is_active = f.buffer.label(r) == 0 || f.buffer.label(r) == 2;
    if (is_active) {
      EXPECT_GT(b.l1_distance(a), 0.0f) << "active row " << r << " unchanged";
    } else {
      EXPECT_EQ(b.l1_distance(a), 0.0f) << "inactive row " << r << " changed";
    }
  }
  EXPECT_EQ(cond.last_distances().size(), 2u);
}

TEST(DecoCondenserTest, PixelsStayInUnitRange) {
  Fixture f;
  DecoCondenserConfig cfg;
  cfg.iterations = 3;
  DecoCondenser cond(small_config(), cfg, 12);
  auto ctx = f.context();
  cond.condense(ctx);
  EXPECT_GE(f.buffer.images().min(), 0.0f);
  EXPECT_LE(f.buffer.images().max(), 1.0f);
}

TEST(DecoCondenserTest, FeatureDiscriminationTouchesNegativeRows) {
  Fixture f;
  DecoCondenserConfig cfg;
  cfg.iterations = 4;
  cfg.feature_discrimination = true;
  cfg.alpha = 0.5f;
  DecoCondenser cond(small_config(), cfg, 13);
  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);
  // With discrimination on, at least some rows outside the active classes may
  // move (sampled negatives). At minimum the update must not corrupt balance.
  EXPECT_EQ(f.buffer.size(), 8);
  EXPECT_GE(f.buffer.images().min(), 0.0f);
  EXPECT_LE(f.buffer.images().max(), 1.0f);
}

TEST(DecoCondenserTest, NoActiveClassesIsNoOp) {
  Fixture f;
  DecoCondenserConfig cfg;
  DecoCondenser cond(small_config(), cfg, 14);
  f.active.clear();
  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);
  EXPECT_EQ(before.l1_distance(f.buffer.images()), 0.0f);
}

TEST(DecoCondenserTest, MatchingDistanceTrendsDownWithinCall) {
  // With a FIXED random model across the call's iterations (the ablation
  // switch), the matching loss trace is directly comparable step to step and
  // must decrease from first to last iteration. (With per-iteration model
  // re-randomization — the DECO default — each distance is measured under a
  // different model, so that trace is not monotone by construction.)
  Fixture f;
  DecoCondenserConfig cfg;
  cfg.iterations = 8;
  cfg.feature_discrimination = false;
  cfg.rerandomize_each_iteration = false;
  cfg.lr_syn = 0.05f;
  DecoCondenser cond(small_config(), cfg, 15);
  double first = 0.0, last = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    auto ctx = f.context();
    cond.condense(ctx);
    first += cond.last_distances().front();
    last += cond.last_distances().back();
  }
  EXPECT_LT(last, first);
}

TEST(BilevelCondenserTest, DcRunsAndChangesActiveRows) {
  Fixture f;
  BilevelConfig cfg;
  cfg.outer_loops = 1;
  cfg.inner_epochs = 2;
  cfg.model_steps = 1;
  BilevelCondenser cond(small_config(), cfg, 16);
  EXPECT_EQ(cond.name(), "DC");
  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);
  EXPECT_GT(before.l1_distance(f.buffer.images()), 0.0f);
  EXPECT_GE(f.buffer.images().min(), 0.0f);
  EXPECT_LE(f.buffer.images().max(), 1.0f);
}

TEST(BilevelCondenserTest, DsaUsesAugmentation) {
  Fixture f;
  BilevelConfig cfg;
  cfg.outer_loops = 1;
  cfg.inner_epochs = 2;
  cfg.model_steps = 1;
  cfg.dsa_strategy = "flip_shift_scale_rotate_color_cutout";
  BilevelCondenser cond(small_config(), cfg, 17);
  EXPECT_EQ(cond.name(), "DSA");
  auto ctx = f.context();
  cond.condense(ctx);
  EXPECT_GE(f.buffer.images().min(), 0.0f);
}

TEST(DmCondenserTest, MovesSyntheticTowardClassMeans) {
  Fixture f;
  DmConfig cfg;
  cfg.iterations = 5;
  DmCondenser cond(small_config(), cfg, 18);
  EXPECT_EQ(cond.name(), "DM");
  Tensor before = f.buffer.images();
  auto ctx = f.context();
  cond.condense(ctx);
  EXPECT_GT(before.l1_distance(f.buffer.images()), 0.0f);
}

TEST(CondenserTimingTest, DecoIsMuchFasterThanDc) {
  // Table II's core claim: one-step DECO ≈ 10× faster than bilevel DC at the
  // paper's settings (L=10 vs K·T matching steps + inner model training).
  Fixture f;
  auto time_it = [&](Condenser& c) {
    auto ctx = f.context();
    const auto t0 = std::chrono::steady_clock::now();
    c.condense(ctx);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  DecoCondenserConfig dcfg;
  dcfg.iterations = 10;
  dcfg.feature_discrimination = false;
  DecoCondenser deco(small_config(), dcfg, 19);
  BilevelConfig bcfg;  // paper-like: 2 outer × 10 inner + model steps
  BilevelCondenser dc(small_config(), bcfg, 20);
  const double t_deco = time_it(deco);
  const double t_dc = time_it(dc);
  EXPECT_GT(t_dc, 2.0 * t_deco);  // conservative bound for CI noise
}

TEST(CondenserValidationTest, MissingContextPiecesThrow) {
  Fixture f;
  DecoCondenserConfig cfg;
  DecoCondenser cond(small_config(), cfg, 21);
  CondenseContext ctx;  // everything null
  EXPECT_THROW(cond.condense(ctx), Error);
  ctx = f.context();
  ctx.buffer = nullptr;
  EXPECT_THROW(cond.condense(ctx), Error);
}

}  // namespace
}  // namespace deco::condense
