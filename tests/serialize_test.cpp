#include "deco/tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "deco/nn/checkpoint.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, StreamRoundTrip) {
  Rng rng(1);
  Tensor t = deco::testing::random_tensor({2, 3, 4}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back.l1_distance(t), 0.0f);
}

TEST(SerializeTest, MultipleTensorsInOneStream) {
  Rng rng(2);
  Tensor a = deco::testing::random_tensor({5}, rng);
  Tensor b = deco::testing::random_tensor({2, 2}, rng);
  std::stringstream ss;
  write_tensor(ss, a);
  write_tensor(ss, b);
  Tensor a2 = read_tensor(ss);
  Tensor b2 = read_tensor(ss);
  EXPECT_EQ(a2.l1_distance(a), 0.0f);
  EXPECT_EQ(b2.l1_distance(b), 0.0f);
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(3);
  Tensor t = deco::testing::random_tensor({4, 4}, rng);
  const std::string path = temp_path("tensor.bin");
  save_tensor(path, t);
  Tensor back = load_tensor(path);
  EXPECT_EQ(back.l1_distance(t), 0.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is definitely not a tensor";
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(SerializeTest, RejectsTruncatedData) {
  Rng rng(4);
  Tensor t = deco::testing::random_tensor({100}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream trunc(bytes);
  EXPECT_THROW(read_tensor(trunc), Error);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensor("/nonexistent/dir/t.bin"), Error);
}

TEST(SerializeTest, ReadsLegacyV1Files) {
  // Hand-craft a v1 container (no CRC trailer): magic | version=1 | ndim |
  // dims | data. Current readers must keep accepting it.
  std::stringstream ss;
  ss.write("DECOTNSR", 8);
  const uint32_t version = 1, ndim = 2;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&ndim), 4);
  const int64_t dims[2] = {2, 3};
  ss.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  const float data[6] = {0.f, 1.f, 2.f, 3.f, 4.f, 5.f};
  ss.write(reinterpret_cast<const char*>(data), sizeof(data));

  Tensor t = read_tensor(ss);
  ASSERT_EQ(t.shape(), (std::vector<int64_t>{2, 3}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], static_cast<float>(i));
}

TEST(SerializeTest, RejectsUnsupportedVersion) {
  std::stringstream ss;
  ss.write("DECOTNSR", 8);
  const uint32_t version = 7, ndim = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&ndim), 4);
  const int64_t dim = 1;
  ss.write(reinterpret_cast<const char*>(&dim), 8);
  const float v = 0.f;
  ss.write(reinterpret_cast<const char*>(&v), 4);
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(SerializeTest, DetectsBitFlipViaCrc) {
  Rng rng(8);
  Tensor t = deco::testing::random_tensor({16}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string bytes = ss.str();
  // Flip one payload bit (past magic+version+ndim+dims).
  bytes[8 + 4 + 4 + 8 + 10] ^= 0x10;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_tensor(corrupted), Error);
}

TEST(SerializeTest, RejectsOversizedHeaderBeforeAllocating) {
  // A header claiming 2^20 × 2^20 × 2^20 elements must be rejected by the
  // element cap — and must not overflow the product into something small.
  std::stringstream ss;
  ss.write("DECOTNSR", 8);
  const uint32_t version = 2, ndim = 3;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&ndim), 4);
  const int64_t dim = int64_t{1} << 20;
  for (int d = 0; d < 3; ++d)
    ss.write(reinterpret_cast<const char*>(&dim), 8);
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(SerializeTest, Crc32MatchesKnownVector) {
  // The standard IEEE check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  // Chunked computation continues from the running value.
  const uint32_t part = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926u);
}

TEST(SerializeTest, AtomicSaveLeavesNoTempFile) {
  Rng rng(9);
  Tensor t = deco::testing::random_tensor({4}, rng);
  const std::string path = temp_path("atomic.bin");
  save_tensor(path, t);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  EXPECT_EQ(load_tensor(path).l1_distance(t), 0.0f);
  std::remove(path.c_str());
}

TEST(PpmTest, WritesValidHeaderAndSize) {
  Tensor img({3, 2, 4});
  img.fill(0.5f);
  const std::string path = temp_path("img.ppm");
  write_ppm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic, dims, maxval;
  std::getline(is, magic);
  std::getline(is, dims);
  std::getline(is, maxval);
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(dims, "4 2");
  EXPECT_EQ(maxval, "255");
  // 2*4 pixels × 3 bytes of payload.
  std::string payload((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(payload.size(), 24u);
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 128);
  std::remove(path.c_str());
}

TEST(PpmTest, GrayscaleUsesP5) {
  Tensor img({1, 2, 2});
  const std::string path = temp_path("img.pgm");
  write_ppm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  std::getline(is, magic);
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(PpmTest, RejectsBadChannelCount) {
  Tensor img({2, 2, 2});
  EXPECT_THROW(write_ppm(temp_path("bad.ppm"), img), Error);
}

TEST(CheckpointTest, ModelRoundTripReproducesOutputs) {
  Rng rng(5);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  Tensor x = deco::testing::random_tensor({2, 2, 8, 8}, rng);
  Tensor y_before = model.forward(x);

  const std::string path = temp_path("model.ckpt");
  nn::save_checkpoint(path, model);

  model.reinitialize(rng);
  EXPECT_GT(model.forward(x).l1_distance(y_before), 1e-4f);

  nn::load_checkpoint(path, model);
  Tensor y_after = model.forward(x);
  EXPECT_LT(y_after.l1_distance(y_before), 1e-6f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMismatchedArchitecture) {
  Rng rng(6);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  const std::string path = temp_path("model2.ckpt");
  nn::save_checkpoint(path, model);

  cfg.width = 8;  // different architecture
  nn::ConvNet other(cfg, rng);
  EXPECT_THROW(nn::load_checkpoint(path, other), Error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, FailedLoadLeavesModelUntouched) {
  Rng rng(10);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  const std::string path = temp_path("model3.ckpt");
  nn::save_checkpoint(path, model);

  cfg.depth = 1;  // different parameter list
  nn::ConvNet other(cfg, rng);
  Tensor x = deco::testing::random_tensor({2, 2, 8, 8}, rng);
  Tensor y_before = other.forward(x);
  EXPECT_THROW(nn::load_checkpoint(path, other), Error);
  // Staged loading: the failed load must not have committed any parameter.
  EXPECT_EQ(other.forward(x).l1_distance(y_before), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, DetectsCorruptedCheckpoint) {
  Rng rng(11);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 1;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 2;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet model(cfg, rng);
  const std::string path = temp_path("model4.ckpt");
  nn::save_checkpoint(path, model);

  // Flip a byte in the middle of the file: some tensor's CRC must trip.
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(nn::load_checkpoint(path, model), Error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongFileKind) {
  Rng rng(7);
  Tensor t = deco::testing::random_tensor({3}, rng);
  const std::string path = temp_path("plain_tensor.bin");
  save_tensor(path, t);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet model(cfg, rng);
  EXPECT_THROW(nn::load_checkpoint(path, model), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deco
