#include "deco/tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "deco/nn/checkpoint.h"
#include "deco/nn/convnet.h"
#include "deco/tensor/check.h"
#include "test_util.h"

namespace deco {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, StreamRoundTrip) {
  Rng rng(1);
  Tensor t = deco::testing::random_tensor({2, 3, 4}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back.l1_distance(t), 0.0f);
}

TEST(SerializeTest, MultipleTensorsInOneStream) {
  Rng rng(2);
  Tensor a = deco::testing::random_tensor({5}, rng);
  Tensor b = deco::testing::random_tensor({2, 2}, rng);
  std::stringstream ss;
  write_tensor(ss, a);
  write_tensor(ss, b);
  Tensor a2 = read_tensor(ss);
  Tensor b2 = read_tensor(ss);
  EXPECT_EQ(a2.l1_distance(a), 0.0f);
  EXPECT_EQ(b2.l1_distance(b), 0.0f);
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(3);
  Tensor t = deco::testing::random_tensor({4, 4}, rng);
  const std::string path = temp_path("tensor.bin");
  save_tensor(path, t);
  Tensor back = load_tensor(path);
  EXPECT_EQ(back.l1_distance(t), 0.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is definitely not a tensor";
  EXPECT_THROW(read_tensor(ss), Error);
}

TEST(SerializeTest, RejectsTruncatedData) {
  Rng rng(4);
  Tensor t = deco::testing::random_tensor({100}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream trunc(bytes);
  EXPECT_THROW(read_tensor(trunc), Error);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensor("/nonexistent/dir/t.bin"), Error);
}

TEST(PpmTest, WritesValidHeaderAndSize) {
  Tensor img({3, 2, 4});
  img.fill(0.5f);
  const std::string path = temp_path("img.ppm");
  write_ppm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic, dims, maxval;
  std::getline(is, magic);
  std::getline(is, dims);
  std::getline(is, maxval);
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(dims, "4 2");
  EXPECT_EQ(maxval, "255");
  // 2*4 pixels × 3 bytes of payload.
  std::string payload((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(payload.size(), 24u);
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 128);
  std::remove(path.c_str());
}

TEST(PpmTest, GrayscaleUsesP5) {
  Tensor img({1, 2, 2});
  const std::string path = temp_path("img.pgm");
  write_ppm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  std::getline(is, magic);
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(PpmTest, RejectsBadChannelCount) {
  Tensor img({2, 2, 2});
  EXPECT_THROW(write_ppm(temp_path("bad.ppm"), img), Error);
}

TEST(CheckpointTest, ModelRoundTripReproducesOutputs) {
  Rng rng(5);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  Tensor x = deco::testing::random_tensor({2, 2, 8, 8}, rng);
  Tensor y_before = model.forward(x);

  const std::string path = temp_path("model.ckpt");
  nn::save_checkpoint(path, model);

  model.reinitialize(rng);
  EXPECT_GT(model.forward(x).l1_distance(y_before), 1e-4f);

  nn::load_checkpoint(path, model);
  Tensor y_after = model.forward(x);
  EXPECT_LT(y_after.l1_distance(y_before), 1e-6f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMismatchedArchitecture) {
  Rng rng(6);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 2;
  nn::ConvNet model(cfg, rng);
  const std::string path = temp_path("model2.ckpt");
  nn::save_checkpoint(path, model);

  cfg.width = 8;  // different architecture
  nn::ConvNet other(cfg, rng);
  EXPECT_THROW(nn::load_checkpoint(path, other), Error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongFileKind) {
  Rng rng(7);
  Tensor t = deco::testing::random_tensor({3}, rng);
  const std::string path = temp_path("plain_tensor.bin");
  save_tensor(path, t);
  nn::ConvNetConfig cfg;
  cfg.in_channels = 2;
  cfg.image_h = cfg.image_w = 8;
  cfg.num_classes = 3;
  cfg.width = 4;
  cfg.depth = 1;
  nn::ConvNet model(cfg, rng);
  EXPECT_THROW(nn::load_checkpoint(path, model), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deco
